(** Minimal JSON for the serve protocol (no external dependency): one
    value per line, parsed from and printed to strings.  Printing is
    deterministic — object member order is the construction order, and
    numbers print as integers when integral, ["%.12g"] otherwise
    (non-finite floats print as [null]). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string

(** @raise Parse_error on malformed input (including trailing bytes). *)
val of_string : string -> t

(** [member k (Obj ...)] — first binding of [k], if any. *)
val member : string -> t -> t option

val to_float : t -> float option
val to_str : t -> string option
