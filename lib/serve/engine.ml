(* The serve engine: a long-running advisor session behind a
   line-delimited JSON protocol.

   Requests (one object per line):
     {"op":"statement","sql":"SELECT ...","delta":2.0}
         observe a statement with a frequency delta (default 1.0)
     {"op":"recommend"}
         flush pending observations, warm-started re-solve, respond with
         the recommended indexes
     {"op":"whatif","sql":"SELECT ..."}
         INUM cost of a statement under the last recommendation vs. no
         indexes (keyed-store lookup: repeats cost zero probes)
     {"op":"stats"}
         counters: events, window, cache hits/misses, probe counts,
         latency quantiles
     {"op":"quit"}
         acknowledge; the daemon closes the stream

   Frequencies live in a sliding window of the last [window] observation
   events (count-based, so the engine is deterministic — no wall clock).
   Statements are deduplicated by canonical key: the session holds one
   statement per key whose weight is the key's delta mass inside the
   window.  When a key's mass drops to zero it leaves the session; its
   INUM templates stay in the keyed store, so returning queries cost
   zero optimizer probes.

   Every response is deterministic in the event stream except the
   explicitly named latency fields ([*_ms]), which measure wall-clock
   work; CI strips those before comparing runs. *)

open Sqlast

let tr_events = Runtime.Trace.counter "serve.events"
let tr_statements = Runtime.Trace.counter "serve.statements"
let tr_recommends = Runtime.Trace.counter "serve.recommends"
let tr_whatifs = Runtime.Trace.counter "serve.whatifs"
let tr_window_evictions = Runtime.Trace.counter "serve.window_evictions"
let tr_flushed_new = Runtime.Trace.counter "serve.flushed_new_statements"

type entry = {
  id : int;  (* statement id of the first-seen spelling *)
  stmt : Ast.statement;
  mutable weight : float;  (* delta mass inside the window *)
  mutable in_session : bool;
}

type t = {
  schema : Catalog.Schema.t;
  jobs : int;
  window_cap : int;
  certify : bool;
  session : Cophy.Interactive.session;
  by_key : (string, entry) Hashtbl.t;
  window : (string * float) Queue.t;
  (* keys touched since the last flush, in first-touch order (reversed) *)
  mutable dirty : string list;
  dirty_set : (string, unit) Hashtbl.t;
  mutable events : int;
  mutable recommends : int;
  mutable whatifs : int;
  mutable latencies_ms : float list;  (* recommend latencies, unsorted *)
}

let weight_eps = 1e-9

let create ?(params = Optimizer.Cost_params.default) ?(window = 256)
    ?(jobs = 1) ?(budget_fraction = 0.25) ?(certify = true) ?probe_budget
    schema =
  if window < 1 then invalid_arg "Engine.create: window < 1";
  let budget = budget_fraction *. Catalog.Tpch.database_size schema in
  let session =
    Cophy.Interactive.create ~params ~jobs ?probe_budget schema [] ~budget
  in
  {
    schema;
    jobs;
    window_cap = window;
    certify;
    session;
    by_key = Hashtbl.create 256;
    window = Queue.create ();
    dirty = [];
    dirty_set = Hashtbl.create 64;
    events = 0;
    recommends = 0;
    whatifs = 0;
    latencies_ms = [];
  }

let session t = t.session

let mark_dirty t key =
  if not (Hashtbl.mem t.dirty_set key) then begin
    Hashtbl.add t.dirty_set key ();
    t.dirty <- key :: t.dirty
  end

let statement_id = function
  | Ast.Select q -> q.Ast.query_id
  | Ast.Update u -> u.Ast.update_id

(* Record one observation: update the window and the per-key mass; all
   session work is deferred to the next [flush]. *)
let observe t stmt delta =
  Runtime.Trace.incr tr_events;
  Runtime.Trace.incr tr_statements;
  t.events <- t.events + 1;
  let key = Canon.statement_key stmt in
  let entry =
    match Hashtbl.find_opt t.by_key key with
    | Some e -> e
    | None ->
        let e =
          { id = statement_id stmt; stmt; weight = 0.0; in_session = false }
        in
        Hashtbl.add t.by_key key e;
        e
  in
  entry.weight <- entry.weight +. delta;
  mark_dirty t key;
  Queue.push (key, delta) t.window;
  while Queue.length t.window > t.window_cap do
    let k, d = Queue.pop t.window in
    Runtime.Trace.incr tr_window_evictions;
    (match Hashtbl.find_opt t.by_key k with
    | Some e -> e.weight <- e.weight -. d
    | None -> ());
    mark_dirty t k
  done

(* Apply deferred observations to the session: new keys enter (candidate
   generation batched over the domain pool, INUM builds resolved through
   the keyed store), weight changes sync, and zero-mass keys leave. *)
let flush t =
  match t.dirty with
  | [] -> ()
  | _ ->
      Runtime.Trace.span "serve.flush" @@ fun () ->
      let dirty = List.rev t.dirty in
      t.dirty <- [];
      Hashtbl.reset t.dirty_set;
      let entering =
        List.filter_map
          (fun key ->
            match Hashtbl.find_opt t.by_key key with
            | Some e when (not e.in_session) && e.weight > weight_eps ->
                Some e
            | _ -> None)
          dirty
      in
      (match entering with
      | [] -> ()
      | es ->
          Runtime.Trace.add tr_flushed_new (List.length es);
          (* candidate generation for a burst of new statements, fanned
             over the domain pool as one batch *)
          let batch = Runtime.Batch.create ~jobs:t.jobs () in
          List.iter
            (fun e ->
              Runtime.Batch.add batch (fun () ->
                  Cophy.Cgen.generate
                    [ { Ast.stmt = e.stmt; weight = e.weight } ]))
            es;
          let cands = List.concat (Runtime.Batch.flush batch) in
          Cophy.Interactive.add_candidates t.session cands;
          Cophy.Interactive.add_statements t.session
            (List.map (fun e -> { Ast.stmt = e.stmt; weight = e.weight }) es);
          List.iter (fun e -> e.in_session <- true) es);
      List.iter
        (fun key ->
          match Hashtbl.find_opt t.by_key key with
          | None -> ()
          | Some e ->
              if e.weight <= weight_eps then begin
                if e.in_session then begin
                  Cophy.Interactive.remove_statements t.session
                    ~drop:(fun st -> statement_id st = e.id);
                  e.in_session <- false
                end;
                Hashtbl.remove t.by_key key
              end
              else if e.in_session then
                Cophy.Interactive.set_weight t.session e.id e.weight)
        dirty

let window_size t = Queue.length t.window
let session_statements t = Hashtbl.length t.by_key

(* --- Quantiles --- *)

(* Nearest-rank quantile over the recorded latencies. *)
let quantile_ms t q =
  match t.latencies_ms with
  | [] -> 0.0
  | xs ->
      let arr = Array.of_list xs in
      Array.sort Float.compare arr;
      let n = Array.length arr in
      let rank =
        max 0 (min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))
      in
      arr.(rank)

(* --- Operations --- *)

(* Serving-level hit rate: the fraction of observation events answered
   without a fresh INUM build.  Repeats are deduplicated by canonical
   key before they reach the keyed store, so the store's own hit counter
   undercounts reuse; every fresh build is a store miss, which makes
   [events - misses] the number of zero-probe observations. *)
let cache_hit_rate t =
  if Int.equal t.events 0 then 0.0
  else
    let misses = Inum.Keyed.misses (Cophy.Interactive.store t.session) in
    float_of_int (max 0 (t.events - misses)) /. float_of_int t.events

let last_config t =
  match Cophy.Interactive.last_report t.session with
  | Some r -> r.Cophy.Solver.config
  | None -> Storage.Config.empty

let recommend t =
  Runtime.Trace.span "serve.recommend" @@ fun () ->
  flush t;
  let t0 = Runtime.Clock.now () in
  let options =
    {
      Cophy.Solver.default_options with
      Cophy.Solver.method_ = Cophy.Solver.Decomposed;
      certify = t.certify;
    }
  in
  let report = Cophy.Interactive.retune ~options t.session in
  (* Probe-budget completion (see Advisor.advise): force the deferred
     INUM probes overlapping the incumbent and re-solve warm until the
     recommendation's cost model is exact at its own configuration.
     With an unlimited budget [refine_at] is a no-op and the first
     report stands. *)
  let rec converge report rounds =
    if
      rounds = 0
      || Cophy.Interactive.refine_at t.session report.Cophy.Solver.config = 0
    then report
    else
      converge (Cophy.Interactive.retune ~options t.session) (rounds - 1)
  in
  let report = converge report 8 in
  let ms = (Runtime.Clock.now () -. t0) *. 1000.0 in
  Runtime.Trace.incr tr_recommends;
  t.recommends <- t.recommends + 1;
  t.latencies_ms <- ms :: t.latencies_ms;
  Json.Obj
    [
      ("ok", Json.Bool true);
      ("op", Json.Str "recommend");
      ("objective", Json.Num report.Cophy.Solver.objective);
      ("bound", Json.Num report.Cophy.Solver.bound);
      ("gap", Json.Num report.Cophy.Solver.gap);
      ("probe_regret", Json.Num report.Cophy.Solver.probe_regret);
      ( "indexes",
        Json.List
          (List.map
             (fun ix -> Json.Str (Storage.Index.to_string ix))
             (Storage.Config.to_list report.Cophy.Solver.config)) );
      ("statements", Json.Num (float_of_int (session_statements t)));
      ("window", Json.Num (float_of_int (window_size t)));
      ("cache_hit_rate", Json.Num (cache_hit_rate t));
      ("latency_ms", Json.Num ms);
      ("p50_ms", Json.Num (quantile_ms t 0.5));
      ("p99_ms", Json.Num (quantile_ms t 0.99));
    ]

let whatif t stmt =
  Runtime.Trace.span "serve.whatif" @@ fun () ->
  flush t;
  Runtime.Trace.incr tr_whatifs;
  t.whatifs <- t.whatifs + 1;
  let store = Cophy.Interactive.store t.session in
  match stmt with
  | Ast.Update _ ->
      Json.Obj
        [
          ("ok", Json.Bool false);
          ("op", Json.Str "whatif");
          ("error", Json.Str "whatif supports SELECT statements only");
        ]
  | Ast.Select q ->
      let inum = Inum.Keyed.find_or_build store q in
      let base = Inum.cost inum Storage.Config.empty in
      let under = Inum.cost inum (last_config t) in
      Json.Obj
        [
          ("ok", Json.Bool true);
          ("op", Json.Str "whatif");
          ("cost_base", Json.Num base);
          ("cost_recommended", Json.Num under);
          ( "improvement",
            Json.Num (if base > 0.0 then (base -. under) /. base else 0.0) );
        ]

let stats_response t =
  flush t;
  let store = Cophy.Interactive.store t.session in
  let st = Cophy.Interactive.stats t.session in
  Json.Obj
    [
      ("ok", Json.Bool true);
      ("op", Json.Str "stats");
      ("events", Json.Num (float_of_int t.events));
      ("window", Json.Num (float_of_int (window_size t)));
      ("statements", Json.Num (float_of_int (session_statements t)));
      ("recommends", Json.Num (float_of_int t.recommends));
      ("whatifs", Json.Num (float_of_int t.whatifs));
      ("cache_hits", Json.Num (float_of_int (Inum.Keyed.hits store)));
      ("cache_misses", Json.Num (float_of_int (Inum.Keyed.misses store)));
      ("cache_evictions", Json.Num (float_of_int (Inum.Keyed.evictions store)));
      ("cache_hit_rate", Json.Num (cache_hit_rate t));
      ("inum_probes", Json.Num (float_of_int (Runtime.Stats.inum_probes st)));
      (* lazy-probing state of the session's INUM caches: deferred
         probes still outstanding, the certified regret bound they
         imply, and combinations the per-query enumeration cap dropped
         (the cap is a modeling choice, never a silent one) *)
      ( "pending_probes",
        Json.Num
          (float_of_int
             (Inum.cache_pending (Cophy.Interactive.cache t.session))) );
      ( "probe_regret",
        Json.Num (Cophy.Interactive.probe_regret t.session) );
      ( "combos_truncated",
        Json.Num
          (float_of_int
             (Inum.cache_truncated (Cophy.Interactive.cache t.session))) );
      ("p50_ms", Json.Num (quantile_ms t 0.5));
      ("p99_ms", Json.Num (quantile_ms t 0.99));
    ]

(* --- Protocol dispatch --- *)

let err msg = Json.Obj [ ("ok", Json.Bool false); ("error", Json.Str msg) ]

let handle t request =
  match Json.member "op" request with
  | None -> err "missing \"op\""
  | Some op -> (
      match Json.to_str op with
      | None -> err "\"op\" must be a string"
      | Some "statement" -> (
          match Option.bind (Json.member "sql" request) Json.to_str with
          | None -> err "statement: missing \"sql\""
          | Some sql -> (
              let delta =
                match
                  Option.bind (Json.member "delta" request) Json.to_float
                with
                | Some d -> d
                | None -> 1.0
              in
              match Parse.statement t.schema sql with
              | stmt ->
                  observe t stmt delta;
                  Json.Obj
                    [
                      ("ok", Json.Bool true);
                      ("op", Json.Str "statement");
                      ("key", Json.Str (Canon.statement_key stmt));
                    ]
              | exception Parse.Parse_error m -> err ("parse error: " ^ m)))
      | Some "recommend" -> recommend t
      | Some "whatif" -> (
          match Option.bind (Json.member "sql" request) Json.to_str with
          | None -> err "whatif: missing \"sql\""
          | Some sql -> (
              match Parse.statement t.schema sql with
              | stmt -> whatif t stmt
              | exception Parse.Parse_error m -> err ("parse error: " ^ m)))
      | Some "stats" -> stats_response t
      | Some "quit" ->
          Json.Obj [ ("ok", Json.Bool true); ("op", Json.Str "quit") ]
      | Some other -> err (Printf.sprintf "unknown op %S" other))

let handle_line t line =
  let response =
    match Json.of_string line with
    | request -> handle t request
    | exception Json.Parse_error m -> err ("bad request: " ^ m)
  in
  Json.to_string response
