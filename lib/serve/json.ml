(* Minimal line-oriented JSON for the serve protocol: no external
   dependency, no streaming — one value per line, parsed from and
   printed to a string.  Covers the full JSON grammar except extremes
   we never produce (surrogate-pair escapes are passed through as
   literal text). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- Printing --- *)

let buf_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let buf_num b f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else if not (Float.is_finite f) then
    (* JSON has no non-finite numbers; null is the conventional spelling *)
    Buffer.add_string b "null"
  else Buffer.add_string b (Printf.sprintf "%.12g" f)

let rec buf_value b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num f -> buf_num b f
  | Str s ->
      Buffer.add_char b '"';
      buf_escape b s;
      Buffer.add_char b '"'
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          buf_value b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          buf_escape b k;
          Buffer.add_string b "\":";
          buf_value b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  buf_value b v;
  Buffer.contents b

(* --- Parsing --- *)

type state = { s : string; mutable pos : int }

let error st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> error st (Printf.sprintf "expected '%c'" c)

let parse_literal st lit value =
  let n = String.length lit in
  if
    st.pos + n <= String.length st.s
    && String.sub st.s st.pos n = lit
  then begin
    st.pos <- st.pos + n;
    value
  end
  else error st (Printf.sprintf "expected %s" lit)

let parse_string st =
  expect st '"';
  let b = Buffer.create 32 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some '"' -> advance st; Buffer.add_char b '"'; go ()
        | Some '\\' -> advance st; Buffer.add_char b '\\'; go ()
        | Some '/' -> advance st; Buffer.add_char b '/'; go ()
        | Some 'n' -> advance st; Buffer.add_char b '\n'; go ()
        | Some 'r' -> advance st; Buffer.add_char b '\r'; go ()
        | Some 't' -> advance st; Buffer.add_char b '\t'; go ()
        | Some 'b' -> advance st; Buffer.add_char b '\b'; go ()
        | Some 'f' -> advance st; Buffer.add_char b '\012'; go ()
        | Some 'u' ->
            advance st;
            if st.pos + 4 > String.length st.s then
              error st "truncated \\u escape";
            let hex = String.sub st.s st.pos 4 in
            let code =
              match int_of_string_opt ("0x" ^ hex) with
              | Some code -> code
              | None -> error st "bad \\u escape"
            in
            st.pos <- st.pos + 4;
            (* UTF-8 encode the code point (BMP only) *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> error st "bad escape")
    | Some c ->
        advance st;
        Buffer.add_char b c;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    match peek st with Some c when is_num_char c -> true | _ -> false
  do
    advance st
  done;
  if st.pos = start then error st "expected number";
  let text = String.sub st.s start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> error st (Printf.sprintf "bad number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some 'n' -> parse_literal st "null" Null
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some '"' -> Str (parse_string st)
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items (v :: acc)
          | Some ']' ->
              advance st;
              List.rev (v :: acc)
          | _ -> error st "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let member () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          (k, v)
        in
        let rec members acc =
          let kv = member () in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members (kv :: acc)
          | Some '}' ->
              advance st;
              List.rev (kv :: acc)
          | _ -> error st "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some _ -> Num (parse_number st)

let of_string s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then error st "trailing input";
  v

(* --- Accessors --- *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_float = function
  | Num f -> Some f
  | _ -> None

let to_str = function
  | Str s -> Some s
  | _ -> None
