(** The serve engine: a long-running {!Cophy.Interactive} session behind
    a line-delimited JSON protocol (one request object per line, one
    response object per line).

    Operations: [statement] (observe a statement with a frequency
    delta), [recommend] (warm-started re-solve), [whatif] (INUM cost of
    a statement under the last recommendation), [stats], [quit].

    Frequencies live in a sliding window over the last [window]
    observation events (count-based: deterministic, no wall clock).
    Statements are deduplicated by canonical key; a key's weight is its
    delta mass inside the window, and zero-mass keys leave the session
    while their INUM templates stay in the keyed store.  Responses are
    deterministic in the event stream except the [*_ms] latency
    fields. *)

type t

(** [create schema] — a fresh engine with an empty session.
    [window] (default [256]) is the sliding-window capacity in events;
    [budget_fraction] (default [0.25]) the storage budget as a fraction
    of the database size; [certify] (default [true]) runs
    {!Lp.Analyze.certify} on every recommendation; [probe_budget]
    (default unlimited) caps up-front INUM probes per query — deferred
    probes resolve lazily during [recommend]/[whatif], and the [stats]
    response reports the outstanding count and certified regret bound.
    @raise Invalid_argument when [window < 1]. *)
val create :
  ?params:Optimizer.Cost_params.t ->
  ?window:int ->
  ?jobs:int ->
  ?budget_fraction:float ->
  ?certify:bool ->
  ?probe_budget:int ->
  Catalog.Schema.t ->
  t

val session : t -> Cophy.Interactive.session

(** Record one observation; session work is deferred to {!flush}. *)
val observe : t -> Sqlast.Ast.statement -> float -> unit

(** Apply deferred observations: new canonical keys enter the session
    (candidate generation batched over the domain pool, INUM resolved
    through the keyed store), weights sync, zero-mass keys leave.
    Idempotent; [recommend]/[whatif]/[stats] flush implicitly. *)
val flush : t -> unit

val window_size : t -> int
val session_statements : t -> int

(** Warm-started re-solve; the response carries objective, bound, gap,
    the recommended indexes, cache hit rate and latency quantiles. *)
val recommend : t -> Json.t

(** INUM cost of a SELECT under the last recommendation vs. no indexes. *)
val whatif : t -> Sqlast.Ast.statement -> Json.t

val stats_response : t -> Json.t

(** Dispatch one protocol request. *)
val handle : t -> Json.t -> Json.t

(** Parse one request line and answer with one response line (never
    raises on malformed input — errors come back as [{"ok":false,...}]). *)
val handle_line : t -> string -> string
