(* "Tool-A": a relaxation-based commercial-style advisor in the spirit of
   Bruno & Chaudhuri (SIGMOD 2005), the technique behind the paper's
   Tool-A.  It drives the what-if optimizer *directly* (no INUM), which is
   the root of its poor scaling with workload size:

   1. For each statement, optimize under the full per-query candidate set
     and keep the indexes the optimal plan actually uses — the per-query
     "ideal" configuration.
   2. Start from the union of the ideal configurations.
   3. While the storage budget is violated, apply the cheapest relaxation
     transformation: remove an index, or merge two indexes on the same
     table into a prefix-sharing one.  Each transformation is priced by
     re-optimizing the affected statements (more what-if calls).

   A wall-clock limit makes the technique give up like the paper's Tool-A
   did on the hardest inputs (Table 1: "Tool-A timed out"). *)

type options = {
  time_limit : float;
  max_transformations : int;
}

let default_options = { time_limit = 300.0; max_transformations = 500 }

let merge_indexes a b =
  (* prefix-preserving merge: key of [a], then [b]'s missing key columns;
     includes are unioned *)
  let key =
    Storage.Index.key_columns a
    @ List.filter
        (fun c -> not (List.mem c (Storage.Index.key_columns a)))
        (Storage.Index.key_columns b)
  in
  Storage.Index.create
    ~table:(Storage.Index.table a)
    ~includes:(Storage.Index.include_columns a @ Storage.Index.include_columns b)
    key

let solve ?(options = default_options) (env : Optimizer.Whatif.env)
    (w : Sqlast.Ast.workload) ~budget =
  let schema = env.Optimizer.Whatif.schema in
  let t0 = Runtime.Clock.now () in
  let out_of_time () = Runtime.Clock.now () -. t0 > options.time_limit in
  (* Step 1-2: per-statement ideal configurations through direct what-if. *)
  let statements =
    List.map
      (fun ({ Sqlast.Ast.stmt; weight } : Sqlast.Ast.weighted) ->
        let shell =
          match stmt with
          | Sqlast.Ast.Select q -> q
          | Sqlast.Ast.Update u -> Sqlast.Ast.query_shell u
        in
        (shell, weight))
      w
  in
  let truncated = ref false in
  let ideal =
    List.fold_left
      (fun acc (q, _) ->
        if out_of_time () then begin
          truncated := true;
          acc
        end
        else begin
          let per_query = Storage.Config.of_list (Cophy.Cgen.query_candidates q) in
          let plan = Optimizer.Whatif.optimize env q per_query in
          List.fold_left
            (fun acc ix -> Storage.Config.add ix acc)
            acc
            (Optimizer.Plan.indexes_used plan)
        end)
      Storage.Config.empty statements
  in
  (* Cached per-statement costs under the current configuration. *)
  let cost_of config q = Optimizer.Whatif.cost env q config in
  let total_cost config =
    List.fold_left
      (fun acc (q, weight) -> acc +. (weight *. cost_of config q))
      0.0 statements
  in
  let affected config_delta (q : Sqlast.Ast.query) =
    List.exists
      (fun ix -> List.mem (Storage.Index.table ix) q.Sqlast.Ast.tables)
      config_delta
  in
  let current = ref ideal in
  let current_costs =
    ref (List.map (fun (q, weight) -> (q, weight, cost_of ideal q)) statements)
  in
  let size c = Storage.Config.total_size schema c in
  let steps = ref 0 in
  let timed_out = ref false in
  while
    size !current > budget
    && (not !timed_out)
    && !steps < options.max_transformations
    && not (Storage.Config.is_empty !current)
  do
    incr steps;
    if out_of_time () then timed_out := true
    else begin
      (* candidate transformations *)
      let removals =
        List.map (fun ix -> ([ ix ], Storage.Config.remove ix !current))
          (Storage.Config.to_list !current)
      in
      let merges =
        let by_table = Hashtbl.create 8 in
        Storage.Config.iter
          (fun ix ->
            let tb = Storage.Index.table ix in
            Hashtbl.replace by_table tb
              (ix :: Option.value ~default:[] (Hashtbl.find_opt by_table tb)))
          !current;
        (* Sorted extraction: merge candidates come out in table-name
           order, so the greedy relaxation explores them deterministically. *)
        Runtime.Tbl.fold_sorted
          (fun _ ixs acc ->
            match ixs with
            | a :: b :: _ ->
                let m = merge_indexes a b in
                ( [ a; b ],
                  Storage.Config.add m
                    (Storage.Config.remove a (Storage.Config.remove b !current)) )
                :: acc
            | _ -> acc)
          by_table []
      in
      (* price each transformation: penalty per byte saved, re-optimizing
         only the affected statements.  The time check sits inside the
         pricing function: a single relaxation step over a large current
         configuration would otherwise overshoot the budget by far. *)
      let price (delta, config') =
        if out_of_time () then begin
          timed_out := true;
          None
        end
        else begin
          let saved = size !current -. size config' in
          if saved <= 0.0 then None
          else begin
            let penalty =
              List.fold_left
                (fun acc (q, weight, old_cost) ->
                  if affected delta q then
                    acc +. (weight *. (cost_of config' q -. old_cost))
                  else acc)
                0.0 !current_costs
            in
            Some (penalty /. saved, config')
          end
        end
      in
      let choices = List.filter_map price (removals @ merges) in
      match List.sort (fun (a, _) (b, _) -> compare a b) choices with
      | [] -> timed_out := size !current > budget
      | (_, config') :: _ ->
          current := config';
          current_costs :=
            List.map (fun (q, weight) -> (q, weight, cost_of config' q)) statements
    end
  done;
  let final =
    if size !current > budget then begin
      (* last resort: keep largest-benefit indexes greedily within budget;
         when time is gone, score by size alone instead of what-if calls *)
      let scored =
        if !timed_out || out_of_time () then
          List.map
            (fun ix -> (ix, -.Storage.Index.size_bytes schema ix))
            (Storage.Config.to_list !current)
          |> List.sort (fun (_, a) (_, b) -> compare b a)
        else begin
          let base = total_cost Storage.Config.empty in
          List.map
            (fun ix ->
              let only = Storage.Config.of_list [ ix ] in
              (ix, base -. total_cost only))
            (Storage.Config.to_list !current)
          |> List.sort (fun (_, a) (_, b) -> compare b a)
        end
      in
      let acc = ref Storage.Config.empty and used = ref 0.0 in
      List.iter
        (fun (ix, _) ->
          let s = Storage.Index.size_bytes schema ix in
          if !used +. s <= budget then begin
            acc := Storage.Config.add ix !acc;
            used := !used +. s
          end)
        scored;
      !acc
    end
    else !current
  in
  {
    Eval.config = final;
    seconds = Runtime.Clock.now () -. t0;
    whatif_calls = Optimizer.Whatif.whatif_calls env;
    candidates_examined = Storage.Config.cardinal ideal;
    timed_out = !timed_out || !truncated;
  }
