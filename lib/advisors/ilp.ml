(* The ILP baseline of Papadomanolakis & Ailamaki (SMDB 2007), per §5.1:
   index tuning as a BIP with one variable per *atomic configuration*
   rather than per index.  Since the number of atomic configurations grows
   with the product of per-table candidate counts, the technique must
   prune aggressively before the solver runs — and that pruning (plus the
   much larger BIP) is what makes it an order of magnitude slower than
   CoPhy (Figs. 5, 10).  Like the paper's reimplementation, ours is
   interfaced with INUM so what-if costs are fast, and uses the same
   solver as CoPhy. *)

type options = {
  per_table_cap : int;   (* candidates kept per table per query *)
  per_query_cap : int;   (* atomic configurations kept per query *)
  gap_tolerance : float;
  time_limit : float;
  jobs : int;            (* domains for the INUM build *)
}

let default_options =
  { per_table_cap = 4; per_query_cap = 40; gap_tolerance = 0.05;
    time_limit = 600.0; jobs = 1 }

type timings = {
  inum_seconds : float;
  build_seconds : float;   (* enumeration + pruning + BIP building *)
  solve_seconds : float;
}

type result = {
  config : Storage.Config.t;
  objective : float;
  timings : timings;
  configurations : int;    (* atomic configurations after pruning *)
}

(* Atomic configurations of a query from per-table shortlists. *)
let enumerate_atomic (inum : Inum.t) (candidates : Storage.Index.t array)
    ~per_table_cap =
  let tables = Inum.tables inum in
  let shortlist table =
    (* top candidates by their best achievable slot cost in any template *)
    let scored =
      Array.to_list candidates
      |> List.filter (fun ix -> Storage.Index.table ix = table)
      |> List.filter_map (fun ix ->
             let best = ref infinity in
             List.iteri
               (fun k _ ->
                 match Inum.gamma inum k ~table (Some ix) with
                 | Some g when g < !best -> best := g
                 | _ -> ())
               (Inum.templates inum);
             if !best < infinity then Some (ix, !best) else None)
      |> List.sort (fun (_, a) (_, b) -> compare a b)
    in
    None
    :: (List.filteri (fun i _ -> i < per_table_cap) scored
       |> List.map (fun (ix, _) -> Some ix))
  in
  let rec cross = function
    | [] -> [ [] ]
    | choices :: rest ->
        let tails = cross rest in
        List.concat_map (fun c -> List.map (fun tl -> c :: tl) tails) choices
  in
  cross (List.map shortlist tables)
  |> List.map (fun picks -> Storage.Config.of_list (List.filter_map Fun.id picks))

let solve ?(options = default_options) (env : Optimizer.Whatif.env)
    (w : Sqlast.Ast.workload) (candidates : Storage.Index.t array) ~budget =
  let schema = env.Optimizer.Whatif.schema in
  let t0 = Runtime.Clock.now () in
  let cache = Inum.build_workload ~jobs:options.jobs env w in
  let t1 = Runtime.Clock.now () in
  (* Enumerate and prune atomic configurations per query, costing each
     with INUM. *)
  let per_query =
    List.map
      (fun (q, weight, inum) ->
        let configs = enumerate_atomic inum candidates ~per_table_cap:options.per_table_cap in
        let costed =
          List.map (fun c -> (c, Inum.cost inum c)) configs
          |> List.sort (fun (_, a) (_, b) -> compare a b)
        in
        (* always keep the empty configuration so the BIP stays feasible *)
        let empty_cost = Inum.cost inum Storage.Config.empty in
        let kept = List.filteri (fun i _ -> i < options.per_query_cap) costed in
        let kept =
          if List.exists (fun (c, _) -> Storage.Config.is_empty c) kept then kept
          else kept @ [ (Storage.Config.empty, empty_cost) ]
        in
        (q, weight, kept))
      cache.Inum.selects
  in
  let nconfigs =
    List.fold_left (fun acc (_, _, ks) -> acc + List.length ks) 0 per_query
  in
  (* Build the BIP: y per (query, configuration); z per index. *)
  let p = Lp.Problem.create () in
  let ncand = Array.length candidates in
  let z_var =
    Array.init ncand (fun i ->
        let u =
          List.fold_left
            (fun acc (upd, weight) ->
              acc +. (weight *. Optimizer.Whatif.update_cost env upd candidates.(i)))
            0.0 cache.Inum.updates
        in
        Lp.Problem.add_var ~kind:Lp.Problem.Binary ~obj:u
          ~name:(Printf.sprintf "z%d" i) p)
  in
  let index_pos ix =
    let rec find i =
      if i >= ncand then None
      else if Storage.Index.equal candidates.(i) ix then Some i
      else find (i + 1)
    in
    find 0
  in
  List.iteri
    (fun qi (_, weight, kept) ->
      (* one linking row per (query, index): the sum of the y's of every
         configuration containing the index is bounded by z — valid since
         sum_c y_qc = 1, and tighter than per-configuration y <= z rows *)
      let links = Hashtbl.create 16 in
      let ys =
        List.mapi
          (fun ci (config, cost) ->
            let y =
              Lp.Problem.add_var ~kind:Lp.Problem.Binary ~obj:(weight *. cost)
                ~name:(Printf.sprintf "y%d_%d" qi ci) p
            in
            Storage.Config.iter
              (fun ix ->
                match index_pos ix with
                | Some pos ->
                    Hashtbl.replace links pos
                      (y :: Option.value ~default:[] (Hashtbl.find_opt links pos))
                | None -> ())
              config;
            y)
          kept
      in
      (* Sorted extraction: linking rows enter the ILP in candidate order,
         not hash order, so the model is reproducible run to run. *)
      List.iter
        (fun (pos, ys_using) ->
          ignore
            (Lp.Problem.add_row p
               ((z_var.(pos), -1.0) :: List.map (fun y -> (y, 1.0)) ys_using)
               Lp.Problem.Le 0.0))
        (Runtime.Tbl.sorted_bindings links);
      ignore
        (Lp.Problem.add_row p
           (List.map (fun y -> (y, 1.0)) ys)
           Lp.Problem.Eq 1.0))
    per_query;
  ignore
    (Lp.Problem.add_row ~name:"storage" p
       (Array.to_list
          (Array.mapi
             (fun i zv -> (zv, Storage.Index.size_bytes schema candidates.(i)))
             z_var))
       Lp.Problem.Le budget);
  let t2 = Runtime.Clock.now () in
  let bb_options =
    { Lp.Branch_bound.default_options with
      Lp.Branch_bound.gap_tolerance = options.gap_tolerance;
      time_limit = options.time_limit;
      (* branch on the index variables; the per-query configuration
         choice is a pure minimum once z is fixed *)
      decision_vars = Some (Array.to_list z_var) }
  in
  let r = Lp.Branch_bound.solve ~options:bb_options p in
  let t3 = Runtime.Clock.now () in
  let config =
    match r.Lp.Branch_bound.x with
    | Some x ->
        let acc = ref [] in
        Array.iteri
          (fun i zv -> if x.(zv) > 0.5 then acc := candidates.(i) :: !acc)
          z_var;
        Storage.Config.of_list !acc
    | None -> Storage.Config.empty
  in
  {
    config;
    objective = r.Lp.Branch_bound.obj;
    timings =
      { inum_seconds = t1 -. t0; build_seconds = t2 -. t1;
        solve_seconds = t3 -. t2 };
    configurations = nconfigs;
  }
