(** Shared parallel runtime for the CoPhy pipeline.

    The advisor pipeline has two embarrassingly parallel hot stages
    (per-statement INUM cache construction and per-block Lagrangian
    subproblems).  Both fan out through {!parallel_map}, which runs on a
    lazily-created pool of reusable worker domains.  The pool is a process
    singleton: repeated parallel sections reuse the same domains instead of
    paying [Domain.spawn] on every call.

    Determinism contract: [parallel_map f arr] returns exactly
    [Array.map f arr] — results are written back by index, so the output
    order never depends on domain scheduling.  With [jobs:1] (or on arrays
    of length [<= 1]) the call degrades to a plain sequential [Array.map]
    on the calling domain, bit-identical to the pre-parallel code path. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()], i.e. a job count matched to the
    hardware. *)

(** Monomorphic float comparisons (lint rule L1: no polymorphic [=] /
    [compare] on floats).  [exactly]/[is_zero]/[nonzero]/[is_inf] are
    exact (bit-intent) tests for sentinels and skip-work fast paths,
    NaN-reflexive unlike [=]; [approx]/[approx_rel] are the tolerance
    comparisons for computed quantities. *)
module Fx : sig
  val exactly : float -> float -> bool
  (** [Float.equal]: exact, [exactly nan nan = true], [-0. = 0.]. *)

  val is_zero : float -> bool
  val nonzero : float -> bool
  val is_inf : float -> bool  (** equal to [infinity] *)

  val is_neg_inf : float -> bool
  val is_finite : float -> bool
  val default_tol : float  (** [1e-9] *)

  val approx : ?tol:float -> float -> float -> bool
  (** absolute: [|a - b| <= tol] *)

  val approx_rel : ?tol:float -> float -> float -> bool
  (** relative: [|a - b| <= tol * (1 + |a| + |b|)] *)
end

(** Deterministic hash-table enumeration (lint rule L2: no order-sensitive
    [Hashtbl.iter]/[fold]).  All functions sort by key with polymorphic
    [compare], so results never depend on hash order. *)
module Tbl : sig
  val sorted_keys : ('a, 'b) Hashtbl.t -> 'a list
  (** distinct keys, ascending *)

  val sorted_bindings : ('a, 'b) Hashtbl.t -> ('a * 'b) list
  (** all bindings sorted by key (stable: duplicate-key bindings keep
      their relative order) *)

  val iter_sorted : ('a -> 'b -> unit) -> ('a, 'b) Hashtbl.t -> unit
  val fold_sorted : ('a -> 'b -> 'acc -> 'acc) -> ('a, 'b) Hashtbl.t -> 'acc -> 'acc
end

val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map ?jobs f arr] maps [f] over [arr] using up to [jobs]
    domains (the caller participates, so at most [jobs - 1] pool workers
    are enlisted).  [jobs] defaults to {!recommended_jobs}.

    - Order-preserving: element [i] of the result is [f arr.(i)].
    - Work is handed out in contiguous chunks claimed from an [Atomic]
      cursor, so uneven per-element cost balances across domains.
    - Exception-propagating: if any application of [f] raises, the first
      exception captured is re-raised on the calling domain after all
      workers have drained.
    - Re-entrant: a call made from inside a worker (nested parallelism)
      falls back to sequential [Array.map] rather than deadlocking on the
      pool. *)

(** Monotonic wall-clock used for every [elapsed]/timing field in the
    code base ({!Clock.now} is non-decreasing even if the system clock
    steps backwards). *)
module Clock : sig
  val now : unit -> float
  (** Seconds since process start; guaranteed non-decreasing across calls
      from any domain. *)
end

(** Atomic instrumentation counters shared across domains.  A [Stats.t]
    value can be handed to every pipeline stage and mutated concurrently;
    all updates are monotonic (counters only grow, timers only
    accumulate). *)
module Stats : sig
  type t

  type stage =
    | Inum_build  (** INUM workload-cache construction (what-if probing) *)
    | Bip_build  (** structured BIP ([Sproblem]) construction *)
    | Solve  (** BIP solve (exact or decomposition) *)

  val create : unit -> t
  val reset : t -> unit

  (** Counter increments (thread-safe, monotonic). *)

  val add_whatif_calls : t -> int -> unit
  val add_inum_probes : t -> int -> unit
  val add_inum_templates : t -> int -> unit
  val add_subproblem_solves : t -> int -> unit
  val add_cost_evals : t -> int -> unit

  (** Counter reads. *)

  val whatif_calls : t -> int
  val inum_probes : t -> int
  val inum_templates : t -> int
  val subproblem_solves : t -> int
  val cost_evals : t -> int

  val add_stage_seconds : t -> stage -> float -> unit
  (** Accumulate wall time into a stage timer. *)

  val stage_seconds : t -> stage -> float

  val timed : t -> stage -> (unit -> 'a) -> 'a
  (** [timed t stage f] runs [f ()] and charges its wall time (measured on
      {!Clock.now}) to [stage], even if [f] raises. *)

  val pp : Format.formatter -> t -> unit

  val to_json : t -> string
  (** Stable one-object JSON dump:
      [{"counters":{...},"stage_seconds":{...}}]. *)
end

(** Zero-overhead-when-off observability: named atomic counters and
    monotonic-clock spans recorded into fixed-capacity per-domain ring
    buffers, with Chrome [trace_event] and flat-metrics JSON exporters.

    Cost contract: with tracing disabled (the default) every probe —
    {!Trace.incr}, {!Trace.add}, {!Trace.span} — performs exactly one
    [Atomic.get] and nothing else, so instrumentation can stay compiled
    into hot paths.  Enabled, a counter tick is a single
    [Atomic.fetch_and_add] and a span costs two {!Clock.now} reads plus
    one write into a preallocated ring slot; memory retained by tracing
    is bounded by [max_domains * ring_capacity] span records.

    Concurrency contract: counters are shared atomics (safe from any
    domain, including {!parallel_map} workers); each domain records
    spans only into its own ring, and exporters must run outside
    parallel sections (the fan-out completion latch provides the
    happens-before edge).  Tracing never changes results: probes read
    the clock and mutate trace-private state only (the trace-neutrality
    determinism tests pin this down). *)
module Trace : sig
  val enabled : unit -> bool
  val enable : unit -> unit
  val disable : unit -> unit

  val reset : unit -> unit
  (** Zero all counters, drop all recorded spans and the
      {!dropped_spans} count.  Call between runs, never concurrently
      with recording. *)

  (** {2 Counters} *)

  type counter
  (** Handle to a named process-wide counter.  Obtain once (typically at
      module initialization) with {!counter}; ticking through a handle
      is lock-free. *)

  val counter : string -> counter
  (** Registers (or looks up) the counter named [name].  Idempotent:
      the same name always yields the same cell. *)

  val incr : counter -> unit
  val add : counter -> int -> unit
  val counters : unit -> (string * int) list
  (** All registered counters with current values, sorted by name. *)

  (** {2 Spans} *)

  type span = {
    sname : string;
    ts : float;  (** start, seconds on {!Clock.now} *)
    dur : float;  (** non-negative duration, seconds *)
    dom : int;  (** recording domain id *)
  }

  val span : string -> (unit -> 'a) -> 'a
  (** [span name f] runs [f ()], recording a span on the current
      domain's ring if tracing is enabled (even when [f] raises). *)

  val spans : unit -> span list
  (** Retained spans from every domain ring, sorted by start time.
      When a ring overflowed, only its newest {!ring_capacity} spans
      survive. *)

  val dropped_spans : unit -> int
  (** Spans lost to ring overflow since the last {!reset}. *)

  val ring_capacity : int
  (** Per-domain ring size, in spans. *)

  (** {2 Exporters} *)

  val to_metrics_json : unit -> string
  (** Flat metrics object:
      [{"counters":{...},"spans":{name:{"count":..,"seconds":..}},
        "dropped_spans":..}]. *)

  val to_chrome_json : unit -> string
  (** Chrome [trace_event] JSON (load in [chrome://tracing] or
      Perfetto): one complete ("ph":"X") event per span, microsecond
      timestamps, plus the {!to_metrics_json} object under a top-level
      ["metrics"] key. *)
end

(** Deferred request batching over the domain pool: queue independent
    requests as thunks, then run everything pending in one
    {!parallel_map} fan-out.  Amortizes fan-out cost for request streams
    (the serve daemon batches INUM builds and what-if evaluations this
    way); a single-item flush runs on the calling domain.

    A batch is single-owner state: [add]/[flush] must not race from
    several domains.  Thunks must be independent, exactly as for
    {!parallel_map}; results come back in submission order, and a thunk
    that raises propagates its exception out of [flush] after the
    drain. *)
module Batch : sig
  type 'a t

  val create : ?jobs:int -> unit -> 'a t
  (** [jobs] caps the flush fan-out (default [1] = sequential). *)

  val add : 'a t -> (unit -> 'a) -> unit
  val length : 'a t -> int
  (** Requests queued since the last flush. *)

  val flush : 'a t -> 'a list
  (** Run all pending thunks (one pool fan-out) and clear the queue;
      [[]] when nothing is pending. *)
end

(** Deterministic bulk-synchronous best-first search driver — the
    parallel node-pool engine behind {!Lp}'s branch and bound.

    Rounds pop up to [batch] best nodes (under [compare]) from one
    global priority queue, evaluate them concurrently on the domain pool
    with a stable node-to-slot assignment (node [i] of a round always
    runs in slot [i], so callers can pin per-slot scratch such as warm
    simplex sessions), and merge sequentially in pop order via [expand].
    Batch size, pop order, slot assignment and merge order are all
    independent of [jobs], so the search trajectory — node counts
    included — is bit-identical at every job count.  [eval] runs
    concurrently and must not write shared state; [expand] runs
    sequentially and is where incumbents move.  [stop] is polled between
    rounds. *)
module Search : sig
  type stats = {
    mutable rounds : int;
    mutable expanded : int;  (** nodes evaluated and merged *)
    mutable peak_open : int;  (** high-water mark of the open queue *)
  }

  val run :
    ?jobs:int ->
    ?batch:int ->
    compare:('n -> 'n -> int) ->
    roots:'n list ->
    eval:(slot:int -> 'n -> 'r) ->
    expand:('n -> 'r -> 'n list) ->
    stop:(unit -> bool) ->
    unit ->
    stats
end
