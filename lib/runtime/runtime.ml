(* Process-wide domain pool + instrumentation shared by every pipeline
   stage.  See runtime.mli for the determinism contract. *)

let recommended_jobs () = Domain.recommended_domain_count ()

(* ------------------------------------------------------------------ *)
(* Float comparison helpers (lint rule L1)                             *)
(* ------------------------------------------------------------------ *)

module Fx = struct
  (* Monomorphic and NaN-honest replacements for polymorphic =/<> on
     floats.  [exactly] is [Float.equal]: bitwise-intent equality that is
     reflexive on nan (unlike [=]) and treats -0. as 0.  The [is_*]
     predicates name the common sentinel tests so call sites state intent
     instead of comparing against a literal. *)
  let exactly = Float.equal
  let is_zero x = Float.equal x 0.0
  let nonzero x = not (Float.equal x 0.0)
  let is_inf x = Float.equal x infinity
  let is_neg_inf x = Float.equal x neg_infinity
  let is_finite = Float.is_finite

  (* Tolerance comparisons for computed quantities. *)
  let default_tol = 1e-9
  let approx ?(tol = default_tol) a b = abs_float (a -. b) <= tol

  let approx_rel ?(tol = default_tol) a b =
    abs_float (a -. b) <= tol *. (1.0 +. abs_float a +. abs_float b)
end

(* ------------------------------------------------------------------ *)
(* Deterministic hash-table extraction (lint rule L2)                  *)
(* ------------------------------------------------------------------ *)

module Tbl = struct
  (* The one sanctioned way to enumerate a hash table: extract and sort,
     so downstream order never depends on hash internals.  The raw folds
     below are the justified exceptions — their output is immediately
     canonicalized. *)

  let sorted_keys tbl =
    (* Justified: the fold's hash-order output feeds straight into sort. *)
    let[@lint.allow hashtbl_order] keys =
      (Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
      [@dsa.allow nondet "hash-order enumeration erased by sort_uniq below"])
    in
    List.sort_uniq compare keys

  let sorted_bindings tbl =
    (* Justified: hash-order fold canonicalized by the stable sort on
       keys (per-key insertion order of duplicate bindings survives). *)
    let[@lint.allow hashtbl_order] bindings =
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
      [@dsa.allow nondet
        "hash-order enumeration erased by the stable sort on keys below"])
    in
    List.stable_sort (fun (a, _) (b, _) -> compare a b) bindings

  let iter_sorted f tbl =
    List.iter (fun (k, v) -> f k v) (sorted_bindings tbl)

  let fold_sorted f tbl init =
    List.fold_left (fun acc (k, v) -> f k v acc) init (sorted_bindings tbl)
end

(* ------------------------------------------------------------------ *)
(* Monotonic clock                                                     *)
(* ------------------------------------------------------------------ *)

module Clock = struct
  (* Justified nondet_source: this module IS the sanctioned clock — the
     one place in lib/ allowed to read the wall clock. *)
  let[@lint.allow nondet_source] [@dsa.allow
                                   nondet
                                     "Clock IS the sanctioned wall-clock \
                                      source; consumers only feed Stats"]
    start =
    Unix.gettimeofday ()

  (* [Unix.gettimeofday] can step backwards (NTP adjustments); clamp to
     the largest value handed out so far so elapsed-time arithmetic never
     goes negative. *)
  let high_water = Atomic.make 0.0

  let[@lint.allow nondet_source] [@dsa.allow
                                   nondet
                                     "Clock IS the sanctioned wall-clock \
                                      source; consumers only feed Stats"]
    now () =
    let t = Unix.gettimeofday () -. start in
    let rec clamp () =
      let prev = Atomic.get high_water in
      if t <= prev then prev
      else if Atomic.compare_and_set high_water prev t then t
      else clamp ()
    in
    clamp ()
end

(* ------------------------------------------------------------------ *)
(* Domain pool                                                         *)
(* ------------------------------------------------------------------ *)

type worker = {
  lock : Mutex.t;
  cond : Condition.t;
  mutable job : (unit -> unit) option;
  mutable stop : bool;
}

(* Set on pool domains so a nested [parallel_map] from inside a worker
   degrades to sequential instead of deadlocking on [pool_lock]. *)
let in_worker = Domain.DLS.new_key (fun () -> false)

let worker_loop w () =
  Domain.DLS.set in_worker true;
  let rec loop () =
    Mutex.lock w.lock;
    while w.job = None && not w.stop do
      Condition.wait w.cond w.lock
    done;
    if w.stop then Mutex.unlock w.lock
    else begin
      let job = Option.get w.job in
      w.job <- None;
      Mutex.unlock w.lock;
      (* Jobs are latch-signalling wrappers built in [parallel_map]; they
         never raise. *)
      job ();
      loop ()
    end
  in
  loop ()

(* [pool_lock] serializes parallel sections (one fan-out at a time) and
   protects pool growth. *)
let pool_lock = Mutex.create ()

(* Justified global_state: the worker pool is a process singleton by
   design; every access below is under [pool_lock]. *)
let[@lint.allow global_state] workers : worker list ref = ref []
let[@lint.allow global_state] domains : unit Domain.t list ref = ref []
let[@lint.allow global_state] shutdown_registered = ref false
let max_workers = 126

let[@dsa.allow
     mutates_global
       "pool teardown; every write is behind pool_lock, and cophy-race \
        confirms shutdown is never reachable from a spawned closure"]
  shutdown () =
  Mutex.lock pool_lock;
  List.iter
    (fun w ->
      Mutex.lock w.lock;
      w.stop <- true;
      Condition.signal w.cond;
      Mutex.unlock w.lock)
    !workers;
  List.iter Domain.join !domains;
  workers := [];
  domains := [];
  Mutex.unlock pool_lock

(* Grow the pool to [n] workers.  Must be called with [pool_lock] held. *)
let[@dsa.allow
     mutates_global
       "pool growth; caller holds pool_lock (documented precondition), \
        and the pool lists are written only on the coordinating domain \
        — cophy-race audits the spawned side (worker_loop) separately"]
  [@dsa.allow io "one-shot at_exit hook so the pool joins cleanly"]
  ensure_workers n =
  let n = min n max_workers in
  if not !shutdown_registered then begin
    shutdown_registered := true;
    at_exit shutdown
  end;
  while List.length !workers < n do
    let w =
      { lock = Mutex.create (); cond = Condition.create (); job = None; stop = false }
    in
    let d = Domain.spawn (worker_loop w) in
    workers := w :: !workers;
    domains := d :: !domains
  done

let submit w job =
  Mutex.lock w.lock;
  w.job <- Some job;
  Condition.signal w.cond;
  Mutex.unlock w.lock

let parallel_map ?jobs f arr =
  let n = Array.length arr in
  let jobs = match jobs with Some j -> j | None -> recommended_jobs () in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 || n <= 1 || Domain.DLS.get in_worker then Array.map f arr
  else begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let failure : (exn * Printexc.raw_backtrace) option Atomic.t =
      Atomic.make None
    in
    (* Small chunks relative to [n / jobs] so uneven element costs
       rebalance; chunk >= 1 keeps the cursor loop terminating. *)
    let chunk = max 1 (n / (jobs * 8)) in
    let body () =
      let continue = ref true in
      while !continue do
        let lo = Atomic.fetch_and_add cursor chunk in
        if lo >= n || Atomic.get failure <> None then continue := false
        else begin
          let hi = min n (lo + chunk) in
          try
            for i = lo to hi - 1 do
              results.(i) <- Some (f arr.(i))
            done
          with e ->
            (* Keep the worker-domain backtrace: the exception is
               re-raised on the calling domain once workers drain. *)
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set failure None (Some (e, bt)));
            continue := false
        end
      done
    in
    Mutex.lock pool_lock;
    let finally () = Mutex.unlock pool_lock in
    (try
       let helpers = min (jobs - 1) max_workers in
       ensure_workers helpers;
       let enlisted =
         (* Any [helpers] workers will do; the pool list only grows. *)
         List.filteri (fun i _ -> i < helpers) !workers
       in
       let remaining = ref (List.length enlisted) in
       let latch_lock = Mutex.create () in
       let latch_cond = Condition.create () in
       let[@race.allow
            remaining
              "one completion latch per parallel section, shared by \
               design: every decrement and read happens under \
               latch_lock, and the waking broadcast is issued under the \
               same lock"] helper_job () =
         body ();
         Mutex.lock latch_lock;
         decr remaining;
         if !remaining = 0 then Condition.broadcast latch_cond;
         Mutex.unlock latch_lock
       in
       List.iter (fun w -> submit w helper_job) enlisted;
       body ();
       Mutex.lock latch_lock;
       while !remaining > 0 do
         Condition.wait latch_cond latch_lock
       done;
       Mutex.unlock latch_lock
     with e ->
       (* Only pool plumbing (e.g. Domain.spawn) can land here; [f]'s
          exceptions are routed through [failure]. *)
       let bt = Printexc.get_raw_backtrace () in
       finally ();
       Printexc.raise_with_backtrace e bt);
    finally ();
    match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        Array.map (function Some v -> v | None -> assert false) results
  end

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

module Stats = struct
  type stage = Inum_build | Bip_build | Solve

  type t = {
    whatif_calls : int Atomic.t;
    inum_probes : int Atomic.t;
    inum_templates : int Atomic.t;
    subproblem_solves : int Atomic.t;
    cost_evals : int Atomic.t;
    inum_build_s : float Atomic.t;
    bip_build_s : float Atomic.t;
    solve_s : float Atomic.t;
  }

  let create () =
    {
      whatif_calls = Atomic.make 0;
      inum_probes = Atomic.make 0;
      inum_templates = Atomic.make 0;
      subproblem_solves = Atomic.make 0;
      cost_evals = Atomic.make 0;
      inum_build_s = Atomic.make 0.0;
      bip_build_s = Atomic.make 0.0;
      solve_s = Atomic.make 0.0;
    }

  let reset t =
    Atomic.set t.whatif_calls 0;
    Atomic.set t.inum_probes 0;
    Atomic.set t.inum_templates 0;
    Atomic.set t.subproblem_solves 0;
    Atomic.set t.cost_evals 0;
    Atomic.set t.inum_build_s 0.0;
    Atomic.set t.bip_build_s 0.0;
    Atomic.set t.solve_s 0.0

  let add a k = if k <> 0 then ignore (Atomic.fetch_and_add a k)
  let add_whatif_calls t k = add t.whatif_calls k
  let add_inum_probes t k = add t.inum_probes k
  let add_inum_templates t k = add t.inum_templates k
  let add_subproblem_solves t k = add t.subproblem_solves k
  let add_cost_evals t k = add t.cost_evals k
  let whatif_calls t = Atomic.get t.whatif_calls
  let inum_probes t = Atomic.get t.inum_probes
  let inum_templates t = Atomic.get t.inum_templates
  let subproblem_solves t = Atomic.get t.subproblem_solves
  let cost_evals t = Atomic.get t.cost_evals

  let add_float a dt =
    let rec go () =
      let prev = Atomic.get a in
      if not (Atomic.compare_and_set a prev (prev +. dt)) then go ()
    in
    if Fx.nonzero dt then go ()

  let stage_cell t = function
    | Inum_build -> t.inum_build_s
    | Bip_build -> t.bip_build_s
    | Solve -> t.solve_s

  let add_stage_seconds t stage dt = add_float (stage_cell t stage) dt
  let stage_seconds t stage = Atomic.get (stage_cell t stage)

  let timed t stage f =
    let t0 = Clock.now () in
    Fun.protect ~finally:(fun () -> add_stage_seconds t stage (Clock.now () -. t0)) f

  let pp ppf t =
    Fmt.pf ppf
      "@[<v>counters: whatif=%d inum_probes=%d templates=%d sproblems=%d \
       cost_evals=%d@,\
       stages:   inum_build=%.3fs bip_build=%.3fs solve=%.3fs@]"
      (whatif_calls t) (inum_probes t) (inum_templates t) (subproblem_solves t)
      (cost_evals t)
      (stage_seconds t Inum_build)
      (stage_seconds t Bip_build) (stage_seconds t Solve)

  let to_json t =
    Printf.sprintf
      {|{"counters":{"whatif_calls":%d,"inum_probes":%d,"inum_templates":%d,"subproblem_solves":%d,"cost_evals":%d},"stage_seconds":{"inum_build":%.6f,"bip_build":%.6f,"solve":%.6f}}|}
      (whatif_calls t) (inum_probes t) (inum_templates t) (subproblem_solves t)
      (cost_evals t)
      (stage_seconds t Inum_build)
      (stage_seconds t Bip_build) (stage_seconds t Solve)
end

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

module Trace = struct
  (* Library-wide observability: named atomic counters plus
     monotonic-clock spans kept in fixed-capacity per-domain ring
     buffers.  Disabled (the default) every probe costs a single
     [Atomic.get]; enabled, a counter tick is one [fetch_and_add] and a
     span is two {!Clock.now} reads plus one preallocated ring slot.
     Retained memory is bounded by [max_domains * ring_capacity] slots
     no matter how long the traced run is, so the layer is safe to leave
     compiled into the [parallel_map] hot paths. *)

  let enabled_flag = Atomic.make false
  let enabled () = Atomic.get enabled_flag
  let enable () = Atomic.set enabled_flag true
  let disable () = Atomic.set enabled_flag false

  (* ---- counters ---- *)

  type counter = { cname : string; cell : int Atomic.t }

  let registry_lock = Mutex.create ()

  (* Justified global_state: the counter registry is the process-wide
     name -> cell map; every structural access is under
     [registry_lock], and the cells themselves are Atomics. *)
  let[@lint.allow global_state] registry : counter list ref = ref []

  let counter name =
    Mutex.lock registry_lock;
    let c =
      match List.find_opt (fun c -> String.equal c.cname name) !registry with
      | Some c -> c
      | None ->
          let c = { cname = name; cell = Atomic.make 0 } in
          registry := c :: !registry;
          c
    in
    Mutex.unlock registry_lock;
    c

  let incr c =
    if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.cell 1)

  let add c k =
    if k <> 0 && Atomic.get enabled_flag then
      ignore (Atomic.fetch_and_add c.cell k)

  let counters () =
    Mutex.lock registry_lock;
    let cs = !registry in
    Mutex.unlock registry_lock;
    List.map (fun c -> (c.cname, Atomic.get c.cell)) cs
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  (* ---- spans ---- *)

  type span = { sname : string; ts : float; dur : float; dom : int }

  let ring_capacity = 4096
  let max_domains = 128

  type ring = { slots : span array; mutable cursor : int }

  let dummy_span = { sname = ""; ts = 0.0; dur = 0.0; dom = 0 }

  (* Justified global_state: one ring slot per domain id.  Slot [d] is
     written exclusively by domain [d] (see [record_span]), so no lock
     is needed on the recording path. *)
  let[@lint.allow global_state] rings : ring option array =
    Array.make max_domains None

  let dropped = Atomic.make 0
  let dropped_spans () = Atomic.get dropped

  (* The sanctioned ring-buffer mutation.  [rings.(dom)] is only ever
     installed/written by domain [dom] itself, so concurrent recorders
     never touch the same slot; readers ([spans]/exporters) run after
     the parallel section's completion latch, which establishes the
     happens-before edge.  On overflow the oldest slot is overwritten
     (newest spans win) and [dropped] counts the loss. *)
  let[@dsa.allow
       mutates_global
         "per-domain span ring: slot [dom] is written only by domain \
          [dom] (cophy-race classifies the rings.(dom) write as \
          slot-disjoint, the index being Domain.self-derived); \
          exporters read after the parallel-section latch"]
    [@dsa.allow
      nondet
        "Domain.self only routes the span to the recorder's own \
         slot-disjoint ring; results never depend on which domain \
         recorded"]
    record_span name t0 t1 =
    let dom = (Domain.self () :> int) in
    if dom < 0 || dom >= max_domains then
      ignore (Atomic.fetch_and_add dropped 1)
    else begin
      let r =
        match rings.(dom) with
        | Some r -> r
        | None ->
            let r =
              { slots = Array.make ring_capacity dummy_span; cursor = 0 }
            in
            rings.(dom) <- Some r;
            r
      in
      if r.cursor >= ring_capacity then ignore (Atomic.fetch_and_add dropped 1);
      r.slots.(r.cursor mod ring_capacity) <-
        { sname = name; ts = t0; dur = t1 -. t0; dom };
      r.cursor <- r.cursor + 1
    end

  let span name f =
    if not (Atomic.get enabled_flag) then f ()
    else begin
      let t0 = Clock.now () in
      Fun.protect ~finally:(fun () -> record_span name t0 (Clock.now ())) f
    end

  let spans () =
    let acc = ref [] in
    Array.iter
      (function
        | None -> ()
        | Some r ->
            let n = min r.cursor ring_capacity in
            let start = if r.cursor > ring_capacity then r.cursor else 0 in
            for k = 0 to n - 1 do
              acc := r.slots.((start + k) mod ring_capacity) :: !acc
            done)
      rings;
    List.sort
      (fun a b ->
        let c = Float.compare a.ts b.ts in
        if c <> 0 then c
        else
          let c = Int.compare a.dom b.dom in
          if c <> 0 then c else String.compare a.sname b.sname)
      !acc

  let[@dsa.allow
       mutates_global
         "trace control plane: reset runs on the main domain between \
          runs, never inside a parallel section"]
    reset () =
    Mutex.lock registry_lock;
    List.iter (fun c -> Atomic.set c.cell 0) !registry;
    Mutex.unlock registry_lock;
    for d = 0 to max_domains - 1 do
      rings.(d) <- None
    done;
    Atomic.set dropped 0

  (* ---- exporters ---- *)

  let json_escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun ch ->
        match ch with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  (* Aggregate spans by name: (name, count, total seconds), sorted. *)
  let span_totals () =
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun s ->
        let n, d =
          match Hashtbl.find_opt tbl s.sname with
          | Some (n, d) -> (n, d)
          | None -> (0, 0.0)
        in
        Hashtbl.replace tbl s.sname (n + 1, d +. s.dur))
      (spans ());
    Tbl.sorted_bindings tbl
    |> List.map (fun (name, (n, d)) -> (name, n, d))

  let to_metrics_json () =
    let b = Buffer.create 1024 in
    Buffer.add_string b {|{"counters":{|};
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf {|"%s":%d|} (json_escape name) v))
      (counters ());
    Buffer.add_string b {|},"spans":{|};
    List.iteri
      (fun i (name, n, d) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf {|"%s":{"count":%d,"seconds":%.6f}|}
             (json_escape name) n d))
      (span_totals ());
    Buffer.add_string b
      (Printf.sprintf {|},"dropped_spans":%d}|} (dropped_spans ()));
    Buffer.contents b

  (* Chrome trace_event JSON (chrome://tracing, Perfetto): complete
     ("ph":"X") events with microsecond timestamps.  The flat metrics
     object rides along under a top-level "metrics" key, which the
     trace viewers ignore. *)
  let to_chrome_json () =
    let b = Buffer.create 4096 in
    Buffer.add_string b {|{"traceEvents":[|};
    List.iteri
      (fun i s ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf
             {|{"name":"%s","cat":"cophy","ph":"X","pid":1,"tid":%d,"ts":%.3f,"dur":%.3f}|}
             (json_escape s.sname) s.dom (s.ts *. 1e6) (s.dur *. 1e6)))
      (spans ());
    Buffer.add_string b {|],"displayTimeUnit":"ms","metrics":|};
    Buffer.add_string b (to_metrics_json ());
    Buffer.add_char b '}';
    Buffer.contents b
end

(* --- Request batching --- *)

(* A deferred fan-out queue over the domain pool.  Producers [add]
   independent requests as thunks; [flush] runs everything pending in one
   [parallel_map] fan-out and returns the results in submission order.
   The win over calling [parallel_map] at every request is amortization:
   a stream of small requests (the serve daemon's per-event INUM builds,
   multi-configuration what-if probes) pays one fan-out per drain instead
   of one per request, and single-item drains never touch the pool.

   Batches are owned by their creator and are not safe for concurrent
   [add]/[flush] from multiple domains; the thunks themselves run on pool
   workers and must be independent, exactly as for [parallel_map]. *)
module Batch = struct
  type 'a t = {
    jobs : int;
    mutable pending : (unit -> 'a) list;  (* reverse submission order *)
    mutable npending : int;
  }

  let tr_items = Trace.counter "runtime.batch_items"
  let tr_flushes = Trace.counter "runtime.batch_flushes"

  let create ?(jobs = 1) () = { jobs = max 1 jobs; pending = []; npending = 0 }

  let add b thunk =
    b.pending <- thunk :: b.pending;
    b.npending <- b.npending + 1

  let length b = b.npending

  let flush b =
    match b.pending with
    | [] -> []
    | pending ->
        let thunks = Array.of_list (List.rev pending) in
        b.pending <- [];
        b.npending <- 0;
        Trace.add tr_items (Array.length thunks);
        Trace.incr tr_flushes;
        parallel_map ~jobs:b.jobs (fun thunk -> thunk ()) thunks
        |> Array.to_list
end

module Search = struct
  (* Deterministic bulk-synchronous best-first search.

     One global priority queue (pairing heap under a caller-supplied
     total order) feeds rounds: each round pops up to [batch] best nodes
     in heap order, evaluates them concurrently on the domain pool —
     node [i] of the round always runs in evaluation slot [i], so a
     caller can pin per-slot scratch state (e.g. a warm simplex session)
     — and merges the results sequentially in pop order.  Because the
     batch size, the pop order, the slot assignment and the merge order
     are all independent of the job count, the search trajectory (and
     with it every result, node count included) is bit-identical at any
     [jobs].  Shared state such as an incumbent must only be written
     during [expand] (sequential); [eval] may read it freely — between
     two merges its value is deterministic. *)

  type stats = {
    mutable rounds : int;
    mutable expanded : int;  (* nodes evaluated and merged *)
    mutable peak_open : int;  (* high-water mark of the open queue *)
  }

  let tr_rounds = Trace.counter "search.rounds"
  let tr_expanded = Trace.counter "search.expanded"

  type 'n heap = Empty | Node of 'n * 'n heap list

  let run (type n r) ?(jobs = 1) ?(batch = 8) ~(compare : n -> n -> int)
      ~(roots : n list) ~(eval : slot:int -> n -> r)
      ~(expand : n -> r -> n list) ~(stop : unit -> bool) () =
    let jobs = max 1 jobs in
    let batch = max 1 batch in
    let merge a b =
      match (a, b) with
      | Empty, x | x, Empty -> x
      | Node (na, ca), Node (nb, cb) ->
          if compare na nb <= 0 then Node (na, b :: ca) else Node (nb, a :: cb)
    in
    let rec merge_pairs = function
      | [] -> Empty
      | [ h ] -> h
      | a :: b :: rest -> merge (merge a b) (merge_pairs rest)
    in
    let heap = ref Empty in
    let open_count = ref 0 in
    let push n =
      heap := merge (Node (n, [])) !heap;
      incr open_count
    in
    let pop () =
      match !heap with
      | Empty -> None
      | Node (n, children) ->
          heap := merge_pairs children;
          decr open_count;
          Some n
    in
    let st = { rounds = 0; expanded = 0; peak_open = 0 } in
    List.iter push roots;
    if !open_count > st.peak_open then st.peak_open <- !open_count;
    let finished = ref false in
    while not !finished do
      if stop () || !heap = Empty then finished := true
      else begin
        st.rounds <- st.rounds + 1;
        Trace.incr tr_rounds;
        let round = ref [] in
        let k = ref 0 in
        while !k < batch && !heap <> Empty do
          (match pop () with
          | Some n ->
              round := n :: !round;
              incr k
          | None -> ());
          ()
        done;
        let nodes = Array.of_list (List.rev !round) in
        let slots = Array.mapi (fun i n -> (i, n)) nodes in
        let results =
          parallel_map ~jobs (fun (i, n) -> eval ~slot:i n) slots
        in
        Array.iteri
          (fun i n ->
            st.expanded <- st.expanded + 1;
            Trace.incr tr_expanded;
            List.iter push (expand n results.(i)))
          nodes;
        if !open_count > st.peak_open then st.peak_open <- !open_count
      end
    done;
    st
end
