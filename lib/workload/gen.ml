(* Workload generators mirroring the paper's evaluation inputs:

   - [hom]: the homogeneous workload W^hom — random instantiations of 15
     fixed TPC-H-like query templates (the paper uses the TPC-H generator
     on fifteen templates).
   - [het]: the heterogeneous workload W^het — randomly structured
     SPJ queries with group-by and aggregation in the style of the online
     index-selection benchmark of Schnaitter & Polyzotis (C2 suite).
   - [with_updates]: mixes UPDATE statements into a workload.

   All generation is deterministic in the seed.  Predicate selectivities
   are drawn from the catalog's per-column Zipf distributions, so data
   skew (z) directly shapes the workloads as tpcdskew shaped the paper's. *)

open Sqlast

let col t c = Ast.col_ref t c

(* Draw an equality-predicate selectivity for a column: the mass of a rank
   sampled from the column's own distribution (popular values are queried
   more often, which is what makes skew interesting). *)
let eq_sel schema rng table column =
  let tbl = Catalog.Schema.find_table schema table in
  let c = Catalog.Schema.find_column tbl column in
  let zipf = Catalog.Schema.zipf_of_column c in
  let rank = Catalog.Zipf.sample zipf rng in
  Catalog.Zipf.mass zipf rank

let range_sel schema rng table column ~frac =
  let tbl = Catalog.Schema.find_table schema table in
  let c = Catalog.Schema.find_column tbl column in
  let zipf = Catalog.Schema.zipf_of_column c in
  Catalog.Zipf.range_selectivity_head_biased zipf ~frac rng

let eq_pred schema rng t c =
  Ast.predicate ~selectivity:(eq_sel schema rng t c) (col t c) Ast.Eq

let range_pred ?(frac = 0.1) schema rng t c =
  let cmp = if Random.State.bool rng then Ast.Le else Ast.Ge in
  Ast.predicate ~selectivity:(range_sel schema rng t c ~frac) (col t c) cmp

let between_pred ?(frac = 0.05) schema rng t c =
  Ast.predicate ~selectivity:(range_sel schema rng t c ~frac) (col t c)
    Ast.Between

(* --- The fifteen homogeneous templates --- *)

(* Each template takes (schema, rng, id) and returns a query.  They are
   freely adapted from TPC-H Q1,Q3,Q4,Q5,Q6,Q7,Q10,Q11,Q12,Q14,Q16,Q17,
   Q19 and two reporting shapes, restricted to the conjunctive equi-join
   subset of our SQL dialect. *)

let t01 schema rng id =
  (* Q1: pricing summary report *)
  {
    Ast.query_id = id;
    tables = [ "lineitem" ];
    select =
      [ Ast.Col (col "lineitem" "l_returnflag");
        Ast.Col (col "lineitem" "l_linestatus");
        Ast.Agg (Ast.Sum, col "lineitem" "l_extendedprice");
        Ast.Agg (Ast.Avg, col "lineitem" "l_discount") ];
    predicates = [ range_pred ~frac:0.9 schema rng "lineitem" "l_shipdate" ];
    joins = [];
    group_by = [ col "lineitem" "l_returnflag"; col "lineitem" "l_linestatus" ];
    order_by = [ (col "lineitem" "l_returnflag", Ast.Asc) ];
  }

let t02 schema rng id =
  (* Q3: shipping priority *)
  {
    Ast.query_id = id;
    tables = [ "customer"; "orders"; "lineitem" ];
    select =
      [ Ast.Col (col "lineitem" "l_orderkey");
        Ast.Agg (Ast.Sum, col "lineitem" "l_extendedprice");
        Ast.Col (col "orders" "o_orderdate") ];
    predicates =
      [ eq_pred schema rng "customer" "c_mktsegment";
        range_pred ~frac:0.4 schema rng "orders" "o_orderdate";
        range_pred ~frac:0.4 schema rng "lineitem" "l_shipdate" ];
    joins =
      [ { Ast.left = col "customer" "c_custkey"; right = col "orders" "o_custkey" };
        { Ast.left = col "orders" "o_orderkey"; right = col "lineitem" "l_orderkey" } ];
    group_by = [ col "lineitem" "l_orderkey"; col "orders" "o_orderdate" ];
    order_by = [ (col "orders" "o_orderdate", Ast.Asc) ];
  }

let t03 schema rng id =
  (* Q4: order priority checking *)
  {
    Ast.query_id = id;
    tables = [ "orders" ];
    select =
      [ Ast.Col (col "orders" "o_orderpriority");
        Ast.Agg (Ast.Count, col "orders" "o_orderkey") ];
    predicates = [ between_pred ~frac:0.1 schema rng "orders" "o_orderdate" ];
    joins = [];
    group_by = [ col "orders" "o_orderpriority" ];
    order_by = [ (col "orders" "o_orderpriority", Ast.Asc) ];
  }

let t04 schema rng id =
  (* Q5: local supplier volume *)
  {
    Ast.query_id = id;
    tables = [ "customer"; "orders"; "lineitem"; "nation" ];
    select =
      [ Ast.Col (col "nation" "n_name");
        Ast.Agg (Ast.Sum, col "lineitem" "l_extendedprice") ];
    predicates =
      [ range_pred ~frac:0.2 schema rng "orders" "o_orderdate";
        eq_pred schema rng "nation" "n_regionkey" ];
    joins =
      [ { Ast.left = col "customer" "c_custkey"; right = col "orders" "o_custkey" };
        { Ast.left = col "orders" "o_orderkey"; right = col "lineitem" "l_orderkey" };
        { Ast.left = col "customer" "c_nationkey"; right = col "nation" "n_nationkey" } ];
    group_by = [ col "nation" "n_name" ];
    order_by = [];
  }

let t05 schema rng id =
  (* Q6: forecasting revenue change *)
  {
    Ast.query_id = id;
    tables = [ "lineitem" ];
    select = [ Ast.Agg (Ast.Sum, col "lineitem" "l_extendedprice") ];
    predicates =
      [ between_pred ~frac:0.15 schema rng "lineitem" "l_shipdate";
        eq_pred schema rng "lineitem" "l_discount";
        range_pred ~frac:0.5 schema rng "lineitem" "l_quantity" ];
    joins = [];
    group_by = [];
    order_by = [];
  }

let t06 schema rng id =
  (* Q7: volume shipping *)
  {
    Ast.query_id = id;
    tables = [ "supplier"; "lineitem"; "orders" ];
    select =
      [ Ast.Col (col "supplier" "s_nationkey");
        Ast.Agg (Ast.Sum, col "lineitem" "l_extendedprice") ];
    predicates =
      [ between_pred ~frac:0.3 schema rng "lineitem" "l_shipdate";
        eq_pred schema rng "supplier" "s_nationkey" ];
    joins =
      [ { Ast.left = col "supplier" "s_suppkey"; right = col "lineitem" "l_suppkey" };
        { Ast.left = col "lineitem" "l_orderkey"; right = col "orders" "o_orderkey" } ];
    group_by = [ col "supplier" "s_nationkey" ];
    order_by = [];
  }

let t07 schema rng id =
  (* Q10: returned item reporting *)
  {
    Ast.query_id = id;
    tables = [ "customer"; "orders"; "lineitem" ];
    select =
      [ Ast.Col (col "customer" "c_custkey");
        Ast.Col (col "customer" "c_name");
        Ast.Agg (Ast.Sum, col "lineitem" "l_extendedprice") ];
    predicates =
      [ between_pred ~frac:0.08 schema rng "orders" "o_orderdate";
        eq_pred schema rng "lineitem" "l_returnflag" ];
    joins =
      [ { Ast.left = col "customer" "c_custkey"; right = col "orders" "o_custkey" };
        { Ast.left = col "orders" "o_orderkey"; right = col "lineitem" "l_orderkey" } ];
    group_by = [ col "customer" "c_custkey"; col "customer" "c_name" ];
    order_by = [];
  }

let t08 schema rng id =
  (* Q11: important stock identification *)
  {
    Ast.query_id = id;
    tables = [ "partsupp"; "supplier" ];
    select =
      [ Ast.Col (col "partsupp" "ps_partkey");
        Ast.Agg (Ast.Sum, col "partsupp" "ps_supplycost") ];
    predicates = [ eq_pred schema rng "supplier" "s_nationkey" ];
    joins =
      [ { Ast.left = col "partsupp" "ps_suppkey"; right = col "supplier" "s_suppkey" } ];
    group_by = [ col "partsupp" "ps_partkey" ];
    order_by = [];
  }

let t09 schema rng id =
  (* Q12: shipping modes and order priority *)
  {
    Ast.query_id = id;
    tables = [ "orders"; "lineitem" ];
    select =
      [ Ast.Col (col "lineitem" "l_shipmode");
        Ast.Agg (Ast.Count, col "orders" "o_orderkey") ];
    predicates =
      [ eq_pred schema rng "lineitem" "l_shipmode";
        between_pred ~frac:0.15 schema rng "lineitem" "l_receiptdate" ];
    joins =
      [ { Ast.left = col "orders" "o_orderkey"; right = col "lineitem" "l_orderkey" } ];
    group_by = [ col "lineitem" "l_shipmode" ];
    order_by = [ (col "lineitem" "l_shipmode", Ast.Asc) ];
  }

let t10 schema rng id =
  (* Q14: promotion effect *)
  {
    Ast.query_id = id;
    tables = [ "lineitem"; "part" ];
    select = [ Ast.Agg (Ast.Sum, col "lineitem" "l_extendedprice") ];
    predicates =
      [ between_pred ~frac:0.05 schema rng "lineitem" "l_shipdate";
        eq_pred schema rng "part" "p_type" ];
    joins =
      [ { Ast.left = col "lineitem" "l_partkey"; right = col "part" "p_partkey" } ];
    group_by = [];
    order_by = [];
  }

let t11 schema rng id =
  (* Q16: parts/supplier relationship *)
  {
    Ast.query_id = id;
    tables = [ "partsupp"; "part" ];
    select =
      [ Ast.Col (col "part" "p_brand");
        Ast.Col (col "part" "p_type");
        Ast.Agg (Ast.Count, col "partsupp" "ps_suppkey") ];
    predicates =
      [ eq_pred schema rng "part" "p_brand";
        range_pred ~frac:0.3 schema rng "part" "p_size" ];
    joins =
      [ { Ast.left = col "partsupp" "ps_partkey"; right = col "part" "p_partkey" } ];
    group_by = [ col "part" "p_brand"; col "part" "p_type" ];
    order_by = [ (col "part" "p_brand", Ast.Asc) ];
  }

let t12 schema rng id =
  (* Q17: small-quantity-order revenue *)
  {
    Ast.query_id = id;
    tables = [ "lineitem"; "part" ];
    select = [ Ast.Agg (Ast.Avg, col "lineitem" "l_extendedprice") ];
    predicates =
      [ eq_pred schema rng "part" "p_brand";
        eq_pred schema rng "part" "p_container";
        range_pred ~frac:0.1 schema rng "lineitem" "l_quantity" ];
    joins =
      [ { Ast.left = col "lineitem" "l_partkey"; right = col "part" "p_partkey" } ];
    group_by = [];
    order_by = [];
  }

let t13 schema rng id =
  (* Q19: discounted revenue, single-branch variant *)
  {
    Ast.query_id = id;
    tables = [ "lineitem"; "part" ];
    select = [ Ast.Agg (Ast.Sum, col "lineitem" "l_extendedprice") ];
    predicates =
      [ eq_pred schema rng "part" "p_container";
        range_pred ~frac:0.2 schema rng "lineitem" "l_quantity";
        eq_pred schema rng "lineitem" "l_shipmode";
        eq_pred schema rng "lineitem" "l_shipinstruct" ];
    joins =
      [ { Ast.left = col "lineitem" "l_partkey"; right = col "part" "p_partkey" } ];
    group_by = [];
    order_by = [];
  }

let t14 schema rng id =
  (* Customer account scan: selective lookup with projection *)
  {
    Ast.query_id = id;
    tables = [ "customer" ];
    select =
      [ Ast.Col (col "customer" "c_name");
        Ast.Col (col "customer" "c_acctbal");
        Ast.Col (col "customer" "c_phone") ];
    predicates =
      [ eq_pred schema rng "customer" "c_nationkey";
        range_pred ~frac:0.05 schema rng "customer" "c_acctbal" ];
    joins = [];
    group_by = [];
    order_by = [ (col "customer" "c_acctbal", Ast.Desc) ];
  }

let t15 schema rng id =
  (* Supplier balance by nation and region *)
  {
    Ast.query_id = id;
    tables = [ "supplier"; "nation"; "region" ];
    select =
      [ Ast.Col (col "nation" "n_name");
        Ast.Agg (Ast.Sum, col "supplier" "s_acctbal") ];
    predicates =
      [ eq_pred schema rng "region" "r_name";
        range_pred ~frac:0.3 schema rng "supplier" "s_acctbal" ];
    joins =
      [ { Ast.left = col "supplier" "s_nationkey"; right = col "nation" "n_nationkey" };
        { Ast.left = col "nation" "n_regionkey"; right = col "region" "r_regionkey" } ];
    group_by = [ col "nation" "n_name" ];
    order_by = [];
  }

(* Justified global_state: an array of closures built once at module init
   and never written afterwards — immutable in practice, safe to share
   across domains. *)
let[@lint.allow global_state] hom_templates =
  [| t01; t02; t03; t04; t05; t06; t07; t08; t09; t10; t11; t12; t13; t14; t15 |]

let hom schema ~n ~seed =
  let rng = Random.State.make [| seed; 0x5eed |] in
  List.init n (fun i ->
      let template = hom_templates.(i mod Array.length hom_templates) in
      { Ast.stmt = Ast.Select (template schema rng (i + 1)); weight = 1.0 })

(* --- Heterogeneous workload --- *)

(* Foreign-key join graph of TPC-H, as (left table, left col, right table,
   right col). *)
let fk_edges =
  [
    ("lineitem", "l_orderkey", "orders", "o_orderkey");
    ("lineitem", "l_partkey", "part", "p_partkey");
    ("lineitem", "l_suppkey", "supplier", "s_suppkey");
    ("partsupp", "ps_partkey", "part", "p_partkey");
    ("partsupp", "ps_suppkey", "supplier", "s_suppkey");
    ("orders", "o_custkey", "customer", "c_custkey");
    ("customer", "c_nationkey", "nation", "n_nationkey");
    ("supplier", "s_nationkey", "nation", "n_nationkey");
    ("nation", "n_regionkey", "region", "r_regionkey");
  ]

(* Columns eligible for predicates / grouping per table (non-comment
   attributes). *)
let predicate_columns = function
  | "lineitem" ->
      [ "l_quantity"; "l_extendedprice"; "l_discount"; "l_tax"; "l_returnflag";
        "l_linestatus"; "l_shipdate"; "l_commitdate"; "l_receiptdate";
        "l_shipinstruct"; "l_shipmode"; "l_suppkey"; "l_partkey" ]
  | "orders" ->
      [ "o_orderstatus"; "o_totalprice"; "o_orderdate"; "o_orderpriority";
        "o_clerk"; "o_custkey" ]
  | "customer" ->
      [ "c_nationkey"; "c_acctbal"; "c_mktsegment"; "c_phone" ]
  | "part" ->
      [ "p_mfgr"; "p_brand"; "p_type"; "p_size"; "p_container"; "p_retailprice" ]
  | "partsupp" -> [ "ps_availqty"; "ps_supplycost"; "ps_suppkey" ]
  | "supplier" -> [ "s_nationkey"; "s_acctbal" ]
  | "nation" -> [ "n_regionkey"; "n_name" ]
  | "region" -> [ "r_name" ]
  | t -> invalid_arg ("Gen.predicate_columns: " ^ t)

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))

let rec pick_distinct rng k xs =
  if k = 0 || xs = [] then []
  else begin
    let x = pick rng xs in
    x :: pick_distinct rng (k - 1) (List.filter (fun y -> y <> x) xs)
  end

(* Grow a connected random table set along FK edges. *)
let random_table_set rng k =
  let start = pick rng [ "lineitem"; "orders"; "customer"; "part"; "partsupp"; "supplier" ] in
  let rec grow tables joins =
    if List.length tables >= k then (tables, joins)
    else begin
      let frontier =
        List.filter
          (fun (lt, _, rt, _) ->
            (List.mem lt tables && not (List.mem rt tables))
            || (List.mem rt tables && not (List.mem lt tables)))
          fk_edges
      in
      match frontier with
      | [] -> (tables, joins)
      | _ ->
          let (lt, lc, rt, rc) = pick rng frontier in
          let newt = if List.mem lt tables then rt else lt in
          grow (newt :: tables)
            ({ Ast.left = col lt lc; right = col rt rc } :: joins)
    end
  in
  grow [ start ] []

let het_query schema rng id =
  let ntables = 1 + Random.State.int rng 4 in
  let tables, joins = random_table_set rng ntables in
  let preds =
    List.concat_map
      (fun t ->
        let cols = predicate_columns t in
        let npred = Random.State.int rng 3 in
        List.map
          (fun c ->
            match Random.State.int rng 3 with
            | 0 -> eq_pred schema rng t c
            | 1 -> range_pred ~frac:(0.01 +. Random.State.float rng 0.3) schema rng t c
            | _ -> between_pred ~frac:(0.01 +. Random.State.float rng 0.1) schema rng t c)
          (pick_distinct rng npred cols))
      tables
  in
  let group_by =
    if Random.State.bool rng then
      let t = pick rng tables in
      List.map (col t) (pick_distinct rng (1 + Random.State.int rng 2) (predicate_columns t))
    else []
  in
  let agg_col =
    let t = pick rng tables in
    col t (pick rng (predicate_columns t))
  in
  let select =
    if group_by <> [] then
      List.map (fun c -> Ast.Col c) group_by
      @ [ Ast.Agg (pick rng [ Ast.Sum; Ast.Count; Ast.Avg; Ast.Min; Ast.Max ], agg_col) ]
    else begin
      let t = pick rng tables in
      List.map (fun c -> Ast.Col (col t c))
        (pick_distinct rng (1 + Random.State.int rng 3) (predicate_columns t))
    end
  in
  let order_by =
    if group_by = [] && Random.State.int rng 3 = 0 then
      let t = pick rng tables in
      [ (col t (pick rng (predicate_columns t)), Ast.Asc) ]
    else []
  in
  { Ast.query_id = id; tables; select; predicates = preds; joins; group_by; order_by }

let het schema ~n ~seed =
  let rng = Random.State.make [| seed; 0xbeef |] in
  List.init n (fun i ->
      { Ast.stmt = Ast.Select (het_query schema rng (i + 1)); weight = 1.0 })

(* --- Updates --- *)

let updatable = [
  ("lineitem", [ "l_extendedprice"; "l_discount"; "l_quantity" ],
   [ "l_orderkey"; "l_partkey"; "l_suppkey" ]);
  ("orders", [ "o_orderstatus"; "o_totalprice" ], [ "o_custkey"; "o_orderdate" ]);
  ("customer", [ "c_acctbal" ], [ "c_custkey"; "c_nationkey" ]);
  ("partsupp", [ "ps_availqty"; "ps_supplycost" ], [ "ps_partkey"; "ps_suppkey" ]);
]

let update schema rng id =
  let (t, settable, wherecols) = pick rng updatable in
  let set_columns = pick_distinct rng (1 + Random.State.int rng 2) settable in
  let wc = pick rng wherecols in
  { Ast.update_id = id; target = t; set_columns;
    where = [ eq_pred schema rng t wc ] }

(* Replace a fraction of a workload's statements with UPDATEs (keeping
   weights and ids). *)
let with_updates schema ~fraction ~seed (w : Ast.workload) =
  if fraction < 0.0 || fraction > 1.0 then
    invalid_arg "Gen.with_updates: fraction out of [0,1]";
  let rng = Random.State.make [| seed; 0xda7a |] in
  List.map
    (fun ({ Ast.stmt; weight } as orig) ->
      if Random.State.float rng 1.0 < fraction then
        { Ast.stmt = Ast.Update (update schema rng (Ast.statement_id stmt)); weight }
      else orig)
    w
