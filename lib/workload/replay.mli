(** Drifting replay streams for the serve daemon and its bench leg:
    statement observations (with frequency deltas) whose hot set slides
    across the template population, interleaved with recommendation
    markers.  Deterministic in the seed. *)

type event =
  | Statement of Sqlast.Ast.statement * float
      (** observe a statement with a frequency delta *)
  | Recommend  (** ask for a recommendation at this point *)

(** [drift schema ~n ~events ~seed] — a stream of [events] observations
    over [n] homogeneous templates ({!Gen.hom}), hot set drifting from
    the first template to the last over the stream's lifetime.  With
    [recommend_every > 0] (default [0]: none mid-stream), a {!Recommend}
    marker every that many observations; the stream always ends with
    one.  [update_fraction] mixes UPDATE statements in ({!Gen.with_updates}).
    @raise Invalid_argument when [n < 1] or [events < 0]. *)
val drift :
  ?recommend_every:int ->
  ?update_fraction:float ->
  Catalog.Schema.t ->
  n:int ->
  events:int ->
  seed:int ->
  event list

(** The observations of a stream, markers dropped. *)
val statements : event list -> (Sqlast.Ast.statement * float) list
