(* Drifting replay streams for the serve daemon and its bench leg.

   A stream interleaves statement observations (a statement plus a
   frequency delta) with recommendation markers.  Frequencies drift: the
   "hot set" of templates slides across the template population as the
   stream progresses, the way real workloads rotate through reporting
   periods — so a long-running advisor sees both heavy repetition
   (keyed-INUM cache hits) and genuine novelty (new canonical keys).

   Deterministic in the seed, like every generator in this library. *)

open Sqlast

type event =
  | Statement of Ast.statement * float  (* observation: statement, delta *)
  | Recommend  (* ask the advisor for a recommendation at this point *)

let statement_of_weighted (wt : Ast.weighted) = wt.Ast.stmt

(* Geometric-ish offset from the hot center: offset o with probability
   proportional to decay^o.  Small support, cheap inverse sampling. *)
let sample_offset rng ~spread =
  let u = Random.State.float rng 1.0 in
  let decay = 0.5 in
  let rec go o acc p =
    if o >= spread then spread - 1
    else if u < acc +. p then o
    else go (o + 1) (acc +. p) (p *. decay)
  in
  go 0 0.0 (1.0 -. decay)

let drift ?(recommend_every = 0) ?(update_fraction = 0.0) schema ~n ~events
    ~seed =
  if n < 1 then invalid_arg "Replay.drift: n < 1";
  if events < 0 then invalid_arg "Replay.drift: events < 0";
  let base = Gen.hom schema ~n ~seed in
  let base =
    if update_fraction > 0.0 then
      Gen.with_updates schema ~fraction:update_fraction ~seed base
    else base
  in
  let stmts = Array.of_list (List.map statement_of_weighted base) in
  let rng = Random.State.make [| seed; 0x5e7e |] in
  let spread = max 1 (min n 8) in
  let out = ref [] in
  let emitted = ref 0 in
  for i = 0 to events - 1 do
    (* the hot window slides across the whole population over the
       stream's lifetime *)
    let center =
      if events <= 1 then 0 else i * (n - 1) / max 1 (events - 1)
    in
    let j = (center + sample_offset rng ~spread) mod n in
    out := Statement (stmts.(j), 1.0) :: !out;
    incr emitted;
    if recommend_every > 0 && !emitted mod recommend_every = 0 then
      out := Recommend :: !out
  done;
  (* a stream always ends in a recommendation point *)
  (match !out with
  | Recommend :: _ | [] -> ()
  | _ -> out := Recommend :: !out);
  List.rev !out

let statements evs =
  List.filter_map (function Statement (s, d) -> Some (s, d) | Recommend -> None)
    evs
