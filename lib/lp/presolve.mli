(** BIP/LP presolve: shrink a {!Problem.t} before it reaches the simplex
    and map solutions back to the original variable space.

    Rules applied to a fixpoint (bounded rounds):

    - integral bound rounding on binary/integer variables (when
      [integral], the default);
    - singleton-row elimination (the row becomes a bound, then drops as
      redundant);
    - implied-bound tightening from row activity bounds, with integral
      rounding on binary/integer variables — the rule that fixes binary
      selection variables whose activation alone would overrun a budget
      row;
    - empty-row consistency checks and removal;
    - duplicate-row merging (rows identical after sign/scale
      normalization keep only the tightest right-hand side);
    - row coefficient scaling (equilibration) when a row's magnitude is
      far from 1 — the storage-budget rows of CoPhy BIPs carry
      byte-scale coefficients that would otherwise dominate the
      factorization's threshold pivoting.

    Presolve never mutates its input.  With [integral] set the reduction
    preserves the set of integer-feasible solutions (not necessarily the
    LP relaxation's optimum), which is what branch-and-bound needs. *)

type stats = {
  mutable rows_removed : int;
  mutable vars_removed : int;  (** variables fixed and substituted out *)
  mutable bounds_tightened : int;
}

val create_stats : unit -> stats

type mapping = {
  reduced : Problem.t;
  entries : entry array;  (** original variable -> fate *)
  row_keep : int array;  (** reduced row -> original row *)
  row_scale : float array;  (** per reduced row: original = reduced * s *)
  orig : Problem.t;
}

and entry = Kept of int | Fixed of float

type outcome =
  | Feasible of mapping
  | Proved_infeasible of string  (** human-readable reason *)

val run : ?integral:bool -> ?stats:stats -> Problem.t -> outcome

(** Lift a reduced-space solution back to the original variables. *)
val restore_x : mapping -> float array -> float array

(** Lift reduced-space duals back to original rows (dropped rows get 0;
    scaled rows are unscaled).

    Caveat: duals are only guaranteed valid for rows that survive
    presolve.  A removed row — one absorbed into variable bounds or
    dropped as redundant-at-tolerance — can in degenerate cases be
    binding with a nonzero dual, which this restoration reports as 0.
    Callers needing exact duals for every row should solve with presolve
    disabled. *)
val restore_duals : mapping -> float array -> float array
