(** Bounded-variable primal simplex (revised form) over a pluggable
    basis representation.

    Two phases: artificial variables establish feasibility, then the real
    objective is minimized.  Nonbasic variables rest at a bound; the
    ratio test includes bound-to-bound flips.  Dantzig pricing with a
    Bland's-rule fallback after stalling guards against cycling.

    The basis inverse is kept either as an explicit dense matrix
    ({!Dense}, the historical reference kernel, O(m^2) per pivot) or as
    a sparse LU factorization maintained by product-form eta updates and
    periodic refactorization ({!Sparse}, cost proportional to factor
    nonzeros).  Both kernels run the identical pricing loop and agree on
    the optimum value (degenerate ties can land on different optimal
    vertices); callers normally go through {!Backend} rather than
    picking a kernel here. *)

type status = Optimal | Infeasible | Unbounded | Iter_limit

type result = {
  status : status;
  x : float array;  (** structural variable values *)
  obj : float;  (** c'x, without the problem's objective offset *)
  duals : float array;  (** one per row *)
  iterations : int;
}

type basis_kind =
  | Dense  (** explicit dense B^-1, elementary row updates *)
  | Sparse  (** Markowitz LU + eta file + refactorization trigger *)

type kernel_stats = {
  mutable pivots : int;  (** basis changes (bound flips excluded) *)
  mutable refactorizations : int;  (** sparse-basis rebuilds mid-solve *)
  mutable iterations : int;  (** pricing-loop iterations across both phases *)
  mutable etas_pushed : int;  (** product-form eta vectors appended *)
  mutable max_eta_len : int;  (** peak eta-file length between rebuilds *)
  mutable dual_iterations : int;  (** dual-simplex pricing iterations *)
  mutable warm_resolves : int;  (** basis restores that skipped phase 1 *)
}

val create_stats : unit -> kernel_stats

(** Accumulate [s] into [into] (sums; [max_eta_len] takes the max).  Used
    by the parallel search driver to merge per-worker kernel stats
    deterministically. *)
val add_stats : into:kernel_stats -> kernel_stats -> unit

(** Solve the LP relaxation (integrality marks are ignored).
    [max_iters = 0] picks a default proportional to the problem size.
    [basis] selects the kernel (default [Dense], the reference);
    [stats] accumulates the kernel counters when given.  The same events
    also tick the process-wide [Runtime.Trace] counters
    [simplex.iterations] / [simplex.pivots] / [simplex.refactorizations]
    / [simplex.etas_pushed] / [simplex.solves] when tracing is on. *)
val solve :
  ?max_iters:int -> ?basis:basis_kind -> ?stats:kernel_stats -> Problem.t -> result

(** Basis snapshots: the basis assignment, every nonbasic's rest bound,
    and a frozen, structurally shared reference to the LU + eta factors
    that were valid for that basis.  Saving is a few array copies;
    restoring installs the shared factors with a private solve scratch,
    so snapshots may be restored concurrently on different domains. *)
module Basis : sig
  type t
end

(** A warm-capable solver handle bound to one problem (sparse kernel).
    Sessions never mutate the problem: node-specific variable bounds are
    passed as [(var, lb, ub)] overrides, which is what lets a parallel
    search share one immutable {!Problem.t} across workers. *)
type session

val new_session : ?stats:kernel_stats -> Problem.t -> session

(** Cold two-phase primal solve under the problem's bounds plus
    [bounds] overrides.  Leaves the optimal basis available to
    {!save_basis}. *)
val session_solve :
  ?max_iters:int -> ?bounds:(int * float * float) list -> session -> result

(** Snapshot the basis left by the session's last solve ([None] if the
    session has not solved yet). *)
val save_basis : session -> Basis.t option

(** Dual-simplex re-solve from a parent basis after bound changes: the
    parent's basis stays dual feasible, so the dual simplex only has to
    repair primal feasibility — typically a handful of pivots instead of
    a full two-phase solve.  Falls back to a cold {!session_solve} (same
    bound overrides) whenever the snapshot cannot be trusted: missing or
    shape-stale frozen factors, numerical trouble, an iteration-limited
    dual run, or a dual-simplex infeasibility verdict (always re-proved
    cold before a search may prune on it).  Ticks [kernel_stats.
    warm_resolves] / [dual_iterations] and the [simplex.warm_resolves] /
    [simplex.dual_iterations] trace counters. *)
val warm_solve :
  ?max_iters:int ->
  ?bounds:(int * float * float) list ->
  session ->
  Basis.t ->
  result
