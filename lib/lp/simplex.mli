(** Bounded-variable primal simplex (revised form) over a pluggable
    basis representation.

    Two phases: artificial variables establish feasibility, then the real
    objective is minimized.  Nonbasic variables rest at a bound; the
    ratio test includes bound-to-bound flips.  Dantzig pricing with a
    Bland's-rule fallback after stalling guards against cycling.

    The basis inverse is kept either as an explicit dense matrix
    ({!Dense}, the historical reference kernel, O(m^2) per pivot) or as
    a sparse LU factorization maintained by product-form eta updates and
    periodic refactorization ({!Sparse}, cost proportional to factor
    nonzeros).  Both kernels run the identical pricing loop and agree on
    the optimum value (degenerate ties can land on different optimal
    vertices); callers normally go through {!Backend} rather than
    picking a kernel here. *)

type status = Optimal | Infeasible | Unbounded | Iter_limit

type result = {
  status : status;
  x : float array;  (** structural variable values *)
  obj : float;  (** c'x, without the problem's objective offset *)
  duals : float array;  (** one per row *)
  iterations : int;
}

type basis_kind =
  | Dense  (** explicit dense B^-1, elementary row updates *)
  | Sparse  (** Markowitz LU + eta file + refactorization trigger *)

type kernel_stats = {
  mutable pivots : int;  (** basis changes (bound flips excluded) *)
  mutable refactorizations : int;  (** sparse-basis rebuilds mid-solve *)
  mutable iterations : int;  (** pricing-loop iterations across both phases *)
  mutable etas_pushed : int;  (** product-form eta vectors appended *)
  mutable max_eta_len : int;  (** peak eta-file length between rebuilds *)
}

val create_stats : unit -> kernel_stats

(** Solve the LP relaxation (integrality marks are ignored).
    [max_iters = 0] picks a default proportional to the problem size.
    [basis] selects the kernel (default [Dense], the reference);
    [stats] accumulates the kernel counters when given.  The same events
    also tick the process-wide [Runtime.Trace] counters
    [simplex.iterations] / [simplex.pivots] / [simplex.refactorizations]
    / [simplex.etas_pushed] / [simplex.solves] when tracing is on. *)
val solve :
  ?max_iters:int -> ?basis:basis_kind -> ?stats:kernel_stats -> Problem.t -> result
