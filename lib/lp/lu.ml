(* Sparse LU factorization with Markowitz pivoting.

   Right-looking elimination over hash-table rows: at step k the pivot
   (i, j) minimizes the Markowitz count (r_i - 1)(c_j - 1) among entries
   with |a_ij| >= tau * max|column j| (threshold partial pivoting,
   tau = 0.1).  The column search is bounded to the few sparsest active
   columns — the classical compromise between fill-in quality and search
   cost.  Ties break on larger magnitude, then smallest (column, row), so
   a given matrix always factors the same way.

   The factors record the pivot order:  P B Q = L U  with L unit lower
   triangular and U upper triangular in permuted coordinates, where P is
   the row (pr) and Q the basis-position (pc) pivot sequence. *)

module Fx = Runtime.Fx

type t = {
  m : int;
  pr : int array;                      (* step -> original row *)
  pc : int array;                      (* step -> basis position *)
  rpos : int array;                    (* original row -> step *)
  diag : float array;                  (* U diagonal, by step *)
  urow : (int * float) array array;    (* U row per step: (step', coeff), step' > step *)
  lcol : (int * float) array array;    (* L column per step: (orig row, coeff) *)
  work : float array;                  (* scratch for solves *)
  nnz : int;
}

exception Singular of int

let nnz t = t.nnz

(* The factor arrays are immutable after [factor]; only [work] is written
   by the solves.  A fresh-scratch alias therefore lets two domains use
   the same factorization concurrently — the basis-snapshot machinery in
   {!Simplex} relies on this to share a parent LU across search workers. *)
let with_fresh_scratch t = { t with work = Array.make t.m 0.0 }

(* Entries smaller than this created by elimination updates are dropped
   (pure fill noise; original coefficients are never dropped). *)
let drop_tol = 1e-12
let threshold = 0.1
let search_cols = 12

let factor ~m ~(cols : (int * float) array array) ~(basis : int array) =
  (* Active matrix: rows.(i) maps basis position -> value; colrows.(j) is
     the set of rows with a nonzero in position j.  Hashtbl.length is
     O(1), so row/column counts need no separate bookkeeping. *)
  let rows = Array.init m (fun _ -> Hashtbl.create 8) in
  let colrows = Array.init m (fun _ -> Hashtbl.create 8) in
  for k = 0 to m - 1 do
    Array.iter
      (fun (i, a) ->
        if Fx.nonzero a then begin
          Hashtbl.replace rows.(i) k a;
          Hashtbl.replace colrows.(k) i ()
        end)
      cols.(basis.(k))
  done;
  let col_active = Array.make m true in
  let pr = Array.make m 0 and pc = Array.make m 0 in
  let rpos = Array.make m 0 in
  let diag = Array.make m 0.0 in
  let urow = Array.make m [||] and lcol = Array.make m [||] in
  let nnz = ref 0 in
  (* A column's rows in deterministic (sorted) order. *)
  let sorted_rows tbl = Runtime.Tbl.sorted_keys tbl in
  (* [rows] and [colrows] are maintained as exact mirrors, so a lookup
     along the mirror is always a hit; a miss would be a broken
     invariant, not a catchable condition. *)
  let get tbl k =
    match Hashtbl.find_opt tbl k with Some v -> v | None -> assert false
  in
  for step = 0 to m - 1 do
    (* --- pivot search: bounded Markowitz --- *)
    let minc = ref max_int in
    for j = 0 to m - 1 do
      if col_active.(j) then begin
        let c = Hashtbl.length colrows.(j) in
        if c < !minc then minc := c
      end
    done;
    if !minc = 0 || !minc = max_int then raise (Singular step);
    let best_cost = ref max_int in
    let best_mag = ref 0.0 in
    let best_i = ref (-1) and best_j = ref (-1) in
    let examined = ref 0 in
    let j = ref 0 in
    while !examined < search_cols && !j < m do
      if col_active.(!j) && Hashtbl.length colrows.(!j) <= !minc + 2 then begin
        incr examined;
        let entries = sorted_rows colrows.(!j) in
        let colmax =
          List.fold_left
            (fun acc i -> max acc (abs_float (get rows.(i) !j)))
            0.0 entries
        in
        if colmax > 0.0 then begin
          let cj = Hashtbl.length colrows.(!j) in
          List.iter
            (fun i ->
              let a = abs_float (get rows.(i) !j) in
              if a >= threshold *. colmax then begin
                let cost = (Hashtbl.length rows.(i) - 1) * (cj - 1) in
                if
                  cost < !best_cost
                  || (cost = !best_cost && a > !best_mag +. 1e-300)
                then begin
                  best_cost := cost;
                  best_mag := a;
                  best_i := i;
                  best_j := !j
                end
              end)
            entries
        end
      end;
      incr j
    done;
    if !best_i < 0 then raise (Singular step);
    let p_r = !best_i and p_c = !best_j in
    let piv = get rows.(p_r) p_c in
    pr.(step) <- p_r;
    pc.(step) <- p_c;
    rpos.(p_r) <- step;
    diag.(step) <- piv;
    (* --- retire the pivot row and column --- *)
    col_active.(p_c) <- false;
    let urow_entries =
      Runtime.Tbl.sorted_bindings rows.(p_r)
      |> List.filter (fun (cj, _) -> cj <> p_c)
    in
    (* Justified hashtbl_order: removals target disjoint tables (one per
       column) and commute, so visit order cannot matter. *)
    ((Hashtbl.iter [@lint.allow hashtbl_order])
       (fun cj _ -> Hashtbl.remove colrows.(cj) p_r)
       rows.(p_r)
    [@dsa.allow nondet
      "removals target disjoint per-column tables and commute"]);
    (* urow stores original basis positions for now; remapped to steps
       after every column has been eliminated. *)
    urow.(step) <- Array.of_list urow_entries;
    nnz := !nnz + 1 + Array.length urow.(step);
    (* --- eliminate below the pivot --- *)
    let elim = sorted_rows colrows.(p_c) in
    Hashtbl.reset colrows.(p_c);
    let lentries =
      List.map
        (fun i ->
          let l = get rows.(i) p_c /. piv in
          Hashtbl.remove rows.(i) p_c;
          List.iter
            (fun (cj, uv) ->
              let prev = Hashtbl.find_opt rows.(i) cj in
              let nv = Option.value ~default:0.0 prev -. (l *. uv) in
              if abs_float nv <= drop_tol then begin
                if prev <> None then begin
                  Hashtbl.remove rows.(i) cj;
                  Hashtbl.remove colrows.(cj) i
                end
              end
              else begin
                Hashtbl.replace rows.(i) cj nv;
                if prev = None then Hashtbl.replace colrows.(cj) i ()
              end)
            urow_entries;
          (i, l))
        elim
    in
    lcol.(step) <- Array.of_list lentries;
    nnz := !nnz + Array.length lcol.(step);
    Hashtbl.reset rows.(p_r)
  done;
  (* Remap U column indices from basis positions to elimination steps. *)
  let cpos = Array.make m 0 in
  for k = 0 to m - 1 do
    cpos.(pc.(k)) <- k
  done;
  Array.iteri
    (fun k entries ->
      let remapped = Array.map (fun (cj, v) -> (cpos.(cj), v)) entries in
      Array.sort compare remapped;
      urow.(k) <- remapped)
    urow;
  { m; pr; pc; rpos; diag; urow; lcol; work = Array.make m 0.0; nnz = !nnz }

(* B w = b:  forward through L (with the row permutation), back through
   U, scatter through the column permutation. *)
let solve t b =
  let u = t.work in
  for k = 0 to t.m - 1 do
    let vk = b.(t.pr.(k)) in
    u.(k) <- vk;
    if Fx.nonzero vk then
      Array.iter
        (fun (i, l) -> b.(i) <- b.(i) -. (l *. vk))
        t.lcol.(k)
  done;
  for k = t.m - 1 downto 0 do
    let acc = ref u.(k) in
    Array.iter (fun (j, uv) -> acc := !acc -. (uv *. u.(j))) t.urow.(k);
    u.(k) <- !acc /. t.diag.(k)
  done;
  for k = 0 to t.m - 1 do
    b.(t.pc.(k)) <- u.(k)
  done

(* B' y = c:  forward through U', back through L' (push form over the
   row-stored factors). *)
let solve_transpose t c =
  let u = t.work in
  for k = 0 to t.m - 1 do
    u.(k) <- c.(t.pc.(k))
  done;
  for k = 0 to t.m - 1 do
    let tk = u.(k) /. t.diag.(k) in
    u.(k) <- tk;
    if Fx.nonzero tk then
      Array.iter (fun (j, uv) -> u.(j) <- u.(j) -. (uv *. tk)) t.urow.(k)
  done;
  for k = t.m - 1 downto 0 do
    let acc = ref u.(k) in
    Array.iter
      (fun (i, l) -> acc := !acc -. (l *. u.(t.rpos.(i))))
      t.lcol.(k);
    u.(k) <- !acc
  done;
  for k = 0 to t.m - 1 do
    c.(t.pr.(k)) <- u.(k)
  done
