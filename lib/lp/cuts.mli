(** Lifted cover cuts separated from knapsack rows — the storage-budget
    rows of CoPhy's BIP.  A cover [C] with [sum_{C} a_j > b] yields
    [sum_{C} x_j <= |C| - 1], lifted to the extension of [C] by every
    item at least as heavy as the cover's heaviest member.  Cuts live in
    a pool with activity-based aging and are certified against the final
    incumbent. *)

type cut

type pool

(** Scan the problem for knapsack rows ([<=] rows with positive
    coefficients over binary variables) and build an empty pool. *)
val detect : Problem.t -> pool

(** One separation round against an LP point: generate greedy lifted
    covers from every knapsack, dedup against the pool, age pool entries
    (entries slack for several consecutive rounds are evicted unless
    already installed), and return the not-yet-added cuts violated by
    more than [min_violation], most violated first, at most [max_cuts].
    Ticks trace counters [cuts.separated] / [cuts.evicted]. *)
val separate :
  ?min_violation:float -> ?max_cuts:int -> pool -> float array -> cut list

(** Install a cut as a [<=] row of the problem (idempotent).  The row
    then participates in every LP solve and in {!Analyze.certify} like
    any other row.  Ticks [cuts.added]. *)
val add_to_problem : pool -> Problem.t -> cut -> unit

(** Number of added cuts violated by a point (0 = every cut certified).
    Branch-and-bound checks the final incumbent through this — a nonzero
    result means a cut cut off an integer feasible point and must be
    treated as a solver bug. *)
val certify : ?tol:float -> pool -> float array -> int

(** [(separated, added, evicted)] counts. *)
val stats : pool -> int * int * int

(** Added cuts tight or violated at a point — the "active" count
    reported by the bench. *)
val active_count : pool -> float array -> int
