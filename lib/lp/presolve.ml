(* BIP/LP presolve (see the .mli for the rule list).

   The pass works on shadow bound arrays — the input problem is never
   mutated, so branch-and-bound can presolve every node against its own
   branching bounds.  A round sweeps all live rows computing activity
   bounds; singleton rows degenerate to a bound update and then drop as
   redundant, so they need no special case. *)

module Fx = Runtime.Fx

type stats = {
  mutable rows_removed : int;
  mutable vars_removed : int;
  mutable bounds_tightened : int;
}

let create_stats () = { rows_removed = 0; vars_removed = 0; bounds_tightened = 0 }

type mapping = {
  reduced : Problem.t;
  entries : entry array;
  row_keep : int array;
  row_scale : float array;
  orig : Problem.t;
}

and entry = Kept of int | Fixed of float

type outcome = Feasible of mapping | Proved_infeasible of string

let max_rounds = 10
let fix_tol = 1e-9

exception Infeas of string

(* Scale a row when its largest coefficient is this far from 1. *)
let scale_hi = 1e4
let scale_lo = 1e-4

let run ?(integral = true) ?stats (p : Problem.t) =
  let st = match stats with Some s -> s | None -> create_stats () in
  let n = Problem.nvars p in
  let m = Problem.nrows p in
  let rows = Problem.rows p in
  let lb = Array.init n (fun v -> (Problem.var p v).Problem.lb) in
  let ub = Array.init n (fun v -> (Problem.var p v).Problem.ub) in
  let is_int v =
    integral
    &&
    match (Problem.var p v).Problem.kind with
    | Problem.Binary | Problem.Integer -> true
    | Problem.Continuous -> false
  in
  let live = Array.make m true in
  let tightened = ref 0 in
  let drop ri =
    live.(ri) <- false;
    st.rows_removed <- st.rows_removed + 1
  in
  let set_ub v b =
    let b = if is_int v then floor (b +. 1e-6) else b in
    if b < ub.(v) -. 1e-7 then begin
      ub.(v) <- b;
      incr tightened
    end
  in
  let set_lb v b =
    let b = if is_int v then ceil (b -. 1e-6) else b in
    if b > lb.(v) +. 1e-7 then begin
      lb.(v) <- b;
      incr tightened
    end
  in
  let check_bounds v =
    if lb.(v) > ub.(v) +. 1e-6 then
      raise
        (Infeas
           (Printf.sprintf "variable %s: bounds cross (%g > %g)"
              (Problem.var p v).Problem.vname lb.(v) ub.(v)))
  in
  let fixed v = ub.(v) -. lb.(v) <= fix_tol in
  let fixed_value v =
    if is_int v then Float.round lb.(v) else 0.5 *. (lb.(v) +. ub.(v))
  in
  (* One tightening pass over a live row.  Returns unit; may drop the
     row, tighten bounds, or raise [Infeas]. *)
  let process_row ri (r : Problem.row) =
    (* split fixed variables into the right-hand side *)
    let rhs = ref r.Problem.rhs in
    let live_coeffs =
      Array.to_list r.Problem.coeffs
      |> List.filter (fun (v, c) ->
             if fixed v then begin
               rhs := !rhs -. (c *. fixed_value v);
               false
             end
             else true)
    in
    let rhs = !rhs in
    let ftol = 1e-6 *. (1.0 +. abs_float rhs) in
    let rtol = 1e-9 *. (1.0 +. abs_float rhs) in
    match live_coeffs with
    | [] ->
        (* empty row: consistent -> drop, else infeasible *)
        let ok =
          match r.Problem.sense with
          | Problem.Le -> 0.0 <= rhs +. ftol
          | Problem.Ge -> 0.0 >= rhs -. ftol
          | Problem.Eq -> abs_float rhs <= ftol
        in
        if ok then drop ri
        else raise (Infeas (Printf.sprintf "row %s: empty and violated" r.Problem.rname))
    | coeffs ->
        (* Activity bounds, +/- infinity tracked by counting.  The
           per-variable contributions are snapshotted here so that bound
           updates made while sweeping this row cannot skew the
           residual-activity computation below. *)
        let coeffs =
          List.map
            (fun (v, c) ->
              let lo, hi =
                if c > 0.0 then (lb.(v), ub.(v)) else (ub.(v), lb.(v))
              in
              (v, c, c *. lo, c *. hi))
            coeffs
        in
        let minact = ref 0.0 and ninf_min = ref 0 in
        let maxact = ref 0.0 and ninf_max = ref 0 in
        List.iter
          (fun (_, _, cmin, cmax) ->
            (if Fx.is_inf (abs_float cmin) then incr ninf_min
             else minact := !minact +. cmin);
            if Fx.is_inf (abs_float cmax) then incr ninf_max
            else maxact := !maxact +. cmax)
          coeffs;
        let minact_total = if !ninf_min > 0 then neg_infinity else !minact in
        let maxact_total = if !ninf_max > 0 then infinity else !maxact in
        (* infeasibility / redundancy on each enforced direction *)
        let le_dir = r.Problem.sense <> Problem.Ge in
        let ge_dir = r.Problem.sense <> Problem.Le in
        if le_dir && minact_total > rhs +. ftol then
          raise
            (Infeas
               (Printf.sprintf "row %s: minimum activity %g exceeds rhs %g"
                  r.Problem.rname minact_total rhs));
        if ge_dir && maxact_total < rhs -. ftol then
          raise
            (Infeas
               (Printf.sprintf "row %s: maximum activity %g below rhs %g"
                  r.Problem.rname maxact_total rhs));
        let le_redundant = (not le_dir) || maxact_total <= rhs +. rtol in
        let ge_redundant = (not ge_dir) || minact_total >= rhs -. rtol in
        if le_redundant && ge_redundant then drop ri
        else begin
          (* implied bounds.  For a <= row: a_j x_j <= rhs - (minact
             without j), so x_j gains an upper (a_j > 0) or lower
             (a_j < 0) bound; symmetric for >= rows via maxact. *)
          if le_dir then
            List.iter
              (fun (v, c, cmin, _) ->
                let rest =
                  if !ninf_min = 0 then !minact -. cmin
                  else if !ninf_min = 1 && Fx.is_inf (abs_float cmin) then !minact
                  else nan
                in
                if not (Float.is_nan rest) then begin
                  let bound = (rhs -. rest) /. c in
                  if c > 0.0 then set_ub v bound else set_lb v bound;
                  check_bounds v
                end)
              coeffs;
          if ge_dir then
            List.iter
              (fun (v, c, _, cmax) ->
                let rest =
                  if !ninf_max = 0 then !maxact -. cmax
                  else if !ninf_max = 1 && Fx.is_inf (abs_float cmax) then !maxact
                  else nan
                in
                if not (Float.is_nan rest) then begin
                  let bound = (rhs -. rest) /. c in
                  if c > 0.0 then set_lb v bound else set_ub v bound;
                  check_bounds v
                end)
              coeffs
        end
  in
  match
    (* --- fixpoint rounds --- *)
    (try
       (* initial integral rounding + bound sanity *)
       for v = 0 to n - 1 do
         if is_int v then begin
           let nlb = ceil (lb.(v) -. 1e-6) and nub = floor (ub.(v) +. 1e-6) in
           if nlb > lb.(v) then lb.(v) <- nlb;
           if nub < ub.(v) then ub.(v) <- nub
         end;
         check_bounds v
       done;
       let rounds = ref 0 in
       let continue_ = ref true in
       while !continue_ && !rounds < max_rounds do
         incr rounds;
         tightened := 0;
         Array.iteri (fun ri r -> if live.(ri) then process_row ri r) rows;
         st.bounds_tightened <- st.bounds_tightened + !tightened;
         continue_ := !tightened > 0
       done;
       (* --- duplicate rows: normalize by the largest coefficient, with
          the sign of the first live one --- *)
       let tbl = Hashtbl.create 64 in
       Array.iteri
         (fun ri (r : Problem.row) ->
           if live.(ri) then begin
             let rhs = ref r.Problem.rhs in
             let coeffs =
               Array.to_list r.Problem.coeffs
               |> List.filter (fun (v, c) ->
                      if fixed v then begin
                        rhs := !rhs -. (c *. fixed_value v);
                        false
                      end
                      else true)
             in
             match coeffs with
             | [] -> ()
             | (_, c0) :: _ ->
                 let s =
                   List.fold_left (fun acc (_, c) -> max acc (abs_float c)) 0.0 coeffs
                 in
                 let s = if c0 < 0.0 then -.s else s in
                 let sense =
                   if s > 0.0 then r.Problem.sense
                   else
                     match r.Problem.sense with
                     | Problem.Le -> Problem.Ge
                     | Problem.Ge -> Problem.Le
                     | Problem.Eq -> Problem.Eq
                 in
                 let key = (sense, List.map (fun (v, c) -> (v, c /. s)) coeffs) in
                 let nrhs = !rhs /. s in
                 (match Hashtbl.find_opt tbl key with
                 | None -> Hashtbl.replace tbl key (ri, nrhs)
                 | Some (prev_ri, prev_rhs) -> (
                     match sense with
                     | Problem.Le ->
                         if nrhs < prev_rhs then begin
                           drop prev_ri;
                           Hashtbl.replace tbl key (ri, nrhs)
                         end
                         else drop ri
                     | Problem.Ge ->
                         if nrhs > prev_rhs then begin
                           drop prev_ri;
                           Hashtbl.replace tbl key (ri, nrhs)
                         end
                         else drop ri
                     | Problem.Eq ->
                         if abs_float (nrhs -. prev_rhs) > 1e-6 *. (1.0 +. abs_float nrhs)
                         then
                           raise
                             (Infeas
                                (Printf.sprintf
                                   "rows %s and %s: equal coefficients, conflicting rhs"
                                   (rows.(prev_ri)).Problem.rname r.Problem.rname))
                         else drop ri))
           end)
         rows;
       None
     with Infeas reason -> Some reason)
  with
  | Some reason -> Proved_infeasible reason
  | None ->
      (* --- build the reduced problem --- *)
      let reduced = Problem.create () in
      let entries = Array.make (max n 1) (Fixed 0.0) in
      let offset = ref (Problem.obj_offset p) in
      for v = 0 to n - 1 do
        if fixed v then begin
          let value = fixed_value v in
          entries.(v) <- Fixed value;
          offset := !offset +. ((Problem.var p v).Problem.obj *. value);
          st.vars_removed <- st.vars_removed + 1
        end
        else begin
          let vr = Problem.var p v in
          (* bounds may cross by up to the feasibility tolerance *)
          let lo = min lb.(v) ub.(v) in
          let id =
            Problem.add_var ~kind:vr.Problem.kind ~lb:lo ~ub:ub.(v)
              ~obj:vr.Problem.obj ~name:vr.Problem.vname reduced
          in
          entries.(v) <- Kept id
        end
      done;
      Problem.add_obj_offset reduced (!offset -. Problem.obj_offset reduced);
      let row_keep = ref [] and row_scale = ref [] in
      Array.iteri
        (fun ri (r : Problem.row) ->
          if live.(ri) then begin
            let rhs = ref r.Problem.rhs in
            let coeffs =
              Array.to_list r.Problem.coeffs
              |> List.filter_map (fun (v, c) ->
                     match entries.(v) with
                     | Fixed value ->
                         rhs := !rhs -. (c *. value);
                         None
                     | Kept id -> Some (id, c))
            in
            if coeffs <> [] then begin
              let mag =
                List.fold_left (fun acc (_, c) -> max acc (abs_float c)) 0.0 coeffs
              in
              let s = if mag > scale_hi || mag < scale_lo then mag else 1.0 in
              ignore
                (Problem.add_row ~name:r.Problem.rname reduced
                   (List.map (fun (v, c) -> (v, c /. s)) coeffs)
                   r.Problem.sense (!rhs /. s));
              row_keep := ri :: !row_keep;
              row_scale := s :: !row_scale
            end
            else
              (* became empty through fixing after the last round;
                 feasibility was checked while tightening *)
              st.rows_removed <- st.rows_removed + 1
          end)
        rows;
      Feasible
        {
          reduced;
          entries;
          row_keep = Array.of_list (List.rev !row_keep);
          row_scale = Array.of_list (List.rev !row_scale);
          orig = p;
        }

let restore_x map xr =
  Array.init (Problem.nvars map.orig) (fun v ->
      match map.entries.(v) with Fixed value -> value | Kept k -> xr.(k))

let restore_duals map yr =
  let y = Array.make (Problem.nrows map.orig) 0.0 in
  Array.iteri
    (fun i ri -> y.(ri) <- yr.(i) /. map.row_scale.(i))
    map.row_keep;
  y
