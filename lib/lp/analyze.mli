(** cophy-lint, layer 2: static analysis of {!Problem.t} models and a
    post-solve solution certifier.

    {!check} runs before a solve and flags malformed or numerically
    hazardous models (dangling variables, empty/duplicate/conflicting
    rows, bound conflicts, NaN data, coefficient dynamic range).
    {!certify} runs after a solve and validates an incumbent against the
    rows, bounds, and integrality marks within a tolerance, reporting
    primal (and, when duals are supplied, dual) residuals — the cheap
    verification layer that what-if tuning pipelines need before trusting
    the optimizer's answer. *)

(** {1 Pre-solve model checks} *)

type severity =
  | Error  (** the model is malformed; solving it proves nothing *)
  | Warning  (** numerically hazardous or probably unintended *)
  | Info  (** redundancy / bloat diagnostics *)

type issue = {
  severity : severity;
  code : string;
      (** stable machine-readable tag, e.g. ["bound-conflict"],
          ["empty-row-infeasible"], ["duplicate-eq-conflict"],
          ["dangling-unbounded"], ["scaling"] *)
  where : string;  (** row/variable name, or [""] for model-wide issues *)
  message : string;
}

val check : Problem.t -> issue list
(** Issues in deterministic order (rows in id order, then variables in id
    order, then model-wide diagnostics). *)

val has_errors : issue list -> bool
val errors : issue list -> issue list
val pp_issue : issue Fmt.t

(** {1 Post-solve certification} *)

type certificate = {
  cert_ok : bool;
      (** primal residuals, bound violations, integrality violations and
          the objective gap are all within tolerance *)
  max_row_violation : float;
      (** max over rows of the constraint violation, scaled by
          [1 + |rhs|] *)
  max_bound_violation : float;
  max_integrality_violation : float;
      (** max over certified integer variables of [|x - round x|] *)
  objective_gap : float;
      (** [|objective_value x - reported|], relative, when [obj] given *)
  max_dual_residual : float;
      (** max reduced-cost magnitude over variables strictly inside their
          bounds when [duals] are given ([0.] otherwise) — reported, not
          gating: duals of presolve-removed rows can be slack
          (see {!Backend.solve}) *)
  cert_issues : string list;  (** human-readable description of failures *)
}

val certify :
  ?tol:float ->
  ?presolve:bool ->
  ?duals:float array ->
  ?obj:float ->
  ?int_vars:int list ->
  Problem.t ->
  float array ->
  certificate
(** [certify p x] validates assignment [x] against [p].

    [tol] (default [1e-6]) scales every test.  [obj] is the solver's
    reported objective {e including} the problem's objective offset;
    when given, the certificate checks it against [c'x + offset].
    [int_vars] restricts the integrality check to a subset (default: all
    integer/binary variables of [p]) — branch-and-bound's restricted
    mode certifies only the decision variables it branched on.
    [duals] (one per row) adds the dual-residual check.

    [presolve] (default [true]) states how the incumbent was produced.
    With presolve on, the dual-residual check is report-only: duals of
    presolve-removed rows are reconstructed as zero and can be slack
    (the documented caveat in {!Backend.solve}).  Pass [~presolve:false]
    when the solve ran on the full model — the caveat doesn't apply, and
    a dual residual above [tol] then fails the certificate. *)

val pp_certificate : certificate Fmt.t

exception Certification_failed of string
(** Raised by debug-mode wirings ({!Branch_bound} incumbent acceptance,
    [lp_solve --check]) when a certificate comes back [cert_ok = false]. *)

val certificate_summary : certificate -> string
(** One-line residual summary, e.g. for bench JSON. *)
