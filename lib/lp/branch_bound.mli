(** Branch and bound over the simplex relaxation, run as a warm-started,
    cut-generating, parallel best-first node-pool search.

    Nodes are bound tightenings passed to per-slot {!Simplex.session}s
    as overrides — the input problem's variable bounds are never
    mutated, so one immutable problem is shared by all worker domains.
    (Root cover cuts, when enabled, {e are} installed as extra rows of
    the input problem; they are valid for every integer-feasible point
    and participate in {!Analyze.certify} like any other row.)  Node
    re-solves restore the parent's basis snapshot and repair primal
    feasibility with the dual simplex; cover cuts from the
    storage-budget knapsack rows tighten the root.  The search runs in
    deterministic bulk-synchronous rounds over {!Runtime.Search}: the
    trajectory, incumbent, bound, and node counts are bit-identical at
    every [jobs] value.  A continuous (time, incumbent, bound) feedback
    stream supports CoPhy's early termination. *)

type event = {
  elapsed : float;  (** seconds since solve start, on {!Runtime.Clock} *)
  incumbent : float option;  (** best integer objective so far *)
  bound : float;  (** proven lower bound *)
  nodes : int;
}

(** Pluggable search strategy. *)
module Search : sig
  type node_order =
    | Best_bound  (** lowest parent LP bound first (proves bounds fast;
                      the proven bound advances every round) *)
    | Depth_first  (** deepest, most recent first (finds incumbents
                       fast; the proven bound stays at the root's until
                       the pool empties) *)

  type branching =
    | Most_fractional  (** max distance to the nearest integer *)
    | Cost_weighted  (** fractionality scaled by [1 + |objective coeff|] *)

  type t = {
    node_order : node_order;
    branching : branching;
    batch : int;  (** nodes popped per bulk-synchronous round *)
  }

  val default : t
  (** Best-bound order, most-fractional branching, batch 8. *)
end

type options = {
  gap_tolerance : float;  (** stop when (inc - bound)/|inc| <= this *)
  time_limit : float;
  node_limit : int;
  on_event : event -> unit;
  initial_incumbent : float array option;  (** warm start *)
  log_events : bool;
  decision_vars : int list option;
      (** Branch only on these variables, and accept an LP solution as an
          incumbent once they are integral.  Sound when fixing them makes
          the remaining LP have an integral optimum of equal objective —
          the structure of the CoPhy and ILP BIPs. *)
  backend : Backend.t;
      (** Stats sink: session kernel counters are merged into
          [backend.stats] after the solve.  Node LPs always run the
          sparse session kernel (presolve would break basis identity
          across nodes), so the backend's kind/presolve switches do not
          affect the tree. *)
  certify_incumbents : bool;
      (** Debug mode: run {!Analyze.certify} on every candidate incumbent
          (rows, bounds, integrality of the branched variables, objective
          recomputation) before accepting it.
          @raise Analyze.Certification_failed on a bad incumbent. *)
  jobs : int;  (** concurrent node evaluations per round *)
  cuts : bool;  (** separate lifted cover cuts at the root *)
  warm_start : bool;  (** dual-simplex re-solves from parent bases *)
  search : Search.t;
}

val default_options : options
(** jobs 1, cuts and warm starts on, {!Search.default} strategy. *)

type status = Optimal | Feasible | Infeasible | Unbounded | Limit

type result = {
  status : status;
  x : float array option;  (** best integer solution found *)
  obj : float;  (** objective of [x], including the problem offset *)
  bound : float;  (** proven lower bound, including the offset *)
  nodes : int;
  cuts_added : int;  (** cover cuts installed at the root *)
  warm_resolves : int;  (** node LPs re-solved from a parent basis *)
  cuts_uncertified : int;
      (** added cuts violated by the final incumbent — always 0 unless a
          separation bug produced an invalid cut *)
  events : event list;  (** reverse chronological when [log_events] *)
}

val solve : ?options:options -> Problem.t -> result
