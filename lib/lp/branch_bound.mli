(** Branch and bound over the simplex relaxation: best-first exploration
    with an initial depth-first dive toward a first incumbent,
    most-fractional branching, a rounding heuristic, and a continuous
    (time, incumbent, bound) feedback stream — the facility CoPhy's
    early-termination feature builds on. *)

type event = {
  elapsed : float;  (** seconds since solve start, on {!Runtime.Clock} *)
  incumbent : float option;  (** best integer objective so far *)
  bound : float;  (** proven lower bound *)
  nodes : int;
}

type options = {
  gap_tolerance : float;  (** stop when (inc - bound)/|inc| <= this *)
  time_limit : float;
  node_limit : int;
  on_event : event -> unit;
  initial_incumbent : float array option;  (** warm start *)
  log_events : bool;
  decision_vars : int list option;
      (** Branch only on these variables, and accept an LP solution as an
          incumbent once they are integral.  Sound when fixing them makes
          the remaining LP have an integral optimum of equal objective —
          the structure of the CoPhy and ILP BIPs. *)
  backend : Backend.t;  (** LP backend for root and node relaxations *)
  certify_incumbents : bool;
      (** Debug mode: run {!Analyze.certify} on every candidate incumbent
          (rows, bounds, integrality of the branched variables, objective
          recomputation) before accepting it.
          @raise Analyze.Certification_failed on a bad incumbent. *)
}

val default_options : options

type status = Optimal | Feasible | Infeasible | Unbounded | Limit

type result = {
  status : status;
  x : float array option;  (** best integer solution found *)
  obj : float;  (** objective of [x], including the problem offset *)
  bound : float;  (** proven lower bound, including the offset *)
  nodes : int;
  events : event list;  (** reverse chronological when [log_events] *)
}

val solve : ?options:options -> Problem.t -> result
