(** The LP-backend seam: one dispatch point for every component that
    needs an LP solved ({!Branch_bound} nodes, the CoPhy solver's
    feasibility probe, the decomposition's z subproblem, the CLI
    front-ends).

    A backend is a kernel choice ({!Sparse} — Markowitz LU + eta
    updates — or the historical {!Dense} reference) plus a presolve
    switch and an optional stats sink.  [default] is the production
    configuration (sparse kernel, presolve on); [dense_reference] is the
    PR-1-era path kept for A/B comparison and regression hunting. *)

type kind = Sparse | Dense

type stats = {
  kernel : Simplex.kernel_stats;  (** pivots, refactorizations *)
  presolve : Presolve.stats;  (** row/var/bound reductions *)
  mutable lp_solves : int;
}

val create_stats : unit -> stats

type t = {
  kind : kind;
  presolve : bool;
  stats : stats option;
}

val default : t  (** sparse kernel, presolve on *)

val dense_reference : t  (** dense kernel, presolve off *)

val create : ?kind:kind -> ?presolve:bool -> ?stats:stats -> unit -> t

val kind_of_string : string -> kind option
val kind_to_string : kind -> string

(** Solve the LP relaxation of [p]: presolve (when enabled), run the
    selected kernel, and lift the solution, objective, and duals back to
    [p]'s variable/row space.  Never mutates [p].

    With presolve on, binary/integer reductions preserve
    integer-feasible solutions; the reported objective can exceed the
    pure LP-relaxation optimum (it is still a valid bound for the BIP,
    which is what branch-and-bound consumes).  Non-[Optimal] statuses
    carry the kernel's last iterate lifted back to [p]'s space, with the
    objective recomputed from it — an [Iter_limit] iterate is a genuine
    partial solution, not a certificate.  Duals of rows removed by
    presolve are reported as 0, which in degenerate cases is not a valid
    dual (see {!Presolve.restore_duals}); disable presolve when exact
    duals are required. *)
val solve : ?max_iters:int -> t -> Problem.t -> Simplex.result
