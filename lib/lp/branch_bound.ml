(* Branch & bound for binary/mixed-integer programs over the simplex
   relaxation, rebuilt as a warm-started, cut-generating, parallel
   best-first node-pool search.

   The engine never mutates variable bounds of the input problem: a node
   is a list of bound tightenings passed to the simplex session as
   overrides, which is what lets one immutable {!Problem.t} be shared by
   every worker domain.  Root processing separates lifted cover cuts
   from the storage-budget knapsack rows ({!Cuts}) and installs the
   violated ones as ordinary rows before the tree starts.  Node
   re-solves restore the parent's basis snapshot and repair primal
   feasibility with the dual simplex ({!Simplex.warm_solve}) — typically
   a handful of pivots instead of a full two-phase solve.

   Parallelism is bulk-synchronous through {!Runtime.Search}: each round
   pops up to [batch] best nodes, evaluates their LPs concurrently (node
   [i] of a round always runs on session [i]), and merges sequentially
   in pop order.  Pop order, slot assignment and merge order are all
   independent of the job count, so the search trajectory — incumbent,
   bound, and node counts — is bit-identical at any [jobs].  The
   incumbent objective lives in an [Atomic] cell: written only during
   the sequential merge, read by concurrent evaluators for
   start-of-round pruning. *)

type event = {
  elapsed : float;           (* seconds since solve started *)
  incumbent : float option;  (* best integer objective so far *)
  bound : float;             (* proven lower bound *)
  nodes : int;
}

(* Pluggable search strategy: how the node pool is ordered and how the
   branching variable is picked.  Both orders run through the same
   deterministic round engine. *)
module Search = struct
  type node_order =
    | Best_bound   (* lowest parent LP bound first (proves bounds fast) *)
    | Depth_first  (* deepest, most recent first (finds incumbents fast) *)

  type branching =
    | Most_fractional  (* max distance to the nearest integer *)
    | Cost_weighted    (* fractionality scaled by 1 + |objective coeff| *)

  type t = {
    node_order : node_order;
    branching : branching;
    batch : int;  (* nodes popped per bulk-synchronous round *)
  }

  let default = { node_order = Best_bound; branching = Most_fractional; batch = 8 }
end

type options = {
  gap_tolerance : float;     (* stop when (inc - bound)/|inc| <= this *)
  time_limit : float;        (* seconds; infinity = none *)
  node_limit : int;
  on_event : event -> unit;
  (* Optional known-feasible starting point (warm start). *)
  initial_incumbent : float array option;
  log_events : bool;
  (* When set, branch only on these variables and accept an LP solution
     as an incumbent once they are integral.  Sound only when fixing
     these variables makes the remaining LP have an integral optimum of
     equal objective — which holds for selection-style programs like the
     CoPhy and ILP BIPs, where the y/x part is a per-block minimum. *)
  decision_vars : int list option;
  (* Stats sink: kernel counters of every session are merged here after
     the solve (the node LPs themselves always run the sparse session
     kernel; presolve would break basis identity across nodes). *)
  backend : Backend.t;
  (* Debug mode: certify every candidate incumbent with [Analyze.certify]
     before accepting it; raise [Analyze.Certification_failed] if one
     violates rows, bounds, or integrality of the branched variables. *)
  certify_incumbents : bool;
  jobs : int;                (* concurrent node evaluations per round *)
  cuts : bool;               (* separate cover cuts at the root *)
  warm_start : bool;         (* dual-simplex re-solves from parent bases *)
  search : Search.t;
}

let default_options =
  {
    gap_tolerance = 1e-6;
    time_limit = infinity;
    node_limit = 200_000;
    on_event = ignore;
    initial_incumbent = None;
    log_events = false;
    decision_vars = None;
    backend = Backend.default;
    certify_incumbents = false;
    jobs = 1;
    cuts = true;
    warm_start = true;
    search = Search.default;
  }

type status = Optimal | Feasible | Infeasible | Unbounded | Limit

type result = {
  status : status;
  x : float array option;    (* best integer solution *)
  obj : float;               (* objective of [x] (with problem offset) *)
  bound : float;             (* proven lower bound (with offset) *)
  nodes : int;
  cuts_added : int;          (* cover cuts installed at the root *)
  warm_resolves : int;       (* node LPs re-solved from a parent basis *)
  cuts_uncertified : int;    (* added cuts violated by the incumbent (0!) *)
  events : event list;       (* reverse-chronological feedback trace *)
}

let int_tol = 1e-6

(* Branching variable of the relaxation solution under the chosen rule;
   [None] when every integer variable is integral. *)
let branch_var (p : Problem.t) branching int_vars x =
  let best = ref (-1) and best_score = ref 0.0 in
  List.iter
    (fun v ->
      let f = abs_float (x.(v) -. Float.round x.(v)) in
      if f > int_tol then begin
        let score =
          match branching with
          | Search.Most_fractional -> f
          | Search.Cost_weighted ->
              f *. (1.0 +. abs_float (Problem.var p v).Problem.obj)
        in
        if score > !best_score then begin
          best := v;
          best_score := score
        end
      end)
    int_vars;
  if !best >= 0 then Some !best else None

(* A node: its parent's LP bound, the accumulated bound tightenings
   (newest first; they are passed oldest-first to the session so the
   newest — tightest — override wins), and the parent basis snapshot to
   warm the dual re-solve from.  [seq] is the deterministic creation
   index used to break every ordering tie. *)
type node = {
  nb : float;
  fixings : (int * float * float) list;
  depth : int;
  seq : int;
  parent : Simplex.Basis.t option;
}

type eval_out =
  | Pruned  (* start-of-round bound prune, no LP solved *)
  | Solved of Simplex.result * Simplex.Basis.t option

(* Trace probes: single [Atomic.get] each when tracing is off. *)
let tr_nodes = Runtime.Trace.counter "bb.nodes"
let tr_incumbents = Runtime.Trace.counter "bb.incumbents"
let tr_prunes = Runtime.Trace.counter "bb.prunes"
let tr_cuts_added = Runtime.Trace.counter "bb.cuts_added"
let tr_warm_resolves = Runtime.Trace.counter "bb.warm_resolves"
let tr_cuts_uncertified = Runtime.Trace.counter "bb.cuts_uncertified"

let rounding_heuristic p int_vars x =
  let x' = Array.copy x in
  List.iter (fun v -> x'.(v) <- Float.round x.(v)) int_vars;
  if Problem.feasible p x' then Some x' else None

let node_compare order (a : node) (b : node) =
  match order with
  | Search.Best_bound -> (
      match Float.compare a.nb b.nb with
      | 0 -> (
          match Int.compare b.depth a.depth with
          | 0 -> Int.compare a.seq b.seq
          | c -> c)
      | c -> c)
  | Search.Depth_first -> (
      match Int.compare b.depth a.depth with
      | 0 -> (
          match Int.compare b.seq a.seq with
          | 0 -> Float.compare a.nb b.nb
          | c -> c)
      | c -> c)

let solve ?(options = default_options) (p : Problem.t) =
  let t0 = Runtime.Clock.now () in
  let elapsed () = Runtime.Clock.now () -. t0 in
  let int_vars =
    match options.decision_vars with
    | Some vs -> vs
    | None -> Problem.integer_vars p
  in
  let restricted = options.decision_vars <> None in
  let offset = Problem.obj_offset p in
  let batch = max 1 options.search.Search.batch in
  let jobs = max 1 options.jobs in
  (* One simplex session per evaluation slot, all bound to the shared
     problem; per-slot kernel stats are merged after the run so the
     counters are deterministic too. *)
  let slot_stats = Array.init batch (fun _ -> Simplex.create_stats ()) in
  let sessions =
    Array.init batch (fun i -> Simplex.new_session ~stats:slot_stats.(i) p)
  in
  let merged = Simplex.create_stats () in
  let lp_solves = ref 0 in
  let finish_stats () =
    Array.iter (fun s -> Simplex.add_stats ~into:merged s) slot_stats;
    (match options.backend.Backend.stats with
    | Some bs ->
        Simplex.add_stats ~into:bs.Backend.kernel merged;
        bs.Backend.lp_solves <- bs.Backend.lp_solves + !lp_solves
    | None -> ());
    Runtime.Trace.add tr_warm_resolves merged.Simplex.warm_resolves
  in
  let incumbent = ref None in
  (* Objective of the incumbent, without offset.  Written only in the
     sequential merge; read concurrently by evaluators for the
     start-of-round prune. *)
  let incumbent_obj = Atomic.make infinity in
  (match options.initial_incumbent with
  | Some x0 when Problem.feasible p x0 ->
      incumbent := Some (Array.copy x0);
      Atomic.set incumbent_obj (Problem.objective_value p x0 -. offset)
  | _ -> ());
  let events = ref [] in
  let nodes = ref 0 in
  let global_bound = ref neg_infinity in
  let emit () =
    let inc = Atomic.get incumbent_obj in
    let e =
      {
        elapsed = elapsed ();
        incumbent = (if inc < infinity then Some (inc +. offset) else None);
        bound = !global_bound +. offset;
        nodes = !nodes;
      }
    in
    if options.log_events then events := e :: !events;
    options.on_event e
  in
  let try_incumbent x obj =
    if obj < Atomic.get incumbent_obj -. 1e-9 then begin
      if options.certify_incumbents then begin
        (* Bounds of the shared problem are never tightened, so the
           certificate is directly against the original box.  Only the
           branched variables are certified integral (restricted mode
           leaves the per-block continuous part fractional by design). *)
        let cert = Analyze.certify ~int_vars ~obj:(obj +. offset) p x in
        if not cert.Analyze.cert_ok then
          raise
            (Analyze.Certification_failed
               (Printf.sprintf "branch_bound incumbent rejected: %s"
                  (Analyze.certificate_summary cert)))
      end;
      incumbent := Some (Array.copy x);
      Atomic.set incumbent_obj
        (obj
        [@bound.sink incumbent
            "the accepted objective becomes the pruning threshold and the \
             reported optimum; an unproven iterate here silently cuts off \
             the true optimum"]);
      Runtime.Trace.incr tr_incumbents;
      true
    end
    else false
  in
  let gap_ok () =
    let inc = Atomic.get incumbent_obj in
    inc < infinity
    && inc -. !global_bound <= options.gap_tolerance *. (abs_float inc +. 1e-9)
  in
  let mk_result status cuts_uncertified cuts_added =
    finish_stats ();
    let best_x = !incumbent in
    let inc = Atomic.get incumbent_obj in
    {
      status =
        (match (status, best_x) with
        | Infeasible, _ -> Infeasible
        | s, Some _ -> s
        | (Optimal | Feasible), None -> Infeasible
        | Limit, None -> Limit
        | Unbounded, None -> Unbounded);
      x = best_x;
      obj =
        (inc +. offset
        [@bound.sink certified_output
            "reported incumbent objective: callers treat it as a certified \
             upper bound on the optimum"]);
      bound =
        (!global_bound +. offset
        [@bound.sink certified_output
            "reported dual bound: callers derive the certified optimality \
             gap from it"]);
      nodes = !nodes;
      cuts_added;
      warm_resolves = merged.Simplex.warm_resolves;
      cuts_uncertified;
      events = !events;
    }
  in
  (* --- Root relaxation + cover-cut loop (sequential) --- *)
  let root = Simplex.session_solve sessions.(0) in
  incr lp_solves;
  match root.Simplex.status with
  | Simplex.Infeasible ->
      global_bound := infinity;
      Atomic.set incumbent_obj infinity;
      incumbent := None;
      mk_result Infeasible 0 0
  | Simplex.Unbounded ->
      global_bound := neg_infinity;
      mk_result Unbounded 0 0
  | Simplex.Iter_limit | Simplex.Optimal ->
      (* An iteration-limited relaxation proves nothing: its objective is
         the value of an arbitrary iterate, so it must not seed the
         proven bound — and its basis must not seed warm starts. *)
      let root_solved = root.Simplex.status = Simplex.Optimal in
      let root_bound =
        ref
          ((if root_solved then root.Simplex.obj else neg_infinity)
          [@bound.sink bound
              "seed of the proven dual bound: an Iter_limit relaxation \
               objective here fabricates the reported gap"])
      in
      let root_x = ref root.Simplex.x in
      let pool = if options.cuts && root_solved then Some (Cuts.detect p) else None in
      let cuts_added = ref 0 in
      (match pool with
      | None -> ()
      | Some pool ->
          (* Separate, install, re-solve; the re-solved objective is a
             valid MIP bound because cover cuts hold at every integer
             point.  Stop when separation dries up or a re-solve fails
             to prove optimality (keep the last proven bound then). *)
          let continue_ = ref true in
          let round = ref 0 in
          while !continue_ && !round < 8 do
            incr round;
            match Cuts.separate pool !root_x with
            | [] -> continue_ := false
            | violated ->
                List.iter
                  (fun c ->
                    Cuts.add_to_problem pool p c;
                    incr cuts_added;
                    Runtime.Trace.incr tr_cuts_added)
                  violated;
                let r = Simplex.session_solve sessions.(0) in
                incr lp_solves;
                if r.Simplex.status = Simplex.Optimal then begin
                  root_bound :=
                    (r.Simplex.obj
                    [@bound.sink bound
                        "cut-loop re-solve objective adopted as the root \
                         bound; valid only for a proven optimum"]);
                  root_x := r.Simplex.x
                end
                else continue_ := false
          done);
      global_bound := !root_bound;
      (* Root incumbents: integral decision variables, else rounding. *)
      (match branch_var p options.search.Search.branching int_vars !root_x with
      | None ->
          if root_solved || Problem.feasible p !root_x then
            ignore (try_incumbent !root_x (if root_solved then !root_bound
                                           else Problem.objective_value p !root_x -. offset))
      | Some _ ->
          if not restricted then
            match rounding_heuristic p int_vars !root_x with
            | Some xr ->
                ignore (try_incumbent xr (Problem.objective_value p xr -. offset))
            | None -> ());
      emit ();
      let certify_cuts () =
        match (pool, !incumbent) with
        | Some pool, Some x ->
            let bad = Cuts.certify pool x in
            Runtime.Trace.add tr_cuts_uncertified bad;
            bad
        | _ -> 0
      in
      (match branch_var p options.search.Search.branching int_vars !root_x with
      | None ->
          (* Root already integral on the branched variables. *)
          global_bound := Atomic.get incumbent_obj;
          mk_result
            (if Atomic.get incumbent_obj < infinity then Optimal else Infeasible)
            (certify_cuts ()) !cuts_added
      | Some v ->
          (* --- Best-first node-pool search over Runtime.Search --- *)
          let seq = ref 0 in
          let next_seq () =
            incr seq;
            !seq
          in
          let eff_bounds fixings v =
            let rec find = function
              | (u, lb, ub) :: _ when u = v -> (lb, ub)
              | _ :: rest -> find rest
              | [] ->
                  let vr = Problem.var p v in
                  (vr.Problem.lb, vr.Problem.ub)
            in
            find fixings
          in
          (* Children of a node at branching variable [v]: the child
             diving toward the rounded LP value is created first (smaller
             seq), so on equal bounds the heap explores it first. *)
          let children node v xv snap =
            let lb, ub = eff_bounds node.fixings v in
            let lo = floor xv in
            let frac = xv -. lo in
            let mk fixing =
              {
                nb = node.nb;
                fixings = fixing :: node.fixings;
                depth = node.depth + 1;
                seq = next_seq ();
                parent = snap;
              }
            in
            let down () = mk (v, lb, min ub lo) in
            let up () = mk (v, max lb (lo +. 1.0), ub) in
            if frac >= 0.5 then
              let u = up () in
              let d = down () in
              [ u; d ]
            else
              let d = down () in
              let u = up () in
              [ d; u ]
          in
          let root_snap =
            if options.warm_start && root_solved then
              Simplex.save_basis sessions.(0)
            else None
          in
          let root_node =
            { nb = !root_bound; fixings = []; depth = 0; seq = 0;
              parent = root_snap }
          in
          let roots = children root_node v !root_x.(v) root_snap in
          let stop_status = ref None in
          (* [stop] is polled once per round; it also marks the round
             boundary so the first merge of each round can advance the
             proven bound (under best-first order the first pop of a
             round is the open-pool minimum, and it is non-decreasing). *)
          let round_fresh = ref true in
          let stop () =
            round_fresh := true;
            if gap_ok () then begin
              stop_status := Some Feasible;
              true
            end
            else if elapsed () > options.time_limit || !nodes >= options.node_limit
            then begin
              stop_status := Some Limit;
              true
            end
            else false
          in
          let eval ~slot node =
            if
              (node.nb >= Atomic.get incumbent_obj -. 1e-9)
              [@bound.sink prune
                  "start-of-round prune: discards the subtree for good, so \
                   both sides must be proven (node bound / certified \
                   incumbent)"]
            then Pruned
            else begin
              let sess = sessions.(slot) in
              let bounds = List.rev node.fixings in
              let r =
                match (options.warm_start, node.parent) with
                | true, Some snap -> Simplex.warm_solve ~bounds sess snap
                | _ -> Simplex.session_solve ~bounds sess
              in
              let snap =
                if options.warm_start && r.Simplex.status = Simplex.Optimal
                then Simplex.save_basis sess
                else None
              in
              Solved (r, snap)
            end
          in
          let expand node out =
            if !round_fresh then begin
              (if options.search.Search.node_order = Search.Best_bound then
                 global_bound := max !global_bound node.nb);
              round_fresh := false
            end;
            match out with
            | Pruned ->
                Runtime.Trace.incr tr_prunes;
                []
            | Solved (r, snap) -> (
                incr nodes;
                incr lp_solves;
                Runtime.Trace.incr tr_nodes;
                if !nodes mod 16 = 0 then emit ();
                match r.Simplex.status with
                | Simplex.Infeasible -> []
                | Simplex.Unbounded -> []
                | Simplex.Iter_limit | Simplex.Optimal ->
                    let solved = r.Simplex.status = Simplex.Optimal in
                    (* An Iter_limit iterate is not a certified optimum:
                       its objective is no lower bound (keep the parent's
                       for the children), and its point only becomes an
                       incumbent after an explicit feasibility check. *)
                    let[@bound.sink bound
                         "bound inherited by the children's node records; an \
                          unproven objective here would mis-order and \
                          mis-prune the whole subtree"] nb =
                      if solved then r.Simplex.obj else node.nb
                    in
                    if
                      (nb >= Atomic.get incumbent_obj -. 1e-9)
                      [@bound.sink prune
                          "post-solve prune against the incumbent; both \
                           sides must be proven"]
                    then begin
                      Runtime.Trace.incr tr_prunes;
                      []
                    end
                    else (
                      match
                        branch_var p options.search.Search.branching int_vars
                          r.Simplex.x
                      with
                      | None ->
                          if
                            (solved || Problem.feasible p r.Simplex.x)
                            && try_incumbent r.Simplex.x r.Simplex.obj
                          then emit ();
                          []
                      | Some v ->
                          (if not restricted then
                             match rounding_heuristic p int_vars r.Simplex.x with
                             | Some xr ->
                                 if
                                   try_incumbent xr
                                     (Problem.objective_value p xr -. offset)
                                 then emit ()
                             | None -> ());
                          children { node with nb } v r.Simplex.x.(v) snap))
          in
          let _search_stats =
            Runtime.Search.run ~jobs ~batch
              ~compare:(node_compare options.search.Search.node_order)
              ~roots ~eval ~expand ~stop ()
          in
          let status =
            match !stop_status with
            | Some s -> s
            | None ->
                (* Pool exhausted: the incumbent is proven optimal (or
                   the problem integer-infeasible). *)
                global_bound := Atomic.get incumbent_obj;
                if Atomic.get incumbent_obj < infinity then Optimal
                else Infeasible
          in
          emit ();
          mk_result status (certify_cuts ()) !cuts_added)
