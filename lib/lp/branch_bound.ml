(* Branch & bound for binary/mixed-integer programs over the simplex
   relaxation.  Best-first exploration with an initial depth-first dive,
   most-fractional branching, a rounding heuristic for early incumbents,
   and the continuous feedback stream (time, incumbent, best bound) that
   CoPhy's early-termination feature consumes. *)

type event = {
  elapsed : float;           (* seconds since solve started *)
  incumbent : float option;  (* best integer objective so far *)
  bound : float;             (* proven lower bound *)
  nodes : int;
}

type options = {
  gap_tolerance : float;     (* stop when (inc - bound)/|inc| <= this *)
  time_limit : float;        (* seconds; infinity = none *)
  node_limit : int;
  on_event : event -> unit;
  (* Optional known-feasible starting point (warm start). *)
  initial_incumbent : float array option;
  log_events : bool;
  (* When set, branch only on these variables and accept an LP solution
     as an incumbent once they are integral.  Sound only when fixing
     these variables makes the remaining LP have an integral optimum of
     equal objective — which holds for selection-style programs like the
     CoPhy and ILP BIPs, where the y/x part is a per-block minimum. *)
  decision_vars : int list option;
  (* LP backend used for the root and node relaxations. *)
  backend : Backend.t;
  (* Debug mode: certify every candidate incumbent with [Analyze.certify]
     before accepting it; raise [Analyze.Certification_failed] if one
     violates rows, bounds, or integrality of the branched variables. *)
  certify_incumbents : bool;
}

let default_options =
  {
    gap_tolerance = 1e-6;
    time_limit = infinity;
    node_limit = 200_000;
    on_event = ignore;
    initial_incumbent = None;
    log_events = false;
    decision_vars = None;
    backend = Backend.default;
    certify_incumbents = false;
  }

type status = Optimal | Feasible | Infeasible | Unbounded | Limit

type result = {
  status : status;
  x : float array option;    (* best integer solution *)
  obj : float;               (* objective of [x] (with problem offset) *)
  bound : float;             (* proven lower bound (with offset) *)
  nodes : int;
  events : event list;       (* reverse-chronological feedback trace *)
}

let int_tol = 1e-6

let _is_integral v = abs_float (v -. Float.round v) <= int_tol

(* Most-fractional integer variable of the relaxation solution. *)
let branch_var int_vars x =
  let best = ref (-1) and best_frac = ref int_tol in
  List.iter
    (fun v ->
      let f = abs_float (x.(v) -. Float.round x.(v)) in
      if f > !best_frac then begin
        best := v;
        best_frac := f
      end)
    int_vars;
  if !best >= 0 then Some !best else None

(* A node is a set of tightened variable bounds. *)
type node = {
  node_bound : float;                (* parent LP bound (without offset) *)
  fixings : (int * float * float) list;
  depth : int;
}

module Heap = struct
  (* Simple pairing-heap keyed by node bound (min-first). *)
  type t = Empty | Node of node * t list

  let empty = Empty
  let is_empty h = h = Empty

  let merge a b =
    match (a, b) with
    | Empty, x | x, Empty -> x
    | Node (na, ca), Node (nb, cb) ->
        if na.node_bound <= nb.node_bound then Node (na, b :: ca)
        else Node (nb, a :: cb)

  let insert n h = merge (Node (n, [])) h

  let rec merge_pairs = function
    | [] -> Empty
    | [ h ] -> h
    | a :: b :: rest -> merge (merge a b) (merge_pairs rest)

  let pop = function
    | Empty -> None
    | Node (n, children) -> Some (n, merge_pairs children)

  let min_bound = function
    | Empty -> infinity
    | Node (n, _) -> n.node_bound

  let _ = min_bound
end

(* Round a relaxation solution and test feasibility — a cheap primal
   heuristic that often produces the first incumbent immediately. *)
(* Trace probes: single [Atomic.get] each when tracing is off. *)
let tr_nodes = Runtime.Trace.counter "bb.nodes"
let tr_incumbents = Runtime.Trace.counter "bb.incumbents"
let tr_prunes = Runtime.Trace.counter "bb.prunes"

let rounding_heuristic p int_vars x =
  let x' = Array.copy x in
  List.iter (fun v -> x'.(v) <- Float.round x.(v)) int_vars;
  if Problem.feasible p x' then Some x' else None

let solve ?(options = default_options) (p : Problem.t) =
  let t0 = Runtime.Clock.now () in
  let elapsed () = Runtime.Clock.now () -. t0 in
  let int_vars =
    match options.decision_vars with
    | Some vs -> vs
    | None -> Problem.integer_vars p
  in
  let restricted = options.decision_vars <> None in
  let offset = Problem.obj_offset p in
  (* Save original bounds so we can restore after each node. *)
  let orig_bounds =
    Array.init (Problem.nvars p) (fun v ->
        let vr = Problem.var p v in
        (vr.Problem.lb, vr.Problem.ub))
  in
  let restore_bounds () =
    Array.iteri (fun v (lb, ub) -> Problem.set_bounds p v ~lb ~ub) orig_bounds
  in
  let apply_fixings fx =
    restore_bounds ();
    List.iter (fun (v, lb, ub) -> Problem.set_bounds p v ~lb ~ub) fx
  in
  let incumbent = ref None in
  let incumbent_obj = ref infinity in
  (match options.initial_incumbent with
  | Some x0 when Problem.feasible p x0 ->
      incumbent := Some (Array.copy x0);
      incumbent_obj := Problem.objective_value p x0 -. offset
  | _ -> ());
  let events = ref [] in
  let nodes = ref 0 in
  let emit bound =
    let e =
      {
        elapsed = elapsed ();
        incumbent =
          (if !incumbent_obj < infinity then Some (!incumbent_obj +. offset)
           else None);
        bound = bound +. offset;
        nodes = !nodes;
      }
    in
    if options.log_events then events := e :: !events;
    options.on_event e
  in
  let try_incumbent x obj =
    if obj < !incumbent_obj -. 1e-9 then begin
      if options.certify_incumbents then begin
        (* Certify against the node's (tightened) bounds and the rows —
           tightenings are subsets of the original box, so passing here
           implies feasibility for the original problem too.  Only the
           branched variables are certified integral (restricted mode
           leaves the per-block continuous part fractional by design). *)
        let cert = Analyze.certify ~int_vars ~obj:(obj +. offset) p x in
        if not cert.Analyze.cert_ok then
          raise
            (Analyze.Certification_failed
               (Printf.sprintf "branch_bound incumbent rejected: %s"
                  (Analyze.certificate_summary cert)))
      end;
      incumbent := Some (Array.copy x);
      incumbent_obj := obj;
      Runtime.Trace.incr tr_incumbents;
      true
    end
    else false
  in
  let gap_ok bound =
    !incumbent_obj < infinity
    && (!incumbent_obj -. bound) <= options.gap_tolerance *. (abs_float !incumbent_obj +. 1e-9)
  in
  (* Root relaxation. *)
  restore_bounds ();
  let root = Backend.solve options.backend p in
  match root.Simplex.status with
  | Simplex.Infeasible ->
      { status = Infeasible; x = None; obj = infinity; bound = infinity;
        nodes = 0; events = [] }
  | Simplex.Unbounded ->
      { status = Unbounded; x = None; obj = neg_infinity; bound = neg_infinity;
        nodes = 0; events = [] }
  | Simplex.Iter_limit | Simplex.Optimal ->
      (* An iteration-limited relaxation proves nothing: its objective is
         the value of an arbitrary iterate (an upper bound at best, and
         meaningless if phase 1 was cut short), so it must not seed the
         proven bound. *)
      let root_bound =
        if root.Simplex.status = Simplex.Optimal then root.Simplex.obj
        else neg_infinity
      in
      let global_bound = ref root_bound in
      (* Open nodes: a best-first heap, plus a dive stack used while no
         incumbent exists yet (depth-first toward a first feasible
         solution, without which best-first cannot prune anything). *)
      let queue = ref Heap.empty in
      let dive = ref [] in
      let push_dive n = dive := n :: !dive in
      let push_heap n = queue := Heap.insert n !queue in
      let flush_dive () =
        List.iter push_heap !dive;
        dive := []
      in
      let pop_node () =
        if !incumbent = None then
          match !dive with
          | n :: rest ->
              dive := rest;
              Some n
          | [] -> (
              match Heap.pop !queue with
              | Some (n, rest) ->
                  queue := rest;
                  Some n
              | None -> None)
        else begin
          flush_dive ();
          match Heap.pop !queue with
          | Some (n, rest) ->
              queue := rest;
              Some n
          | None -> None
        end
      in
      let no_open () = !dive = [] && Heap.is_empty !queue in
      push_heap { node_bound = root_bound; fixings = []; depth = 0 };
      let status = ref Feasible in
      let finished = ref false in
      while not !finished do
        match pop_node () with
        | None ->
            (* proven: bound = incumbent (or infeasible) *)
            global_bound := !incumbent_obj;
            finished := true;
            status := if !incumbent_obj < infinity then Optimal else Infeasible
        | Some node ->
            if node.node_bound >= !incumbent_obj -. 1e-9 then begin
              (* pruned by bound; if the queue empties we are optimal *)
              Runtime.Trace.incr tr_prunes;
              if no_open () then begin
                global_bound := !incumbent_obj;
                status := Optimal;
                finished := true
              end
            end
            else begin
              (* the dive stack may hold nodes whose parent bound is worse
                 than the heap minimum; the proven bound is their min *)
              global_bound :=
                List.fold_left
                  (fun acc n -> min acc n.node_bound)
                  (min node.node_bound (Heap.min_bound !queue))
                  !dive;
              if gap_ok !global_bound then begin
                status := Feasible;
                finished := true
              end
              else if elapsed () > options.time_limit || !nodes >= options.node_limit
              then begin
                status := Limit;
                finished := true
              end
              else begin
                incr nodes;
                Runtime.Trace.incr tr_nodes;
                apply_fixings node.fixings;
                let r = Backend.solve options.backend p in
                (match r.Simplex.status with
                | Simplex.Infeasible -> ()
                | Simplex.Unbounded ->
                    (* cannot happen if root is bounded, but keep safe *)
                    ()
                | Simplex.Iter_limit | Simplex.Optimal -> (
                    let lp_obj = r.Simplex.obj in
                    let solved = r.Simplex.status = Simplex.Optimal in
                    (* An Iter_limit iterate is not a certified optimum:
                       its objective is no lower bound (keep the parent's
                       for pruning and for the children), and its point
                       only becomes an incumbent after an explicit
                       feasibility check. *)
                    let node_lp_bound =
                      if solved then lp_obj else node.node_bound
                    in
                    if node_lp_bound < !incumbent_obj -. 1e-9 then begin
                      match branch_var int_vars r.Simplex.x with
                      | None ->
                          (* decision variables integral: the LP objective
                             is achievable integrally (see decision_vars) *)
                          if (solved || Problem.feasible p r.Simplex.x)
                             && try_incumbent r.Simplex.x lp_obj
                          then emit !global_bound
                      | Some v ->
                          (* rounding heuristic for an early incumbent
                             (skipped in restricted mode, where rounding
                             the non-decision block would break rows) *)
                          (if not restricted then
                             match rounding_heuristic p int_vars r.Simplex.x with
                             | Some xr ->
                                 let objr = Problem.objective_value p xr -. offset in
                                 if try_incumbent xr objr then emit !global_bound
                             | None -> ());
                          let lo = floor r.Simplex.x.(v) in
                          let frac = r.Simplex.x.(v) -. lo in
                          let ob = orig_bounds.(v) in
                          let down_node =
                            { node_bound = node_lp_bound;
                              fixings = (v, fst ob, min (snd ob) lo) :: node.fixings;
                              depth = node.depth + 1 }
                          in
                          let up_node =
                            { node_bound = node_lp_bound;
                              fixings =
                                (v, max (fst ob) (lo +. 1.0), snd ob)
                                :: node.fixings;
                              depth = node.depth + 1 }
                          in
                          (* dive toward the rounded LP value first *)
                          if frac >= 0.5 then begin
                            push_dive up_node;
                            push_heap down_node
                          end
                          else begin
                            push_dive down_node;
                            push_heap up_node
                          end
                    end
                    else Runtime.Trace.incr tr_prunes));
                if !nodes mod 16 = 0 then emit !global_bound;
                if no_open () then begin
                  global_bound := !incumbent_obj;
                  status := if !incumbent_obj < infinity then Optimal else Infeasible;
                  finished := true
                end
              end
            end
      done;
      restore_bounds ();
      emit !global_bound;
      let best_x = !incumbent in
      {
        status =
          (match (!status, best_x) with
          | Infeasible, _ -> Infeasible
          | s, Some _ -> s
          | (Optimal | Feasible), None -> Infeasible
          | Limit, None -> Limit
          | Unbounded, None -> Unbounded);
        x = best_x;
        obj = !incumbent_obj +. offset;
        bound = !global_bound +. offset;
        nodes = !nodes;
        events = !events;
      }
