(* Lifted cover cuts for knapsack rows.

   CoPhy's materialized BIP has exactly one family of structured rows:
   the storage-budget knapsacks sum(size_a * z_a) <= B over binary z.
   For a cover C (a set of items whose sizes overshoot the budget) every
   feasible selection leaves at least one item of C out:

       sum_{j in C} x_j <= |C| - 1.

   The cut is lifted to its extension E(C) = C + {j : a_j >= max_{i in C}
   a_i}: any |C|-subset of E(C) weighs at least as much as C, so the
   right-hand side survives the larger support — a strictly stronger
   valid inequality at no extra separation cost.

   Separation is the classic greedy: items sorted by fractional LP value
   (descending, sizes as tie-break) are accumulated until they overshoot
   the budget; the resulting cover is emitted when the LP point violates
   the lifted inequality.  Generated cuts live in a pool with
   activity-based aging: a cut re-violated (or tight) under the current
   LP point is "active" and its age resets; cuts that stay slack for
   [max_age] consecutive separation rounds are evicted.  Validity is
   certified against the final incumbent — every added cut must hold at
   the returned integer point ({!certify}), on top of {!Analyze.certify}
   checking the cut rows like any other row once they are added to the
   problem. *)

module Fx = Runtime.Fx

type knapsack = {
  row_id : int;  (* index of the source row in the problem *)
  items : (int * float) array;  (* (var, size), all sizes > 0 *)
  cap : float;
}

type cut = {
  cvars : int array;  (* sorted support: sum x_j <= crhs *)
  crhs : float;
  source_row : int;
  mutable age : int;  (* separation rounds since last active *)
  mutable installed : bool;
  mutable added_row : int;  (* row id once added, -1 before *)
}

type pool = {
  knapsacks : knapsack array;
  mutable cuts : cut list;  (* newest first; both pending and added *)
  mutable separated : int;  (* covers generated across all rounds *)
  mutable added : int;  (* cuts installed as rows *)
  mutable evicted : int;  (* pool entries dropped by aging *)
}

let max_age = 3

(* Safety margin for the cover condition: only emit a cover whose weight
   clearly overshoots the capacity, so float noise in big byte-valued
   storage rows can never manufacture an invalid cut. *)
let cover_margin cap = 1e-9 +. (1e-12 *. abs_float cap)

let tr_separated = Runtime.Trace.counter "cuts.separated"
let tr_added = Runtime.Trace.counter "cuts.added"
let tr_evicted = Runtime.Trace.counter "cuts.evicted"

(* A row qualifies as a knapsack when it reads sum(a_j x_j) <= b with
   every coefficient positive and every variable binary. *)
let detect (p : Problem.t) =
  let binary = Array.make (Problem.nvars p) false in
  List.iter
    (fun v ->
      let vr = Problem.var p v in
      if vr.Problem.lb >= -1e-9 && vr.Problem.ub <= 1.0 +. 1e-9 then
        binary.(v) <- true)
    (Problem.integer_vars p);
  let knapsacks = ref [] in
  Array.iteri
    (fun i (r : Problem.row) ->
      if
        r.Problem.sense = Problem.Le
        && r.Problem.rhs > 0.0
        && Array.length r.Problem.coeffs >= 2
        && Array.for_all
             (fun (v, c) -> c > 0.0 && binary.(v))
             r.Problem.coeffs
      then
        knapsacks :=
          { row_id = i; items = r.Problem.coeffs; cap = r.Problem.rhs }
          :: !knapsacks)
    (Problem.rows p);
  {
    knapsacks = Array.of_list (List.rev !knapsacks);
    cuts = [];
    separated = 0;
    added = 0;
    evicted = 0;
  }

let cut_key c = (c.source_row, Array.to_list c.cvars)

let lhs_value (c : cut) (x : float array) =
  Array.fold_left (fun acc v -> acc +. x.(v)) 0.0 c.cvars

(* Greedy cover of one knapsack against the LP point [x]; returns the
   lifted cut when violated by more than [min_violation]. *)
let separate_knapsack (k : knapsack) (x : float array) ~min_violation =
  (* items by LP value descending; deterministic tie-break on var id *)
  let order = Array.copy k.items in
  Array.sort
    (fun (v1, _) (v2, _) ->
      match Float.compare x.(v2) x.(v1) with
      | 0 -> Int.compare v1 v2
      | c -> c)
    order;
  let margin = cover_margin k.cap in
  let weight = ref 0.0 in
  let cover = ref [] in
  let ncover = ref 0 in
  (try
     Array.iter
       (fun (v, a) ->
         if x.(v) > 1e-9 then begin
           weight := !weight +. a;
           cover := v :: !cover;
           incr ncover;
           if !weight > k.cap +. margin then raise Exit
         end)
       order
   with Exit -> ());
  if !weight <= k.cap +. margin || !ncover < 2 then None
  else begin
    (* lift: extend by every item at least as heavy as the cover's
       heaviest member *)
    let amax =
      List.fold_left
        (fun acc v ->
          let a =
            (* item weight lookup: items are few, linear scan is fine *)
            let w = ref 0.0 in
            Array.iter (fun (v', a') -> if v' = v then w := a') k.items;
            !w
          in
          max acc a)
        0.0 !cover
    in
    let in_cover = Hashtbl.create 16 in
    List.iter (fun v -> Hashtbl.replace in_cover v ()) !cover;
    let support = ref !cover in
    Array.iter
      (fun (v, a) ->
        if (not (Hashtbl.mem in_cover v)) && a >= amax then
          support := v :: !support)
      k.items;
    let cvars = Array.of_list !support in
    Array.sort Int.compare cvars;
    let crhs = float_of_int (!ncover - 1) in
    let c =
      { cvars; crhs; source_row = k.row_id; age = 0; installed = false;
        added_row = -1 }
    in
    if lhs_value c x > crhs +. min_violation then Some c else None
  end

(* One separation round: generate covers from every knapsack under [x],
   dedup against the pool, age existing entries, and return the violated
   cuts (new or revived from the pool) worth adding, most violated
   first. *)
let separate ?(min_violation = 1e-4) ?(max_cuts = 16) pool (x : float array) =
  let seen = Hashtbl.create 64 in
  List.iter (fun c -> Hashtbl.replace seen (cut_key c) ()) pool.cuts;
  let fresh = ref [] in
  Array.iter
    (fun k ->
      match separate_knapsack k x ~min_violation with
      | Some c when not (Hashtbl.mem seen (cut_key c)) ->
          Hashtbl.replace seen (cut_key c) ();
          pool.separated <- pool.separated + 1;
          Runtime.Trace.incr tr_separated;
          pool.cuts <- c :: pool.cuts;
          fresh := c :: !fresh
      | _ -> ())
    pool.knapsacks;
  (* activity-based aging over the whole pool *)
  let keep =
    List.filter
      (fun c ->
        let active = lhs_value c x >= c.crhs -. 1e-6 in
        if active then c.age <- 0 else c.age <- c.age + 1;
        let stale = (not c.installed) && c.age > max_age in
        if stale then begin
          pool.evicted <- pool.evicted + 1;
          Runtime.Trace.incr tr_evicted
        end;
        not stale)
      pool.cuts
  in
  pool.cuts <- keep;
  let violated =
    List.filter
      (fun c -> (not c.installed) && lhs_value c x > c.crhs +. min_violation)
      keep
  in
  let ranked =
    List.sort
      (fun c1 c2 ->
        match
          Float.compare
            (lhs_value c2 x -. c2.crhs)
            (lhs_value c1 x -. c1.crhs)
        with
        | 0 -> Stdlib.compare (cut_key c1) (cut_key c2)
        | c -> c)
      violated
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | c :: rest -> c :: take (n - 1) rest
  in
  take max_cuts ranked

(* Install a cut as a problem row.  The row participates in every later
   LP solve and in {!Analyze.certify} like any other row. *)
let add_to_problem pool (p : Problem.t) (c : cut) =
  if not c.installed then begin
    let coeffs = Array.to_list (Array.map (fun v -> (v, 1.0)) c.cvars) in
    let id =
      Problem.add_row
        ~name:(Printf.sprintf "cover_r%d_%d" c.source_row pool.added)
        p coeffs Problem.Le c.crhs
    in
    c.installed <- true;
    c.added_row <- id;
    pool.added <- pool.added + 1;
    Runtime.Trace.incr tr_added
  end

(* Certification: every added cut must hold at the final incumbent.
   Returns the number of violated cuts (0 = all certified). *)
let certify ?(tol = 1e-6) pool (x : float array) =
  List.fold_left
    (fun bad c ->
      if c.installed && lhs_value c x > c.crhs +. tol then bad + 1 else bad)
    0 pool.cuts

let stats pool = (pool.separated, pool.added, pool.evicted)

let active_count pool (x : float array) =
  List.fold_left
    (fun n c ->
      if c.installed && lhs_value c x >= c.crhs -. 1e-6 then n + 1 else n)
    0 pool.cuts
