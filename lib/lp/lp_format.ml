(* Reader and writer for the CPLEX LP file format (the subset covering
   linear objectives, linear constraints, bounds, and binary/general
   integer sections).  Lets the solver interoperate with models produced
   by other tools, and backs the `lp_solve` command-line utility. *)

module Fx = Runtime.Fx

exception Format_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Format_error s)) fmt

(* --- Writing --- *)

(* Shortest decimal form that re-parses bit-identically.  "%.12g" (the
   historical choice) silently perturbs doubles that need up to 17
   significant digits; "%.17g" everywhere is lossless but noisy
   ("0.5" -> "0.5", but "0.1" -> "0.10000000000000001").  Probe
   precisions upward and keep the first whose round trip is exact, so
   common short values stay short and every float survives
   [of_string (to_string p)] unchanged. *)
let repr f =
  let rec go p =
    if p >= 17 then Printf.sprintf "%.17g" f
    else
      let s = Printf.sprintf "%.*g" p f in
      match float_of_string_opt s with
      | Some g when Fx.exactly g f -> s
      | _ -> go (p + 1)
  in
  go 1

let write_term buf first coeff name =
  if Fx.nonzero coeff then begin
    if coeff >= 0.0 && not first then Buffer.add_string buf " + "
    else if coeff < 0.0 then Buffer.add_string buf (if first then "- " else " - ");
    let a = abs_float coeff in
    if not (Fx.exactly a 1.0) then
      Buffer.add_string buf (repr a ^ " ");
    Buffer.add_string buf name
  end

let to_string (p : Problem.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "Minimize\n obj:";
  let first = ref true in
  for v = 0 to Problem.nvars p - 1 do
    let var = Problem.var p v in
    if Fx.nonzero var.Problem.obj then begin
      Buffer.add_char buf ' ';
      write_term buf !first var.Problem.obj var.Problem.vname;
      first := false
    end
  done;
  if !first then Buffer.add_string buf " 0 x0";
  Buffer.add_string buf "\nSubject To\n";
  Array.iter
    (fun (r : Problem.row) ->
      Buffer.add_string buf (Printf.sprintf " %s:" r.Problem.rname);
      let first = ref true in
      Array.iter
        (fun (v, c) ->
          Buffer.add_char buf ' ';
          write_term buf !first c (Problem.var p v).Problem.vname;
          first := false)
        r.Problem.coeffs;
      let op =
        match r.Problem.sense with
        | Problem.Le -> "<="
        | Problem.Ge -> ">="
        | Problem.Eq -> "="
      in
      Buffer.add_string buf (Printf.sprintf " %s %s\n" op (repr r.Problem.rhs)))
    (Problem.rows p);
  Buffer.add_string buf "Bounds\n";
  for v = 0 to Problem.nvars p - 1 do
    let var = Problem.var p v in
    if var.Problem.kind <> Problem.Binary then begin
      let name = var.Problem.vname in
      match (var.Problem.lb, var.Problem.ub) with
      | lb, ub when Fx.is_neg_inf lb && Fx.is_inf ub ->
          Buffer.add_string buf (Printf.sprintf " %s free\n" name)
      | lb, ub when Fx.is_inf ub ->
          if Fx.nonzero lb then
            Buffer.add_string buf (Printf.sprintf " %s >= %s\n" name (repr lb))
      | lb, ub when Fx.is_neg_inf lb ->
          Buffer.add_string buf (Printf.sprintf " %s <= %s\n" name (repr ub))
      | lb, ub ->
          Buffer.add_string buf
            (Printf.sprintf " %s <= %s <= %s\n" (repr lb) name (repr ub))
    end
  done;
  let binaries =
    List.filter
      (fun v -> (Problem.var p v).Problem.kind = Problem.Binary)
      (Problem.integer_vars p)
  in
  let generals =
    List.filter
      (fun v -> (Problem.var p v).Problem.kind = Problem.Integer)
      (Problem.integer_vars p)
  in
  if binaries <> [] then begin
    Buffer.add_string buf "Binary\n";
    List.iter
      (fun v ->
        Buffer.add_string buf
          (Printf.sprintf " %s\n" (Problem.var p v).Problem.vname))
      binaries
  end;
  if generals <> [] then begin
    Buffer.add_string buf "General\n";
    List.iter
      (fun v ->
        Buffer.add_string buf
          (Printf.sprintf " %s\n" (Problem.var p v).Problem.vname))
      generals
  end;
  Buffer.add_string buf "End\n";
  Buffer.contents buf

let to_file p path =
  let oc = open_out path in
  output_string oc (to_string p);
  close_out oc

(* --- Reading --- *)

type token =
  | Word of string
  | Num of float
  | Plus
  | Minus
  | Op of Problem.sense
  | Colon

let tokenize text =
  let n = String.length text in
  let toks = ref [] in
  let i = ref 0 in
  let is_word_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '(' || c = ')' || c = '.' || c = '['  || c = ']'
  in
  while !i < n do
    let c = text.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '\\' then begin
      (* comment to end of line *)
      while !i < n && text.[!i] <> '\n' do incr i done
    end
    else if c = '+' then begin toks := Plus :: !toks; incr i end
    else if c = '-' then begin toks := Minus :: !toks; incr i end
    else if c = ':' then begin toks := Colon :: !toks; incr i end
    else if c = '<' || c = '>' || c = '=' then begin
      let sense =
        if c = '=' then Problem.Eq
        else if c = '<' then Problem.Le
        else Problem.Ge
      in
      incr i;
      if !i < n && text.[!i] = '=' then incr i;
      toks := Op sense :: !toks
    end
    else if (c >= '0' && c <= '9') || c = '.' then begin
      let j = ref !i in
      while
        !j < n
        && ((text.[!j] >= '0' && text.[!j] <= '9')
           || text.[!j] = '.' || text.[!j] = 'e' || text.[!j] = 'E'
           || ((text.[!j] = '+' || text.[!j] = '-')
              && !j > !i
              && (text.[!j - 1] = 'e' || text.[!j - 1] = 'E')))
      do incr j done;
      let s = String.sub text !i (!j - !i) in
      (match float_of_string_opt s with
      | Some f -> toks := Num f :: !toks
      | None -> fail "bad number %S" s);
      i := !j
    end
    else if is_word_char c then begin
      let j = ref !i in
      while !j < n && is_word_char text.[!j] do incr j done;
      toks := Word (String.sub text !i (!j - !i)) :: !toks;
      i := !j
    end
    else fail "unexpected character %C" c
  done;
  List.rev !toks

let is_keyword w k = String.lowercase_ascii w = k

(* Section keywords may not be used as variable names. *)
let section_word w =
  List.exists (is_keyword w)
    [ "subject"; "st"; "s.t."; "bounds"; "binary"; "binaries"; "general";
      "generals"; "end"; "free" ]

(* Linear expression: returns (terms, remaining tokens). *)
let rec parse_expr acc sign toks =
  match toks with
  | Plus :: rest -> parse_expr acc 1.0 rest
  | Minus :: rest -> parse_expr acc (-1.0) rest
  | Num c :: Word v :: rest when not (section_word v) ->
      parse_expr ((v, sign *. c) :: acc) 1.0 rest
  | Num c :: rest when acc = [] && Fx.exactly sign 1.0 && Fx.is_zero c ->
      (* constant 0 objective *)
      parse_expr acc 1.0 rest
  | Word v :: rest when not (section_word v) ->
      parse_expr ((v, sign) :: acc) 1.0 rest
  | _ -> (List.rev acc, toks)

let of_string text =
  let toks = tokenize text in
  let p = Problem.create () in
  let vars = Hashtbl.create 64 in
  let var_of name =
    match Hashtbl.find_opt vars name with
    | Some v -> v
    | None ->
        let v = Problem.add_var ~name p in
        Hashtbl.add vars name v;
        v
  in
  (* Minimize / Maximize *)
  let sign, toks =
    match toks with
    | Word w :: rest when is_keyword w "minimize" || is_keyword w "min" ->
        (1.0, rest)
    | Word w :: rest when is_keyword w "maximize" || is_keyword w "max" ->
        (-1.0, rest)
    | _ -> fail "expected Minimize or Maximize"
  in
  (* optional objective label *)
  let toks =
    match toks with Word _ :: Colon :: rest -> rest | _ -> toks
  in
  let obj_terms, toks = parse_expr [] 1.0 toks in
  List.iter
    (fun (name, c) ->
      let v = var_of name in
      Problem.set_obj p v ((Problem.var p v).Problem.obj +. (sign *. c)))
    obj_terms;
  (* Subject To *)
  let toks =
    match toks with
    | Word w1 :: Word w2 :: rest
      when is_keyword w1 "subject" && is_keyword w2 "to" ->
        rest
    | Word w :: rest when is_keyword w "st" || is_keyword w "s.t." -> rest
    | _ -> fail "expected Subject To"
  in
  let stop_words = [ "bounds"; "binary"; "binaries"; "general"; "generals"; "end" ] in
  let rec parse_rows toks =
    match toks with
    | Word w :: _ when List.exists (is_keyword w) stop_words -> toks
    | [] -> []
    | _ ->
        let name, toks =
          match toks with
          | Word w :: Colon :: rest -> (w, rest)
          | _ -> ("", toks)
        in
        let terms, toks = parse_expr [] 1.0 toks in
        (match toks with
        | Op sense :: rest -> (
            let neg, rest =
              match rest with Minus :: r -> (true, r) | r -> (false, r)
            in
            match rest with
            | Num rhs :: rest' ->
                let rhs = if neg then -.rhs else rhs in
                ignore
                  (Problem.add_row ~name p
                     (List.map (fun (nm, c) -> (var_of nm, c)) terms)
                     sense rhs);
                parse_rows rest'
            | _ -> fail "expected rhs constant in row %s" name)
        | _ -> fail "expected comparison in row %s" name)
  in
  let toks = parse_rows toks in
  (* Bounds *)
  let rec parse_bounds toks =
    match toks with
    | Word w :: rest when is_keyword w "bounds" -> parse_bounds rest
    | Word w :: _
      when List.exists (is_keyword w)
             [ "binary"; "binaries"; "general"; "generals"; "end" ] ->
        toks
    | Num lb :: Op Problem.Le :: Word v :: Op Problem.Le :: Num ub :: rest ->
        Problem.set_bounds p (var_of v) ~lb ~ub;
        parse_bounds rest
    | Num lb :: Op Problem.Le :: Word v :: Op Problem.Le :: Minus :: Num ub
      :: rest ->
        Problem.set_bounds p (var_of v) ~lb ~ub:(-.ub);
        parse_bounds rest
    | Minus :: Num lb :: Op Problem.Le :: Word v :: Op Problem.Le :: Num ub
      :: rest ->
        Problem.set_bounds p (var_of v) ~lb:(-.lb) ~ub;
        parse_bounds rest
    | Minus
      :: Num lb
      :: Op Problem.Le
      :: Word v
      :: Op Problem.Le
      :: Minus
      :: Num ub
      :: rest ->
        Problem.set_bounds p (var_of v) ~lb:(-.lb) ~ub:(-.ub);
        parse_bounds rest
    | Word v :: Word f :: rest when is_keyword f "free" ->
        Problem.set_bounds p (var_of v) ~lb:neg_infinity ~ub:infinity;
        parse_bounds rest
    | Word v :: Op sense :: neg_and_num ->
        let neg, rest =
          match neg_and_num with Minus :: r -> (true, r) | r -> (false, r)
        in
        (match rest with
        | Num b :: rest' ->
            let b = if neg then -.b else b in
            let var = Problem.var p (var_of v) in
            (match sense with
            | Problem.Le -> Problem.set_bounds p (var_of v) ~lb:var.Problem.lb ~ub:b
            | Problem.Ge -> Problem.set_bounds p (var_of v) ~lb:b ~ub:var.Problem.ub
            | Problem.Eq -> Problem.set_bounds p (var_of v) ~lb:b ~ub:b);
            parse_bounds rest'
        | _ -> fail "bad bound for %s" v)
    | _ -> toks
  in
  let toks = parse_bounds toks in
  (* Binary / General sections: re-add with integer kinds by tightening.
     Problem has immutable kinds, so emulate: binary = bounds [0,1] and
     membership in the integer list.  We rebuild by marking via a side
     table consumed by [of_string_with_kinds] below. *)
  let binaries = ref [] and generals = ref [] in
  let rec parse_sections toks =
    match toks with
    | Word w :: rest when is_keyword w "binary" || is_keyword w "binaries" ->
        let rec grab toks =
          match toks with
          | Word v :: rest
            when not
                   (List.exists (is_keyword v)
                      [ "general"; "generals"; "end"; "binary"; "binaries" ]) ->
              binaries := v :: !binaries;
              grab rest
          | _ -> parse_sections toks
        in
        grab rest
    | Word w :: rest when is_keyword w "general" || is_keyword w "generals" ->
        let rec grab toks =
          match toks with
          | Word v :: rest
            when not
                   (List.exists (is_keyword v)
                      [ "general"; "generals"; "end"; "binary"; "binaries" ]) ->
              generals := v :: !generals;
              grab rest
          | _ -> parse_sections toks
        in
        grab rest
    | Word w :: rest when is_keyword w "end" -> rest
    | [] -> []
    | _ -> fail "unexpected trailing tokens"
  in
  ignore (parse_sections toks);
  (* Rebuild the problem with correct kinds (kind is fixed at add_var). *)
  if !binaries = [] && !generals = [] then p
  else begin
    let p2 = Problem.create () in
    let map = Hashtbl.create 64 in
    (* Rebuild in ascending original-id order: p2's variable ids then
       mirror p's exactly instead of following hash order. *)
    List.iter
      (fun (name, v) ->
        let var = Problem.var p v in
        let kind =
          if List.mem name !binaries then Problem.Binary
          else if List.mem name !generals then Problem.Integer
          else Problem.Continuous
        in
        let v2 =
          Problem.add_var ~kind ~lb:var.Problem.lb ~ub:var.Problem.ub
            ~obj:var.Problem.obj ~name p2
        in
        Hashtbl.add map v v2)
      (Runtime.Tbl.sorted_bindings vars
      |> List.sort (fun (_, a) (_, b) -> compare a b));
    Array.iter
      (fun (r : Problem.row) ->
        ignore
          (Problem.add_row ~name:r.Problem.rname p2
             (Array.to_list
                (Array.map (fun (v, c) -> (Hashtbl.find map v, c)) r.Problem.coeffs))
             r.Problem.sense r.Problem.rhs))
      (Problem.rows p);
    p2
  end

let of_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string text
