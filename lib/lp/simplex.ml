(* Bounded-variable primal simplex (revised form) over a pluggable basis
   representation.

   The problem is canonicalized as

       minimize c'x    s.t.  A x + s = b,   l <= (x, s) <= u

   with one slack per row (equality rows get a slack fixed at zero), plus
   phase-1 artificials.  Nonbasic variables rest at one of their bounds;
   the ratio test handles bound-to-bound "flips" without basis changes.

   Two basis kernels implement the ftran/btran/update triple:

   - [Dense]: the historical reference — an explicit dense B^-1 updated
     by elementary row operations, O(m^2) per pivot;
   - [Sparse]: sparse LU with Markowitz pivoting ({!Lu}), maintained
     across pivots by product-form eta vectors and refactorized when the
     eta file grows past a fill bound or a pivot looks numerically
     untrustworthy.  Per-pivot cost tracks the factor nonzeros instead
     of m^2, which is what lets the kernel keep up with the large
     decomposition subproblems and materialized CoPhy BIPs.

   Both kernels run the identical pricing/ratio-test loop and agree on
   the optimum value; because they compute duals and ftran results with
   different floating-point arithmetic, sub-tolerance ties can resolve
   differently, so degenerate problems may end on different optimal
   vertices. *)

module Fx = Runtime.Fx

type status = Optimal | Infeasible | Unbounded | Iter_limit

type result = {
  status : status;
  x : float array;          (* structural variable values *)
  obj : float;              (* c'x (without the problem's offset) *)
  duals : float array;      (* one per row *)
  iterations : int;
}

type basis_kind = Dense | Sparse

type kernel_stats = {
  mutable pivots : int;            (* basis changes (bound flips excluded) *)
  mutable refactorizations : int;  (* sparse-basis rebuilds mid-solve *)
  mutable iterations : int;        (* pricing loop iterations, both phases *)
  mutable etas_pushed : int;       (* product-form eta vectors appended *)
  mutable max_eta_len : int;       (* peak eta-file length between rebuilds *)
}

let create_stats () =
  {
    pivots = 0;
    refactorizations = 0;
    iterations = 0;
    etas_pushed = 0;
    max_eta_len = 0;
  }

(* Trace probes: single [Atomic.get] each when tracing is off. *)
let tr_iterations = Runtime.Trace.counter "simplex.iterations"
let tr_pivots = Runtime.Trace.counter "simplex.pivots"
let tr_refactorizations = Runtime.Trace.counter "simplex.refactorizations"
let tr_etas = Runtime.Trace.counter "simplex.etas_pushed"
let tr_solves = Runtime.Trace.counter "simplex.solves"

let tol = 1e-7
let pivot_tol = 1e-9

(* --- basis representations --- *)

type eta = { er : int; epiv : float; entries : (int * float) array }

type sparse_basis = {
  mutable lu : Lu.t;
  mutable etas : eta array;       (* applied oldest-first in ftran *)
  mutable neta : int;
  mutable eta_nnz : int;
}

type repr = Dense_binv of float array | Sparse_lu of sparse_basis

(* Refactorization triggers for the sparse basis. *)
let max_etas = 64
let eta_fill_factor = 2

type state = {
  m : int;                      (* rows *)
  total : int;                  (* structural + slack + artificial *)
  nstruct : int;
  cols : (int * float) array array;   (* sparse column entries (row, coeff) *)
  lb : float array;
  ub : float array;
  cost : float array;           (* phase-dependent *)
  value : float array;
  basis : int array;            (* var in basis position i *)
  in_basis : int array;         (* var -> basis position, -1 if nonbasic *)
  repr : repr;
  stats : kernel_stats;
  mutable iters : int;
}

(* y = c_B' B^-1 (row-indexed duals) *)
let compute_duals s y =
  match s.repr with
  | Dense_binv binv ->
      Array.fill y 0 s.m 0.0;
      for i = 0 to s.m - 1 do
        let cb = s.cost.(s.basis.(i)) in
        if Fx.nonzero cb then begin
          let base = i * s.m in
          for j = 0 to s.m - 1 do
            Array.unsafe_set y j
              (Array.unsafe_get y j
              +. (cb *. Array.unsafe_get binv (base + j)))
          done
        end
      done
  | Sparse_lu sb ->
      for i = 0 to s.m - 1 do
        y.(i) <- s.cost.(s.basis.(i))
      done;
      (* B^-T = B0^-T E_1^-T ... E_k^-T: newest eta first, then the LU. *)
      for t = sb.neta - 1 downto 0 do
        let e = sb.etas.(t) in
        let acc = ref y.(e.er) in
        Array.iter (fun (i, w) -> acc := !acc -. (w *. y.(i))) e.entries;
        y.(e.er) <- !acc /. e.epiv
      done;
      Lu.solve_transpose sb.lu y

let reduced_cost s y j =
  let d = ref s.cost.(j) in
  Array.iter (fun (i, a) -> d := !d -. (y.(i) *. a)) s.cols.(j);
  !d

(* w = B^-1 A_j (basis-position-indexed) *)
let ftran s j w =
  match s.repr with
  | Dense_binv binv ->
      Array.fill w 0 s.m 0.0;
      Array.iter
        (fun (i, a) ->
          if Fx.nonzero a then
            for r = 0 to s.m - 1 do
              Array.unsafe_set w r
                (Array.unsafe_get w r
                +. (Array.unsafe_get binv ((r * s.m) + i) *. a))
            done)
        s.cols.(j)
  | Sparse_lu sb ->
      Array.fill w 0 s.m 0.0;
      Array.iter (fun (i, a) -> w.(i) <- w.(i) +. a) s.cols.(j);
      Lu.solve sb.lu w;
      for t = 0 to sb.neta - 1 do
        let e = sb.etas.(t) in
        let wr = w.(e.er) /. e.epiv in
        if Fx.nonzero wr then
          Array.iter (fun (i, wi) -> w.(i) <- w.(i) -. (wi *. wr)) e.entries;
        w.(e.er) <- wr
      done

(* Raised (and contained inside this module) when a refactorization finds
   the current basis numerically singular. *)
exception Singular_basis

let refactor s sb =
  match Lu.factor ~m:s.m ~cols:s.cols ~basis:s.basis with
  | lu ->
      sb.lu <- lu;
      sb.neta <- 0;
      sb.eta_nnz <- 0;
      s.stats.refactorizations <- s.stats.refactorizations + 1;
      Runtime.Trace.incr tr_refactorizations
  | exception Lu.Singular _ -> raise Singular_basis

let push_eta sb e =
  if sb.neta >= Array.length sb.etas then begin
    let bigger = Array.make (max 16 (2 * sb.neta)) e in
    Array.blit sb.etas 0 bigger 0 sb.neta;
    sb.etas <- bigger
  end;
  sb.etas.(sb.neta) <- e;
  sb.neta <- sb.neta + 1;
  sb.eta_nnz <- sb.eta_nnz + Array.length e.entries + 1

(* Install the basis change at position [r] ([s.basis] already updated),
   where [w] = B_old^-1 A_enter. *)
let update_basis s r w =
  s.stats.pivots <- s.stats.pivots + 1;
  Runtime.Trace.incr tr_pivots;
  match s.repr with
  | Dense_binv binv ->
      let piv = w.(r) in
      let rbase = r * s.m in
      for j = 0 to s.m - 1 do
        Array.unsafe_set binv (rbase + j)
          (Array.unsafe_get binv (rbase + j) /. piv)
      done;
      for i = 0 to s.m - 1 do
        let f = Array.unsafe_get w i in
        if i <> r && abs_float f > 1e-13 then begin
          let ibase = i * s.m in
          for j = 0 to s.m - 1 do
            Array.unsafe_set binv (ibase + j)
              (Array.unsafe_get binv (ibase + j)
              -. (f *. Array.unsafe_get binv (rbase + j)))
          done
        end
      done
  | Sparse_lu sb ->
      let maxw = ref 0.0 in
      let count = ref 0 in
      for i = 0 to s.m - 1 do
        let a = abs_float w.(i) in
        if a > !maxw then maxw := a;
        if i <> r && a > 1e-13 then incr count
      done;
      if
        abs_float w.(r) < 1e-7 *. !maxw
        || sb.neta >= max_etas
        || sb.eta_nnz > (eta_fill_factor * Lu.nnz sb.lu) + (4 * s.m)
      then refactor s sb
      else begin
        let entries = Array.make !count (0, 0.0) in
        let k = ref 0 in
        for i = 0 to s.m - 1 do
          if i <> r && abs_float w.(i) > 1e-13 then begin
            entries.(!k) <- (i, w.(i));
            incr k
          end
        done;
        push_eta sb { er = r; epiv = w.(r); entries };
        s.stats.etas_pushed <- s.stats.etas_pushed + 1;
        if sb.neta > s.stats.max_eta_len then s.stats.max_eta_len <- sb.neta;
        Runtime.Trace.incr tr_etas
      end

(* Entering-variable direction: +1 when it will increase from its current
   value, -1 when it will decrease. *)
let entering_direction s j d =
  let v = s.value.(j) in
  let at_lb = v <= s.lb.(j) +. tol in
  let at_ub = v >= s.ub.(j) -. tol in
  if at_lb && d < -.tol then Some 1
  else if at_ub && d > tol then Some (-1)
  else if (not at_lb) && (not at_ub) && abs_float d > tol then
    Some (if d < 0.0 then 1 else -1)
  else None

exception Found of int * int  (* var, direction *)

let price s y ~bland =
  try
    if bland then
      for j = 0 to s.total - 1 do
        if s.in_basis.(j) < 0 && s.lb.(j) < s.ub.(j) then begin
          let d = reduced_cost s y j in
          match entering_direction s j d with
          | Some dir -> raise (Found (j, dir))
          | None -> ()
        end
      done
    else begin
      let best = ref (-1) and best_dir = ref 0 and best_score = ref tol in
      for j = 0 to s.total - 1 do
        if s.in_basis.(j) < 0 && s.lb.(j) < s.ub.(j) then begin
          let d = reduced_cost s y j in
          match entering_direction s j d with
          | Some dir ->
              if abs_float d > !best_score then begin
                best := j;
                best_dir := dir;
                best_score := abs_float d
              end
          | None -> ()
        end
      done;
      if !best >= 0 then raise (Found (!best, !best_dir))
    end;
    None
  with Found (j, dir) -> Some (j, dir)

(* One phase of the primal simplex; returns final status. *)
let run_phase s ~max_iters =
  let y = Array.make s.m 0.0 in
  let w = Array.make s.m 0.0 in
  let stall = ref 0 in
  let last_obj = ref infinity in
  let rec loop () =
    if s.iters >= max_iters then Iter_limit
    else begin
      s.iters <- s.iters + 1;
      s.stats.iterations <- s.stats.iterations + 1;
      Runtime.Trace.incr tr_iterations;
      compute_duals s y;
      let bland = !stall > 200 in
      match price s y ~bland with
      | None -> Optimal
      | Some (enter, dir) ->
          ftran s enter w;
          let fdir = float_of_int dir in
          (* Ratio test: smallest step that hits a bound. *)
          let t_limit = ref infinity and leave = ref (-1) in
          (* entering variable's own opposite bound *)
          let own_span = s.ub.(enter) -. s.lb.(enter) in
          if own_span < !t_limit then begin
            t_limit := own_span;
            leave := -2 (* bound flip *)
          end;
          for i = 0 to s.m - 1 do
            let rate = -.fdir *. w.(i) in
            if rate > pivot_tol then begin
              let room = s.ub.(s.basis.(i)) -. s.value.(s.basis.(i)) in
              let t = max 0.0 (room /. rate) in
              if t < !t_limit -. 1e-12
                 || (t < !t_limit +. 1e-12 && !leave >= 0
                     && s.basis.(i) < s.basis.(!leave))
              then begin
                t_limit := t;
                leave := i
              end
            end
            else if rate < -.pivot_tol then begin
              let room = s.value.(s.basis.(i)) -. s.lb.(s.basis.(i)) in
              let t = max 0.0 (room /. -.rate) in
              if t < !t_limit -. 1e-12
                 || (t < !t_limit +. 1e-12 && !leave >= 0
                     && s.basis.(i) < s.basis.(!leave))
              then begin
                t_limit := t;
                leave := i
              end
            end
          done;
          if Fx.is_inf !t_limit then Unbounded
          else begin
            let t = !t_limit in
            (* apply the step *)
            s.value.(enter) <- s.value.(enter) +. (fdir *. t);
            if t > 0.0 then
              for i = 0 to s.m - 1 do
                let b = s.basis.(i) in
                s.value.(b) <- s.value.(b) -. (fdir *. t *. w.(i))
              done;
            (* stall detection for Bland's rule *)
            let obj =
              let acc = ref 0.0 in
              for j = 0 to s.total - 1 do
                if Fx.nonzero s.cost.(j) then acc := !acc +. (s.cost.(j) *. s.value.(j))
              done;
              !acc
            in
            if obj < !last_obj -. 1e-10 then begin
              last_obj := obj;
              stall := 0
            end
            else incr stall;
            (match !leave with
            | -2 -> () (* bound flip: no basis change *)
            | r -> (
                let leaving = s.basis.(r) in
                (* snap the leaving variable onto the bound it hit *)
                let rate = -.fdir *. w.(r) in
                s.value.(leaving) <-
                  (if rate > 0.0 then s.ub.(leaving) else s.lb.(leaving));
                s.in_basis.(leaving) <- -1;
                s.basis.(r) <- enter;
                s.in_basis.(enter) <- r;
                try update_basis s r w
                with Singular_basis ->
                  (* The pivot made the basis numerically singular (e.g. a
                     column emptied by drop-tolerance deletions).  Undo the
                     swap — the primal values stay consistent, the entering
                     variable just rests between its bounds — and rebuild
                     the previous basis, which was factorizable.  If even
                     that fails, the outer handler returns Iter_limit. *)
                  s.basis.(r) <- leaving;
                  s.in_basis.(leaving) <- r;
                  s.in_basis.(enter) <- -1;
                  (match s.repr with
                  | Sparse_lu sb -> refactor s sb
                  | Dense_binv _ -> ())));
            loop ()
          end
    end
  in
  (* Never let a singular-basis failure escape the public [solve] API:
     if recovery in the pivot loop also fails, report Iter_limit — the
     iterate is a valid (if unconverged) primal point, and callers
     already treat Iter_limit as "not proven". *)
  try loop () with Singular_basis -> Iter_limit

(* --- Public entry point --- *)

let solve ?(max_iters = 0) ?(basis = Dense) ?stats (p : Problem.t) =
  Runtime.Trace.incr tr_solves;
  let m = Problem.nrows p in
  let n = Problem.nvars p in
  let rows = Problem.rows p in
  let max_iters = if max_iters > 0 then max_iters else 2000 + (60 * (m + n)) in
  let total = n + m + m in
  (* columns *)
  let cols = Array.make total [||] in
  let tmp = Array.make m [] in
  Array.iteri
    (fun i (r : Problem.row) ->
      Array.iter (fun (v, c) -> tmp.(i) <- (v, c) :: tmp.(i)) r.Problem.coeffs)
    rows;
  let per_var = Array.make n [] in
  Array.iteri
    (fun i entries ->
      List.iter (fun (v, c) -> per_var.(v) <- (i, c) :: per_var.(v)) entries)
    tmp;
  for v = 0 to n - 1 do
    cols.(v) <- Array.of_list per_var.(v)
  done;
  for i = 0 to m - 1 do
    cols.(n + i) <- [| (i, 1.0) |]  (* slack *)
  done;
  (* bounds *)
  let lb = Array.make total 0.0 and ub = Array.make total 0.0 in
  for v = 0 to n - 1 do
    lb.(v) <- (Problem.var p v).Problem.lb;
    ub.(v) <- (Problem.var p v).Problem.ub
  done;
  Array.iteri
    (fun i (r : Problem.row) ->
      match r.Problem.sense with
      | Problem.Le ->
          lb.(n + i) <- 0.0;
          ub.(n + i) <- infinity
      | Problem.Ge ->
          lb.(n + i) <- neg_infinity;
          ub.(n + i) <- 0.0
      | Problem.Eq ->
          lb.(n + i) <- 0.0;
          ub.(n + i) <- 0.0)
    rows;
  (* initial nonbasic values *)
  let value = Array.make total 0.0 in
  for j = 0 to n + m - 1 do
    value.(j) <-
      (if lb.(j) > neg_infinity then lb.(j)
       else if ub.(j) < infinity then ub.(j)
       else 0.0)
  done;
  (* residuals and artificials *)
  let resid = Array.make m 0.0 in
  Array.iteri (fun i (r : Problem.row) -> resid.(i) <- r.Problem.rhs) rows;
  for j = 0 to n + m - 1 do
    if Fx.nonzero value.(j) then
      Array.iter (fun (i, c) -> resid.(i) <- resid.(i) -. (c *. value.(j))) cols.(j)
  done;
  let bas = Array.make m 0 in
  let in_basis = Array.make total (-1) in
  for i = 0 to m - 1 do
    let a = n + m + i in
    let sigma = if resid.(i) >= 0.0 then 1.0 else -1.0 in
    cols.(a) <- [| (i, sigma) |];
    lb.(a) <- 0.0;
    ub.(a) <- infinity;
    value.(a) <- abs_float resid.(i);
    bas.(i) <- a;
    in_basis.(a) <- i
  done;
  let repr =
    match basis with
    | Dense ->
        let binv = Array.make (m * m) 0.0 in
        for i = 0 to m - 1 do
          binv.((i * m) + i) <- (if resid.(i) >= 0.0 then 1.0 else -1.0)
        done;
        Dense_binv binv
    | Sparse ->
        let lu =
          (* The all-artificial starting basis is a signed diagonal, so
             factorization cannot fail; the handler keeps [Lu.Singular]
             syntactically contained in this module either way. *)
          try Lu.factor ~m ~cols ~basis:bas
          with Lu.Singular _ -> assert false
        in
        Sparse_lu { lu; etas = [||]; neta = 0; eta_nnz = 0 }
  in
  let cost = Array.make total 0.0 in
  let stats = match stats with Some st -> st | None -> create_stats () in
  let s = { m; total; nstruct = n; cols; lb; ub; cost; value; basis = bas;
            in_basis; repr; stats; iters = 0 } in
  (* Phase 1: minimize the artificial sum. *)
  let need_phase1 = Array.exists (fun r -> abs_float r > tol) resid in
  let phase1_status =
    if not need_phase1 then Optimal
    else begin
      for i = 0 to m - 1 do
        cost.(n + m + i) <- 1.0
      done;
      let st = run_phase s ~max_iters in
      for i = 0 to m - 1 do
        cost.(n + m + i) <- 0.0
      done;
      st
    end
  in
  let infeasible =
    let art_sum = ref 0.0 in
    for i = 0 to m - 1 do
      art_sum := !art_sum +. s.value.(n + m + i)
    done;
    !art_sum > 1e-6
  in
  let extract status =
    let x = Array.sub s.value 0 n in
    let obj = ref 0.0 in
    for v = 0 to n - 1 do
      obj := !obj +. ((Problem.var p v).Problem.obj *. x.(v))
    done;
    let y = Array.make m 0.0 in
    for v = 0 to n - 1 do
      s.cost.(v) <- (Problem.var p v).Problem.obj
    done;
    compute_duals s y;
    { status; x; obj = !obj; duals = y; iterations = s.iters }
  in
  match phase1_status with
  | Iter_limit -> extract Iter_limit
  | Unbounded | Optimal | Infeasible ->
      if infeasible then extract Infeasible
      else begin
        (* Pin artificials to zero for phase 2. *)
        for i = 0 to m - 1 do
          ub.(n + m + i) <- 0.0
        done;
        for v = 0 to n - 1 do
          cost.(v) <- (Problem.var p v).Problem.obj
        done;
        let st = run_phase s ~max_iters in
        extract st
      end
