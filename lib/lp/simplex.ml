(* Bounded-variable primal simplex (revised form) over a pluggable basis
   representation.

   The problem is canonicalized as

       minimize c'x    s.t.  A x + s = b,   l <= (x, s) <= u

   with one slack per row (equality rows get a slack fixed at zero), plus
   phase-1 artificials.  Nonbasic variables rest at one of their bounds;
   the ratio test handles bound-to-bound "flips" without basis changes.

   Two basis kernels implement the ftran/btran/update triple:

   - [Dense]: the historical reference — an explicit dense B^-1 updated
     by elementary row operations, O(m^2) per pivot;
   - [Sparse]: sparse LU with Markowitz pivoting ({!Lu}), maintained
     across pivots by product-form eta vectors and refactorized when the
     eta file grows past a fill bound or a pivot looks numerically
     untrustworthy.  Per-pivot cost tracks the factor nonzeros instead
     of m^2, which is what lets the kernel keep up with the large
     decomposition subproblems and materialized CoPhy BIPs.

   Both kernels run the identical pricing/ratio-test loop and agree on
   the optimum value; because they compute duals and ftran results with
   different floating-point arithmetic, sub-tolerance ties can resolve
   differently, so degenerate problems may end on different optimal
   vertices. *)

module Fx = Runtime.Fx

type status = Optimal | Infeasible | Unbounded | Iter_limit

type result = {
  status : status;
  x : float array;          (* structural variable values *)
  obj : float;              (* c'x (without the problem's offset) *)
  duals : float array;      (* one per row *)
  iterations : int;
}

type basis_kind = Dense | Sparse

type kernel_stats = {
  mutable pivots : int;            (* basis changes (bound flips excluded) *)
  mutable refactorizations : int;  (* sparse-basis rebuilds mid-solve *)
  mutable iterations : int;        (* pricing loop iterations, both phases *)
  mutable etas_pushed : int;       (* product-form eta vectors appended *)
  mutable max_eta_len : int;       (* peak eta-file length between rebuilds *)
  mutable dual_iterations : int;   (* dual-simplex pricing iterations *)
  mutable warm_resolves : int;     (* basis restores that skipped phase 1 *)
}

let create_stats () =
  {
    pivots = 0;
    refactorizations = 0;
    iterations = 0;
    etas_pushed = 0;
    max_eta_len = 0;
    dual_iterations = 0;
    warm_resolves = 0;
  }

let add_stats ~into s =
  into.pivots <- into.pivots + s.pivots;
  into.refactorizations <- into.refactorizations + s.refactorizations;
  into.iterations <- into.iterations + s.iterations;
  into.etas_pushed <- into.etas_pushed + s.etas_pushed;
  into.max_eta_len <- max into.max_eta_len s.max_eta_len;
  into.dual_iterations <- into.dual_iterations + s.dual_iterations;
  into.warm_resolves <- into.warm_resolves + s.warm_resolves

(* Trace probes: single [Atomic.get] each when tracing is off. *)
let tr_iterations = Runtime.Trace.counter "simplex.iterations"
let tr_pivots = Runtime.Trace.counter "simplex.pivots"
let tr_refactorizations = Runtime.Trace.counter "simplex.refactorizations"
let tr_etas = Runtime.Trace.counter "simplex.etas_pushed"
let tr_solves = Runtime.Trace.counter "simplex.solves"
let tr_dual_iterations = Runtime.Trace.counter "simplex.dual_iterations"
let tr_warm_resolves = Runtime.Trace.counter "simplex.warm_resolves"

let tol = 1e-7
let pivot_tol = 1e-9

(* --- basis representations --- *)

type eta = { er : int; epiv : float; entries : (int * float) array }

type sparse_basis = {
  mutable lu : Lu.t;
  mutable etas : eta array;       (* applied oldest-first in ftran *)
  mutable neta : int;
  mutable eta_nnz : int;
}

type repr = Dense_binv of float array | Sparse_lu of sparse_basis

(* Refactorization triggers for the sparse basis. *)
let max_etas = 64
let eta_fill_factor = 2

type state = {
  m : int;                      (* rows *)
  total : int;                  (* structural + slack + artificial *)
  nstruct : int;
  cols : (int * float) array array;   (* sparse column entries (row, coeff) *)
  lb : float array;
  ub : float array;
  cost : float array;           (* phase-dependent *)
  value : float array;
  basis : int array;            (* var in basis position i *)
  in_basis : int array;         (* var -> basis position, -1 if nonbasic *)
  repr : repr;
  stats : kernel_stats;
  mutable iters : int;
}

(* y = c_B' B^-1 (row-indexed duals) *)
let compute_duals s y =
  match s.repr with
  | Dense_binv binv ->
      Array.fill y 0 s.m 0.0;
      for i = 0 to s.m - 1 do
        let cb = s.cost.(s.basis.(i)) in
        if Fx.nonzero cb then begin
          let base = i * s.m in
          for j = 0 to s.m - 1 do
            Array.unsafe_set y j
              (Array.unsafe_get y j
              +. (cb *. Array.unsafe_get binv (base + j)))
          done
        end
      done
  | Sparse_lu sb ->
      for i = 0 to s.m - 1 do
        y.(i) <- s.cost.(s.basis.(i))
      done;
      (* B^-T = B0^-T E_1^-T ... E_k^-T: newest eta first, then the LU. *)
      for t = sb.neta - 1 downto 0 do
        let e = sb.etas.(t) in
        let acc = ref y.(e.er) in
        Array.iter (fun (i, w) -> acc := !acc -. (w *. y.(i))) e.entries;
        y.(e.er) <- !acc /. e.epiv
      done;
      Lu.solve_transpose sb.lu y

let reduced_cost s y j =
  let d = ref s.cost.(j) in
  Array.iter (fun (i, a) -> d := !d -. (y.(i) *. a)) s.cols.(j);
  !d

(* Product-form sweep: w (already B0^-1-applied) through the eta file. *)
let eta_sweep sb w =
  for t = 0 to sb.neta - 1 do
    let e = sb.etas.(t) in
    let wr = w.(e.er) /. e.epiv in
    if Fx.nonzero wr then
      Array.iter (fun (i, wi) -> w.(i) <- w.(i) -. (wi *. wr)) e.entries;
    w.(e.er) <- wr
  done

(* w = B^-1 A_j (basis-position-indexed) *)
let ftran s j w =
  match s.repr with
  | Dense_binv binv ->
      Array.fill w 0 s.m 0.0;
      Array.iter
        (fun (i, a) ->
          if Fx.nonzero a then
            for r = 0 to s.m - 1 do
              Array.unsafe_set w r
                (Array.unsafe_get w r
                +. (Array.unsafe_get binv ((r * s.m) + i) *. a))
            done)
        s.cols.(j)
  | Sparse_lu sb ->
      Array.fill w 0 s.m 0.0;
      Array.iter (fun (i, a) -> w.(i) <- w.(i) +. a) s.cols.(j);
      Lu.solve sb.lu w;
      eta_sweep sb w

(* Row [r] (a basis position) of B^-1, row-indexed: a unit btran. *)
let btran_unit s r rho =
  match s.repr with
  | Dense_binv binv ->
      for j = 0 to s.m - 1 do
        rho.(j) <- binv.((r * s.m) + j)
      done
  | Sparse_lu sb ->
      Array.fill rho 0 s.m 0.0;
      rho.(r) <- 1.0;
      for t = sb.neta - 1 downto 0 do
        let e = sb.etas.(t) in
        let acc = ref rho.(e.er) in
        Array.iter (fun (i, w) -> acc := !acc -. (w *. rho.(i))) e.entries;
        rho.(e.er) <- !acc /. e.epiv
      done;
      Lu.solve_transpose sb.lu rho

(* Raised (and contained inside this module) when a refactorization finds
   the current basis numerically singular. *)
exception Singular_basis

let refactor s sb =
  match Lu.factor ~m:s.m ~cols:s.cols ~basis:s.basis with
  | lu ->
      sb.lu <- lu;
      sb.neta <- 0;
      sb.eta_nnz <- 0;
      s.stats.refactorizations <- s.stats.refactorizations + 1;
      Runtime.Trace.incr tr_refactorizations
  | exception Lu.Singular _ -> raise Singular_basis

let push_eta sb e =
  if sb.neta >= Array.length sb.etas then begin
    let bigger = Array.make (max 16 (2 * sb.neta)) e in
    Array.blit sb.etas 0 bigger 0 sb.neta;
    sb.etas <- bigger
  end;
  sb.etas.(sb.neta) <- e;
  sb.neta <- sb.neta + 1;
  sb.eta_nnz <- sb.eta_nnz + Array.length e.entries + 1

(* Install the basis change at position [r] ([s.basis] already updated),
   where [w] = B_old^-1 A_enter. *)
let update_basis s r w =
  s.stats.pivots <- s.stats.pivots + 1;
  Runtime.Trace.incr tr_pivots;
  match s.repr with
  | Dense_binv binv ->
      let piv = w.(r) in
      let rbase = r * s.m in
      for j = 0 to s.m - 1 do
        Array.unsafe_set binv (rbase + j)
          (Array.unsafe_get binv (rbase + j) /. piv)
      done;
      for i = 0 to s.m - 1 do
        let f = Array.unsafe_get w i in
        if i <> r && abs_float f > 1e-13 then begin
          let ibase = i * s.m in
          for j = 0 to s.m - 1 do
            Array.unsafe_set binv (ibase + j)
              (Array.unsafe_get binv (ibase + j)
              -. (f *. Array.unsafe_get binv (rbase + j)))
          done
        end
      done
  | Sparse_lu sb ->
      let maxw = ref 0.0 in
      let count = ref 0 in
      for i = 0 to s.m - 1 do
        let a = abs_float w.(i) in
        if a > !maxw then maxw := a;
        if i <> r && a > 1e-13 then incr count
      done;
      if
        abs_float w.(r) < 1e-7 *. !maxw
        || sb.neta >= max_etas
        || sb.eta_nnz > (eta_fill_factor * Lu.nnz sb.lu) + (4 * s.m)
      then refactor s sb
      else begin
        let entries = Array.make !count (0, 0.0) in
        let k = ref 0 in
        for i = 0 to s.m - 1 do
          if i <> r && abs_float w.(i) > 1e-13 then begin
            entries.(!k) <- (i, w.(i));
            incr k
          end
        done;
        push_eta sb { er = r; epiv = w.(r); entries };
        s.stats.etas_pushed <- s.stats.etas_pushed + 1;
        if sb.neta > s.stats.max_eta_len then s.stats.max_eta_len <- sb.neta;
        Runtime.Trace.incr tr_etas
      end

(* Entering-variable direction: +1 when it will increase from its current
   value, -1 when it will decrease. *)
let entering_direction s j d =
  let v = s.value.(j) in
  let at_lb = v <= s.lb.(j) +. tol in
  let at_ub = v >= s.ub.(j) -. tol in
  if at_lb && d < -.tol then Some 1
  else if at_ub && d > tol then Some (-1)
  else if (not at_lb) && (not at_ub) && abs_float d > tol then
    Some (if d < 0.0 then 1 else -1)
  else None

exception Found of int * int  (* var, direction *)

let price s y ~bland =
  try
    if bland then
      for j = 0 to s.total - 1 do
        if s.in_basis.(j) < 0 && s.lb.(j) < s.ub.(j) then begin
          let d = reduced_cost s y j in
          match entering_direction s j d with
          | Some dir -> raise (Found (j, dir))
          | None -> ()
        end
      done
    else begin
      let best = ref (-1) and best_dir = ref 0 and best_score = ref tol in
      for j = 0 to s.total - 1 do
        if s.in_basis.(j) < 0 && s.lb.(j) < s.ub.(j) then begin
          let d = reduced_cost s y j in
          match entering_direction s j d with
          | Some dir ->
              if abs_float d > !best_score then begin
                best := j;
                best_dir := dir;
                best_score := abs_float d
              end
          | None -> ()
        end
      done;
      if !best >= 0 then raise (Found (!best, !best_dir))
    end;
    None
  with Found (j, dir) -> Some (j, dir)

(* One phase of the primal simplex; returns final status. *)
let run_phase s ~max_iters =
  let y = Array.make s.m 0.0 in
  let w = Array.make s.m 0.0 in
  let stall = ref 0 in
  let last_obj = ref infinity in
  let rec loop () =
    if s.iters >= max_iters then Iter_limit
    else begin
      s.iters <- s.iters + 1;
      s.stats.iterations <- s.stats.iterations + 1;
      Runtime.Trace.incr tr_iterations;
      compute_duals s y;
      let bland = !stall > 200 in
      match price s y ~bland with
      | None -> Optimal
      | Some (enter, dir) ->
          ftran s enter w;
          let fdir = float_of_int dir in
          (* Ratio test: smallest step that hits a bound. *)
          let t_limit = ref infinity and leave = ref (-1) in
          (* entering variable's own opposite bound *)
          let own_span = s.ub.(enter) -. s.lb.(enter) in
          if own_span < !t_limit then begin
            t_limit := own_span;
            leave := -2 (* bound flip *)
          end;
          for i = 0 to s.m - 1 do
            let rate = -.fdir *. w.(i) in
            if rate > pivot_tol then begin
              let room = s.ub.(s.basis.(i)) -. s.value.(s.basis.(i)) in
              let t = max 0.0 (room /. rate) in
              if t < !t_limit -. 1e-12
                 || (t < !t_limit +. 1e-12 && !leave >= 0
                     && s.basis.(i) < s.basis.(!leave))
              then begin
                t_limit := t;
                leave := i
              end
            end
            else if rate < -.pivot_tol then begin
              let room = s.value.(s.basis.(i)) -. s.lb.(s.basis.(i)) in
              let t = max 0.0 (room /. -.rate) in
              if t < !t_limit -. 1e-12
                 || (t < !t_limit +. 1e-12 && !leave >= 0
                     && s.basis.(i) < s.basis.(!leave))
              then begin
                t_limit := t;
                leave := i
              end
            end
          done;
          if Fx.is_inf !t_limit then Unbounded
          else begin
            let t = !t_limit in
            (* apply the step *)
            s.value.(enter) <- s.value.(enter) +. (fdir *. t);
            if t > 0.0 then
              for i = 0 to s.m - 1 do
                let b = s.basis.(i) in
                s.value.(b) <- s.value.(b) -. (fdir *. t *. w.(i))
              done;
            (* stall detection for Bland's rule *)
            let obj =
              let acc = ref 0.0 in
              for j = 0 to s.total - 1 do
                if Fx.nonzero s.cost.(j) then acc := !acc +. (s.cost.(j) *. s.value.(j))
              done;
              !acc
            in
            if obj < !last_obj -. 1e-10 then begin
              last_obj := obj;
              stall := 0
            end
            else incr stall;
            (match !leave with
            | -2 -> () (* bound flip: no basis change *)
            | r -> (
                let leaving = s.basis.(r) in
                (* snap the leaving variable onto the bound it hit *)
                let rate = -.fdir *. w.(r) in
                s.value.(leaving) <-
                  (if rate > 0.0 then s.ub.(leaving) else s.lb.(leaving));
                s.in_basis.(leaving) <- -1;
                s.basis.(r) <- enter;
                s.in_basis.(enter) <- r;
                try update_basis s r w
                with Singular_basis ->
                  (* The pivot made the basis numerically singular (e.g. a
                     column emptied by drop-tolerance deletions).  Undo the
                     swap — the primal values stay consistent, the entering
                     variable just rests between its bounds — and rebuild
                     the previous basis, which was factorizable.  If even
                     that fails, the outer handler returns Iter_limit. *)
                  s.basis.(r) <- leaving;
                  s.in_basis.(leaving) <- r;
                  s.in_basis.(enter) <- -1;
                  (match s.repr with
                  | Sparse_lu sb -> refactor s sb
                  | Dense_binv _ -> ())));
            loop ()
          end
    end
  in
  (* Never let a singular-basis failure escape the public [solve] API:
     if recovery in the pivot loop also fails, report Iter_limit — the
     iterate is a valid (if unconverged) primal point, and callers
     already treat Iter_limit as "not proven". *)
  try loop () with Singular_basis -> Iter_limit

(* --- State construction --- *)

let default_iters m n = 2000 + (60 * (m + n))

(* Build the canonical state for [p]: sparse columns for structurals,
   slacks and phase-1 artificials, bound arrays (with optional per-var
   overrides, used by warm node re-solves so the shared problem is never
   mutated), nonbasic values at bounds, and the all-artificial starting
   basis.  [bounds] entries are (var, lb, ub) with var < nvars. *)
let make_state ?(bounds = []) ~basis ?stats (p : Problem.t) =
  let m = Problem.nrows p in
  let n = Problem.nvars p in
  let rows = Problem.rows p in
  let total = n + m + m in
  (* columns *)
  let cols = Array.make total [||] in
  let tmp = Array.make m [] in
  Array.iteri
    (fun i (r : Problem.row) ->
      Array.iter (fun (v, c) -> tmp.(i) <- (v, c) :: tmp.(i)) r.Problem.coeffs)
    rows;
  let per_var = Array.make n [] in
  Array.iteri
    (fun i entries ->
      List.iter (fun (v, c) -> per_var.(v) <- (i, c) :: per_var.(v)) entries)
    tmp;
  for v = 0 to n - 1 do
    cols.(v) <- Array.of_list per_var.(v)
  done;
  for i = 0 to m - 1 do
    cols.(n + i) <- [| (i, 1.0) |]  (* slack *)
  done;
  (* bounds *)
  let lb = Array.make total 0.0 and ub = Array.make total 0.0 in
  for v = 0 to n - 1 do
    lb.(v) <- (Problem.var p v).Problem.lb;
    ub.(v) <- (Problem.var p v).Problem.ub
  done;
  List.iter
    (fun (v, l, u) ->
      lb.(v) <- l;
      ub.(v) <- u)
    bounds;
  Array.iteri
    (fun i (r : Problem.row) ->
      match r.Problem.sense with
      | Problem.Le ->
          lb.(n + i) <- 0.0;
          ub.(n + i) <- infinity
      | Problem.Ge ->
          lb.(n + i) <- neg_infinity;
          ub.(n + i) <- 0.0
      | Problem.Eq ->
          lb.(n + i) <- 0.0;
          ub.(n + i) <- 0.0)
    rows;
  (* initial nonbasic values *)
  let value = Array.make total 0.0 in
  for j = 0 to n + m - 1 do
    value.(j) <-
      (if lb.(j) > neg_infinity then lb.(j)
       else if ub.(j) < infinity then ub.(j)
       else 0.0)
  done;
  (* residuals and artificials *)
  let resid = Array.make m 0.0 in
  Array.iteri (fun i (r : Problem.row) -> resid.(i) <- r.Problem.rhs) rows;
  for j = 0 to n + m - 1 do
    if Fx.nonzero value.(j) then
      Array.iter (fun (i, c) -> resid.(i) <- resid.(i) -. (c *. value.(j))) cols.(j)
  done;
  let bas = Array.make m 0 in
  let in_basis = Array.make total (-1) in
  for i = 0 to m - 1 do
    let a = n + m + i in
    let sigma = if resid.(i) >= 0.0 then 1.0 else -1.0 in
    cols.(a) <- [| (i, sigma) |];
    lb.(a) <- 0.0;
    ub.(a) <- infinity;
    value.(a) <- abs_float resid.(i);
    bas.(i) <- a;
    in_basis.(a) <- i
  done;
  let repr =
    match basis with
    | Dense ->
        let binv = Array.make (m * m) 0.0 in
        for i = 0 to m - 1 do
          binv.((i * m) + i) <- (if resid.(i) >= 0.0 then 1.0 else -1.0)
        done;
        Dense_binv binv
    | Sparse ->
        let lu =
          (* The all-artificial starting basis is a signed diagonal, so
             factorization cannot fail; the handler keeps [Lu.Singular]
             syntactically contained in this module either way. *)
          try Lu.factor ~m ~cols ~basis:bas
          with Lu.Singular _ -> assert false
        in
        Sparse_lu { lu; etas = [||]; neta = 0; eta_nnz = 0 }
  in
  let cost = Array.make total 0.0 in
  let stats = match stats with Some st -> st | None -> create_stats () in
  let s = { m; total; nstruct = n; cols; lb; ub; cost; value; basis = bas;
            in_basis; repr; stats; iters = 0 } in
  let need_phase1 = Array.exists (fun r -> abs_float r > tol) resid in
  (s, need_phase1)

let extract s (p : Problem.t) status =
  let n = s.nstruct in
  let x = Array.sub s.value 0 n in
  let obj = ref 0.0 in
  for v = 0 to n - 1 do
    obj := !obj +. ((Problem.var p v).Problem.obj *. x.(v))
  done;
  let y = Array.make s.m 0.0 in
  for v = 0 to n - 1 do
    s.cost.(v) <- (Problem.var p v).Problem.obj
  done;
  compute_duals s y;
  { status; x; obj = !obj; duals = y; iterations = s.iters }

(* Two-phase primal run over a freshly built state. *)
let solve_state s ~need_phase1 ~max_iters (p : Problem.t) =
  let m = s.m and n = s.nstruct in
  (* Phase 1: minimize the artificial sum. *)
  let phase1_status =
    if not need_phase1 then Optimal
    else begin
      for i = 0 to m - 1 do
        s.cost.(n + m + i) <- 1.0
      done;
      let st = run_phase s ~max_iters in
      for i = 0 to m - 1 do
        s.cost.(n + m + i) <- 0.0
      done;
      st
    end
  in
  let infeasible =
    let art_sum = ref 0.0 in
    for i = 0 to m - 1 do
      art_sum := !art_sum +. s.value.(n + m + i)
    done;
    !art_sum > 1e-6
  in
  match phase1_status with
  | Iter_limit -> extract s p Iter_limit
  | Unbounded | Optimal | Infeasible ->
      if infeasible then extract s p Infeasible
      else begin
        (* Pin artificials to zero for phase 2. *)
        for i = 0 to m - 1 do
          s.ub.(n + m + i) <- 0.0
        done;
        for v = 0 to n - 1 do
          s.cost.(v) <- (Problem.var p v).Problem.obj
        done;
        let st = run_phase s ~max_iters in
        extract s p st
      end

(* --- Public entry points --- *)

let[@bound.source heuristic
     "the result may carry status Iter_limit or Unbounded, whose obj/x are \
      the last iterate, not a proven optimum; only Optimal results are \
      certified"] solve ?(max_iters = 0) ?(basis = Dense) ?stats
    (p : Problem.t) =
  Runtime.Trace.incr tr_solves;
  let m = Problem.nrows p and n = Problem.nvars p in
  let max_iters = if max_iters > 0 then max_iters else default_iters m n in
  let s, need_phase1 = make_state ~basis ?stats p in
  solve_state s ~need_phase1 ~max_iters p

(* --- Dual simplex over a restored basis --- *)

(* After tightening variable bounds on an optimal basis the reduced costs
   are unchanged (still dual feasible) but basic values may fall outside
   the new box.  The bounded-variable dual simplex drives the primal
   infeasibility out while the min-ratio rule keeps the duals feasible —
   the textbook warm start for branch-and-bound child nodes.  Returns
   [Optimal] when no primal infeasibility remains (callers run a primal
   cleanup phase to certify), [Infeasible] when a row proves the bound
   box empty (a sign-pattern argument independent of dual feasibility),
   [Iter_limit] otherwise. *)
let run_dual s ~max_iters =
  let y = Array.make s.m 0.0 in
  let rho = Array.make s.m 0.0 in
  let w = Array.make s.m 0.0 in
  let rec loop () =
    if s.iters >= max_iters then Iter_limit
    else begin
      (* leaving row: most-infeasible basic variable (fixed scan order,
         strict improvement — deterministic) *)
      let r = ref (-1) and viol = ref tol and sigma = ref 0.0 in
      for i = 0 to s.m - 1 do
        let b = s.basis.(i) in
        let v = s.value.(b) in
        let below = s.lb.(b) -. v and above = v -. s.ub.(b) in
        if below > !viol then begin
          viol := below;
          r := i;
          sigma := -1.0
        end;
        if above > !viol then begin
          viol := above;
          r := i;
          sigma := 1.0
        end
      done;
      if !r < 0 then Optimal
      else begin
        s.iters <- s.iters + 1;
        s.stats.dual_iterations <- s.stats.dual_iterations + 1;
        Runtime.Trace.incr tr_dual_iterations;
        let r = !r and sigma = !sigma in
        compute_duals s y;
        btran_unit s r rho;
        (* Dual ratio test.  A nonbasic [j] moving inward in direction
           [delta] changes the leaving basic by [-alpha*delta] per unit;
           eligibility needs that movement toward feasibility, i.e.
           [sigma*alpha*delta > 0].  Among eligible candidates the
           smallest ratio |d_j|/|alpha_j| keeps the duals feasible. *)
        let best = ref (-1)
        and best_dir = ref 0.0
        and best_adir = ref 0.0
        and best_ratio = ref infinity in
        for j = 0 to s.total - 1 do
          if s.in_basis.(j) < 0 && s.lb.(j) < s.ub.(j) then begin
            let alpha = ref 0.0 in
            Array.iter
              (fun (i, a) -> alpha := !alpha +. (rho.(i) *. a))
              s.cols.(j);
            let alpha = !alpha in
            if abs_float alpha > pivot_tol then begin
              let v = s.value.(j) in
              let at_lb = v <= s.lb.(j) +. tol in
              let at_ub = v >= s.ub.(j) -. tol in
              let d = reduced_cost s y j in
              let try_dir delta =
                let adir = alpha *. delta in
                if sigma *. adir > pivot_tol then begin
                  let dbar = max 0.0 (delta *. d) in
                  let ratio = dbar /. abs_float alpha in
                  if
                    ratio < !best_ratio -. 1e-12
                    || (ratio < !best_ratio +. 1e-12 && !best >= 0 && j < !best)
                  then begin
                    best := j;
                    best_dir := delta;
                    best_adir := adir;
                    best_ratio := ratio
                  end
                end
              in
              (* from its lower bound a nonbasic can only rise, from its
                 upper only fall; a free/interior nonbasic may do either *)
              if at_lb then try_dir 1.0
              else if at_ub then try_dir (-1.0)
              else begin
                try_dir 1.0;
                try_dir (-1.0)
              end
            end
          end
        done;
        if !best < 0 then Infeasible
        else begin
          let b_r = s.basis.(r) in
          let target = if sigma > 0.0 then s.ub.(b_r) else s.lb.(b_r) in
          let delta_b = s.value.(b_r) -. target in
          let t = delta_b /. !best_adir in
          let enter = !best and dir = !best_dir in
          let span = s.ub.(enter) -. s.lb.(enter) in
          if t > span +. tol then begin
            (* the entering candidate hits its opposite bound first: a
               bound flip — no basis change, infeasibility shrinks by
               |alpha|*span, loop again *)
            ftran s enter w;
            s.value.(enter) <- (if dir > 0.0 then s.ub.(enter) else s.lb.(enter));
            for i = 0 to s.m - 1 do
              let b = s.basis.(i) in
              s.value.(b) <- s.value.(b) -. (dir *. span *. w.(i))
            done;
            loop ()
          end
          else begin
            ftran s enter w;
            if abs_float w.(r) <= pivot_tol then begin
              (* the eta-updated column disagrees with the btran row:
                 numerically stale representation — rebuild and retry
                 (the refactorization counter bounds how often) *)
              match s.repr with
              | Sparse_lu sb ->
                  refactor s sb;
                  loop ()
              | Dense_binv _ -> Iter_limit
            end
            else begin
              let t = delta_b /. (w.(r) *. dir) in
              s.value.(enter) <- s.value.(enter) +. (dir *. t);
              for i = 0 to s.m - 1 do
                if i <> r then begin
                  let b = s.basis.(i) in
                  s.value.(b) <- s.value.(b) -. (dir *. t *. w.(i))
                end
              done;
              s.value.(b_r) <- target;
              s.in_basis.(b_r) <- -1;
              s.basis.(r) <- enter;
              s.in_basis.(enter) <- r;
              (try update_basis s r w
               with Singular_basis ->
                 (* mirror the primal recovery: undo the swap, rebuild *)
                 s.basis.(r) <- b_r;
                 s.in_basis.(b_r) <- r;
                 s.in_basis.(enter) <- -1;
                 (match s.repr with
                 | Sparse_lu sb -> refactor s sb
                 | Dense_binv _ -> ()));
              loop ()
            end
          end
        end
      end
    end
  in
  try loop () with Singular_basis -> Iter_limit

(* --- Basis snapshots and warm sessions --- *)

module Basis = struct
  (* A snapshot is the basis assignment, the rest position of every
     nonbasic (lower vs upper bound), and a frozen reference to the LU +
     eta representation that was valid for that basis.  The factor and
     eta entries are immutable, so snapshots share them structurally:
     restoring costs a few array copies, not a refactorization. *)
  type frozen = {
    flu : Lu.t;
    fetas : eta array;  (* only the first [fneta] entries belong to us *)
    fneta : int;
    feta_nnz : int;
  }

  type t = {
    sbasis : int array;
    at_upper : bool array;  (* indexed by variable, length [total] *)
    frozen : frozen option;
  }
end

type session = {
  sess_p : Problem.t;
  sess_stats : kernel_stats;
  mutable sess_state : state option;  (* built on first solve *)
}

let new_session ?stats (p : Problem.t) =
  let stats = match stats with Some st -> st | None -> create_stats () in
  { sess_p = p; sess_stats = stats; sess_state = None }

(* Cold solve: fresh state (warm machinery is sparse-only), full two-phase
   primal run.  Leaves the state in the session for [save_basis]. *)
let[@bound.source heuristic
     "like [solve], the result may carry an Iter_limit/Unbounded status \
      whose obj/x are an unproven last iterate"] session_solve
    ?(max_iters = 0) ?(bounds = []) sess =
  Runtime.Trace.incr tr_solves;
  let p = sess.sess_p in
  let m = Problem.nrows p and n = Problem.nvars p in
  let max_iters = if max_iters > 0 then max_iters else default_iters m n in
  let s, need_phase1 =
    make_state ~bounds ~basis:Sparse ~stats:sess.sess_stats p
  in
  sess.sess_state <- Some s;
  solve_state s ~need_phase1 ~max_iters p

let save_basis sess =
  match sess.sess_state with
  | None -> None
  | Some s ->
      let at_upper = Array.make s.total false in
      for j = 0 to s.total - 1 do
        if s.in_basis.(j) < 0 && s.ub.(j) < infinity then
          (* nonbasic rest position: nearer bound wins (free vars rest
             at zero and reload as lower) *)
          at_upper.(j) <-
            s.value.(j) -. s.lb.(j) > s.ub.(j) -. s.value.(j)
      done;
      let frozen =
        match s.repr with
        | Sparse_lu sb ->
            Some
              {
                Basis.flu = sb.lu;
                fetas = Array.sub sb.etas 0 sb.neta;
                fneta = sb.neta;
                feta_nnz = sb.eta_nnz;
              }
        | Dense_binv _ -> None
      in
      Some
        { Basis.sbasis = Array.copy s.basis; at_upper; frozen }

(* Restore a snapshot into the session's state under the problem's
   current bounds plus [bounds] overrides, then re-solve with the dual
   simplex.  Any failure (no frozen factors, numerical trouble, an
   iteration-limited dual run) falls back to a cold primal solve with the
   same bound overrides, so the result is always trustworthy. *)
let[@bound.source heuristic
     "warm dual re-solves stall at Iter_limit like cold ones; the primal \
      cleanup certifies only the Optimal outcome"] warm_solve
    ?(max_iters = 0) ?(bounds = []) sess (snap : Basis.t) =
  let p = sess.sess_p in
  let m = Problem.nrows p and n = Problem.nvars p in
  let max_iters = if max_iters > 0 then max_iters else default_iters m n in
  match snap.Basis.frozen with
  | None -> session_solve ~max_iters ~bounds sess
  | Some _ when Array.length snap.Basis.sbasis <> m ->
      (* snapshot taken before the problem gained rows (e.g. cuts):
         its basis no longer matches the constraint matrix *)
      session_solve ~max_iters ~bounds sess
  | Some fz ->
      Runtime.Trace.incr tr_solves;
      let s =
        match sess.sess_state with
        | Some s when s.m = m && s.nstruct = n -> s
        | _ ->
            let s, _ = make_state ~basis:Sparse ~stats:sess.sess_stats p in
            sess.sess_state <- Some s;
            s
      in
      (* bounds: problem base + overrides; artificials pinned at zero *)
      for v = 0 to n - 1 do
        s.lb.(v) <- (Problem.var p v).Problem.lb;
        s.ub.(v) <- (Problem.var p v).Problem.ub
      done;
      List.iter
        (fun (v, l, u) ->
          s.lb.(v) <- l;
          s.ub.(v) <- u)
        bounds;
      let rows = Problem.rows p in
      Array.iteri
        (fun i (r : Problem.row) ->
          match r.Problem.sense with
          | Problem.Le ->
              s.lb.(n + i) <- 0.0;
              s.ub.(n + i) <- infinity
          | Problem.Ge ->
              s.lb.(n + i) <- neg_infinity;
              s.ub.(n + i) <- 0.0
          | Problem.Eq ->
              s.lb.(n + i) <- 0.0;
              s.ub.(n + i) <- 0.0)
        rows;
      for i = 0 to m - 1 do
        s.lb.(n + m + i) <- 0.0;
        s.ub.(n + m + i) <- 0.0
      done;
      (* install the snapshot basis and rest positions *)
      Array.blit snap.Basis.sbasis 0 s.basis 0 m;
      Array.fill s.in_basis 0 s.total (-1);
      for i = 0 to m - 1 do
        s.in_basis.(s.basis.(i)) <- i
      done;
      for j = 0 to s.total - 1 do
        if s.in_basis.(j) < 0 then
          s.value.(j) <-
            (if snap.Basis.at_upper.(j) && s.ub.(j) < infinity then s.ub.(j)
             else if s.lb.(j) > neg_infinity then s.lb.(j)
             else if s.ub.(j) < infinity then s.ub.(j)
             else 0.0)
      done;
      (* shared factors, private scratch and a private eta prefix *)
      (match s.repr with
      | Sparse_lu sb ->
          sb.lu <- Lu.with_fresh_scratch fz.Basis.flu;
          sb.etas <- Array.sub fz.Basis.fetas 0 fz.Basis.fneta;
          sb.neta <- fz.Basis.fneta;
          sb.eta_nnz <- fz.Basis.feta_nnz
      | Dense_binv _ -> assert false);
      (* basic values: x_B = B^-1 (b - N x_N) *)
      let resid = Array.make m 0.0 in
      Array.iteri (fun i (r : Problem.row) -> resid.(i) <- r.Problem.rhs) rows;
      for j = 0 to s.total - 1 do
        if s.in_basis.(j) < 0 && Fx.nonzero s.value.(j) then
          Array.iter
            (fun (i, c) -> resid.(i) <- resid.(i) -. (c *. s.value.(j)))
            s.cols.(j)
      done;
      (match s.repr with
      | Sparse_lu sb ->
          Lu.solve sb.lu resid;
          eta_sweep sb resid
      | Dense_binv _ -> assert false);
      for i = 0 to m - 1 do
        s.value.(s.basis.(i)) <- resid.(i)
      done;
      (* phase-2 costs *)
      Array.fill s.cost 0 s.total 0.0;
      for v = 0 to n - 1 do
        s.cost.(v) <- (Problem.var p v).Problem.obj
      done;
      s.iters <- 0;
      s.stats.warm_resolves <- s.stats.warm_resolves + 1;
      Runtime.Trace.incr tr_warm_resolves;
      match run_dual s ~max_iters with
      | Optimal ->
          (* primal cleanup certifies optimality (usually zero pivots) *)
          let st = run_phase s ~max_iters in
          extract s p st
      | Infeasible ->
          (* the sign-pattern infeasibility proof can be spoiled by
             drop-tolerance zeros; confirm with a cold solve before
             letting a search prune on it *)
          session_solve ~max_iters ~bounds sess
      | Iter_limit | Unbounded -> session_solve ~max_iters ~bounds sess
