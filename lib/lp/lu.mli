(** Sparse LU factorization of a simplex basis, with Markowitz pivoting.

    [factor] eliminates the m x m basis matrix whose k-th column is the
    constraint column of the variable in basis position k, choosing at
    each step the pivot that minimizes the Markowitz fill-in estimate
    [(r_i - 1) * (c_j - 1)] among entries passing a relative stability
    threshold.  The factors are stored sparsely; [solve]/[solve_transpose]
    run in time proportional to the factor nonzeros, not m^2.

    Vector index conventions (matching {!Simplex}): right-hand sides of
    [B w = a] are row-indexed and solutions are basis-position-indexed;
    [solve_transpose] maps a basis-position-indexed cost vector to
    row-indexed duals. *)

type t

(** Raised when the basis matrix is (numerically) singular; carries the
    elimination step that found no admissible pivot. *)
exception Singular of int

(** [factor ~m ~cols ~basis] factors the matrix whose column [k] is
    [cols.(basis.(k))] (sparse (row, coeff) pairs). *)
val factor : m:int -> cols:(int * float) array array -> basis:int array -> t

(** Nonzeros stored in L and U (a proxy for factor quality, used by the
    refactorization trigger). *)
val nnz : t -> int

(** An alias of [t] sharing the (immutable) factor arrays but carrying a
    private solve scratch, so two domains can run [solve] on the same
    factorization concurrently.  Used by {!Simplex}'s basis snapshots,
    which share a parent factorization across search workers. *)
val with_fresh_scratch : t -> t

(** [solve t b] overwrites the row-indexed [b] with the
    basis-position-indexed solution of [B w = b]. *)
val solve : t -> float array -> unit

(** [solve_transpose t c] overwrites the basis-position-indexed [c]
    (cost of the variable in each basis position) with the row-indexed
    solution of [B' y = c]. *)
val solve_transpose : t -> float array -> unit
