type kind = Sparse | Dense

type stats = {
  kernel : Simplex.kernel_stats;
  presolve : Presolve.stats;
  mutable lp_solves : int;
}

let create_stats () =
  {
    kernel = Simplex.create_stats ();
    presolve = Presolve.create_stats ();
    lp_solves = 0;
  }

type t = { kind : kind; presolve : bool; stats : stats option }

let create ?(kind = Sparse) ?(presolve = true) ?stats () =
  { kind; presolve; stats }

let default = create ()
let dense_reference = create ~kind:Dense ~presolve:false ()

let kind_of_string = function
  | "sparse" -> Some Sparse
  | "dense" -> Some Dense
  | _ -> None

let kind_to_string = function Sparse -> "sparse" | Dense -> "dense"

let basis_of_kind = function
  | Sparse -> Simplex.Sparse
  | Dense -> Simplex.Dense

let kernel_stats t = Option.map (fun s -> s.kernel) t.stats

let solve ?max_iters t (p : Problem.t) =
  Option.iter (fun s -> s.lp_solves <- s.lp_solves + 1) t.stats;
  let basis = basis_of_kind t.kind in
  let run_direct () =
    Simplex.solve ?max_iters ~basis ?stats:(kernel_stats t) p
  in
  if not t.presolve then run_direct ()
  else
    let pstats = Option.map (fun (s : stats) -> s.presolve) t.stats in
    match Presolve.run ?stats:pstats p with
    | Presolve.Proved_infeasible _ ->
        {
          Simplex.status = Simplex.Infeasible;
          x = Array.make (Problem.nvars p) 0.;
          obj = 0.;
          duals = Array.make (Problem.nrows p) 0.;
          iterations = 0;
        }
    | Presolve.Feasible map ->
        let r =
          Simplex.solve ?max_iters ~basis ?stats:(kernel_stats t) map.reduced
        in
        (* Lift the kernel's iterate back to the original space for every
           status: restore is status-agnostic, and a non-Optimal result
           (notably Iter_limit) must carry the real partial solution and
           its real objective, not a fabricated zero vector — callers
           like {!Branch_bound} would mistake all-zeros for an integral
           point and 0 for a bound. *)
        let x = Presolve.restore_x map r.Simplex.x in
        let duals = Presolve.restore_duals map r.Simplex.duals in
        (* Recompute c'x in the original space: the reduced problem
           carries fixed-variable contributions as an offset, which
           the kernel's [obj] excludes. *)
        let obj = ref 0. in
        Array.iteri
          (fun v xv -> obj := !obj +. ((Problem.var p v).Problem.obj *. xv))
          x;
        { r with Simplex.x; duals; obj = !obj }
