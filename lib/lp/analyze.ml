(* Model-level static analysis and post-solve certification.

   Layer 2 of cophy-lint (DESIGN.md §9): [check] flags malformed or
   numerically hazardous [Problem.t] models before a solve; [certify]
   validates a solver's incumbent against rows/bounds/integrality within
   tolerance and reports primal/dual residuals.  Both are deterministic
   (row order, then variable order) and allocation-light so they can run
   inside branch-and-bound incumbent acceptance in debug mode. *)

module Fx = Runtime.Fx

type severity = Error | Warning | Info

type issue = {
  severity : severity;
  code : string;
  where : string;
  message : string;
}

let has_errors issues = List.exists (fun i -> i.severity = Error) issues
let errors issues = List.filter (fun i -> i.severity = Error) issues

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let pp_issue ppf i =
  Fmt.pf ppf "%s[%s]%s%s: %s" (severity_name i.severity) i.code
    (if String.equal i.where "" then "" else " ")
    i.where i.message

(* Order-independent signature of a row's left-hand side + sense, for
   duplicate detection.  Coefficients print with full precision so only
   exactly-identical rows collide. *)
let row_signature (r : Problem.row) =
  let buf = Buffer.create 64 in
  Buffer.add_string buf
    (match r.Problem.sense with
    | Problem.Le -> "L;"
    | Problem.Ge -> "G;"
    | Problem.Eq -> "E;");
  Array.iter
    (fun (v, c) -> Buffer.add_string buf (Printf.sprintf "%d:%.17g;" v c))
    r.Problem.coeffs;
  Buffer.contents buf

let check (p : Problem.t) =
  let issues = ref [] in
  let add severity code where message =
    issues := { severity; code; where; message } :: !issues
  in
  let nvars = Problem.nvars p in
  let rows = Problem.rows p in
  let used = Array.make (max 1 nvars) false in
  let cmin = ref infinity and cmax = ref 0.0 in
  let seen : (string, int * float) Hashtbl.t =
    Hashtbl.create (Array.length rows)
  in
  (* --- rows, in id order --- *)
  Array.iteri
    (fun i (r : Problem.row) ->
      let rname = r.Problem.rname in
      if Float.is_nan r.Problem.rhs then
        add Error "nan-rhs" rname "right-hand side is NaN";
      let row_min = ref infinity and row_max = ref 0.0 in
      Array.iter
        (fun (v, c) ->
          used.(v) <- true;
          if Float.is_nan c then
            add Error "nan-coeff" rname
              (Printf.sprintf "coefficient of %s is NaN"
                 (Problem.var p v).Problem.vname)
          else if Fx.is_inf (abs_float c) then
            add Error "inf-coeff" rname
              (Printf.sprintf "coefficient of %s is infinite"
                 (Problem.var p v).Problem.vname)
          else begin
            let a = abs_float c in
            if a < !row_min then row_min := a;
            if a > !row_max then row_max := a;
            if a < !cmin then cmin := a;
            if a > !cmax then cmax := a
          end)
        r.Problem.coeffs;
      if Array.length r.Problem.coeffs = 0 then begin
        (* All-zero / empty left-hand side: either trivially redundant or
           trivially infeasible, depending on the rhs. *)
        let zero_ok =
          match r.Problem.sense with
          | Problem.Le -> r.Problem.rhs >= -1e-12
          | Problem.Ge -> r.Problem.rhs <= 1e-12
          | Problem.Eq -> Fx.approx ~tol:1e-12 r.Problem.rhs 0.0
        in
        if zero_ok then
          add Info "empty-row" rname
            "row has no nonzero coefficients (redundant)"
        else
          add Error "empty-row-infeasible" rname
            (Printf.sprintf
               "row has no nonzero coefficients but requires %s %g"
               (match r.Problem.sense with
               | Problem.Le -> "0 <="
               | Problem.Ge -> "0 >="
               | Problem.Eq -> "0 =")
               r.Problem.rhs)
      end
      else begin
        if !row_max /. !row_min > 1e10 then
          add Warning "row-scaling" rname
            (Printf.sprintf
               "coefficient magnitudes span %.2g .. %.2g (ratio %.1e); \
                consider rescaling"
               !row_min !row_max
               (!row_max /. !row_min));
        let sig_ = row_signature r in
        match Hashtbl.find_opt seen sig_ with
        | None -> Hashtbl.replace seen sig_ (i, r.Problem.rhs)
        | Some (j, rhs0) ->
            let other = rows.(j).Problem.rname in
            if
              r.Problem.sense = Problem.Eq
              && not (Fx.approx_rel ~tol:1e-12 rhs0 r.Problem.rhs)
            then
              add Error "duplicate-eq-conflict" rname
                (Printf.sprintf
                   "identical equality left-hand side as %s but rhs %g <> %g \
                    (infeasible)"
                   other r.Problem.rhs rhs0)
            else
              add Info "duplicate-row" rname
                (Printf.sprintf "duplicates %s (redundant)" other)
      end)
    rows;
  (* --- variables, in id order --- *)
  for v = 0 to nvars - 1 do
    let var = Problem.var p v in
    let vname = var.Problem.vname in
    if Float.is_nan var.Problem.lb || Float.is_nan var.Problem.ub then
      add Error "nan-bound" vname "variable bound is NaN";
    if Float.is_nan var.Problem.obj then
      add Error "nan-obj" vname "objective coefficient is NaN";
    if var.Problem.lb > var.Problem.ub then
      add Error "bound-conflict" vname
        (Printf.sprintf "lb %g > ub %g" var.Problem.lb var.Problem.ub);
    (match var.Problem.kind with
    | Problem.Binary | Problem.Integer ->
        let frac b = Fx.is_finite b && Fx.nonzero (b -. Float.round b) in
        if frac var.Problem.lb || frac var.Problem.ub then
          add Info "fractional-int-bound" vname
            (Printf.sprintf
               "integer variable with fractional bounds [%g, %g]"
               var.Problem.lb var.Problem.ub)
    | Problem.Continuous -> ());
    if nvars > 0 && not used.(v) then
      if Fx.is_zero var.Problem.obj then
        add Info "unused-var" vname
          "appears in no row and has zero objective (model bloat)"
      else if
        (var.Problem.obj < 0.0 && Fx.is_inf var.Problem.ub)
        || (var.Problem.obj > 0.0 && Fx.is_neg_inf var.Problem.lb)
      then
        add Warning "dangling-unbounded" vname
          "appears in no row and its objective pushes it to an infinite \
           bound: the LP is unbounded"
      else
        add Info "dangling-var" vname
          "appears in no row; it will simply sit at its cheaper bound"
  done;
  (* --- model-wide scaling diagnostic --- *)
  if !cmax > 0.0 && Fx.is_finite !cmin then begin
    let ratio = !cmax /. !cmin in
    if ratio > 1e10 then
      add Warning "scaling" ""
        (Printf.sprintf
           "constraint coefficients span %.2g .. %.2g (dynamic range \
            %.1e): expect loss of precision in the LU kernel"
           !cmin !cmax ratio)
    else if ratio > 1e6 then
      add Info "scaling" ""
        (Printf.sprintf
           "constraint coefficients span %.2g .. %.2g (dynamic range %.1e)"
           !cmin !cmax ratio)
  end;
  List.rev !issues

(* ------------------------------------------------------------------ *)
(* Post-solve certification                                            *)
(* ------------------------------------------------------------------ *)

type certificate = {
  cert_ok : bool;
  max_row_violation : float;
  max_bound_violation : float;
  max_integrality_violation : float;
  objective_gap : float;
  max_dual_residual : float;
  cert_issues : string list;
}

exception Certification_failed of string

let certify ?(tol = 1e-6) ?(presolve = true) ?duals ?obj ?int_vars
    (p : Problem.t) x =
  let nvars = Problem.nvars p in
  let rows = Problem.rows p in
  let issues = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> issues := s :: !issues) fmt in
  if Array.length x <> nvars then begin
    fail "assignment has %d entries for %d variables" (Array.length x) nvars;
    {
      cert_ok = false;
      max_row_violation = infinity;
      max_bound_violation = infinity;
      max_integrality_violation = infinity;
      objective_gap = infinity;
      max_dual_residual = 0.0;
      cert_issues = List.rev !issues;
    }
  end
  else begin
    (* primal row residuals, scaled by 1 + |rhs| *)
    let max_row = ref 0.0 and worst_row = ref "" in
    Array.iter
      (fun (r : Problem.row) ->
        let lhs =
          Array.fold_left
            (fun acc (v, c) -> acc +. (c *. x.(v)))
            0.0 r.Problem.coeffs
        in
        let viol =
          match r.Problem.sense with
          | Problem.Le -> lhs -. r.Problem.rhs
          | Problem.Ge -> r.Problem.rhs -. lhs
          | Problem.Eq -> abs_float (lhs -. r.Problem.rhs)
        in
        let scaled = viol /. (1.0 +. abs_float r.Problem.rhs) in
        if Float.is_nan lhs then begin
          fail "row %s evaluates to NaN" r.Problem.rname;
          max_row := infinity
        end
        else if scaled > !max_row then begin
          max_row := scaled;
          worst_row := r.Problem.rname
        end)
      rows;
    if !max_row > tol then
      fail "row %s violated by %.3g (scaled)" !worst_row !max_row;
    (* bound violations *)
    let max_bound = ref 0.0 and worst_var = ref "" in
    for v = 0 to nvars - 1 do
      let var = Problem.var p v in
      let viol =
        max (var.Problem.lb -. x.(v)) (x.(v) -. var.Problem.ub)
      in
      let scale =
        1.0
        +. max
             (if Fx.is_finite var.Problem.lb then abs_float var.Problem.lb
              else 0.0)
             (if Fx.is_finite var.Problem.ub then abs_float var.Problem.ub
              else 0.0)
      in
      let scaled = viol /. scale in
      if Float.is_nan x.(v) then begin
        fail "variable %s is NaN" var.Problem.vname;
        max_bound := infinity
      end
      else if scaled > !max_bound then begin
        max_bound := scaled;
        worst_var := var.Problem.vname
      end
    done;
    if !max_bound > tol then
      fail "variable %s outside its bounds by %.3g (scaled)" !worst_var
        !max_bound;
    (* integrality *)
    let int_vars =
      match int_vars with Some vs -> vs | None -> Problem.integer_vars p
    in
    let max_int = ref 0.0 and worst_int = ref "" in
    List.iter
      (fun v ->
        let f = abs_float (x.(v) -. Float.round x.(v)) in
        if f > !max_int then begin
          max_int := f;
          worst_int := (Problem.var p v).Problem.vname
        end)
      int_vars;
    if !max_int > tol then
      fail "integer variable %s is fractional by %.3g" !worst_int !max_int;
    (* objective agreement *)
    let obj_gap =
      match obj with
      | None -> 0.0
      | Some reported ->
          let recomputed = Problem.objective_value p x in
          abs_float (recomputed -. reported)
          /. (1.0 +. abs_float reported)
    in
    if obj_gap > tol then
      fail "reported objective differs from c'x + offset by %.3g (relative)"
        obj_gap;
    (* dual residuals: reduced costs of variables strictly inside their
       bounds should vanish at an LP optimum.  Report-only when the
       solve ran with presolve (duals of presolve-removed rows are
       slack, see Backend.solve); a hard failure when [~presolve:false]
       says every row's dual came straight from the simplex basis. *)
    let max_dual = ref 0.0 in
    (match duals with
    | Some y when Array.length y = Array.length rows ->
        let ay = Array.make (max 1 nvars) 0.0 in
        Array.iteri
          (fun i (r : Problem.row) ->
            if Fx.nonzero y.(i) then
              Array.iter
                (fun (v, c) -> ay.(v) <- ay.(v) +. (y.(i) *. c))
                r.Problem.coeffs)
          rows;
        for v = 0 to nvars - 1 do
          let var = Problem.var p v in
          let interior =
            x.(v) > var.Problem.lb +. tol && x.(v) < var.Problem.ub -. tol
          in
          if interior then begin
            let d = var.Problem.obj -. ay.(v) in
            let scaled = abs_float d /. (1.0 +. abs_float var.Problem.obj) in
            if scaled > !max_dual then max_dual := scaled
          end
        done
    | Some y ->
        fail "dual vector has %d entries for %d rows" (Array.length y)
          (Array.length rows)
    | None -> ());
    if (not presolve) && !max_dual > tol then
      fail
        "dual residual %.3g exceeds tolerance (solve ran without \
         presolve, so no removed-row slack can excuse it)"
        !max_dual;
    {
      cert_ok = !issues = [];
      max_row_violation = !max_row;
      max_bound_violation = !max_bound;
      max_integrality_violation = !max_int;
      objective_gap = obj_gap;
      max_dual_residual = !max_dual;
      cert_issues = List.rev !issues;
    }
  end

let certificate_summary c =
  Printf.sprintf
    "%s (row %.2e, bound %.2e, int %.2e, obj %.2e, dual %.2e)"
    (if c.cert_ok then "certified" else "REJECTED")
    c.max_row_violation c.max_bound_violation c.max_integrality_violation
    c.objective_gap c.max_dual_residual

let pp_certificate ppf c =
  Fmt.pf ppf "@[<v>%s@,%a@]" (certificate_summary c)
    (Fmt.list ~sep:Fmt.cut Fmt.string)
    c.cert_issues
