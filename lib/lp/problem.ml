(* Linear / binary-integer program builder.  Minimization form:

     minimize    c'x
     subject to  a_i x {<=,=,>=} b_i      for each row i
                 l <= x <= u
                 x_j binary / integer for marked variables

   Rows store their coefficients sparsely. *)

module Fx = Runtime.Fx

type var_kind = Continuous | Binary | Integer
type sense = Le | Ge | Eq

type var = {
  mutable obj : float;
  mutable lb : float;
  mutable ub : float;
  kind : var_kind;
  vname : string;
}

type row = {
  coeffs : (int * float) array;  (* sorted by variable id, deduplicated *)
  sense : sense;
  mutable rhs : float;
  rname : string;
}

type t = {
  mutable vars : var array;
  mutable nvars : int;
  mutable rows : row list;      (* reversed during building *)
  mutable nrows : int;
  mutable frozen_rows : row array option;
  mutable obj_offset : float;   (* constant term in the objective *)
}

let create () =
  { vars = [||]; nvars = 0; rows = []; nrows = 0; frozen_rows = None;
    obj_offset = 0.0 }

let nvars t = t.nvars
let nrows t = t.nrows

let grow t =
  let cap = Array.length t.vars in
  if t.nvars >= cap then begin
    let bigger =
      Array.make (max 16 (2 * cap))
        { obj = 0.0; lb = 0.0; ub = 0.0; kind = Continuous; vname = "" }
    in
    Array.blit t.vars 0 bigger 0 t.nvars;
    t.vars <- bigger
  end

let add_var ?(kind = Continuous) ?(lb = 0.0) ?(ub = infinity) ?(obj = 0.0)
    ?(name = "") t =
  let lb, ub = match kind with Binary -> (max lb 0.0, min ub 1.0) | _ -> (lb, ub) in
  if lb > ub then invalid_arg "Problem.add_var: lb > ub";
  grow t;
  let id = t.nvars in
  let vname = if name = "" then Printf.sprintf "x%d" id else name in
  t.vars.(id) <- { obj; lb; ub; kind; vname };
  t.nvars <- id + 1;
  id

let clean_coeffs t coeffs =
  let tbl = Hashtbl.create (List.length coeffs) in
  List.iter
    (fun (v, c) ->
      if v < 0 || v >= t.nvars then invalid_arg "Problem.add_row: bad variable";
      Hashtbl.replace tbl v (c +. Option.value ~default:0.0 (Hashtbl.find_opt tbl v)))
    coeffs;
  (* Sorted extraction keeps the row's coefficient order independent of
     hash order (lint rule L2). *)
  Runtime.Tbl.sorted_bindings tbl
  |> List.filter (fun (_, c) -> abs_float c > 1e-12)
  |> Array.of_list

let add_row ?(name = "") t coeffs sense rhs =
  let coeffs = clean_coeffs t coeffs in
  let id = t.nrows in
  let rname = if name = "" then Printf.sprintf "r%d" id else name in
  t.rows <- { coeffs; sense; rhs; rname } :: t.rows;
  t.nrows <- id + 1;
  t.frozen_rows <- None;
  id

let set_obj t v c =
  if v < 0 || v >= t.nvars then invalid_arg "Problem.set_obj";
  t.vars.(v).obj <- c

let add_obj_offset t c = t.obj_offset <- t.obj_offset +. c
let obj_offset t = t.obj_offset

let set_bounds t v ~lb ~ub =
  if v < 0 || v >= t.nvars then invalid_arg "Problem.set_bounds";
  t.vars.(v).lb <- lb;
  t.vars.(v).ub <- ub

let var t v = t.vars.(v)

let rows t =
  match t.frozen_rows with
  | Some r -> r
  | None ->
      let r = Array.of_list (List.rev t.rows) in
      t.frozen_rows <- Some r;
      r

let row t i = (rows t).(i)
let set_rhs t i rhs = (rows t).(i).rhs <- rhs

let integer_vars t =
  let acc = ref [] in
  for v = t.nvars - 1 downto 0 do
    match t.vars.(v).kind with
    | Binary | Integer -> acc := v :: !acc
    | Continuous -> ()
  done;
  !acc

(* Objective value of an assignment. *)
let objective_value t x =
  let acc = ref t.obj_offset in
  for v = 0 to t.nvars - 1 do
    acc := !acc +. (t.vars.(v).obj *. x.(v))
  done;
  !acc

(* Constraint satisfaction of an assignment, within [tol]. *)
let feasible ?(tol = 1e-6) t x =
  let ok_row (r : row) =
    let lhs = Array.fold_left (fun acc (v, c) -> acc +. (c *. x.(v))) 0.0 r.coeffs in
    match r.sense with
    | Le -> lhs <= r.rhs +. tol
    | Ge -> lhs >= r.rhs -. tol
    | Eq -> abs_float (lhs -. r.rhs) <= tol
  in
  let ok_var v (vr : var) = x.(v) >= vr.lb -. tol && x.(v) <= vr.ub +. tol in
  let rec vars_ok v = v >= t.nvars || (ok_var v t.vars.(v) && vars_ok (v + 1)) in
  vars_ok 0 && Array.for_all ok_row (rows t)

let pp ppf t =
  Fmt.pf ppf "@[<v>minimize ";
  for v = 0 to t.nvars - 1 do
    let c = t.vars.(v).obj in
    if Fx.nonzero c then Fmt.pf ppf "%+g %s " c t.vars.(v).vname
  done;
  Fmt.pf ppf "@ subject to:@ ";
  Array.iter
    (fun (r : row) ->
      Fmt.pf ppf "  %s: " r.rname;
      Array.iter (fun (v, c) -> Fmt.pf ppf "%+g %s " c t.vars.(v).vname) r.coeffs;
      Fmt.pf ppf "%s %g@ "
        (match r.sense with Le -> "<=" | Ge -> ">=" | Eq -> "=")
        r.rhs)
    (rows t);
  Fmt.pf ppf "@]"
