(** INUM — the fast what-if layer (Papadomanolakis, Dash & Ailamaki, VLDB
    2007) rebuilt over this repository's optimizer, with Wii-style lazy
    probing (Wii: skip what-if calls whose outcome is boundable without
    the optimizer).

    A per-query cache of {e template plans}: physical plans whose
    base-table accesses are abstract slots.  A template carries its
    internal-operator cost [beta]; the cost of filling a slot with a
    concrete index is [gamma] (infinite when the index cannot satisfy the
    slot's requirement).  [cost q X = min over templates and atomic
    configurations of beta + sum gamma] — the linearly composable form of
    the paper's Definition 1, which is what turns index tuning into a
    compact BIP (Theorem 1).

    Probing is bound-driven: spec combinations are partially ordered by
    requirement strength, probed neighbors bound unprobed betas from both
    sides, and a combination is probed only while its bound interval
    could still change which template wins.  Combinations certified
    dominated or infeasible are skipped with zero regret; an optional
    probe budget defers the rest, leaving a certified per-query regret
    bound, and deferred probes are forced lazily when (and only when)
    {!cost} / {!best_instantiation} consult a configuration whose best
    instantiation their interval overlaps. *)

type template = {
  beta : float;  (** internal plan cost (joins, sorts, aggregation) *)
  slot_reqs : Optimizer.Plan.slot_req array;
      (** per referenced table, aligned with [tables] *)
  plan : Optimizer.Plan.t;  (** the template plan, with [Slot] leaves *)
}

type t
(** The INUM cache of one query; mutable behind the scenes (deferred
    probes resolve in place). *)

(** Build the cache with the lazy bound-driven probe loop.  Without
    [probe_budget] every combination is probed or certified: the kept
    template set is provably identical to {!build_eager}'s and the
    residual regret is zero.  With [probe_budget] (clamped to >= 1) at
    most that many optimizer probes are spent up front; the rest stay
    deferred with a certified regret bound ({!probe_regret}) and resolve
    lazily on demand. *)
val build : ?probe_budget:int -> Optimizer.Whatif.env -> Sqlast.Ast.query -> t

(** Probe every spec combination eagerly, as the original INUM does — the
    reference implementation the lazy build is tested bit-identical
    against. *)
val build_eager : Optimizer.Whatif.env -> Sqlast.Ast.query -> t

val query : t -> Sqlast.Ast.query
val templates : t -> template list
val template_count : t -> int

(** Structural slot-requirement equality with explicit float semantics
    ({!Runtime.Fx.exactly} on [Nlj_inner] outer rows) — use this instead
    of polymorphic [=], which compares the embedded floats bit-blindly
    (NaN [<>] NaN, [-0. = 0.]). *)
val req_equal : Optimizer.Plan.slot_req -> Optimizer.Plan.slot_req -> bool

(** Tables referenced by the query, in slot order. *)
val tables : t -> string list

(** Optimizer calls spent on this cache so far — build-time probes plus
    any deferred probes forced later. *)
val init_calls : t -> int

(** Spec combinations dropped by the per-query enumeration cap (at most
    [max_combinations = 160] combinations over at most 3 simultaneously
    constrained tables are considered; enumeration visits
    less-constrained combinations first, so the cap sheds the most
    exotic templates).  Nonzero means the template set — eager or lazy —
    is built over a truncated combination space; the count is also
    accumulated in the [inum.combos_truncated] trace counter and
    surfaced by [bench --json] and [cophy_serve] stats, so the cap is a
    modeling choice, never a silent one. *)
val combos_truncated : t -> int

(** Deferred probes still outstanding (zero after an unlimited-budget
    build, or once {!refine} converges everywhere consulted). *)
val pending_probes : t -> int

(** Certified regret bound: the cost surface computed from the kept
    templates sits above the exhaustive INUM surface by at most this
    much, at any configuration.  Zero when nothing is pending. *)
val probe_regret : t -> float

(** [refine t ~config] — force deferred probes whose bound interval
    overlaps the best instantiation under [config], until none does;
    returns the number of probes forced.  Afterwards [cost t config] is
    exact (equal to the exhaustive build's) at this configuration.
    Idempotent; serialized internally. *)
val refine : t -> config:Storage.Config.t -> int

(** [gamma t k ~table index] — the cost of instantiating [table]'s slot in
    template [k] with [index] ([None] = no index).  [None] result encodes
    an infinite coefficient (incompatible requirement).
    @raise Invalid_argument naming the table and query when [table] is
    not referenced by the query. *)
val gamma : t -> int -> table:string -> Storage.Index.t option -> float option

(** INUM's approximation of [cost (q, X)].  Forces overlapping deferred
    probes first ({!refine}), so the result equals the exhaustive
    build's cost at every configuration actually consulted. *)
val cost : t -> Storage.Config.t -> float

(** [(surrogate, regret)] without forcing any deferred probe: the
    exhaustive cost lies in [[surrogate - regret, surrogate]]. *)
val cost_bound : t -> Storage.Config.t -> float * float

(** The (cost, template index, per-table index picks) the minimum is
    attained at — for explain output.  Forces overlapping deferred
    probes first, like {!cost}. *)
val best_instantiation :
  t -> Storage.Config.t -> float * int * Storage.Index.t option array

(** Persistent keyed template store: canonical statement key
    ({!Sqlast.Canon.key}) -> statement cache.  A repeat query — any
    statement whose canonical form was seen before — costs zero optimizer
    probes.  Builds run on the canonical form, so a hit returns a cache
    bit-identical to a fresh {!build} of the normalized query.  Entries
    are the live caches themselves: a hit after a partial (budgeted)
    build returns the same entry with every probe forced so far already
    resolved — a hit can never resurrect stale bounds.  Hits, misses,
    and evictions are mirrored into the [inum.cache_*] trace
    counters. *)
module Keyed : sig
  type store

  (** [create ?capacity ?probe_budget env] — a fresh store.  With
      [capacity], the store keeps at most that many entries, evicting
      least-recently-used first (the access clock is a deterministic
      logical counter).  [probe_budget] is passed to every {!build} the
      store performs.
      @raise Invalid_argument when [capacity < 1] or [probe_budget < 1]. *)
  val create :
    ?capacity:int -> ?probe_budget:int -> Optimizer.Whatif.env -> store

  val env : store -> Optimizer.Whatif.env

  val probe_budget : store -> int option
  (** the per-query budget this store builds with ([None] = unlimited) *)

  val length : store -> int

  val hits : store -> int
  (** statements resolved without an optimizer probe *)

  val misses : store -> int
  (** statements that required a fresh {!build} *)

  val evictions : store -> int

  val hit_rate : store -> float
  (** [hits / (hits + misses)]; [0.] before any lookup *)

  val mem : store -> Sqlast.Ast.query -> bool

  (** [find_or_build s q] — the cached template set for [q]'s canonical
      key, building (and caching) it on a miss. *)
  val find_or_build : store -> Sqlast.Ast.query -> t

  (** Explicitly drop [q]'s entry; [false] when absent. *)
  val evict : store -> Sqlast.Ast.query -> bool
end

(** Caches for a whole workload: SELECTs and update query shells, plus the
    update statements for maintenance costing.  [fresh] lists the caches
    built by this value's deltas (statements resolved from a keyed store
    contribute no entry — and zero probes). *)
type workload_cache = {
  selects : (Sqlast.Ast.query * float * t) list;
  updates : (Sqlast.Ast.update * float) list;
  fresh : t list;
}

val empty_cache : workload_cache

(** Optimizer probes spent by this workload's builds so far — build-time
    probes plus deferred probes forced later (the count is dynamic). *)
val total_init_calls : workload_cache -> int

(** Sum of {!combos_truncated} over the workload's fresh builds. *)
val cache_truncated : workload_cache -> int

(** Sum of {!pending_probes} over the workload's fresh builds. *)
val cache_pending : workload_cache -> int

(** Weight-summed certified regret ({!probe_regret}) over the workload's
    SELECTs: the workload cost surface computed from the kept templates
    sits above the exhaustive one by at most this much, at any
    configuration. *)
val cache_regret : workload_cache -> float

(** [refine_cache cache ~config] — {!refine} every statement cache at
    [config]; returns the total number of probes forced. *)
val refine_cache : workload_cache -> config:Storage.Config.t -> int

(** [add_statements store cache w] — [cache] extended with every statement
    of [w] (order preserved, appended after existing statements).
    Statement caches are resolved through [store]: repeat keys are hits
    (zero probes), and only missing keys are built — with [store]'s probe
    budget — fanned over up to [jobs] domains.  The result is independent
    of [jobs].  When [stats] is given, accumulates probe / template
    counters for the fresh builds only.  Entries evicted from [store] by
    capacity pressure stay referenced by the returned cache. *)
val add_statements :
  ?jobs:int ->
  ?stats:Runtime.Stats.t ->
  Keyed.store ->
  workload_cache ->
  Sqlast.Ast.workload ->
  workload_cache

(** [remove_statements cache ~drop] — [cache] without the statements
    [drop] selects.  Purely structural: the keyed store keeps its
    entries, so re-adding a dropped statement is still free. *)
val remove_statements :
  workload_cache -> drop:(Sqlast.Ast.statement -> bool) -> workload_cache

(** Build the caches for every SELECT in the workload — the one-shot form
    of {!add_statements} over a fresh store with the given probe budget —
    fanning statement cache construction over up to [jobs] domains
    (default {!Runtime.recommended_jobs}).  Statement order and
    {!total_init_calls} are independent of [jobs]; [jobs:1] runs entirely
    on the calling domain.  When [stats] is given, accumulates
    INUM probe / template counters into it. *)
val build_workload :
  ?jobs:int ->
  ?stats:Runtime.Stats.t ->
  ?probe_budget:int ->
  Optimizer.Whatif.env ->
  Sqlast.Ast.workload ->
  workload_cache

(** Total INUM-approximated workload cost under a configuration, including
    index maintenance and base-update costs.  Forces overlapping deferred
    probes (see {!cost}). *)
val workload_cost :
  Optimizer.Whatif.env -> workload_cache -> Storage.Config.t -> float
