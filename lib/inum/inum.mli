(** INUM — the fast what-if layer (Papadomanolakis, Dash & Ailamaki, VLDB
    2007) rebuilt over this repository's optimizer.

    A per-query cache of {e template plans}: physical plans whose
    base-table accesses are abstract slots.  A template carries its
    internal-operator cost [beta]; the cost of filling a slot with a
    concrete index is [gamma] (infinite when the index cannot satisfy the
    slot's requirement).  [cost q X = min over templates and atomic
    configurations of beta + sum gamma] — the linearly composable form of
    the paper's Definition 1, which is what turns index tuning into a
    compact BIP (Theorem 1). *)

type template = {
  beta : float;  (** internal plan cost (joins, sorts, aggregation) *)
  slot_reqs : Optimizer.Plan.slot_req array;
      (** per referenced table, aligned with [tables] *)
  plan : Optimizer.Plan.t;  (** the template plan, with [Slot] leaves *)
}

type t
(** The INUM cache of one query. *)

(** Build the cache by probing the optimizer once per interesting-order /
    nested-loop spec combination (the "few carefully selected what-if
    calls" of the paper). *)
val build : Optimizer.Whatif.env -> Sqlast.Ast.query -> t

val query : t -> Sqlast.Ast.query
val templates : t -> template list
val template_count : t -> int

(** Tables referenced by the query, in slot order. *)
val tables : t -> string list

(** Optimizer calls spent building the cache. *)
val init_calls : t -> int

(** [gamma t k ~table index] — the cost of instantiating [table]'s slot in
    template [k] with [index] ([None] = no index).  [None] result encodes
    an infinite coefficient (incompatible requirement). *)
val gamma : t -> int -> table:string -> Storage.Index.t option -> float option

(** INUM's approximation of [cost (q, X)]: an upper bound on (and in this
    implementation, typically equal to) the direct what-if cost. *)
val cost : t -> Storage.Config.t -> float

(** The (cost, template index, per-table index picks) the minimum is
    attained at — for explain output. *)
val best_instantiation :
  t -> Storage.Config.t -> float * int * Storage.Index.t option array

(** Persistent keyed template store: canonical statement key
    ({!Sqlast.Canon.key}) -> statement cache.  A repeat query — any
    statement whose canonical form was seen before — costs zero optimizer
    probes.  Builds run on the canonical form, so a hit returns a cache
    bit-identical to a fresh {!build} of the normalized query.  Hits,
    misses, and evictions are mirrored into the [inum.cache_*] trace
    counters. *)
module Keyed : sig
  type store

  (** [create ?capacity env] — a fresh store.  With [capacity], the store
      keeps at most that many entries, evicting least-recently-used
      first (the access clock is a deterministic logical counter).
      @raise Invalid_argument when [capacity < 1]. *)
  val create : ?capacity:int -> Optimizer.Whatif.env -> store

  val env : store -> Optimizer.Whatif.env
  val length : store -> int

  val hits : store -> int
  (** statements resolved without an optimizer probe *)

  val misses : store -> int
  (** statements that required a fresh {!build} *)

  val evictions : store -> int

  val hit_rate : store -> float
  (** [hits / (hits + misses)]; [0.] before any lookup *)

  val mem : store -> Sqlast.Ast.query -> bool

  (** [find_or_build s q] — the cached template set for [q]'s canonical
      key, building (and caching) it on a miss. *)
  val find_or_build : store -> Sqlast.Ast.query -> t

  (** Explicitly drop [q]'s entry; [false] when absent. *)
  val evict : store -> Sqlast.Ast.query -> bool
end

(** Caches for a whole workload: SELECTs and update query shells, plus the
    update statements for maintenance costing.  [total_init_calls] counts
    optimizer probes actually spent: statements resolved from a keyed
    store contribute zero. *)
type workload_cache = {
  selects : (Sqlast.Ast.query * float * t) list;
  updates : (Sqlast.Ast.update * float) list;
  total_init_calls : int;
}

val empty_cache : workload_cache

(** [add_statements store cache w] — [cache] extended with every statement
    of [w] (order preserved, appended after existing statements).
    Statement caches are resolved through [store]: repeat keys are hits
    (zero probes), and only missing keys are built, fanned over up to
    [jobs] domains.  The result is independent of [jobs].  When [stats]
    is given, accumulates probe / template counters for the fresh builds
    only.  Entries evicted from [store] by capacity pressure stay
    referenced by the returned cache. *)
val add_statements :
  ?jobs:int ->
  ?stats:Runtime.Stats.t ->
  Keyed.store ->
  workload_cache ->
  Sqlast.Ast.workload ->
  workload_cache

(** [remove_statements cache ~drop] — [cache] without the statements
    [drop] selects.  Purely structural: the keyed store keeps its
    entries, so re-adding a dropped statement is still free. *)
val remove_statements :
  workload_cache -> drop:(Sqlast.Ast.statement -> bool) -> workload_cache

(** Build the caches for every SELECT in the workload — the one-shot form
    of {!add_statements} over a fresh store — fanning statement cache
    construction over up to [jobs] domains (default
    {!Runtime.recommended_jobs}).  Statement order and
    [total_init_calls] are independent of [jobs]; [jobs:1] runs entirely
    on the calling domain.  When [stats] is given, accumulates
    INUM probe / template counters into it. *)
val build_workload :
  ?jobs:int ->
  ?stats:Runtime.Stats.t ->
  Optimizer.Whatif.env ->
  Sqlast.Ast.workload ->
  workload_cache

(** Total INUM-approximated workload cost under a configuration, including
    index maintenance and base-update costs. *)
val workload_cost :
  Optimizer.Whatif.env -> workload_cache -> Storage.Config.t -> float
