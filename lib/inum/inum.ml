(* INUM — the fast what-if layer of Papadomanolakis, Dash & Ailamaki (VLDB
   2007), rebuilt over our own optimizer.

   For each query we enumerate combinations of per-table access specs —
   unordered, one of the table's interesting orders, or nested-loop inner
   on a join column — and ask the optimizer for the optimal *template
   plan* of each combination: a plan whose leaves are abstract slots with
   zero access cost.  The plan's cost is the internal plan cost beta_qk;
   the cost of instantiating slot i with index a is gamma_qkia (infinite
   when the index cannot satisfy the slot's requirement).  cost(q, X) is
   then min over templates and atomic configurations of beta + sum gamma —
   the linearly composable form of Definition 1, which is what makes index
   tuning a BIP (Theorem 1). *)

open Sqlast

type template = {
  beta : float;
  (* Requirement per referenced table, aligned with [tables]. *)
  slot_reqs : Optimizer.Plan.slot_req array;
  plan : Optimizer.Plan.t;
}

type t = {
  query : Ast.query;
  tables : string array;
  templates : template array;
  (* Number of optimizer calls spent building the cache. *)
  init_calls : int;
  env : Optimizer.Whatif.env;
}

let query t = t.query
let templates t = Array.to_list t.templates
let template_count t = Array.length t.templates
let init_calls t = t.init_calls
let tables t = Array.to_list t.tables

(* --- Interesting orders --- *)

(* Candidate orders for [table] in [q]: join columns, the group-by columns
   on the table (as a unit), and the order-by prefix on the table. *)
let interesting_orders (q : Ast.query) table =
  let joins =
    List.map (fun (c : Ast.col_ref) -> [ c.Ast.column ]) (Ast.join_columns q table)
  in
  let groups =
    match
      List.filter_map
        (fun (c : Ast.col_ref) ->
          if c.Ast.table = table then Some c.Ast.column else None)
        q.Ast.group_by
    with
    | [] -> []
    | cols -> [ cols ]
  in
  let orders =
    match
      List.filter_map
        (fun ((c : Ast.col_ref), _) ->
          if c.Ast.table = table then Some c.Ast.column else None)
        q.Ast.order_by
    with
    | [] -> []
    | cols -> [ cols ]
  in
  let all = joins @ groups @ orders in
  List.fold_left (fun acc o -> if List.mem o acc then acc else o :: acc) [] all
  |> List.rev
  |> List.filteri (fun i _ -> i < 3)

(* Join columns of [table] usable as nested-loop probe targets. *)
let nlj_columns (q : Ast.query) table =
  if List.length q.Ast.tables < 2 then []
  else
    List.map (fun (c : Ast.col_ref) -> c.Ast.column) (Ast.join_columns q table)
    |> List.sort_uniq String.compare
    |> List.filteri (fun i _ -> i < 2)

(* Per-table specs: unordered, each interesting order, each NLJ column. *)
let table_specs q table =
  Optimizer.Whatif.Spec_any
  :: (List.map (fun o -> Optimizer.Whatif.Spec_ordered o) (interesting_orders q table)
     @ List.map (fun c -> Optimizer.Whatif.Spec_nlj c) (nlj_columns q table))

(* Enumerate spec combinations, bounding the number of simultaneously
   constrained tables (long merge/NLJ chains blow up the template count)
   and the total number of optimizer probes per query.  Enumeration
   visits less-constrained combinations first, so truncation drops the
   most exotic templates — mirroring how INUM bounds its plan cache. *)
let max_constrained_tables = 3
let max_combinations = 160

let spec_combinations (q : Ast.query) tables =
  let per_table = Array.map (table_specs q) tables in
  let n = Array.length tables in
  let rec go i acc_rev constrained =
    if i = n then [ List.rev acc_rev ]
    else
      List.concat_map
        (fun s ->
          let constrained' =
            if s = Optimizer.Whatif.Spec_any then constrained else constrained + 1
          in
          if constrained' > max_constrained_tables then []
          else go (i + 1) (s :: acc_rev) constrained')
        per_table.(i)
  in
  let all = go 0 [] 0 in
  let constrained_count combo =
    List.fold_left
      (fun acc s -> if s = Optimizer.Whatif.Spec_any then acc else acc + 1)
      0 combo
  in
  let sorted =
    List.stable_sort
      (fun a b -> compare (constrained_count a) (constrained_count b))
      all
  in
  List.filteri (fun i _ -> i < max_combinations) sorted

(* --- Requirement comparison for template domination --- *)

let order_weaker_eq (o1 : string list) (o2 : string list) =
  (* o1 is a prefix of o2 *)
  let rec prefix = function
    | [], _ -> true
    | _, [] -> false
    | a :: xs, b :: ys -> a = b && prefix (xs, ys)
  in
  prefix (o1, o2)

let req_weaker_eq (r1 : Optimizer.Plan.slot_req) (r2 : Optimizer.Plan.slot_req) =
  match (r1, r2) with
  | Optimizer.Plan.Any_order, _ -> true
  | Optimizer.Plan.Ordered o1, Optimizer.Plan.Ordered o2 -> order_weaker_eq o1 o2
  | ( Optimizer.Plan.Nlj_inner { join_col = c1; outer_rows = r1 },
      Optimizer.Plan.Nlj_inner { join_col = c2; outer_rows = r2 } ) ->
      c1 = c2 && r1 <= r2
  | _ -> false

(* t1 makes t2 redundant when it is no more expensive internally and
   requires no more from every slot. *)
let dominates t1 t2 =
  t1.beta <= t2.beta
  && Array.for_all2 req_weaker_eq t1.slot_reqs t2.slot_reqs

(* --- Cache construction --- *)

(* Trace probes: single [Atomic.get] each when tracing is off.
   [inum.init_calls] counts template-plan probes issued to the what-if
   optimizer (the paper's INUM "init" currency); [inum.beta_extractions]
   the templates whose internal cost beta was materialized;
   [inum.gamma_evals] the per-slot gamma lookups at cost-evaluation
   time. *)
let tr_init_calls = Runtime.Trace.counter "inum.init_calls"
let tr_template_enums = Runtime.Trace.counter "inum.template_enumerations"
let tr_beta = Runtime.Trace.counter "inum.beta_extractions"
let tr_gamma = Runtime.Trace.counter "inum.gamma_evals"
let tr_templates_kept = Runtime.Trace.counter "inum.templates_kept"

let build env (q : Ast.query) =
  Runtime.Trace.span "inum.build" @@ fun () ->
  let tables = Array.of_list q.Ast.tables in
  let combos = spec_combinations q tables in
  Runtime.Trace.incr tr_template_enums;
  Runtime.Trace.add tr_init_calls (List.length combos);
  let raw =
    List.filter_map
      (fun combo ->
        let specs =
          List.mapi (fun i s -> (tables.(i), s)) combo
          |> List.filter (fun (_, s) -> s <> Optimizer.Whatif.Spec_any)
        in
        match Optimizer.Whatif.template_plan env q ~slot_specs:specs with
        | None -> None
        | Some plan ->
            (* Recover each slot's actual requirement (NLJ slots now carry
               their outer cardinality). *)
            let slot_list = Optimizer.Plan.slots plan in
            let slot_reqs =
              Array.map
                (fun t ->
                  match List.find_opt (fun (tb, _, _) -> tb = t) slot_list with
                  | Some (_, _, req) -> req
                  | None -> Optimizer.Plan.Any_order)
                tables
            in
            Runtime.Trace.incr tr_beta;
            Some { beta = Optimizer.Plan.cost plan; slot_reqs; plan })
      combos
  in
  let kept =
    List.filter
      (fun t -> not (List.exists (fun t' -> t' != t && dominates t' t) raw))
      raw
  in
  (* Drop exact duplicates that survive mutual domination. *)
  let kept =
    List.fold_left
      (fun acc t ->
        if
          List.exists
            (fun t' ->
              Runtime.Fx.exactly t'.beta t.beta
              && t'.slot_reqs = t.slot_reqs)
            acc
        then acc
        else t :: acc)
      [] kept
    |> List.rev
  in
  Runtime.Trace.add tr_templates_kept (List.length kept);
  {
    query = q;
    tables;
    templates = Array.of_list kept;
    init_calls = List.length combos;
    env;
  }

(* --- Costs --- *)

(* gamma_qkia: cost of instantiating the slot of [table] in template [k]
   with [index] ([None] = no index).  A [None] result encodes an infinite
   coefficient. *)
let gamma t k ~table index =
  Runtime.Trace.incr tr_gamma;
  let ti =
    let rec find i = if t.tables.(i) = table then i else find (i + 1) in
    find 0
  in
  let req = t.templates.(k).slot_reqs.(ti) in
  Optimizer.Access.slot_fill_cost t.env.Optimizer.Whatif.params
    t.env.Optimizer.Whatif.schema t.query table index req

(* Minimum gamma over the indexes of [config] on [table] (and no-index). *)
let best_slot_cost t (template : template) ti config =
  Runtime.Trace.incr tr_gamma;
  let table = t.tables.(ti) in
  let req = template.slot_reqs.(ti) in
  let params = t.env.Optimizer.Whatif.params in
  let schema = t.env.Optimizer.Whatif.schema in
  let base =
    match Optimizer.Access.slot_fill_cost params schema t.query table None req with
    | Some c -> c
    | None -> infinity
  in
  List.fold_left
    (fun acc ix ->
      match
        Optimizer.Access.slot_fill_cost params schema t.query table (Some ix) req
      with
      | Some c -> min acc c
      | None -> acc)
    base
    (Storage.Config.on_table config table)

(* INUM's approximation of cost(q, X): min over templates of beta plus the
   per-slot minima (the inner min over atomic configurations decomposes
   per slot). *)
let cost t config =
  let best = ref infinity in
  Array.iter
    (fun template ->
      let total = ref template.beta in
      Array.iteri
        (fun ti _ -> total := !total +. best_slot_cost t template ti config)
        t.tables;
      if !total < !best then best := !total)
    t.templates;
  !best

(* The template index and atomic configuration (at most one index per
   table) the minimum is attained at, for explanation output. *)
let best_instantiation t config =
  let params = t.env.Optimizer.Whatif.params in
  let schema = t.env.Optimizer.Whatif.schema in
  let best = ref (infinity, 0, [||]) in
  Array.iteri
    (fun k template ->
      let picks =
        Array.mapi
          (fun ti table ->
            let req = template.slot_reqs.(ti) in
            let base =
              match
                Optimizer.Access.slot_fill_cost params schema t.query table None req
              with
              | Some c -> (c, None)
              | None -> (infinity, None)
            in
            List.fold_left
              (fun (bc, bix) ix ->
                match
                  Optimizer.Access.slot_fill_cost params schema t.query table
                    (Some ix) req
                with
                | Some c when c < bc -> (c, Some ix)
                | _ -> (bc, bix))
              base
              (Storage.Config.on_table config table))
          t.tables
      in
      let total =
        Array.fold_left (fun acc (c, _) -> acc +. c) template.beta picks
      in
      let bcost, _, _ = !best in
      if total < bcost then best := (total, k, Array.map snd picks))
    t.templates;
  let cost, k, picks = !best in
  (cost, k, picks)

(* --- Keyed template store --- *)

let tr_cache_hits = Runtime.Trace.counter "inum.cache_hits"
let tr_cache_misses = Runtime.Trace.counter "inum.cache_misses"
let tr_cache_evictions = Runtime.Trace.counter "inum.cache_evictions"

module Keyed = struct
  (* Canonical key -> statement cache, with an LRU stamp from a logical
     access clock.  Building on [Canon.normalize q] (not [q] itself) is
     what makes a hit bit-identical to a fresh build: the canonical form
     pins the clause order every float reduction runs in, so any two
     statements with the same key build the same [t]. *)
  type entry = { cache : t; mutable stamp : int }

  type store = {
    env : Optimizer.Whatif.env;
    capacity : int option;
    tbl : (string, entry) Hashtbl.t;
    mutable tick : int;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
  }

  let create ?capacity env =
    (match capacity with
    | Some c when c < 1 -> invalid_arg "Inum.Keyed.create: capacity < 1"
    | _ -> ());
    {
      env;
      capacity;
      tbl = Hashtbl.create 64;
      tick = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
    }

  let env s = s.env
  let length s = Hashtbl.length s.tbl
  let hits s = s.hits
  let misses s = s.misses
  let evictions s = s.evictions

  let hit_rate s =
    let total = s.hits + s.misses in
    if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

  (* Internal: LRU touch.  Returns whether the key was present. *)
  let touch s k =
    match Hashtbl.find_opt s.tbl k with
    | Some e ->
        s.tick <- s.tick + 1;
        e.stamp <- s.tick;
        true
    | None -> false

  (* Internal: evict the least-recently-used entry.  Stamps are unique
     (the clock ticks on every touch), so the minimum is unambiguous and
     the scan is enumeration-order independent. *)
  let evict_lru s =
    let victim =
      Runtime.Tbl.fold_sorted
        (fun k (e : entry) acc ->
          match acc with
          | Some (_, stamp) when stamp <= e.stamp -> acc
          | _ -> Some (k, e.stamp))
        s.tbl None
    in
    match victim with
    | None -> ()
    | Some (k, _) ->
        Hashtbl.remove s.tbl k;
        s.evictions <- s.evictions + 1;
        Runtime.Trace.incr tr_cache_evictions

  (* Internal: insert a freshly built cache under [k], evicting down to
     capacity. *)
  let insert s k cache =
    s.tick <- s.tick + 1;
    Hashtbl.replace s.tbl k { cache; stamp = s.tick };
    match s.capacity with
    | Some cap ->
        while Hashtbl.length s.tbl > cap do
          evict_lru s
        done
    | None -> ()

  let mem_key s k = Hashtbl.mem s.tbl k
  let mem s q = mem_key s (Canon.key q)

  (* Internal: lookup without touching the LRU clock or hit counters. *)
  let peek s k =
    match Hashtbl.find_opt s.tbl k with Some e -> Some e.cache | None -> None

  (* Internal: batch hit/miss accounting for [add_statements]. *)
  let record_batch s ~hit ~miss =
    s.hits <- s.hits + hit;
    s.misses <- s.misses + miss;
    Runtime.Trace.add tr_cache_hits hit;
    Runtime.Trace.add tr_cache_misses miss

  let find_or_build s q =
    let k = Canon.key q in
    match Hashtbl.find_opt s.tbl k with
    | Some e ->
        s.tick <- s.tick + 1;
        e.stamp <- s.tick;
        s.hits <- s.hits + 1;
        Runtime.Trace.incr tr_cache_hits;
        e.cache
    | None ->
        s.misses <- s.misses + 1;
        Runtime.Trace.incr tr_cache_misses;
        let cache = build s.env (Canon.normalize q) in
        insert s k cache;
        cache

  let evict s q =
    let k = Canon.key q in
    if Hashtbl.mem s.tbl k then (
      Hashtbl.remove s.tbl k;
      s.evictions <- s.evictions + 1;
      Runtime.Trace.incr tr_cache_evictions;
      true)
    else false
end

(* --- Workload-level cache --- *)

type workload_cache = {
  selects : (Ast.query * float * t) list;  (* query or update shell, weight *)
  updates : (Ast.update * float) list;
  total_init_calls : int;
}

let empty_cache = { selects = []; updates = []; total_init_calls = 0 }

let add_statements ?jobs ?stats (store : Keyed.store) cache (w : Ast.workload) =
  Runtime.Trace.span "inum.add_statements" @@ fun () ->
  let keyed =
    List.map (fun (q, weight) -> (Canon.key q, q, weight)) (Ast.selects w)
  in
  (* Keys that need a fresh build: not in the store and not earlier in
     this same delta, in first-appearance order. *)
  let seen = Hashtbl.create 16 in
  let missing =
    List.filter_map
      (fun (k, q, _) ->
        if Keyed.mem_key store k || Hashtbl.mem seen k then None
        else (
          Hashtbl.add seen k ();
          Some (k, q)))
      keyed
  in
  (* Statement caches are independent: fan construction of the missing
     ones over the domain pool.  [parallel_map] is order-preserving and
     each build works on the canonical form, so the result is identical
     at every job count. *)
  let built =
    Runtime.parallel_map ?jobs
      (fun (k, q) -> (k, build (Keyed.env store) (Canon.normalize q)))
      (Array.of_list missing)
  in
  (* Resolve each statement before mutating the store: a small-capacity
     store may evict batch members on insert, but the returned
     [workload_cache] must still reference every build. *)
  let resolved = Hashtbl.create 16 in
  List.iter
    (fun (k, _, _) ->
      if not (Hashtbl.mem resolved k) then
        match Keyed.peek store k with
        | Some c -> Hashtbl.add resolved k c
        | None -> ())
    keyed;
  Array.iter (fun (k, c) -> Hashtbl.replace resolved k c) built;
  Array.iter (fun (k, c) -> Keyed.insert store k c) built;
  (* A statement is a hit when its key was cached before this call or
     built earlier in the same delta; only misses spend optimizer
     probes. *)
  let n_miss = List.length missing in
  Keyed.record_batch store ~hit:(List.length keyed - n_miss) ~miss:n_miss;
  List.iter (fun (k, _, _) -> ignore (Keyed.touch store k)) keyed;
  let selects_delta =
    List.map (fun (k, q, weight) -> (q, weight, Hashtbl.find resolved k)) keyed
  in
  let fresh_probes =
    Array.fold_left (fun acc (_, c) -> acc + c.init_calls) 0 built
  in
  (match stats with
  | None -> ()
  | Some st ->
      Runtime.Stats.add_inum_probes st fresh_probes;
      Runtime.Stats.add_inum_templates st
        (Array.fold_left
           (fun acc (_, c) -> acc + Array.length c.templates)
           0 built));
  {
    selects = cache.selects @ selects_delta;
    updates = cache.updates @ Ast.updates w;
    (* Probes actually spent: statements resolved from the store cost
       nothing. *)
    total_init_calls = cache.total_init_calls + fresh_probes;
  }

let remove_statements cache ~drop =
  {
    cache with
    selects =
      List.filter (fun (q, _, _) -> not (drop (Ast.Select q))) cache.selects;
    updates =
      List.filter (fun (u, _) -> not (drop (Ast.Update u))) cache.updates;
  }

let build_workload ?jobs ?stats env (w : Ast.workload) =
  Runtime.Trace.span "inum.build_workload" @@ fun () ->
  (* One-shot form of the incremental path: a fresh store, one delta.
     Statement order and [total_init_calls] stay independent of [jobs]. *)
  add_statements ?jobs ?stats (Keyed.create env) empty_cache w

(* INUM approximation of the total workload cost under [config], including
   index-maintenance and base-update costs. *)
let workload_cost env cache config =
  let select_part =
    List.fold_left
      (fun acc (_, weight, c) -> acc +. (weight *. cost c config))
      0.0 cache.selects
  in
  let update_part =
    List.fold_left
      (fun acc (u, weight) ->
        let maintenance =
          List.fold_left
            (fun m ix -> m +. Optimizer.Whatif.update_cost env u ix)
            0.0
            (Storage.Config.on_table config u.Ast.target)
        in
        acc
        +. (weight *. (maintenance +. Optimizer.Whatif.update_base_cost env u)))
      0.0 cache.updates
  in
  select_part +. update_part
