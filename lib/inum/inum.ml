(* INUM — the fast what-if layer of Papadomanolakis, Dash & Ailamaki (VLDB
   2007), rebuilt over our own optimizer, with Wii-style lazy probing.

   For each query we enumerate combinations of per-table access specs —
   unordered, one of the table's interesting orders, or nested-loop inner
   on a join column — and ask the optimizer for the optimal *template
   plan* of each combination: a plan whose leaves are abstract slots with
   zero access cost.  The plan's cost is the internal plan cost beta_qk;
   the cost of instantiating slot i with index a is gamma_qkia (infinite
   when the index cannot satisfy the slot's requirement).  cost(q, X) is
   then min over templates and atomic configurations of beta + sum gamma —
   the linearly composable form of Definition 1, which is what makes index
   tuning a BIP (Theorem 1).

   Probing is bound-driven rather than exhaustive (the Wii idea: skip
   what-if calls whose outcome is boundable without the optimizer).  The
   spec combinations form two partial orders:

   - the *beta order*: c <= c' when c' only strengthens ordered specs of
     c (Spec_any below every Spec_ordered, Spec_ordered by prefix,
     Spec_nlj only equal to itself).  Extra delivered orders are free
     structure, so any plan for c is a plan for c' at no extra cost:
     beta is non-increasing upward, and infeasibility propagates
     downward (a stronger combination with no plan proves the weaker one
     has none).  Probed neighbors therefore bound an unprobed beta:
     below by any probed stronger combination, above (through the gamma
     order) by any probed weaker template.
   - the *gamma order*: the template of c asks no more of every slot
     than the template of c' would (Spec_any below everything,
     Spec_ordered by prefix; NLJ specs are incomparable before probing
     because their outer cardinality is unknown).  A probed template t'
     below c in this order with beta(t') <= lb(c) proves c's template
     would be dominated — it can be skipped with zero regret, and the
     kept template set is provably identical to the eager build's.

   The loop probes the all-any combination first, then repeatedly the
   pending combination with the widest bound interval, until every
   combination is probed or certified, or a probe budget runs out.
   Budget-deferred combinations stay [Pending] with their bounds; the
   worst residual gap is the per-query regret bound, and
   [refine]/[cost]/[best_instantiation] force outstanding probes later
   when (and only when) a pending interval overlaps the best
   instantiation under the configuration actually consulted. *)

open Sqlast

type template = {
  beta : float;
  (* Requirement per referenced table, aligned with [tables]. *)
  slot_reqs : Optimizer.Plan.slot_req array;
  plan : Optimizer.Plan.t;
}

(* Per-combination probe state.  [Pending] combinations carry no cached
   bounds: lb/ub are recomputed from probed neighbors on demand, so a
   later probe can never leave a stale interval behind. *)
type probe_state =
  | Probed of template option  (* [None]: the specs admit no plan *)
  | Skipped_dominated  (* certified: its template would be dominated *)
  | Skipped_infeasible  (* certified: a stronger combination has no plan *)
  | Pending  (* deferred by the probe budget *)

type t = {
  query : Ast.query;
  tables : string array;
  (* Spec combinations in enumeration order (the eager probe order). *)
  combos : Optimizer.Whatif.slot_spec array array;
  (* Parallel to [combos]; mutated by the probe loop and by [refine]. *)
  states : probe_state array;
  (* [stronger.(i)]: combinations above [i] in the beta order (their
     probed betas bound beta_i from below).  [gweaker.(i)]: combinations
     below [i] in the gamma order (their probed templates dominate or
     upper-bound [i]'s).  Both exclude [i] itself. *)
  stronger : int array array;
  gweaker : int array array;
  (* Kept template snapshot (non-dominated, deduplicated, combo order);
     rebuilt after every forced probe. *)
  mutable templates : template array;
  (* Optimizer calls spent so far (build + later forcing). *)
  mutable init_calls : int;
  (* Combinations dropped by the [max_combinations] cap. *)
  truncated : int;
  (* Combination-independent beta floor (Whatif.template_cost_floor). *)
  cost_floor : float;
  env : Optimizer.Whatif.env;
  (* Serializes forcing; builds happen on a single domain before the
     value is published. *)
  lock : Mutex.t;
}

let query t = t.query
let templates t = Array.to_list t.templates
let template_count t = Array.length t.templates
let init_calls t = t.init_calls
let tables t = Array.to_list t.tables
let combos_truncated t = t.truncated

(* --- Interesting orders --- *)

(* Candidate orders for [table] in [q]: join columns, the group-by columns
   on the table (as a unit), and the order-by prefix on the table. *)
let interesting_orders (q : Ast.query) table =
  let joins =
    List.map (fun (c : Ast.col_ref) -> [ c.Ast.column ]) (Ast.join_columns q table)
  in
  let groups =
    match
      List.filter_map
        (fun (c : Ast.col_ref) ->
          if c.Ast.table = table then Some c.Ast.column else None)
        q.Ast.group_by
    with
    | [] -> []
    | cols -> [ cols ]
  in
  let orders =
    match
      List.filter_map
        (fun ((c : Ast.col_ref), _) ->
          if c.Ast.table = table then Some c.Ast.column else None)
        q.Ast.order_by
    with
    | [] -> []
    | cols -> [ cols ]
  in
  let all = joins @ groups @ orders in
  List.fold_left (fun acc o -> if List.mem o acc then acc else o :: acc) [] all
  |> List.rev
  |> List.filteri (fun i _ -> i < 3)

(* Join columns of [table] usable as nested-loop probe targets. *)
let nlj_columns (q : Ast.query) table =
  if List.length q.Ast.tables < 2 then []
  else
    List.map (fun (c : Ast.col_ref) -> c.Ast.column) (Ast.join_columns q table)
    |> List.sort_uniq String.compare
    |> List.filteri (fun i _ -> i < 2)

(* Per-table specs: unordered, each interesting order, each NLJ column. *)
let table_specs q table =
  Optimizer.Whatif.Spec_any
  :: (List.map (fun o -> Optimizer.Whatif.Spec_ordered o) (interesting_orders q table)
     @ List.map (fun c -> Optimizer.Whatif.Spec_nlj c) (nlj_columns q table))

(* Enumerate spec combinations, bounding the number of simultaneously
   constrained tables (long merge/NLJ chains blow up the template count)
   and the total number of combinations per query.  Enumeration visits
   less-constrained combinations first, so truncation drops the most
   exotic templates — mirroring how INUM bounds its plan cache.  The
   combinations dropped by [max_combinations] are counted (per cache in
   [combos_truncated], globally in the [inum.combos_truncated] trace
   counter): the cap is a modeling choice, never a silent one. *)
let max_constrained_tables = 3
let max_combinations = 160

let is_spec_any = function Optimizer.Whatif.Spec_any -> true | _ -> false

let spec_combinations (q : Ast.query) tables =
  let per_table = Array.map (table_specs q) tables in
  let n = Array.length tables in
  let rec go i acc_rev constrained =
    if i = n then [ List.rev acc_rev ]
    else
      List.concat_map
        (fun s ->
          let constrained' = if is_spec_any s then constrained else constrained + 1 in
          if constrained' > max_constrained_tables then []
          else go (i + 1) (s :: acc_rev) constrained')
        per_table.(i)
  in
  let all = go 0 [] 0 in
  let constrained_count combo =
    List.fold_left (fun acc s -> if is_spec_any s then acc else acc + 1) 0 combo
  in
  let sorted =
    List.stable_sort
      (fun a b -> compare (constrained_count a) (constrained_count b))
      all
  in
  (List.filteri (fun i _ -> i < max_combinations) sorted, List.length all)

(* --- Requirement comparison for template domination --- *)

let order_weaker_eq (o1 : string list) (o2 : string list) =
  (* o1 is a prefix of o2 *)
  let rec prefix = function
    | [], _ -> true
    | _, [] -> false
    | a :: xs, b :: ys -> String.equal a b && prefix (xs, ys)
  in
  prefix (o1, o2)

let req_weaker_eq (r1 : Optimizer.Plan.slot_req) (r2 : Optimizer.Plan.slot_req) =
  match (r1, r2) with
  | Optimizer.Plan.Any_order, _ -> true
  | Optimizer.Plan.Ordered o1, Optimizer.Plan.Ordered o2 -> order_weaker_eq o1 o2
  | ( Optimizer.Plan.Nlj_inner { join_col = c1; outer_rows = r1 },
      Optimizer.Plan.Nlj_inner { join_col = c2; outer_rows = r2 } ) ->
      String.equal c1 c2 && r1 <= r2
  | _ -> false

(* Structural slot-requirement equality.  [outer_rows] is a float, so the
   comparison goes through [Runtime.Fx] — polymorphic [=] over values
   embedding floats is exactly the bug class lint rule L1 rejects. *)
let req_equal (r1 : Optimizer.Plan.slot_req) (r2 : Optimizer.Plan.slot_req) =
  match (r1, r2) with
  | Optimizer.Plan.Any_order, Optimizer.Plan.Any_order -> true
  | Optimizer.Plan.Ordered o1, Optimizer.Plan.Ordered o2 ->
      List.length o1 = List.length o2 && List.for_all2 String.equal o1 o2
  | ( Optimizer.Plan.Nlj_inner { join_col = c1; outer_rows = r1 },
      Optimizer.Plan.Nlj_inner { join_col = c2; outer_rows = r2 } ) ->
      String.equal c1 c2 && Runtime.Fx.exactly r1 r2
  | _ -> false

let reqs_equal a b =
  Array.length a = Array.length b
  &&
  let rec go i =
    i >= Array.length a || (req_equal a.(i) b.(i) && go (i + 1))
  in
  go 0

let template_equal t1 t2 =
  Runtime.Fx.exactly t1.beta t2.beta && reqs_equal t1.slot_reqs t2.slot_reqs

(* t1 makes t2 redundant when it is no more expensive internally and
   requires no more from every slot. *)
let dominates t1 t2 =
  t1.beta <= t2.beta
  && Array.for_all2 req_weaker_eq t1.slot_reqs t2.slot_reqs

(* --- Spec-level partial orders (pre-probe) --- *)

(* Beta order: [s1 <= s2] when any plan honoring [s1]'s spec is a plan
   honoring [s2]'s at no greater cost (extra orders are free structure).
   NLJ specs pin the plan shape, so they compare only to themselves. *)
let spec_beta_le (s1 : Optimizer.Whatif.slot_spec) s2 =
  match (s1, s2) with
  | Optimizer.Whatif.Spec_any, Optimizer.Whatif.Spec_any -> true
  | Optimizer.Whatif.Spec_any, Optimizer.Whatif.Spec_ordered _ -> true
  | Optimizer.Whatif.Spec_ordered o1, Optimizer.Whatif.Spec_ordered o2 ->
      order_weaker_eq o1 o2
  | Optimizer.Whatif.Spec_nlj a, Optimizer.Whatif.Spec_nlj b -> String.equal a b
  | _ -> false

(* Gamma order: the template probed from [s1] asks no more of the slot
   than the one probed from [s2] would ([req_weaker_eq] at spec level).
   NLJ specs are excluded: their requirement carries the probe-time outer
   cardinality, which is unknown for an unprobed combination. *)
let spec_gamma_le (s1 : Optimizer.Whatif.slot_spec) s2 =
  match (s1, s2) with
  | Optimizer.Whatif.Spec_any, _ -> true
  | Optimizer.Whatif.Spec_ordered o1, Optimizer.Whatif.Spec_ordered o2 ->
      order_weaker_eq o1 o2
  | _ -> false

let combo_le le (c1 : Optimizer.Whatif.slot_spec array) c2 =
  let n = Array.length c1 in
  let rec go i = i >= n || (le c1.(i) c2.(i) && go (i + 1)) in
  go 0

let constrained_count combo =
  Array.fold_left (fun acc s -> if is_spec_any s then acc else acc + 1) 0 combo

(* --- Cache construction --- *)

(* Trace probes: single [Atomic.get] each when tracing is off.
   [inum.init_calls] counts template-plan probes issued to the what-if
   optimizer (the paper's INUM "init" currency); [inum.probes_skipped]
   the combinations certified away without a probe;
   [inum.probes_forced] the deferred probes forced later by the lazy
   completion path; [inum.combos_truncated] the combinations dropped by
   the [max_combinations] cap; [inum.probe_regret] the (rounded-up)
   per-query regret bounds left at build time by a finite probe budget;
   [inum.beta_extractions] the templates whose internal cost beta was
   materialized; [inum.gamma_evals] the per-slot gamma lookups at
   cost-evaluation time. *)
let tr_init_calls = Runtime.Trace.counter "inum.init_calls"
let tr_template_enums = Runtime.Trace.counter "inum.template_enumerations"
let tr_beta = Runtime.Trace.counter "inum.beta_extractions"
let tr_gamma = Runtime.Trace.counter "inum.gamma_evals"
let tr_templates_kept = Runtime.Trace.counter "inum.templates_kept"
let tr_skipped = Runtime.Trace.counter "inum.probes_skipped"
let tr_forced = Runtime.Trace.counter "inum.probes_forced"
let tr_truncated = Runtime.Trace.counter "inum.combos_truncated"
let tr_regret = Runtime.Trace.counter "inum.probe_regret"

let is_pending t i = match t.states.(i) with Pending -> true | _ -> false

let has_pending t =
  let n = Array.length t.states in
  let rec go i = i < n && (is_pending t i || go (i + 1)) in
  go 0

(* Lower bound on beta_i: probed combinations above [i] in the beta order
   are no more expensive, seeded with the combination-independent floor. *)
let lower_bound t i =
  Array.fold_left
    (fun acc j ->
      match t.states.(j) with
      | Probed (Some tpl) -> if tpl.beta > acc then tpl.beta else acc
      | _ -> acc)
    t.cost_floor t.stronger.(i)

(* Upper bound on the cost contribution of [i]: the cheapest probed
   template below [i] in the gamma order also gamma-dominates it
   pointwise, so beta_i's template can beat it by at most ub - lb. *)
let upper_bound t i =
  Array.fold_left
    (fun acc j ->
      match t.states.(j) with
      | Probed (Some tpl) -> if tpl.beta < acc then tpl.beta else acc
      | _ -> acc)
    infinity t.gweaker.(i)

(* One certification sweep: pending combinations proven infeasible (a
   stronger probed combination has no plan) or dominated (a probed
   gamma-weaker template undercuts the beta lower bound) are skipped for
   good.  Certifications read only probed states, so a single sweep after
   each probe reaches the closure. *)
let certify_pass t =
  Array.iteri
    (fun i st ->
      match st with
      | Pending ->
          let infeasible =
            Array.exists
              (fun j ->
                match t.states.(j) with Probed None -> true | _ -> false)
              t.stronger.(i)
          in
          if infeasible then begin
            t.states.(i) <- Skipped_infeasible;
            Runtime.Trace.incr tr_skipped
          end
          else begin
            let lb = lower_bound t i in
            let dominated =
              Array.exists
                (fun j ->
                  match t.states.(j) with
                  | Probed (Some tpl) -> tpl.beta <= lb
                  | _ -> false)
                t.gweaker.(i)
            in
            if dominated then begin
              t.states.(i) <- Skipped_dominated;
              Runtime.Trace.incr tr_skipped
            end
          end
      | Probed _ | Skipped_dominated | Skipped_infeasible -> ())
    t.states

let probe_combo t i =
  let specs =
    Array.to_list (Array.mapi (fun k s -> (t.tables.(k), s)) t.combos.(i))
    |> List.filter (fun (_, s) -> not (is_spec_any s))
  in
  t.init_calls <- t.init_calls + 1;
  Runtime.Trace.incr tr_init_calls;
  let result =
    match Optimizer.Whatif.template_plan t.env t.query ~slot_specs:specs with
    | None -> None
    | Some plan ->
        (* Recover each slot's actual requirement (NLJ slots now carry
           their outer cardinality). *)
        let slot_list = Optimizer.Plan.slots plan in
        let slot_reqs =
          Array.map
            (fun tb ->
              match List.find_opt (fun (tb', _, _) -> tb' = tb) slot_list with
              | Some (_, _, req) -> req
              | None -> Optimizer.Plan.Any_order)
            t.tables
        in
        Runtime.Trace.incr tr_beta;
        Some { beta = Optimizer.Plan.cost plan; slot_reqs; plan }
  in
  t.states.(i) <- Probed result

(* Kept templates: probed, not strictly dominated by another probed
   template, first occurrence of each structural-duplicate class, in
   combination order.  Skipped combinations are exactly those whose
   template a probed one would strictly dominate, so at an unlimited
   budget this equals the eager build's kept set. *)
let rebuild_templates t =
  let probed =
    Array.to_list t.states
    |> List.filter_map (function Probed (Some tpl) -> Some tpl | _ -> None)
  in
  let kept =
    List.filter
      (fun tpl ->
        not
          (List.exists
             (fun tpl' -> dominates tpl' tpl && not (template_equal tpl' tpl))
             probed))
      probed
  in
  (* Drop exact structural duplicates (first occurrence wins). *)
  let kept =
    List.fold_left
      (fun acc tpl ->
        if List.exists (fun tpl' -> template_equal tpl' tpl) acc then acc
        else tpl :: acc)
      [] kept
    |> List.rev
  in
  t.templates <- Array.of_list kept

(* Next probe target: the pending combination with the widest bound
   interval (most information per probe), most-constrained then lowest
   index on ties — a deterministic schedule. *)
let next_probe t =
  let best = ref (-1) in
  let best_gap = ref neg_infinity in
  let best_cc = ref (-1) in
  Array.iteri
    (fun i st ->
      match st with
      | Pending ->
          let gap = upper_bound t i -. lower_bound t i in
          let cc = constrained_count t.combos.(i) in
          if
            gap > !best_gap
            || (Runtime.Fx.exactly gap !best_gap && cc > !best_cc)
          then begin
            best := i;
            best_gap := gap;
            best_cc := cc
          end
      | Probed _ | Skipped_dominated | Skipped_infeasible -> ())
    t.states;
  if !best < 0 then None else Some !best

(* Worst residual bound gap over pending combinations — a certified bound
   on how far [cost]/[Sproblem] built from the kept templates can sit
   above the exhaustive INUM surface, at any configuration (the gamma
   order makes the upper bound's template dominate pointwise). *)
let probe_regret t =
  let worst = ref 0.0 in
  Array.iteri
    (fun i st ->
      match st with
      | Pending ->
          let gap = upper_bound t i -. lower_bound t i in
          if gap > !worst then worst := gap
      | Probed _ | Skipped_dominated | Skipped_infeasible -> ())
    t.states;
  !worst

let pending_probes t =
  let n = ref 0 in
  Array.iter
    (fun st -> match st with Pending -> incr n | _ -> ())
    t.states;
  !n

let build_internal ~eager ~probe_budget env (q : Ast.query) =
  Runtime.Trace.span "inum.build" @@ fun () ->
  let tables = Array.of_list q.Ast.tables in
  let combo_list, total = spec_combinations q tables in
  Runtime.Trace.incr tr_template_enums;
  let combos =
    Array.of_list (List.map (fun c -> Array.of_list c) combo_list)
  in
  let n = Array.length combos in
  let truncated = total - n in
  if truncated > 0 then Runtime.Trace.add tr_truncated truncated;
  let relation le =
    Array.init n (fun i ->
        let acc = ref [] in
        for j = n - 1 downto 0 do
          if j <> i && le i j then acc := j :: !acc
        done;
        Array.of_list !acc)
  in
  let t =
    {
      query = q;
      tables;
      combos;
      states = Array.make n Pending;
      stronger = relation (fun i j -> combo_le spec_beta_le combos.(i) combos.(j));
      gweaker = relation (fun i j -> combo_le spec_gamma_le combos.(j) combos.(i));
      templates = [||];
      init_calls = 0;
      truncated;
      cost_floor = Optimizer.Whatif.template_cost_floor env q;
      env;
      lock = Mutex.create ();
    }
  in
  if n > 0 then begin
    if eager then
      for i = 0 to n - 1 do
        probe_combo t i
      done
    else begin
      let budget =
        match probe_budget with None -> max_int | Some b -> max 1 b
      in
      (* The all-any combination anchors every upper bound (its template
         gamma-dominates all others), so it is always probed first. *)
      probe_combo t 0;
      certify_pass t;
      let continue_ = ref (t.init_calls < budget) in
      while !continue_ do
        match next_probe t with
        | None -> continue_ := false
        | Some i ->
            probe_combo t i;
            certify_pass t;
            if t.init_calls >= budget then continue_ := false
      done
    end
  end;
  rebuild_templates t;
  Runtime.Trace.add tr_templates_kept (Array.length t.templates);
  let regret = probe_regret t in
  if regret > 0.0 then
    Runtime.Trace.add tr_regret (int_of_float (Float.ceil regret));
  t

let build ?probe_budget env q = build_internal ~eager:false ~probe_budget env q
let build_eager env q = build_internal ~eager:true ~probe_budget:None env q

(* --- Costs --- *)

(* gamma_qkia: cost of instantiating the slot of [table] in template [k]
   with [index] ([None] = no index).  A [None] result encodes an infinite
   coefficient. *)
let slot_index t table =
  let n = Array.length t.tables in
  let rec find i =
    if i >= n then
      invalid_arg
        (Printf.sprintf
           "Inum.gamma: table %S is not referenced by query %d" table
           t.query.Ast.query_id)
    else if String.equal t.tables.(i) table then i
    else find (i + 1)
  in
  find 0

let gamma t k ~table index =
  Runtime.Trace.incr tr_gamma;
  let ti = slot_index t table in
  let req = t.templates.(k).slot_reqs.(ti) in
  Optimizer.Access.slot_fill_cost t.env.Optimizer.Whatif.params
    t.env.Optimizer.Whatif.schema t.query table index req

(* Minimum fill cost of requirement [req] on [table] over the indexes of
   [config] (and no-index). *)
let best_req_cost t table req config =
  let params = t.env.Optimizer.Whatif.params in
  let schema = t.env.Optimizer.Whatif.schema in
  let base =
    match Optimizer.Access.slot_fill_cost params schema t.query table None req with
    | Some c -> c
    | None -> infinity
  in
  List.fold_left
    (fun acc ix ->
      match
        Optimizer.Access.slot_fill_cost params schema t.query table (Some ix) req
      with
      | Some c -> min acc c
      | None -> acc)
    base
    (Storage.Config.on_table config table)

(* Minimum gamma over the indexes of [config] on [table] (and no-index). *)
let best_slot_cost t (template : template) ti config =
  Runtime.Trace.incr tr_gamma;
  best_req_cost t t.tables.(ti) template.slot_reqs.(ti) config

(* Surrogate cost over the kept templates only (no forcing). *)
let kept_cost t config =
  let best = ref infinity in
  Array.iter
    (fun template ->
      let total = ref template.beta in
      Array.iteri
        (fun ti _ -> total := !total +. best_slot_cost t template ti config)
        t.tables;
      if !total < !best then best := !total)
    t.templates;
  !best

(* Optimistic total of a pending combination under [config]: the beta
   lower bound plus a per-slot lower bound on the deferred template's
   fill costs.  Ordered/any slots are exact — their requirement is the
   spec verbatim.  An NLJ slot's requirement carries the probe-time
   outer cardinality; cardinalities are clamped to >= 1 row, so one
   probe's cost bounds the slot from below. *)
let optimistic_total t i config =
  let total = ref (lower_bound t i) in
  Array.iteri
    (fun k s ->
      match s with
      | Optimizer.Whatif.Spec_any ->
          total :=
            !total +. best_req_cost t t.tables.(k) Optimizer.Plan.Any_order config
      | Optimizer.Whatif.Spec_ordered o ->
          total :=
            !total
            +. best_req_cost t t.tables.(k) (Optimizer.Plan.Ordered o) config
      | Optimizer.Whatif.Spec_nlj jc ->
          total :=
            !total
            +. best_req_cost t t.tables.(k)
                 (Optimizer.Plan.Nlj_inner { join_col = jc; outer_rows = 1.0 })
                 config)
    t.combos.(i);
  !total

(* Lazy completion: force deferred probes whose optimistic total still
   undercuts the best kept instantiation under [config] — i.e. whose
   bound interval overlaps the current winner — until none does.  After
   it returns, [kept_cost t config] equals the exhaustive build's cost at
   this configuration.  Returns the number of probes forced.  Safe to
   call repeatedly and from any single domain at a time; results are
   path-independent (exactness at every consulted configuration holds
   regardless of which configurations were consulted before). *)
let refine t ~config =
  if not (has_pending t) then 0
  else
    Mutex.protect t.lock @@ fun () ->
    let forced = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      continue_ := false;
      let best = kept_cost t config in
      let target = ref None in
      Array.iteri
        (fun i st ->
          match (st, !target) with
          | Pending, None ->
              if optimistic_total t i config < best then target := Some i
          | _ -> ())
        t.states;
      match !target with
      | None -> ()
      | Some i ->
          probe_combo t i;
          incr forced;
          Runtime.Trace.incr tr_forced;
          certify_pass t;
          rebuild_templates t;
          continue_ := true
    done;
    !forced

(* INUM's approximation of cost(q, X): min over templates of beta plus the
   per-slot minima (the inner min over atomic configurations decomposes
   per slot).  Deferred probes whose bounds overlap the winner are forced
   first, so the result is exact — equal to the exhaustive build's — at
   every configuration actually consulted. *)
let cost t config =
  if has_pending t then ignore (refine t ~config);
  kept_cost t config

(* Surrogate cost and the certified regret bound, without forcing: the
   exhaustive cost lies in [fst - snd, fst]. *)
let cost_bound t config = (kept_cost t config, probe_regret t)

(* The template index and atomic configuration (at most one index per
   table) the minimum is attained at, for explanation output.  Forces
   overlapping deferred probes first, like [cost]. *)
let best_instantiation t config =
  if has_pending t then ignore (refine t ~config);
  let params = t.env.Optimizer.Whatif.params in
  let schema = t.env.Optimizer.Whatif.schema in
  let best = ref (infinity, 0, [||]) in
  Array.iteri
    (fun k template ->
      let picks =
        Array.mapi
          (fun ti table ->
            let req = template.slot_reqs.(ti) in
            let base =
              match
                Optimizer.Access.slot_fill_cost params schema t.query table None req
              with
              | Some c -> (c, None)
              | None -> (infinity, None)
            in
            List.fold_left
              (fun (bc, bix) ix ->
                match
                  Optimizer.Access.slot_fill_cost params schema t.query table
                    (Some ix) req
                with
                | Some c when c < bc -> (c, Some ix)
                | _ -> (bc, bix))
              base
              (Storage.Config.on_table config table))
          t.tables
      in
      let total =
        Array.fold_left (fun acc (c, _) -> acc +. c) template.beta picks
      in
      let bcost, _, _ = !best in
      if total < bcost then best := (total, k, Array.map snd picks))
    t.templates;
  let cost, k, picks = !best in
  (cost, k, picks)

(* --- Keyed template store --- *)

let tr_cache_hits = Runtime.Trace.counter "inum.cache_hits"
let tr_cache_misses = Runtime.Trace.counter "inum.cache_misses"
let tr_cache_evictions = Runtime.Trace.counter "inum.cache_evictions"

module Keyed = struct
  (* Canonical key -> statement cache, with an LRU stamp from a logical
     access clock.  Building on [Canon.normalize q] (not [q] itself) is
     what makes a hit bit-identical to a fresh build: the canonical form
     pins the clause order every float reduction runs in, so any two
     statements with the same key build the same [t].  Entries are the
     live (possibly partially-built) caches themselves: a hit returns
     the same mutable value, so probes forced after insertion stay
     visible to every later hit — a hit can never resurrect bounds a
     forced probe already resolved. *)
  type entry = { cache : t; mutable stamp : int }

  type store = {
    env : Optimizer.Whatif.env;
    capacity : int option;
    probe_budget : int option;
    tbl : (string, entry) Hashtbl.t;
    mutable tick : int;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
  }

  let create ?capacity ?probe_budget env =
    (match capacity with
    | Some c when c < 1 -> invalid_arg "Inum.Keyed.create: capacity < 1"
    | _ -> ());
    (match probe_budget with
    | Some b when b < 1 -> invalid_arg "Inum.Keyed.create: probe_budget < 1"
    | _ -> ());
    {
      env;
      capacity;
      probe_budget;
      tbl = Hashtbl.create 64;
      tick = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
    }

  let env s = s.env
  let probe_budget s = s.probe_budget
  let length s = Hashtbl.length s.tbl
  let hits s = s.hits
  let misses s = s.misses
  let evictions s = s.evictions

  let hit_rate s =
    let total = s.hits + s.misses in
    if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

  (* Internal: LRU touch.  Returns whether the key was present. *)
  let touch s k =
    match Hashtbl.find_opt s.tbl k with
    | Some e ->
        s.tick <- s.tick + 1;
        e.stamp <- s.tick;
        true
    | None -> false

  (* Internal: evict the least-recently-used entry.  Stamps are unique
     (the clock ticks on every touch), so the minimum is unambiguous and
     the scan is enumeration-order independent. *)
  let evict_lru s =
    let victim =
      Runtime.Tbl.fold_sorted
        (fun k (e : entry) acc ->
          match acc with
          | Some (_, stamp) when stamp <= e.stamp -> acc
          | _ -> Some (k, e.stamp))
        s.tbl None
    in
    match victim with
    | None -> ()
    | Some (k, _) ->
        Hashtbl.remove s.tbl k;
        s.evictions <- s.evictions + 1;
        Runtime.Trace.incr tr_cache_evictions

  (* Internal: insert a freshly built cache under [k], evicting down to
     capacity. *)
  let insert s k cache =
    s.tick <- s.tick + 1;
    Hashtbl.replace s.tbl k { cache; stamp = s.tick };
    match s.capacity with
    | Some cap ->
        while Hashtbl.length s.tbl > cap do
          evict_lru s
        done
    | None -> ()

  let mem_key s k = Hashtbl.mem s.tbl k
  let mem s q = mem_key s (Canon.key q)

  (* Internal: lookup without touching the LRU clock or hit counters. *)
  let peek s k =
    match Hashtbl.find_opt s.tbl k with Some e -> Some e.cache | None -> None

  (* Internal: batch hit/miss accounting for [add_statements]. *)
  let record_batch s ~hit ~miss =
    s.hits <- s.hits + hit;
    s.misses <- s.misses + miss;
    Runtime.Trace.add tr_cache_hits hit;
    Runtime.Trace.add tr_cache_misses miss

  let find_or_build s q =
    let k = Canon.key q in
    match Hashtbl.find_opt s.tbl k with
    | Some e ->
        s.tick <- s.tick + 1;
        e.stamp <- s.tick;
        s.hits <- s.hits + 1;
        Runtime.Trace.incr tr_cache_hits;
        e.cache
    | None ->
        s.misses <- s.misses + 1;
        Runtime.Trace.incr tr_cache_misses;
        let cache =
          build ?probe_budget:s.probe_budget s.env (Canon.normalize q)
        in
        insert s k cache;
        cache

  let evict s q =
    let k = Canon.key q in
    if Hashtbl.mem s.tbl k then (
      Hashtbl.remove s.tbl k;
      s.evictions <- s.evictions + 1;
      Runtime.Trace.incr tr_cache_evictions;
      true)
    else false
end

(* --- Workload-level cache --- *)

type workload_cache = {
  selects : (Ast.query * float * t) list;  (* query or update shell, weight *)
  updates : (Ast.update * float) list;
  (* Caches built by this value's deltas (first-build order): the probes
     they spend — at build time and through later forcing — are this
     workload's init calls.  Statements resolved from a pre-existing
     keyed store contribute zero. *)
  fresh : t list;
}

let empty_cache = { selects = []; updates = []; fresh = [] }

(* Dynamic: deferred probes forced after the build still count. *)
let total_init_calls cache =
  List.fold_left (fun acc t -> acc + t.init_calls) 0 cache.fresh

let cache_truncated cache =
  List.fold_left (fun acc t -> acc + t.truncated) 0 cache.fresh

let cache_pending cache =
  List.fold_left (fun acc t -> acc + pending_probes t) 0 cache.fresh

(* Weighted certified regret: the INUM surface built from the kept
   templates sits above the exhaustive surface by at most this much, at
   any configuration. *)
let cache_regret cache =
  List.fold_left
    (fun acc (_, weight, t) -> acc +. (weight *. probe_regret t))
    0.0 cache.selects

(* Force every statement cache at [config] (see [refine]); statements
   sharing a canonical key share the cache, so repeats cost nothing. *)
let refine_cache cache ~config =
  List.fold_left
    (fun acc (_, _, t) -> acc + refine t ~config)
    0 cache.selects

let add_statements ?jobs ?stats (store : Keyed.store) cache (w : Ast.workload) =
  Runtime.Trace.span "inum.add_statements" @@ fun () ->
  let keyed =
    List.map (fun (q, weight) -> (Canon.key q, q, weight)) (Ast.selects w)
  in
  (* Keys that need a fresh build: not in the store and not earlier in
     this same delta, in first-appearance order. *)
  let seen = Hashtbl.create 16 in
  let missing =
    List.filter_map
      (fun (k, q, _) ->
        if Keyed.mem_key store k || Hashtbl.mem seen k then None
        else (
          Hashtbl.add seen k ();
          Some (k, q)))
      keyed
  in
  (* Statement caches are independent: fan construction of the missing
     ones over the domain pool.  [parallel_map] is order-preserving and
     each build works on the canonical form, so the result is identical
     at every job count. *)
  let built =
    Runtime.parallel_map ?jobs
      (fun (k, q) ->
        ( k,
          build
            ?probe_budget:(Keyed.probe_budget store)
            (Keyed.env store) (Canon.normalize q) ))
      (Array.of_list missing)
  in
  (* Resolve each statement before mutating the store: a small-capacity
     store may evict batch members on insert, but the returned
     [workload_cache] must still reference every build. *)
  let resolved = Hashtbl.create 16 in
  List.iter
    (fun (k, _, _) ->
      if not (Hashtbl.mem resolved k) then
        match Keyed.peek store k with
        | Some c -> Hashtbl.add resolved k c
        | None -> ())
    keyed;
  Array.iter (fun (k, c) -> Hashtbl.replace resolved k c) built;
  Array.iter (fun (k, c) -> Keyed.insert store k c) built;
  (* A statement is a hit when its key was cached before this call or
     built earlier in the same delta; only misses spend optimizer
     probes. *)
  let n_miss = List.length missing in
  Keyed.record_batch store ~hit:(List.length keyed - n_miss) ~miss:n_miss;
  List.iter (fun (k, _, _) -> ignore (Keyed.touch store k)) keyed;
  let selects_delta =
    List.map (fun (k, q, weight) -> (q, weight, Hashtbl.find resolved k)) keyed
  in
  let fresh_probes =
    Array.fold_left (fun acc (_, c) -> acc + c.init_calls) 0 built
  in
  (match stats with
  | None -> ()
  | Some st ->
      Runtime.Stats.add_inum_probes st fresh_probes;
      Runtime.Stats.add_inum_templates st
        (Array.fold_left
           (fun acc (_, c) -> acc + Array.length c.templates)
           0 built));
  {
    selects = cache.selects @ selects_delta;
    updates = cache.updates @ Ast.updates w;
    fresh = cache.fresh @ Array.to_list (Array.map snd built);
  }

let remove_statements cache ~drop =
  {
    cache with
    selects =
      List.filter (fun (q, _, _) -> not (drop (Ast.Select q))) cache.selects;
    updates =
      List.filter (fun (u, _) -> not (drop (Ast.Update u))) cache.updates;
  }

let build_workload ?jobs ?stats ?probe_budget env (w : Ast.workload) =
  Runtime.Trace.span "inum.build_workload" @@ fun () ->
  (* One-shot form of the incremental path: a fresh store, one delta.
     Statement order and [total_init_calls] stay independent of [jobs]. *)
  add_statements ?jobs ?stats (Keyed.create ?probe_budget env) empty_cache w

(* INUM approximation of the total workload cost under [config], including
   index-maintenance and base-update costs. *)
let workload_cost env cache config =
  let select_part =
    List.fold_left
      (fun acc (_, weight, c) -> acc +. (weight *. cost c config))
      0.0 cache.selects
  in
  let update_part =
    List.fold_left
      (fun acc (u, weight) ->
        let maintenance =
          List.fold_left
            (fun m ix -> m +. Optimizer.Whatif.update_cost env u ix)
            0.0
            (Storage.Config.on_table config u.Ast.target)
        in
        acc
        +. (weight *. (maintenance +. Optimizer.Whatif.update_base_cost env u)))
      0.0 cache.updates
  in
  select_part +. update_part
