(* INUM — the fast what-if layer of Papadomanolakis, Dash & Ailamaki (VLDB
   2007), rebuilt over our own optimizer.

   For each query we enumerate combinations of per-table access specs —
   unordered, one of the table's interesting orders, or nested-loop inner
   on a join column — and ask the optimizer for the optimal *template
   plan* of each combination: a plan whose leaves are abstract slots with
   zero access cost.  The plan's cost is the internal plan cost beta_qk;
   the cost of instantiating slot i with index a is gamma_qkia (infinite
   when the index cannot satisfy the slot's requirement).  cost(q, X) is
   then min over templates and atomic configurations of beta + sum gamma —
   the linearly composable form of Definition 1, which is what makes index
   tuning a BIP (Theorem 1). *)

open Sqlast

type template = {
  beta : float;
  (* Requirement per referenced table, aligned with [tables]. *)
  slot_reqs : Optimizer.Plan.slot_req array;
  plan : Optimizer.Plan.t;
}

type t = {
  query : Ast.query;
  tables : string array;
  templates : template array;
  (* Number of optimizer calls spent building the cache. *)
  init_calls : int;
  env : Optimizer.Whatif.env;
}

let query t = t.query
let templates t = Array.to_list t.templates
let template_count t = Array.length t.templates
let init_calls t = t.init_calls
let tables t = Array.to_list t.tables

(* --- Interesting orders --- *)

(* Candidate orders for [table] in [q]: join columns, the group-by columns
   on the table (as a unit), and the order-by prefix on the table. *)
let interesting_orders (q : Ast.query) table =
  let joins =
    List.map (fun (c : Ast.col_ref) -> [ c.Ast.column ]) (Ast.join_columns q table)
  in
  let groups =
    match
      List.filter_map
        (fun (c : Ast.col_ref) ->
          if c.Ast.table = table then Some c.Ast.column else None)
        q.Ast.group_by
    with
    | [] -> []
    | cols -> [ cols ]
  in
  let orders =
    match
      List.filter_map
        (fun ((c : Ast.col_ref), _) ->
          if c.Ast.table = table then Some c.Ast.column else None)
        q.Ast.order_by
    with
    | [] -> []
    | cols -> [ cols ]
  in
  let all = joins @ groups @ orders in
  List.fold_left (fun acc o -> if List.mem o acc then acc else o :: acc) [] all
  |> List.rev
  |> List.filteri (fun i _ -> i < 3)

(* Join columns of [table] usable as nested-loop probe targets. *)
let nlj_columns (q : Ast.query) table =
  if List.length q.Ast.tables < 2 then []
  else
    List.map (fun (c : Ast.col_ref) -> c.Ast.column) (Ast.join_columns q table)
    |> List.sort_uniq String.compare
    |> List.filteri (fun i _ -> i < 2)

(* Per-table specs: unordered, each interesting order, each NLJ column. *)
let table_specs q table =
  Optimizer.Whatif.Spec_any
  :: (List.map (fun o -> Optimizer.Whatif.Spec_ordered o) (interesting_orders q table)
     @ List.map (fun c -> Optimizer.Whatif.Spec_nlj c) (nlj_columns q table))

(* Enumerate spec combinations, bounding the number of simultaneously
   constrained tables (long merge/NLJ chains blow up the template count)
   and the total number of optimizer probes per query.  Enumeration
   visits less-constrained combinations first, so truncation drops the
   most exotic templates — mirroring how INUM bounds its plan cache. *)
let max_constrained_tables = 3
let max_combinations = 160

let spec_combinations (q : Ast.query) tables =
  let per_table = Array.map (table_specs q) tables in
  let n = Array.length tables in
  let rec go i acc_rev constrained =
    if i = n then [ List.rev acc_rev ]
    else
      List.concat_map
        (fun s ->
          let constrained' =
            if s = Optimizer.Whatif.Spec_any then constrained else constrained + 1
          in
          if constrained' > max_constrained_tables then []
          else go (i + 1) (s :: acc_rev) constrained')
        per_table.(i)
  in
  let all = go 0 [] 0 in
  let constrained_count combo =
    List.fold_left
      (fun acc s -> if s = Optimizer.Whatif.Spec_any then acc else acc + 1)
      0 combo
  in
  let sorted =
    List.stable_sort
      (fun a b -> compare (constrained_count a) (constrained_count b))
      all
  in
  List.filteri (fun i _ -> i < max_combinations) sorted

(* --- Requirement comparison for template domination --- *)

let order_weaker_eq (o1 : string list) (o2 : string list) =
  (* o1 is a prefix of o2 *)
  let rec prefix = function
    | [], _ -> true
    | _, [] -> false
    | a :: xs, b :: ys -> a = b && prefix (xs, ys)
  in
  prefix (o1, o2)

let req_weaker_eq (r1 : Optimizer.Plan.slot_req) (r2 : Optimizer.Plan.slot_req) =
  match (r1, r2) with
  | Optimizer.Plan.Any_order, _ -> true
  | Optimizer.Plan.Ordered o1, Optimizer.Plan.Ordered o2 -> order_weaker_eq o1 o2
  | ( Optimizer.Plan.Nlj_inner { join_col = c1; outer_rows = r1 },
      Optimizer.Plan.Nlj_inner { join_col = c2; outer_rows = r2 } ) ->
      c1 = c2 && r1 <= r2
  | _ -> false

(* t1 makes t2 redundant when it is no more expensive internally and
   requires no more from every slot. *)
let dominates t1 t2 =
  t1.beta <= t2.beta
  && Array.for_all2 req_weaker_eq t1.slot_reqs t2.slot_reqs

(* --- Cache construction --- *)

(* Trace probes: single [Atomic.get] each when tracing is off.
   [inum.init_calls] counts template-plan probes issued to the what-if
   optimizer (the paper's INUM "init" currency); [inum.beta_extractions]
   the templates whose internal cost beta was materialized;
   [inum.gamma_evals] the per-slot gamma lookups at cost-evaluation
   time. *)
let tr_init_calls = Runtime.Trace.counter "inum.init_calls"
let tr_template_enums = Runtime.Trace.counter "inum.template_enumerations"
let tr_beta = Runtime.Trace.counter "inum.beta_extractions"
let tr_gamma = Runtime.Trace.counter "inum.gamma_evals"
let tr_templates_kept = Runtime.Trace.counter "inum.templates_kept"

let build env (q : Ast.query) =
  Runtime.Trace.span "inum.build" @@ fun () ->
  let tables = Array.of_list q.Ast.tables in
  let combos = spec_combinations q tables in
  Runtime.Trace.incr tr_template_enums;
  Runtime.Trace.add tr_init_calls (List.length combos);
  let raw =
    List.filter_map
      (fun combo ->
        let specs =
          List.mapi (fun i s -> (tables.(i), s)) combo
          |> List.filter (fun (_, s) -> s <> Optimizer.Whatif.Spec_any)
        in
        match Optimizer.Whatif.template_plan env q ~slot_specs:specs with
        | None -> None
        | Some plan ->
            (* Recover each slot's actual requirement (NLJ slots now carry
               their outer cardinality). *)
            let slot_list = Optimizer.Plan.slots plan in
            let slot_reqs =
              Array.map
                (fun t ->
                  match List.find_opt (fun (tb, _, _) -> tb = t) slot_list with
                  | Some (_, _, req) -> req
                  | None -> Optimizer.Plan.Any_order)
                tables
            in
            Runtime.Trace.incr tr_beta;
            Some { beta = Optimizer.Plan.cost plan; slot_reqs; plan })
      combos
  in
  let kept =
    List.filter
      (fun t -> not (List.exists (fun t' -> t' != t && dominates t' t) raw))
      raw
  in
  (* Drop exact duplicates that survive mutual domination. *)
  let kept =
    List.fold_left
      (fun acc t ->
        if
          List.exists
            (fun t' ->
              Runtime.Fx.exactly t'.beta t.beta
              && t'.slot_reqs = t.slot_reqs)
            acc
        then acc
        else t :: acc)
      [] kept
    |> List.rev
  in
  Runtime.Trace.add tr_templates_kept (List.length kept);
  {
    query = q;
    tables;
    templates = Array.of_list kept;
    init_calls = List.length combos;
    env;
  }

(* --- Costs --- *)

(* gamma_qkia: cost of instantiating the slot of [table] in template [k]
   with [index] ([None] = no index).  A [None] result encodes an infinite
   coefficient. *)
let gamma t k ~table index =
  Runtime.Trace.incr tr_gamma;
  let ti =
    let rec find i = if t.tables.(i) = table then i else find (i + 1) in
    find 0
  in
  let req = t.templates.(k).slot_reqs.(ti) in
  Optimizer.Access.slot_fill_cost t.env.Optimizer.Whatif.params
    t.env.Optimizer.Whatif.schema t.query table index req

(* Minimum gamma over the indexes of [config] on [table] (and no-index). *)
let best_slot_cost t (template : template) ti config =
  Runtime.Trace.incr tr_gamma;
  let table = t.tables.(ti) in
  let req = template.slot_reqs.(ti) in
  let params = t.env.Optimizer.Whatif.params in
  let schema = t.env.Optimizer.Whatif.schema in
  let base =
    match Optimizer.Access.slot_fill_cost params schema t.query table None req with
    | Some c -> c
    | None -> infinity
  in
  List.fold_left
    (fun acc ix ->
      match
        Optimizer.Access.slot_fill_cost params schema t.query table (Some ix) req
      with
      | Some c -> min acc c
      | None -> acc)
    base
    (Storage.Config.on_table config table)

(* INUM's approximation of cost(q, X): min over templates of beta plus the
   per-slot minima (the inner min over atomic configurations decomposes
   per slot). *)
let cost t config =
  let best = ref infinity in
  Array.iter
    (fun template ->
      let total = ref template.beta in
      Array.iteri
        (fun ti _ -> total := !total +. best_slot_cost t template ti config)
        t.tables;
      if !total < !best then best := !total)
    t.templates;
  !best

(* The template index and atomic configuration (at most one index per
   table) the minimum is attained at, for explanation output. *)
let best_instantiation t config =
  let params = t.env.Optimizer.Whatif.params in
  let schema = t.env.Optimizer.Whatif.schema in
  let best = ref (infinity, 0, [||]) in
  Array.iteri
    (fun k template ->
      let picks =
        Array.mapi
          (fun ti table ->
            let req = template.slot_reqs.(ti) in
            let base =
              match
                Optimizer.Access.slot_fill_cost params schema t.query table None req
              with
              | Some c -> (c, None)
              | None -> (infinity, None)
            in
            List.fold_left
              (fun (bc, bix) ix ->
                match
                  Optimizer.Access.slot_fill_cost params schema t.query table
                    (Some ix) req
                with
                | Some c when c < bc -> (c, Some ix)
                | _ -> (bc, bix))
              base
              (Storage.Config.on_table config table))
          t.tables
      in
      let total =
        Array.fold_left (fun acc (c, _) -> acc +. c) template.beta picks
      in
      let bcost, _, _ = !best in
      if total < bcost then best := (total, k, Array.map snd picks))
    t.templates;
  let cost, k, picks = !best in
  (cost, k, picks)

(* --- Workload-level cache --- *)

type workload_cache = {
  selects : (Ast.query * float * t) list;  (* query or update shell, weight *)
  updates : (Ast.update * float) list;
  total_init_calls : int;
}

let build_workload ?jobs ?stats env (w : Ast.workload) =
  Runtime.Trace.span "inum.build_workload" @@ fun () ->
  (* Statement caches are independent: fan construction over the domain
     pool.  [parallel_map] is order-preserving, so [selects] keeps the
     workload's statement order at every job count. *)
  let selects =
    Runtime.parallel_map ?jobs
      (fun (q, weight) -> (q, weight, build env q))
      (Array.of_list (Ast.selects w))
    |> Array.to_list
  in
  let updates = Ast.updates w in
  let total_init_calls =
    List.fold_left (fun acc (_, _, c) -> acc + c.init_calls) 0 selects
  in
  (match stats with
  | None -> ()
  | Some st ->
      Runtime.Stats.add_inum_probes st total_init_calls;
      Runtime.Stats.add_inum_templates st
        (List.fold_left
           (fun acc (_, _, c) -> acc + Array.length c.templates)
           0 selects));
  { selects; updates; total_init_calls }

(* INUM approximation of the total workload cost under [config], including
   index-maintenance and base-update costs. *)
let workload_cost env cache config =
  let select_part =
    List.fold_left
      (fun acc (_, weight, c) -> acc +. (weight *. cost c config))
      0.0 cache.selects
  in
  let update_part =
    List.fold_left
      (fun acc (u, weight) ->
        let maintenance =
          List.fold_left
            (fun m ix -> m +. Optimizer.Whatif.update_cost env u ix)
            0.0
            (Storage.Config.on_table config u.Ast.target)
        in
        acc
        +. (weight *. (maintenance +. Optimizer.Whatif.update_base_cost env u)))
      0.0 cache.updates
  in
  select_part +. update_part
