(* Recursive-descent parser for the SQL subset emitted by [Print].  Literal
   constants are parsed but discarded: predicate selectivities are either
   read back from the [/*sel=...*/] hint emitted by our printer or estimated
   from catalog statistics using standard optimizer defaults (equality from
   distinct counts, 1/3 for inequalities, 1/16 for BETWEEN, 1/20 for LIKE),
   as a real what-if optimizer would with unknown parameter markers. *)

open Ast

exception Parse_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

(* --- Lexer --- *)

type token =
  | Ident of string
  | Number of float
  | Str of string
  | Punct of string       (* , ( ) . ; ? = < <= > >= *)
  | SelHint of float      (* /*sel=x*/ *)
  | Eof

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_'

let tokenize (s : string) : token list =
  let n = String.length s in
  let rec skip_line_comment i = if i < n && s.[i] <> '\n' then skip_line_comment (i + 1) else i in
  let rec go i acc =
    if i >= n then List.rev (Eof :: acc)
    else
      let c = s.[i] in
      if c = ' ' || c = '\n' || c = '\t' || c = '\r' then go (i + 1) acc
      else if c = '-' && i + 1 < n && s.[i + 1] = '-' then
        go (skip_line_comment i) acc
      else if c = '/' && i + 1 < n && s.[i + 1] = '*' then begin
        match String.index_from_opt s (i + 2) '*' with
        | Some j when j + 1 < n && s.[j + 1] = '/' ->
            let body = String.sub s (i + 2) (j - i - 2) in
            let acc =
              match String.index_opt body '=' with
              | Some eq when String.length body >= 4
                             && String.sub body 0 4 = "sel=" ->
                  ignore eq;
                  (try SelHint (float_of_string (String.sub body 4 (String.length body - 4))) :: acc
                   with Failure _ -> acc)
              | _ -> acc
            in
            go (j + 2) acc
        | _ -> fail "unterminated comment"
      end
      else if is_ident_char c && not (c >= '0' && c <= '9') then begin
        let j = ref i in
        while !j < n && is_ident_char s.[!j] do incr j done;
        go !j (Ident (String.sub s i (!j - i)) :: acc)
      end
      else if (c >= '0' && c <= '9') then begin
        let j = ref i in
        while
          !j < n
          && ((s.[!j] >= '0' && s.[!j] <= '9') || s.[!j] = '.' || s.[!j] = 'e'
              || s.[!j] = 'E' || s.[!j] = '-' && !j > i && (s.[!j - 1] = 'e' || s.[!j - 1] = 'E'))
        do incr j done;
        let text = String.sub s i (!j - i) in
        (match float_of_string_opt text with
        | Some f -> go !j (Number f :: acc)
        | None -> fail "bad number %S" text)
      end
      else if c = '\'' then begin
        match String.index_from_opt s (i + 1) '\'' with
        | Some j -> go (j + 1) (Str (String.sub s (i + 1) (j - i - 1)) :: acc)
        | None -> fail "unterminated string literal"
      end
      else if c = '<' && i + 1 < n && s.[i + 1] = '=' then go (i + 2) (Punct "<=" :: acc)
      else if c = '>' && i + 1 < n && s.[i + 1] = '=' then go (i + 2) (Punct ">=" :: acc)
      else if c = '<' && i + 1 < n && s.[i + 1] = '>' then go (i + 2) (Punct "<>" :: acc)
      else
        match c with
        | ',' | '(' | ')' | '.' | ';' | '?' | '=' | '<' | '>' | '*' ->
            go (i + 1) (Punct (String.make 1 c) :: acc)
        | _ -> fail "unexpected character %C" c
  in
  go 0 []

(* --- Parser state --- *)

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> Eof | t :: _ -> t
let advance st = match st.toks with [] -> () | _ :: r -> st.toks <- r

let keyword st kw =
  match peek st with
  | Ident id when String.uppercase_ascii id = kw -> advance st; true
  | _ -> false

let expect_keyword st kw =
  if not (keyword st kw) then fail "expected %s" kw

let expect_punct st p =
  match peek st with
  | Punct q when q = p -> advance st
  | t ->
      fail "expected %S, got %s" p
        (match t with
        | Ident i -> i
        | Punct q -> q
        | Number f -> string_of_float f
        | Str s -> Printf.sprintf "'%s'" s
        | SelHint _ -> "/*sel*/"
        | Eof -> "<eof>")

let ident st =
  match peek st with
  | Ident id -> advance st; String.lowercase_ascii id
  | _ -> fail "expected identifier"

(* --- Grammar --- *)

(* Column references are either qualified [table.col] or bare [col]; bare
   names are resolved against the FROM-list tables via the catalog. *)
type raw_col = { qualifier : string option; col : string }

let raw_col st =
  let first = ident st in
  match peek st with
  | Punct "." ->
      advance st;
      let second = ident st in
      { qualifier = Some first; col = second }
  | _ -> { qualifier = None; col = first }

let resolve schema tables (rc : raw_col) : col_ref =
  match rc.qualifier with
  | Some t ->
      if not (List.mem t tables) then fail "table %s not in FROM" t;
      { table = t; column = rc.col }
  | None -> (
      let owners =
        List.filter
          (fun t ->
            match Catalog.Schema.find_table_opt schema t with
            | Some tbl -> Catalog.Schema.mem_column tbl rc.col
            | None -> false)
          tables
      in
      match owners with
      | [ t ] -> { table = t; column = rc.col }
      | [] -> fail "column %s not found in any FROM table" rc.col
      | _ -> fail "ambiguous column %s" rc.col)

let default_selectivity schema (c : col_ref) cmp =
  match cmp with
  | Eq -> (
      match Catalog.Schema.find_table_opt schema c.table with
      | Some tbl -> (
          try Catalog.Schema.equality_selectivity (Catalog.Schema.find_column tbl c.column)
          with Not_found -> 0.01)
      | None -> 0.01)
  | Lt | Le | Gt | Ge -> 1.0 /. 3.0
  | Between -> 1.0 /. 16.0
  | Like -> 1.0 /. 20.0

let skip_value st =
  match peek st with
  | Number _ | Str _ -> advance st
  | Punct "?" -> advance st
  | _ -> fail "expected literal or parameter marker"

(* One conjunct: either join [col = col] or predicate [col op value]. *)
type conjunct = J of join | P of predicate

let parse_conjunct schema tables st : conjunct =
  let lhs = resolve schema tables (raw_col st) in
  let finish_pred cmp =
    (match cmp with
    | Between ->
        skip_value st;
        expect_keyword st "AND";
        skip_value st
    | _ -> skip_value st);
    let sel =
      match peek st with
      | SelHint f -> advance st; f
      | _ -> default_selectivity schema lhs cmp
    in
    P (predicate ~selectivity:sel lhs cmp)
  in
  match peek st with
  | Punct "=" -> (
      advance st;
      match peek st with
      | Ident _ ->
          (* join or col = col?  Only joins compare two columns. *)
          let rhs = resolve schema tables (raw_col st) in
          J { left = lhs; right = rhs }
      | _ -> finish_pred Eq)
  | Punct "<" -> advance st; finish_pred Lt
  | Punct "<=" -> advance st; finish_pred Le
  | Punct ">" -> advance st; finish_pred Gt
  | Punct ">=" -> advance st; finish_pred Ge
  | Ident id when String.uppercase_ascii id = "BETWEEN" ->
      advance st; finish_pred Between
  | Ident id when String.uppercase_ascii id = "LIKE" ->
      advance st; finish_pred Like
  | _ -> fail "expected comparison operator"

let parse_where schema tables st =
  let rec loop acc =
    let c = parse_conjunct schema tables st in
    if keyword st "AND" then loop (c :: acc) else List.rev (c :: acc)
  in
  loop []

let agg_of_string = function
  | "COUNT" -> Some Count
  | "SUM" -> Some Sum
  | "AVG" -> Some Avg
  | "MIN" -> Some Min
  | "MAX" -> Some Max
  | _ -> None

(* Atomic so concurrent parsers (e.g. per-statement INUM builds driven
   through Runtime.parallel_map) hand out distinct ids without a race. *)
let next_query_id = Atomic.make 0

let parse_select schema st : query =
  expect_keyword st "SELECT";
  (* Select list is parsed after FROM so columns can be resolved; remember
     the raw items. *)
  let raw_items = ref [] in
  let rec items () =
    (match peek st with
    | Ident id when agg_of_string (String.uppercase_ascii id) <> None -> (
        let f = Option.get (agg_of_string (String.uppercase_ascii id)) in
        advance st;
        expect_punct st "(";
        (match peek st with
        | Punct "*" when f = Count -> advance st; raw_items := `CountStar :: !raw_items
        | _ ->
            let rc = raw_col st in
            raw_items := `Agg (f, rc) :: !raw_items);
        expect_punct st ")")
    | _ ->
        let rc = raw_col st in
        raw_items := `Col rc :: !raw_items);
    match peek st with
    | Punct "," -> advance st; items ()
    | _ -> ()
  in
  items ();
  expect_keyword st "FROM";
  let rec from acc =
    let t = ident st in
    if Catalog.Schema.find_table_opt schema t = None then fail "unknown table %s" t;
    match peek st with
    | Punct "," -> advance st; from (t :: acc)
    | _ -> List.rev (t :: acc)
  in
  let tables = from [] in
  let select =
    List.rev_map
      (function
        | `Col rc -> Col (resolve schema tables rc)
        | `Agg (f, rc) -> Agg (f, resolve schema tables rc)
        | `CountStar ->
            (* COUNT star needs no specific column; attach to the first
               table's first column for covering-analysis neutrality. *)
            let t = List.hd tables in
            let tbl = Catalog.Schema.find_table schema t in
            Agg (Count, { table = t; column = tbl.Catalog.Schema.columns.(0).Catalog.Schema.col_name }))
      !raw_items
  in
  let joins, predicates =
    if keyword st "WHERE" then
      let cs = parse_where schema tables st in
      ( List.filter_map (function J j -> Some j | P _ -> None) cs,
        List.filter_map (function P p -> Some p | J _ -> None) cs )
    else ([], [])
  in
  let group_by =
    if keyword st "GROUP" then begin
      expect_keyword st "BY";
      let rec cols acc =
        let c = resolve schema tables (raw_col st) in
        match peek st with
        | Punct "," -> advance st; cols (c :: acc)
        | _ -> List.rev (c :: acc)
      in
      cols []
    end
    else []
  in
  let order_by =
    if keyword st "ORDER" then begin
      expect_keyword st "BY";
      let rec cols acc =
        let c = resolve schema tables (raw_col st) in
        let dir =
          if keyword st "DESC" then Desc
          else begin ignore (keyword st "ASC"); Asc end
        in
        match peek st with
        | Punct "," -> advance st; cols ((c, dir) :: acc)
        | _ -> List.rev ((c, dir) :: acc)
      in
      cols []
    end
    else []
  in
  let id = 1 + Atomic.fetch_and_add next_query_id 1 in
  { query_id = id; tables; select; predicates; joins; group_by;
    order_by }

let parse_update schema st : update =
  expect_keyword st "UPDATE";
  let target = ident st in
  if Catalog.Schema.find_table_opt schema target = None then
    fail "unknown table %s" target;
  expect_keyword st "SET";
  let rec sets acc =
    let c = ident st in
    expect_punct st "=";
    skip_value st;
    match peek st with
    | Punct "," -> advance st; sets (c :: acc)
    | _ -> List.rev (c :: acc)
  in
  let set_columns = sets [] in
  let where =
    if keyword st "WHERE" then
      List.filter_map
        (function P p -> Some p | J _ -> fail "join in UPDATE WHERE")
        (parse_where schema [ target ] st)
    else []
  in
  let id = 1 + Atomic.fetch_and_add next_query_id 1 in
  { update_id = id; target; set_columns; where }

let parse_statement schema st : statement =
  match peek st with
  | Ident id when String.uppercase_ascii id = "SELECT" ->
      Select (parse_select schema st)
  | Ident id when String.uppercase_ascii id = "UPDATE" ->
      Update (parse_update schema st)
  | _ -> fail "expected SELECT or UPDATE"

let statement schema (text : string) : statement =
  let st = { toks = tokenize text } in
  let s = parse_statement schema st in
  (match peek st with
  | Punct ";" -> advance st
  | _ -> ());
  (match peek st with
  | Eof -> ()
  | _ -> fail "trailing tokens after statement");
  s

(* Parse a whole script of semicolon-separated statements. *)
let script schema (text : string) : statement list =
  let st = { toks = tokenize text } in
  let rec stmts acc =
    match peek st with
    | Eof -> List.rev acc
    | Punct ";" -> advance st; stmts acc
    | _ ->
        let s = parse_statement schema st in
        stmts (s :: acc)
  in
  stmts []
