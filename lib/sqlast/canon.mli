(** Query canonicalization: a normal form and a stable text key, so that
    repeat statements are recognized across irrelevant spelling changes.

    Two statements that differ only in whitespace, literal constants,
    column qualification, or the order of order-insensitive clauses
    (FROM list, WHERE conjuncts, GROUP BY columns, select list) parse
    to the same {!normalize}d form and therefore the same {!key}.
    Structurally different statements — different tables, predicate
    shapes, selectivities, aggregation, ORDER BY — get distinct keys.

    The keyed INUM template cache ({!Inum.Keyed}) builds on the
    canonical form, so a cache hit returns templates bit-identical to a
    fresh build of the normalized query: canonicalization fixes the
    clause order every float reduction runs in. *)

val normalize : Ast.query -> Ast.query
(** The canonical representative of a query's equivalence class:
    [query_id] is masked to [0]; tables, select items, predicates,
    joins (orientation-normalized) and group-by columns are sorted
    under explicit total orders.  ORDER BY is semantically ordered and
    kept as written.  Idempotent. *)

val normalize_update : Ast.update -> Ast.update
(** Canonical update: [update_id] masked to [0], SET columns and WHERE
    predicates sorted. *)

val key : Ast.query -> string
(** Stable cache key of {!normalize}: equal iff the normal forms are
    equal.  Selectivities are rendered in hexadecimal float notation,
    so the key distinguishes any two different selectivity values. *)

val update_key : Ast.update -> string

val statement_key : Ast.statement -> string
(** [key]/[update_key] with a [select:]/[update:] tag, so a SELECT can
    never collide with an UPDATE. *)
