(* Canonical statement forms and stable cache keys.

   The INUM layer's per-query results depend only on the query structure
   (tables, predicate selectivities, joins, grouping, ordering) — never
   on [query_id] or on the spelling of the SQL text.  They do, however,
   depend bit-for-bit on clause order: float reductions over predicate
   lists fold left-to-right, so [WHERE a AND b] and [WHERE b AND a]
   can differ in the last ulp.  The canonical form pins one
   representative ordering for every order-insensitive clause, which
   makes "same key => bit-identical INUM build" a theorem rather than a
   hope. *)

open Ast

(* --- Explicit total orders (lint L1: no polymorphic compare near
   floats; we also want orders independent of constructor layout). --- *)

let cmp_rank = function
  | Eq -> 0
  | Lt -> 1
  | Le -> 2
  | Gt -> 3
  | Ge -> 4
  | Between -> 5
  | Like -> 6

let compare_col (a : col_ref) (b : col_ref) =
  match String.compare a.table b.table with
  | 0 -> String.compare a.column b.column
  | c -> c

let compare_predicate (a : predicate) (b : predicate) =
  match compare_col a.pred_col b.pred_col with
  | 0 -> (
      match Int.compare (cmp_rank a.cmp) (cmp_rank b.cmp) with
      | 0 -> (
          match Float.compare a.selectivity b.selectivity with
          | 0 -> Bool.compare a.is_equality b.is_equality
          | c -> c)
      | c -> c)
  | c -> c

(* Equi-joins are symmetric: orient the smaller column reference left. *)
let orient_join (j : join) =
  if compare_col j.left j.right <= 0 then j
  else { left = j.right; right = j.left }

let compare_join (a : join) (b : join) =
  match compare_col a.left b.left with
  | 0 -> compare_col a.right b.right
  | c -> c

let agg_rank = function Count -> 0 | Sum -> 1 | Avg -> 2 | Min -> 3 | Max -> 4

let compare_select_item a b =
  match (a, b) with
  | Col _, Agg _ -> -1
  | Agg _, Col _ -> 1
  | Col ca, Col cb -> compare_col ca cb
  | Agg (fa, ca), Agg (fb, cb) -> (
      match Int.compare (agg_rank fa) (agg_rank fb) with
      | 0 -> compare_col ca cb
      | c -> c)

(* --- Normal forms --- *)

let normalize (q : query) : query =
  {
    query_id = 0;
    tables = List.sort_uniq String.compare q.tables;
    select = List.sort compare_select_item q.select;
    predicates = List.sort compare_predicate q.predicates;
    joins = List.sort compare_join (List.map orient_join q.joins);
    group_by = List.sort compare_col q.group_by;
    (* ORDER BY is semantically ordered: keep it as written. *)
    order_by = q.order_by;
  }

let normalize_update (u : update) : update =
  {
    update_id = 0;
    target = u.target;
    set_columns = List.sort_uniq String.compare u.set_columns;
    where = List.sort compare_predicate u.where;
  }

(* --- Keys --- *)

(* Serialization uses [%S] for every identifier (injective even for
   adversarial table/column names) and [%h] for selectivities (exact
   hexadecimal float round-trip, so distinct values never collide). *)

let buf_col b (c : col_ref) = Printf.bprintf b "%S.%S" c.table c.column

let buf_predicate b (p : predicate) =
  Printf.bprintf b "%a%d:%h:%b" (fun b -> buf_col b) p.pred_col
    (cmp_rank p.cmp) p.selectivity p.is_equality

let buf_list item b xs =
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char b ',';
      item b x)
    xs

let key_of_normal (q : query) =
  let b = Buffer.create 256 in
  Buffer.add_string b "t[";
  buf_list (fun b t -> Printf.bprintf b "%S" t) b q.tables;
  Buffer.add_string b "]s[";
  buf_list
    (fun b -> function
      | Col c -> buf_col b c
      | Agg (f, c) -> Printf.bprintf b "%d(%a)" (agg_rank f) (fun b -> buf_col b) c)
    b q.select;
  Buffer.add_string b "]p[";
  buf_list buf_predicate b q.predicates;
  Buffer.add_string b "]j[";
  buf_list
    (fun b (j : join) ->
      buf_col b j.left;
      Buffer.add_char b '=';
      buf_col b j.right)
    b q.joins;
  Buffer.add_string b "]g[";
  buf_list buf_col b q.group_by;
  Buffer.add_string b "]o[";
  buf_list
    (fun b (c, d) ->
      buf_col b c;
      Buffer.add_string b (match d with Asc -> "+" | Desc -> "-"))
    b q.order_by;
  Buffer.add_char b ']';
  Buffer.contents b

let key q = key_of_normal (normalize q)

let update_key (u : update) =
  let u = normalize_update u in
  let b = Buffer.create 128 in
  Printf.bprintf b "%S|set[" u.target;
  buf_list (fun b c -> Printf.bprintf b "%S" c) b u.set_columns;
  Buffer.add_string b "]w[";
  buf_list buf_predicate b u.where;
  Buffer.add_char b ']';
  Buffer.contents b

let statement_key = function
  | Select q -> "select:" ^ key q
  | Update u -> "update:" ^ update_key u
