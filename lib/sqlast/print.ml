(* SQL text rendering of the AST.  The emitted text round-trips through
   [Parse] (modulo selectivity estimates, which the parser re-derives from
   catalog statistics). *)

open Ast

let pp_col ppf (c : col_ref) = Fmt.pf ppf "%s.%s" c.table c.column

let cmp_to_string = function
  | Eq -> "="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Between -> "BETWEEN"
  | Like -> "LIKE"

let pp_predicate ppf p =
  match p.cmp with
  | Between ->
      Fmt.pf ppf "%a BETWEEN ? AND ? /*sel=%.6g*/" pp_col p.pred_col
        p.selectivity
  | Like -> Fmt.pf ppf "%a LIKE ? /*sel=%.6g*/" pp_col p.pred_col p.selectivity
  | _ ->
      Fmt.pf ppf "%a %s ? /*sel=%.6g*/" pp_col p.pred_col
        (cmp_to_string p.cmp) p.selectivity

let pp_join ppf (j : join) = Fmt.pf ppf "%a = %a" pp_col j.left pp_col j.right

let agg_name = function
  | Count -> "COUNT"
  | Sum -> "SUM"
  | Avg -> "AVG"
  | Min -> "MIN"
  | Max -> "MAX"

let pp_select_item ppf = function
  | Col c -> pp_col ppf c
  | Agg (f, c) -> Fmt.pf ppf "%s(%a)" (agg_name f) pp_col c

let pp_direction ppf = function
  | Asc -> Fmt.string ppf "ASC"
  | Desc -> Fmt.string ppf "DESC"

let pp_query ppf (q : query) =
  let comma = Fmt.any ",@ " in
  Fmt.pf ppf "@[<v>SELECT @[%a@]@ FROM @[%a@]"
    (Fmt.list ~sep:comma pp_select_item)
    q.select
    (Fmt.list ~sep:comma Fmt.string)
    q.tables;
  (match q.joins @ [], q.predicates with
  | [], [] -> ()
  | joins, preds ->
      let conjuncts =
        List.map (Fmt.to_to_string pp_join) joins
        @ List.map (Fmt.to_to_string pp_predicate) preds
      in
      Fmt.pf ppf "@ WHERE @[%a@]"
        (Fmt.list ~sep:(Fmt.any "@ AND ") Fmt.string)
        conjuncts);
  if q.group_by <> [] then
    Fmt.pf ppf "@ GROUP BY @[%a@]" (Fmt.list ~sep:comma pp_col) q.group_by;
  if q.order_by <> [] then
    Fmt.pf ppf "@ ORDER BY @[%a@]"
      (Fmt.list ~sep:comma (fun ppf (c, d) ->
           Fmt.pf ppf "%a %a" pp_col c pp_direction d))
      q.order_by;
  Fmt.pf ppf "@]"

let pp_update ppf (u : update) =
  Fmt.pf ppf "@[<v>UPDATE %s@ SET @[%a@]" u.target
    (Fmt.list ~sep:(Fmt.any ",@ ") (fun ppf c -> Fmt.pf ppf "%s = ?" c))
    u.set_columns;
  if not (List.is_empty u.where) then
    Fmt.pf ppf "@ WHERE @[%a@]"
      (Fmt.list ~sep:(Fmt.any "@ AND ") pp_predicate)
      u.where;
  Fmt.pf ppf "@]"

let pp_statement ppf = function
  | Select q -> pp_query ppf q
  | Update u -> pp_update ppf u

let statement_to_string s = Fmt.str "%a" pp_statement s

let pp_workload ppf (w : workload) =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list ~sep:Fmt.cut (fun ppf { stmt; weight } ->
         Fmt.pf ppf "-- weight %.3g@,%a;" weight pp_statement stmt))
    w
