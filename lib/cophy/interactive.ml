(* Interactive tuning (paper §4.2).

   A session keeps everything the advisor computed — the keyed INUM
   store, the candidate set, the structured BIP, the solver's
   multipliers and the previous incumbent — so that when the DBA (or
   the serve daemon) tweaks the problem (adds candidate indexes,
   changes the budget, the constraints or statement weights, appends
   statements) only the delta is recomputed: INUM runs only for
   statements whose canonical key was never seen, the BIP is rebuilt
   from cached coefficients, and the solver warm-starts from the
   previous multipliers and incumbent.  This is what makes re-tuning an
   order of magnitude faster than solving from scratch (Fig. 6b).

   [Advisor.advise] is the one-shot form of a session: create, build
   the problem, retune once. *)

open Sqlast

type session = {
  env : Optimizer.Whatif.env;
  jobs : int;  (* domains for INUM builds and solver fan-outs *)
  store : Inum.Keyed.store;  (* canonical key -> INUM templates *)
  stats : Runtime.Stats.t;
  mutable workload : Ast.workload;
  mutable cache : Inum.workload_cache;
  mutable candidates : Storage.Index.t array;
  mutable budget : float;
  mutable constraints : Constr.t list;
  mutable baseline : Storage.Config.t;
  mutable problem : Sproblem.t option;          (* invalidated by deltas *)
  mutable multipliers : Decomposition.multipliers option;
  mutable incumbent : Storage.Index.t list option;  (* previous selection *)
  mutable last : Solver.report option;
}

let create ?(params = Optimizer.Cost_params.default)
    ?(constraints = [ Constr.At_most_one_clustered ])
    ?(baseline = Storage.Config.empty) ?(jobs = 1) ?candidates
    ?(dba_candidates = []) ?stats ?store ?probe_budget schema workload ~budget =
  let stats =
    match stats with Some s -> s | None -> Runtime.Stats.create ()
  in
  let store =
    match store with
    | Some st -> st
    | None ->
        Inum.Keyed.create ?probe_budget (Optimizer.Whatif.make_env ~params schema)
  in
  let env = Inum.Keyed.env store in
  let cache =
    Inum.add_statements ~jobs ~stats store Inum.empty_cache workload
  in
  let candidates =
    match candidates with
    | Some c -> Array.of_list c
    | None -> Array.of_list (Cgen.generate ~dba:dba_candidates workload)
  in
  {
    env;
    jobs;
    store;
    stats;
    workload;
    cache;
    candidates;
    budget;
    constraints;
    baseline;
    problem = None;
    multipliers = None;
    incumbent = None;
    last = None;
  }

let env s = s.env
let store s = s.store
let stats s = s.stats
let workload s = s.workload
let cache s = s.cache
let candidates s = Array.to_list s.candidates
let last_report s = s.last

(* --- Deltas --- *)

let add_candidates s ixs =
  let existing = Storage.Config.of_list (Array.to_list s.candidates) in
  let fresh =
    List.filter (fun ix -> not (Storage.Config.mem ix existing)) ixs
  in
  s.candidates <- Array.append s.candidates (Array.of_list fresh);
  s.problem <- None

let remove_candidates s ixs =
  s.candidates <-
    Array.of_list
      (List.filter
         (fun c -> not (List.exists (Storage.Index.equal c) ixs))
         (Array.to_list s.candidates));
  (* Multipliers are keyed by index identity, so survivors keep theirs. *)
  s.problem <- None

let set_budget s budget = s.budget <- budget

let set_constraints s cs =
  s.constraints <- cs;
  s.problem <- None

let set_baseline s b = s.baseline <- b

(* Append statements.  INUM preprocessing runs only for statements whose
   canonical key the session's store has never seen: repeats — including
   statements already in the session — are cache hits and cost zero
   optimizer probes (counted in the [inum.cache_hits] trace counter). *)
let add_statements s stmts =
  s.cache <- Inum.add_statements ~jobs:s.jobs ~stats:s.stats s.store s.cache stmts;
  s.workload <- s.workload @ stmts;
  s.problem <- None

(* Change one statement's weight in place: no INUM work, the BIP is
   rebuilt from cached coefficients on the next [retune], and the
   multipliers survive (they are keyed by statement id and index). *)
let set_weight s id weight =
  let stmt_matches = function
    | Ast.Select q -> q.Ast.query_id = id
    | Ast.Update u -> u.Ast.update_id = id
  in
  s.workload <-
    List.map
      (fun (wt : Ast.weighted) ->
        if stmt_matches wt.Ast.stmt then { wt with Ast.weight } else wt)
      s.workload;
  s.cache <-
    {
      s.cache with
      Inum.selects =
        List.map
          (fun ((q : Ast.query), w0, t) ->
            if q.Ast.query_id = id then (q, weight, t) else (q, w0, t))
          s.cache.Inum.selects;
      updates =
        List.map
          (fun ((u : Ast.update), w0) ->
            if u.Ast.update_id = id then (u, weight) else (u, w0))
          s.cache.Inum.updates;
    };
  s.problem <- None

(* Drop statements.  The keyed store keeps its entries, so re-adding a
   dropped statement later is still free. *)
let remove_statements s ~drop =
  s.workload <-
    List.filter (fun (wt : Ast.weighted) -> not (drop wt.Ast.stmt)) s.workload;
  s.cache <- Inum.remove_statements s.cache ~drop;
  s.problem <- None

(* --- Re-tuning --- *)

let problem s =
  match s.problem with
  | Some sp -> sp
  | None ->
      let sp = Sproblem.build s.env s.cache s.candidates in
      s.problem <- Some sp;
      sp

(* Resolve the session's constraints against the problem: z-only rows,
   per-statement cost caps (relative to the baseline configuration), and
   the black-box acceptance gate. *)
let resolve_constraints s =
  let schema = s.env.Optimizer.Whatif.schema in
  let z_only, caps = List.partition Constr.z_only s.constraints in
  let z_rows = Constr.linearize_all schema s.candidates z_only in
  let block_caps =
    List.concat_map
      (function
        | Constr.Query_cost_cap { query_pred; factor } ->
            List.filter_map
              (fun ((q : Ast.query), _, inum) ->
                if query_pred q.Ast.query_id then
                  Some (q.Ast.query_id, factor *. Inum.cost inum s.baseline)
                else None)
              s.cache.Inum.selects
        | _ -> [])
      caps
  in
  let accept =
    if List.exists Constr.is_udf s.constraints then
      Some (Constr.udf_acceptance s.candidates s.constraints)
    else None
  in
  (z_rows, block_caps, accept)

let retune ?options s =
  (* Without explicit options a session re-solves with the decomposition:
     it is the path whose multipliers persist, which is the point of a
     session.  Callers (Advisor among them) may pass any method. *)
  let options =
    match options with
    | Some o -> o
    | None -> { Solver.default_options with Solver.method_ = Solver.Decomposed }
  in
  let sp = problem s in
  let z_rows, block_caps, accept = resolve_constraints s in
  let options =
    {
      options with
      Solver.warm = s.multipliers;
      warm_z = s.incumbent;
      jobs = s.jobs;
      stats = Some s.stats;
    }
  in
  let report =
    Solver.solve ~options ~block_caps ?accept sp ~budget:s.budget ~z_rows
  in
  (* An exact solve returns no multipliers; keep the previous ones so a
     later decomposed retune still warm-starts. *)
  (match report.Solver.multipliers with
  | Some _ as m -> s.multipliers <- m
  | None -> ());
  s.incumbent <- Some (Storage.Config.to_list report.Solver.config);
  s.last <- Some report;
  report

(* Force the deferred INUM probes whose bound interval overlaps the best
   instantiation under [config] (see [Inum.refine]).  When any probe was
   forced the kept template sets changed, so the structured BIP is
   invalidated; warm-start state (multipliers, incumbent) survives —
   forcing only tightens per-block costs, it does not reshape the
   variable space.  Returns the number of probes forced; [0] means the
   session's cost model is already exact at [config]. *)
let refine_at s config =
  let forced = Inum.refine_cache s.cache ~config in
  if forced > 0 then s.problem <- None;
  forced

(* Certified INUM probe regret of the session's current cost model
   (weighted; zero when probing was unlimited or fully refined). *)
let probe_regret s = Inum.cache_regret s.cache
