(* CoPhy top-level (paper Fig. 2): INUM -> CGen -> BIPGen -> Solver.

   [advise] runs the full pipeline and reports the recommended
   configuration together with the per-phase timing breakdown the paper's
   Figure 5/10 analysis uses (INUM time, BIP building time, solving
   time). *)

type timings = {
  inum_seconds : float;
  build_seconds : float;   (* candidate generation + BIP construction *)
  solve_seconds : float;
  stats : Runtime.Stats.t; (* per-stage counters and accumulated timers *)
}

type recommendation = {
  config : Storage.Config.t;
  report : Solver.report;
  problem : Sproblem.t;
  cache : Inum.workload_cache;
  candidates : Storage.Index.t array;
  timings : timings;
  estimated_cost : float;      (* INUM workload cost under [config] *)
  estimated_base : float;      (* INUM workload cost with no candidate *)
}

let total_seconds r =
  r.timings.inum_seconds +. r.timings.build_seconds +. r.timings.solve_seconds

let advise ?(params = Optimizer.Cost_params.default)
    ?(constraints = Constr.empty) ?candidates ?(dba_candidates = [])
    ?(solver_options = Solver.default_options)
    ?(baseline = Storage.Config.empty) ?(jobs = 1) ?stats ?backend ?certify
    ?probe_budget schema (w : Sqlast.Ast.workload) ~budget_fraction =
  (* Batch advice is the one-shot form of an interactive session: create
     (INUM through the keyed store + candidate generation), build the
     BIP, retune once.  The two entry points share one code spine. *)
  let stats = match stats with Some s -> s | None -> Runtime.Stats.create () in
  let budget = budget_fraction *. Catalog.Tpch.database_size schema in
  let t0 = Runtime.Clock.now () in
  let session =
    Runtime.Trace.span "advisor.inum_build" (fun () ->
        Interactive.create ~params ~constraints:constraints.Constr.hard
          ~baseline ~jobs ?candidates ~dba_candidates ~stats ?probe_budget
          schema w ~budget)
  in
  let t1 = Runtime.Clock.now () in
  Runtime.Stats.add_stage_seconds stats Runtime.Stats.Inum_build (t1 -. t0);
  let sp =
    Runtime.Trace.span "advisor.bip_build" (fun () ->
        Interactive.problem session)
  in
  let t2 = Runtime.Clock.now () in
  Runtime.Stats.add_stage_seconds stats Runtime.Stats.Bip_build (t2 -. t1);
  let solver_options = { solver_options with Solver.jobs } in
  let solver_options =
    match backend with
    | Some b -> { solver_options with Solver.backend = b }
    | None -> solver_options
  in
  let solver_options =
    match certify with
    | Some c -> { solver_options with Solver.certify = c }
    | None -> solver_options
  in
  let report =
    Runtime.Trace.span "advisor.solve" (fun () ->
        Interactive.retune ~options:solver_options session)
  in
  (* Probe-budget completion loop: force the deferred INUM probes whose
     bound interval overlaps the recommendation's best instantiation,
     then warm-started re-solve against the tightened (at this
     configuration, exact) cost model; repeat until the incumbent's cost
     model is exact, i.e. [refine_at] forces nothing.  The iteration cap
     is a safety net — each round spends probes only where the previous
     recommendation was optimistic, so rounds shrink fast; if the cap
     ever bites, the report still carries the certified [probe_regret]
     bound. *)
  let report =
    Runtime.Trace.span "advisor.refine" (fun () ->
        let rec converge report rounds =
          if rounds = 0 then report
          else if Interactive.refine_at session report.Solver.config = 0 then
            report
          else converge (Interactive.retune ~options:solver_options session)
                 (rounds - 1)
        in
        converge report 8)
  in
  let t3 = Runtime.Clock.now () in
  Runtime.Stats.add_stage_seconds stats Runtime.Stats.Solve (t3 -. t2);
  Runtime.Stats.add_whatif_calls stats
    (Optimizer.Whatif.whatif_calls (Interactive.env session));
  let cands = Array.of_list (Interactive.candidates session) in
  let zero = Array.make (Array.length cands) false in
  {
    config = report.Solver.config;
    report;
    problem = sp;
    cache = Interactive.cache session;
    candidates = cands;
    timings =
      {
        inum_seconds = t1 -. t0;
        build_seconds = t2 -. t1;
        solve_seconds = t3 -. t2;
        stats;
      };
    estimated_cost = report.Solver.objective;
    estimated_base = Sproblem.eval ~jobs sp zero;
  }

(* Per-statement explanation of a recommendation: which template the INUM
   model picks under the recommended configuration and which index fills
   each slot. *)
type explanation = {
  statement_id : int;
  cost_before : float;         (* INUM cost under no candidate *)
  cost_after : float;          (* INUM cost under the recommendation *)
  picks : (string * Storage.Index.t option) list;  (* table, chosen index *)
}

let explain (r : recommendation) =
  List.map
    (fun (q, _, inum) ->
      let before = Inum.cost inum Storage.Config.empty in
      let after, _, picks = Inum.best_instantiation inum r.config in
      let tables = Inum.tables inum in
      {
        statement_id = q.Sqlast.Ast.query_id;
        cost_before = before;
        cost_after = after;
        picks = List.combine tables (Array.to_list picks);
      })
    r.cache.Inum.selects
