(** Structure-aware BIP solver for CoPhy instances: Lagrangian
    decomposition with multipliers on the x-to-z linking rows, per-block
    closed-form subproblems, a knapsack/LP z subproblem, subgradient
    ascent for the lower bound, and rounding + incremental local search
    for incumbents.  Streams (elapsed, incumbent, bound) events and
    accepts warm-started multipliers (incremental re-tuning, Pareto
    sweeps). *)

type event = {
  elapsed : float;
  incumbent : float;
  bound : float;
  iteration : int;
}

(** Multipliers keyed by (statement id, candidate index) so they survive
    rebuilding the problem with more candidates or changed constraints. *)
type multipliers = (int * Storage.Index.t, float) Hashtbl.t

type options = {
  max_iters : int;
  time_limit : float;
  gap_tolerance : float;  (** the paper's default CPLEX setting is 0.05 *)
  on_event : event -> unit;
      (** [elapsed] fields are measured on {!Runtime.Clock} *)
  log_events : bool;
  warm : multipliers option;
  warm_z : Storage.Index.t list option;
      (** prior incumbent selection, by index so it survives candidate-set
          changes between re-solves; considered (and repaired if the
          constraints tightened) before the greedy initial, so a warm
          restart is never worse than the repaired prior incumbent *)
  local_search_period : int;
  jobs : int;
      (** domains for the per-block subproblem fan-out and block-cost
          re-evaluations (default [1]).  The subgradient trajectory, the
          incumbents and the returned result are identical at every job
          count: per-block solves are independent and every float
          reduction runs in fixed block order. *)
  stats : Runtime.Stats.t option;
      (** when set, accumulates subproblem-solve / cost-eval counters *)
  backend : Lp.Backend.t;
      (** LP backend for the z subproblem (used when extra z-rows make
          the greedy fractional knapsack inapplicable) *)
  core_guided : bool;
      (** Core-guided lower bounds (BCD2-style), on by default:
          multipliers start from a one-pass benefit estimate instead of
          zero; knapsack reduced costs harden z variables whose opposite
          bound is priced above the incumbent (trace counter
          [cg.hardened]); a binary search probes thresholds between the
          bound and the incumbent and raises the proven bound to the
          highest threshold the restricted knapsack clears; and every few
          iterations the z subproblem is solved to integrality by
          {!Lp.Branch_bound}, whose proven bound is a tighter Lagrangian
          component and whose solution feeds the incumbent side.  All
          fixings are conditional on the incumbent, which the final
          [min bound obj] keeps sound.  [false] restores the plain
          subgradient loop (the PR-6 behaviour, used as the bench
          baseline). *)
}

val default_options : options

type result = {
  z : bool array;
  obj : float;           (** exact objective of [z] *)
  bound : float;         (** best Lagrangian lower bound *)
  iterations : int;
  events : event list;   (** reverse chronological when [log_events] *)
  multipliers : multipliers;
}

(** Solve under a storage [budget] (bytes; [infinity] = none) and linear
    z rows.  [accept] is the black-box (UDF) gate of appendix E.5:
    incumbents failing it are rejected (the bound side legitimately
    ignores it — dropping constraints only lowers the minimum).  The
    returned [bound] is [infinity] when the z polytope is infeasible;
    [obj] is [infinity] when no acceptable incumbent was found. *)
val solve :
  ?options:options ->
  ?accept:(bool array -> bool) ->
  Sproblem.t ->
  budget:float ->
  z_rows:Constr.z_row list ->
  result
