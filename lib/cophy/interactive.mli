(** Interactive tuning sessions (paper §4.2): the keyed INUM store,
    candidate set, structured BIP, solver multipliers and previous
    incumbent persist across the DBA's tweaks, so only the delta is
    recomputed on each re-tune.  {!Advisor.advise} is the one-shot form
    of a session; the serve daemon is the long-running form. *)

type session

(** Start a session: INUM preprocesses the workload through the keyed
    store (statements with a previously seen canonical key cost zero
    optimizer probes), and CGen builds the initial candidate set unless
    [candidates] overrides it ([dba_candidates] extends it).  [jobs]
    (default [1]) sets the domain fan-out for the session's INUM builds
    and re-tunes.  [store] shares a keyed store across sessions (its
    environment is used; [params] and [probe_budget] are then ignored);
    [stats] shares a stats sink.  [probe_budget] caps the optimizer
    probes each INUM build spends up front (see {!Inum.build}); deferred
    probes resolve lazily through {!refine_at} / {!Inum.cost}. *)
val create :
  ?params:Optimizer.Cost_params.t ->
  ?constraints:Constr.t list ->
  ?baseline:Storage.Config.t ->
  ?jobs:int ->
  ?candidates:Storage.Index.t list ->
  ?dba_candidates:Storage.Index.t list ->
  ?stats:Runtime.Stats.t ->
  ?store:Inum.Keyed.store ->
  ?probe_budget:int ->
  Catalog.Schema.t ->
  Sqlast.Ast.workload ->
  budget:float ->
  session

val env : session -> Optimizer.Whatif.env
val store : session -> Inum.Keyed.store
val stats : session -> Runtime.Stats.t
val workload : session -> Sqlast.Ast.workload
val cache : session -> Inum.workload_cache
val candidates : session -> Storage.Index.t list
val last_report : session -> Solver.report option

(** Extend the candidate set (duplicates ignored).  Existing multipliers
    are keyed by index identity, so the next re-tune warm-starts. *)
val add_candidates : session -> Storage.Index.t list -> unit

(** Remove candidates; survivors keep their multipliers. *)
val remove_candidates : session -> Storage.Index.t list -> unit

val set_budget : session -> float -> unit
val set_constraints : session -> Constr.t list -> unit
val set_baseline : session -> Storage.Config.t -> unit

(** Append statements: INUM preprocessing runs only for statements whose
    canonical key was never seen — repeats, including statements already
    in the session, are keyed-store hits with zero optimizer probes
    (counted in the [inum.cache_hits] trace counter). *)
val add_statements : session -> Sqlast.Ast.workload -> unit

(** [set_weight s id w] — change the weight of the statement with id
    [id] (a frequency delta).  No INUM work; the BIP is rebuilt from
    cached coefficients on the next {!retune}, and multipliers survive. *)
val set_weight : session -> int -> float -> unit

(** Drop the statements [drop] selects.  The keyed store keeps their
    template caches, so re-adding them later is free. *)
val remove_statements :
  session -> drop:(Sqlast.Ast.statement -> bool) -> unit

(** The session's structured BIP, rebuilt lazily after deltas. *)
val problem : session -> Sproblem.t

(** Re-solve, warm-starting from the previous multipliers and incumbent
    selection (both maintained by the session; caller-supplied [warm] /
    [warm_z] fields are overridden).  Without [options], solves with the
    decomposition; with [options], the caller's method is honored —
    query-cost-cap constraints are only enforced on the exact path.
    @raise Solver.Infeasible when the hard constraints cannot hold. *)
val retune : ?options:Solver.options -> session -> Solver.report

(** [refine_at s config] — force the deferred INUM probes whose bound
    interval overlaps the best instantiation under [config] (see
    {!Inum.refine}); returns the number forced.  A nonzero return
    invalidates the structured BIP (template sets changed) while
    multipliers and incumbent survive, so the next {!retune} warm-starts
    against the tightened cost model.  [0] means the session's cost
    model is already exact at [config]. *)
val refine_at : session -> Storage.Config.t -> int

(** Certified INUM probe regret of the current cost model (weighted sum
    of {!Inum.probe_regret}); zero when probing was unlimited. *)
val probe_regret : session -> float
