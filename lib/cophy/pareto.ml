(* Soft constraints (paper §4.1 "Handling Soft Constraints", App. D).

   A soft constraint contributes a linear violation metric v(z) (e.g.
   total index storage minus the budget).  Instead of enforcing it, CoPhy
   generates solutions along the Pareto-optimal curve of (workload cost,
   metric) by minimizing the scalarization

       lambda * cost(X, W) + (1 - lambda) * v(X)

   for a few well-chosen lambdas.  The Chord algorithm of Daskalakis,
   Diakonikolas & Yannakakis picks those lambdas: it recursively refines
   the segment whose midpoint-slope solve lands farthest from the chord,
   stopping at a relative tolerance — with provable approximation bounds.

   Every scalarized program is the same block-structured BIP with shifted
   z coefficients, so the decomposition solver's multipliers are reused
   from point to point (the 4x reuse speedup of Fig. 6c). *)

type point = {
  lambda : float;
  z : bool array;
  cost : float;            (* workload cost of the solution *)
  metric : float;          (* soft-constraint metric of the solution *)
}

(* Scalarized solve: min lambda*cost + (1-lambda)*metric where metric =
   sum metric_coeff_a z_a + metric_offset.  Implemented by scaling the
   problem's per-candidate fixed coefficients.  [warm] carries multipliers
   across solves. *)
let scalarized_solve ?(options = Decomposition.default_options) sp
    ~(metric_coeff : float array) ~lambda ~warm =
  (* Shift the per-candidate coefficient: lambda*ucost + (1-lambda)*coeff.
     Because the Lagrangian multipliers are tied to (statement, index)
     pairs — not to the objective scaling — they remain valid warm starts
     after the shift, up to the lambda scaling of the block part.  We also
     scale block weights by lambda through a modified problem view. *)
  let ncand = Array.length sp.Sproblem.candidates in
  let ucost' =
    Array.init ncand (fun a ->
        (lambda *. sp.Sproblem.ucost.(a)) +. ((1.0 -. lambda) *. metric_coeff.(a)))
  in
  let blocks' =
    Array.map
      (fun (b : Sproblem.block) ->
        { b with Sproblem.weight = lambda *. b.Sproblem.weight })
      sp.Sproblem.blocks
  in
  let sp' =
    { sp with
      Sproblem.ucost = ucost';
      Sproblem.blocks = blocks';
      Sproblem.fixed = lambda *. sp.Sproblem.fixed }
  in
  let options = { options with Decomposition.warm } in
  let r = Decomposition.solve ~options sp' ~budget:infinity ~z_rows:[] in
  let z = r.Decomposition.z in
  let cost = Sproblem.eval sp z in
  let metric =
    let acc = ref 0.0 in
    Array.iteri (fun a sel -> if sel then acc := !acc +. metric_coeff.(a)) z;
    !acc
  in
  ({ lambda; z; cost; metric }, r.Decomposition.multipliers)

(* Perpendicular distance of point p from the segment (a, b) in the
   normalized (metric, cost) plane. *)
let chord_distance a b p ~cost_scale ~metric_scale =
  let ax = a.metric /. metric_scale and ay = a.cost /. cost_scale in
  let bx = b.metric /. metric_scale and by = b.cost /. cost_scale in
  let px = p.metric /. metric_scale and py = p.cost /. cost_scale in
  let dx = bx -. ax and dy = by -. ay in
  let len = sqrt ((dx *. dx) +. (dy *. dy)) in
  if len < 1e-12 then 0.0
  else abs_float ((dx *. (ay -. py)) -. (dy *. (ax -. px))) /. len

(* The Chord sweep.  Returns Pareto points sorted by metric, and the
   number of solver invocations spent.  [reuse = false] disables the
   multiplier warm start (for the Fig. 6c comparison). *)
let sweep ?(epsilon = 0.05) ?(max_points = 16) ?(reuse = true)
    ?(options = Decomposition.default_options) sp ~metric_coeff =
  let solves = ref 0 in
  let warm = ref None in
  let solve lambda =
    incr solves;
    let p, mult =
      scalarized_solve ~options sp ~metric_coeff ~lambda
        ~warm:(if reuse then !warm else None)
    in
    if reuse then warm := Some mult;
    p
  in
  (* endpoints: all-cost (lambda ~ 1) and all-metric (lambda ~ 0) *)
  let a = solve 0.999 in
  let b = solve 0.001 in
  let cost_scale = max 1.0 (abs_float b.cost) in
  let metric_scale = max 1.0 (abs_float a.metric) in
  let points = ref [ a; b ] in
  let rec refine a b depth =
    if depth <= 0 || List.length !points >= max_points then ()
    else begin
      let dcost = a.cost -. b.cost and dmetric = b.metric -. a.metric in
      if abs_float dmetric > 1e-9 && abs_float dcost > 1e-9 then begin
        (* lambda whose scalarization is normal to the chord:
           lambda/(1-lambda) = dmetric/dcost *)
        let slope = abs_float (dmetric /. dcost) in
        let lambda = slope /. (1.0 +. slope) in
        let s = solve lambda in
        let d = chord_distance a b s ~cost_scale ~metric_scale in
        if d > epsilon then begin
          points := s :: !points;
          refine a s (depth - 1);
          refine s b (depth - 1)
        end
      end
    end
  in
  refine a b 6;
  (* Explicit lexicographic float comparator: polymorphic [compare] on
     (float, float) tuples orders nan by its boxed representation and is
     exactly the pattern lint rule L1 rejects; [Float.compare] gives a
     total, nan-consistent order. *)
  let sorted =
    List.sort_uniq
      (fun p q ->
        let c = Float.compare p.metric q.metric in
        if c <> 0 then c else Float.compare p.cost q.cost)
      !points
  in
  (sorted, !solves)

(* Storage metric helper: coefficient = index size; the curve then trades
   workload cost against total storage (the paper's soft-budget demo). *)
let storage_metric (sp : Sproblem.t) = Array.copy sp.Sproblem.sizes
