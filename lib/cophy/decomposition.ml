(* Structure-aware BIP solver for CoPhy instances, standing in for an
   industrial solver at scales where our generic simplex-based
   branch-and-bound would be too slow.

   The BIP of Theorem 1 has a block structure: the only coupling between
   statements is through the z variables (the linking rows x_qkia <= z_a
   and the constraints over z).  We apply Lagrangian decomposition — the
   same relaxation the paper's own Solver applies before calling the BIP
   solver (Fig. 3) — with multipliers on the linking rows:

   - per-block subproblems pick the cheapest (template, slot choices)
     with candidate usage priced at gamma + lambda, in closed form;
   - the z subproblem is a {0,1} knapsack over the storage budget (plus
     any linear z constraints), solved as an LP for a valid lower bound;
   - subgradient ascent tightens the bound; rounding plus incremental
     local search produce incumbents.

   The solver streams (elapsed, incumbent, bound) events — the feedback
   channel behind CoPhy's early termination — and accepts warm-started
   multipliers, which is what makes incremental re-tuning and Pareto
   sweeps fast (Figs. 6b, 6c). *)

type event = {
  elapsed : float;
  incumbent : float;
  bound : float;
  iteration : int;
}

(* Multipliers keyed by statement id and candidate index, so they survive
   re-building the problem with more candidates or changed constraints. *)
type multipliers = (int * Storage.Index.t, float) Hashtbl.t

type options = {
  max_iters : int;
  time_limit : float;
  gap_tolerance : float;
  on_event : event -> unit;
  log_events : bool;
  warm : multipliers option;
  (* Prior incumbent selection, by index (so it survives candidate-set
     changes between re-solves).  Considered before the greedy initial:
     repaired if the budget shrank, so a warm restart is never worse
     than the repaired prior incumbent. *)
  warm_z : Storage.Index.t list option;
  local_search_period : int;
  jobs : int;
  stats : Runtime.Stats.t option;
  backend : Lp.Backend.t;  (* LP backend for the z subproblem *)
  (* Core-guided bound tightening (BCD2-style): benefit-initialized
     multipliers, reduced-cost hardening of z variables against the
     incumbent, a binary search that probes thresholds between bound and
     incumbent, and periodic integer z subproblems solved by the
     branch-and-bound engine.  Off = the plain subgradient loop. *)
  core_guided : bool;
}

let default_options =
  {
    max_iters = 400;
    time_limit = infinity;
    gap_tolerance = 0.05;     (* the paper's default CPLEX setting *)
    on_event = ignore;
    log_events = false;
    warm = None;
    warm_z = None;
    local_search_period = 10;
    jobs = 1;
    stats = None;
    backend = Lp.Backend.default;
    core_guided = true;
  }

type result = {
  z : bool array;
  obj : float;
  bound : float;
  iterations : int;
  events : event list;      (* reverse chronological *)
  multipliers : multipliers;
}

(* --- Block subproblem --- *)

(* Trace probes: single [Atomic.get] each when tracing is off. *)
let tr_iterations = Runtime.Trace.counter "decomposition.iterations"
let tr_block_solves = Runtime.Trace.counter "decomposition.block_solves"
let tr_ls_moves = Runtime.Trace.counter "decomposition.local_search_moves"
let tr_cg_hardened = Runtime.Trace.counter "cg.hardened"
let tr_warm_repaired = Runtime.Trace.counter "solver.warm_repaired"
let tr_warm_rejected = Runtime.Trace.counter "solver.warm_rejected"

(* Position of candidate [cand] in a block's sorted [cands_used] array.
   A read-only binary search (rather than a shared scratch position map)
   keeps the block subproblems free of shared mutable state, so they can
   run on separate domains. *)
let pos_in block cand =
  let cands_used = block.Sproblem.cands_used in
  let lo = ref 0 and hi = ref (Array.length cands_used - 1) in
  let res = ref (-1) in
  while !res < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = cands_used.(mid) in
    if c = cand then res := mid
    else if c < cand then lo := mid + 1
    else hi := mid - 1
  done;
  assert (!res >= 0);
  !res

(* Cheapest (template, choices) with usage priced by lam; returns the
   value and the set of candidates used. *)
let block_subproblem (b : Sproblem.block) (lam : float array) ~excluded =
  let best = ref infinity in
  let best_used = ref [] in
  Array.iter
    (fun (tpl : Sproblem.template) ->
      let total = ref (b.Sproblem.weight *. tpl.Sproblem.beta) in
      let used = ref [] in
      Array.iter
        (fun slot ->
          let m = ref infinity and pick = ref (-1) in
          Array.iter
            (fun { Sproblem.cand; gamma } ->
              if cand < 0 then begin
                let c = b.Sproblem.weight *. gamma in
                if c < !m then begin
                  m := c;
                  pick := -1
                end
              end
              else if not excluded.(cand) then begin
                let c =
                  (b.Sproblem.weight *. gamma) +. lam.(pos_in b cand)
                in
                if c < !m then begin
                  m := c;
                  pick := cand
                end
              end)
            slot;
          total := !total +. !m;
          if !pick >= 0 then used := !pick :: !used)
        tpl.Sproblem.choices;
      if !total < !best then begin
        best := !total;
        best_used := !used
      end)
    b.Sproblem.templates;
  (!best, !best_used)

(* --- z subproblem --- *)

(* min sum w_a z_a  s.t.  sizes.z <= budget, extra z rows, 0 <= z <= 1.
   Without extra rows this is a fractional knapsack solved greedily;
   otherwise we hand the small LP to the simplex.  Returns the solve
   status alongside (value, z): only an [Optimal] value is a valid
   Lagrangian bound component — an [Iter_limit] iterate is feasible
   (so its rounding still seeds the primal side) but its objective
   proves nothing, and the caller must not fold it into the bound. *)
let z_subproblem ~backend ~w ~(sizes : float array) ~budget
    ~(z_rows : Constr.z_row list) ~forced_one ~forced_zero =
  let n = Array.length w in
  if z_rows = [] then begin
    let z = Array.make n 0.0 in
    let value = ref 0.0 in
    let cap = ref budget in
    (* forced selections first *)
    for a = 0 to n - 1 do
      if forced_one.(a) then begin
        z.(a) <- 1.0;
        value := !value +. w.(a);
        cap := !cap -. sizes.(a)
      end
    done;
    let order =
      List.init n Fun.id
      |> List.filter (fun a ->
             (not forced_one.(a)) && (not forced_zero.(a)) && w.(a) < 0.0)
      |> List.sort (fun a b ->
             Float.compare
               (w.(a) /. max 1.0 sizes.(a))
               (w.(b) /. max 1.0 sizes.(b)))
    in
    List.iter
      (fun a ->
        if !cap > 0.0 then begin
          let frac = min 1.0 (!cap /. max 1.0 sizes.(a)) in
          z.(a) <- frac;
          value := !value +. (frac *. w.(a));
          cap := !cap -. (frac *. sizes.(a))
        end)
      order;
    (* the greedy fill is the analytic optimum of the fractional
       knapsack, so its value carries a proof *)
    (!value, z, Lp.Simplex.Optimal)
  end
  else begin
    let p = Lp.Problem.create () in
    let vars =
      Array.init n (fun a ->
          let lb = if forced_one.(a) then 1.0 else 0.0 in
          let ub = if forced_zero.(a) then 0.0 else 1.0 in
          Lp.Problem.add_var ~lb ~ub:(max lb ub) ~obj:w.(a) p)
    in
    if budget < infinity then
      ignore
        (Lp.Problem.add_row p
           (Array.to_list (Array.mapi (fun a v -> (v, sizes.(a))) vars))
           Lp.Problem.Le budget);
    List.iter
      (fun (row : Constr.z_row) ->
        let sense =
          match row.Constr.row_cmp with
          | Constr.Le -> Lp.Problem.Le
          | Constr.Ge -> Lp.Problem.Ge
          | Constr.Eq -> Lp.Problem.Eq
        in
        ignore
          (Lp.Problem.add_row p
             (List.map (fun (a, c) -> (vars.(a), c)) row.Constr.row_coeffs)
             sense row.Constr.row_rhs))
      z_rows;
    (* Presolve is disabled here: its bound tightening and row scaling
       can land on a different optimal vertex of this (often degenerate)
       LP, and the fractional vertex feeds the rounding heuristic.  The
       raw kernels run the same pricing loop and agree on the optimum
       value, but their floating-point arithmetic differs, so a
       near-tolerance pricing tie can still resolve to a different
       optimal vertex between backends — recommendations agree on cost,
       not structurally on the chosen vertex. *)
    let r =
      Lp.Backend.solve { backend with Lp.Backend.presolve = false } p
    in
    match r.Lp.Simplex.status with
    | Lp.Simplex.Optimal ->
        ( r.Lp.Simplex.obj,
          Array.init n (fun a -> r.Lp.Simplex.x.(vars.(a))),
          Lp.Simplex.Optimal )
    | Lp.Simplex.Iter_limit ->
        (* last iterate: primal-feasible, so still a usable rounding
           direction, but its objective is no lower bound *)
        ( r.Lp.Simplex.obj,
          Array.init n (fun a -> r.Lp.Simplex.x.(vars.(a))),
          Lp.Simplex.Iter_limit )
    | (Lp.Simplex.Infeasible | Lp.Simplex.Unbounded) as s ->
        (* infeasible z polytope: signal with +inf bound *)
        (infinity, Array.make n 0.0, s)
  end

(* Greedy fractional knapsack with its analytic LP dual, for the
   core-guided path (no extra z rows).  The fill loop mirrors the greedy
   in [z_subproblem] exactly — it must, its value is the bound — and
   additionally returns the knapsack dual [y] (<= 0): the reduced cost
   [w_a - y * max 1 s_a] prices moving a variable to its opposite bound,
   which is what the hardening and the threshold probes consume.  The
   dual is the ratio of the first fractional item, or of the best
   unselected item when the capacity came out exactly, or 0 when the
   budget does not bind — each a valid dual by complementary
   slackness over the sorted ratios. *)
let greedy_z_with_duals ~w ~(sizes : float array) ~budget ~forced_one
    ~forced_zero =
  let n = Array.length w in
  let z = Array.make n 0.0 in
  let value = ref 0.0 in
  let cap = ref budget in
  for a = 0 to n - 1 do
    if forced_one.(a) then begin
      z.(a) <- 1.0;
      value := !value +. w.(a);
      cap := !cap -. sizes.(a)
    end
  done;
  let order =
    List.init n Fun.id
    |> List.filter (fun a ->
           (not forced_one.(a)) && (not forced_zero.(a)) && w.(a) < 0.0)
    |> List.sort (fun a b ->
           Float.compare
             (w.(a) /. max 1.0 sizes.(a))
             (w.(b) /. max 1.0 sizes.(b)))
  in
  let y = ref 0.0 in
  List.iter
    (fun a ->
      if !cap > 0.0 then begin
        let frac = min 1.0 (!cap /. max 1.0 sizes.(a)) in
        z.(a) <- frac;
        value := !value +. (frac *. w.(a));
        cap := !cap -. (frac *. sizes.(a));
        if frac < 1.0 && Runtime.Fx.is_zero !y then
          y := w.(a) /. max 1.0 sizes.(a)
      end
      else if Runtime.Fx.is_zero !y then y := w.(a) /. max 1.0 sizes.(a))
    order;
  (!value, z, !y)

(* Integer z subproblem: the same knapsack (plus any z rows), solved as
   a small BIP by the branch-and-bound engine.  Its proven bound is a
   valid — and strictly tighter than the LP's — Lagrangian component,
   and its solution is budget-feasible by construction, so it feeds the
   incumbent side too.  Deterministic: only a node limit, never a time
   limit, truncates the tree. *)
let[@bound.certifier bound
     "returns Branch_bound's [bound] result field, the proven dual side \
      maintained only through Optimal-gated updates (machine-checked by \
      the bound sinks inside branch_bound.ml); the solution component is \
      a bool rounding of a certified incumbent"] z_bip ~jobs ~w
    ~(sizes : float array) ~budget ~(z_rows : Constr.z_row list) ~forced_one
    ~forced_zero =
  let n = Array.length w in
  let p = Lp.Problem.create () in
  let vars =
    Array.init n (fun a ->
        let lb = if forced_one.(a) then 1.0 else 0.0 in
        let ub = if forced_zero.(a) then 0.0 else 1.0 in
        Lp.Problem.add_var ~kind:Lp.Problem.Binary ~lb ~ub:(max lb ub)
          ~obj:w.(a) p)
  in
  if budget < infinity then
    ignore
      (Lp.Problem.add_row p
         (Array.to_list (Array.mapi (fun a v -> (v, sizes.(a))) vars))
         Lp.Problem.Le budget);
  List.iter
    (fun (row : Constr.z_row) ->
      let sense =
        match row.Constr.row_cmp with
        | Constr.Le -> Lp.Problem.Le
        | Constr.Ge -> Lp.Problem.Ge
        | Constr.Eq -> Lp.Problem.Eq
      in
      ignore
        (Lp.Problem.add_row p
           (List.map (fun (a, c) -> (vars.(a), c)) row.Constr.row_coeffs)
           sense row.Constr.row_rhs))
    z_rows;
  let options =
    {
      Lp.Branch_bound.default_options with
      Lp.Branch_bound.gap_tolerance = 1e-4;
      node_limit = 16;
      jobs;
    }
  in
  let r = Lp.Branch_bound.solve ~options p in
  match r.Lp.Branch_bound.status with
  | Lp.Branch_bound.Infeasible -> (infinity, None)
  | Lp.Branch_bound.Unbounded -> (neg_infinity, None)
  | _ ->
      ( r.Lp.Branch_bound.bound,
        Option.map
          (fun x -> Array.init n (fun a -> x.(vars.(a)) > 0.5))
          r.Lp.Branch_bound.x )

(* --- Feasibility repair and local search --- *)

let z_feasible (sp : Sproblem.t) ~budget ~z_rows (z : bool array) =
  Sproblem.total_size sp z <= budget +. 1e-6
  && List.for_all (fun row -> Constr.row_holds row z) z_rows

(* Incremental objective deltas: only blocks referencing the toggled
   candidate change. *)
let delta_toggle (sp : Sproblem.t) (z : bool array) (bcost : float array) a =
  let delta =
    ref (if z.(a) then -.sp.Sproblem.ucost.(a) else sp.Sproblem.ucost.(a))
  in
  z.(a) <- not z.(a);
  let changed = ref [] in
  Array.iter
    (fun bi ->
      let b = sp.Sproblem.blocks.(bi) in
      let c = Sproblem.block_cost_z b z in
      delta := !delta +. (b.Sproblem.weight *. (c -. bcost.(bi)));
      changed := (bi, c) :: !changed)
    sp.Sproblem.cand_blocks.(a);
  z.(a) <- not z.(a);
  (!delta, !changed)

(* Drop selected candidates (smallest cost increase per byte freed first)
   until feasible.  One delta evaluation per selected candidate against
   the starting state, then a greedy sweep — an approximation that keeps
   repair linear, refined later by the local search. *)
let repair ?(jobs = 1) (sp : Sproblem.t) ~budget ~z_rows (z : bool array) =
  let z = Array.copy z in
  if z_feasible sp ~budget ~z_rows z then z
  else begin
    let bcost =
      Runtime.parallel_map ~jobs
        (fun b -> Sproblem.block_cost_z b z)
        sp.Sproblem.blocks
    in
    let scored = ref [] in
    Array.iteri
      (fun a selected ->
        if selected then begin
          let d, _ = delta_toggle sp z bcost a in
          (* dropping increases cost by [d]; prefer small increase per
             byte freed *)
          scored := (a, -.d /. max 1.0 sp.Sproblem.sizes.(a)) :: !scored
        end)
      z;
    let order =
      List.sort (fun (_, s1) (_, s2) -> compare s2 s1) !scored
      |> List.map fst
    in
    let rec drop = function
      | [] -> ()
      | a :: rest ->
          if z_feasible sp ~budget ~z_rows z then ()
          else begin
            z.(a) <- false;
            drop rest
          end
    in
    drop order;
    z
  end

let local_search ?(jobs = 1) (sp : Sproblem.t) ~budget ~z_rows (z : bool array)
    obj0 =
  let z = Array.copy z in
  let n = Array.length z in
  let bcost =
    Runtime.parallel_map ~jobs
      (fun b -> Sproblem.block_cost_z b z)
      sp.Sproblem.blocks
  in
  let obj = ref obj0 in
  let size = ref (Sproblem.total_size sp z) in
  let improved = ref true in
  let rounds = ref 0 in
  while !improved && !rounds < 6 do
    improved := false;
    incr rounds;
    for a = 0 to n - 1 do
      let fits =
        if z.(a) then true else !size +. sp.Sproblem.sizes.(a) <= budget +. 1e-6
      in
      if fits then begin
        let d, changed = delta_toggle sp z bcost a in
        if d < -1e-6 then begin
          z.(a) <- not z.(a);
          if z_feasible sp ~budget ~z_rows z then begin
            obj := !obj +. d;
            size :=
              (if z.(a) then !size +. sp.Sproblem.sizes.(a)
               else !size -. sp.Sproblem.sizes.(a));
            List.iter (fun (bi, c) -> bcost.(bi) <- c) changed;
            Runtime.Trace.incr tr_ls_moves;
            improved := true
          end
          else z.(a) <- not z.(a)
        end
      end
    done
  done;
  (z, !obj)

(* Greedy benefit/size construction for the initial incumbent. *)
let greedy_initial ?(jobs = 1) (sp : Sproblem.t) ~budget ~z_rows =
  let n = Array.length sp.Sproblem.candidates in
  let empty = Array.make n false in
  let empty_bcost =
    Runtime.parallel_map ~jobs
      (fun b -> Sproblem.block_cost_z b empty)
      sp.Sproblem.blocks
  in
  (* Per-candidate scoring is independent given a private singleton
     selection, so it fans out over the pool. *)
  let scored =
    Runtime.parallel_map ~jobs
      (fun a ->
        let z = Array.make n false in
        z.(a) <- true;
        let benefit = ref (-.sp.Sproblem.ucost.(a)) in
        Array.iter
          (fun bi ->
            let b = sp.Sproblem.blocks.(bi) in
            benefit :=
              !benefit
              +. (b.Sproblem.weight
                  *. (empty_bcost.(bi) -. Sproblem.block_cost_z b z)))
          sp.Sproblem.cand_blocks.(a);
        (a, !benefit /. max 1.0 sp.Sproblem.sizes.(a), !benefit))
      (Array.init n Fun.id)
    |> Array.to_list
    |> List.filter (fun (_, _, ben) -> ben > 0.0)
    |> List.sort (fun (_, r1, _) (_, r2, _) -> compare r2 r1)
  in
  let z = Array.make n false in
  let size = ref 0.0 in
  List.iter
    (fun (a, _, _) ->
      if !size +. sp.Sproblem.sizes.(a) <= budget then begin
        z.(a) <- true;
        if z_feasible sp ~budget ~z_rows z then
          size := !size +. sp.Sproblem.sizes.(a)
        else z.(a) <- false
      end)
    scored;
  z

(* --- The solver --- *)

let solve ?(options = default_options) ?(accept = fun (_ : bool array) -> true)
    (sp : Sproblem.t) ~budget ~(z_rows : Constr.z_row list) =
  let t0 = Runtime.Clock.now () in
  let elapsed () = Runtime.Clock.now () -. t0 in
  let jobs = max 1 options.jobs in
  let core = options.core_guided in
  (* Workload compression rides the core_guided flag so that [false]
     reproduces the PR-6 execution profile exactly (the bench baseline).
     Merging identical blocks preserves every selection's objective, so
     everything downstream — block subproblems, cost evaluations, local
     search — is unchanged except in cost. *)
  let sp = if core then Sproblem.compress sp else sp in
  let count_sproblems k =
    match options.stats with
    | Some st -> Runtime.Stats.add_subproblem_solves st k
    | None -> ()
  in
  let eval z =
    (match options.stats with
    | Some st -> Runtime.Stats.add_cost_evals st 1
    | None -> ());
    Sproblem.eval ~jobs sp z
  in
  let nblocks = Array.length sp.Sproblem.blocks in
  let ncand = Array.length sp.Sproblem.candidates in
  (* forced selections from z rows: mandatory (Ge 1 singleton) and
     forbidden (Le 0 singleton) get special treatment in the subproblems *)
  let forced_one = Array.make ncand false in
  let forced_zero = Array.make ncand false in
  List.iter
    (fun (row : Constr.z_row) ->
      match (row.Constr.row_coeffs, row.Constr.row_cmp) with
      | [ (a, c) ], Constr.Ge when c > 0.0 && row.Constr.row_rhs /. c >= 1.0 ->
          forced_one.(a) <- true
      | [ (a, c) ], Constr.Le when c > 0.0 && row.Constr.row_rhs /. c <= 0.0 ->
          forced_zero.(a) <- true
      | _ -> ())
    z_rows;
  (* per-block multiplier arrays aligned with cands_used *)
  let lam =
    Array.map
      (fun (b : Sproblem.block) ->
        Array.map
          (fun pos ->
            match options.warm with
            | None -> 0.0
            | Some tbl ->
                Option.value ~default:0.0
                  (Hashtbl.find_opt tbl
                     (b.Sproblem.qid, sp.Sproblem.candidates.(pos))))
          b.Sproblem.cands_used)
      sp.Sproblem.blocks
  in
  (* Benefit-based multiplier initialization (one dual-ascent pass).
     With lambda = 0 the z subproblem sees only creation costs, selects
     nothing, and the first bounds are far below the optimum; priced at
     its per-block benefit, each candidate leaves the block roughly
     indifferent while the z knapsack sees creation cost minus capturable
     value — a dual point already close to the "no index beats its own
     savings" equilibrium. *)
  (if core && Option.is_none options.warm then begin
     let empty = Array.make ncand false in
     let empty_bcost =
       Runtime.parallel_map ~jobs
         (fun b -> Sproblem.block_cost_z b empty)
         sp.Sproblem.blocks
     in
     let per_cand =
       Runtime.parallel_map ~jobs
         (fun a ->
           let z1 = Array.make ncand false in
           z1.(a) <- true;
           Array.map
             (fun bi ->
               let b = sp.Sproblem.blocks.(bi) in
               ( bi,
                 pos_in b a,
                 b.Sproblem.weight
                 *. (empty_bcost.(bi) -. Sproblem.block_cost_z b z1) ))
             sp.Sproblem.cand_blocks.(a))
         (Array.init ncand Fun.id)
     in
     Array.iter
       (Array.iter
          (fun (bi, i, ben) -> if ben > 0.0 then lam.(bi).(i) <- ben))
       per_cand
   end);
  (* incumbent — black-box (UDF) constraints gate acceptance: the empty
     selection is the fallback when the heuristics produce only rejected
     candidates (appendix E.5) *)
  let empty = Array.make ncand false in
  let best_z = ref empty in
  let best_obj = ref (if accept empty then eval empty else infinity) in
  (* When the black box rejects a selection, trim it: drop the least
     valuable index (cost increase per byte) and retry — this services
     cardinality-style UDFs and bottoms out at the empty selection. *)
  let trim_to_acceptance z =
    let z = Array.copy z in
    let bcost =
      Runtime.parallel_map ~jobs
        (fun b -> Sproblem.block_cost_z b z)
        sp.Sproblem.blocks
    in
    let any_selected () = Array.exists Fun.id z in
    while (not (accept z)) && any_selected () do
      let best_a = ref (-1) and best_score = ref neg_infinity in
      Array.iteri
        (fun a selected ->
          if selected then begin
            let d, _ = delta_toggle sp z bcost a in
            let score = -.d /. max 1.0 sp.Sproblem.sizes.(a) in
            if score > !best_score then begin
              best_score := score;
              best_a := a
            end
          end)
        z;
      if !best_a >= 0 then begin
        let _, changed = delta_toggle sp z bcost !best_a in
        z.(!best_a) <- false;
        List.iter (fun (bi, c) -> bcost.(bi) <- c) changed
      end
    done;
    z
  in
  let consider z =
    let z =
      if z_feasible sp ~budget ~z_rows z then z
      else repair ~jobs sp ~budget ~z_rows z
    in
    let z = if accept z then z else trim_to_acceptance z in
    if z_feasible sp ~budget ~z_rows z && accept z then begin
      let obj = eval z in
      if obj < !best_obj then begin
        best_z := z;
        best_obj := obj
      end
    end
  in
  (match options.warm_z with
  | None -> ()
  | Some ixs ->
      (* Map the prior selection into this problem's candidate positions;
         indexes no longer in the candidate set are dropped, and the rest
         is repaired if the constraints tightened.  The repair path is
         observable: [solver.warm_repaired] ticks when the prior
         selection needed repair or trimming but was used,
         [solver.warm_rejected] when even the repaired selection was
         unusable. *)
      let want = Hashtbl.create 32 in
      List.iter (fun ix -> Hashtbl.replace want ix ()) ixs;
      let zw = Array.make ncand false in
      Array.iteri
        (fun pos ix ->
          if Hashtbl.mem want ix && not forced_zero.(pos) then zw.(pos) <- true)
        sp.Sproblem.candidates;
      let intact = z_feasible sp ~budget ~z_rows zw && accept zw in
      let zr =
        if z_feasible sp ~budget ~z_rows zw then zw
        else repair ~jobs sp ~budget ~z_rows zw
      in
      let zr = if accept zr then zr else trim_to_acceptance zr in
      if z_feasible sp ~budget ~z_rows zr && accept zr then begin
        if not intact then Runtime.Trace.incr tr_warm_repaired;
        let obj = eval zr in
        if obj < !best_obj then begin
          best_z := zr;
          best_obj := obj
        end
      end
      else Runtime.Trace.incr tr_warm_rejected);
  consider (greedy_initial ~jobs sp ~budget ~z_rows);
  (if !best_obj < infinity then begin
     let ls_z, ls_obj = local_search ~jobs sp ~budget ~z_rows !best_z !best_obj in
     if ls_obj < !best_obj && accept ls_z then begin
       best_z := ls_z;
       best_obj := ls_obj
     end
   end);
  let best_bound = ref neg_infinity in
  let events = ref [] in
  let emit it =
    let e =
      { elapsed = elapsed (); incumbent = !best_obj; bound = !best_bound;
        iteration = it }
    in
    if options.log_events then events := e :: !events;
    options.on_event e
  in
  let theta = ref 2.0 in
  let no_improve = ref 0 in
  let cg_hardened = ref 0 in
  (* Halving the step scale sooner suits the benefit-initialized start:
     the multipliers begin near the equilibrium, so large corrections
     overshoot more than they explore. *)
  let stall_limit = if core then 10 else 20 in
  let w = Array.make ncand 0.0 in
  let usage = Array.make nblocks [] in
  let block_indices = Array.init nblocks Fun.id in
  let iter = ref 0 in
  let gap_ok () =
    !best_bound > neg_infinity
    && !best_obj -. !best_bound
       <= options.gap_tolerance *. (abs_float !best_obj +. 1e-9)
  in
  emit 0;
  (try
     while
       (not (gap_ok ()))
       && !iter < options.max_iters
       && elapsed () < options.time_limit
     do
       incr iter;
       Runtime.Trace.incr tr_iterations;
       (* z-part costs *)
       Array.blit sp.Sproblem.ucost 0 w 0 ncand;
       Array.iteri
         (fun bi (b : Sproblem.block) ->
           Array.iteri
             (fun i pos -> w.(pos) <- w.(pos) -. lam.(bi).(i))
             b.Sproblem.cands_used)
         sp.Sproblem.blocks;
       (* block subproblems: independent given lam, so fan them over the
          pool; the bound accumulation below stays a fixed left-to-right
          sum, keeping the subgradient trajectory identical at every job
          count *)
       let sub =
         Runtime.parallel_map ~jobs
           (fun bi ->
             block_subproblem sp.Sproblem.blocks.(bi) lam.(bi)
               ~excluded:forced_zero)
           block_indices
       in
       count_sproblems nblocks;
       Runtime.Trace.add tr_block_solves nblocks;
       let lower = ref sp.Sproblem.fixed in
       Array.iteri
         (fun bi (v, used) ->
           usage.(bi) <- used;
           lower := !lower +. v)
         sub;
       let base = !lower in
       let zval, zfrac, zdual, zstatus =
         if core && z_rows = [] then
           let v, z, y =
             greedy_z_with_duals ~w ~sizes:sp.Sproblem.sizes ~budget
               ~forced_one ~forced_zero
           in
           (* analytic knapsack optimum: proven by construction *)
           (v, z, Some y, Lp.Simplex.Optimal)
         else
           let v, z, s =
             z_subproblem ~backend:options.backend ~w ~sizes:sp.Sproblem.sizes
               ~budget ~z_rows ~forced_one ~forced_zero
           in
           (v, z, None, s)
       in
       let zproven = zstatus = Lp.Simplex.Optimal in
       if Runtime.Fx.is_inf zval then begin
         (* The z polytope is infeasible.  If variables were hardened the
            restriction is only valid for solutions at least as good as
            the incumbent — emptiness then proves the incumbent optimal,
            not the problem infeasible. *)
         best_bound := (if !cg_hardened > 0 then !best_obj else infinity);
         raise Exit
       end;
       let lower = base +. zval in
       (* An Iter_limit z value must not advance the proven bound (its
          rounding above still feeds the primal side); stalling the
          bound also halves theta on schedule, which is what gives the
          truncated solve a chance to converge next round. *)
       if zproven && lower > !best_bound +. 1e-9 then begin
         best_bound :=
           (lower
           [@bound.sink bound
               "the advertised Lagrangian lower bound; an unproven z \
                value here fabricates the reported gap"]);
         no_improve := 0
       end
       else begin
         incr no_improve;
         if !no_improve > stall_limit then begin
           theta := !theta /. 2.0;
           no_improve := 0
         end
       end;
       (* Core-guided tightening against the incumbent [u].  Both moves
          rest on one fact: forcing a variable to its opposite bound
          costs at least the knapsack reduced cost, so [lower + d_a > u]
          proves every solution at least as good as the incumbent agrees
          with the greedy on that variable.  The incumbent itself always
          satisfies the accumulated fixings (its value is [u], not
          above), so the restricted region stays nonempty and the final
          [min bound obj] stays a true lower bound. *)
       (match zdual with
       | Some y when zproven && !best_obj < infinity ->
           let u = !best_obj in
           let margin = 1e-6 *. (1.0 +. abs_float u) in
           let rc a = w.(a) -. (y *. max 1.0 sp.Sproblem.sizes.(a)) in
           for a = 0 to ncand - 1 do
             if (not forced_one.(a)) && not forced_zero.(a) then
               if Runtime.Fx.is_zero zfrac.(a) && lower +. rc a > u +. margin
               then begin
                 forced_zero.(a) <- true;
                 incr cg_hardened;
                 Runtime.Trace.incr tr_cg_hardened
               end
               else if
                 Runtime.Fx.exactly 1.0 zfrac.(a)
                 && lower -. rc a > u +. margin
               then begin
                 forced_one.(a) <- true;
                 incr cg_hardened;
                 Runtime.Trace.incr tr_cg_hardened
               end
           done;
           (* Threshold binary search: to prove "optimum > t", fix every
              variable whose reduced cost already forbids a solution of
              value <= t from disagreeing with the greedy, re-price the
              knapsack under those fixings, and check that even then the
              bound clears t.  Solutions violating a fixing cost more
              than t by construction, so the probe covers all of them. *)
           if
             u -. !best_bound
             > options.gap_tolerance *. (abs_float u +. 1e-9)
           then begin
             let lo = ref (max !best_bound lower) and hi = ref u in
             let pf0 = Array.make ncand false in
             let pf1 = Array.make ncand false in
             for _ = 1 to 8 do
               if !hi -. !lo > margin then begin
                 let t = !lo +. (0.5 *. (!hi -. !lo)) in
                 Array.blit forced_zero 0 pf0 0 ncand;
                 Array.blit forced_one 0 pf1 0 ncand;
                 for a = 0 to ncand - 1 do
                   if (not pf0.(a)) && not pf1.(a) then
                     if Runtime.Fx.is_zero zfrac.(a) && lower +. rc a > t then
                       pf0.(a) <- true
                     else if
                       Runtime.Fx.exactly 1.0 zfrac.(a) && lower -. rc a > t
                     then pf1.(a) <- true
                 done;
                 let zv, _, _ =
                   greedy_z_with_duals ~w ~sizes:sp.Sproblem.sizes ~budget
                     ~forced_one:pf1 ~forced_zero:pf0
                 in
                 if base +. zv > t then lo := t else hi := t
               end
             done;
             if !lo > !best_bound +. 1e-9 then begin
               best_bound :=
                 (!lo
                 [@bound.sink bound
                     "threshold-probe bound promotion; valid only over \
                      proven re-priced knapsack values"]);
               no_improve := 0
             end
           end
       | _ -> ());
       (* Periodic integer z subproblem through branch and bound: a
          tighter bound component than the LP knapsack.  Only the proven
          bound feeds back — the primal side is left exactly as in the
          plain loop, so switching [core_guided] changes how fast the
          bound closes, never which incumbents are found. *)
       (if core && !iter mod 7 = 3 && not (gap_ok ()) then begin
          let zb, _zx =
            z_bip ~jobs ~w ~sizes:sp.Sproblem.sizes ~budget ~z_rows
              ~forced_one ~forced_zero
          in
          count_sproblems 1;
          if Runtime.Fx.is_inf zb then begin
            best_bound := (if !cg_hardened > 0 then !best_obj else infinity);
            raise Exit
          end;
          if Runtime.Fx.is_finite zb && base +. zb > !best_bound +. 1e-9
          then begin
            best_bound :=
              (base +. zb
              [@bound.sink bound
                  "integer-z bound promotion; zb is Branch_bound's proven \
                   dual bound field"]);
            no_improve := 0
          end
        end);
       (* primal: round the z subproblem, enrich with the most-used
          candidates up to a small budget overshoot, repair, occasionally
          local-search.  The core-guided path runs this on alternate
          iterations only — the incumbent settles within a handful of
          iterations while rounding plus evaluation rivals the block
          solves in cost — with the integer z subproblem filling in on
          its own schedule. *)
       if (not core) || !iter <= 4 || !iter mod 2 = 1 then begin
       let zr = Array.map (fun v -> v > 0.999) zfrac in
       let counts = Array.make ncand 0 in
       Array.iter (List.iter (fun a -> counts.(a) <- counts.(a) + 1)) usage;
       let used_order =
         List.init ncand Fun.id
         |> List.filter (fun a -> counts.(a) > 0 && not zr.(a))
         |> List.sort (fun a b -> compare counts.(b) counts.(a))
       in
       let size_so_far = ref (Sproblem.total_size sp zr) in
       List.iter
         (fun a ->
           if !size_so_far +. sp.Sproblem.sizes.(a) <= 1.3 *. budget then begin
             zr.(a) <- true;
             size_so_far := !size_so_far +. sp.Sproblem.sizes.(a)
           end)
         used_order;
       Array.iteri (fun a f -> if f then zr.(a) <- false) forced_zero;
       let zr = repair ~jobs sp ~budget ~z_rows zr in
       let obj = eval zr in
       let candidate_z, candidate_obj =
         if
           obj < !best_obj *. 1.02
           && (!iter mod options.local_search_period = 0 || obj < !best_obj)
         then local_search ~jobs sp ~budget ~z_rows zr obj
         else (zr, obj)
       in
       (if accept candidate_z then begin
          if candidate_obj < !best_obj -. 1e-9 then begin
            best_z := candidate_z;
            best_obj := candidate_obj
          end
        end
        else begin
          (* trim toward the black box and take the result if it wins *)
          let zt = trim_to_acceptance candidate_z in
          if accept zt then begin
            let objt = eval zt in
            if objt < !best_obj -. 1e-9 then begin
              best_z := zt;
              best_obj := objt
            end
          end
        end)
       end;
       (* subgradient step *)
       let gnorm2 = ref 0.0 in
       Array.iteri
         (fun bi (b : Sproblem.block) ->
           Array.iteri
             (fun i pos ->
               let u = if List.mem pos usage.(bi) then 1.0 else 0.0 in
               let g = u -. zfrac.(pos) in
               ignore i;
               ignore b;
               gnorm2 := !gnorm2 +. (g *. g))
             b.Sproblem.cands_used)
         sp.Sproblem.blocks;
       if !gnorm2 > 1e-12 then begin
         let ub_ref =
           if !best_obj < infinity then !best_obj
           else eval (Array.make ncand false)
         in
         let step = !theta *. (ub_ref -. lower) /. !gnorm2 in
         let step = max 0.0 step in
         Array.iteri
           (fun bi (b : Sproblem.block) ->
             Array.iteri
               (fun i pos ->
                 let u = if List.mem pos usage.(bi) then 1.0 else 0.0 in
                 let g = u -. zfrac.(pos) in
                 lam.(bi).(i) <- max 0.0 (lam.(bi).(i) +. (step *. g)))
               b.Sproblem.cands_used)
           sp.Sproblem.blocks
       end;
       emit !iter
     done
   with Exit -> ());
  (* persist multipliers for warm starts *)
  let tbl = Hashtbl.create 1024 in
  Array.iteri
    (fun bi (b : Sproblem.block) ->
      Array.iteri
        (fun i pos ->
          if Runtime.Fx.nonzero lam.(bi).(i) then
            Hashtbl.replace tbl
              (b.Sproblem.qid, sp.Sproblem.candidates.(pos))
              lam.(bi).(i))
        b.Sproblem.cands_used)
    sp.Sproblem.blocks;
  emit !iter;
  {
    z = !best_z;
    obj =
      (!best_obj
      [@bound.sink certified_output
          "reported incumbent cost: must come from true evaluations of \
           concrete configurations, never from a relaxation iterate"]);
    bound =
      (min !best_bound !best_obj
      [@bound.sink certified_output
          "reported Lagrangian bound: advisors and the gap certificate \
           derive the optimality claim from it"]);
    iterations = !iter;
    events = !events;
    multipliers = tbl;
  }
