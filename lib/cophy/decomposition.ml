(* Structure-aware BIP solver for CoPhy instances, standing in for an
   industrial solver at scales where our generic simplex-based
   branch-and-bound would be too slow.

   The BIP of Theorem 1 has a block structure: the only coupling between
   statements is through the z variables (the linking rows x_qkia <= z_a
   and the constraints over z).  We apply Lagrangian decomposition — the
   same relaxation the paper's own Solver applies before calling the BIP
   solver (Fig. 3) — with multipliers on the linking rows:

   - per-block subproblems pick the cheapest (template, slot choices)
     with candidate usage priced at gamma + lambda, in closed form;
   - the z subproblem is a {0,1} knapsack over the storage budget (plus
     any linear z constraints), solved as an LP for a valid lower bound;
   - subgradient ascent tightens the bound; rounding plus incremental
     local search produce incumbents.

   The solver streams (elapsed, incumbent, bound) events — the feedback
   channel behind CoPhy's early termination — and accepts warm-started
   multipliers, which is what makes incremental re-tuning and Pareto
   sweeps fast (Figs. 6b, 6c). *)

type event = {
  elapsed : float;
  incumbent : float;
  bound : float;
  iteration : int;
}

(* Multipliers keyed by statement id and candidate index, so they survive
   re-building the problem with more candidates or changed constraints. *)
type multipliers = (int * Storage.Index.t, float) Hashtbl.t

type options = {
  max_iters : int;
  time_limit : float;
  gap_tolerance : float;
  on_event : event -> unit;
  log_events : bool;
  warm : multipliers option;
  (* Prior incumbent selection, by index (so it survives candidate-set
     changes between re-solves).  Considered before the greedy initial:
     repaired if the budget shrank, so a warm restart is never worse
     than the repaired prior incumbent. *)
  warm_z : Storage.Index.t list option;
  local_search_period : int;
  jobs : int;
  stats : Runtime.Stats.t option;
  backend : Lp.Backend.t;  (* LP backend for the z subproblem *)
}

let default_options =
  {
    max_iters = 400;
    time_limit = infinity;
    gap_tolerance = 0.05;     (* the paper's default CPLEX setting *)
    on_event = ignore;
    log_events = false;
    warm = None;
    warm_z = None;
    local_search_period = 10;
    jobs = 1;
    stats = None;
    backend = Lp.Backend.default;
  }

type result = {
  z : bool array;
  obj : float;
  bound : float;
  iterations : int;
  events : event list;      (* reverse chronological *)
  multipliers : multipliers;
}

(* --- Block subproblem --- *)

(* Trace probes: single [Atomic.get] each when tracing is off. *)
let tr_iterations = Runtime.Trace.counter "decomposition.iterations"
let tr_block_solves = Runtime.Trace.counter "decomposition.block_solves"
let tr_ls_moves = Runtime.Trace.counter "decomposition.local_search_moves"

(* Position of candidate [cand] in a block's sorted [cands_used] array.
   A read-only binary search (rather than a shared scratch position map)
   keeps the block subproblems free of shared mutable state, so they can
   run on separate domains. *)
let pos_in block cand =
  let cands_used = block.Sproblem.cands_used in
  let lo = ref 0 and hi = ref (Array.length cands_used - 1) in
  let res = ref (-1) in
  while !res < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = cands_used.(mid) in
    if c = cand then res := mid
    else if c < cand then lo := mid + 1
    else hi := mid - 1
  done;
  assert (!res >= 0);
  !res

(* Cheapest (template, choices) with usage priced by lam; returns the
   value and the set of candidates used. *)
let block_subproblem (b : Sproblem.block) (lam : float array) ~excluded =
  let best = ref infinity in
  let best_used = ref [] in
  Array.iter
    (fun (tpl : Sproblem.template) ->
      let total = ref (b.Sproblem.weight *. tpl.Sproblem.beta) in
      let used = ref [] in
      Array.iter
        (fun slot ->
          let m = ref infinity and pick = ref (-1) in
          Array.iter
            (fun { Sproblem.cand; gamma } ->
              if cand < 0 then begin
                let c = b.Sproblem.weight *. gamma in
                if c < !m then begin
                  m := c;
                  pick := -1
                end
              end
              else if not excluded.(cand) then begin
                let c =
                  (b.Sproblem.weight *. gamma) +. lam.(pos_in b cand)
                in
                if c < !m then begin
                  m := c;
                  pick := cand
                end
              end)
            slot;
          total := !total +. !m;
          if !pick >= 0 then used := !pick :: !used)
        tpl.Sproblem.choices;
      if !total < !best then begin
        best := !total;
        best_used := !used
      end)
    b.Sproblem.templates;
  (!best, !best_used)

(* --- z subproblem --- *)

(* min sum w_a z_a  s.t.  sizes.z <= budget, extra z rows, 0 <= z <= 1.
   Without extra rows this is a fractional knapsack solved greedily;
   otherwise we hand the small LP to the simplex. *)
let z_subproblem ~backend ~w ~(sizes : float array) ~budget
    ~(z_rows : Constr.z_row list) ~forced_one ~forced_zero =
  let n = Array.length w in
  if z_rows = [] then begin
    let z = Array.make n 0.0 in
    let value = ref 0.0 in
    let cap = ref budget in
    (* forced selections first *)
    for a = 0 to n - 1 do
      if forced_one.(a) then begin
        z.(a) <- 1.0;
        value := !value +. w.(a);
        cap := !cap -. sizes.(a)
      end
    done;
    let order =
      List.init n Fun.id
      |> List.filter (fun a ->
             (not forced_one.(a)) && (not forced_zero.(a)) && w.(a) < 0.0)
      |> List.sort (fun a b ->
             Float.compare
               (w.(a) /. max 1.0 sizes.(a))
               (w.(b) /. max 1.0 sizes.(b)))
    in
    List.iter
      (fun a ->
        if !cap > 0.0 then begin
          let frac = min 1.0 (!cap /. max 1.0 sizes.(a)) in
          z.(a) <- frac;
          value := !value +. (frac *. w.(a));
          cap := !cap -. (frac *. sizes.(a))
        end)
      order;
    (!value, z)
  end
  else begin
    let p = Lp.Problem.create () in
    let vars =
      Array.init n (fun a ->
          let lb = if forced_one.(a) then 1.0 else 0.0 in
          let ub = if forced_zero.(a) then 0.0 else 1.0 in
          Lp.Problem.add_var ~lb ~ub:(max lb ub) ~obj:w.(a) p)
    in
    if budget < infinity then
      ignore
        (Lp.Problem.add_row p
           (Array.to_list (Array.mapi (fun a v -> (v, sizes.(a))) vars))
           Lp.Problem.Le budget);
    List.iter
      (fun (row : Constr.z_row) ->
        let sense =
          match row.Constr.row_cmp with
          | Constr.Le -> Lp.Problem.Le
          | Constr.Ge -> Lp.Problem.Ge
          | Constr.Eq -> Lp.Problem.Eq
        in
        ignore
          (Lp.Problem.add_row p
             (List.map (fun (a, c) -> (vars.(a), c)) row.Constr.row_coeffs)
             sense row.Constr.row_rhs))
      z_rows;
    (* Presolve is disabled here: its bound tightening and row scaling
       can land on a different optimal vertex of this (often degenerate)
       LP, and the fractional vertex feeds the rounding heuristic.  The
       raw kernels run the same pricing loop and agree on the optimum
       value, but their floating-point arithmetic differs, so a
       near-tolerance pricing tie can still resolve to a different
       optimal vertex between backends — recommendations agree on cost,
       not structurally on the chosen vertex. *)
    let r =
      Lp.Backend.solve { backend with Lp.Backend.presolve = false } p
    in
    match r.Lp.Simplex.status with
    | Lp.Simplex.Optimal | Lp.Simplex.Iter_limit ->
        (r.Lp.Simplex.obj, Array.init n (fun a -> r.Lp.Simplex.x.(vars.(a))))
    | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded ->
        (* infeasible z polytope: signal with +inf bound *)
        (infinity, Array.make n 0.0)
  end

(* --- Feasibility repair and local search --- *)

let z_feasible (sp : Sproblem.t) ~budget ~z_rows (z : bool array) =
  Sproblem.total_size sp z <= budget +. 1e-6
  && List.for_all (fun row -> Constr.row_holds row z) z_rows

(* Incremental objective deltas: only blocks referencing the toggled
   candidate change. *)
let delta_toggle (sp : Sproblem.t) (z : bool array) (bcost : float array) a =
  let delta =
    ref (if z.(a) then -.sp.Sproblem.ucost.(a) else sp.Sproblem.ucost.(a))
  in
  z.(a) <- not z.(a);
  let changed = ref [] in
  Array.iter
    (fun bi ->
      let b = sp.Sproblem.blocks.(bi) in
      let c = Sproblem.block_cost_z b z in
      delta := !delta +. (b.Sproblem.weight *. (c -. bcost.(bi)));
      changed := (bi, c) :: !changed)
    sp.Sproblem.cand_blocks.(a);
  z.(a) <- not z.(a);
  (!delta, !changed)

(* Drop selected candidates (smallest cost increase per byte freed first)
   until feasible.  One delta evaluation per selected candidate against
   the starting state, then a greedy sweep — an approximation that keeps
   repair linear, refined later by the local search. *)
let repair ?(jobs = 1) (sp : Sproblem.t) ~budget ~z_rows (z : bool array) =
  let z = Array.copy z in
  if z_feasible sp ~budget ~z_rows z then z
  else begin
    let bcost =
      Runtime.parallel_map ~jobs
        (fun b -> Sproblem.block_cost_z b z)
        sp.Sproblem.blocks
    in
    let scored = ref [] in
    Array.iteri
      (fun a selected ->
        if selected then begin
          let d, _ = delta_toggle sp z bcost a in
          (* dropping increases cost by [d]; prefer small increase per
             byte freed *)
          scored := (a, -.d /. max 1.0 sp.Sproblem.sizes.(a)) :: !scored
        end)
      z;
    let order =
      List.sort (fun (_, s1) (_, s2) -> compare s2 s1) !scored
      |> List.map fst
    in
    let rec drop = function
      | [] -> ()
      | a :: rest ->
          if z_feasible sp ~budget ~z_rows z then ()
          else begin
            z.(a) <- false;
            drop rest
          end
    in
    drop order;
    z
  end

let local_search ?(jobs = 1) (sp : Sproblem.t) ~budget ~z_rows (z : bool array)
    obj0 =
  let z = Array.copy z in
  let n = Array.length z in
  let bcost =
    Runtime.parallel_map ~jobs
      (fun b -> Sproblem.block_cost_z b z)
      sp.Sproblem.blocks
  in
  let obj = ref obj0 in
  let size = ref (Sproblem.total_size sp z) in
  let improved = ref true in
  let rounds = ref 0 in
  while !improved && !rounds < 6 do
    improved := false;
    incr rounds;
    for a = 0 to n - 1 do
      let fits =
        if z.(a) then true else !size +. sp.Sproblem.sizes.(a) <= budget +. 1e-6
      in
      if fits then begin
        let d, changed = delta_toggle sp z bcost a in
        if d < -1e-6 then begin
          z.(a) <- not z.(a);
          if z_feasible sp ~budget ~z_rows z then begin
            obj := !obj +. d;
            size :=
              (if z.(a) then !size +. sp.Sproblem.sizes.(a)
               else !size -. sp.Sproblem.sizes.(a));
            List.iter (fun (bi, c) -> bcost.(bi) <- c) changed;
            Runtime.Trace.incr tr_ls_moves;
            improved := true
          end
          else z.(a) <- not z.(a)
        end
      end
    done
  done;
  (z, !obj)

(* Greedy benefit/size construction for the initial incumbent. *)
let greedy_initial ?(jobs = 1) (sp : Sproblem.t) ~budget ~z_rows =
  let n = Array.length sp.Sproblem.candidates in
  let empty = Array.make n false in
  let empty_bcost =
    Runtime.parallel_map ~jobs
      (fun b -> Sproblem.block_cost_z b empty)
      sp.Sproblem.blocks
  in
  (* Per-candidate scoring is independent given a private singleton
     selection, so it fans out over the pool. *)
  let scored =
    Runtime.parallel_map ~jobs
      (fun a ->
        let z = Array.make n false in
        z.(a) <- true;
        let benefit = ref (-.sp.Sproblem.ucost.(a)) in
        Array.iter
          (fun bi ->
            let b = sp.Sproblem.blocks.(bi) in
            benefit :=
              !benefit
              +. (b.Sproblem.weight
                  *. (empty_bcost.(bi) -. Sproblem.block_cost_z b z)))
          sp.Sproblem.cand_blocks.(a);
        (a, !benefit /. max 1.0 sp.Sproblem.sizes.(a), !benefit))
      (Array.init n Fun.id)
    |> Array.to_list
    |> List.filter (fun (_, _, ben) -> ben > 0.0)
    |> List.sort (fun (_, r1, _) (_, r2, _) -> compare r2 r1)
  in
  let z = Array.make n false in
  let size = ref 0.0 in
  List.iter
    (fun (a, _, _) ->
      if !size +. sp.Sproblem.sizes.(a) <= budget then begin
        z.(a) <- true;
        if z_feasible sp ~budget ~z_rows z then
          size := !size +. sp.Sproblem.sizes.(a)
        else z.(a) <- false
      end)
    scored;
  z

(* --- The solver --- *)

let solve ?(options = default_options) ?(accept = fun (_ : bool array) -> true)
    (sp : Sproblem.t) ~budget ~(z_rows : Constr.z_row list) =
  let t0 = Runtime.Clock.now () in
  let elapsed () = Runtime.Clock.now () -. t0 in
  let jobs = max 1 options.jobs in
  let count_sproblems k =
    match options.stats with
    | Some st -> Runtime.Stats.add_subproblem_solves st k
    | None -> ()
  in
  let eval z =
    (match options.stats with
    | Some st -> Runtime.Stats.add_cost_evals st 1
    | None -> ());
    Sproblem.eval ~jobs sp z
  in
  let nblocks = Array.length sp.Sproblem.blocks in
  let ncand = Array.length sp.Sproblem.candidates in
  (* forced selections from z rows: mandatory (Ge 1 singleton) and
     forbidden (Le 0 singleton) get special treatment in the subproblems *)
  let forced_one = Array.make ncand false in
  let forced_zero = Array.make ncand false in
  List.iter
    (fun (row : Constr.z_row) ->
      match (row.Constr.row_coeffs, row.Constr.row_cmp) with
      | [ (a, c) ], Constr.Ge when c > 0.0 && row.Constr.row_rhs /. c >= 1.0 ->
          forced_one.(a) <- true
      | [ (a, c) ], Constr.Le when c > 0.0 && row.Constr.row_rhs /. c <= 0.0 ->
          forced_zero.(a) <- true
      | _ -> ())
    z_rows;
  (* per-block multiplier arrays aligned with cands_used *)
  let lam =
    Array.map
      (fun (b : Sproblem.block) ->
        Array.map
          (fun pos ->
            match options.warm with
            | None -> 0.0
            | Some tbl ->
                Option.value ~default:0.0
                  (Hashtbl.find_opt tbl
                     (b.Sproblem.qid, sp.Sproblem.candidates.(pos))))
          b.Sproblem.cands_used)
      sp.Sproblem.blocks
  in
  (* incumbent — black-box (UDF) constraints gate acceptance: the empty
     selection is the fallback when the heuristics produce only rejected
     candidates (appendix E.5) *)
  let empty = Array.make ncand false in
  let best_z = ref empty in
  let best_obj = ref (if accept empty then eval empty else infinity) in
  (* When the black box rejects a selection, trim it: drop the least
     valuable index (cost increase per byte) and retry — this services
     cardinality-style UDFs and bottoms out at the empty selection. *)
  let trim_to_acceptance z =
    let z = Array.copy z in
    let bcost =
      Runtime.parallel_map ~jobs
        (fun b -> Sproblem.block_cost_z b z)
        sp.Sproblem.blocks
    in
    let any_selected () = Array.exists Fun.id z in
    while (not (accept z)) && any_selected () do
      let best_a = ref (-1) and best_score = ref neg_infinity in
      Array.iteri
        (fun a selected ->
          if selected then begin
            let d, _ = delta_toggle sp z bcost a in
            let score = -.d /. max 1.0 sp.Sproblem.sizes.(a) in
            if score > !best_score then begin
              best_score := score;
              best_a := a
            end
          end)
        z;
      if !best_a >= 0 then begin
        let _, changed = delta_toggle sp z bcost !best_a in
        z.(!best_a) <- false;
        List.iter (fun (bi, c) -> bcost.(bi) <- c) changed
      end
    done;
    z
  in
  let consider z =
    let z =
      if z_feasible sp ~budget ~z_rows z then z
      else repair ~jobs sp ~budget ~z_rows z
    in
    let z = if accept z then z else trim_to_acceptance z in
    if z_feasible sp ~budget ~z_rows z && accept z then begin
      let obj = eval z in
      if obj < !best_obj then begin
        best_z := z;
        best_obj := obj
      end
    end
  in
  (match options.warm_z with
  | None -> ()
  | Some ixs ->
      (* Map the prior selection into this problem's candidate positions;
         indexes no longer in the candidate set are dropped, and
         [consider] repairs the rest if the constraints tightened. *)
      let want = Hashtbl.create 32 in
      List.iter (fun ix -> Hashtbl.replace want ix ()) ixs;
      let zw = Array.make ncand false in
      Array.iteri
        (fun pos ix ->
          if Hashtbl.mem want ix && not forced_zero.(pos) then zw.(pos) <- true)
        sp.Sproblem.candidates;
      consider zw);
  consider (greedy_initial ~jobs sp ~budget ~z_rows);
  (if !best_obj < infinity then begin
     let ls_z, ls_obj = local_search ~jobs sp ~budget ~z_rows !best_z !best_obj in
     if ls_obj < !best_obj && accept ls_z then begin
       best_z := ls_z;
       best_obj := ls_obj
     end
   end);
  let best_bound = ref neg_infinity in
  let events = ref [] in
  let emit it =
    let e =
      { elapsed = elapsed (); incumbent = !best_obj; bound = !best_bound;
        iteration = it }
    in
    if options.log_events then events := e :: !events;
    options.on_event e
  in
  let theta = ref 2.0 in
  let no_improve = ref 0 in
  let w = Array.make ncand 0.0 in
  let usage = Array.make nblocks [] in
  let block_indices = Array.init nblocks Fun.id in
  let iter = ref 0 in
  let gap_ok () =
    !best_bound > neg_infinity
    && !best_obj -. !best_bound
       <= options.gap_tolerance *. (abs_float !best_obj +. 1e-9)
  in
  emit 0;
  (try
     while
       (not (gap_ok ()))
       && !iter < options.max_iters
       && elapsed () < options.time_limit
     do
       incr iter;
       Runtime.Trace.incr tr_iterations;
       (* z-part costs *)
       Array.blit sp.Sproblem.ucost 0 w 0 ncand;
       Array.iteri
         (fun bi (b : Sproblem.block) ->
           Array.iteri
             (fun i pos -> w.(pos) <- w.(pos) -. lam.(bi).(i))
             b.Sproblem.cands_used)
         sp.Sproblem.blocks;
       (* block subproblems: independent given lam, so fan them over the
          pool; the bound accumulation below stays a fixed left-to-right
          sum, keeping the subgradient trajectory identical at every job
          count *)
       let sub =
         Runtime.parallel_map ~jobs
           (fun bi ->
             block_subproblem sp.Sproblem.blocks.(bi) lam.(bi)
               ~excluded:forced_zero)
           block_indices
       in
       count_sproblems nblocks;
       Runtime.Trace.add tr_block_solves nblocks;
       let lower = ref sp.Sproblem.fixed in
       Array.iteri
         (fun bi (v, used) ->
           usage.(bi) <- used;
           lower := !lower +. v)
         sub;
       let zval, zfrac =
         z_subproblem ~backend:options.backend ~w ~sizes:sp.Sproblem.sizes
           ~budget ~z_rows ~forced_one ~forced_zero
       in
       if Runtime.Fx.is_inf zval then begin
         (* z polytope infeasible *)
         best_bound := infinity;
         raise Exit
       end;
       let lower = !lower +. zval in
       if lower > !best_bound +. 1e-9 then begin
         best_bound := lower;
         no_improve := 0
       end
       else begin
         incr no_improve;
         if !no_improve > 20 then begin
           theta := !theta /. 2.0;
           no_improve := 0
         end
       end;
       (* primal: round the z subproblem, enrich with the most-used
          candidates up to a small budget overshoot, repair, occasionally
          local-search *)
       let zr = Array.map (fun v -> v > 0.999) zfrac in
       let counts = Array.make ncand 0 in
       Array.iter (List.iter (fun a -> counts.(a) <- counts.(a) + 1)) usage;
       let used_order =
         List.init ncand Fun.id
         |> List.filter (fun a -> counts.(a) > 0 && not zr.(a))
         |> List.sort (fun a b -> compare counts.(b) counts.(a))
       in
       let size_so_far = ref (Sproblem.total_size sp zr) in
       List.iter
         (fun a ->
           if !size_so_far +. sp.Sproblem.sizes.(a) <= 1.3 *. budget then begin
             zr.(a) <- true;
             size_so_far := !size_so_far +. sp.Sproblem.sizes.(a)
           end)
         used_order;
       Array.iteri (fun a f -> if f then zr.(a) <- false) forced_zero;
       let zr = repair ~jobs sp ~budget ~z_rows zr in
       let obj = eval zr in
       let candidate_z, candidate_obj =
         if
           obj < !best_obj *. 1.02
           && (!iter mod options.local_search_period = 0 || obj < !best_obj)
         then local_search ~jobs sp ~budget ~z_rows zr obj
         else (zr, obj)
       in
       (if accept candidate_z then begin
          if candidate_obj < !best_obj -. 1e-9 then begin
            best_z := candidate_z;
            best_obj := candidate_obj
          end
        end
        else begin
          (* trim toward the black box and take the result if it wins *)
          let zt = trim_to_acceptance candidate_z in
          if accept zt then begin
            let objt = eval zt in
            if objt < !best_obj -. 1e-9 then begin
              best_z := zt;
              best_obj := objt
            end
          end
        end);
       (* subgradient step *)
       let gnorm2 = ref 0.0 in
       Array.iteri
         (fun bi (b : Sproblem.block) ->
           Array.iteri
             (fun i pos ->
               let u = if List.mem pos usage.(bi) then 1.0 else 0.0 in
               let g = u -. zfrac.(pos) in
               ignore i;
               ignore b;
               gnorm2 := !gnorm2 +. (g *. g))
             b.Sproblem.cands_used)
         sp.Sproblem.blocks;
       if !gnorm2 > 1e-12 then begin
         let ub_ref =
           if !best_obj < infinity then !best_obj
           else eval (Array.make ncand false)
         in
         let step = !theta *. (ub_ref -. lower) /. !gnorm2 in
         let step = max 0.0 step in
         Array.iteri
           (fun bi (b : Sproblem.block) ->
             Array.iteri
               (fun i pos ->
                 let u = if List.mem pos usage.(bi) then 1.0 else 0.0 in
                 let g = u -. zfrac.(pos) in
                 lam.(bi).(i) <- max 0.0 (lam.(bi).(i) +. (step *. g)))
               b.Sproblem.cands_used)
           sp.Sproblem.blocks
       end;
       emit !iter
     done
   with Exit -> ());
  (* persist multipliers for warm starts *)
  let tbl = Hashtbl.create 1024 in
  Array.iteri
    (fun bi (b : Sproblem.block) ->
      Array.iteri
        (fun i pos ->
          if Runtime.Fx.nonzero lam.(bi).(i) then
            Hashtbl.replace tbl
              (b.Sproblem.qid, sp.Sproblem.candidates.(pos))
              lam.(bi).(i))
        b.Sproblem.cands_used)
    sp.Sproblem.blocks;
  emit !iter;
  {
    z = !best_z;
    obj = !best_obj;
    bound = min !best_bound !best_obj;
    iterations = !iter;
    events = !events;
    multipliers = tbl;
  }
