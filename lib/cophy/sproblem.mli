(** The structured form of the CoPhy BIP (Theorem 1): per statement
    (block), per INUM template, the internal cost beta and per-slot
    admissible (candidate, gamma) choices — losslessly pruned (a slot
    choice is dropped only when its gamma is infinite or no better than
    the no-index gamma; the candidate's z variable always survives).

    Both solver paths consume this structure: {!to_lp} materializes the
    explicit BIP for simplex + branch-and-bound, while {!Decomposition}
    exploits the block structure directly. *)

type slot_choice = { cand : int; gamma : float }
(** [cand = -1] is the no-index choice. *)

type template = {
  beta : float;
  choices : slot_choice array array;  (** per slot; no-index entry first *)
}

type block = {
  qid : int;
  weight : float;  (** f_q *)
  templates : template array;
  cands_used : int array;  (** candidate positions in this block, sorted *)
}

type t = {
  schema : Catalog.Schema.t;
  candidates : Storage.Index.t array;
  sizes : float array;  (** bytes *)
  ucost : float array;  (** weighted update-maintenance cost per candidate *)
  fixed : float;  (** weighted base-update costs (c_q sums) *)
  probe_regret : float;
      (** certified INUM probe regret at build time: the objective
          surface encoded by [blocks] sits above the exhaustive-probing
          surface by at most this much, at any selection (zero when the
          caches were built with an unlimited probe budget, or fully
          refined) *)
  blocks : block array;
  cand_blocks : int array array;  (** candidate -> referencing blocks *)
}

val num_candidates : t -> int
val num_blocks : t -> int

(** Number of (y, x, z) variables of the materialized BIP — the paper's
    measure of compactness (grows linearly with the input). *)
val variable_count : t -> int

(** Build from an INUM workload cache and a candidate set.
    [prune = false] disables the lossless slot dominance pruning
    (ablation only). *)
val build :
  ?prune:bool ->
  Optimizer.Whatif.env ->
  Inum.workload_cache ->
  Storage.Index.t array ->
  t

(** Workload compression: statements with identical cost structure
    (equal [templates] and [cands_used]) are interchangeable under every
    selection, so each group collapses into its first member with the
    summed weight.  Every selection's objective is preserved (up to float
    re-association); merged statements' [qid]s disappear from [blocks].
    Homogeneous workloads shrink by an order of magnitude, which is what
    makes the decomposition's per-iteration cost independent of workload
    repetition. *)
val compress : t -> t

(** Query-cost part of one block given a selection. *)
val block_cost_z : block -> bool array -> float

(** Full objective of a selection (query costs + maintenance + fixed).
    [jobs] fans the per-block cost evaluations over the domain pool; the
    reduction order is fixed, so the value is identical at every job
    count (default [1] = fully sequential). *)
val eval : ?jobs:int -> t -> bool array -> float

(** Total size in bytes of the selected candidates. *)
val total_size : t -> bool array -> float

val config_of : t -> bool array -> Storage.Config.t
val z_of_config : t -> Storage.Config.t -> bool array

type lp_vars = {
  z_var : int array;
  y_var : (int * int, int) Hashtbl.t;
  x_var : (int * int * int * int, int) Hashtbl.t;
}

(** Materialize the BIP of Theorem 1.  Linking rows are aggregated per
    (block, candidate) — valid by [sum_k y = 1] and tighter than
    per-variable links.  [budget] adds the storage row; [z_rows] the
    constraint-language rows; [block_caps] per-statement cost caps. *)
val to_lp :
  ?budget:float ->
  ?z_rows:Constr.z_row list ->
  ?block_caps:(int * float) list ->
  ?naive_links:bool ->
  t ->
  Lp.Problem.t * lp_vars

(** Read the selection out of a BIP solution vector. *)
val z_of_lp_solution : t -> lp_vars -> float array -> bool array

(** [lp_point_of_z t p vars z] — lift a selection to a full BIP point
    (the per-block template / slot assignment the minimum is attained
    at), for warm-starting {!Lp.Branch_bound} with a prior incumbent.
    Structural rows hold by construction; budget and extra z rows hold
    iff [z] satisfies them. *)
val lp_point_of_z : t -> Lp.Problem.t -> lp_vars -> bool array -> float array
