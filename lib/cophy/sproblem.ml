(* The structured form of the CoPhy BIP (Theorem 1).

   For each statement (block) and each INUM template we store the internal
   cost beta and, per slot, the list of admissible (candidate, gamma)
   choices — already pruned losslessly: a candidate is dropped from a slot
   when its gamma is infinite (order-incompatible) or no better than the
   no-index gamma.  The z variables, sizes, and update-maintenance costs
   complete the program.

   The structure is what both solver paths consume: [to_lp] materializes
   the exact BIP of Theorem 1 for the generic simplex + branch-and-bound
   solver, while [Decomposition] exploits the block structure directly. *)

type slot_choice = { cand : int; gamma : float }  (* cand = -1: no index *)

type template = {
  beta : float;
  (* one entry per referenced table: admissible choices, no-index first *)
  choices : slot_choice array array;
}

type block = {
  qid : int;
  weight : float;
  templates : template array;
  (* candidate positions appearing anywhere in this block, sorted *)
  cands_used : int array;
}

type t = {
  schema : Catalog.Schema.t;
  candidates : Storage.Index.t array;
  sizes : float array;                (* bytes *)
  ucost : float array;                (* weighted maintenance cost, per candidate *)
  fixed : float;                      (* weighted base-update cost sum *)
  (* certified INUM probe regret: the objective surface encoded by the
     blocks sits above the exhaustive-probing surface by at most this
     much, at any selection (weighted Inum.cache_regret at build time) *)
  probe_regret : float;
  blocks : block array;
  (* candidate position -> blocks that reference it *)
  cand_blocks : int array array;
}

let num_candidates t = Array.length t.candidates
let num_blocks t = Array.length t.blocks

(* Total number of (y, x, z) variables the materialized BIP would have —
   the paper's measure of BIP compactness. *)
let variable_count t =
  let yx =
    Array.fold_left
      (fun acc b ->
        Array.fold_left
          (fun acc tpl ->
            Array.fold_left (fun acc slot -> acc + Array.length slot) (acc + 1)
              tpl.choices)
          acc b.templates)
      0 t.blocks
  in
  yx + Array.length t.candidates

(* --- Construction --- *)

(* [prune = false] disables the lossless slot-level dominance pruning, for
   ablation: every finite-gamma candidate is kept in every slot. *)
let build ?(prune = true) (env : Optimizer.Whatif.env)
    (cache : Inum.workload_cache) (candidates : Storage.Index.t array) =
  let schema = env.Optimizer.Whatif.schema in
  let params = env.Optimizer.Whatif.params in
  let ncand = Array.length candidates in
  (* candidate positions per table *)
  let by_table = Hashtbl.create 16 in
  Array.iteri
    (fun pos ix ->
      let tb = Storage.Index.table ix in
      Hashtbl.replace by_table tb
        (pos :: Option.value ~default:[] (Hashtbl.find_opt by_table tb)))
    candidates;
  let table_cands tb = Option.value ~default:[] (Hashtbl.find_opt by_table tb) in
  let blocks =
    List.map
      (fun (q, weight, inum) ->
        let tables = Inum.tables inum in
        let used = Hashtbl.create 16 in
        let templates =
          List.map
            (fun (tpl : Inum.template) ->
              let choices =
                List.mapi
                  (fun ti table ->
                    let req = tpl.Inum.slot_reqs.(ti) in
                    let g0 =
                      match
                        Optimizer.Access.slot_fill_cost params schema q table
                          None req
                      with
                      | Some c -> c
                      | None -> infinity
                    in
                    let cands =
                      List.filter_map
                        (fun pos ->
                          match
                            Optimizer.Access.slot_fill_cost params schema q
                              table
                              (Some candidates.(pos))
                              req
                          with
                          | Some g when (not prune) || g < g0 -. 1e-9 ->
                              Hashtbl.replace used pos ();
                              Some { cand = pos; gamma = g }
                          | _ -> None)
                        (table_cands table)
                    in
                    Array.of_list ({ cand = -1; gamma = g0 } :: cands))
                  tables
              in
              { beta = tpl.Inum.beta; choices = Array.of_list choices })
            (Inum.templates inum)
        in
        let cands_used =
          Runtime.Tbl.sorted_keys used |> Array.of_list
        in
        {
          qid = q.Sqlast.Ast.query_id;
          weight;
          templates = Array.of_list templates;
          cands_used;
        })
      cache.Inum.selects
    |> Array.of_list
  in
  let sizes = Array.map (fun ix -> Storage.Index.size_bytes schema ix) candidates in
  let ucost = Array.make ncand 0.0 in
  let fixed = ref 0.0 in
  List.iter
    (fun (u, weight) ->
      fixed := !fixed +. (weight *. Optimizer.Whatif.update_base_cost env u);
      Array.iteri
        (fun pos ix ->
          let c = Optimizer.Whatif.update_cost env u ix in
          if c > 0.0 then ucost.(pos) <- ucost.(pos) +. (weight *. c))
        candidates)
    cache.Inum.updates;
  let cand_blocks = Array.make ncand [] in
  Array.iteri
    (fun bi b ->
      Array.iter (fun pos -> cand_blocks.(pos) <- bi :: cand_blocks.(pos)) b.cands_used)
    blocks;
  {
    schema;
    candidates;
    sizes;
    ucost;
    fixed = !fixed;
    probe_regret = Inum.cache_regret cache;
    blocks;
    cand_blocks = Array.map (fun l -> Array.of_list (List.rev l)) cand_blocks;
  }

(* --- Workload compression --- *)

(* Statements with identical cost structure (same templates, same
   candidate slots) are interchangeable in the BIP: any selection costs
   them the same, so a group contributes [sum of weights * cost].  Merge
   each group into its first member with the summed weight.  Keys are
   marshalled bytes — identical blocks come from identical computations,
   so float equality is bit-exact here. *)
let compress t =
  let tbl = Hashtbl.create 97 in
  let order = ref [] in
  Array.iter
    (fun b ->
      let key = Marshal.to_string (b.templates, b.cands_used) [] in
      match Hashtbl.find_opt tbl key with
      | Some cell -> cell := { !cell with weight = !cell.weight +. b.weight }
      | None ->
          let cell = ref b in
          Hashtbl.replace tbl key cell;
          order := cell :: !order)
    t.blocks;
  let blocks = Array.of_list (List.rev_map (fun c -> !c) !order) in
  let cand_blocks = Array.make (Array.length t.candidates) [] in
  Array.iteri
    (fun bi b ->
      Array.iter
        (fun pos -> cand_blocks.(pos) <- bi :: cand_blocks.(pos))
        b.cands_used)
    blocks;
  {
    t with
    blocks;
    cand_blocks = Array.map (fun l -> Array.of_list (List.rev l)) cand_blocks;
  }

(* --- Evaluation --- *)

(* Query-cost part of one block under selection [z] (1 = selected). *)
let block_cost_z (b : block) (z : bool array) =
  let best = ref infinity in
  Array.iter
    (fun tpl ->
      let total = ref tpl.beta in
      Array.iter
        (fun slot ->
          let m = ref infinity in
          Array.iter
            (fun { cand; gamma } ->
              if (cand < 0 || z.(cand)) && gamma < !m then m := gamma)
            slot;
          total := !total +. !m)
        tpl.choices;
      if !total < !best then best := !total)
    b.templates;
  !best

(* Full objective of a selection: weighted query costs + maintenance +
   fixed update costs. *)
let[@bound.certifier objective
     "computes the true objective of a concrete configuration from the \
      cost model itself; the result is exact no matter how heuristic \
      the candidate's origin"] eval ?(jobs = 1) t (z : bool array) =
  (* Per-block costs are independent; the reduction below stays a fixed
     left-to-right float sum so the result is identical at every job
     count. *)
  let costs = Runtime.parallel_map ~jobs (fun b -> block_cost_z b z) t.blocks in
  let acc = ref t.fixed in
  Array.iteri (fun bi c -> acc := !acc +. (t.blocks.(bi).weight *. c)) costs;
  Array.iteri (fun pos u -> if z.(pos) then acc := !acc +. u) t.ucost;
  !acc

let total_size t (z : bool array) =
  let acc = ref 0.0 in
  Array.iteri (fun pos s -> if z.(pos) then acc := !acc +. s) t.sizes;
  !acc

let config_of t (z : bool array) =
  let acc = ref [] in
  Array.iteri (fun pos ix -> if z.(pos) then acc := ix :: !acc) t.candidates;
  Storage.Config.of_list !acc

let z_of_config t config =
  Array.map (fun ix -> Storage.Config.mem ix config) t.candidates

(* --- Materialization as an explicit BIP (Theorem 1) --- *)

type lp_vars = {
  z_var : int array;                       (* candidate position -> z var *)
  y_var : (int * int, int) Hashtbl.t;      (* (block, template) -> y var *)
  x_var : (int * int * int * int, int) Hashtbl.t;
      (* (block, template, slot, choice) -> x var *)
}

(* Build the explicit BIP: continuous relaxation is obtained by the caller
   via Branch_bound / Simplex.  Extra z-rows (constraints from the
   language), per-statement cost caps (query-cost constraints), and the
   storage budget are appended when given.  [naive_links = true] emits one
   x <= z row per x variable instead of the per-(block, candidate)
   aggregation — the weaker textbook form, kept for ablation. *)
let to_lp ?(budget = infinity) ?(z_rows = []) ?(block_caps = [])
    ?(naive_links = false) t =
  let p = Lp.Problem.create () in
  let ncand = Array.length t.candidates in
  let z_var =
    Array.init ncand (fun pos ->
        Lp.Problem.add_var ~kind:Lp.Problem.Binary ~obj:t.ucost.(pos)
          ~name:(Printf.sprintf "z_%d" pos) p)
  in
  let y_var = Hashtbl.create 256 in
  let x_var = Hashtbl.create 1024 in
  Lp.Problem.add_obj_offset p t.fixed;
  Array.iteri
    (fun bi b ->
      let y_ids =
        Array.mapi
          (fun k tpl ->
            let y =
              Lp.Problem.add_var ~kind:Lp.Problem.Binary
                ~obj:(b.weight *. tpl.beta)
                ~name:(Printf.sprintf "y_%d_%d" bi k)
                p
            in
            Hashtbl.replace y_var (bi, k) y;
            y)
          b.templates
      in
      (* sum_k y = 1 *)
      ignore
        (Lp.Problem.add_row
           ~name:(Printf.sprintf "one_tpl_%d" bi)
           p
           (Array.to_list (Array.map (fun y -> (y, 1.0)) y_ids))
           Lp.Problem.Eq 1.0);
      (* Linking rows are aggregated per (block, candidate):
           sum over all x of this block using candidate a  <=  z_a.
         Valid because sum_k y_qk = 1 makes at most one such x equal 1 in
         any integral solution, and *tighter* than per-variable x <= z
         rows in the LP relaxation (fractional template mixtures must pay
         for their full combined usage). *)
      let links = Hashtbl.create 32 in
      Array.iteri
        (fun k tpl ->
          Array.iteri
            (fun si slot ->
              let xs =
                Array.mapi
                  (fun ci { cand; gamma } ->
                    let x =
                      Lp.Problem.add_var ~kind:Lp.Problem.Binary
                        ~obj:(b.weight *. gamma)
                        ~name:(Printf.sprintf "x_%d_%d_%d_%d" bi k si ci)
                        p
                    in
                    Hashtbl.replace x_var (bi, k, si, ci) x;
                    if cand >= 0 then
                      if naive_links then
                        ignore
                          (Lp.Problem.add_row p
                             [ (x, 1.0); (z_var.(cand), -1.0) ]
                             Lp.Problem.Le 0.0)
                      else
                        Hashtbl.replace links cand
                          (x
                          :: Option.value ~default:[]
                               (Hashtbl.find_opt links cand));
                    x)
                  slot
              in
              (* sum_choices x = y *)
              ignore
                (Lp.Problem.add_row p
                   ((Hashtbl.find y_var (bi, k), -1.0)
                   :: Array.to_list (Array.map (fun x -> (x, 1.0)) xs))
                   Lp.Problem.Eq 0.0))
            tpl.choices)
        b.templates;
      (* Sorted extraction: the linking rows enter the BIP in candidate
         order, not hash order, so the materialized LP is reproducible. *)
      List.iter
        (fun (cand, xs) ->
          ignore
            (Lp.Problem.add_row p
               ((z_var.(cand), -1.0) :: List.map (fun x -> (x, 1.0)) xs)
               Lp.Problem.Le 0.0))
        (Runtime.Tbl.sorted_bindings links))
    t.blocks;
  if budget < infinity then
    ignore
      (Lp.Problem.add_row ~name:"storage" p
         (Array.to_list (Array.mapi (fun pos zv -> (zv, t.sizes.(pos))) z_var))
         Lp.Problem.Le budget);
  List.iter
    (fun (row : Constr.z_row) ->
      let sense =
        match row.Constr.row_cmp with
        | Constr.Le -> Lp.Problem.Le
        | Constr.Ge -> Lp.Problem.Ge
        | Constr.Eq -> Lp.Problem.Eq
      in
      ignore
        (Lp.Problem.add_row ~name:row.Constr.row_name p
           (List.map (fun (pos, c) -> (z_var.(pos), c)) row.Constr.row_coeffs)
           sense row.Constr.row_rhs))
    z_rows;
  (* per-statement cost caps: sum_k beta y + sum gamma x <= cap *)
  List.iter
    (fun (qid, cap) ->
      Array.iteri
        (fun bi b ->
          if b.qid = qid then begin
            let coeffs = ref [] in
            Array.iteri
              (fun k tpl ->
                coeffs := (Hashtbl.find y_var (bi, k), tpl.beta) :: !coeffs;
                Array.iteri
                  (fun si slot ->
                    Array.iteri
                      (fun ci { gamma; _ } ->
                        coeffs :=
                          (Hashtbl.find x_var (bi, k, si, ci), gamma) :: !coeffs)
                      slot)
                  tpl.choices)
              b.templates;
            ignore
              (Lp.Problem.add_row
                 ~name:(Printf.sprintf "cost_cap_%d" qid)
                 p !coeffs Lp.Problem.Le cap)
          end)
        t.blocks)
    block_caps;
  (p, { z_var; y_var; x_var })

(* Read a configuration out of an LP/BIP solution vector. *)
let z_of_lp_solution t vars x =
  Array.init (Array.length t.candidates) (fun pos -> x.(vars.z_var.(pos)) > 0.5)

(* Lift a selection to a full BIP point: per block, the cheapest template
   and slot choices admissible under [z] (the assignment [block_cost_z]'s
   minimum is attained at).  The point satisfies the structural rows by
   construction; budget and extra z rows depend on [z] itself, so an
   infeasible selection yields an infeasible point — callers seeding
   Branch_bound rely on its [Problem.feasible] guard. *)
let lp_point_of_z t p vars (z : bool array) =
  let x = Array.make (Lp.Problem.nvars p) 0.0 in
  Array.iteri
    (fun pos zv -> x.(zv) <- (if z.(pos) then 1.0 else 0.0))
    vars.z_var;
  Array.iteri
    (fun bi b ->
      let best = ref infinity and best_k = ref 0 in
      let best_picks = ref [||] in
      Array.iteri
        (fun k tpl ->
          let total = ref tpl.beta in
          let picks =
            Array.map
              (fun slot ->
                let m = ref infinity and pick = ref 0 in
                Array.iteri
                  (fun ci { cand; gamma } ->
                    if (cand < 0 || z.(cand)) && gamma < !m then begin
                      m := gamma;
                      pick := ci
                    end)
                  slot;
                total := !total +. !m;
                !pick)
              tpl.choices
          in
          if !total < !best then begin
            best := !total;
            best_k := k;
            best_picks := picks
          end)
        b.templates;
      x.(Hashtbl.find vars.y_var (bi, !best_k)) <- 1.0;
      Array.iteri
        (fun si ci -> x.(Hashtbl.find vars.x_var (bi, !best_k, si, ci)) <- 1.0)
        !best_picks)
    t.blocks;
  x
