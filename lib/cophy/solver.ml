(* The Solver component (paper §4.1, Fig. 3).

   1. Check the feasibility of the hard constraints (the paper's line 1);
      an [Infeasible] exception reports which constraints cannot hold.
   2. Apply the relaxation and hand the program to a BIP solver: the
      exact simplex + branch-and-bound path for small instances or when
      requested, and the Lagrangian decomposition path (the "relax"
      transformation of Fig. 3 taken to its conclusion) for large ones.
   3. Stream feedback events so the DBA can terminate early; stop at the
      configured optimality gap (the paper tunes CPLEX to 5%). *)

exception Infeasible of string list

(* Trace probe: warm-started prior selections that had to be dropped.
   (The decomposed path's repaired/rejected counters live in
   [Decomposition]; this one covers the exact path, which cannot
   repair.) *)
let tr_warm_rejected = Runtime.Trace.counter "solver.warm_rejected"


type solve_method = Auto | Exact | Decomposed

type feedback = {
  elapsed : float;
  incumbent : float option;  (* best feasible objective so far *)
  bound : float;             (* proven lower bound *)
}

type options = {
  method_ : solve_method;
  gap_tolerance : float;
  time_limit : float;
  max_iters : int;           (* decomposition subgradient iterations *)
  on_feedback : feedback -> unit;
  log_events : bool;
  warm : Decomposition.multipliers option;
  (* Prior incumbent selection by index: seeds Branch_bound's initial
     incumbent on the exact path and the decomposition's first
     [consider] on the decomposed path. *)
  warm_z : Storage.Index.t list option;
  jobs : int;                (* domains for the decomposition fan-outs *)
  stats : Runtime.Stats.t option;
  backend : Lp.Backend.t;    (* LP backend for every LP this solve runs *)
  (* Debug mode: statically check the materialized BIP before solving,
     certify branch-and-bound incumbents, and certify the final selection
     against the hard constraints.  Raises
     [Lp.Analyze.Certification_failed] on any failure. *)
  certify : bool;
  (* Core-guided bound tightening on the decomposed path (see
     [Decomposition.options.core_guided]). *)
  core_guided : bool;
}

let default_options =
  {
    method_ = Auto;
    gap_tolerance = 0.05;
    time_limit = infinity;
    max_iters = 400;
    on_feedback = ignore;
    log_events = true;
    warm = None;
    warm_z = None;
    jobs = 1;
    stats = None;
    backend = Lp.Backend.default;
    certify = false;
    core_guided = true;
  }

type report = {
  z : bool array;
  config : Storage.Config.t;
  objective : float;          (* INUM-estimated workload cost of [config] *)
  bound : float;
  gap : float;
  events : feedback list;     (* chronological *)
  used_method : solve_method;
  multipliers : Decomposition.multipliers option;
  solve_seconds : float;
  (* certified INUM probe regret carried from the problem: [objective]
     and [bound] describe the surrogate surface; the exhaustive-INUM
     objective of [config] lies in [objective - probe_regret,
     objective] *)
  probe_regret : float;
}

(* Above this many BIP variables, Auto switches to the decomposition.
   The threshold is deliberately low: the decomposition is CoPhy's
   production path, and the materialized-BIP path mainly serves
   correctness tests and query-cost-cap constraints. *)
let exact_variable_limit = 800

(* The z-only polytope (storage budget + linear z rows) over relaxed
   binary variables; shared by the feasibility probe and the decomposed
   path's certification of the final selection. *)
let z_polytope (sp : Sproblem.t) ~budget ~z_rows =
  let n = Array.length sp.Sproblem.candidates in
  let p = Lp.Problem.create () in
  let vars = Array.init n (fun _ -> Lp.Problem.add_var ~ub:1.0 p) in
  if budget < infinity then
    ignore
      (Lp.Problem.add_row ~name:"storage" p
         (Array.to_list (Array.mapi (fun a v -> (v, sp.Sproblem.sizes.(a))) vars))
         Lp.Problem.Le budget);
  List.iter
    (fun (row : Constr.z_row) ->
      let sense =
        match row.Constr.row_cmp with
        | Constr.Le -> Lp.Problem.Le
        | Constr.Ge -> Lp.Problem.Ge
        | Constr.Eq -> Lp.Problem.Eq
      in
      ignore
        (Lp.Problem.add_row ~name:row.Constr.row_name p
           (List.map (fun (a, c) -> (vars.(a), c)) row.Constr.row_coeffs)
           sense row.Constr.row_rhs))
    z_rows;
  (p, vars)

(* Feasibility of the z-only polytope (mandatory/forbidden/budget/...). *)
let check_feasibility ?(backend = Lp.Backend.default) (sp : Sproblem.t) ~budget
    ~z_rows =
  let n = Array.length sp.Sproblem.candidates in
  let p, _vars = z_polytope sp ~budget ~z_rows in
  let r = Lp.Backend.solve backend p in
  match r.Lp.Simplex.status with
  | Lp.Simplex.Infeasible ->
      (* Identify offenders: re-test each row alone against the bounds. *)
      let offenders =
        List.filter_map
          (fun (row : Constr.z_row) ->
            let p1 = Lp.Problem.create () in
            let vars1 = Array.init n (fun _ -> Lp.Problem.add_var ~ub:1.0 p1) in
            let sense =
              match row.Constr.row_cmp with
              | Constr.Le -> Lp.Problem.Le
              | Constr.Ge -> Lp.Problem.Ge
              | Constr.Eq -> Lp.Problem.Eq
            in
            ignore
              (Lp.Problem.add_row p1
                 (List.map (fun (a, c) -> (vars1.(a), c)) row.Constr.row_coeffs)
                 sense row.Constr.row_rhs);
            match (Lp.Backend.solve backend p1).Lp.Simplex.status with
            | Lp.Simplex.Infeasible -> Some row.Constr.row_name
            | _ -> None)
          z_rows
      in
      let offenders =
        if offenders = [] then [ "constraint conjunction (no single offender)" ]
        else offenders
      in
      raise (Infeasible offenders)
  | _ -> ()

let solve ?(options = default_options) ?(block_caps = []) ?accept
    (sp : Sproblem.t) ~budget ~z_rows =
  Runtime.Trace.span "solver.feasibility_check" (fun () ->
      check_feasibility ~backend:options.backend sp ~budget ~z_rows);
  let t0 = Runtime.Clock.now () in
  let method_ =
    match options.method_ with
    | Auto ->
        (* Query-cost caps are only encoded in the materialized BIP;
           black-box (UDF) acceptance is only enforced by the
           decomposition's incumbent gate. *)
        if accept <> None then Decomposed
        else if block_caps <> [] then Exact
        else if Sproblem.variable_count sp <= exact_variable_limit then Exact
        else Decomposed
    | m -> m
  in
  match method_ with
  | Exact | Auto ->
      let p, vars =
        Runtime.Trace.span "solver.bip_to_lp" (fun () ->
            Sproblem.to_lp ~budget ~z_rows ~block_caps sp)
      in
      if options.certify then begin
        (* Static model analysis before the solve: a malformed BIP makes
           every downstream certificate meaningless. *)
        let issues = Lp.Analyze.errors (Lp.Analyze.check p) in
        if issues <> [] then
          raise
            (Lp.Analyze.Certification_failed
               (String.concat "; "
                  (List.map
                     (fun (i : Lp.Analyze.issue) ->
                       Printf.sprintf "%s(%s): %s" i.Lp.Analyze.code
                         i.Lp.Analyze.where i.Lp.Analyze.message)
                     issues)))
      end;
      let events = ref [] in
      let bb_options =
        {
          Lp.Branch_bound.default_options with
          Lp.Branch_bound.gap_tolerance = options.gap_tolerance;
          time_limit = options.time_limit;
          log_events = options.log_events;
          (* branch on the index-selection variables only; once z is
             integral the per-block LP is a pure minimum with an integral
             optimum (Theorem 1's structure) *)
          decision_vars = Some (Array.to_list vars.Sproblem.z_var);
          backend = options.backend;
          certify_incumbents = options.certify;
          jobs = options.jobs;
          on_event =
            (fun (e : Lp.Branch_bound.event) ->
              let f =
                {
                  elapsed = e.Lp.Branch_bound.elapsed;
                  incumbent = e.Lp.Branch_bound.incumbent;
                  bound = e.Lp.Branch_bound.bound;
                }
              in
              if options.log_events then events := f :: !events;
              options.on_feedback f);
        }
      in
      let bb_options =
        match options.warm_z with
        | None -> bb_options
        | Some ixs ->
            (* Lift the prior selection to a full BIP point; an
               infeasible one (tightened constraints) is ignored by
               Branch_bound's feasibility guard. *)
            let want = Hashtbl.create 32 in
            List.iter (fun ix -> Hashtbl.replace want ix ()) ixs;
            let zw =
              Array.map (fun ix -> Hashtbl.mem want ix) sp.Sproblem.candidates
            in
            let x0 = Sproblem.lp_point_of_z sp p vars zw in
            (* The exact path has no repair: a prior selection that no
               longer fits the constraints is dropped, and observably so. *)
            if Lp.Problem.feasible p x0 then
              { bb_options with Lp.Branch_bound.initial_incumbent = Some x0 }
            else begin
              Runtime.Trace.incr tr_warm_rejected;
              bb_options
            end
      in
      let r =
        Runtime.Trace.span "solver.branch_bound" (fun () ->
            Lp.Branch_bound.solve ~options:bb_options p)
      in
      (match r.Lp.Branch_bound.status with
      | Lp.Branch_bound.Infeasible ->
          raise (Infeasible [ "BIP infeasible (query-cost or linking rows)" ])
      | _ -> ());
      let x =
        match r.Lp.Branch_bound.x with
        | Some x -> x
        | None -> raise (Infeasible [ "no feasible solution found" ])
      in
      let z = Sproblem.z_of_lp_solution sp vars x in
      if options.certify then begin
        (* Final-answer certificate: the returned BIP point satisfies
           every row and bound, and the z part is integral. *)
        let cert =
          Lp.Analyze.certify
            ~int_vars:(Array.to_list vars.Sproblem.z_var)
            p x
        in
        if not cert.Lp.Analyze.cert_ok then
          raise
            (Lp.Analyze.Certification_failed
               (Printf.sprintf "exact-path solution rejected: %s"
                  (Lp.Analyze.certificate_summary cert)))
      end;
      let objective = Sproblem.eval ~jobs:options.jobs sp z in
      {
        z;
        config = Sproblem.config_of sp z;
        objective;
        bound = r.Lp.Branch_bound.bound;
        gap =
          (objective -. r.Lp.Branch_bound.bound)
          /. (abs_float objective +. 1e-9);
        events = List.rev !events;
        used_method = Exact;
        multipliers = None;
        solve_seconds = Runtime.Clock.now () -. t0;
        probe_regret = sp.Sproblem.probe_regret;
      }
  | Decomposed ->
      let events = ref [] in
      let d_options =
        {
          Decomposition.default_options with
          Decomposition.max_iters = options.max_iters;
          gap_tolerance = options.gap_tolerance;
          time_limit = options.time_limit;
          warm = options.warm;
          warm_z = options.warm_z;
          log_events = options.log_events;
          jobs = options.jobs;
          stats = options.stats;
          backend = options.backend;
          core_guided = options.core_guided;
          on_event =
            (fun (e : Decomposition.event) ->
              let f =
                {
                  elapsed = e.Decomposition.elapsed;
                  incumbent = Some e.Decomposition.incumbent;
                  bound = e.Decomposition.bound;
                }
              in
              if options.log_events then events := f :: !events;
              options.on_feedback f);
        }
      in
      let r =
        Runtime.Trace.span "solver.decomposition" (fun () ->
            Decomposition.solve ~options:d_options ?accept sp ~budget ~z_rows)
      in
      if Runtime.Fx.is_inf r.Decomposition.bound then
        raise (Infeasible [ "z polytope infeasible" ]);
      if Runtime.Fx.is_inf r.Decomposition.obj then
        raise (Infeasible [ "no selection satisfies the black-box constraints" ]);
      if options.certify then begin
        (* The decomposition never materializes the BIP, so certify what
           it does promise: the returned 0/1 selection lies in the z
           polytope (budget + every linear hard-constraint row). *)
        let zp, zvars = z_polytope sp ~budget ~z_rows in
        let zx = Array.make (Lp.Problem.nvars zp) 0.0 in
        Array.iteri
          (fun a v -> zx.(v) <- (if r.Decomposition.z.(a) then 1.0 else 0.0))
          zvars;
        let cert =
          Lp.Analyze.certify ~int_vars:(Array.to_list zvars) zp zx
        in
        if not cert.Lp.Analyze.cert_ok then
          raise
            (Lp.Analyze.Certification_failed
               (Printf.sprintf "decomposed-path selection rejected: %s"
                  (Lp.Analyze.certificate_summary cert)))
      end;
      {
        z = r.Decomposition.z;
        config = Sproblem.config_of sp r.Decomposition.z;
        objective = r.Decomposition.obj;
        bound = r.Decomposition.bound;
        gap =
          (r.Decomposition.obj -. r.Decomposition.bound)
          /. (abs_float r.Decomposition.obj +. 1e-9);
        events = List.rev !events;
        used_method = Decomposed;
        multipliers = Some r.Decomposition.multipliers;
        solve_seconds = Runtime.Clock.now () -. t0;
        probe_regret = sp.Sproblem.probe_regret;
      }
