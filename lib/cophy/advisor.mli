(** CoPhy top-level (paper Fig. 2): INUM -> CGen -> BIPGen -> Solver. *)

type timings = {
  inum_seconds : float;   (** INUM cache construction *)
  build_seconds : float;  (** candidate generation + BIP construction *)
  solve_seconds : float;
  stats : Runtime.Stats.t;
      (** per-stage counters (what-if calls, INUM probes/templates,
          subproblem solves, cost evals) and accumulated stage timers *)
}

type recommendation = {
  config : Storage.Config.t;      (** the recommended X* *)
  report : Solver.report;
  problem : Sproblem.t;
  cache : Inum.workload_cache;
  candidates : Storage.Index.t array;
  timings : timings;
  estimated_cost : float;  (** INUM workload cost under [config] *)
  estimated_base : float;  (** INUM workload cost with no candidates *)
}

val total_seconds : recommendation -> float

(** Run the full pipeline.

    @param constraints hard constraints (the implicit storage budget row
      is added from [budget_fraction]); soft constraints are explored with
      {!Pareto} instead.
    @param candidates overrides CGen's candidate set.
    @param dba_candidates extends it (the S_DBA of the paper).
    @param baseline the configuration that query-cost caps are relative to.
    @param budget_fraction storage budget as a fraction of the database
      size (the paper's M).
    @param jobs domains for the INUM build and solver fan-outs
      (default [1]; the recommendation is identical at every job count —
      use {!Runtime.recommended_jobs} to saturate the machine).
    @param stats caller-supplied stats sink; a fresh one is created (and
      returned in [timings.stats]) when omitted.  [jobs], [stats] and
      [backend] override the corresponding [solver_options] fields.
    @param backend LP backend for every LP the solve runs (default: the
      [solver_options] setting, itself {!Lp.Backend.default}).
    @param certify overrides [solver_options.certify]: debug mode that
      statically checks the BIP and certifies the solver's answer with
      {!Lp.Analyze} (raises [Lp.Analyze.Certification_failed] on failure).
    @param probe_budget per-query cap on up-front INUM probes (see
      {!Inum.build}; default unlimited).  After the first solve, a
      completion loop forces the deferred probes overlapping the
      incumbent and re-solves warm until the recommendation's cost model
      is exact at its own configuration, so [report.objective] matches
      the exhaustive-probing pipeline's while spending far fewer probes;
      [report.probe_regret] certifies the residual model-wide bound.
    @raise Solver.Infeasible when the hard constraints cannot hold. *)
val advise :
  ?params:Optimizer.Cost_params.t ->
  ?constraints:Constr.set ->
  ?candidates:Storage.Index.t list ->
  ?dba_candidates:Storage.Index.t list ->
  ?solver_options:Solver.options ->
  ?baseline:Storage.Config.t ->
  ?jobs:int ->
  ?stats:Runtime.Stats.t ->
  ?backend:Lp.Backend.t ->
  ?certify:bool ->
  ?probe_budget:int ->
  Catalog.Schema.t ->
  Sqlast.Ast.workload ->
  budget_fraction:float ->
  recommendation

(** Per-statement explanation: INUM cost before/after and the index filling
    each table's slot in the winning template. *)
type explanation = {
  statement_id : int;
  cost_before : float;
  cost_after : float;
  picks : (string * Storage.Index.t option) list;
}

val explain : recommendation -> explanation list
