(** The Solver component (paper §4.1, Fig. 3): feasibility check, the
    relaxation, dispatch to a BIP solving path, and the continuous
    feedback stream behind early termination. *)

(** Raised when the hard constraints cannot be satisfied; carries the
    names of the offending constraints (paper: the DBA then removes them
    or converts them to soft constraints). *)
exception Infeasible of string list

type solve_method =
  | Auto  (** exact for small instances / query-cost caps, else decomposed *)
  | Exact  (** materialized BIP, simplex + branch and bound *)
  | Decomposed  (** Lagrangian decomposition (large instances) *)

type feedback = {
  elapsed : float;
  incumbent : float option;  (** best feasible objective so far *)
  bound : float;  (** proven lower bound *)
}

type options = {
  method_ : solve_method;
  gap_tolerance : float;  (** early-termination gap; the paper uses 0.05 *)
  time_limit : float;
  max_iters : int;  (** decomposition subgradient iterations *)
  on_feedback : feedback -> unit;
      (** [elapsed] fields are measured on {!Runtime.Clock} *)
  log_events : bool;
  warm : Decomposition.multipliers option;  (** warm start (re-tuning) *)
  warm_z : Storage.Index.t list option;
      (** prior incumbent selection: seeds {!Lp.Branch_bound}'s initial
          incumbent (exact path) or the decomposition's first incumbent
          candidate (decomposed path) *)
  jobs : int;
      (** domains for the decomposition's parallel fan-outs (default [1];
          the result is identical at every job count) *)
  stats : Runtime.Stats.t option;
      (** when set, the solve accumulates its counters into it *)
  backend : Lp.Backend.t;
      (** LP backend used for every LP this solve runs: the feasibility
          probe, branch-and-bound relaxations on the exact path, and the
          decomposition's z subproblem (default {!Lp.Backend.default}) *)
  certify : bool;
      (** Debug mode (default [false]).  On the exact path: run
          {!Lp.Analyze.check} on the materialized BIP before solving (any
          [Error] aborts), certify every branch-and-bound incumbent, and
          certify the final solution.  On the decomposed path: certify
          the returned selection against the z polytope (budget + linear
          hard-constraint rows).
          @raise Lp.Analyze.Certification_failed on any failure. *)
  core_guided : bool;
      (** core-guided bound tightening on the decomposed path, on by
          default (see {!Decomposition.options.core_guided}) *)
}

val default_options : options

type report = {
  z : bool array;
  config : Storage.Config.t;
  objective : float;  (** INUM-estimated workload cost of [config] *)
  bound : float;
  gap : float;
  events : feedback list;  (** chronological *)
  used_method : solve_method;
  multipliers : Decomposition.multipliers option;
  solve_seconds : float;
  probe_regret : float;
      (** certified INUM probe regret carried from {!Sproblem.t}:
          [objective] and [bound] describe the cost surface of the
          (possibly budget-limited) INUM caches; the exhaustive-probing
          objective of [config] lies in
          [[objective - probe_regret, objective]].  Zero when probing
          was unlimited or fully refined. *)
}

(** Check that the z polytope (budget + linear z rows) is non-empty.
    @raise Infeasible with offender names otherwise. *)
val check_feasibility :
  ?backend:Lp.Backend.t ->
  Sproblem.t ->
  budget:float ->
  z_rows:Constr.z_row list ->
  unit

(** Solve the tuning BIP.  [block_caps] are per-statement cost caps
    (query-cost constraints), which force the exact path; [accept] is the
    black-box (UDF) acceptance gate of appendix E.5, which forces the
    decomposed path.
    @raise Infeasible when constraints cannot hold. *)
val solve :
  ?options:options ->
  ?block_caps:(int * float) list ->
  ?accept:(bool array -> bool) ->
  Sproblem.t ->
  budget:float ->
  z_rows:Constr.z_row list ->
  report
