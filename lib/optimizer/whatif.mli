(** The what-if optimizer: System-R dynamic programming over join orders
    with interesting orders, access-path selection against a hypothetical
    index configuration, and hash / merge / index-nested-loop joins.

    [optimize] / [cost] are the classic what-if calls an index advisor
    makes; [template_plan] builds INUM template plans by optimizing with
    abstract zero-cost slots, so the resulting plan cost is exactly the
    internal plan cost beta of the paper. *)

(** An environment is immutable shared context ([params], [schema]) plus
    one atomic instrumentation cell: a single [env] may be shared
    read-only across domains and probed concurrently. *)
type env = {
  params : Cost_params.t;
  schema : Catalog.Schema.t;
  calls : int Atomic.t;  (** direct optimizations performed so far *)
}

val make_env : ?params:Cost_params.t -> Catalog.Schema.t -> env

(** Number of direct what-if optimizations performed (the quantity the
    paper's time accounting tracks for the commercial advisors). *)
val whatif_calls : env -> int

val reset_calls : env -> unit

(** What a template requires of one table's access. *)
type slot_spec =
  | Spec_any
  | Spec_ordered of string list
  | Spec_nlj of string  (** nested-loop inner probed on this join column *)

(** Optimize the query under the configuration; counts one what-if call.
    @raise Invalid_argument if no plan exists (cannot happen for valid
    queries). *)
val optimize : env -> Sqlast.Ast.query -> Storage.Config.t -> Plan.t

(** [cost env q x] = [Plan.cost (optimize env q x)]. *)
val cost : env -> Sqlast.Ast.query -> Storage.Config.t -> float

(** Build the optimal template plan under per-table slot specs; the plan's
    cost is INUM's beta.  [None] when the specs admit no plan (e.g. an
    NLJ spec with no matching join). *)
val template_plan :
  env ->
  Sqlast.Ast.query ->
  slot_specs:(string * slot_spec) list ->
  Plan.t option

(** Bound query: a lower bound on the beta of every template of the
    query, computed without running the planning DP.  Counts the
    mandatory final-join output tuples (the unclamped cardinality
    product, a lower bound under any join order) and the cheapest
    aggregation pass; sort costs are excluded since an ordered template
    may deliver its order for free.  The lazy INUM probe loop seeds its
    per-combination lower bounds with this. *)
val template_cost_floor : env -> Sqlast.Ast.query -> float

(** ucost(a, q): maintenance cost of the index under the update (0 when
    the index is unaffected). *)
val update_cost : env -> Sqlast.Ast.update -> Storage.Index.t -> float

(** c_q: the configuration-independent cost of updating the base tuples. *)
val update_base_cost : env -> Sqlast.Ast.update -> float

(** Full statement cost under a configuration: for updates,
    [cost(q_r, X) + sum ucost + c_q] per the paper's model (§2). *)
val statement_cost : env -> Sqlast.Ast.statement -> Storage.Config.t -> float

(** Weighted total over the workload. *)
val workload_cost : env -> Sqlast.Ast.workload -> Storage.Config.t -> float
