(* System-R style what-if optimizer: dynamic programming over join orders
   with interesting orders, access-path selection against a hypothetical
   index configuration, and hash / merge / index-nested-loop joins.

   Two modes share the DP:
   - direct optimization of a query under a configuration (the classic
     what-if call, [optimize] / [cost]);
   - template construction for INUM ([template_plan]): base-table accesses
     are abstract zero-cost slots constrained by a per-table spec (deliver
     a sort order, or serve as a nested-loop inner probed on a join
     column), so the resulting plan cost is exactly the "internal plan
     cost" beta_qk of the paper. *)

open Sqlast

(* Immutable shared context + one atomic instrumentation cell, so an env
   can be shared read-only across domains. *)
type env = {
  params : Cost_params.t;
  schema : Catalog.Schema.t;
  calls : int Atomic.t;  (* number of direct optimizations performed *)
}

let make_env ?(params = Cost_params.default) schema =
  { params; schema; calls = Atomic.make 0 }

let whatif_calls env = Atomic.get env.calls
let reset_calls env = Atomic.set env.calls 0

(* What a template requires of each table's access. *)
type slot_spec =
  | Spec_any
  | Spec_ordered of string list
  | Spec_nlj of string  (* must be a nested-loop inner on this join column *)

(* --- Sort-order bookkeeping --- *)

(* Orders are column-reference lists.  Equality-bound columns are constant
   across surviving rows, so they are dropped from both delivered and
   required orders; satisfaction is then a plain prefix test. *)

let normalize_order ~eq_cols (cols : Ast.col_ref list) =
  List.filter (fun (c : Ast.col_ref) -> not (List.mem c eq_cols)) cols

let order_satisfies ~required ~given =
  let rec prefix = function
    | [], _ -> true
    | _, [] -> false
    | (r : Ast.col_ref) :: rs, g :: gs -> r = g && prefix (rs, gs)
  in
  prefix (required, given)

(* Group-by can exploit any permutation of the grouping set that forms a
   prefix of the delivered order. *)
let order_satisfies_group ~group ~given =
  let n = List.length group in
  if n = 0 then true
  else if List.length given < n then false
  else begin
    let prefix = List.filteri (fun i _ -> i < n) given in
    let sort = List.sort compare in
    sort prefix = sort group
  end

(* --- DP entries --- *)

(* [pending] marks a leaf slot that may only be consumed as a nested-loop
   inner; it cannot participate in other joins or be a final plan. *)
type entry = { order : Ast.col_ref list; plan : Plan.t; pending : bool }

let entry_cost e = Plan.cost e.plan

(* Keep the Pareto frontier over (cost, order): an entry is dominated when
   a cheaper-or-equal entry delivers an order extending its own. *)
let prune_entries entries =
  let dominated e =
    (not e.pending)
    && List.exists
         (fun e' ->
           e' != e
           && (not e'.pending)
           && entry_cost e' <= entry_cost e
           && order_satisfies ~required:e.order ~given:e'.order
           && (entry_cost e' < entry_cost e
              || List.length e'.order > List.length e.order
              || e' < e))
         entries
  in
  let kept = List.filter (fun e -> not (dominated e)) entries in
  let sorted = List.sort (fun a b -> compare (entry_cost a) (entry_cost b)) kept in
  (* Safety cap to bound DP width. *)
  List.filteri (fun i _ -> i < 12) sorted

(* --- Context shared across one optimization --- *)

type mode =
  | Direct of Storage.Config.t
  | Template of (string * slot_spec) list

type ctx = {
  env : env;
  q : Ast.query;
  tables : string array;
  eq_cols : Ast.col_ref list;          (* equality-bound columns, all tables *)
  frows : float array;                 (* filtered rows per table *)
  mode : mode;
}

let make_ctx env q mode =
  let tables = Array.of_list q.Ast.tables in
  let eq_cols =
    List.filter_map
      (fun p -> if p.Ast.is_equality then Some p.Ast.pred_col else None)
      q.Ast.predicates
  in
  let frows = Array.map (fun t -> Card.filtered_rows env.schema q t) tables in
  { env; q; tables; eq_cols; frows; mode }

let col_refs_of_names table names =
  List.map (fun c -> { Ast.table; Ast.column = c }) names

let table_index ctx t =
  let rec find i = if ctx.tables.(i) = t then i else find (i + 1) in
  find 0

(* Width of the tuples flowing out of the tables in bitmask [mask]. *)
let mask_tables ctx mask =
  let acc = ref [] in
  Array.iteri (fun i t -> if mask land (1 lsl i) <> 0 then acc := t :: !acc) ctx.tables;
  !acc

let mask_width ctx mask =
  Card.output_width ctx.env.schema ctx.q (mask_tables ctx mask)

(* --- Base-table entries --- *)

let leaf_entries ctx i =
  let t = ctx.tables.(i) in
  let rows = ctx.frows.(i) in
  match ctx.mode with
  | Template specs ->
      let spec =
        match List.assoc_opt t specs with Some s -> s | None -> Spec_any
      in
      let req, order, pending =
        match spec with
        | Spec_any -> (Plan.Any_order, [], false)
        | Spec_ordered o ->
            ( Plan.Ordered o,
              normalize_order ~eq_cols:ctx.eq_cols (col_refs_of_names t o),
              false )
        | Spec_nlj jc ->
            (* outer_rows is patched when the nested loop is formed *)
            (Plan.Nlj_inner { join_col = jc; outer_rows = 0.0 }, [], true)
      in
      [ { order; plan = Plan.Slot { table = t; rows; req }; pending } ]
  | Direct config ->
      let paths = Access.paths ctx.env.params ctx.env.schema ctx.q t config in
      List.map
        (fun (p : Access.path) ->
          let order =
            normalize_order ~eq_cols:ctx.eq_cols
              (col_refs_of_names t p.Access.output_order)
          in
          let plan =
            match p.Access.index with
            | None -> Plan.Seq_scan { table = t; rows; cost = p.Access.path_cost }
            | Some ix ->
                Plan.Index_scan
                  {
                    index = ix;
                    table = t;
                    rows;
                    cost = p.Access.path_cost;
                    covering = p.Access.covering;
                  }
          in
          { order; plan; pending = false })
        paths

(* --- Joins --- *)

(* Join conjuncts with one side in [lmask] and the other in [rmask];
   results oriented as (left_col, right_col). *)
let joins_between ctx lmask rmask =
  let side (c : Ast.col_ref) =
    let i = table_index ctx c.Ast.table in
    if lmask land (1 lsl i) <> 0 then `L
    else if rmask land (1 lsl i) <> 0 then `R
    else `Out
  in
  List.filter_map
    (fun (j : Ast.join) ->
      match (side j.Ast.left, side j.Ast.right) with
      | `L, `R -> Some (j, j.Ast.left, j.Ast.right)
      | `R, `L -> Some (j, j.Ast.right, j.Ast.left)
      | _ -> None)
    ctx.q.Ast.joins

let join_output_rows ctx l r js =
  Card.join_rows ctx.env.schema ~left_rows:(Plan.rows l.plan)
    ~right_rows:(Plan.rows r.plan)
    (List.map (fun (j, _, _) -> j) js)

let maybe_sort ctx e ~required ~mask =
  if order_satisfies ~required ~given:e.order then Some e
  else begin
    let rows = Plan.rows e.plan in
    let width = mask_width ctx mask in
    let c = Cost_params.sort_cost ctx.env.params ~rows ~width in
    Some
      {
        order = required;
        plan =
          Plan.Sort
            { child = e.plan; keys = required; rows; cost = Plan.cost e.plan +. c };
        pending = false;
      }
  end

let hash_join ctx l r out_rows =
  if l.pending || r.pending then []
  else begin
    let p = ctx.env.params in
    let build_rows = Plan.rows r.plan in
    let cost =
      Plan.cost l.plan +. Plan.cost r.plan
      +. Cost_params.hash_build_cost p ~rows:build_rows ~width:16
      +. Cost_params.hash_probe_cost p ~rows:(Plan.rows l.plan)
      +. (out_rows *. p.cpu_tuple_cost)
    in
    [ { order = [];
        plan =
          Plan.Hash_join { build = r.plan; probe = l.plan; rows = out_rows; cost };
        pending = false } ]
  end

let merge_join ctx lmask rmask l r (lc : Ast.col_ref) (rc : Ast.col_ref) out_rows =
  if l.pending || r.pending then []
  else begin
    let p = ctx.env.params in
    let lkey = normalize_order ~eq_cols:ctx.eq_cols [ lc ] in
    let rkey = normalize_order ~eq_cols:ctx.eq_cols [ rc ] in
    match
      ( maybe_sort ctx l ~required:lkey ~mask:lmask,
        maybe_sort ctx r ~required:rkey ~mask:rmask )
    with
    | Some l', Some r' ->
        let cost =
          Plan.cost l'.plan +. Plan.cost r'.plan
          +. ((Plan.rows l'.plan +. Plan.rows r'.plan) *. p.cpu_operator_cost)
          +. (out_rows *. p.cpu_tuple_cost)
        in
        let plan =
          Plan.Merge_join { left = l'.plan; right = r'.plan; rows = out_rows; cost }
        in
        (* The output delivers both join keys' orders. *)
        [ { order = lkey; plan; pending = false };
          { order = rkey; plan; pending = false } ]
    | _ -> []
  end

(* Index nested-loop join: the inner side is a single base table probed on
   the join column.  In Direct mode the probe goes through a configuration
   index; in Template mode through a pending NLJ slot whose spec names the
   same join column. *)
let nest_loop ctx l rmask r (jcol : Ast.col_ref) out_rows =
  if l.pending then []
  else begin
    let t = jcol.Ast.table in
    let i = table_index ctx t in
    if rmask <> 1 lsl i then []
    else begin
      let p = ctx.env.params in
      let schema = ctx.env.schema in
      match ctx.mode with
      | Template _ -> (
          match r.plan with
          | Plan.Slot { table; rows; req = Plan.Nlj_inner { join_col; _ } }
            when table = t && join_col = jcol.Ast.column ->
              let outer_rows = Plan.rows l.plan in
              let inner =
                Plan.Slot
                  { table; rows; req = Plan.Nlj_inner { join_col; outer_rows } }
              in
              let cost = Plan.cost l.plan +. (out_rows *. p.cpu_tuple_cost) in
              [ { order = l.order;
                  plan =
                    Plan.Nest_loop
                      { outer = l.plan; inner; rows = out_rows; cost };
                  pending = false } ]
          | _ -> [])
      | Direct config ->
          if r.pending then []
          else
            List.filter_map
              (fun ix ->
                match
                  Access.nlj_probe_cost p schema ctx.q t (Some ix)
                    ~join_col:jcol.Ast.column
                with
                | None -> None
                | Some per_probe ->
                    let needed = Ast.referenced_columns ctx.q t in
                    let covering =
                      Storage.Index.clustered ix
                      || List.for_all
                           (fun c ->
                             List.mem c (Storage.Index.covered_columns ix))
                           needed
                    in
                    let inner =
                      Plan.Index_scan
                        {
                          index = ix;
                          table = t;
                          rows = ctx.frows.(i);
                          cost = per_probe;
                          covering;
                        }
                    in
                    let cost =
                      Plan.cost l.plan
                      +. (Plan.rows l.plan *. per_probe)
                      +. (out_rows *. p.cpu_tuple_cost)
                    in
                    Some
                      { order = l.order;
                        plan =
                          Plan.Nest_loop
                            { outer = l.plan; inner; rows = out_rows; cost };
                        pending = false })
              (Storage.Config.on_table config t)
    end
  end

(* --- The DP --- *)

let plan_joins ctx =
  let n = Array.length ctx.tables in
  let memo = Array.make (1 lsl n) [] in
  for i = 0 to n - 1 do
    memo.(1 lsl i) <- prune_entries (leaf_entries ctx i)
  done;
  let full = (1 lsl n) - 1 in
  for mask = 1 to full do
    if memo.(mask) = [] && mask land (mask - 1) <> 0 then begin
      let acc = ref [] in
      (* enumerate proper submasks *)
      let sub = ref ((mask - 1) land mask) in
      while !sub > 0 do
        let lmask = !sub and rmask = mask land lnot !sub in
        if lmask < mask && rmask > 0 && memo.(lmask) <> [] && memo.(rmask) <> []
        then begin
          let js = joins_between ctx lmask rmask in
          let connected = js <> [] in
          (* Avoid cross products unless the query graph forces one. *)
          let allow_cross = ctx.q.Ast.joins = [] in
          if connected || allow_cross then
            List.iter
              (fun l ->
                List.iter
                  (fun r ->
                    let out_rows = join_output_rows ctx l r js in
                    acc := hash_join ctx l r out_rows @ !acc;
                    match js with
                    | (_, lc, rc) :: _ ->
                        acc :=
                          merge_join ctx lmask rmask l r lc rc out_rows @ !acc;
                        acc := nest_loop ctx l rmask r rc out_rows @ !acc
                    | [] -> ())
                  memo.(rmask))
              memo.(lmask)
        end;
        sub := (!sub - 1) land mask
      done;
      memo.(mask) <- prune_entries !acc
    end
  done;
  List.filter (fun e -> not e.pending) memo.(full)

(* --- Aggregation, ordering, and the final choice --- *)

let has_aggregate q =
  List.exists (function Ast.Agg _ -> true | Ast.Col _ -> false) q.Ast.select

let finalize ctx entries =
  let p = ctx.env.params in
  let full_mask = (1 lsl Array.length ctx.tables) - 1 in
  let group = normalize_order ~eq_cols:ctx.eq_cols ctx.q.Ast.group_by in
  let apply_group e =
    if ctx.q.Ast.group_by = [] then
      if has_aggregate ctx.q then begin
        let rows_in = Plan.rows e.plan in
        [ { e with
            order = [];
            plan =
              Plan.Aggregate
                {
                  child = e.plan;
                  kind = Plan.Plain_agg;
                  rows = 1.0;
                  cost = Plan.cost e.plan +. (rows_in *. p.cpu_operator_cost);
                } } ]
      end
      else [ e ]
    else begin
      let rows_in = Plan.rows e.plan in
      let rows_out =
        Card.group_cardinality ctx.env.schema ctx.q.Ast.group_by ~rows:rows_in
      in
      let sorted_variant =
        if order_satisfies_group ~group ~given:e.order then
          [ { e with
              plan =
                Plan.Aggregate
                  {
                    child = e.plan;
                    kind = Plan.Sorted_agg;
                    rows = rows_out;
                    cost = Plan.cost e.plan +. (rows_in *. p.cpu_operator_cost);
                  } } ]
        else begin
          (* sort then aggregate *)
          let width = mask_width ctx full_mask in
          let sc = Cost_params.sort_cost p ~rows:rows_in ~width in
          [ { e with
              order = group;
              plan =
                Plan.Aggregate
                  {
                    child =
                      Plan.Sort
                        {
                          child = e.plan;
                          keys = group;
                          rows = rows_in;
                          cost = Plan.cost e.plan +. sc;
                        };
                    kind = Plan.Sorted_agg;
                    rows = rows_out;
                    cost =
                      Plan.cost e.plan +. sc +. (rows_in *. p.cpu_operator_cost);
                  } } ]
        end
      in
      let hash_variant =
        { e with
          order = [];
          plan =
            Plan.Aggregate
              {
                child = e.plan;
                kind = Plan.Hash_agg;
                rows = rows_out;
                cost =
                  Plan.cost e.plan
                  +. Cost_params.hash_build_cost p ~rows:rows_in ~width:16;
              } }
      in
      hash_variant :: sorted_variant
    end
  in
  let apply_order e =
    let required =
      normalize_order ~eq_cols:ctx.eq_cols (List.map fst ctx.q.Ast.order_by)
    in
    if order_satisfies ~required ~given:e.order then e
    else if required = [] then e
    else begin
      let rows = Plan.rows e.plan in
      let width = mask_width ctx full_mask in
      let c = Cost_params.sort_cost p ~rows ~width in
      { e with
        order = required;
        plan =
          Plan.Sort
            { child = e.plan; keys = required; rows; cost = Plan.cost e.plan +. c };
      }
    end
  in
  let finals = List.concat_map apply_group entries |> List.map apply_order in
  match List.sort (fun a b -> compare (entry_cost a) (entry_cost b)) finals with
  | best :: _ -> Some best.plan
  | [] -> None

(* --- Public API --- *)

(* Trace probes: single [Atomic.get] each when tracing is off.  Direct
   what-if optimizations are the paper's expensive currency;
   template probes are the INUM-side calls that replace them. *)
let tr_optimize = Runtime.Trace.counter "whatif.optimize_calls"
let tr_template_probes = Runtime.Trace.counter "whatif.template_probes"

let optimize env (q : Ast.query) (config : Storage.Config.t) =
  ignore (Atomic.fetch_and_add env.calls 1);
  Runtime.Trace.incr tr_optimize;
  let ctx = make_ctx env q (Direct config) in
  match finalize ctx (plan_joins ctx) with
  | Some plan -> plan
  | None -> invalid_arg "Optimizer.optimize: no plan found"

let cost env q config = Plan.cost (optimize env q config)

(* Template construction for INUM: optimize with abstract slots that must
   obey [slot_specs].  The plan cost is the internal cost beta.  [None]
   when the specs admit no plan (e.g. an NLJ spec with no matching join). *)
let template_plan env (q : Ast.query) ~slot_specs =
  Runtime.Trace.incr tr_template_probes;
  let ctx = make_ctx env q (Template slot_specs) in
  finalize ctx (plan_joins ctx)

(* --- Bound queries --- *)

(* A lower bound on the beta of *every* template of [q], computed without
   running the DP — the bound-query entry point the lazy INUM probe loop
   seeds its per-combination lower bounds with.

   Soundness: every template plan over n >= 2 tables ends in a join that
   emits the full result and pays [cpu_tuple_cost] per emitted tuple
   (all three join methods do).  [Card.join_rows] clamps intermediate
   cardinalities up to 1.0, so the unclamped product
   [prod filtered_rows * prod join_selectivity] is a lower bound on the
   final join's output rows under any join order.  Grouping adds the
   cheaper of the hash-aggregate build and the sorted-aggregate pass over
   those rows; a plain aggregate pays one operator pass.  Sort costs are
   not counted: an ordered template may deliver the order for free. *)
let template_cost_floor env (q : Ast.query) =
  let p = env.params in
  match q.Ast.tables with
  | [] -> 0.0
  | tables ->
      let n = List.length tables in
      let prod_rows =
        List.fold_left
          (fun acc t -> acc *. Card.filtered_rows env.schema q t)
          1.0 tables
      in
      let sel =
        List.fold_left
          (fun acc j -> acc *. Card.join_selectivity env.schema j)
          1.0 q.Ast.joins
      in
      let r_full = max 1.0 (prod_rows *. sel) in
      let join_floor = if n >= 2 then r_full *. p.cpu_tuple_cost else 0.0 in
      let agg_floor =
        if q.Ast.group_by <> [] then
          min
            (Cost_params.hash_build_cost p ~rows:r_full ~width:16)
            (r_full *. p.cpu_operator_cost)
        else if has_aggregate q then r_full *. p.cpu_operator_cost
        else 0.0
      in
      join_floor +. agg_floor

(* --- Update statements --- *)

(* Maintenance cost of index [ix] under update [u]: for each affected row,
   descend the tree and write back a leaf. *)
let update_cost env (u : Ast.update) ix =
  if Storage.Index.table ix <> u.Ast.target then 0.0
  else if
    not (Storage.Index.affected_by_update ix ~set_columns:u.Ast.set_columns)
  then 0.0
  else begin
    let p = env.params in
    let shell = Ast.query_shell u in
    let rows = Card.filtered_rows env.schema shell u.Ast.target in
    let height = float_of_int (Storage.Index.height env.schema ix) in
    rows *. (((height +. 1.0) *. p.random_page_cost) +. p.cpu_index_tuple_cost)
  end

(* Cost of touching the base tuples themselves (c_q of the paper):
   independent of the configuration. *)
let update_base_cost env (u : Ast.update) =
  let shell = Ast.query_shell u in
  let rows = Card.filtered_rows env.schema shell u.Ast.target in
  rows *. (env.params.random_page_cost +. env.params.cpu_tuple_cost)

(* Full cost of a statement under a configuration, per the paper's model:
   cost(q_r, X) + sum over affected indexes in X + c_q for updates. *)
let statement_cost env (s : Ast.statement) config =
  match s with
  | Ast.Select q -> cost env q config
  | Ast.Update u ->
      let shell_cost = cost env (Ast.query_shell u) config in
      let maintenance =
        List.fold_left
          (fun acc ix -> acc +. update_cost env u ix)
          0.0
          (Storage.Config.on_table config u.Ast.target)
      in
      shell_cost +. maintenance +. update_base_cost env u

let workload_cost env (w : Ast.workload) config =
  List.fold_left
    (fun acc { Ast.stmt; Ast.weight } ->
      acc +. (weight *. statement_cost env stmt config))
    0.0 w
