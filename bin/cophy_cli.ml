(* The cophy command-line interface.

     cophy advise   — run the CoPhy advisor on a generated or SQL workload
     cophy compare  — run CoPhy and the baselines, report quality and time
     cophy pareto   — sweep the storage/cost Pareto curve (soft budget)

   All subcommands share the workload/schema options. *)

open Cmdliner

(* --- Shared options --- *)

let queries =
  let doc = "Number of statements in the generated workload." in
  Arg.(value & opt int 100 & info [ "n"; "queries" ] ~docv:"N" ~doc)

let seed =
  let doc = "Random seed for workload generation." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let skew =
  let doc = "Zipf skew z of the data (tpcdskew style; 0 = uniform)." in
  Arg.(value & opt float 0.0 & info [ "z"; "skew" ] ~docv:"Z" ~doc)

let scale =
  let doc = "TPC-H scale factor (1.0 is roughly 1 GB)." in
  Arg.(value & opt float 1.0 & info [ "sf"; "scale" ] ~docv:"SF" ~doc)

let budget =
  let doc = "Storage budget as a fraction of the database size." in
  Arg.(value & opt float 1.0 & info [ "m"; "budget" ] ~docv:"M" ~doc)

let shape =
  let doc = "Workload shape: $(b,hom) (15 TPC-H templates) or $(b,het) \
             (heterogeneous SPJ benchmark)." in
  Arg.(value & opt (enum [ ("hom", `Hom); ("het", `Het) ]) `Hom
       & info [ "workload" ] ~docv:"SHAPE" ~doc)

let updates =
  let doc = "Fraction of statements turned into UPDATEs." in
  Arg.(value & opt float 0.0 & info [ "updates" ] ~docv:"FRAC" ~doc)

let sql_file =
  let doc = "Tune the ';'-separated SQL statements in $(docv) instead of a \
             generated workload." in
  Arg.(value & opt (some file) None & info [ "sql" ] ~docv:"FILE" ~doc)

let gap =
  let doc = "Early-termination optimality gap (the paper uses 0.05)." in
  Arg.(value & opt float 0.05 & info [ "gap" ] ~docv:"GAP" ~doc)

let verbose =
  let doc = "Stream solver feedback (incumbent and bound) to stderr." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let jobs =
  let doc = "Worker domains for the parallel pipeline stages (INUM build, \
             decomposition).  0 means one per core.  The recommendation is \
             identical at every job count." in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let resolve_jobs j = if j <= 0 then Runtime.recommended_jobs () else j

let probe_budget_arg =
  let doc =
    "Up-front INUM what-if probes per query (0 = unlimited).  Deferred \
     probes resolve lazily when the advisor consults the incumbent \
     configuration, and the report carries a certified regret bound on \
     the remaining gap."
  in
  Arg.(value & opt int 16 & info [ "probe-budget" ] ~docv:"N" ~doc)

let resolve_probe_budget b = if b <= 0 then None else Some b

let backend_arg =
  let doc =
    "LP kernel for the solver: $(b,sparse) (revised simplex over an LU \
     factorization, with presolve; the default) or $(b,dense) (the dense \
     reference kernel, no presolve).  Both kernels agree on the \
     recommendation's objective value; on degenerate instances the \
     selected configuration can differ between equally good optima."
  in
  Arg.(
    value
    & opt (enum [ ("sparse", `Sparse); ("dense", `Dense) ]) `Sparse
    & info [ "backend" ] ~docv:"KERNEL" ~doc)

let resolve_backend = function
  | `Sparse -> Lp.Backend.default
  | `Dense -> Lp.Backend.dense_reference

let explain_flag =
  let doc = "Print a per-statement explanation of the recommendation." in
  Arg.(value & flag & info [ "explain" ] ~doc)

let trace_arg =
  let doc =
    "Record pipeline spans and counters and write them as Chrome \
     trace_event JSON to $(docv) (open in chrome://tracing or Perfetto).  \
     Tracing never changes the recommendation."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

(* Enable tracing around [f] and write the Chrome export afterwards; the
   [Fun.protect] keeps the partial trace on an exceptional exit. *)
let with_trace trace f =
  match trace with
  | None -> f ()
  | Some file ->
      Runtime.Trace.enable ();
      Fun.protect f ~finally:(fun () ->
          let oc = open_out file in
          output_string oc (Runtime.Trace.to_chrome_json ());
          output_char oc '\n';
          close_out oc;
          Fmt.epr "# trace written to %s@." file)

let make_inputs sf z shape n seed updates sql_file =
  let schema = Catalog.Tpch.schema ~sf ~z () in
  let workload =
    match sql_file with
    | Some file ->
        let ic = open_in file in
        let len = in_channel_length ic in
        let text = really_input_string ic len in
        close_in ic;
        List.map
          (fun stmt -> { Sqlast.Ast.stmt; weight = 1.0 })
          (Sqlast.Parse.script schema text)
    | None ->
        let base =
          match shape with
          | `Hom -> Workload.Gen.hom schema ~n ~seed
          | `Het -> Workload.Gen.het schema ~n ~seed
        in
        if updates > 0.0 then
          Workload.Gen.with_updates schema ~fraction:updates ~seed base
        else base
  in
  (schema, workload)

(* --- advise --- *)

let plain_solver_flag =
  let doc =
    "Disable the core-guided MIP engine on the decomposed solver path \
     (workload compression, benefit-initialized multipliers, reduced-cost \
     hardening, integer z subproblems) and run the plain subgradient loop \
     instead.  Useful for ablation runs; the recommendation quality is the \
     same, the solve is slower."
  in
  Arg.(value & flag & info [ "plain-solver" ] ~doc)

let advise_cmd =
  let run n seed z sf m shape updates sql_file gap verbose explain jobs backend
      plain_solver probe_budget trace =
    with_trace trace @@ fun () ->
    let jobs = resolve_jobs jobs in
    let probe_budget = resolve_probe_budget probe_budget in
    let schema, workload = make_inputs sf z shape n seed updates sql_file in
    let baseline = Advisors.Eval.baseline_config () in
    let solver_options =
      { Cophy.Solver.default_options with
        Cophy.Solver.gap_tolerance = gap;
        core_guided = not plain_solver;
        backend = resolve_backend backend;
        on_feedback =
          (if verbose then fun (f : Cophy.Solver.feedback) ->
             Fmt.epr "[%6.2fs] incumbent=%a bound=%.0f@."
               f.Cophy.Solver.elapsed
               Fmt.(option ~none:(any "-") (fmt "%.0f"))
               f.Cophy.Solver.incumbent f.Cophy.Solver.bound
           else ignore) }
    in
    let r =
      Cophy.Advisor.advise ~baseline ~solver_options ~jobs ?probe_budget schema
        workload ~budget_fraction:m
    in
    Fmt.pr "# CoPhy recommendation (%d statements, budget %.2fx data)@."
      (List.length workload) m;
    Fmt.pr "# candidates=%d bip_variables=%d gap=%.1f%% jobs=%d@."
      (Array.length r.Cophy.Advisor.candidates)
      (Cophy.Sproblem.variable_count r.Cophy.Advisor.problem)
      (100.0 *. r.Cophy.Advisor.report.Cophy.Solver.gap)
      jobs;
    Fmt.pr "# time: inum=%.2fs build=%.2fs solve=%.2fs@."
      r.Cophy.Advisor.timings.Cophy.Advisor.inum_seconds
      r.Cophy.Advisor.timings.Cophy.Advisor.build_seconds
      r.Cophy.Advisor.timings.Cophy.Advisor.solve_seconds;
    if verbose then
      Fmt.epr "%a@." Runtime.Stats.pp r.Cophy.Advisor.timings.Cophy.Advisor.stats;
    Storage.Config.iter
      (fun ix ->
        Fmt.pr "CREATE INDEX ON %s; -- %.1f MB@."
          (Storage.Index.to_string ix)
          (Storage.Index.size_bytes schema ix /. 1e6))
      r.Cophy.Advisor.config;
    let env = Optimizer.Whatif.make_env schema in
    Fmt.pr "# estimated cost reduction: %.1f%%@."
      (100.0
      *. Advisors.Eval.perf env workload r.Cophy.Advisor.config ~baseline);
    if explain then begin
      Fmt.pr "@.# per-statement explanation (INUM model):@.";
      List.iter
        (fun (e : Cophy.Advisor.explanation) ->
          Fmt.pr "q%-4d %10.0f -> %10.0f  %s@." e.Cophy.Advisor.statement_id
            e.Cophy.Advisor.cost_before e.Cophy.Advisor.cost_after
            (String.concat "; "
               (List.map
                  (fun (t, pick) ->
                    match pick with
                    | Some ix -> Storage.Index.to_string ix
                    | None -> t ^ ": scan")
                  e.Cophy.Advisor.picks)))
        (Cophy.Advisor.explain r)
    end
  in
  let doc = "Recommend indexes with the CoPhy advisor." in
  Cmd.v (Cmd.info "advise" ~doc)
    Term.(
      const run $ queries $ seed $ skew $ scale $ budget $ shape $ updates
      $ sql_file $ gap $ verbose $ explain_flag $ jobs $ backend_arg
      $ plain_solver_flag $ probe_budget_arg $ trace_arg)

(* --- compare --- *)

let compare_cmd =
  let advisors_arg =
    let doc = "Advisors to run (comma-separated): cophy, ilp, tool-a, tool-b." in
    Arg.(
      value
      & opt (list (enum [ ("cophy", `Cophy); ("ilp", `Ilp); ("tool-a", `ToolA);
                          ("tool-b", `ToolB) ]))
          [ `Cophy; `ToolB ]
      & info [ "advisors" ] ~docv:"LIST" ~doc)
  in
  let run n seed z sf m shape updates sql_file advisors jobs probe_budget trace
      =
    with_trace trace @@ fun () ->
    let jobs = resolve_jobs jobs in
    let probe_budget = resolve_probe_budget probe_budget in
    let schema, workload = make_inputs sf z shape n seed updates sql_file in
    let baseline = Advisors.Eval.baseline_config () in
    let budget_bytes = m *. Catalog.Tpch.database_size schema in
    Fmt.pr "%-8s %-8s %-10s %-8s@." "advisor" "perf" "time(s)" "indexes";
    List.iter
      (fun which ->
        let name, config, seconds =
          match which with
          | `Cophy ->
              let r =
                Cophy.Advisor.advise ~baseline ~jobs ?probe_budget schema
                  workload ~budget_fraction:m
              in
              ("cophy", r.Cophy.Advisor.config, Cophy.Advisor.total_seconds r)
          | `Ilp ->
              let env = Optimizer.Whatif.make_env schema in
              let cands = Array.of_list (Cophy.Cgen.generate workload) in
              let options = { Advisors.Ilp.default_options with jobs } in
              let r =
                Advisors.Ilp.solve ~options env workload cands
                  ~budget:budget_bytes
              in
              ( "ilp",
                r.Advisors.Ilp.config,
                r.Advisors.Ilp.timings.Advisors.Ilp.inum_seconds
                +. r.Advisors.Ilp.timings.Advisors.Ilp.build_seconds
                +. r.Advisors.Ilp.timings.Advisors.Ilp.solve_seconds )
          | `ToolA ->
              let env = Optimizer.Whatif.make_env schema in
              let r = Advisors.Tool_a.solve env workload ~budget:budget_bytes in
              ("tool-a", r.Advisors.Eval.config, r.Advisors.Eval.seconds)
          | `ToolB ->
              let env = Optimizer.Whatif.make_env schema in
              let r = Advisors.Tool_b.solve env workload ~budget:budget_bytes in
              ("tool-b", r.Advisors.Eval.config, r.Advisors.Eval.seconds)
        in
        let env = Optimizer.Whatif.make_env schema in
        Fmt.pr "%-8s %-8.4f %-10.2f %-8d@." name
          (Advisors.Eval.perf env workload config ~baseline)
          seconds
          (Storage.Config.cardinal config))
      advisors
  in
  let doc = "Run several advisors on the same input and compare them." in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(
      const run $ queries $ seed $ skew $ scale $ budget $ shape $ updates
      $ sql_file $ advisors_arg $ jobs $ probe_budget_arg $ trace_arg)

(* --- pareto --- *)

let pareto_cmd =
  let run n seed z sf shape updates sql_file jobs probe_budget trace =
    with_trace trace @@ fun () ->
    let jobs = resolve_jobs jobs in
    let probe_budget = resolve_probe_budget probe_budget in
    let schema, workload = make_inputs sf z shape n seed updates sql_file in
    let env = Optimizer.Whatif.make_env schema in
    let cache = Inum.build_workload ~jobs ?probe_budget env workload in
    let candidates = Array.of_list (Cophy.Cgen.generate workload) in
    let sp = Cophy.Sproblem.build env cache candidates in
    let points, solves =
      Cophy.Pareto.sweep sp ~metric_coeff:(Cophy.Pareto.storage_metric sp)
    in
    Fmt.pr "%-10s %-16s %-16s %s@." "lambda" "storage(MB)" "cost" "indexes";
    List.iter
      (fun (p : Cophy.Pareto.point) ->
        Fmt.pr "%-10.3f %-16.1f %-16.0f %d@." p.Cophy.Pareto.lambda
          (p.Cophy.Pareto.metric /. 1e6)
          p.Cophy.Pareto.cost
          (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0
             p.Cophy.Pareto.z))
      points;
    Fmt.pr "# %d solver invocations@." solves
  in
  let doc = "Generate the Pareto curve for a soft storage constraint." in
  Cmd.v (Cmd.info "pareto" ~doc)
    Term.(
      const run $ queries $ seed $ skew $ scale $ shape $ updates $ sql_file
      $ jobs $ probe_budget_arg $ trace_arg)

let main =
  let doc = "CoPhy: a scalable, portable, interactive index advisor" in
  Cmd.group (Cmd.info "cophy" ~doc ~version:"1.0.0")
    [ advise_cmd; compare_cmd; pareto_cmd ]

let () = exit (Cmd.eval main)
