(* cophy_serve — the long-running advisor daemon.

   Reads line-delimited JSON workload events (see Serve.Engine for the
   protocol) from stdin, or from a TCP client when --listen is given,
   and writes one JSON response per line.

     cophy_serve --window 256 -j 4 < events.jsonl
     cophy_serve --listen 7133 &
     cophy_serve --emit-replay --n 100 --events 2000 --seed 7 > events.jsonl

   --emit-replay prints a deterministic drifting event stream (the
   Workload.Replay generator) in protocol form and exits: the fixture
   generator for smoke tests and benchmarks. *)

open Cmdliner

let window_arg =
  let doc = "Sliding-window capacity in observation events." in
  Arg.(value & opt int 256 & info [ "window" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc = "Worker domains for INUM builds and solver fan-outs (0 = one \
             per core)." in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let budget_arg =
  let doc = "Storage budget as a fraction of the database size." in
  Arg.(value & opt float 0.25 & info [ "m"; "budget" ] ~docv:"M" ~doc)

let scale_arg =
  let doc = "TPC-H scale factor." in
  Arg.(value & opt float 1.0 & info [ "sf"; "scale" ] ~docv:"SF" ~doc)

let skew_arg =
  let doc = "Zipf skew z of the data (0 = uniform)." in
  Arg.(value & opt float 0.0 & info [ "z"; "skew" ] ~docv:"Z" ~doc)

let listen_arg =
  let doc = "Serve a TCP client on 127.0.0.1:$(docv) instead of stdin \
             (one client at a time; stream framing is identical)." in
  Arg.(value & opt (some int) None & info [ "listen" ] ~docv:"PORT" ~doc)

let probe_budget_arg =
  let doc =
    "Up-front INUM what-if probes per query (0 = unlimited).  Deferred \
     probes resolve lazily during recommend/whatif; the stats response \
     reports the outstanding count and the certified regret bound."
  in
  Arg.(value & opt int 16 & info [ "probe-budget" ] ~docv:"N" ~doc)

let no_certify_arg =
  let doc = "Skip Lp.Analyze certification of served recommendations." in
  Arg.(value & flag & info [ "no-certify" ] ~doc)

let trace_arg =
  let doc =
    "Record pipeline spans and counters and write them as Chrome \
     trace_event JSON to $(docv) on exit.  Tracing never changes any \
     response (latency fields excepted)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

(* --emit-replay options *)

let emit_replay_arg =
  let doc = "Print a drifting replay event stream (protocol JSONL) and \
             exit." in
  Arg.(value & flag & info [ "emit-replay" ] ~doc)

let n_arg =
  let doc = "Templates in the replay population." in
  Arg.(value & opt int 100 & info [ "n" ] ~docv:"N" ~doc)

let events_arg =
  let doc = "Observation events in the replay stream." in
  Arg.(value & opt int 1000 & info [ "events" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Random seed for the replay stream." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let recommend_every_arg =
  let doc = "Insert a recommend request every $(docv) observations \
             (0 = only at end of stream)." in
  Arg.(value & opt int 0 & info [ "recommend-every" ] ~docv:"N" ~doc)

let with_trace trace f =
  match trace with
  | None -> f ()
  | Some file ->
      Runtime.Trace.enable ();
      Fun.protect f ~finally:(fun () ->
          let oc = open_out file in
          output_string oc (Runtime.Trace.to_chrome_json ());
          output_char oc '\n';
          close_out oc;
          Fmt.epr "# trace written to %s@." file)

let emit_replay schema ~n ~events ~seed ~recommend_every =
  let stream =
    Workload.Replay.drift ~recommend_every schema ~n ~events ~seed
  in
  List.iter
    (fun ev ->
      let json =
        match ev with
        | Workload.Replay.Statement (stmt, delta) ->
            Serve.Json.Obj
              [
                ("op", Serve.Json.Str "statement");
                ("sql", Serve.Json.Str (Sqlast.Print.statement_to_string stmt));
                ("delta", Serve.Json.Num delta);
              ]
        | Workload.Replay.Recommend ->
            Serve.Json.Obj [ ("op", Serve.Json.Str "recommend") ]
      in
      print_endline (Serve.Json.to_string json))
    stream;
  print_endline
    (Serve.Json.to_string (Serve.Json.Obj [ ("op", Serve.Json.Str "stats") ]));
  print_endline
    (Serve.Json.to_string (Serve.Json.Obj [ ("op", Serve.Json.Str "quit") ]))

(* One request line in, one response line out, until EOF or quit. *)
let serve_channels engine ic oc =
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line ->
        let line = String.trim line in
        if line = "" then loop ()
        else begin
          let response = Serve.Engine.handle_line engine line in
          output_string oc response;
          output_char oc '\n';
          flush oc;
          (* a quit op ends the stream after its acknowledgment *)
          let is_quit =
            match Serve.Json.of_string line with
            | req -> Serve.Json.member "op" req = Some (Serve.Json.Str "quit")
            | exception Serve.Json.Parse_error _ -> false
          in
          if not is_quit then loop ()
        end
  in
  loop ()

let serve_tcp engine port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock 1;
  Fmt.epr "# cophy_serve listening on 127.0.0.1:%d@." port;
  let rec accept_loop () =
    let client, _ = Unix.accept sock in
    let ic = Unix.in_channel_of_descr client in
    let oc = Unix.out_channel_of_descr client in
    serve_channels engine ic oc;
    (try Unix.close client with Unix.Unix_error _ -> ());
    accept_loop ()
  in
  accept_loop ()

let main window jobs budget sf z listen probe_budget no_certify trace emit n
    events seed recommend_every =
  let schema = Catalog.Tpch.schema ~sf ~z () in
  if emit then emit_replay schema ~n ~events ~seed ~recommend_every
  else
    with_trace trace @@ fun () ->
    let jobs = if jobs <= 0 then Runtime.recommended_jobs () else jobs in
    let probe_budget = if probe_budget <= 0 then None else Some probe_budget in
    let engine =
      Serve.Engine.create ~window ~jobs ~budget_fraction:budget
        ~certify:(not no_certify) ?probe_budget schema
    in
    match listen with
    | Some port -> serve_tcp engine port
    | None -> serve_channels engine stdin stdout

let cmd =
  let doc = "long-running CoPhy advisor daemon (line-delimited JSON)" in
  let info = Cmd.info "cophy_serve" ~doc in
  Cmd.v info
    Term.(
      const main $ window_arg $ jobs_arg $ budget_arg $ scale_arg $ skew_arg
      $ listen_arg $ probe_budget_arg $ no_certify_arg $ trace_arg
      $ emit_replay_arg $ n_arg $ events_arg $ seed_arg $ recommend_every_arg)

let () = exit (Cmd.eval cmd)
