(* A small MIP solver front-end for CPLEX LP format files:

     dune exec bin/lp_solve.exe -- model.lp [--gap 0.01] [--time 60]
                                  [--backend sparse|dense] [--no-presolve]
                                  [--jobs 4] [--no-cuts] [--no-warm]
                                  [--stats] [--check] [--trace FILE]

   Prints the status, objective, and nonzero variable values — handy for
   inspecting BIPs exported with Lp.Lp_format.to_file.  Integer models
   run the best-first branch-and-bound: [--jobs] sets the parallel
   node-evaluation width (the certified objective is identical at every
   job count), [--no-cuts] disables cover-cut separation, and
   [--no-warm] makes every node re-solve cold instead of warm-starting
   the dual simplex from its parent basis.  [--stats] adds kernel
   counters (simplex pivots, dual iterations, warm resolves, sparse
   refactorizations) and the presolve's row/variable/bound reductions.
   [--check] runs the Lp.Analyze model checks before solving (static
   errors abort with exit code 4) and certifies the solution afterwards
   (a failed certificate aborts with exit code 5). *)

let () =
  let file = ref "" in
  let gap = ref 1e-6 in
  let time = ref infinity in
  let backend_kind = ref Lp.Backend.Sparse in
  let presolve = ref true in
  let want_stats = ref false in
  let want_check = ref false in
  let trace = ref None in
  let jobs = ref 1 in
  let cuts = ref true in
  let warm = ref true in
  let set_backend s =
    match Lp.Backend.kind_of_string s with
    | Some k -> backend_kind := k
    | None -> raise (Arg.Bad (Printf.sprintf "unknown backend %S" s))
  in
  let specs =
    [ ("--gap", Arg.Set_float gap, "relative optimality gap (default 1e-6)");
      ("--time", Arg.Set_float time, "time limit in seconds");
      ( "--jobs",
        Arg.Set_int jobs,
        "parallel node evaluations in branch and bound (default 1)" );
      ("--no-cuts", Arg.Clear cuts, "disable cover-cut separation");
      ( "--no-warm",
        Arg.Clear warm,
        "re-solve every node cold instead of warm-starting the dual simplex" );
      ( "--backend",
        Arg.Symbol ([ "sparse"; "dense" ], set_backend),
        " LP kernel: sparse revised simplex (default) or dense reference" );
      ("--no-presolve", Arg.Clear presolve, "disable the BIP presolve pass");
      ( "--stats",
        Arg.Set want_stats,
        "print kernel and presolve counters after solving" );
      ( "--check",
        Arg.Set want_check,
        "analyze the model before solving and certify the solution after" );
      ( "--trace",
        Arg.String (fun f -> trace := Some f),
        "FILE write kernel spans and counters as Chrome trace_event JSON" ) ]
  in
  Arg.parse specs (fun f -> file := f) "lp_solve [options] FILE.lp";
  (* at_exit so the trace survives the early-exit paths (infeasible,
     failed certificate, iteration limit). *)
  (match !trace with
  | None -> ()
  | Some tf ->
      Runtime.Trace.enable ();
      at_exit (fun () ->
          let oc = open_out tf in
          output_string oc (Runtime.Trace.to_chrome_json ());
          output_char oc '\n';
          close_out oc));
  if !file = "" then begin
    prerr_endline "usage: lp_solve [options] FILE.lp";
    exit 2
  end;
  let stats = Lp.Backend.create_stats () in
  let backend =
    Lp.Backend.create ~kind:!backend_kind ~presolve:!presolve ~stats ()
  in
  let print_stats () =
    if !want_stats then begin
      Fmt.pr "backend: %s%s@."
        (Lp.Backend.kind_to_string !backend_kind)
        (if !presolve then " + presolve" else "");
      Fmt.pr "lp solves: %d@." stats.Lp.Backend.lp_solves;
      Fmt.pr "pivots: %d@." stats.Lp.Backend.kernel.Lp.Simplex.pivots;
      Fmt.pr "dual iterations: %d@."
        stats.Lp.Backend.kernel.Lp.Simplex.dual_iterations;
      Fmt.pr "warm resolves: %d@."
        stats.Lp.Backend.kernel.Lp.Simplex.warm_resolves;
      Fmt.pr "refactorizations: %d@."
        stats.Lp.Backend.kernel.Lp.Simplex.refactorizations;
      if !presolve then
        Fmt.pr "presolve: %d rows removed, %d vars fixed, %d bounds tightened@."
          stats.Lp.Backend.presolve.Lp.Presolve.rows_removed
          stats.Lp.Backend.presolve.Lp.Presolve.vars_removed
          stats.Lp.Backend.presolve.Lp.Presolve.bounds_tightened
    end
  in
  match Lp.Lp_format.of_file !file with
  | exception Lp.Lp_format.Format_error msg ->
      Fmt.epr "parse error: %s@." msg;
      exit 1
  | p ->
      if !want_check then begin
        let issues = Lp.Analyze.check p in
        List.iter (fun i -> Fmt.pr "check: %a@." Lp.Analyze.pp_issue i) issues;
        if Lp.Analyze.has_errors issues then begin
          Fmt.epr "check: model has errors; not solving@.";
          exit 4
        end
      end;
      let certify ?duals ~obj x =
        if !want_check then begin
          (* --no-presolve removes the removed-row caveat, so certify
             then enforces the dual-residual bound too *)
          let cert = Lp.Analyze.certify ~presolve:!presolve ?duals ~obj p x in
          Fmt.pr "certificate: %s@." (Lp.Analyze.certificate_summary cert);
          if not cert.Lp.Analyze.cert_ok then begin
            List.iter (Fmt.epr "certify: %s@.") cert.Lp.Analyze.cert_issues;
            exit 5
          end
        end
      in
      let has_integers = Lp.Problem.integer_vars p <> [] in
      if has_integers then begin
        let options =
          { Lp.Branch_bound.default_options with
            Lp.Branch_bound.gap_tolerance = !gap;
            time_limit = !time;
            jobs = max 1 !jobs;
            cuts = !cuts;
            warm_start = !warm;
            backend }
        in
        let r = Lp.Branch_bound.solve ~options p in
        (match r.Lp.Branch_bound.status with
        | Lp.Branch_bound.Optimal -> Fmt.pr "status: optimal@."
        | Lp.Branch_bound.Feasible ->
            Fmt.pr "status: feasible (gap %.3g)@."
              ((r.Lp.Branch_bound.obj -. r.Lp.Branch_bound.bound)
              /. (abs_float r.Lp.Branch_bound.obj +. 1e-12))
        | Lp.Branch_bound.Infeasible -> Fmt.pr "status: infeasible@."
        | Lp.Branch_bound.Unbounded -> Fmt.pr "status: unbounded@."
        | Lp.Branch_bound.Limit -> Fmt.pr "status: limit reached@.");
        match r.Lp.Branch_bound.x with
        | None ->
            print_stats ();
            exit (if r.Lp.Branch_bound.status = Lp.Branch_bound.Infeasible then 1 else 3)
        | Some x ->
            Fmt.pr "objective: %.9g@.nodes: %d@.cuts: %d (uncertified %d)@.warm resolves: %d@."
              r.Lp.Branch_bound.obj r.Lp.Branch_bound.nodes
              r.Lp.Branch_bound.cuts_added r.Lp.Branch_bound.cuts_uncertified
              r.Lp.Branch_bound.warm_resolves;
            Array.iteri
              (fun v value ->
                if abs_float value > 1e-9 then
                  Fmt.pr "%s = %.9g@." (Lp.Problem.var p v).Lp.Problem.vname value)
              x;
            certify ~obj:r.Lp.Branch_bound.obj x;
            print_stats ()
      end
      else begin
        let r = Lp.Backend.solve backend p in
        (match r.Lp.Simplex.status with
        | Lp.Simplex.Optimal ->
            Fmt.pr "status: optimal@.objective: %.9g@.iterations: %d@."
              (r.Lp.Simplex.obj +. Lp.Problem.obj_offset p)
              r.Lp.Simplex.iterations;
            Array.iteri
              (fun v value ->
                if abs_float value > 1e-9 then
                  Fmt.pr "%s = %.9g@." (Lp.Problem.var p v).Lp.Problem.vname value)
              r.Lp.Simplex.x;
            certify ~duals:r.Lp.Simplex.duals
              ~obj:(r.Lp.Simplex.obj +. Lp.Problem.obj_offset p)
              r.Lp.Simplex.x;
            print_stats ()
        | Lp.Simplex.Infeasible ->
            Fmt.pr "status: infeasible@.";
            print_stats ();
            exit 1
        | Lp.Simplex.Unbounded ->
            Fmt.pr "status: unbounded@.";
            print_stats ();
            exit 1
        | Lp.Simplex.Iter_limit ->
            Fmt.pr "status: iteration limit@.";
            print_stats ();
            exit 3)
      end
