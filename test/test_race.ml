(* cophy-race tests: the fixture library under race_fixtures/ is
   compiled normally by dune; we analyze its .cmt typed trees with
   Race_core and assert the exact diagnostics each deliberate
   interference pattern produces.  The final guard analyzes every lib/
   library the @race alias covers and asserts the committed tree is
   interference-clean — a new unjustified shared write fails here as
   well as in CI. *)

(* Runs under `dune runtest` (cwd = _build/default/test) and under
   `dune exec test/test_race.exe` from the project root, as CI's race
   job does. *)
let base =
  if Sys.file_exists "race_fixtures" then "" else "_build/default/test/"

let fixture_dir = base ^ "race_fixtures/.race_fixtures.objs/byte"

let cmts_of dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".cmt")
  |> List.sort compare
  |> List.map (Filename.concat dir)

let analyze_fixtures () = Race_core.analyze (cmts_of fixture_dir)

let with_rule name vs = List.filter (fun v -> v.Race_core.rule = name) vs

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let mentions needle v =
  contains (v.Race_core.where ^ " " ^ v.Race_core.message) needle

(* --- The seeded races are caught, with actionable diagnostics --- *)

let test_racy_fixture () =
  let vs = Race_core.run_checks (analyze_fixtures ()) in
  let shared = with_rule "shared_mutable" vs in
  Alcotest.(check int) "three unjustified shared writes" 3
    (List.length shared);
  List.iter
    (fun v ->
      Alcotest.(check bool) "located in rf_racy.ml" true
        (contains v.Race_core.where "rf_racy.ml");
      Alcotest.(check bool) "names the parallel_map spawn site" true
        (mentions "Runtime.parallel_map at" v);
      Alcotest.(check bool) "suggests the [@race.allow] escape hatch" true
        (mentions "[@race.allow" v);
      match v.Race_core.path with
      | spawn :: _ ->
          Alcotest.(check bool) "path starts at the spawn site" true
            (contains spawn "spawned: ")
      | [] -> Alcotest.fail "finding carries no spawn->write path")
    shared;
  let has target kind =
    List.exists (fun v -> mentions target v && mentions kind v) shared
  in
  Alcotest.(check bool) "module-level hits race, named as such" true
    (has "Race_fixtures.Rf_racy.hits" "module-level");
  Alcotest.(check bool) "captured sum race, named as such" true
    (has "captured sum" "ref assignment");
  (* both closures writing [hits] are reported — the misdirected allow in
     bump_parallel suppresses nothing *)
  Alcotest.(check int) "both hits writers reported" 2
    (List.length
       (List.filter (fun v -> mentions "Race_fixtures.Rf_racy.hits" v) shared))

let test_unused_allow () =
  let vs = Race_core.run_checks (analyze_fixtures ()) in
  let unused = with_rule "unused_allow" vs in
  Alcotest.(check int) "exactly one stale justification" 1
    (List.length unused);
  let v = List.hd unused in
  Alcotest.(check bool) "names the misdirected target" true
    (mentions "wrong_target" v);
  Alcotest.(check bool) "located in rf_racy.ml" true
    (contains v.Race_core.where "rf_racy.ml")

let test_sarif_output () =
  (* the --json rendering of the same findings: rule ids, the physical
     location, and the spawn-site -> write path must all survive into
     the machine-readable report *)
  let vs = Race_core.run_checks (analyze_fixtures ()) in
  let log =
    Ak_findings.sarif_log ~tool:"cophy-race" ~rules:Race_core.all_rule_names vs
  in
  Alcotest.(check bool) "SARIF version tag" true
    (contains log {|"version":"2.1.0"|});
  Alcotest.(check bool) "shared_mutable results present" true
    (contains log {|"ruleId":"shared_mutable"|});
  Alcotest.(check bool) "unused_allow result present" true
    (contains log {|"ruleId":"unused_allow"|});
  Alcotest.(check bool) "physical location points at the fixture" true
    (contains log {|"uri":"test/race_fixtures/rf_racy.ml"|});
  Alcotest.(check bool) "spawn path is embedded" true
    (contains log "spawned: Runtime.parallel_map at")

(* --- Justified and slot-disjoint writes are silent, not skipped --- *)

let test_clean_fixtures_silent () =
  let vs = Race_core.run_checks (analyze_fixtures ()) in
  Alcotest.(check int) "no findings mention rf_allowed" 0
    (List.length (List.filter (mentions "rf_allowed") vs));
  Alcotest.(check int) "no findings mention rf_slotted" 0
    (List.length (List.filter (mentions "rf_slotted") vs))

let test_roots_registered () =
  (* silence is because the writes are justified / slot-disjoint /
     task-confined — not because the closures escaped the analysis *)
  let t = analyze_fixtures () in
  ignore (Race_core.run_checks t);
  let roots = Race_core.spawn_roots t in
  let has_root frag = List.exists (fun n -> contains n frag) roots in
  Alcotest.(check bool) "rf_allowed closure is a spawn root" true
    (has_root "Rf_allowed.total{closure@");
  Alcotest.(check bool) "rf_slotted closure is a spawn root" true
    (has_root "Rf_slotted.squares_into{closure@");
  Alcotest.(check bool) "rf_slotted per-task frame closure is a root" true
    (has_root "Rf_slotted.row_sums{closure@")

(* --- Negative guard: the committed lib/ tree is interference-clean --- *)

let lib_names =
  [ "advisors"; "catalog"; "constr"; "cophy"; "inum"; "lp"; "optimizer";
    "runtime"; "serve"; "sqlast"; "storage"; "workload" ]

let test_lib_tree_clean () =
  let files =
    List.concat_map
      (fun l -> cmts_of (Printf.sprintf "%s../lib/%s/.%s.objs/byte" base l l))
      lib_names
  in
  Alcotest.(check bool) "lib/ typed trees were found" true
    (List.length files > 30);
  let t = Race_core.analyze files in
  let vs = Race_core.run_checks t in
  List.iter (Race_core.pp_violation stderr) vs;
  Alcotest.(check int) "every lib/ spawn seam is interference-clean" 0
    (List.length vs);
  Alcotest.(check bool) "the audit actually covered the seams" true
    (List.length (Race_core.spawn_roots t) >= 10)

let () =
  Alcotest.run "race"
    [ ( "fixtures",
        [ Alcotest.test_case "seeded races are caught" `Quick
            test_racy_fixture;
          Alcotest.test_case "stale justification is a finding" `Quick
            test_unused_allow;
          Alcotest.test_case "findings serialize to SARIF with paths" `Quick
            test_sarif_output;
          Alcotest.test_case "justified / slot-disjoint writes are silent"
            `Quick test_clean_fixtures_silent;
          Alcotest.test_case "clean closures still audited as roots" `Quick
            test_roots_registered ] );
      ( "lib tree",
        [ Alcotest.test_case "committed spawn seams are clean" `Quick
            test_lib_tree_clean ] ) ]
