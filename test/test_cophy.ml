(* Tests for the CoPhy core: candidate generation, the structured BIP, the
   central Theorem-1 equivalence, both solver paths, soft-constraint
   Pareto sweeps, and interactive re-tuning. *)

open Sqlast

let schema = Catalog.Tpch.schema ()

let env () = Optimizer.Whatif.make_env schema

let small_workload ?(n = 6) ?(seed = 3) () = Workload.Gen.hom schema ~n ~seed

let db_size = Catalog.Tpch.database_size schema

(* --- CGen --- *)

let test_cgen_generates_candidates () =
  let w = small_workload ~n:15 () in
  let cands = Cophy.Cgen.generate w in
  Alcotest.(check bool) "a large candidate set" true (List.length cands > 50);
  (* all candidates valid and deduplicated *)
  List.iter
    (fun ix ->
      match Storage.Index.validate schema ix with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    cands;
  let as_set = Storage.Config.of_list cands in
  Alcotest.(check int) "no duplicates" (List.length cands)
    (Storage.Config.cardinal as_set)

let test_cgen_covers_predicates () =
  let w = small_workload ~n:15 () in
  let cands = Cophy.Cgen.generate w in
  (* every equality predicate column appears as some index's leading key *)
  List.iter
    (fun (q, _) ->
      List.iter
        (fun p ->
          if p.Ast.is_equality then begin
            let covered =
              List.exists
                (fun ix ->
                  Storage.Index.table ix = p.Ast.pred_col.Ast.table
                  && List.hd (Storage.Index.key_columns ix)
                     = p.Ast.pred_col.Ast.column)
                cands
            in
            Alcotest.(check bool)
              (Printf.sprintf "candidate leads with %s"
                 p.Ast.pred_col.Ast.column)
              true covered
          end)
        q.Ast.predicates)
    (Ast.selects w)

let test_cgen_dba_candidates () =
  let w = small_workload () in
  let dba = [ Storage.Index.create ~table:"region" [ "r_name" ] ] in
  let cands = Cophy.Cgen.generate ~dba w in
  Alcotest.(check bool) "dba set included" true
    (List.exists (Storage.Index.equal (List.hd dba)) cands)

let test_cgen_random () =
  let cands = Cophy.Cgen.random_candidates schema ~n:50 ~seed:1 in
  Alcotest.(check bool) "about n (deduped)" true (List.length cands > 30);
  List.iter
    (fun ix ->
      match Storage.Index.validate schema ix with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    cands

(* --- Sproblem --- *)

let build_problem ?(n = 4) ?(seed = 3) ?(cand_cap = 10) () =
  let e = env () in
  let w = small_workload ~n ~seed () in
  let cache = Inum.build_workload e w in
  let cands =
    Cophy.Cgen.generate w |> List.filteri (fun i _ -> i mod 7 < cand_cap)
    |> Array.of_list
  in
  (e, w, cache, Cophy.Sproblem.build e cache cands)

let test_sproblem_eval_matches_inum () =
  let e, _, cache, sp = build_problem () in
  (* evaluating the structured problem at z must equal the INUM workload
     cost of the corresponding configuration *)
  let ncand = Cophy.Sproblem.num_candidates sp in
  let rng = Random.State.make [| 5 |] in
  for _ = 1 to 10 do
    let z = Array.init ncand (fun _ -> Random.State.bool rng) in
    let config = Cophy.Sproblem.config_of sp z in
    let via_sp = Cophy.Sproblem.eval sp z in
    let via_inum = Inum.workload_cost e cache config in
    Alcotest.(check (float 1.0)) "eval = INUM cost" via_inum via_sp
  done

let test_sproblem_slot_pruning () =
  let _, _, _, sp = build_problem () in
  (* every slot has the no-index choice first and only improving gammas *)
  Array.iter
    (fun (b : Cophy.Sproblem.block) ->
      Array.iter
        (fun (t : Cophy.Sproblem.template) ->
          Array.iter
            (fun slot ->
              Alcotest.(check bool) "no-index first" true
                (Array.length slot > 0 && slot.(0).Cophy.Sproblem.cand = -1);
              let g0 = slot.(0).Cophy.Sproblem.gamma in
              Array.iteri
                (fun i c ->
                  if i > 0 then
                    Alcotest.(check bool) "dominated pruned" true
                      (c.Cophy.Sproblem.gamma < g0))
                slot)
            t.Cophy.Sproblem.choices)
        b.Cophy.Sproblem.templates)
    sp.Cophy.Sproblem.blocks

(* --- Theorem 1: the BIP optimum equals exhaustive search --- *)

let exhaustive_optimum sp ~budget =
  let ncand = Cophy.Sproblem.num_candidates sp in
  let best = ref infinity in
  for mask = 0 to (1 lsl ncand) - 1 do
    let z = Array.init ncand (fun i -> mask land (1 lsl i) <> 0) in
    if Cophy.Sproblem.total_size sp z <= budget then begin
      let c = Cophy.Sproblem.eval sp z in
      if c < !best then best := c
    end
  done;
  !best

let test_theorem1_equivalence () =
  (* small instance so 2^|S| enumeration is feasible *)
  let e = env () in
  let w = small_workload ~n:3 ~seed:11 () in
  let cache = Inum.build_workload e w in
  let cands =
    Cophy.Cgen.generate w |> List.filteri (fun i _ -> i mod 11 = 0)
    |> Array.of_list
  in
  let sp = Cophy.Sproblem.build e cache cands in
  Alcotest.(check bool) "enumerable" true (Array.length cands <= 12);
  let budget = 0.4 *. db_size in
  let expected = exhaustive_optimum sp ~budget in
  let p, vars = Cophy.Sproblem.to_lp ~budget sp in
  let options =
    { Lp.Branch_bound.default_options with Lp.Branch_bound.gap_tolerance = 1e-9 }
  in
  let r = Lp.Branch_bound.solve ~options p in
  (match r.Lp.Branch_bound.x with
  | Some x ->
      let z = Cophy.Sproblem.z_of_lp_solution sp vars x in
      Alcotest.(check (float 1.0)) "BIP optimum = exhaustive" expected
        (Cophy.Sproblem.eval sp z);
      Alcotest.(check (float 1.0)) "objective consistent" expected
        r.Lp.Branch_bound.obj
  | None -> Alcotest.fail "BIP should be feasible")

let prop_theorem1_random_instances =
  QCheck.Test.make ~name:"Theorem 1 on random small instances" ~count:6
    QCheck.(pair (int_range 0 1000) (float_range 0.2 0.8))
    (fun (seed, frac) ->
      let e = env () in
      let w = Workload.Gen.het schema ~n:3 ~seed in
      let cache = Inum.build_workload e w in
      let cands =
        Cophy.Cgen.generate w |> List.filteri (fun i _ -> i mod 13 = 0)
        |> fun l -> List.filteri (fun i _ -> i < 10) l |> Array.of_list
      in
      let sp = Cophy.Sproblem.build e cache cands in
      let budget = frac *. db_size in
      let expected = exhaustive_optimum sp ~budget in
      let p, vars = Cophy.Sproblem.to_lp ~budget sp in
      let options =
        { Lp.Branch_bound.default_options with
          Lp.Branch_bound.gap_tolerance = 1e-9 }
      in
      let r = Lp.Branch_bound.solve ~options p in
      match r.Lp.Branch_bound.x with
      | Some x ->
          let z = Cophy.Sproblem.z_of_lp_solution sp vars x in
          abs_float (Cophy.Sproblem.eval sp z -. expected) < 1.0
      | None -> expected = infinity)

(* --- Decomposition solver --- *)

let test_decomposition_respects_budget () =
  let _, _, _, sp = build_problem ~n:8 () in
  let budget = 0.3 *. db_size in
  let r = Cophy.Decomposition.solve sp ~budget ~z_rows:[] in
  Alcotest.(check bool) "within budget" true
    (Cophy.Sproblem.total_size sp r.Cophy.Decomposition.z <= budget +. 1.0);
  Alcotest.(check bool) "bound <= obj" true
    (r.Cophy.Decomposition.bound <= r.Cophy.Decomposition.obj +. 1e-6);
  Alcotest.(check (float 1.0)) "obj = eval(z)"
    (Cophy.Sproblem.eval sp r.Cophy.Decomposition.z)
    r.Cophy.Decomposition.obj

let test_decomposition_near_exact () =
  (* on a small instance the decomposition incumbent should be close to
     the exact optimum *)
  let e = env () in
  let w = small_workload ~n:4 ~seed:21 () in
  let cache = Inum.build_workload e w in
  let cands =
    Cophy.Cgen.generate w |> List.filteri (fun i _ -> i mod 9 = 0)
    |> Array.of_list
  in
  let sp = Cophy.Sproblem.build e cache cands in
  let budget = 0.5 *. db_size in
  let exact = exhaustive_optimum sp ~budget in
  let r = Cophy.Decomposition.solve sp ~budget ~z_rows:[] in
  Alcotest.(check bool) "within 10% of optimum" true
    (r.Cophy.Decomposition.obj <= exact *. 1.10 +. 1.0);
  Alcotest.(check bool) "bound below optimum" true
    (r.Cophy.Decomposition.bound <= exact +. 1.0)

let test_decomposition_events_monotone () =
  let _, _, _, sp = build_problem ~n:8 () in
  let options =
    { Cophy.Decomposition.default_options with
      Cophy.Decomposition.log_events = true; gap_tolerance = 1e-4;
      max_iters = 60 }
  in
  let r = Cophy.Decomposition.solve ~options sp ~budget:(0.5 *. db_size) ~z_rows:[] in
  let events = List.rev r.Cophy.Decomposition.events in
  Alcotest.(check bool) "events streamed" true (List.length events >= 2);
  let rec check_monotone prev = function
    | [] -> ()
    | (e : Cophy.Decomposition.event) :: rest ->
        Alcotest.(check bool) "incumbent non-increasing" true
          (e.Cophy.Decomposition.incumbent <= prev.Cophy.Decomposition.incumbent +. 1e-6);
        check_monotone e rest
  in
  (match events with e :: rest -> check_monotone e rest | [] -> ());
  (* gap is eventually reported *)
  let final = List.nth events (List.length events - 1) in
  Alcotest.(check bool) "final bound below incumbent" true
    (final.Cophy.Decomposition.bound <= final.Cophy.Decomposition.incumbent +. 1e-6)

let test_decomposition_z_rows () =
  let _, _, _, sp = build_problem ~n:6 () in
  let forbidden_pos = 0 in
  let z_rows =
    [ { Constr.row_coeffs = [ (forbidden_pos, 1.0) ]; row_cmp = Constr.Le;
        row_rhs = 0.0; row_name = "forbid0" } ]
  in
  let r = Cophy.Decomposition.solve sp ~budget:db_size ~z_rows in
  Alcotest.(check bool) "forbidden not selected" false
    r.Cophy.Decomposition.z.(forbidden_pos)

let test_decomposition_time_limit () =
  (* even with (almost) no time, a feasible incumbent and a valid bound
     come back — the early-termination contract *)
  let _, _, _, sp = build_problem ~n:8 () in
  let options =
    { Cophy.Decomposition.default_options with
      Cophy.Decomposition.time_limit = 0.001; max_iters = 1 }
  in
  let budget = 0.5 *. db_size in
  let r = Cophy.Decomposition.solve ~options sp ~budget ~z_rows:[] in
  Alcotest.(check bool) "feasible" true
    (Cophy.Sproblem.total_size sp r.Cophy.Decomposition.z <= budget +. 1.0);
  Alcotest.(check bool) "bound valid" true
    (r.Cophy.Decomposition.bound <= r.Cophy.Decomposition.obj +. 1e-6)

let test_decomposition_warm_start () =
  let _, _, _, sp = build_problem ~n:8 () in
  let budget = 0.5 *. db_size in
  let r1 = Cophy.Decomposition.solve sp ~budget ~z_rows:[] in
  (* the full warm seam: prior multipliers plus the prior incumbent
     selection — the retune pattern — makes the restart never worse *)
  let warm_sel =
    Cophy.Sproblem.config_of sp r1.Cophy.Decomposition.z
    |> Storage.Config.to_list
  in
  let options =
    { Cophy.Decomposition.default_options with
      Cophy.Decomposition.warm = Some r1.Cophy.Decomposition.multipliers;
      warm_z = Some warm_sel;
      max_iters = 50 }
  in
  let r2 = Cophy.Decomposition.solve ~options sp ~budget ~z_rows:[] in
  Alcotest.(check bool) "warm restart no worse" true
    (r2.Cophy.Decomposition.obj <= r1.Cophy.Decomposition.obj +. 1e-6)

let test_update_heavy_advisor () =
  let w =
    Workload.Gen.hom schema ~n:8 ~seed:13
    |> Workload.Gen.with_updates schema ~fraction:0.6 ~seed:13
  in
  let r = Cophy.Advisor.advise schema w ~budget_fraction:0.4 in
  Alcotest.(check bool) "budget respected" true
    (Storage.Config.total_size schema r.Cophy.Advisor.config
     <= (0.4 *. db_size) +. 1.0);
  (* the estimated cost includes maintenance, so it can never be worse
     than selecting nothing *)
  Alcotest.(check bool) "never worse than empty" true
    (r.Cophy.Advisor.estimated_cost <= r.Cophy.Advisor.estimated_base +. 1e-6)

let test_naive_links_ablation () =
  (* the aggregated-link LP bound dominates the naive per-variable one *)
  let _, _, _, sp = build_problem ~n:3 ~cand_cap:6 () in
  let budget = 0.5 *. db_size in
  let p_agg, _ = Cophy.Sproblem.to_lp ~budget sp in
  let p_naive, _ = Cophy.Sproblem.to_lp ~budget ~naive_links:true sp in
  let r_agg = Lp.Simplex.solve p_agg in
  let r_naive = Lp.Simplex.solve p_naive in
  Alcotest.(check bool) "aggregated bound tighter or equal" true
    (r_agg.Lp.Simplex.obj >= r_naive.Lp.Simplex.obj -. 1e-6);
  Alcotest.(check bool) "fewer rows" true
    (Lp.Problem.nrows p_agg <= Lp.Problem.nrows p_naive)

let test_pruning_ablation_same_optimum () =
  (* dominance pruning is lossless: both problems have the same optimum *)
  let e = env () in
  let w = small_workload ~n:3 ~seed:11 () in
  let cache = Inum.build_workload e w in
  let cands =
    Cophy.Cgen.generate w |> List.filteri (fun i _ -> i mod 11 = 0)
    |> Array.of_list
  in
  let sp = Cophy.Sproblem.build e cache cands in
  let sp' = Cophy.Sproblem.build ~prune:false e cache cands in
  let budget = 0.4 *. db_size in
  Alcotest.(check bool) "unpruned is bigger" true
    (Cophy.Sproblem.variable_count sp' >= Cophy.Sproblem.variable_count sp);
  Alcotest.(check (float 1.0)) "same exhaustive optimum"
    (exhaustive_optimum sp ~budget)
    (exhaustive_optimum sp' ~budget)

(* --- Solver dispatch and feasibility --- *)

let test_solver_infeasible () =
  let _, _, _, sp = build_problem () in
  let z_rows =
    [ { Constr.row_coeffs = [ (0, 1.0) ]; row_cmp = Constr.Ge; row_rhs = 1.0;
        row_name = "need0" };
      { Constr.row_coeffs = [ (0, 1.0) ]; row_cmp = Constr.Le; row_rhs = 0.0;
        row_name = "forbid0" } ]
  in
  match Cophy.Solver.solve sp ~budget:db_size ~z_rows with
  | exception Cophy.Solver.Infeasible _ -> ()
  | _ -> Alcotest.fail "expected Infeasible"

let test_solver_paths_agree () =
  let _, _, _, sp = build_problem ~n:3 ~cand_cap:4 () in
  let budget = 0.5 *. db_size in
  let exact =
    Cophy.Solver.solve
      ~options:{ Cophy.Solver.default_options with
                 Cophy.Solver.method_ = Cophy.Solver.Exact;
                 gap_tolerance = 1e-9 }
      sp ~budget ~z_rows:[]
  in
  let decomposed =
    Cophy.Solver.solve
      ~options:{ Cophy.Solver.default_options with
                 Cophy.Solver.method_ = Cophy.Solver.Decomposed;
                 gap_tolerance = 1e-4; max_iters = 300 }
      sp ~budget ~z_rows:[]
  in
  Alcotest.(check bool) "near agreement" true
    (decomposed.Cophy.Solver.objective
     <= (exact.Cophy.Solver.objective *. 1.10) +. 1.0)

(* Debug-mode certification: both paths produce selections that pass
   Lp.Analyze certification, and enabling it changes no answer. *)
let test_solver_certified () =
  let _, _, _, sp = build_problem ~n:3 ~cand_cap:4 () in
  let budget = 0.5 *. db_size in
  let run certify method_ =
    Cophy.Solver.solve
      ~options:{ Cophy.Solver.default_options with
                 Cophy.Solver.method_;
                 gap_tolerance = 1e-6; certify }
      sp ~budget ~z_rows:[]
  in
  let plain = run false Cophy.Solver.Exact in
  let exact = run true Cophy.Solver.Exact in
  Alcotest.(check (float 1e-6)) "certification changes nothing"
    plain.Cophy.Solver.objective exact.Cophy.Solver.objective;
  let decomposed = run true Cophy.Solver.Decomposed in
  Alcotest.(check bool) "decomposed selection certified non-trivially" true
    (Array.length decomposed.Cophy.Solver.z > 0)

(* --- Advisor pipeline --- *)

let test_advisor_end_to_end () =
  let w = small_workload ~n:8 () in
  let r = Cophy.Advisor.advise schema w ~budget_fraction:0.5 in
  Alcotest.(check bool) "some indexes chosen" true
    (Storage.Config.cardinal r.Cophy.Advisor.config > 0);
  Alcotest.(check bool) "improves" true
    (r.Cophy.Advisor.estimated_cost < r.Cophy.Advisor.estimated_base);
  Alcotest.(check bool) "within budget" true
    (Storage.Config.total_size schema r.Cophy.Advisor.config
     <= (0.5 *. db_size) +. 1.0);
  Alcotest.(check bool) "timings recorded" true
    (Cophy.Advisor.total_seconds r > 0.0)

let test_udf_constraint () =
  (* black-box rule: at most 3 indexes total (appendix E.5 mechanism) *)
  let w = small_workload ~n:6 () in
  let cap3 =
    Constr.Udf
      {
        udf_name = "at most 3 indexes";
        accepts =
          (fun _ z ->
            Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 z <= 3);
      }
  in
  let r =
    Cophy.Advisor.advise
      ~constraints:(Constr.empty |> Constr.add_hard cap3)
      schema w ~budget_fraction:1.0
  in
  Alcotest.(check bool) "udf respected" true
    (Storage.Config.cardinal r.Cophy.Advisor.config <= 3);
  (* an unsatisfiable black box raises *)
  let never =
    Constr.Udf { udf_name = "never"; accepts = (fun _ _ -> false) }
  in
  match
    Cophy.Advisor.advise
      ~constraints:(Constr.empty |> Constr.add_hard never)
      schema w ~budget_fraction:1.0
  with
  | exception Cophy.Solver.Infeasible _ -> ()
  | _ -> Alcotest.fail "expected Infeasible for unsatisfiable UDF"

(* --- Pareto sweep --- *)

let test_pareto_sweep () =
  let _, _, _, sp = build_problem ~n:6 () in
  let metric = Cophy.Pareto.storage_metric sp in
  let points, solves = Cophy.Pareto.sweep ~epsilon:0.05 sp ~metric_coeff:metric in
  Alcotest.(check bool) "at least endpoints" true (List.length points >= 2);
  Alcotest.(check bool) "solver invoked per point" true (solves >= 2);
  (* Pareto shape: as metric (storage) grows, cost must not grow *)
  let rec check = function
    | (a : Cophy.Pareto.point) :: (b : Cophy.Pareto.point) :: rest ->
        Alcotest.(check bool) "sorted by metric" true (a.Cophy.Pareto.metric <= b.Cophy.Pareto.metric);
        Alcotest.(check bool) "cost non-increasing along curve" true
          (b.Cophy.Pareto.cost <= a.Cophy.Pareto.cost +. 1e-3);
        check (b :: rest)
    | _ -> ()
  in
  check points

let test_pareto_chord_vs_dense () =
  (* the chord sweep's points must not be dominated by a dense lambda
     sweep (same solver, 21 evenly spaced lambdas) *)
  let _, _, _, sp = build_problem ~n:4 () in
  let metric = Cophy.Pareto.storage_metric sp in
  let chord_points, _ = Cophy.Pareto.sweep ~epsilon:0.02 sp ~metric_coeff:metric in
  let dense =
    List.init 21 (fun i ->
        let lambda = max 0.001 (min 0.999 (float_of_int i /. 20.0)) in
        let p, _ =
          Cophy.Pareto.scalarized_solve sp ~metric_coeff:metric ~lambda
            ~warm:None
        in
        p)
  in
  List.iter
    (fun (cp : Cophy.Pareto.point) ->
      let dominated =
        List.exists
          (fun (dp : Cophy.Pareto.point) ->
            dp.Cophy.Pareto.metric < cp.Cophy.Pareto.metric *. 0.98 -. 1.0
            && dp.Cophy.Pareto.cost < cp.Cophy.Pareto.cost *. 0.98 -. 1.0)
          dense
      in
      Alcotest.(check bool) "chord point not strictly dominated" false dominated)
    chord_points

(* --- Interactive sessions --- *)

let test_interactive_retune () =
  let w = small_workload ~n:6 () in
  let session =
    Cophy.Interactive.create schema w ~budget:(0.5 *. db_size)
  in
  let r1 = Cophy.Interactive.retune session in
  (* adding fresh candidates and retuning must not make things worse *)
  let extra = Cophy.Cgen.random_candidates schema ~n:10 ~seed:99 in
  Cophy.Interactive.add_candidates session extra;
  let r2 = Cophy.Interactive.retune session in
  Alcotest.(check bool) "more candidates never hurt" true
    (r2.Cophy.Solver.objective <= (r1.Cophy.Solver.objective *. 1.05) +. 1.0);
  (* deterministic workload extension *)
  Cophy.Interactive.add_statements session (Workload.Gen.hom schema ~n:2 ~seed:77);
  let r3 = Cophy.Interactive.retune session in
  Alcotest.(check bool) "still feasible" true
    (r3.Cophy.Solver.objective > 0.0)

let test_interactive_budget_change () =
  let w = small_workload ~n:6 () in
  let session = Cophy.Interactive.create schema w ~budget:(1.0 *. db_size) in
  let rich = Cophy.Interactive.retune session in
  Cophy.Interactive.set_budget session (0.1 *. db_size);
  let poor = Cophy.Interactive.retune session in
  Alcotest.(check bool) "tighter budget no better" true
    (poor.Cophy.Solver.objective >= rich.Cophy.Solver.objective -. 1e-6);
  Alcotest.(check bool) "tight budget respected" true
    (Storage.Config.total_size schema poor.Cophy.Solver.config
     <= (0.1 *. db_size) +. 1.0)

(* A warm retune after a frequency drift must land on the same certified
   objective as solving the drifted workload from scratch — across jobs
   and workload densities.  [certify:true] makes the solver certify each
   recommendation against the z polytope, so a pass here covers the
   serving loop's correctness contract. *)
let test_interactive_warm_equals_scratch () =
  let drifted_weight i w = if i mod 2 = 0 then w *. 3.0 else w *. 0.5 in
  List.iter
    (fun jobs ->
      List.iter
        (fun n ->
          let ctx = Printf.sprintf "jobs=%d n=%d" jobs n in
          let budget = 0.5 *. db_size in
          let w = Workload.Gen.hom schema ~n ~seed:21 in
          let options =
            {
              Cophy.Solver.default_options with
              Cophy.Solver.method_ = Cophy.Solver.Decomposed;
              certify = true;
            }
          in
          let session = Cophy.Interactive.create ~jobs schema w ~budget in
          ignore (Cophy.Interactive.retune ~options session);
          List.iteri
            (fun i { Ast.stmt; weight } ->
              Cophy.Interactive.set_weight session (Ast.statement_id stmt)
                (drifted_weight i weight))
            w;
          let warm = Cophy.Interactive.retune ~options session in
          let w' =
            List.mapi
              (fun i wt -> { wt with Ast.weight = drifted_weight i wt.Ast.weight })
              w
          in
          let scratch_session =
            Cophy.Interactive.create ~jobs
              ~candidates:(Cophy.Interactive.candidates session)
              schema w' ~budget
          in
          let scratch = Cophy.Interactive.retune ~options scratch_session in
          let rel_diff =
            Float.abs (warm.Cophy.Solver.objective -. scratch.Cophy.Solver.objective)
            /. Float.max 1.0 scratch.Cophy.Solver.objective
          in
          Alcotest.(check bool)
            (ctx ^ ": warm retune = scratch objective") true (rel_diff <= 1e-9))
        [ 4; 9 ])
    [ 1; 4 ]

(* --- Parallel determinism (jobs must not change any result) --- *)

(* Subgradient iteration order, incumbents and the final recommendation
   must not depend on domain scheduling: per-block subproblems are
   independent and every float reduction runs in fixed block order. *)
let test_parallel_determinism () =
  let w = Workload.Gen.hom schema ~n:30 ~seed:5 in
  let run jobs =
    let e = env () in
    let cache = Inum.build_workload ~jobs e w in
    let cands = Array.of_list (Cophy.Cgen.generate w) in
    let sp = Cophy.Sproblem.build e cache cands in
    let options =
      {
        Cophy.Decomposition.default_options with
        Cophy.Decomposition.max_iters = 60;
        jobs;
      }
    in
    let r =
      Cophy.Decomposition.solve ~options sp ~budget:(0.5 *. db_size)
        ~z_rows:[]
    in
    (cache, r)
  in
  let c1, r1 = run 1 in
  let c4, r4 = run 4 in
  Alcotest.(check int) "total_init_calls identical" (Inum.total_init_calls c1)
    (Inum.total_init_calls c4);
  Alcotest.(check int) "statement count" (List.length c1.Inum.selects)
    (List.length c4.Inum.selects);
  List.iter2
    (fun (q1, w1, i1) (q4, w4, i4) ->
      Alcotest.(check int) "statement order" q1.Ast.query_id q4.Ast.query_id;
      Alcotest.(check (float 0.0)) "weight" w1 w4;
      Alcotest.(check int) "template count" (Inum.template_count i1)
        (Inum.template_count i4);
      Alcotest.(check int) "init calls" (Inum.init_calls i1)
        (Inum.init_calls i4))
    c1.Inum.selects c4.Inum.selects;
  Alcotest.(check (float 0.0)) "objective identical" r1.Cophy.Decomposition.obj
    r4.Cophy.Decomposition.obj;
  Alcotest.(check (float 0.0)) "bound identical" r1.Cophy.Decomposition.bound
    r4.Cophy.Decomposition.bound;
  Alcotest.(check int) "iteration count identical"
    r1.Cophy.Decomposition.iterations r4.Cophy.Decomposition.iterations;
  Alcotest.(check (array bool)) "selection identical" r1.Cophy.Decomposition.z
    r4.Cophy.Decomposition.z

let test_parallel_determinism_advisor () =
  let w = small_workload ~n:8 ~seed:11 () in
  let run jobs = Cophy.Advisor.advise ~jobs schema w ~budget_fraction:0.4 in
  let r1 = run 1 and r4 = run 4 in
  Alcotest.(check (float 0.0)) "objective identical"
    r1.Cophy.Advisor.report.Cophy.Solver.objective
    r4.Cophy.Advisor.report.Cophy.Solver.objective;
  Alcotest.(check bool) "config identical" true
    (Storage.Config.equal r1.Cophy.Advisor.config r4.Cophy.Advisor.config)

(* The recommendation must also be invariant across the jobs x backend
   grid: LP-kernel choice (sparse revised simplex + presolve vs the
   dense reference) and domain count are both implementation details. *)
let test_backend_determinism_advisor () =
  let w = small_workload ~n:8 ~seed:11 () in
  let run ~jobs ~backend =
    Cophy.Advisor.advise ~jobs ~backend schema w ~budget_fraction:0.4
  in
  let reference = run ~jobs:1 ~backend:Lp.Backend.dense_reference in
  List.iter
    (fun (jobs, backend, label) ->
      let r = run ~jobs ~backend in
      Alcotest.(check bool)
        (Printf.sprintf "config identical (%s)" label)
        true
        (Storage.Config.equal reference.Cophy.Advisor.config
           r.Cophy.Advisor.config);
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "objective identical (%s)" label)
        reference.Cophy.Advisor.report.Cophy.Solver.objective
        r.Cophy.Advisor.report.Cophy.Solver.objective)
    [
      (4, Lp.Backend.dense_reference, "jobs 4, dense");
      (1, Lp.Backend.default, "jobs 1, sparse");
      (4, Lp.Backend.default, "jobs 4, sparse");
    ]

let test_backend_determinism_decomposition () =
  let w = Workload.Gen.hom schema ~n:30 ~seed:5 in
  let run ~jobs ~backend =
    let e = env () in
    let cache = Inum.build_workload ~jobs e w in
    let cands = Array.of_list (Cophy.Cgen.generate w) in
    let sp = Cophy.Sproblem.build e cache cands in
    let options =
      {
        Cophy.Decomposition.default_options with
        Cophy.Decomposition.max_iters = 40;
        jobs;
        backend;
      }
    in
    (* a z row forces the decomposition through the LP z subproblem *)
    let z_rows =
      [
        {
          Constr.row_name = "at-most-6";
          row_coeffs = List.init (Array.length cands) (fun a -> (a, 1.0));
          row_cmp = Constr.Le;
          row_rhs = 6.0;
        };
      ]
    in
    Cophy.Decomposition.solve ~options sp ~budget:(0.5 *. db_size) ~z_rows
  in
  let reference = run ~jobs:1 ~backend:Lp.Backend.dense_reference in
  List.iter
    (fun (jobs, backend, label) ->
      let r = run ~jobs ~backend in
      Alcotest.(check (array bool))
        (Printf.sprintf "selection identical (%s)" label)
        reference.Cophy.Decomposition.z r.Cophy.Decomposition.z;
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "objective identical (%s)" label)
        reference.Cophy.Decomposition.obj r.Cophy.Decomposition.obj)
    [
      (4, Lp.Backend.dense_reference, "jobs 4, dense");
      (1, Lp.Backend.default, "jobs 1, sparse");
      (4, Lp.Backend.default, "jobs 4, sparse");
    ]

(* Tracing must be pure observation: turning Runtime.Trace on cannot
   change the recommendation, objective, or bound at any job count or
   LP backend — the spans and counters only ever read the clock and
   tick atomics, never feed back into the pipeline. *)
let test_trace_neutrality () =
  let w = small_workload ~n:8 ~seed:11 () in
  let run ~trace ~jobs ~backend =
    Runtime.Trace.reset ();
    if trace then Runtime.Trace.enable ();
    Fun.protect ~finally:Runtime.Trace.disable @@ fun () ->
    Cophy.Advisor.advise ~jobs ~backend schema w ~budget_fraction:0.4
  in
  List.iter
    (fun (jobs, backend, label) ->
      let off = run ~trace:false ~jobs ~backend in
      let on = run ~trace:true ~jobs ~backend in
      Alcotest.(check bool)
        (Printf.sprintf "config identical (%s)" label)
        true
        (Storage.Config.equal off.Cophy.Advisor.config on.Cophy.Advisor.config);
      Alcotest.(check (float 0.0))
        (Printf.sprintf "objective bit-identical (%s)" label)
        off.Cophy.Advisor.report.Cophy.Solver.objective
        on.Cophy.Advisor.report.Cophy.Solver.objective;
      Alcotest.(check (float 0.0))
        (Printf.sprintf "bound bit-identical (%s)" label)
        off.Cophy.Advisor.report.Cophy.Solver.bound
        on.Cophy.Advisor.report.Cophy.Solver.bound;
      (* the traced run actually observed something *)
      Alcotest.(check bool)
        (Printf.sprintf "spans recorded (%s)" label)
        true
        (List.length (Runtime.Trace.spans ()) > 0))
    [
      (1, Lp.Backend.default, "jobs 1, sparse");
      (4, Lp.Backend.default, "jobs 4, sparse");
      (1, Lp.Backend.dense_reference, "jobs 1, dense");
      (4, Lp.Backend.dense_reference, "jobs 4, dense");
    ]

let () =
  Alcotest.run "cophy"
    [
      ( "cgen",
        [
          Alcotest.test_case "generates" `Quick test_cgen_generates_candidates;
          Alcotest.test_case "covers predicates" `Quick test_cgen_covers_predicates;
          Alcotest.test_case "dba set" `Quick test_cgen_dba_candidates;
          Alcotest.test_case "random candidates" `Quick test_cgen_random;
        ] );
      ( "sproblem",
        [
          Alcotest.test_case "eval = INUM" `Quick test_sproblem_eval_matches_inum;
          Alcotest.test_case "slot pruning lossless form" `Quick test_sproblem_slot_pruning;
        ] );
      ( "theorem1",
        [
          Alcotest.test_case "equivalence" `Slow test_theorem1_equivalence;
          QCheck_alcotest.to_alcotest prop_theorem1_random_instances;
        ] );
      ( "decomposition",
        [
          Alcotest.test_case "budget" `Quick test_decomposition_respects_budget;
          Alcotest.test_case "near exact" `Quick test_decomposition_near_exact;
          Alcotest.test_case "event stream" `Quick test_decomposition_events_monotone;
          Alcotest.test_case "z rows" `Quick test_decomposition_z_rows;
          Alcotest.test_case "time limit" `Quick test_decomposition_time_limit;
          Alcotest.test_case "warm start" `Quick test_decomposition_warm_start;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "update-heavy advising" `Quick test_update_heavy_advisor;
          Alcotest.test_case "naive links weaker" `Quick test_naive_links_ablation;
          Alcotest.test_case "pruning lossless" `Slow test_pruning_ablation_same_optimum;
          Alcotest.test_case "black-box (udf) constraint" `Quick test_udf_constraint;
        ] );
      ( "solver",
        [
          Alcotest.test_case "infeasible" `Quick test_solver_infeasible;
          Alcotest.test_case "paths agree" `Slow test_solver_paths_agree;
          Alcotest.test_case "certified" `Quick test_solver_certified;
        ] );
      ("advisor", [ Alcotest.test_case "end to end" `Quick test_advisor_end_to_end ]);
      ( "pareto",
        [
          Alcotest.test_case "sweep" `Quick test_pareto_sweep;
          Alcotest.test_case "chord vs dense" `Slow test_pareto_chord_vs_dense;
        ] );
      ( "interactive",
        [
          Alcotest.test_case "retune" `Quick test_interactive_retune;
          Alcotest.test_case "budget change" `Quick test_interactive_budget_change;
          Alcotest.test_case "warm = scratch (jobs x density grid)" `Quick
            test_interactive_warm_equals_scratch;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs 1 = jobs 4 (inum + decomposition)" `Quick
            test_parallel_determinism;
          Alcotest.test_case "jobs 1 = jobs 4 (advisor)" `Quick
            test_parallel_determinism_advisor;
          Alcotest.test_case "jobs x backend grid (advisor)" `Quick
            test_backend_determinism_advisor;
          Alcotest.test_case "jobs x backend grid (decomposition)" `Quick
            test_backend_determinism_decomposition;
          Alcotest.test_case "trace on/off x jobs x backend grid" `Quick
            test_trace_neutrality;
        ] );
    ]
