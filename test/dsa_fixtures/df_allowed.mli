(** Justified [@dsa.allow] in a [parallel_map] closure (dsa fixture). *)

val run : float array -> float array
