(** Deliberately domain-unsafe [parallel_map] closure (dsa fixture). *)

val hits : int ref
val run : float array -> float array
