(* Fixture: a deliberately domain-unsafe closure handed to
   [Runtime.parallel_map].  cophy-dsa must flag all three effect kinds
   with rule [domain_safety]:

     - mutates_global  ([incr hits] on module-level state)
     - io              ([print_endline])
     - nondet          ([Random.float] on the implicit global PRNG) *)

let hits = ref 0

let run arr =
  Runtime.parallel_map
    (fun x ->
      incr hits;
      print_endline "df_unsafe probe";
      x +. Random.float 1.0)
    arr
