(** Exception swallow / re-raise / escape cases (dsa fixture). *)

exception Local_probe

val swallowed : unit -> int
val reraised : unit -> 'a
val escapes : (string, int) Hashtbl.t -> string -> int
