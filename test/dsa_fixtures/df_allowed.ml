(* Fixture: the same shape as [Df_unsafe.run] but with the io effect
   justified by [@dsa.allow io "..."]: cophy-dsa must report nothing. *)

let run arr =
  Runtime.parallel_map
    (fun x ->
      (print_endline "df_allowed audit"
      [@dsa.allow io "fixture: sanctioned per-item progress line"]);
      x +. 1.0)
    arr
