(* Fixture: exception-escape inference cases.

     [swallowed]  raises then catches with a catch-all that does NOT
                  re-raise: inferred raises must be {} (the swallow is
                  respected).
     [reraised]   catch-all that re-raises the caught variable: the
                  handler is transparent, Failure must stay in the
                  inferred set.
     [escapes]    Hashtbl.find with no handler: Not_found escapes a
                  public function and must trip [exception_escape]
                  unless allowlisted. *)

exception Local_probe

let swallowed () = try raise Local_probe with _ -> 0

let reraised () = try failwith "df_swallow" with e -> raise e

let escapes tbl key = Hashtbl.find tbl key
