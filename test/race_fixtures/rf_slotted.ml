(* Slot-disjoint out-of-band writes: the array index derives from the
   closure's own parameter, so distinct tasks land on distinct slots and
   the writes never collide.  The analyzer must stay silent — no
   [@race.allow] needed. *)

let squares_into out arr =
  let _ =
    Runtime.parallel_map
      (fun i ->
        out.(i) <- i * i;
        i)
      arr
  in
  ()

(* A per-task frame is not interference: [acc] is bound *inside* the
   spawned closure, each task gets a fresh cell, and the inner named
   loop's captured write stays task-confined. *)
let row_sums (rows : int array array) =
  Runtime.parallel_map
    (fun row ->
      let acc = ref 0 in
      let rec go i =
        if i < Array.length row then begin
          acc := !acc + row.(i);
          go (i + 1)
        end
      in
      go 0;
      !acc)
    rows
