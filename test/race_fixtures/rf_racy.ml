(* Deliberately racy parallel closures.  test_race.ml asserts the exact
   diagnostics: two kinds of unjustified shared-mutable write, plus a
   justification that names the wrong location and so suppresses
   nothing. *)

let hits = ref 0

(* A module-level ref mutated from inside a spawned closure: every task
   contends on the one cell.  [shared_mutable], module-level target. *)
let count_parallel arr =
  let _ = Runtime.parallel_map (fun x -> incr hits; x) arr in
  !hits

(* A ref bound in the frame that *contains* the seam, captured by the
   spawned closure: one binding frame, many concurrent tasks.
   [shared_mutable], captured target. *)
let sum_parallel arr =
  let sum = ref 0 in
  let _ =
    Runtime.parallel_map
      (fun x ->
        sum := !sum + x;
        x)
      arr
  in
  !sum

(* The justification names a location nothing writes, so the [incr hits]
   race is still reported AND the stale safety argument itself trips
   [unused_allow]. *)
let[@race.allow wrong_target "misdirected justification"] bump_parallel arr =
  Runtime.parallel_map
    (fun x ->
      incr hits;
      x + 1)
    arr
