(* A captured shared write whose synchronization is documented in-tree:
   the expression-scoped [@race.allow] must silence [shared_mutable]
   without itself tripping [unused_allow]. *)

let total arr =
  let sum = ref 0 in
  let lock = Mutex.create () in
  let _ =
    Runtime.parallel_map
      (fun x ->
        (Mutex.lock lock;
         sum := !sum + x;
         Mutex.unlock lock)
        [@race.allow
          sum
            "every update serializes through lock, and the final read \
             happens after parallel_map's completion latch"];
        x)
      arr
  in
  !sum
