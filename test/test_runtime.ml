(* The parallel runtime: parallel_map's determinism contract (order
   preservation, sequential-path equivalence, exception propagation),
   the atomic stats counters under concurrent updates, and the monotonic
   clock. *)

exception Boom of int

let test_map_matches_sequential () =
  let arr = Array.init 1000 (fun i -> i) in
  let f x = (x * x) + 1 in
  let seq = Array.map f arr in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d" jobs)
        seq
        (Runtime.parallel_map ~jobs f arr))
    [ 1; 2; 4; 8 ]

let test_map_order_preserved () =
  (* Uneven per-element cost exercises the chunked cursor: late chunks
     may finish before early ones, but slots are written by index. *)
  let arr = Array.init 200 (fun i -> i) in
  let f i =
    if i mod 7 = 0 then begin
      let acc = ref 0 in
      for k = 0 to 20_000 do
        acc := !acc + k
      done;
      ignore !acc
    end;
    i * 2
  in
  Alcotest.(check (array int))
    "order" (Array.map f arr)
    (Runtime.parallel_map ~jobs:4 f arr)

let test_map_empty_and_singleton () =
  Alcotest.(check (array int))
    "empty" [||]
    (Runtime.parallel_map ~jobs:4 (fun x -> x) [||]);
  Alcotest.(check (array int))
    "singleton" [| 43 |]
    (Runtime.parallel_map ~jobs:4 (fun x -> x + 1) [| 42 |])

let test_map_propagates_exception () =
  List.iter
    (fun jobs ->
      match
        Runtime.parallel_map ~jobs
          (fun i -> if i = 500 then raise (Boom i) else i)
          (Array.init 1000 (fun i -> i))
      with
      | _ -> Alcotest.failf "jobs=%d: expected Boom" jobs
      | exception Boom 500 -> ())
    [ 1; 4 ]

let test_map_usable_after_exception () =
  (* The pool must survive a failed section. *)
  (try
     ignore
       (Runtime.parallel_map ~jobs:4
          (fun i -> if i mod 3 = 0 then raise Exit else i)
          (Array.init 100 (fun i -> i)))
   with Exit -> ());
  Alcotest.(check (array int))
    "reusable"
    (Array.init 100 (fun i -> i + 1))
    (Runtime.parallel_map ~jobs:4 (fun i -> i + 1) (Array.init 100 (fun i -> i)))

let test_map_nested () =
  (* Nested parallel_map from worker context degrades to sequential but
     must still be correct. *)
  let out =
    Runtime.parallel_map ~jobs:4
      (fun i ->
        Array.fold_left ( + ) 0
          (Runtime.parallel_map ~jobs:4 (fun j -> i + j) (Array.init 10 Fun.id)))
      (Array.init 20 (fun i -> i))
  in
  Alcotest.(check (array int))
    "nested" (Array.init 20 (fun i -> (10 * i) + 45)) out

let test_stats_concurrent () =
  let st = Runtime.Stats.create () in
  ignore
    (Runtime.parallel_map ~jobs:4
       (fun _ ->
         Runtime.Stats.add_whatif_calls st 1;
         Runtime.Stats.add_inum_probes st 2)
       (Array.make 1000 ()));
  Alcotest.(check int) "whatif" 1000 (Runtime.Stats.whatif_calls st);
  Alcotest.(check int) "probes" 2000 (Runtime.Stats.inum_probes st);
  Runtime.Stats.reset st;
  Alcotest.(check int) "reset" 0 (Runtime.Stats.whatif_calls st)

let test_stats_stages_and_json () =
  let st = Runtime.Stats.create () in
  Runtime.Stats.add_stage_seconds st Runtime.Stats.Inum_build 1.5;
  Runtime.Stats.add_stage_seconds st Runtime.Stats.Inum_build 0.5;
  Alcotest.(check (float 1e-9))
    "accumulates" 2.0
    (Runtime.Stats.stage_seconds st Runtime.Stats.Inum_build);
  let v = Runtime.Stats.timed st Runtime.Stats.Solve (fun () -> 7) in
  Alcotest.(check int) "timed value" 7 v;
  Alcotest.(check bool)
    "timed accumulates" true
    (Runtime.Stats.stage_seconds st Runtime.Stats.Solve >= 0.0);
  let json = Runtime.Stats.to_json st in
  Alcotest.(check bool)
    "json shape" true
    (String.length json > 0
    && json.[0] = '{'
    && json.[String.length json - 1] = '}');
  (* stable keys future PRs parse *)
  List.iter
    (fun key ->
      Alcotest.(check bool)
        (key ^ " present") true
        (let rec find i =
           i + String.length key <= String.length json
           && (String.sub json i (String.length key) = key || find (i + 1))
         in
         find 0))
    [ "\"counters\""; "\"stage_seconds\""; "\"whatif_calls\""; "\"inum_build\"" ]

(* Minimal JSON syntax checker (the repo has no JSON dependency): accepts
   exactly one well-formed value spanning the whole string. *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let fail = ref false in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c = if peek () = Some c then advance () else fail := true in
  let literal w =
    if !pos + String.length w <= n && String.sub s !pos (String.length w) = w
    then pos := !pos + String.length w
    else fail := true
  in
  let number () =
    let start = !pos in
    let isnum = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> isnum c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some _ -> ()
    | None -> fail := true
  in
  let string_lit () =
    expect '"';
    let fin = ref false in
    while (not !fin) && not !fail do
      match peek () with
      | None -> fail := true
      | Some '"' ->
          advance ();
          fin := true
      | Some '\\' -> (
          advance ();
          match peek () with Some _ -> advance () | None -> fail := true)
      | Some _ -> advance ()
    done
  in
  let rec value () =
    if not !fail then begin
      skip_ws ();
      match peek () with
      | Some '{' -> obj ()
      | Some '[' -> arr ()
      | Some '"' -> string_lit ()
      | Some ('-' | '0' .. '9') -> number ()
      | Some 't' -> literal "true"
      | Some 'f' -> literal "false"
      | Some 'n' -> literal "null"
      | _ -> fail := true
    end
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else
      let cont = ref true in
      while !cont && not !fail do
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> advance ()
        | Some '}' ->
            advance ();
            cont := false
        | _ -> fail := true
      done
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else
      let cont = ref true in
      while !cont && not !fail do
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> advance ()
        | Some ']' ->
            advance ();
            cont := false
        | _ -> fail := true
      done
  in
  value ();
  skip_ws ();
  (not !fail) && !pos = n

let test_trace_disabled_noop () =
  Runtime.Trace.disable ();
  Runtime.Trace.reset ();
  let c = Runtime.Trace.counter "test.noop" in
  Runtime.Trace.incr c;
  Runtime.Trace.add c 5;
  let v = Runtime.Trace.span "test.noop_span" (fun () -> 41 + 1) in
  Alcotest.(check int) "span passes the value through" 42 v;
  Alcotest.(check int)
    "counter untouched" 0
    (List.assoc "test.noop" (Runtime.Trace.counters ()));
  Alcotest.(check int) "no spans recorded" 0
    (List.length (Runtime.Trace.spans ()))

let test_trace_counter_parallel () =
  Runtime.Trace.reset ();
  Runtime.Trace.enable ();
  Fun.protect ~finally:Runtime.Trace.disable @@ fun () ->
  let c = Runtime.Trace.counter "test.par" in
  ignore
    (Runtime.parallel_map ~jobs:4
       (fun () ->
         Runtime.Trace.incr c;
         Runtime.Trace.add c 2)
       (Array.make 10_000 ()));
  Alcotest.(check int)
    "no lost updates" 30_000
    (List.assoc "test.par" (Runtime.Trace.counters ()));
  (* idempotent registration returns the same cell *)
  Runtime.Trace.incr (Runtime.Trace.counter "test.par");
  Alcotest.(check int)
    "same cell by name" 30_001
    (List.assoc "test.par" (Runtime.Trace.counters ()))

let test_trace_ring_overflow () =
  Runtime.Trace.reset ();
  Runtime.Trace.enable ();
  Fun.protect ~finally:Runtime.Trace.disable @@ fun () ->
  let cap = Runtime.Trace.ring_capacity in
  let extra = 100 in
  for i = 0 to cap + extra - 1 do
    Runtime.Trace.span (string_of_int i) (fun () -> ())
  done;
  let spans = Runtime.Trace.spans () in
  Alcotest.(check int) "retains exactly ring_capacity" cap (List.length spans);
  Alcotest.(check int) "dropped_spans counts the overflow" extra
    (Runtime.Trace.dropped_spans ());
  List.iter
    (fun (s : Runtime.Trace.span) ->
      Alcotest.(check bool)
        "only the newest spans survive" true
        (int_of_string s.Runtime.Trace.sname >= extra))
    spans

let test_trace_exporters () =
  Runtime.Trace.reset ();
  Runtime.Trace.enable ();
  Fun.protect ~finally:Runtime.Trace.disable @@ fun () ->
  (* names that exercise the JSON escaper *)
  Runtime.Trace.incr (Runtime.Trace.counter "test.export \"quoted\"");
  ignore
    (Runtime.Trace.span "outer" (fun () ->
         Runtime.Trace.span "inner \\ \"esc\"\n" (fun () -> 7)));
  Alcotest.(check bool)
    "chrome export is well-formed JSON" true
    (json_valid (Runtime.Trace.to_chrome_json ()));
  Alcotest.(check bool)
    "metrics export is well-formed JSON" true
    (json_valid (Runtime.Trace.to_metrics_json ()));
  let rec mono last = function
    | [] -> true
    | (s : Runtime.Trace.span) :: tl ->
        s.Runtime.Trace.ts >= last
        && s.Runtime.Trace.ts >= 0.0
        && s.Runtime.Trace.dur >= 0.0
        && mono s.Runtime.Trace.ts tl
  in
  Alcotest.(check bool)
    "timestamps monotone, durations non-negative" true
    (mono 0.0 (Runtime.Trace.spans ()))

(* --- Batch --- *)

let test_batch_flush_order () =
  let b = Runtime.Batch.create ~jobs:4 () in
  List.iter
    (fun i -> Runtime.Batch.add b (fun () -> i * i))
    [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "pending count" 5 (Runtime.Batch.length b);
  Alcotest.(check (list int)) "submission order preserved"
    [ 1; 4; 9; 16; 25 ] (Runtime.Batch.flush b);
  Alcotest.(check int) "drained" 0 (Runtime.Batch.length b);
  Alcotest.(check (list int)) "empty flush" [] (Runtime.Batch.flush b)

let test_batch_reusable () =
  let b = Runtime.Batch.create ~jobs:2 () in
  Runtime.Batch.add b (fun () -> "a");
  Alcotest.(check (list string)) "first round" [ "a" ] (Runtime.Batch.flush b);
  Runtime.Batch.add b (fun () -> "b");
  Runtime.Batch.add b (fun () -> "c");
  Alcotest.(check (list string)) "second round" [ "b"; "c" ]
    (Runtime.Batch.flush b)

let test_clock_monotonic () =
  let a = Runtime.Clock.now () in
  let b = Runtime.Clock.now () in
  Alcotest.(check bool) "non-decreasing" true (b >= a);
  Alcotest.(check bool) "non-negative" true (a >= 0.0)

let () =
  Alcotest.run "runtime"
    [
      ( "parallel_map",
        [
          Alcotest.test_case "matches sequential map" `Quick
            test_map_matches_sequential;
          Alcotest.test_case "order preserved under uneven load" `Quick
            test_map_order_preserved;
          Alcotest.test_case "empty and singleton" `Quick
            test_map_empty_and_singleton;
          Alcotest.test_case "propagates exceptions" `Quick
            test_map_propagates_exception;
          Alcotest.test_case "pool survives exceptions" `Quick
            test_map_usable_after_exception;
          Alcotest.test_case "nested calls fall back" `Quick test_map_nested;
        ] );
      ( "stats",
        [
          Alcotest.test_case "concurrent counters" `Quick test_stats_concurrent;
          Alcotest.test_case "stage timers and json" `Quick
            test_stats_stages_and_json;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled path is a no-op" `Quick
            test_trace_disabled_noop;
          Alcotest.test_case "counters exact under parallel_map" `Quick
            test_trace_counter_parallel;
          Alcotest.test_case "ring overflow keeps newest spans" `Quick
            test_trace_ring_overflow;
          Alcotest.test_case "exporters emit valid JSON" `Quick
            test_trace_exporters;
        ] );
      ( "clock",
        [ Alcotest.test_case "monotonic" `Quick test_clock_monotonic ] );
      ( "batch",
        [
          Alcotest.test_case "flush order" `Quick test_batch_flush_order;
          Alcotest.test_case "reusable" `Quick test_batch_reusable;
        ] );
    ]
