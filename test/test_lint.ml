(* cophy-lint layer-1 fixtures: for each source rule L1-L5, a snippet that
   must trigger and a near-miss that must not, plus the [@lint.allow]
   suppression and bad-attribute behaviour. *)

let lint src = Lint_core.lint_string ~file:"fixture.ml" src
let rules src = List.map (fun v -> v.Lint_core.v_rule) (lint src)
let triggers r src = List.mem r (rules src)

let check_triggers rule name src =
  Alcotest.(check bool) (name ^ " triggers") true (triggers rule src)

let check_clean name src =
  Alcotest.(check (list string))
    (name ^ " is clean") []
    (List.map Lint_core.rule_name (List.map (fun v -> v.Lint_core.v_rule) (lint src)))

(* --- L1 float_eq --- *)

let test_float_eq () =
  check_triggers Lint_core.Float_eq "literal comparand" "let bad x = x = 1.0";
  check_triggers Lint_core.Float_eq "float arithmetic comparand"
    "let bad a b = a +. 1.0 <> b";
  check_triggers Lint_core.Float_eq "polymorphic compare"
    "let bad a = compare (abs_float a) 0.5";
  check_triggers Lint_core.Float_eq "infinity sentinel"
    "let bad lb = lb = neg_infinity";
  check_triggers Lint_core.Float_eq "Float-module result"
    "let bad a b = Float.min a b = 0.0";
  (* alias / record-field float types, resolved by the type pre-pass *)
  check_triggers Lint_core.Float_eq "float field vs float field"
    "type stats = { elapsed : float }\nlet bad s t = s.elapsed = t.elapsed";
  check_triggers Lint_core.Float_eq "float field vs int literal zero"
    "type stats = { elapsed : float }\nlet bad s = s.elapsed = 0.";
  check_triggers Lint_core.Float_eq "alias-typed constraint"
    "type span = float\nlet bad a b = (a : span) = b";
  check_triggers Lint_core.Float_eq "field of transitive alias type"
    "type span = float\n\
     type width = span\n\
     type s = { dur : width }\n\
     let bad x y = x.dur = y.dur";
  (* tuple-immediate floats (the Pareto.sweep comparator gap): a tuple
     whose component is floatish makes the whole comparison floatish *)
  check_triggers Lint_core.Float_eq "tuple with float literal component"
    "let bad a b = (a, 1.0) = (b, 2.0)";
  check_triggers Lint_core.Float_eq "compare on float-field tuples"
    "type p = { m : float; c : float }\n\
     let bad p q = compare (p.m, p.c) (q.m, q.c)";
  check_triggers Lint_core.Float_eq "nested tuple float"
    "let bad a x y = ((a, 2.5), x) = ((a, 2.5), y)";
  (* floats reached only through structural equality's walk into
     records, variants and containers (the inum slot_reqs bug: a record
     field holding an array of float-carrying variants compared with
     polymorphic [=]) *)
  check_triggers Lint_core.Float_eq "field holding array of float variants"
    "type req = Any | Nlj of float\n\
     type tpl = { reqs : req array }\n\
     let bad a b = a.reqs = b.reqs";
  check_triggers Lint_core.Float_eq "variant-payload record in a list"
    "type pt = { x : int; w : float }\n\
     type shape = Dot of pt | Poly of pt list\n\
     type fig = { outline : shape }\n\
     let bad f g = f.outline = g.outline";
  check_triggers Lint_core.Float_eq "constraint on a float-carrying alias"
    "type row = int * float\n\
     type rows = row list\n\
     let bad a b = (a : rows) = b";
  (* near-misses: non-float operands, tolerance idiom, Fx helpers *)
  check_clean "field holding array of int variants"
    "type req = Any | Nlj of int\n\
     type tpl = { reqs : req array }\n\
     let ok a b = a.reqs = b.reqs";
  check_clean "int-carrying alias constraint"
    "type row = int * string\n\
     type rows = row list\n\
     let ok a b = (a : rows) = b";
  check_clean "int-only tuple comparison"
    "let ok (a : int) b = (a, 0) = (b, 1)";
  check_clean "int field comparison"
    "type c = { n : int }\nlet ok x y = x.n = y.n";
  check_clean "int alias constraint"
    "type count = int\nlet ok a b = (a : count) = b";
  check_clean "int comparison" "let ok (a : int) b = a = b";
  check_clean "tolerance idiom" "let ok a = abs_float (a -. 1.0) <= 1e-9";
  check_clean "Float.equal" "let ok a = Float.equal a 0.0";
  check_clean "Float predicate is not floatish"
    "let ok a b = Float.is_nan a = b";
  check_clean "suppressed"
    "let[@lint.allow float_eq] ok x = (* sentinel cmp *) x = infinity"

(* --- L2 hashtbl_order --- *)

let test_hashtbl_order () =
  check_triggers Lint_core.Hashtbl_order "fold accumulation"
    "let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t []";
  check_triggers Lint_core.Hashtbl_order "iter side effects"
    "let dump t = Hashtbl.iter (fun _ v -> print_int v) t";
  check_clean "point lookups"
    "let ok t k v = Hashtbl.replace t k v; Hashtbl.find_opt t k";
  check_clean "length" "let ok t = Hashtbl.length t";
  check_clean "binding-level suppression"
    "let[@lint.allow hashtbl_order] keys t =\n\
    \  Hashtbl.fold (fun k _ acc -> k :: acc) t []";
  check_clean "expression-level suppression"
    "let ok t = (Hashtbl.iter [@lint.allow hashtbl_order]) (fun _ _ -> ()) t"

(* --- L3 global_state --- *)

let test_global_state () =
  check_triggers Lint_core.Global_state "toplevel ref" "let counter = ref 0";
  check_triggers Lint_core.Global_state "toplevel hashtable"
    "let cache = Hashtbl.create 16";
  check_triggers Lint_core.Global_state "toplevel array"
    "let scratch = Array.make 8 0.0";
  check_triggers Lint_core.Global_state "array literal"
    "let lut = [| 1; 2; 3 |]";
  check_triggers Lint_core.Global_state "inside a submodule"
    "module M = struct let r = ref 0 end";
  check_clean "Atomic is sanctioned" "let counter = Atomic.make 0";
  check_clean "Mutex is sanctioned" "let lock = Mutex.create ()";
  check_clean "function-local state is fine"
    "let f () = let acc = ref 0 in incr acc; !acc";
  check_clean "empty array literal is immutable-ish" "let none = [||]";
  check_clean "suppressed"
    "let[@lint.allow global_state] lut = (* never written *) [| 1; 2 |]"

(* --- L4 catch_all --- *)

let test_catch_all () =
  check_triggers Lint_core.Catch_all "wildcard handler"
    "let f g = try g () with _ -> 0";
  check_triggers Lint_core.Catch_all "named catch-all"
    "let f g = try g () with e -> ignore e; 0";
  check_triggers Lint_core.Catch_all "match exception case"
    "let f g = match g () with x -> x | exception _ -> 0";
  check_clean "specific exception"
    "let ok g = try g () with Not_found -> 0";
  check_clean "backtrace-preserving re-raise"
    "let ok g =\n\
    \  try g ()\n\
    \  with e ->\n\
    \    let bt = Printexc.get_raw_backtrace () in\n\
    \    Printexc.raise_with_backtrace e bt";
  check_clean "suppressed"
    "let[@lint.allow catch_all] ok g = try g () with _ -> 0"

(* --- L5 nondet_source --- *)

let test_nondet_source () =
  check_triggers Lint_core.Nondet_source "wall clock"
    "let t () = Unix.gettimeofday ()";
  check_triggers Lint_core.Nondet_source "Sys.time" "let t () = Sys.time ()";
  check_triggers Lint_core.Nondet_source "self_init"
    "let r () = Random.self_init ()";
  check_clean "seeded state"
    "let ok seed = Random.State.make [| seed |]";
  check_clean "suppressed"
    "let[@lint.allow nondet_source] t () = Unix.gettimeofday ()"

(* --- attribute hygiene --- *)

let test_bad_attr () =
  check_triggers Lint_core.Bad_attr "unknown rule name"
    "let[@lint.allow nonsense] f x = x";
  (* bad_attr itself is never suppressible *)
  check_triggers Lint_core.Bad_attr "bad_attr not suppressible"
    "let[@lint.allow bad_attr] f x = x";
  (* a multi-rule payload applies every named rule *)
  check_clean "multi-rule payload"
    "let[@lint.allow float_eq hashtbl_order] f t x =\n\
    \  Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> ignore;\n\
    \  x = 1.0"

(* Cross-file type environment: a float alias declared in one file must
   classify comparisons in another, mirroring lint_main's two-pass run. *)
let test_crossfile_tyenv () =
  let env = Lint_core.empty_tyenv () in
  let decls =
    Lint_core.parse_string ~file:"types.ml"
      "type span = float\ntype stats = { elapsed : span }"
  in
  while Lint_core.scan_type_decls env decls do () done;
  let vs =
    Lint_core.lint_string ~tyenv:env ~file:"use.ml"
      "let bad s t = s.elapsed = t.elapsed"
  in
  Alcotest.(check (list string))
    "field typed in a sibling file triggers" [ "float_eq" ]
    (List.map (fun v -> Lint_core.rule_name v.Lint_core.v_rule) vs);
  (* without the shared env the same snippet is (wrongly but by design
     of single-file mode) clean — guards that the env is what fires *)
  check_clean "same snippet without the env"
    "let ok s t = s.elapsed = t.elapsed"

(* Scoping: an allow on one binding must not leak to its siblings. *)
let test_allow_scoping () =
  let src =
    "let[@lint.allow float_eq] ok x = x = 1.0\n\
     let bad y = y = 2.0"
  in
  let vs = lint src in
  Alcotest.(check int) "sibling still reported" 1 (List.length vs);
  Alcotest.(check int) "on the right line" 2 (List.hd vs).Lint_core.v_line

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "L1 float_eq" `Quick test_float_eq;
          Alcotest.test_case "L2 hashtbl_order" `Quick test_hashtbl_order;
          Alcotest.test_case "L3 global_state" `Quick test_global_state;
          Alcotest.test_case "L4 catch_all" `Quick test_catch_all;
          Alcotest.test_case "L5 nondet_source" `Quick test_nondet_source;
        ] );
      ( "attributes",
        [
          Alcotest.test_case "bad payloads" `Quick test_bad_attr;
          Alcotest.test_case "cross-file tyenv" `Quick test_crossfile_tyenv;
          Alcotest.test_case "scoping" `Quick test_allow_scoping;
        ] );
    ]
