(* cophy-bound tests: the fixture library under bound_fixtures/ is
   compiled normally by dune; we analyze its .cmt typed trees with
   Bound_core and assert the exact diagnostics each deliberate
   provenance violation produces — including the producer -> sink path
   of the PR-2 regression shape (an Iter_limit objective pruning the
   search).  The final guard analyzes every lib/ library and asserts
   the committed tree carries no unjustified heuristic flow into a
   pruning/certification sink. *)

(* Runs under `dune runtest` (cwd = _build/default/test) and under
   `dune exec test/test_bound.exe` from the project root, as CI's
   bound job does. *)
let base =
  if Sys.file_exists "bound_fixtures" then "" else "_build/default/test/"

let fixture_dir = base ^ "bound_fixtures/.bound_fixtures.objs/byte"

let cmts_of dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".cmt")
  |> List.sort compare
  |> List.map (Filename.concat dir)

let analyze_fixtures () = Bound_core.analyze (cmts_of fixture_dir)

let with_rule name vs = List.filter (fun v -> v.Bound_core.rule = name) vs

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let mentions needle v =
  contains (v.Bound_core.where ^ " " ^ v.Bound_core.message) needle

let in_file f v = contains v.Bound_core.where f

(* --- The seeded flows are caught, with producer -> sink paths --- *)

let test_tainted_fixture () =
  let vs = Bound_core.run_checks (analyze_fixtures ()) in
  let tainted = with_rule "tainted_sink" vs in
  let seeded = List.filter (in_file "bf_tainted.ml") tainted in
  Alcotest.(check int) "four unjustified heuristic flows" 4
    (List.length seeded);
  List.iter
    (fun v ->
      Alcotest.(check bool) "names the heuristic producer" true
        (mentions "Bf_tainted.solve_lp" v);
      Alcotest.(check bool) "suggests the [@bound.trust] escape hatch" true
        (mentions "[@bound.trust" v);
      Alcotest.(check bool) "suggests the recognized certifiers" true
        (mentions "Analyze.certify" v))
    seeded;
  (* the PR-2 regression shape: the unchecked objective pruning the
     subtree carries the exact producer -> sink chain *)
  let prune =
    match List.filter (mentions "prune sink") seeded with
    | [ v ] -> v
    | l -> Alcotest.failf "expected 1 prune finding, got %d" (List.length l)
  in
  (match prune.Bound_core.path with
  | producer :: rest ->
      Alcotest.(check bool) "path starts at the declared source" true
        (contains producer "Bf_tainted.solve_lp");
      Alcotest.(check bool) "path passes through the pruning function" true
        (List.exists (fun s -> contains s "Bf_tainted.prune") rest);
      Alcotest.(check bool) "path ends at the sink" true
        (match List.rev rest with
        | last :: _ -> contains last "sink:prune"
        | [] -> false)
  | [] -> Alcotest.fail "prune finding carries no producer -> sink path");
  (* per-callsite substitution: [scale] is called on a clean and a
     tainted argument; only the tainted callsite reports *)
  Alcotest.(check int) "the clean scale callsite is silent" 0
    (List.length (List.filter (mentions "clean per-callsite") tainted));
  Alcotest.(check int) "the tainted scale callsite reports" 1
    (List.length (List.filter (mentions "tainted per-callsite") tainted))

(* --- Laundering: Optimal guards, match arms, &&, certifiers --- *)

let test_laundered_silent () =
  let vs = Bound_core.run_checks (analyze_fixtures ()) in
  Alcotest.(check int) "no findings mention bf_laundered" 0
    (List.length (List.filter (in_file "bf_laundered.ml") vs))

(* --- [@bound.trust]: justified flows are silent, the trust is used --- *)

let test_trusted_silent () =
  let vs = Bound_core.run_checks (analyze_fixtures ()) in
  Alcotest.(check int) "no findings mention bf_trusted" 0
    (List.length (List.filter (in_file "bf_trusted.ml") vs))

(* --- Escape-hatch hygiene: stale trusts and malformed attributes --- *)

let test_stale_trust () =
  let vs = Bound_core.run_checks (analyze_fixtures ()) in
  let stale = with_rule "stale_trust" vs in
  Alcotest.(check int) "exactly one stale justification" 1
    (List.length stale);
  let v = List.hd stale in
  Alcotest.(check bool) "names the phantom target" true
    (mentions "phantom_producer" v);
  Alcotest.(check bool) "located in bf_stale.ml" true (in_file "bf_stale.ml" v);
  let bad = with_rule "bad_attr" vs in
  Alcotest.(check int) "the malformed source level is rejected" 1
    (List.length (List.filter (in_file "bf_stale.ml") bad));
  Alcotest.(check bool) "bad_attr names the bogus level" true
    (List.exists (mentions "sloppy") bad)

(* --- The declared sources and the taint map are exposed --- *)

let test_sources_and_summaries () =
  let t = analyze_fixtures () in
  ignore (Bound_core.run_checks t);
  let sources = Bound_core.source_names t in
  let has frag = List.exists (fun n -> contains n frag) in
  Alcotest.(check bool) "bf_tainted's producer is a declared source" true
    (has "Bf_tainted.solve_lp" sources);
  Alcotest.(check bool) "bf_trusted's producer is a declared source" true
    (has "Bf_trusted.anneal" sources);
  let tainted_nodes = List.map fst (Bound_core.summaries t) in
  Alcotest.(check bool) "the published module-level value is tainted" true
    (has "Bf_tainted.best_obj" tainted_nodes);
  Alcotest.(check bool) "the certifier output is not in the taint map" false
    (has "Bf_laundered.certify" tainted_nodes)

let test_sarif_output () =
  (* the --json rendering of the same findings: rule ids, the physical
     location, and the producer -> sink path must all survive into the
     machine-readable report *)
  let vs = Bound_core.run_checks (analyze_fixtures ()) in
  let log =
    Ak_findings.sarif_log ~tool:"cophy-bound" ~rules:Bound_core.all_rule_names
      vs
  in
  Alcotest.(check bool) "SARIF version tag" true
    (contains log {|"version":"2.1.0"|});
  Alcotest.(check bool) "tainted_sink results present" true
    (contains log {|"ruleId":"tainted_sink"|});
  Alcotest.(check bool) "stale_trust result present" true
    (contains log {|"ruleId":"stale_trust"|});
  Alcotest.(check bool) "physical location points at the fixture" true
    (contains log {|"uri":"test/bound_fixtures/bf_tainted.ml"|});
  Alcotest.(check bool) "producer -> sink path is embedded" true
    (contains log "sink:prune")

(* --- Negative guard: the committed lib/ tree has no unjustified
   heuristic flow into a pruning/certification sink --- *)

let lib_names =
  [ "advisors"; "catalog"; "constr"; "cophy"; "inum"; "lp"; "optimizer";
    "runtime"; "serve"; "sqlast"; "storage"; "workload" ]

let test_lib_tree_clean () =
  let files =
    List.concat_map
      (fun l -> cmts_of (Printf.sprintf "%s../lib/%s/.%s.objs/byte" base l l))
      lib_names
  in
  Alcotest.(check bool) "lib/ typed trees were found" true
    (List.length files > 30);
  let t = Bound_core.analyze files in
  let vs = Bound_core.run_checks t in
  List.iter (Bound_core.pp_violation stderr) vs;
  Alcotest.(check int) "every heuristic flow is gated or justified" 0
    (List.length vs);
  (* silence is not vacuous: the simplex sources are declared and the
     taint really reaches the branch-and-bound internals *)
  let sources = Bound_core.source_names t in
  Alcotest.(check bool) "the simplex entry points are sources" true
    (List.exists (fun n -> contains n "Lp.Simplex.solve") sources);
  let tainted_nodes = List.map fst (Bound_core.summaries t) in
  Alcotest.(check bool) "taint reaches the B&B node evaluator" true
    (List.exists (fun n -> contains n "Branch_bound.solve.eval") tainted_nodes)

let () =
  Alcotest.run "bound"
    [ ( "fixtures",
        [ Alcotest.test_case "seeded heuristic flows are caught" `Quick
            test_tainted_fixture;
          Alcotest.test_case "laundered flows are silent" `Quick
            test_laundered_silent;
          Alcotest.test_case "trusted flows are silent, trust is used" `Quick
            test_trusted_silent;
          Alcotest.test_case "stale trusts and bad attrs are findings" `Quick
            test_stale_trust;
          Alcotest.test_case "sources and taint map are exposed" `Quick
            test_sources_and_summaries;
          Alcotest.test_case "findings serialize to SARIF with paths" `Quick
            test_sarif_output ] );
      ( "lib tree",
        [ Alcotest.test_case "committed solver stack is provenance-clean"
            `Quick test_lib_tree_clean ] ) ]
