(* cophy-dsa tests: the fixture library under dsa_fixtures/ is compiled
   normally by dune; we analyze its .cmt/.cmti artifacts with Dsa_core
   and assert the exact diagnostics each deliberate violation produces.
   The final property closes the loop dynamically: whatever exceptions
   Lp.Simplex.solve actually raises on random LPs must stay within its
   committed @raises allowlist in tools/dsa/exceptions.toml. *)

let fixture_dir = "dsa_fixtures/.dsa_fixtures.objs/byte"

let fixture_files () =
  Sys.readdir fixture_dir |> Array.to_list
  |> List.filter (fun f ->
         Filename.check_suffix f ".cmt" || Filename.check_suffix f ".cmti")
  |> List.sort compare
  |> List.map (fun f -> Filename.concat fixture_dir f)

let analyze_fixtures () = Dsa_core.analyze (fixture_files ())

let rules vs = List.map (fun v -> v.Dsa_core.rule) vs
let with_rule name vs = List.filter (fun v -> v.Dsa_core.rule = name) vs

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let mentions needle v =
  contains (v.Dsa_core.where ^ " " ^ v.Dsa_core.message) needle

let node t name =
  match Hashtbl.find_opt t.Dsa_core.nodes name with
  | Some n -> n
  | None ->
      Alcotest.failf "analysis has no node %s (have: %s)" name
        (Hashtbl.fold (fun k _ acc -> k ^ " " ^ acc) t.Dsa_core.nodes "")

(* --- Check 1: domain safety over the unsafe / allowed closures --- *)

let test_domain_safety_unsafe () =
  let t = analyze_fixtures () in
  let vs = Dsa_core.run_checks t in
  let ds = with_rule "domain_safety" vs in
  Alcotest.(check int) "three effect findings" 3 (List.length ds);
  List.iter
    (fun v -> Alcotest.(check bool) "located in df_unsafe.ml" true
        (contains v.Dsa_core.where "df_unsafe.ml"))
    ds;
  let has effect what =
    List.exists (fun v -> mentions effect v && mentions what v) ds
  in
  Alcotest.(check bool) "mutates_global on hits" true
    (has "mutates_global" "Dsa_fixtures.Df_unsafe.hits");
  Alcotest.(check bool) "io on print_endline" true
    (has "io" "print_endline");
  Alcotest.(check bool) "nondet on Random.float" true
    (has "nondet" "Random.float");
  (* every domain_safety message names the spawn chain and the rule's
     escape hatch, so the diagnostic is actionable *)
  List.iter
    (fun v ->
      Alcotest.(check bool) "names a spawn chain" true
        (mentions "reachable from a parallel_map/Domain.spawn closure" v);
      Alcotest.(check bool) "suggests @dsa.allow" true (mentions "dsa.allow" v))
    ds

let test_domain_safety_allowed () =
  let t = analyze_fixtures () in
  let vs = Dsa_core.run_checks t in
  Alcotest.(check (list string)) "justified allow is silent" []
    (rules (List.filter (mentions "df_allowed") vs));
  (* the closure still became a spawn root — the allow suppressed the io
     finding, it did not hide the closure from the analysis *)
  let closure =
    Hashtbl.fold
      (fun name nd acc ->
        if nd.Dsa_core.n_spawn_root && contains name "df_allowed" then Some nd
        else acc)
      t.Dsa_core.nodes None
  in
  match closure with
  | None -> Alcotest.fail "df_allowed closure was not registered as spawn root"
  | Some nd ->
      Alcotest.(check int) "no direct effects survive the allow" 0
        (List.length nd.Dsa_core.n_direct)

(* --- Exception-escape inference on the swallow/reraise/escape trio --- *)

let raises t name = Dsa_core.SSet.elements (node t name).Dsa_core.n_raises

let test_raises_inference () =
  let t = analyze_fixtures () in
  ignore (Dsa_core.run_checks t);
  Alcotest.(check (list string)) "catch-all swallow empties the set" []
    (raises t "Dsa_fixtures.Df_swallow.swallowed");
  Alcotest.(check (list string)) "re-raise keeps Failure" [ "Failure" ]
    (raises t "Dsa_fixtures.Df_swallow.reraised");
  Alcotest.(check (list string)) "unhandled Hashtbl.find escapes Not_found"
    [ "Not_found" ]
    (raises t "Dsa_fixtures.Df_swallow.escapes")

let test_exception_escape_rule () =
  (* no entry for [escapes]: Not_found must trip exception_escape; the
     other two public functions are covered (or raise nothing) *)
  let toml =
    {|["Dsa_fixtures.Df_swallow"]
reraised = ["Failure"]
|}
  in
  let t = analyze_fixtures () in
  let vs = with_rule "exception_escape" (Dsa_core.run_checks ~exceptions_toml:toml t) in
  Alcotest.(check int) "exactly one escape" 1 (List.length vs);
  let v = List.hd vs in
  Alcotest.(check bool) "names Not_found" true (mentions "Not_found" v);
  Alcotest.(check bool) "names the function" true
    (mentions "Dsa_fixtures.Df_swallow.escapes" v);
  Alcotest.(check bool) "flags the missing entry" true
    (mentions "no entry declared" v);
  (* declaring the escape silences the rule *)
  let toml_ok = toml ^ "escapes = [\"Not_found\"]\n" in
  let t2 = analyze_fixtures () in
  Alcotest.(check (list string)) "allowlisted escape is clean" []
    (rules
       (with_rule "exception_escape"
          (Dsa_core.run_checks ~exceptions_toml:toml_ok t2)));
  (* "*" is the declared-unknowable wildcard *)
  let toml_star = toml ^ "escapes = [\"*\"]\n" in
  let t3 = analyze_fixtures () in
  Alcotest.(check (list string)) "wildcard allows anything" []
    (rules
       (with_rule "exception_escape"
          (Dsa_core.run_checks ~exceptions_toml:toml_star t3)))

(* --- Check 3: signature drift against a committed snapshot --- *)

let test_signature_drift () =
  let t = analyze_fixtures () in
  let actual = Dsa_core.signatures t in
  Alcotest.(check bool) "fixtures export signatures" true (actual <> []);
  (* identical snapshot: no drift *)
  let t1 = analyze_fixtures () in
  Alcotest.(check (list string)) "identical snapshot is clean" []
    (rules
       (with_rule "signature_drift"
          (Dsa_core.run_checks ~signatures_expected:actual t1)));
  (* tamper with one line: that function must be reported as drifted *)
  let tampered =
    List.map
      (fun line ->
        if contains line "Df_swallow.escapes" then line ^ "X" else line)
      actual
  in
  let t2 = analyze_fixtures () in
  let drift =
    with_rule "signature_drift"
      (Dsa_core.run_checks ~signatures_expected:tampered t2)
  in
  Alcotest.(check int) "one drifted signature" 1 (List.length drift);
  Alcotest.(check bool) "names the drifted function" true
    (mentions "Df_swallow.escapes" (List.hd drift));
  (* drop a line: the now-uncovered function is reported as new *)
  let missing =
    List.filter (fun line -> not (contains line "Df_unsafe.run")) actual
  in
  let t3 = analyze_fixtures () in
  let news =
    with_rule "signature_drift"
      (Dsa_core.run_checks ~signatures_expected:missing t3)
  in
  Alcotest.(check int) "one uncovered signature" 1 (List.length news);
  Alcotest.(check bool) "reported as new" true
    (mentions "no snapshot entry" (List.hd news));
  (* stale entry: a snapshot line with no inferred counterpart *)
  let stale = ("Dsa_fixtures.Df_gone.f : mutates_global=- io=- nondet=- "
               ^ "raises={}") :: actual in
  let t4 = analyze_fixtures () in
  let gone =
    with_rule "signature_drift"
      (Dsa_core.run_checks ~signatures_expected:stale t4)
  in
  Alcotest.(check int) "one stale entry" 1 (List.length gone);
  Alcotest.(check bool) "reported as disappeared" true
    (mentions "disappeared" (List.hd gone))

(* --- The committed allowlist matches runtime behaviour --- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* "Lp__Simplex.Singular_basis" / "Stdlib.Not_found" -> the names
   exceptions.toml uses ("Lp.Simplex.Singular_basis" / "Not_found"). *)
let normalize_exn_name s =
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  let len = String.length s in
  while !i < len do
    if !i + 1 < len && s.[!i] = '_' && s.[!i + 1] = '_' then begin
      Buffer.add_char buf '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  let s = Buffer.contents buf in
  let prefix = "Stdlib." in
  let pl = String.length prefix in
  if String.length s > pl && String.sub s 0 pl = prefix then
    String.sub s pl (String.length s - pl)
  else s

let solve_allowlist =
  lazy
    (let table =
       Dsa_core.parse_exceptions_toml (read_file "../tools/dsa/exceptions.toml")
     in
     match Hashtbl.find_opt table "Lp.Simplex.solve" with
     | Some s -> s
     | None -> Dsa_core.SSet.empty)

let random_lp_gen =
  QCheck.Gen.(
    let* n = int_range 1 6 in
    let* m = int_range 0 6 in
    let* seed = int_range 0 1_000_000 in
    return (n, m, seed))

(* Unlike test_lp's generator this one does NOT engineer feasibility:
   infeasible and unbounded instances exercise more solver paths, and the
   property is about escaping exceptions, not optimality. *)
let build_lp (n, m, seed) =
  let rng = Random.State.make [| seed; 0x05A |] in
  let p = Lp.Problem.create () in
  let vars =
    Array.init n (fun _ ->
        let ub =
          if Random.State.bool rng then infinity
          else Random.State.float rng 10.0
        in
        Lp.Problem.add_var ~obj:(Random.State.float rng 4.0 -. 2.0) ~ub p)
  in
  for _ = 1 to m do
    let coeffs =
      Array.to_list vars
      |> List.filter_map (fun v ->
             if Random.State.bool rng then
               Some (v, Random.State.float rng 4.0 -. 2.0)
             else None)
    in
    let sense =
      match Random.State.int rng 3 with
      | 0 -> Lp.Problem.Le
      | 1 -> Lp.Problem.Ge
      | _ -> Lp.Problem.Eq
    in
    if coeffs <> [] then
      ignore
        (Lp.Problem.add_row p coeffs sense (Random.State.float rng 8.0 -. 2.0))
  done;
  p

let prop_solve_raises_within_allowlist =
  QCheck.Test.make
    ~name:"Simplex.solve raises stay within the exceptions.toml allowlist"
    ~count:120 (QCheck.make random_lp_gen) (fun spec ->
      let allowed = Lazy.force solve_allowlist in
      let check_kernel basis =
        let p = build_lp spec in
        match Lp.Simplex.solve ~basis p with
        | (_ : Lp.Simplex.result) -> true
        | exception e ->
            let name = normalize_exn_name (Printexc.exn_slot_name e) in
            if
              Dsa_core.SSet.mem "*" allowed
              || Dsa_core.SSet.mem name allowed
            then true
            else
              QCheck.Test.fail_reportf
                "%s escaped Lp.Simplex.solve (%s kernel) but the committed \
                 allowlist for it is {%s}"
                name
                (match basis with
                | Lp.Simplex.Dense -> "dense"
                | Lp.Simplex.Sparse -> "sparse")
                (String.concat ", " (Dsa_core.SSet.elements allowed))
      in
      check_kernel Lp.Simplex.Dense && check_kernel Lp.Simplex.Sparse)

let () =
  Alcotest.run "dsa"
    [ ( "fixtures",
        [ Alcotest.test_case "domain_safety: unsafe closure" `Quick
            test_domain_safety_unsafe;
          Alcotest.test_case "domain_safety: justified allow" `Quick
            test_domain_safety_allowed;
          Alcotest.test_case "raises inference" `Quick test_raises_inference;
          Alcotest.test_case "exception_escape rule" `Quick
            test_exception_escape_rule;
          Alcotest.test_case "signature drift" `Quick test_signature_drift ] );
      ( "allowlist property",
        [ QCheck_alcotest.to_alcotest prop_solve_raises_within_allowlist ] ) ]
