(* Tests for the SQL AST, printer, and parser. *)

open Sqlast

let schema = Catalog.Tpch.schema ()

let sample_query () =
  {
    Ast.query_id = 1;
    tables = [ "orders"; "lineitem" ];
    select =
      [ Ast.Col (Ast.col_ref "lineitem" "l_shipmode");
        Ast.Agg (Ast.Count, Ast.col_ref "orders" "o_orderkey") ];
    predicates =
      [ Ast.predicate ~selectivity:0.01
          (Ast.col_ref "lineitem" "l_shipmode") Ast.Eq;
        Ast.predicate ~selectivity:0.2
          (Ast.col_ref "orders" "o_orderdate") Ast.Le ];
    joins =
      [ { Ast.left = Ast.col_ref "orders" "o_orderkey";
          right = Ast.col_ref "lineitem" "l_orderkey" } ];
    group_by = [ Ast.col_ref "lineitem" "l_shipmode" ];
    order_by = [ (Ast.col_ref "lineitem" "l_shipmode", Ast.Asc) ];
  }

(* --- AST helpers --- *)

let test_predicate_validation () =
  Alcotest.check_raises "bad selectivity"
    (Invalid_argument "Ast.predicate: selectivity out of [0,1]") (fun () ->
      ignore (Ast.predicate ~selectivity:1.5 (Ast.col_ref "t" "c") Ast.Eq))

let test_table_predicates () =
  let q = sample_query () in
  Alcotest.(check int) "lineitem preds" 1
    (List.length (Ast.table_predicates q "lineitem"));
  Alcotest.(check int) "orders preds" 1
    (List.length (Ast.table_predicates q "orders"));
  Alcotest.(check int) "absent table" 0
    (List.length (Ast.table_predicates q "part"))

let test_join_columns () =
  let q = sample_query () in
  let jl = Ast.join_columns q "lineitem" in
  Alcotest.(check int) "one join col" 1 (List.length jl);
  Alcotest.(check string) "join col name" "l_orderkey"
    (List.hd jl).Ast.column

let test_referenced_columns () =
  let q = sample_query () in
  let cols = Ast.referenced_columns q "lineitem" in
  Alcotest.(check (list string)) "lineitem refs"
    [ "l_orderkey"; "l_shipmode" ] cols;
  let ocols = Ast.referenced_columns q "orders" in
  Alcotest.(check (list string)) "orders refs"
    [ "o_orderdate"; "o_orderkey" ] ocols

let test_validate () =
  let q = sample_query () in
  Alcotest.(check bool) "valid" true (Ast.validate schema q = Ok ());
  let bad = { q with Ast.tables = [ "orders"; "orders" ] } in
  Alcotest.(check bool) "duplicate table rejected" true
    (Result.is_error (Ast.validate schema bad));
  let bad2 =
    { q with
      Ast.select = [ Ast.Col (Ast.col_ref "lineitem" "nonexistent") ] }
  in
  Alcotest.(check bool) "unknown column rejected" true
    (Result.is_error (Ast.validate schema bad2))

let test_query_shell () =
  let u =
    { Ast.update_id = 9; target = "customer"; set_columns = [ "c_acctbal" ];
      where = [ Ast.predicate ~selectivity:0.001
                  (Ast.col_ref "customer" "c_custkey") Ast.Eq ] }
  in
  let shell = Ast.query_shell u in
  Alcotest.(check (list string)) "shell tables" [ "customer" ] shell.Ast.tables;
  Alcotest.(check int) "shell preds" 1 (List.length shell.Ast.predicates);
  Alcotest.(check int) "shell id" 9 shell.Ast.query_id

let test_workload_split () =
  let q = sample_query () in
  let u =
    { Ast.update_id = 2; target = "customer"; set_columns = [ "c_acctbal" ];
      where = [] }
  in
  let w =
    [ { Ast.stmt = Ast.Select q; weight = 2.0 };
      { Ast.stmt = Ast.Update u; weight = 3.0 } ]
  in
  (* updates contribute their query shells to the select side *)
  Alcotest.(check int) "selects incl shells" 2 (List.length (Ast.selects w));
  Alcotest.(check int) "updates" 1 (List.length (Ast.updates w));
  let _, weight = List.nth (Ast.selects w) 1 in
  Alcotest.(check (float 1e-9)) "weights carried" 3.0 weight

(* --- Printer / parser round-trip --- *)

let test_print_select () =
  let text = Print.statement_to_string (Ast.Select (sample_query ())) in
  Alcotest.(check bool) "has SELECT" true
    (String.length text > 0 && String.sub text 0 6 = "SELECT");
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has FROM" true (contains "FROM");
  Alcotest.(check bool) "has GROUP BY" true (contains "GROUP BY");
  Alcotest.(check bool) "has sel hint" true (contains "/*sel=")

let test_parse_simple () =
  match Parse.statement schema "SELECT l_quantity FROM lineitem WHERE l_shipdate <= ?" with
  | Ast.Select q ->
      Alcotest.(check (list string)) "tables" [ "lineitem" ] q.Ast.tables;
      Alcotest.(check int) "preds" 1 (List.length q.Ast.predicates);
      let p = List.hd q.Ast.predicates in
      Alcotest.(check bool) "range default 1/3" true
        (abs_float (p.Ast.selectivity -. (1.0 /. 3.0)) < 1e-9)
  | Ast.Update _ -> Alcotest.fail "expected select"

let test_parse_join_and_agg () =
  let sql =
    "SELECT o_orderpriority, COUNT(o_orderkey) FROM orders, lineitem \
     WHERE orders.o_orderkey = lineitem.l_orderkey AND l_shipmode = 'AIR' \
     GROUP BY o_orderpriority ORDER BY o_orderpriority ASC;"
  in
  match Parse.statement schema sql with
  | Ast.Select q ->
      Alcotest.(check int) "joins" 1 (List.length q.Ast.joins);
      Alcotest.(check int) "preds" 1 (List.length q.Ast.predicates);
      Alcotest.(check int) "group" 1 (List.length q.Ast.group_by);
      Alcotest.(check int) "order" 1 (List.length q.Ast.order_by);
      (* bare columns resolved to their tables *)
      Alcotest.(check string) "resolved table" "lineitem"
        (List.hd q.Ast.predicates).Ast.pred_col.Ast.table
  | Ast.Update _ -> Alcotest.fail "expected select"

let test_parse_update () =
  match
    Parse.statement schema
      "UPDATE customer SET c_acctbal = 0 WHERE c_custkey = 42"
  with
  | Ast.Update u ->
      Alcotest.(check string) "target" "customer" u.Ast.target;
      Alcotest.(check (list string)) "set" [ "c_acctbal" ] u.Ast.set_columns;
      Alcotest.(check int) "where" 1 (List.length u.Ast.where)
  | Ast.Select _ -> Alcotest.fail "expected update"

let test_parse_errors () =
  let expect_fail sql =
    match Parse.statement schema sql with
    | exception Parse.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error on %S" sql
  in
  expect_fail "SELECT x FROM nonexistent";
  expect_fail "SELECT nonexistent FROM lineitem";
  expect_fail "DELETE FROM lineitem";
  expect_fail "SELECT l_quantity FROM lineitem WHERE";
  (* o_orderkey is ambiguous?  no — unique; c_custkey vs o_custkey are
     distinct; build a genuinely ambiguous case via two tables sharing
     no column: skip.  Trailing garbage: *)
  expect_fail "SELECT l_quantity FROM lineitem extra"

let test_roundtrip () =
  let q = sample_query () in
  let text = Print.statement_to_string (Ast.Select q) in
  match Parse.statement schema text with
  | Ast.Select q' ->
      Alcotest.(check (list string)) "tables" q.Ast.tables q'.Ast.tables;
      Alcotest.(check int) "joins" (List.length q.Ast.joins)
        (List.length q'.Ast.joins);
      Alcotest.(check int) "preds" (List.length q.Ast.predicates)
        (List.length q'.Ast.predicates);
      (* selectivities travel through the /*sel*/ hints *)
      List.iter2
        (fun p p' ->
          Alcotest.(check (float 1e-6)) "selectivity" p.Ast.selectivity
            p'.Ast.selectivity)
        q.Ast.predicates q'.Ast.predicates
  | Ast.Update _ -> Alcotest.fail "expected select"

let test_parse_script () =
  let stmts =
    Parse.script schema
      "SELECT l_quantity FROM lineitem; SELECT o_orderkey FROM orders;
       UPDATE customer SET c_acctbal = 1"
  in
  Alcotest.(check int) "three statements" 3 (List.length stmts)

(* Round-trip over randomly generated workloads. *)
let prop_workload_roundtrip =
  QCheck.Test.make ~name:"generated workloads reparse" ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let w = Workload.Gen.hom schema ~n:15 ~seed in
      List.for_all
        (fun { Ast.stmt; _ } ->
          let text = Print.statement_to_string stmt in
          match Parse.statement schema text with
          | Ast.Select _ | Ast.Update _ -> true
          | exception Parse.Parse_error _ -> false)
        w)

(* --- Canonicalization --- *)

(* A spelling-only permutation of a query: every list whose order the
   canonical form ignores is reversed, joins are flipped, and the id is
   renamed.  The canonical key must not see any of it. *)
let scramble (q : Ast.query) =
  {
    q with
    Ast.query_id = q.Ast.query_id + 1000;
    tables = List.rev q.Ast.tables;
    select = List.rev q.Ast.select;
    predicates = List.rev q.Ast.predicates;
    joins =
      List.rev_map
        (fun { Ast.left; right } -> { Ast.left = right; right = left })
        q.Ast.joins;
    group_by = List.rev q.Ast.group_by;
  }

let test_canon_idempotent () =
  let q = Canon.normalize (sample_query ()) in
  Alcotest.(check bool) "normalize is idempotent" true (Canon.normalize q = q);
  Alcotest.(check string) "key stable under normalize" (Canon.key q)
    (Canon.key (Canon.normalize q))

let test_canon_statement_key_prefixes () =
  let q = sample_query () in
  let u =
    {
      Ast.update_id = 9;
      target = "orders";
      set_columns = [ "o_comment" ];
      where =
        [ Ast.predicate ~selectivity:0.01
            (Ast.col_ref "orders" "o_orderkey") Ast.Eq ];
    }
  in
  let sk = Canon.statement_key (Ast.Select q) in
  let uk = Canon.statement_key (Ast.Update u) in
  Alcotest.(check bool) "select prefixed" true
    (String.length sk > 7 && String.sub sk 0 7 = "select:");
  Alcotest.(check bool) "update prefixed" true
    (String.length uk > 7 && String.sub uk 0 7 = "update:");
  Alcotest.(check bool) "keys differ across kinds" true (sk <> uk)

(* Invariance: the key ignores spelling (list order, join orientation,
   query id) across randomly generated workloads. *)
let prop_canon_key_invariant =
  QCheck.Test.make ~name:"canonical key ignores spelling" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let w = Workload.Gen.hom schema ~n:12 ~seed in
      List.for_all
        (fun { Ast.stmt; _ } ->
          match stmt with
          | Ast.Update _ -> true
          | Ast.Select q -> Canon.key q = Canon.key (scramble q))
        w)

(* Distinctness: structural edits — a changed selectivity, a dropped
   select item, a dropped predicate — must change the key. *)
let prop_canon_key_distinct =
  QCheck.Test.make ~name:"canonical key separates structures" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let w = Workload.Gen.hom schema ~n:12 ~seed in
      List.for_all
        (fun { Ast.stmt; _ } ->
          match stmt with
          | Ast.Update _ -> true
          | Ast.Select q ->
              let k = Canon.key q in
              let sel_changed =
                match q.Ast.predicates with
                | [] -> true
                | p :: rest ->
                    let p' =
                      { p with Ast.selectivity = p.Ast.selectivity /. 2.0 }
                    in
                    Canon.key { q with Ast.predicates = p' :: rest } <> k
                    && (rest = []
                       || Canon.key { q with Ast.predicates = rest } <> k)
              in
              let select_changed =
                match q.Ast.select with
                | [] | [ _ ] -> true
                | _ :: rest -> Canon.key { q with Ast.select = rest } <> k
              in
              sel_changed && select_changed)
        w)

let () =
  Alcotest.run "sqlast"
    [
      ( "ast",
        [
          Alcotest.test_case "predicate validation" `Quick test_predicate_validation;
          Alcotest.test_case "table predicates" `Quick test_table_predicates;
          Alcotest.test_case "join columns" `Quick test_join_columns;
          Alcotest.test_case "referenced columns" `Quick test_referenced_columns;
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "query shell" `Quick test_query_shell;
          Alcotest.test_case "workload split" `Quick test_workload_split;
        ] );
      ( "parse",
        [
          Alcotest.test_case "print select" `Quick test_print_select;
          Alcotest.test_case "simple" `Quick test_parse_simple;
          Alcotest.test_case "join and agg" `Quick test_parse_join_and_agg;
          Alcotest.test_case "update" `Quick test_parse_update;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "script" `Quick test_parse_script;
          QCheck_alcotest.to_alcotest prop_workload_roundtrip;
        ] );
      ( "canon",
        [
          Alcotest.test_case "idempotent" `Quick test_canon_idempotent;
          Alcotest.test_case "statement key prefixes" `Quick
            test_canon_statement_key_prefixes;
          QCheck_alcotest.to_alcotest prop_canon_key_invariant;
          QCheck_alcotest.to_alcotest prop_canon_key_distinct;
        ] );
    ]
