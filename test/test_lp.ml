(* Tests for the LP/BIP solver: textbook instances, randomized optimality
   certificates for the simplex, and brute-force agreement for branch and
   bound. *)

let solve_lp p = Lp.Simplex.solve p

let status_str = function
  | Lp.Simplex.Optimal -> "optimal"
  | Lp.Simplex.Infeasible -> "infeasible"
  | Lp.Simplex.Unbounded -> "unbounded"
  | Lp.Simplex.Iter_limit -> "iter_limit"

let check_status msg expected r =
  Alcotest.(check string) msg (status_str expected) (status_str r.Lp.Simplex.status)

let check_float ?(eps = 1e-6) msg expected actual =
  if abs_float (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.9g, got %.9g" msg expected actual

(* --- Problem builder --- *)

let test_problem_builder () =
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var ~obj:1.0 ~name:"x" p in
  let y = Lp.Problem.add_var ~kind:Lp.Problem.Binary ~obj:2.0 p in
  Alcotest.(check int) "ids" 1 y;
  ignore (Lp.Problem.add_row p [ (x, 1.0); (y, 2.0); (x, 1.0) ] Lp.Problem.Le 4.0);
  (* duplicate coefficients merge *)
  let row = Lp.Problem.row p 0 in
  Alcotest.(check int) "merged coeffs" 2 (Array.length row.Lp.Problem.coeffs);
  let vx, cx = row.Lp.Problem.coeffs.(0) in
  Alcotest.(check int) "var" x vx;
  check_float "merged coefficient" 2.0 cx;
  Alcotest.(check int) "integer vars" 1 (List.length (Lp.Problem.integer_vars p));
  Alcotest.check_raises "bad var"
    (Invalid_argument "Problem.add_row: bad variable") (fun () ->
      ignore (Lp.Problem.add_row p [ (99, 1.0) ] Lp.Problem.Le 0.0))

let test_problem_feasibility_eval () =
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var ~ub:5.0 ~obj:3.0 p in
  ignore (Lp.Problem.add_row p [ (x, 2.0) ] Lp.Problem.Ge 4.0);
  Alcotest.(check bool) "feasible" true (Lp.Problem.feasible p [| 3.0 |]);
  Alcotest.(check bool) "violates row" false (Lp.Problem.feasible p [| 1.0 |]);
  Alcotest.(check bool) "violates bound" false (Lp.Problem.feasible p [| 6.0 |]);
  check_float "objective" 9.0 (Lp.Problem.objective_value p [| 3.0 |])

(* --- Simplex on knowns --- *)

let test_simplex_dantzig () =
  (* max 3x+5y st x<=4, 2y<=12, 3x+2y<=18 -> (2,6), 36 *)
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var ~obj:(-3.0) p in
  let y = Lp.Problem.add_var ~obj:(-5.0) p in
  ignore (Lp.Problem.add_row p [ (x, 1.0) ] Lp.Problem.Le 4.0);
  ignore (Lp.Problem.add_row p [ (y, 2.0) ] Lp.Problem.Le 12.0);
  ignore (Lp.Problem.add_row p [ (x, 3.0); (y, 2.0) ] Lp.Problem.Le 18.0);
  let r = solve_lp p in
  check_status "status" Lp.Simplex.Optimal r;
  check_float "obj" (-36.0) r.Lp.Simplex.obj;
  check_float "x" 2.0 r.Lp.Simplex.x.(0);
  check_float "y" 6.0 r.Lp.Simplex.x.(1)

let test_simplex_equality_and_bounds () =
  (* min 2a + b st a+b = 10, a>=3, b<=4 -> a=6 b=4 obj=16 *)
  let p = Lp.Problem.create () in
  let a = Lp.Problem.add_var ~obj:2.0 ~lb:3.0 p in
  let _b = Lp.Problem.add_var ~obj:1.0 ~ub:4.0 p in
  ignore (Lp.Problem.add_row p [ (a, 1.0); (_b, 1.0) ] Lp.Problem.Eq 10.0);
  let r = solve_lp p in
  check_status "status" Lp.Simplex.Optimal r;
  check_float "obj" 16.0 r.Lp.Simplex.obj

let test_simplex_infeasible () =
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var p in
  ignore (Lp.Problem.add_row p [ (x, 1.0) ] Lp.Problem.Le 1.0);
  ignore (Lp.Problem.add_row p [ (x, 1.0) ] Lp.Problem.Ge 2.0);
  check_status "status" Lp.Simplex.Infeasible (solve_lp p)

let test_simplex_unbounded () =
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var ~obj:(-1.0) p in
  ignore (Lp.Problem.add_row p [ (x, 1.0) ] Lp.Problem.Ge 0.0);
  check_status "status" Lp.Simplex.Unbounded (solve_lp p)

let test_simplex_degenerate () =
  (* a degenerate LP that can cycle without anti-cycling care *)
  let p = Lp.Problem.create () in
  let x1 = Lp.Problem.add_var ~obj:(-0.75) p in
  let x2 = Lp.Problem.add_var ~obj:150.0 p in
  let x3 = Lp.Problem.add_var ~obj:(-0.02) p in
  let x4 = Lp.Problem.add_var ~obj:6.0 p in
  ignore
    (Lp.Problem.add_row p
       [ (x1, 0.25); (x2, -60.0); (x3, -0.04); (x4, 9.0) ]
       Lp.Problem.Le 0.0);
  ignore
    (Lp.Problem.add_row p
       [ (x1, 0.5); (x2, -90.0); (x3, -0.02); (x4, 3.0) ]
       Lp.Problem.Le 0.0);
  ignore (Lp.Problem.add_row p [ (x3, 1.0) ] Lp.Problem.Le 1.0);
  let r = solve_lp p in
  check_status "beale cycles resolved" Lp.Simplex.Optimal r;
  check_float ~eps:1e-4 "beale optimum" (-0.05) r.Lp.Simplex.obj

let test_simplex_free_variable () =
  (* min x with x free and x >= -7 via row *)
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var ~lb:neg_infinity ~obj:1.0 p in
  ignore (Lp.Problem.add_row p [ (x, 1.0) ] Lp.Problem.Ge (-7.0));
  let r = solve_lp p in
  check_status "status" Lp.Simplex.Optimal r;
  check_float "obj" (-7.0) r.Lp.Simplex.obj

(* --- Randomized optimality certificates --- *)

(* Generate a random feasible bounded LP: random A, x0 in box, b chosen so
   x0 is feasible; objective random.  Check the simplex result is feasible
   and no worse than a large random sample of feasible points. *)
let random_lp_gen =
  QCheck.Gen.(
    let* n = int_range 2 6 in
    let* m = int_range 1 5 in
    let* seed = int_range 0 1_000_000 in
    return (n, m, seed))

let build_random_lp (n, m, seed) =
  let rng = Random.State.make [| seed |] in
  let p = Lp.Problem.create () in
  let vars =
    Array.init n (fun _ ->
        Lp.Problem.add_var
          ~obj:(Random.State.float rng 4.0 -. 2.0)
          ~ub:(1.0 +. Random.State.float rng 9.0)
          p)
  in
  let x0 =
    Array.map (fun v -> Random.State.float rng (Lp.Problem.var p v).Lp.Problem.ub)
      vars
  in
  for _ = 1 to m do
    let coeffs =
      Array.to_list
        (Array.map (fun v -> (v, Random.State.float rng 4.0 -. 2.0)) vars)
      |> List.filteri (fun i _ -> i < n)
    in
    let lhs =
      List.fold_left (fun acc (v, c) -> acc +. (c *. x0.(v))) 0.0 coeffs
    in
    (* make x0 feasible with slack *)
    ignore (Lp.Problem.add_row p coeffs Lp.Problem.Le (lhs +. Random.State.float rng 2.0))
  done;
  (p, vars, rng)

let prop_simplex_beats_samples =
  QCheck.Test.make ~name:"simplex no worse than sampled feasible points"
    ~count:60 (QCheck.make random_lp_gen) (fun spec ->
      let p, vars, rng = build_random_lp spec in
      let r = solve_lp p in
      match r.Lp.Simplex.status with
      | Lp.Simplex.Optimal ->
          Lp.Problem.feasible ~tol:1e-5 p r.Lp.Simplex.x
          &&
          (* sample feasible points by shrinking random box points *)
          let ok = ref true in
          for _ = 1 to 200 do
            let x =
              Array.map
                (fun v -> Random.State.float rng (Lp.Problem.var p v).Lp.Problem.ub)
                vars
            in
            if Lp.Problem.feasible p x then begin
              let o = Lp.Problem.objective_value p x in
              if o < r.Lp.Simplex.obj -. 1e-5 then ok := false
            end
          done;
          !ok
      | _ -> QCheck.assume_fail ())

(* --- Branch and bound --- *)

let test_bb_knapsack () =
  let p = Lp.Problem.create () in
  let a = Lp.Problem.add_var ~kind:Lp.Problem.Binary ~obj:(-10.0) p in
  let b = Lp.Problem.add_var ~kind:Lp.Problem.Binary ~obj:(-13.0) p in
  let c = Lp.Problem.add_var ~kind:Lp.Problem.Binary ~obj:(-7.0) p in
  ignore
    (Lp.Problem.add_row p [ (a, 3.0); (b, 4.0); (c, 2.0) ] Lp.Problem.Le 6.0);
  let r = Lp.Branch_bound.solve p in
  check_float "knapsack optimum" (-20.0) r.Lp.Branch_bound.obj;
  Alcotest.(check bool) "bound <= obj" true
    (r.Lp.Branch_bound.bound <= r.Lp.Branch_bound.obj +. 1e-6)

let test_bb_infeasible_integrality () =
  (* 2x = 1 has an LP solution but no integer one *)
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var ~kind:Lp.Problem.Integer ~ub:10.0 ~obj:1.0 p in
  ignore (Lp.Problem.add_row p [ (x, 2.0) ] Lp.Problem.Eq 1.0);
  let r = Lp.Branch_bound.solve p in
  Alcotest.(check bool) "no solution" true (r.Lp.Branch_bound.x = None)

let test_bb_warm_start () =
  let p = Lp.Problem.create () in
  let a = Lp.Problem.add_var ~kind:Lp.Problem.Binary ~obj:(-5.0) p in
  let b = Lp.Problem.add_var ~kind:Lp.Problem.Binary ~obj:(-4.0) p in
  ignore (Lp.Problem.add_row p [ (a, 1.0); (b, 1.0) ] Lp.Problem.Le 1.0);
  let options =
    { Lp.Branch_bound.default_options with
      Lp.Branch_bound.initial_incumbent = Some [| 0.0; 1.0 |];
      log_events = true }
  in
  let r = Lp.Branch_bound.solve ~options p in
  check_float "optimum" (-5.0) r.Lp.Branch_bound.obj;
  (* the warm incumbent appears in the very first event *)
  (match List.rev r.Lp.Branch_bound.events with
  | first :: _ ->
      Alcotest.(check bool) "warm incumbent visible" true
        (match first.Lp.Branch_bound.incumbent with
        | Some v -> v <= -4.0 +. 1e-6
        | None -> false)
  | [] -> Alcotest.fail "no events")

let test_bb_gap_termination () =
  let p = Lp.Problem.create () in
  let vars =
    Array.init 12 (fun i ->
        Lp.Problem.add_var ~kind:Lp.Problem.Binary
          ~obj:(-.float_of_int (10 + (i mod 5)))
          p)
  in
  ignore
    (Lp.Problem.add_row p
       (Array.to_list (Array.mapi (fun i v -> (v, float_of_int (3 + (i mod 4)))) vars))
       Lp.Problem.Le 20.0);
  let options =
    { Lp.Branch_bound.default_options with Lp.Branch_bound.gap_tolerance = 0.25 }
  in
  let r = Lp.Branch_bound.solve ~options p in
  match r.Lp.Branch_bound.x with
  | Some _ ->
      let gap =
        (r.Lp.Branch_bound.obj -. r.Lp.Branch_bound.bound)
        /. abs_float r.Lp.Branch_bound.obj
      in
      Alcotest.(check bool) "gap within tolerance" true (gap <= 0.25 +. 1e-6)
  | None -> Alcotest.fail "expected a solution"

(* Brute force agreement on random small BIPs. *)
let random_bip_gen =
  QCheck.Gen.(
    let* n = int_range 2 8 in
    let* m = int_range 1 4 in
    let* seed = int_range 0 1_000_000 in
    return (n, m, seed))

let build_random_bip (n, m, seed) =
  let rng = Random.State.make [| seed; 77 |] in
  let p = Lp.Problem.create () in
  let vars =
    Array.init n (fun _ ->
        Lp.Problem.add_var ~kind:Lp.Problem.Binary
          ~obj:(Random.State.float rng 10.0 -. 5.0)
          p)
  in
  for _ = 1 to m do
    let coeffs =
      Array.to_list (Array.map (fun v -> (v, Random.State.float rng 6.0 -. 1.0)) vars)
    in
    (* rhs >= 0 keeps the zero vector feasible *)
    ignore
      (Lp.Problem.add_row p coeffs Lp.Problem.Le (Random.State.float rng 8.0))
  done;
  (p, vars)

let brute_force p n =
  let best = ref infinity in
  for mask = 0 to (1 lsl n) - 1 do
    let x = Array.init n (fun i -> if mask land (1 lsl i) <> 0 then 1.0 else 0.0) in
    if Lp.Problem.feasible p x then begin
      let o = Lp.Problem.objective_value p x in
      if o < !best then best := o
    end
  done;
  !best

let prop_bb_matches_brute_force =
  QCheck.Test.make ~name:"branch&bound equals brute force" ~count:60
    (QCheck.make random_bip_gen) (fun spec ->
      let n, _, _ = spec in
      let p, _ = build_random_bip spec in
      let expected = brute_force p n in
      let r = Lp.Branch_bound.solve p in
      match r.Lp.Branch_bound.x with
      | Some _ -> abs_float (r.Lp.Branch_bound.obj -. expected) < 1e-5
      | None -> expected = infinity)

(* --- MIP engine invariants: cuts / warm starts / parallel driver --- *)

(* Knapsack-shaped BIPs (Le rows with positive coefficients and a rhs
   between 30% and 80% of the row total) exercise the cover-cut
   separator and leave room for fractional roots, so nodes actually
   branch and warm-resolve. *)
let random_knapsack_bip_gen =
  QCheck.Gen.(int_range 0 1_000_000 >|= fun seed -> seed)

let build_random_knapsack_bip seed =
  let rng = Random.State.make [| seed; 3001 |] in
  let n = 4 + Random.State.int rng 10 in
  let m = 2 + Random.State.int rng 6 in
  let p = Lp.Problem.create () in
  let vars =
    Array.init n (fun _ ->
        Lp.Problem.add_var ~kind:Lp.Problem.Binary
          ~obj:(Random.State.float rng 20.0 -. 10.0)
          p)
  in
  for _ = 1 to m do
    let coeffs =
      Array.to_list vars
      |> List.filter_map (fun v ->
             if Random.State.float rng 1.0 < 0.7 then
               Some (v, Random.State.float rng 5.0 +. 0.1)
             else None)
    in
    if List.length coeffs >= 2 then begin
      let tot = List.fold_left (fun a (_, c) -> a +. c) 0.0 coeffs in
      ignore
        (Lp.Problem.add_row p coeffs Lp.Problem.Le
           (tot *. (0.3 +. Random.State.float rng 0.5)))
    end
  done;
  p

(* The engine's three determinism/equivalence invariants on one random
   instance: (1) the parallel driver is deterministic — jobs 4 matches
   jobs 1 on the certified objective AND the node count; (2) cuts
   on/off agree on the certified objective (cuts only tighten bounds);
   (3) warm starts on/off agree (a warm resolve is a solve of the same
   LP); plus every added cut is satisfied by the final incumbent. *)
let prop_bb_cuts_warm_jobs_agree =
  QCheck.Test.make
    ~name:"cuts on/off and jobs 1/4 preserve the certified objective"
    ~count:60
    (QCheck.make random_knapsack_bip_gen)
    (fun seed ->
      let p = build_random_knapsack_bip seed in
      let solve ~cuts ~warm ~jobs =
        let options =
          {
            Lp.Branch_bound.default_options with
            Lp.Branch_bound.gap_tolerance = 1e-9;
            certify_incumbents = true;
            cuts;
            warm_start = warm;
            jobs;
          }
        in
        Lp.Branch_bound.solve ~options p
      in
      let a = solve ~cuts:true ~warm:true ~jobs:1 in
      let b = solve ~cuts:true ~warm:true ~jobs:4 in
      let c = solve ~cuts:false ~warm:true ~jobs:1 in
      let d = solve ~cuts:false ~warm:false ~jobs:1 in
      let near (r1 : Lp.Branch_bound.result) (r2 : Lp.Branch_bound.result) =
        r1.Lp.Branch_bound.status = r2.Lp.Branch_bound.status
        && (r1.Lp.Branch_bound.status <> Lp.Branch_bound.Optimal
           || abs_float (r1.Lp.Branch_bound.obj -. r2.Lp.Branch_bound.obj)
              <= 1e-6 *. (1.0 +. abs_float r2.Lp.Branch_bound.obj))
      in
      a.Lp.Branch_bound.cuts_uncertified = 0
      && a.Lp.Branch_bound.obj = b.Lp.Branch_bound.obj
      && a.Lp.Branch_bound.status = b.Lp.Branch_bound.status
      && a.Lp.Branch_bound.nodes = b.Lp.Branch_bound.nodes
      && near a c && near c d)

(* Dual-simplex warm-resolve regression: perturb the bounds of a solved
   LP and check the warm resolve from the saved parent basis lands on
   the cold primal optimum (or agrees on in/feasibility).  This is the
   node-evaluation contract of the best-first search. *)
let test_dual_warm_matches_cold () =
  let rng = Random.State.make [| 42 |] in
  let warm_used = ref 0 and dual_iters = ref 0 in
  for _ = 1 to 60 do
    let n = 3 + Random.State.int rng 10 in
    let m = 2 + Random.State.int rng 8 in
    let p = Lp.Problem.create () in
    let vars =
      Array.init n (fun _ ->
          Lp.Problem.add_var ~lb:0.0
            ~ub:(1.0 +. Random.State.float rng 9.0)
            ~obj:(Random.State.float rng 20.0 -. 10.0)
            p)
    in
    for _ = 1 to m do
      let coeffs =
        Array.to_list vars
        |> List.filter_map (fun v ->
               if Random.State.float rng 1.0 < 0.6 then
                 Some (v, Random.State.float rng 4.0 +. 0.2)
               else None)
      in
      if coeffs <> [] then
        ignore
          (Lp.Problem.add_row p coeffs Lp.Problem.Le
             (Random.State.float rng 20.0 +. 1.0))
    done;
    let stats = Lp.Simplex.create_stats () in
    let sess = Lp.Simplex.new_session ~stats p in
    let r0 = Lp.Simplex.session_solve sess in
    if r0.Lp.Simplex.status = Lp.Simplex.Optimal then
      match Lp.Simplex.save_basis sess with
      | None -> Alcotest.fail "optimal solve must yield a basis"
      | Some snap ->
          for _ = 1 to 5 do
            let bounds =
              Array.to_list vars
              |> List.filter_map (fun v ->
                     if Random.State.float rng 1.0 < 0.3 then
                       let vr = Lp.Problem.var p v in
                       if Random.State.bool rng then Some (v, 0.0, 0.0)
                       else Some (v, vr.Lp.Problem.lb, vr.Lp.Problem.ub /. 2.0)
                     else None)
            in
            let rw = Lp.Simplex.warm_solve ~bounds sess snap in
            let rc = Lp.Simplex.session_solve ~bounds sess in
            (match (rw.Lp.Simplex.status, rc.Lp.Simplex.status) with
            | Lp.Simplex.Optimal, Lp.Simplex.Optimal ->
                check_float ~eps:1e-6 "warm objective = cold objective"
                  rc.Lp.Simplex.obj rw.Lp.Simplex.obj
            | a, b ->
                Alcotest.(check bool)
                  "warm status = cold status" true (a = b));
            warm_used := !warm_used + stats.Lp.Simplex.warm_resolves;
            dual_iters := !dual_iters + stats.Lp.Simplex.dual_iterations
          done
  done;
  Alcotest.(check bool) "warm resolves happened" true (!warm_used > 0);
  Alcotest.(check bool) "dual iterations happened" true (!dual_iters > 0)

(* --- LP file format --- *)

let test_lp_format_roundtrip () =
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var ~obj:2.0 ~ub:4.0 ~name:"x" p in
  let y = Lp.Problem.add_var ~kind:Lp.Problem.Binary ~obj:(-3.0) ~name:"y" p in
  let z = Lp.Problem.add_var ~lb:neg_infinity ~obj:1.0 ~name:"z" p in
  ignore (Lp.Problem.add_row ~name:"c1" p [ (x, 1.0); (y, 2.0) ] Lp.Problem.Le 5.0);
  ignore (Lp.Problem.add_row ~name:"c2" p [ (z, 1.0); (x, -1.0) ] Lp.Problem.Ge (-2.0));
  let text = Lp.Lp_format.to_string p in
  let p' = Lp.Lp_format.of_string text in
  Alcotest.(check int) "vars" 3 (Lp.Problem.nvars p');
  Alcotest.(check int) "rows" 2 (Lp.Problem.nrows p');
  (* both versions optimize to the same value *)
  let r = Lp.Branch_bound.solve p in
  let r' = Lp.Branch_bound.solve p' in
  check_float ~eps:1e-6 "same optimum" r.Lp.Branch_bound.obj r'.Lp.Branch_bound.obj

let test_lp_format_parse_handwritten () =
  let text =
    {|\ a comment
Minimize
 obj: 3 a - 2 b
Subject To
 r1: a + b <= 10
 r2: a - b >= -4
Bounds
 a <= 8
 b <= 7
End|}
  in
  let p = Lp.Lp_format.of_string text in
  Alcotest.(check int) "vars" 2 (Lp.Problem.nvars p);
  let r = Lp.Simplex.solve p in
  check_status "solves" Lp.Simplex.Optimal r;
  (* min 3a - 2b: a = 0, b = 4 from r2?  r2: a - b >= -4 -> b <= a + 4 = 4 *)
  check_float ~eps:1e-6 "optimum" (-8.0) r.Lp.Simplex.obj

let test_lp_format_errors () =
  (match Lp.Lp_format.of_string "Garbage" with
  | exception Lp.Lp_format.Format_error _ -> ()
  | _ -> Alcotest.fail "expected format error");
  match Lp.Lp_format.of_string "Minimize obj: x Subject" with
  | exception Lp.Lp_format.Format_error _ -> ()
  | _ -> Alcotest.fail "expected format error"

(* Random-problem round trip: of_string (to_string p) must preserve
   every variable (kind, bounds, objective) and row (sense, rhs,
   coefficients).  The parser may renumber variables when Binary/General
   sections are present, so everything is compared by name.  The writer
   prints shortest-round-trip representations, so arbitrary finite
   floats — not just quarter-integers — must survive the file format
   bit-for-bit (Fx.exactly, not an epsilon). *)

let quantized rng = float_of_int (Random.State.int rng 33 - 16) /. 4.0

let full_float rng =
  match Random.State.int rng 4 with
  | 0 -> quantized rng
  | 1 -> Random.State.float rng 2.0 -. 1.0
  | 2 -> (Random.State.float rng 2.0 -. 1.0) *. 1e9
  | _ -> (Random.State.float rng 2.0 -. 1.0) *. 1e-9

let nonzero_full rng =
  let v = full_float rng in
  if v = 0.0 then 1.25 else v

let build_random_lp_file_problem seed =
  let rng = Random.State.make [| seed; 991 |] in
  let p = Lp.Problem.create () in
  let n = 1 + Random.State.int rng 7 in
  let vars =
    Array.init n (fun i ->
        let name = Printf.sprintf "v%d" i in
        (* the writer drops zero-coefficient objective terms, which
           would make the variable invisible to the parser *)
        let obj = nonzero_full rng in
        match Random.State.int rng 4 with
        | 0 -> Lp.Problem.add_var ~kind:Lp.Problem.Binary ~obj ~name p
        | 1 -> Lp.Problem.add_var ~kind:Lp.Problem.Integer ~obj ~name p
        | _ -> (
            (* continuous, restricted to the bound shapes the writer
               emits losslessly *)
            match Random.State.int rng 4 with
            | 0 -> Lp.Problem.add_var ~obj ~name p
            | 1 ->
                Lp.Problem.add_var ~lb:neg_infinity ~ub:infinity ~obj ~name p
            | 2 -> Lp.Problem.add_var ~lb:(full_float rng) ~obj ~name p
            | _ ->
                let lb = full_float rng in
                let ub = lb +. abs_float (full_float rng) in
                Lp.Problem.add_var ~lb ~ub ~obj ~name p))
  in
  let m = Random.State.int rng 5 in
  for r = 0 to m - 1 do
    let members =
      Array.to_list vars |> List.filter (fun _ -> Random.State.bool rng)
    in
    let members = if members = [] then [ vars.(0) ] else members in
    let coeffs = List.map (fun v -> (v, nonzero_full rng)) members in
    let sense =
      match Random.State.int rng 3 with
      | 0 -> Lp.Problem.Le
      | 1 -> Lp.Problem.Ge
      | _ -> Lp.Problem.Eq
    in
    ignore
      (Lp.Problem.add_row ~name:(Printf.sprintf "c%d" r) p coeffs sense
         (full_float rng))
  done;
  p

let lp_vars_by_name p =
  List.init (Lp.Problem.nvars p) (fun i ->
      let v = Lp.Problem.var p i in
      ( v.Lp.Problem.vname,
        (v.Lp.Problem.kind, v.Lp.Problem.lb, v.Lp.Problem.ub, v.Lp.Problem.obj)
      ))
  |> List.sort compare

let lp_rows_by_name p =
  Array.to_list (Lp.Problem.rows p)
  |> List.map (fun (r : Lp.Problem.row) ->
         ( r.Lp.Problem.rname,
           ( r.Lp.Problem.sense,
             r.Lp.Problem.rhs,
             Array.to_list r.Lp.Problem.coeffs
             |> List.map (fun (vi, c) -> ((Lp.Problem.var p vi).Lp.Problem.vname, c))
             |> List.sort compare ) ))
  |> List.sort compare

(* Exact (bitwise, NaN-honest) structural comparison of the by-name
   listings: infinities must round trip as infinities and every finite
   value to the identical bit pattern. *)
let var_entry_exact (n1, (k1, lb1, ub1, o1)) (n2, (k2, lb2, ub2, o2)) =
  String.equal n1 n2 && k1 = k2
  && Runtime.Fx.exactly lb1 lb2
  && Runtime.Fx.exactly ub1 ub2
  && Runtime.Fx.exactly o1 o2

let row_entry_exact (n1, (s1, rhs1, cs1)) (n2, (s2, rhs2, cs2)) =
  String.equal n1 n2 && s1 = s2
  && Runtime.Fx.exactly rhs1 rhs2
  && List.length cs1 = List.length cs2
  && List.for_all2
       (fun (v1, c1) (v2, c2) -> String.equal v1 v2 && Runtime.Fx.exactly c1 c2)
       cs1 cs2

let prop_lp_format_roundtrip_random =
  QCheck.Test.make ~name:"roundtrip on random problems" ~count:200
    (QCheck.make QCheck.Gen.(int_range 0 1_000_000))
    (fun seed ->
      let p = build_random_lp_file_problem seed in
      let p' = Lp.Lp_format.of_string (Lp.Lp_format.to_string p) in
      let vs = lp_vars_by_name p and vs' = lp_vars_by_name p' in
      let rs = lp_rows_by_name p and rs' = lp_rows_by_name p' in
      List.length vs = List.length vs'
      && List.length rs = List.length rs'
      && List.for_all2 var_entry_exact vs vs'
      && List.for_all2 row_entry_exact rs rs')

(* --- Sparse LU factorization --- *)

(* Random nonsingular sparse column set: strong diagonal plus a few
   off-diagonal entries.  [cols] uses the Lu.factor convention (column ->
   sorted (row, coeff) entries); the basis is a permutation so column
   order and row order differ. *)
let build_random_lu m seed =
  let rng = Random.State.make [| seed; 4242 |] in
  let cols =
    Array.init m (fun j ->
        let entries = Hashtbl.create 4 in
        Hashtbl.replace entries j (2.0 +. Random.State.float rng 8.0);
        for _ = 1 to 1 + Random.State.int rng 3 do
          let i = Random.State.int rng m in
          if i <> j then
            Hashtbl.replace entries i (Random.State.float rng 2.0 -. 1.0)
        done;
        Hashtbl.fold (fun i v acc -> (i, v) :: acc) entries []
        |> List.sort compare |> Array.of_list)
  in
  let basis = Array.init m (fun i -> i) in
  (* deterministic shuffle *)
  for i = m - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = basis.(i) in
    basis.(i) <- basis.(j);
    basis.(j) <- t
  done;
  (cols, basis)

let col_entries cols j = cols.(j)

let test_lu_solve () =
  for seed = 0 to 9 do
    let m = 5 + (seed * 3) in
    let cols, basis = build_random_lu m seed in
    let lu = Lp.Lu.factor ~m ~cols ~basis in
    Alcotest.(check bool) "nnz positive" true (Lp.Lu.nnz lu > 0);
    let rng = Random.State.make [| seed; 5151 |] in
    let b = Array.init m (fun _ -> Random.State.float rng 10.0 -. 5.0) in
    (* solve: B u = b with B's column at position k being cols.(basis.(k)) *)
    let u = Array.copy b in
    Lp.Lu.solve lu u;
    let recon = Array.make m 0.0 in
    Array.iteri
      (fun k cj ->
        Array.iter
          (fun (i, v) -> recon.(i) <- recon.(i) +. (v *. u.(k)))
          (col_entries cols cj))
      basis;
    Array.iteri
      (fun i bi ->
        check_float ~eps:1e-7 (Printf.sprintf "seed %d solve row %d" seed i) bi
          recon.(i))
      b
  done

let test_lu_solve_transpose () =
  for seed = 0 to 9 do
    let m = 5 + (seed * 3) in
    let cols, basis = build_random_lu m seed in
    let lu = Lp.Lu.factor ~m ~cols ~basis in
    let rng = Random.State.make [| seed; 6161 |] in
    let c = Array.init m (fun _ -> Random.State.float rng 10.0 -. 5.0) in
    (* solve_transpose: B' y = c, i.e. column basis.(k) . y = c.(k) *)
    let y = Array.copy c in
    Lp.Lu.solve_transpose lu y;
    Array.iteri
      (fun k cj ->
        let dot =
          Array.fold_left
            (fun acc (i, v) -> acc +. (v *. y.(i)))
            0.0 (col_entries cols cj)
        in
        check_float ~eps:1e-7
          (Printf.sprintf "seed %d btran position %d" seed k)
          c.(k) dot)
      basis
  done

let test_lu_singular () =
  (* two identical columns in the basis *)
  let cols = [| [| (0, 1.0); (1, 1.0) |]; [| (0, 1.0); (1, 1.0) |] |] in
  match Lp.Lu.factor ~m:2 ~cols ~basis:[| 0; 1 |] with
  | exception Lp.Lu.Singular _ -> ()
  | _ -> Alcotest.fail "expected Singular"

(* --- Sparse kernel vs dense reference --- *)

let solve_sparse p = Lp.Simplex.solve ~basis:Lp.Simplex.Sparse p

let test_sparse_matches_dense_knowns () =
  List.iter
    (fun build ->
      let p = build () in
      let rd = solve_lp p and rs = solve_sparse p in
      check_status "same status" rd.Lp.Simplex.status rs;
      if rd.Lp.Simplex.status = Lp.Simplex.Optimal then
        check_float ~eps:1e-6 "same objective" rd.Lp.Simplex.obj
          rs.Lp.Simplex.obj)
    [
      (fun () ->
        let p = Lp.Problem.create () in
        let x = Lp.Problem.add_var ~obj:(-3.0) p in
        let y = Lp.Problem.add_var ~obj:(-5.0) p in
        ignore (Lp.Problem.add_row p [ (x, 1.0) ] Lp.Problem.Le 4.0);
        ignore (Lp.Problem.add_row p [ (y, 2.0) ] Lp.Problem.Le 12.0);
        ignore (Lp.Problem.add_row p [ (x, 3.0); (y, 2.0) ] Lp.Problem.Le 18.0);
        p);
      (fun () ->
        let p = Lp.Problem.create () in
        let a = Lp.Problem.add_var ~obj:2.0 ~lb:3.0 p in
        let b = Lp.Problem.add_var ~obj:1.0 ~ub:4.0 p in
        ignore (Lp.Problem.add_row p [ (a, 1.0); (b, 1.0) ] Lp.Problem.Eq 10.0);
        p);
      (fun () ->
        let p = Lp.Problem.create () in
        let x = Lp.Problem.add_var ~lb:neg_infinity ~obj:1.0 p in
        ignore (Lp.Problem.add_row p [ (x, 1.0) ] Lp.Problem.Ge (-7.0));
        p);
    ]

let test_sparse_degenerate_beale () =
  (* Bland's-rule stalling regression: Beale's cycling instance must
     terminate at the optimum through the sparse kernel too. *)
  let p = Lp.Problem.create () in
  let x1 = Lp.Problem.add_var ~obj:(-0.75) p in
  let x2 = Lp.Problem.add_var ~obj:150.0 p in
  let x3 = Lp.Problem.add_var ~obj:(-0.02) p in
  let x4 = Lp.Problem.add_var ~obj:6.0 p in
  ignore
    (Lp.Problem.add_row p
       [ (x1, 0.25); (x2, -60.0); (x3, -0.04); (x4, 9.0) ]
       Lp.Problem.Le 0.0);
  ignore
    (Lp.Problem.add_row p
       [ (x1, 0.5); (x2, -90.0); (x3, -0.02); (x4, 3.0) ]
       Lp.Problem.Le 0.0);
  ignore (Lp.Problem.add_row p [ (x3, 1.0) ] Lp.Problem.Le 1.0);
  let r = solve_sparse p in
  check_status "beale optimal (sparse)" Lp.Simplex.Optimal r;
  check_float ~eps:1e-4 "beale optimum (sparse)" (-0.05) r.Lp.Simplex.obj;
  (* and through the full production backend (presolve on) *)
  let rb = Lp.Backend.solve Lp.Backend.default p in
  check_status "beale optimal (backend)" Lp.Simplex.Optimal rb;
  check_float ~eps:1e-4 "beale optimum (backend)" (-0.05) rb.Lp.Simplex.obj

let test_sparse_degenerate_assignment () =
  (* n x n assignment LP: every basic solution is massively degenerate,
     exercising the stall counter and eta refactorization path. *)
  let n = 7 in
  let rng = Random.State.make [| 321 |] in
  let p = Lp.Problem.create () in
  let v = Array.init n (fun _ -> Array.make n 0) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      v.(i).(j) <-
        Lp.Problem.add_var ~ub:1.0 ~obj:(Random.State.float rng 10.0) p
    done
  done;
  for i = 0 to n - 1 do
    ignore
      (Lp.Problem.add_row p
         (List.init n (fun j -> (v.(i).(j), 1.0)))
         Lp.Problem.Eq 1.0)
  done;
  for j = 0 to n - 1 do
    ignore
      (Lp.Problem.add_row p
         (List.init n (fun i -> (v.(i).(j), 1.0)))
         Lp.Problem.Eq 1.0)
  done;
  let stats = Lp.Simplex.create_stats () in
  let rs = Lp.Simplex.solve ~basis:Lp.Simplex.Sparse ~stats p in
  let rd = solve_lp p in
  check_status "assignment optimal (sparse)" Lp.Simplex.Optimal rs;
  check_status "assignment optimal (dense)" Lp.Simplex.Optimal rd;
  check_float ~eps:1e-6 "assignment objectives agree" rd.Lp.Simplex.obj
    rs.Lp.Simplex.obj;
  Alcotest.(check bool) "pivots counted" true (stats.Lp.Simplex.pivots > 0)

let prop_sparse_matches_dense_random_lp =
  QCheck.Test.make ~name:"sparse kernel = dense kernel on random LPs"
    ~count:80 (QCheck.make random_lp_gen) (fun spec ->
      let p, _, _ = build_random_lp spec in
      let rd = solve_lp p in
      let rs = solve_sparse p in
      rd.Lp.Simplex.status = rs.Lp.Simplex.status
      && (rd.Lp.Simplex.status <> Lp.Simplex.Optimal
         || abs_float (rd.Lp.Simplex.obj -. rs.Lp.Simplex.obj) < 1e-6))

(* --- Presolve --- *)

let test_presolve_singleton_row () =
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var ~ub:10.0 ~obj:(-1.0) p in
  let y = Lp.Problem.add_var ~ub:10.0 ~obj:(-1.0) p in
  ignore (Lp.Problem.add_row p [ (x, 2.0) ] Lp.Problem.Le 4.0);
  ignore (Lp.Problem.add_row p [ (x, 1.0); (y, 1.0) ] Lp.Problem.Le 8.0);
  let stats = Lp.Presolve.create_stats () in
  (match Lp.Presolve.run ~stats p with
  | Lp.Presolve.Feasible map ->
      (* the singleton row becomes the bound x <= 2 and is dropped *)
      Alcotest.(check int) "rows after" 1 (Lp.Problem.nrows map.Lp.Presolve.reduced);
      Alcotest.(check bool) "a bound was tightened" true
        (stats.Lp.Presolve.bounds_tightened > 0)
  | Lp.Presolve.Proved_infeasible r -> Alcotest.failf "unexpected infeasible: %s" r);
  (* and the solved result matches the unpresolved problem *)
  let rd = solve_lp p in
  let rb = Lp.Backend.solve Lp.Backend.default p in
  check_float ~eps:1e-6 "objective preserved" rd.Lp.Simplex.obj rb.Lp.Simplex.obj

let test_presolve_fixes_oversized_binary () =
  (* a binary whose activation alone overruns the budget row is fixed 0 *)
  let p = Lp.Problem.create () in
  let z1 = Lp.Problem.add_var ~kind:Lp.Problem.Binary ~obj:(-5.0) p in
  let z2 = Lp.Problem.add_var ~kind:Lp.Problem.Binary ~obj:(-3.0) p in
  ignore (Lp.Problem.add_row p [ (z1, 9.0); (z2, 2.0) ] Lp.Problem.Le 4.0);
  match Lp.Presolve.run p with
  | Lp.Presolve.Feasible map -> (
      match map.Lp.Presolve.entries.(0) with
      | Lp.Presolve.Fixed v -> check_float "z1 fixed to zero" 0.0 v
      | Lp.Presolve.Kept _ -> Alcotest.fail "z1 should be fixed by implied bounds")
  | Lp.Presolve.Proved_infeasible r -> Alcotest.failf "unexpected infeasible: %s" r

let test_presolve_duplicate_rows () =
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var ~ub:10.0 ~obj:(-1.0) p in
  let y = Lp.Problem.add_var ~ub:10.0 ~obj:(-2.0) p in
  ignore (Lp.Problem.add_row p [ (x, 1.0); (y, 1.0) ] Lp.Problem.Le 8.0);
  ignore (Lp.Problem.add_row p [ (x, 2.0); (y, 2.0) ] Lp.Problem.Le 12.0);
  (* same direction after normalization; the tighter rhs (6) must win *)
  (match Lp.Presolve.run p with
  | Lp.Presolve.Feasible map ->
      Alcotest.(check int) "merged" 1 (Lp.Problem.nrows map.Lp.Presolve.reduced)
  | Lp.Presolve.Proved_infeasible r -> Alcotest.failf "unexpected infeasible: %s" r);
  let rd = solve_lp p in
  let rb = Lp.Backend.solve Lp.Backend.default p in
  check_float ~eps:1e-6 "objective preserved" rd.Lp.Simplex.obj rb.Lp.Simplex.obj

let test_presolve_proves_infeasible () =
  let p = Lp.Problem.create () in
  let z = Lp.Problem.add_var ~kind:Lp.Problem.Binary p in
  (* activity of z in [0,3] can never reach 5 *)
  ignore (Lp.Problem.add_row p [ (z, 3.0) ] Lp.Problem.Ge 5.0);
  (match Lp.Presolve.run p with
  | Lp.Presolve.Proved_infeasible _ -> ()
  | Lp.Presolve.Feasible _ -> Alcotest.fail "expected infeasibility proof");
  (* the backend surfaces it as an Infeasible result *)
  let r = Lp.Backend.solve Lp.Backend.default p in
  check_status "backend infeasible" Lp.Simplex.Infeasible r

let test_presolve_scaling_and_duals () =
  (* byte-scale storage row: scaled internally, duals must be restored to
     the original row scale *)
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var ~ub:1.0 ~obj:(-3.0) p in
  let y = Lp.Problem.add_var ~ub:1.0 ~obj:(-2.0) p in
  ignore
    (Lp.Problem.add_row p [ (x, 2e9); (y, 1e9) ] Lp.Problem.Le 2.5e9);
  let rd = solve_lp p in
  let rb = Lp.Backend.solve Lp.Backend.default p in
  check_status "optimal" Lp.Simplex.Optimal rb;
  check_float ~eps:1e-6 "objective" rd.Lp.Simplex.obj rb.Lp.Simplex.obj;
  check_float ~eps:1e-12 "dual restored to original scale"
    rd.Lp.Simplex.duals.(0) rb.Lp.Simplex.duals.(0);
  (* restored primal stays feasible for the original rows *)
  Alcotest.(check bool) "restored x feasible" true
    (Lp.Problem.feasible ~tol:1e-5 p rb.Lp.Simplex.x)

let test_presolve_does_not_mutate_input () =
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var ~ub:10.0 ~obj:(-1.0) p in
  ignore (Lp.Problem.add_row p [ (x, 2.0) ] Lp.Problem.Le 4.0);
  (match Lp.Presolve.run p with
  | Lp.Presolve.Feasible _ -> ()
  | Lp.Presolve.Proved_infeasible r -> Alcotest.failf "unexpected: %s" r);
  let v = Lp.Problem.var p x in
  check_float "lb untouched" 0.0 v.Lp.Problem.lb;
  check_float "ub untouched" 10.0 v.Lp.Problem.ub;
  Alcotest.(check int) "rows untouched" 1 (Lp.Problem.nrows p)

let test_backend_iter_limit_restores () =
  (* A non-Optimal (Iter_limit) presolved solve must lift the kernel's
     real iterate back to the original space — presolve-fixed variables
     at their fixed values, objective recomputed from the lifted point —
     not a fabricated all-zeros solution with obj = 0 (which
     branch-and-bound would mistake for an integral incumbent). *)
  let p = Lp.Problem.create () in
  let x0 = Lp.Problem.add_var ~ub:5.0 ~obj:(-1.0) p in
  let x1 = Lp.Problem.add_var ~ub:10.0 ~obj:(-1.0) p in
  let x2 = Lp.Problem.add_var ~ub:10.0 ~obj:(-1.0) p in
  let x3 = Lp.Problem.add_var ~ub:10.0 ~obj:(-1.0) p in
  (* singleton equality: presolve fixes x0 = 1 *)
  ignore (Lp.Problem.add_row p [ (x0, 2.0) ] Lp.Problem.Eq 2.0);
  ignore (Lp.Problem.add_row p [ (x1, 1.0); (x2, 1.0) ] Lp.Problem.Le 8.0);
  ignore (Lp.Problem.add_row p [ (x2, 1.0); (x3, 1.0) ] Lp.Problem.Le 8.0);
  ignore (Lp.Problem.add_row p [ (x1, 1.0); (x3, 1.0) ] Lp.Problem.Le 8.0);
  let r = Lp.Backend.solve ~max_iters:1 Lp.Backend.default p in
  check_status "hits the iteration limit" Lp.Simplex.Iter_limit r;
  Alcotest.(check int) "x in original space" 4 (Array.length r.Lp.Simplex.x);
  check_float ~eps:1e-9 "fixed variable restored, not zeroed" 1.0
    r.Lp.Simplex.x.(x0);
  let cx = ref 0.0 in
  Array.iteri
    (fun v xv -> cx := !cx +. ((Lp.Problem.var p v).Lp.Problem.obj *. xv))
    r.Lp.Simplex.x;
  check_float ~eps:1e-9 "obj recomputed from the lifted iterate" !cx
    r.Lp.Simplex.obj

(* --- Backend agreement on BIPs (the PR's acceptance property) --- *)

let bb_with backend p =
  let options = { Lp.Branch_bound.default_options with Lp.Branch_bound.backend } in
  Lp.Branch_bound.solve ~options p

let prop_backends_agree_on_bips =
  QCheck.Test.make
    ~name:"presolve+sparse B&B = dense reference B&B on random BIPs"
    ~count:60 (QCheck.make random_bip_gen) (fun spec ->
      let n, _, _ = spec in
      let p, _ = build_random_bip spec in
      let rd = bb_with Lp.Backend.dense_reference p in
      let rs = bb_with Lp.Backend.default p in
      match (rd.Lp.Branch_bound.x, rs.Lp.Branch_bound.x) with
      | Some xd, Some xs ->
          (* random float objectives make the optimum unique: both the
             value and the integer assignment must agree *)
          abs_float (rd.Lp.Branch_bound.obj -. rs.Lp.Branch_bound.obj) < 1e-6
          && Array.for_all2
               (fun a b -> Float.round a = Float.round b)
               (Array.sub xd 0 n) (Array.sub xs 0 n)
      | None, None -> true
      | _ -> false)

(* --- decision-variable restricted branching --- *)

let test_bb_decision_vars () =
  (* selection structure: pick template y1/y2 per "query", z gates them *)
  let p = Lp.Problem.create () in
  let z1 = Lp.Problem.add_var ~kind:Lp.Problem.Binary ~obj:1.0 p in
  let z2 = Lp.Problem.add_var ~kind:Lp.Problem.Binary ~obj:1.5 p in
  let y1 = Lp.Problem.add_var ~kind:Lp.Problem.Binary ~obj:10.0 p in
  let y2 = Lp.Problem.add_var ~kind:Lp.Problem.Binary ~obj:4.0 p in
  let y0 = Lp.Problem.add_var ~kind:Lp.Problem.Binary ~obj:20.0 p in
  ignore
    (Lp.Problem.add_row p [ (y0, 1.0); (y1, 1.0); (y2, 1.0) ] Lp.Problem.Eq 1.0);
  ignore (Lp.Problem.add_row p [ (y1, 1.0); (z1, -1.0) ] Lp.Problem.Le 0.0);
  ignore (Lp.Problem.add_row p [ (y2, 1.0); (z2, -1.0) ] Lp.Problem.Le 0.0);
  (* capacity: at most one z *)
  ignore (Lp.Problem.add_row p [ (z1, 1.0); (z2, 1.0) ] Lp.Problem.Le 1.0);
  let options =
    { Lp.Branch_bound.default_options with
      Lp.Branch_bound.decision_vars = Some [ z1; z2 ] }
  in
  let r = Lp.Branch_bound.solve ~options p in
  (* best: z2, y2 -> 1.5 + 4 = 5.5 *)
  check_float ~eps:1e-6 "restricted optimum" 5.5 r.Lp.Branch_bound.obj


(* --- Analyze: model checks and solution certification --- *)

let has_code c issues =
  List.exists (fun (i : Lp.Analyze.issue) -> i.Lp.Analyze.code = c) issues

let test_analyze_malformed_models () =
  (* bound conflict *)
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var p in
  Lp.Problem.set_bounds p x ~lb:2.0 ~ub:1.0;
  let issues = Lp.Analyze.check p in
  Alcotest.(check bool) "bound-conflict flagged" true
    (has_code "bound-conflict" issues);
  Alcotest.(check bool) "bound conflict is an error" true
    (Lp.Analyze.has_errors issues);
  (* empty rows: infeasible vs redundant *)
  let p = Lp.Problem.create () in
  ignore (Lp.Problem.add_var p);
  ignore (Lp.Problem.add_row ~name:"bad" p [] Lp.Problem.Ge 1.0);
  ignore (Lp.Problem.add_row ~name:"redundant" p [] Lp.Problem.Le 1.0);
  let issues = Lp.Analyze.check p in
  Alcotest.(check bool) "empty infeasible row flagged" true
    (has_code "empty-row-infeasible" issues);
  Alcotest.(check bool) "empty satisfiable row is info" true
    (has_code "empty-row" issues);
  Alcotest.(check int) "only the infeasible one is an error" 1
    (List.length (Lp.Analyze.errors issues));
  (* duplicate equality rows with conflicting rhs *)
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var p in
  let y = Lp.Problem.add_var p in
  ignore (Lp.Problem.add_row p [ (x, 1.0); (y, 2.0) ] Lp.Problem.Eq 1.0);
  ignore (Lp.Problem.add_row p [ (x, 1.0); (y, 2.0) ] Lp.Problem.Eq 2.0);
  ignore (Lp.Problem.add_row p [ (x, 1.0); (y, 2.0) ] Lp.Problem.Eq 1.0);
  let issues = Lp.Analyze.check p in
  Alcotest.(check bool) "conflicting duplicate Eq is an error" true
    (has_code "duplicate-eq-conflict" issues);
  Alcotest.(check bool) "exact duplicate is reported as redundant" true
    (has_code "duplicate-row" issues);
  (* dangling variable whose objective pushes to an infinite bound *)
  let p = Lp.Problem.create () in
  ignore (Lp.Problem.add_var ~obj:(-1.0) p);
  Alcotest.(check bool) "dangling-unbounded flagged" true
    (has_code "dangling-unbounded" (Lp.Analyze.check p));
  (* pathological coefficient dynamic range *)
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var ~ub:1.0 p in
  let y = Lp.Problem.add_var ~ub:1.0 p in
  ignore (Lp.Problem.add_row p [ (x, 1e-8); (y, 1e8) ] Lp.Problem.Le 1.0);
  let issues = Lp.Analyze.check p in
  Alcotest.(check bool) "row-scaling flagged" true
    (has_code "row-scaling" issues);
  Alcotest.(check bool) "model-wide scaling flagged" true
    (has_code "scaling" issues);
  Alcotest.(check bool) "scaling diagnostics are not errors" false
    (Lp.Analyze.has_errors issues)

let test_analyze_clean_model () =
  (* the dantzig instance: well-formed, well-scaled *)
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var ~obj:(-3.0) p in
  let y = Lp.Problem.add_var ~obj:(-5.0) p in
  ignore (Lp.Problem.add_row p [ (x, 1.0) ] Lp.Problem.Le 4.0);
  ignore (Lp.Problem.add_row p [ (y, 2.0) ] Lp.Problem.Le 12.0);
  ignore (Lp.Problem.add_row p [ (x, 3.0); (y, 2.0) ] Lp.Problem.Le 18.0);
  Alcotest.(check (list string)) "no issues at all" []
    (List.map
       (fun (i : Lp.Analyze.issue) -> i.Lp.Analyze.code)
       (Lp.Analyze.check p))

let test_certify_accepts_and_rejects () =
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var ~obj:(-3.0) p in
  let y = Lp.Problem.add_var ~obj:(-5.0) p in
  ignore (Lp.Problem.add_row p [ (x, 1.0) ] Lp.Problem.Le 4.0);
  ignore (Lp.Problem.add_row p [ (y, 2.0) ] Lp.Problem.Le 12.0);
  ignore (Lp.Problem.add_row p [ (x, 3.0); (y, 2.0) ] Lp.Problem.Le 18.0);
  let r = solve_lp p in
  check_status "optimal" Lp.Simplex.Optimal r;
  let cert =
    Lp.Analyze.certify ~duals:r.Lp.Simplex.duals ~obj:r.Lp.Simplex.obj p
      r.Lp.Simplex.x
  in
  Alcotest.(check bool) "optimum certifies" true cert.Lp.Analyze.cert_ok;
  check_float "no row violation" 0.0 cert.Lp.Analyze.max_row_violation;
  Alcotest.(check bool) "dual residual small" true
    (cert.Lp.Analyze.max_dual_residual <= 1e-6);
  (* corrupt the point: row 3 becomes violated *)
  let bad = Array.copy r.Lp.Simplex.x in
  bad.(0) <- bad.(0) +. 1.0;
  let cert = Lp.Analyze.certify p bad in
  Alcotest.(check bool) "corrupted point rejected" false
    cert.Lp.Analyze.cert_ok;
  Alcotest.(check bool) "violation reported" true
    (cert.Lp.Analyze.max_row_violation > 1e-3);
  (* wrong reported objective *)
  let cert = Lp.Analyze.certify ~obj:(r.Lp.Simplex.obj +. 1.0) p r.Lp.Simplex.x in
  Alcotest.(check bool) "objective mismatch rejected" false
    cert.Lp.Analyze.cert_ok;
  (* fractional integer variable *)
  let p = Lp.Problem.create () in
  let b = Lp.Problem.add_var ~kind:Lp.Problem.Binary p in
  ignore (Lp.Problem.add_row p [ (b, 1.0) ] Lp.Problem.Le 1.0);
  let cert = Lp.Analyze.certify p [| 0.5 |] in
  Alcotest.(check bool) "fractional binary rejected" false
    cert.Lp.Analyze.cert_ok;
  (* ... unless integrality is waived (LP relaxation certificates) *)
  let cert = Lp.Analyze.certify ~int_vars:[] p [| 0.5 |] in
  Alcotest.(check bool) "relaxation certificate accepts" true
    cert.Lp.Analyze.cert_ok;
  (* length mismatch short-circuits *)
  let cert = Lp.Analyze.certify p [| 0.0; 0.0 |] in
  Alcotest.(check bool) "length mismatch rejected" false
    cert.Lp.Analyze.cert_ok

let test_certify_presolve_dual_gate () =
  (* x free in [0, 10], optimum interior-adjacent: use a model where some
     variable sits strictly inside its bounds at the optimum so the
     reduced-cost test has teeth, then feed corrupted duals. *)
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var ~obj:(-3.0) p in
  let y = Lp.Problem.add_var ~obj:(-5.0) p in
  ignore (Lp.Problem.add_row p [ (x, 1.0) ] Lp.Problem.Le 4.0);
  ignore (Lp.Problem.add_row p [ (y, 2.0) ] Lp.Problem.Le 12.0);
  ignore (Lp.Problem.add_row p [ (x, 3.0); (y, 2.0) ] Lp.Problem.Le 18.0);
  let r = solve_lp p in
  check_status "optimal" Lp.Simplex.Optimal r;
  (* honest duals certify under both regimes *)
  let cert =
    Lp.Analyze.certify ~presolve:false ~duals:r.Lp.Simplex.duals
      ~obj:r.Lp.Simplex.obj p r.Lp.Simplex.x
  in
  Alcotest.(check bool) "honest duals pass the hard gate" true
    cert.Lp.Analyze.cert_ok;
  (* corrupt the duals: the residual must appear in the report either
     way, but only ~presolve:false turns it into a failure *)
  let bad = Array.map (fun d -> d +. 0.5) r.Lp.Simplex.duals in
  let report_only =
    Lp.Analyze.certify ~duals:bad ~obj:r.Lp.Simplex.obj p r.Lp.Simplex.x
  in
  Alcotest.(check bool) "presolve mode stays report-only" true
    report_only.Lp.Analyze.cert_ok;
  Alcotest.(check bool) "residual still reported" true
    (report_only.Lp.Analyze.max_dual_residual > 1e-3);
  let hard =
    Lp.Analyze.certify ~presolve:false ~duals:bad ~obj:r.Lp.Simplex.obj p
      r.Lp.Simplex.x
  in
  Alcotest.(check bool) "no-presolve mode fails hard" false
    hard.Lp.Analyze.cert_ok;
  Alcotest.(check bool) "failure names the dual residual" true
    (List.exists
       (fun issue ->
         (* the message cites the no-presolve rationale *)
         String.length issue >= 13 && String.sub issue 0 13 = "dual residual")
       hard.Lp.Analyze.cert_issues)

let test_bb_certify_incumbents () =
  (* knapsack-style BIP solved with incumbent certification on: same
     answer as the plain solve, and no Certification_failed raised *)
  let build () =
    let p = Lp.Problem.create () in
    let vars =
      Array.init 6 (fun i ->
          Lp.Problem.add_var ~kind:Lp.Problem.Binary
            ~obj:(-.float_of_int (1 + (i * 2 mod 5)))
            p)
    in
    ignore
      (Lp.Problem.add_row p
         (Array.to_list (Array.mapi (fun i v -> (v, float_of_int (1 + i))) vars))
         Lp.Problem.Le 7.0);
    p
  in
  let plain = Lp.Branch_bound.solve (build ()) in
  let options =
    { Lp.Branch_bound.default_options with
      Lp.Branch_bound.certify_incumbents = true }
  in
  let certified = Lp.Branch_bound.solve ~options (build ()) in
  check_float "same objective with certification"
    plain.Lp.Branch_bound.obj certified.Lp.Branch_bound.obj

let prop_analyze_accepts_solvable =
  QCheck.Test.make
    ~name:"check+certify accept every random LP the simplex solves" ~count:80
    (QCheck.make random_lp_gen) (fun spec ->
      let p, _, _ = build_random_lp spec in
      (* generator produces well-formed models: no static errors *)
      (not (Lp.Analyze.has_errors (Lp.Analyze.check p)))
      &&
      let r = solve_lp p in
      match r.Lp.Simplex.status with
      | Lp.Simplex.Optimal ->
          let cert =
            Lp.Analyze.certify ~duals:r.Lp.Simplex.duals
              ~obj:(r.Lp.Simplex.obj +. Lp.Problem.obj_offset p)
              p r.Lp.Simplex.x
          in
          cert.Lp.Analyze.cert_ok
      | _ -> true)

let prop_bb_certified_matches_brute_force =
  QCheck.Test.make
    ~name:"certified branch&bound equals brute force" ~count:40
    (QCheck.make random_bip_gen) (fun spec ->
      let n, _, _ = spec in
      let p, _ = build_random_bip spec in
      let expected = brute_force p n in
      let options =
        { Lp.Branch_bound.default_options with
          Lp.Branch_bound.certify_incumbents = true }
      in
      let r = Lp.Branch_bound.solve ~options p in
      match r.Lp.Branch_bound.x with
      | Some x ->
          let cert = Lp.Analyze.certify ~obj:r.Lp.Branch_bound.obj p x in
          cert.Lp.Analyze.cert_ok
          && abs_float (r.Lp.Branch_bound.obj -. expected) < 1e-5
      | None -> expected = infinity)

let () =
  Alcotest.run "lp"
    [
      ( "problem",
        [
          Alcotest.test_case "builder" `Quick test_problem_builder;
          Alcotest.test_case "feasibility eval" `Quick test_problem_feasibility_eval;
        ] );
      ( "simplex",
        [
          Alcotest.test_case "dantzig" `Quick test_simplex_dantzig;
          Alcotest.test_case "equality+bounds" `Quick test_simplex_equality_and_bounds;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "degenerate (beale)" `Quick test_simplex_degenerate;
          Alcotest.test_case "free variable" `Quick test_simplex_free_variable;
          QCheck_alcotest.to_alcotest prop_simplex_beats_samples;
        ] );
      ( "lu",
        [
          Alcotest.test_case "ftran solve" `Quick test_lu_solve;
          Alcotest.test_case "btran solve" `Quick test_lu_solve_transpose;
          Alcotest.test_case "singular detection" `Quick test_lu_singular;
        ] );
      ( "sparse_kernel",
        [
          Alcotest.test_case "matches dense on knowns" `Quick
            test_sparse_matches_dense_knowns;
          Alcotest.test_case "degenerate (beale)" `Quick
            test_sparse_degenerate_beale;
          Alcotest.test_case "degenerate (assignment)" `Quick
            test_sparse_degenerate_assignment;
          QCheck_alcotest.to_alcotest prop_sparse_matches_dense_random_lp;
        ] );
      ( "presolve",
        [
          Alcotest.test_case "singleton row" `Quick test_presolve_singleton_row;
          Alcotest.test_case "oversized binary fixed" `Quick
            test_presolve_fixes_oversized_binary;
          Alcotest.test_case "duplicate rows" `Quick test_presolve_duplicate_rows;
          Alcotest.test_case "proves infeasible" `Quick
            test_presolve_proves_infeasible;
          Alcotest.test_case "scaling + duals" `Quick
            test_presolve_scaling_and_duals;
          Alcotest.test_case "input immutable" `Quick
            test_presolve_does_not_mutate_input;
          Alcotest.test_case "iter-limit lifts real iterate" `Quick
            test_backend_iter_limit_restores;
        ] );
      ( "backend",
        [ QCheck_alcotest.to_alcotest prop_backends_agree_on_bips ] );
      ( "branch_bound",
        [
          Alcotest.test_case "knapsack" `Quick test_bb_knapsack;
          Alcotest.test_case "integer infeasible" `Quick test_bb_infeasible_integrality;
          Alcotest.test_case "warm start" `Quick test_bb_warm_start;
          Alcotest.test_case "gap termination" `Quick test_bb_gap_termination;
          Alcotest.test_case "decision vars" `Quick test_bb_decision_vars;
          Alcotest.test_case "dual warm resolve = cold primal" `Quick
            test_dual_warm_matches_cold;
          QCheck_alcotest.to_alcotest prop_bb_matches_brute_force;
          QCheck_alcotest.to_alcotest prop_bb_cuts_warm_jobs_agree;
        ] );
      ( "analyze",
        [
          Alcotest.test_case "malformed models" `Quick
            test_analyze_malformed_models;
          Alcotest.test_case "clean model" `Quick test_analyze_clean_model;
          Alcotest.test_case "certify accepts/rejects" `Quick
            test_certify_accepts_and_rejects;
          Alcotest.test_case "certify presolve dual gate" `Quick
            test_certify_presolve_dual_gate;
          Alcotest.test_case "bb certify_incumbents" `Quick
            test_bb_certify_incumbents;
          QCheck_alcotest.to_alcotest prop_analyze_accepts_solvable;
          QCheck_alcotest.to_alcotest prop_bb_certified_matches_brute_force;
        ] );
      ( "lp_format",
        [
          Alcotest.test_case "roundtrip" `Quick test_lp_format_roundtrip;
          Alcotest.test_case "handwritten" `Quick test_lp_format_parse_handwritten;
          Alcotest.test_case "errors" `Quick test_lp_format_errors;
          QCheck_alcotest.to_alcotest prop_lp_format_roundtrip_random;
        ] );
    ]
