(* Tests for the serve layer: the hand-rolled JSON codec and the
   protocol engine (dedupe, sliding window, warm recommendations,
   trace-invariant determinism). *)

open Sqlast

let schema = Catalog.Tpch.schema ()

(* --- Json --- *)

let test_json_print () =
  let v =
    Serve.Json.Obj
      [
        ("s", Serve.Json.Str "a\"b\\c\nd");
        ("i", Serve.Json.Num 42.0);
        ("f", Serve.Json.Num 1.5);
        ("nan", Serve.Json.Num Float.nan);
        ("l", Serve.Json.List [ Serve.Json.Bool true; Serve.Json.Null ]);
      ]
  in
  Alcotest.(check string) "printing"
    {|{"s":"a\"b\\c\nd","i":42,"f":1.5,"nan":null,"l":[true,null]}|}
    (Serve.Json.to_string v)

let test_json_parse () =
  let v =
    Serve.Json.of_string
      {| { "op" : "statement", "delta": -2.5e1, "t":true, "u":"A\n",
           "xs": [1, 2, {"y": null}] } |}
  in
  Alcotest.(check bool) "op member" true
    (Serve.Json.member "op" v = Some (Serve.Json.Str "statement"));
  Alcotest.(check bool) "number" true
    (Option.bind (Serve.Json.member "delta" v) Serve.Json.to_float
    = Some (-25.0));
  Alcotest.(check bool) "unicode escape" true
    (Option.bind (Serve.Json.member "u" v) Serve.Json.to_str = Some "A\n");
  List.iter
    (fun bad ->
      Alcotest.(check bool)
        (Printf.sprintf "rejects %S" bad)
        true
        (match Serve.Json.of_string bad with
        | _ -> false
        | exception Serve.Json.Parse_error _ -> true))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "{} trailing"; "\"unterminated" ]

(* Printed values reparse to themselves (for the value space the daemon
   emits: finite numbers that survive the %.12g print precision). *)
let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Serve.Json.Null;
        map (fun b -> Serve.Json.Bool b) bool;
        map (fun i -> Serve.Json.Num (float_of_int i)) (int_range (-1000) 1000);
        map (fun s -> Serve.Json.Str s) (string_size ~gen:printable (0 -- 12));
      ]
  in
  let value =
    oneof
      [
        scalar;
        map (fun xs -> Serve.Json.List xs) (list_size (0 -- 6) scalar);
        map
          (fun kvs -> Serve.Json.Obj kvs)
          (list_size (0 -- 6)
             (pair (string_size ~gen:printable (1 -- 8)) scalar));
      ]
  in
  value

let prop_json_roundtrip =
  QCheck.Test.make ~name:"printed JSON reparses to itself" ~count:200
    (QCheck.make json_gen)
    (fun v -> Serve.Json.of_string (Serve.Json.to_string v) = v)

(* --- Engine --- *)

let sql_of stmt = Print.statement_to_string stmt

let statements ~n ~seed =
  Workload.Gen.hom schema ~n ~seed
  |> List.map (fun { Ast.stmt; _ } -> stmt)

let engine ?window ?certify () = Serve.Engine.create ?window ?certify schema

let observe_all e stmts =
  List.iter (fun s -> Serve.Engine.observe e s 1.0) stmts

let test_engine_dedupe () =
  let e = engine () in
  let stmts = statements ~n:3 ~seed:5 in
  observe_all e stmts;
  observe_all e stmts;
  Serve.Engine.flush e;
  Alcotest.(check int) "one entry per canonical key" (List.length stmts)
    (Serve.Engine.session_statements e);
  Alcotest.(check int) "window counts every event" (2 * List.length stmts)
    (Serve.Engine.window_size e);
  (* repeat observations reached the session without new INUM builds *)
  let store = Cophy.Interactive.store (Serve.Engine.session e) in
  Alcotest.(check int) "distinct builds only" (List.length stmts)
    (Inum.Keyed.misses store)

let test_engine_window_eviction () =
  let e = engine ~window:4 () in
  let stmts = statements ~n:2 ~seed:6 in
  (* fill the window with the first statement, then push it out *)
  List.iter (fun _ -> Serve.Engine.observe e (List.hd stmts) 1.0) [ 1; 2; 3; 4 ];
  Serve.Engine.flush e;
  Alcotest.(check int) "one statement" 1 (Serve.Engine.session_statements e);
  List.iter
    (fun _ -> Serve.Engine.observe e (List.nth stmts 1) 1.0)
    [ 1; 2; 3; 4 ];
  Serve.Engine.flush e;
  Alcotest.(check int) "window capped" 4 (Serve.Engine.window_size e);
  Alcotest.(check int) "zero-mass key left the session" 1
    (Serve.Engine.session_statements e)

let member_exn k v =
  match Serve.Json.member k v with
  | Some x -> x
  | None -> Alcotest.failf "missing %S in %s" k (Serve.Json.to_string v)

let test_engine_recommend_whatif_stats () =
  let e = engine () in
  let stmts = statements ~n:3 ~seed:7 in
  observe_all e stmts;
  (* certify:true (the default) would have raised on a bad solution *)
  let r = Serve.Engine.recommend e in
  Alcotest.(check bool) "ok" true (member_exn "ok" r = Serve.Json.Bool true);
  (match member_exn "indexes" r with
  | Serve.Json.List ixs ->
      Alcotest.(check bool) "some indexes" true (List.length ixs > 0)
  | _ -> Alcotest.fail "indexes not a list");
  Alcotest.(check bool) "latency fields present" true
    (Serve.Json.member "p50_ms" r <> None
    && Serve.Json.member "p99_ms" r <> None);
  let wi = Serve.Engine.whatif e (List.hd stmts) in
  Alcotest.(check bool) "whatif ok" true
    (member_exn "ok" wi = Serve.Json.Bool true);
  let improvement =
    Option.get (Serve.Json.to_float (member_exn "improvement" wi))
  in
  Alcotest.(check bool) "recommended config no worse" true
    (improvement >= 0.0);
  let st = Serve.Engine.stats_response e in
  Alcotest.(check bool) "whatif was a cache hit" true
    (Option.get (Serve.Json.to_float (member_exn "cache_hits" st)) >= 1.0);
  Alcotest.(check bool) "probes counted" true
    (Option.get (Serve.Json.to_float (member_exn "inum_probes" st)) > 0.0)

let test_handle_line_errors () =
  let e = engine () in
  let expect_error line =
    let resp = Serve.Json.of_string (Serve.Engine.handle_line e line) in
    Alcotest.(check bool)
      (Printf.sprintf "error for %s" line)
      true
      (member_exn "ok" resp = Serve.Json.Bool false
      && Serve.Json.member "error" resp <> None)
  in
  expect_error "not json";
  expect_error {|{"no_op":1}|};
  expect_error {|{"op":"frobnicate"}|};
  expect_error {|{"op":"statement"}|};
  expect_error {|{"op":"statement","sql":"SELECT garbage FROM nowhere"}|};
  expect_error {|{"op":"whatif","sql":"UPDATE orders SET o_comment = ?"}|}

(* The protocol is deterministic in the event stream: replies are byte
   identical across runs and trace on/off, once the named latency
   fields are stripped. *)
let strip_latency v =
  match v with
  | Serve.Json.Obj kvs ->
      Serve.Json.Obj
        (List.filter
           (fun (k, _) ->
             String.length k < 3 || String.sub k (String.length k - 3) 3 <> "_ms")
           kvs)
  | v -> v

let run_stream lines =
  let e = engine () in
  List.map
    (fun line ->
      Serve.Json.to_string
        (strip_latency (Serve.Json.of_string (Serve.Engine.handle_line e line))))
    lines

let test_engine_deterministic_under_trace () =
  let stmts = statements ~n:3 ~seed:8 in
  let lines =
    List.concat_map
      (fun s ->
        [
          Serve.Json.to_string
            (Serve.Json.Obj
               [
                 ("op", Serve.Json.Str "statement");
                 ("sql", Serve.Json.Str (sql_of s));
                 ("delta", Serve.Json.Num 2.0);
               ]);
        ])
      stmts
    @ [ {|{"op":"recommend"}|}; {|{"op":"stats"}|} ]
  in
  let plain = run_stream lines in
  Runtime.Trace.reset ();
  Runtime.Trace.enable ();
  let traced =
    Fun.protect ~finally:Runtime.Trace.disable (fun () -> run_stream lines)
  in
  List.iter2
    (Alcotest.(check string) "trace does not change replies")
    plain traced;
  Alcotest.(check bool) "serve spans recorded" true
    (List.length (Runtime.Trace.spans ()) > 0)

let () =
  Alcotest.run "serve"
    [
      ( "json",
        [
          Alcotest.test_case "print" `Quick test_json_print;
          Alcotest.test_case "parse" `Quick test_json_parse;
          QCheck_alcotest.to_alcotest prop_json_roundtrip;
        ] );
      ( "engine",
        [
          Alcotest.test_case "dedupe" `Quick test_engine_dedupe;
          Alcotest.test_case "window eviction" `Quick
            test_engine_window_eviction;
          Alcotest.test_case "recommend/whatif/stats" `Quick
            test_engine_recommend_whatif_stats;
          Alcotest.test_case "protocol errors" `Quick test_handle_line_errors;
          Alcotest.test_case "deterministic under trace" `Quick
            test_engine_deterministic_under_trace;
        ] );
    ]
