(* The same flows as bf_tainted.ml, laundered the recognized ways:
   an Optimal guard ident, an Optimal match arm, a && guard, and a
   declared [@bound.certifier].  cophy-bound must stay silent on this
   entire file (test/test_bound.ml asserts zero findings here). *)

type status = Optimal | Iter_limit
type result = { status : status; obj : float }

let[@bound.source heuristic
     "may stop at Iter_limit with the last iterate's objective"] solve_lp
    (c : float) =
  if c > 100.0 then { status = Iter_limit; obj = c }
  else { status = Optimal; obj = c /. 2.0 }

(* A recognized certifier: re-derives the value from first principles. *)
let[@bound.certifier recheck
     "recomputes the objective from the model, independent of the \
      solver iterate"] certify (r : result) =
  r.obj *. 1.0

let bound = ref neg_infinity
let incumbent = ref infinity

(* Guard-ident laundering: [solved] is bound to an Optimal comparison. *)
let seed () =
  let r = solve_lp 3.0 in
  let solved = r.status = Optimal in
  bound :=
    ((if solved then r.obj else neg_infinity)
    [@bound.sink bound "proven seed of the dual bound"])

(* Match-arm laundering: the arm's pattern requires Optimal. *)
let advance () =
  let r = solve_lp 5.0 in
  match r.status with
  | Optimal -> bound := (r.obj [@bound.sink bound "proven advance"])
  | Iter_limit -> ()

(* && laundering plus a certifier call on the accepted value. *)
let try_accept (r : result) =
  (r.status = Optimal || certify r < !incumbent)
  && begin
       incumbent :=
         (certify r [@bound.sink incumbent "certified acceptance"]);
       true
     end

let driver () =
  let r = solve_lp 9.0 in
  ignore (try_accept r)
