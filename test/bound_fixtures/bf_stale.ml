(* Escape-hatch hygiene violations: a [@bound.trust] that suppresses
   nothing (stale_trust) and a malformed [@bound.source] level
   (bad_attr). *)

let claimed = ref 0.0

let tidy () =
  claimed :=
    (1.0
    [@bound.sink certified_output "published value"]
    [@bound.trust phantom_producer
        "left behind after a refactor; the flow it once justified is \
         gone"])

let[@bound.source sloppy "not a lattice level"] misdeclared () = 0.0
