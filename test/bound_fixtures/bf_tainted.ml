(* Deliberate bound-provenance violations, caught by cophy-bound
   (test/test_bound.ml asserts the exact diagnostics).

   The shapes reproduce the repo's real bug class, fixed by hand in
   PR 2's review and again in the decomposition z subproblem: a solver
   result that may carry an [Iter_limit] status is trusted as a proven
   value — its objective prunes, becomes the incumbent, or is
   published — without checking the status. *)

type status = Optimal | Iter_limit
type result = { status : status; obj : float }

(* The heuristic producer: may stop early and return the last iterate. *)
let[@bound.source heuristic
     "may stop at Iter_limit, in which case obj is the last iterate's \
      value, not a proven optimum"] solve_lp (c : float) =
  if c > 100.0 then { status = Iter_limit; obj = c }
  else { status = Optimal; obj = c /. 2.0 }

(* --- The PR-2 bug shape: prune on an unchecked objective --- *)

let prune_threshold = ref infinity

let prune (r : result) =
  (* no status check: an Iter_limit objective prunes the subtree *)
  let nb = r.obj in
  (nb >= !prune_threshold)
  [@bound.sink prune "discards the subtree for good"]

(* --- Incumbent acceptance without certification --- *)

let incumbent = ref infinity

let accept (r : result) =
  if r.obj < !incumbent then
    incumbent :=
      (r.obj [@bound.sink incumbent "becomes the pruning threshold"])

(* --- Published output taken straight from the producer --- *)

let best_obj =
  let r = solve_lp 7.0 in
  (r.obj [@bound.sink certified_output "reported as the optimum"])

(* --- Per-callsite precision: [scale] is called on both a clean and a
   tainted argument; only the tainted callsite may report --- *)

let scale x = x *. 2.0

let clean_path =
  (scale 21.0) [@bound.sink certified_output "clean per-callsite path"]

let dirty_path () =
  let r = solve_lp 9.0 in
  (scale r.obj) [@bound.sink certified_output "tainted per-callsite path"]

(* drive the interprocedural flows: parameter summaries only see taint
   that some callsite actually passes *)
let driver () =
  let r = solve_lp 123.0 in
  accept r;
  prune r
