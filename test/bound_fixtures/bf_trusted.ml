(* A tainted flow whose sink is justified with a lexically scoped
   [@bound.trust]: no tainted_sink is reported, and because the trust
   matches a producer on a real tainted flow it is not stale either. *)

type outcome = { estimate : float }

let[@bound.source heuristic
     "simulated-annealing estimate; never converges to a certificate"]
    anneal (c : float) =
  { estimate = c *. 0.9 }

let report = ref 0.0

let publish () =
  let r = anneal 2.0 in
  report :=
    (r.estimate
    [@bound.sink certified_output "published estimate"]
    [@bound.trust anneal
        "display-only estimate: the published number is labeled \
         approximate in the report and never feeds a pruning or \
         certification decision"])
