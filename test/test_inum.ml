(* Tests for INUM: template construction, the gamma coefficients, and —
   centrally — Lemma 1: the INUM cost function is linearly composable and
   matches / upper-bounds the direct what-if optimizer. *)

open Sqlast

let schema = Catalog.Tpch.schema ()

let env () = Optimizer.Whatif.make_env schema

let ix ?includes table keys = Storage.Index.create ?includes ~table keys

let col = Ast.col_ref

let simple_query () =
  {
    Ast.query_id = 1;
    tables = [ "orders" ];
    select = [ Ast.Col (col "orders" "o_totalprice") ];
    predicates =
      [ Ast.predicate ~selectivity:0.001 (col "orders" "o_orderdate") Ast.Eq ];
    joins = [];
    group_by = [];
    order_by = [ (col "orders" "o_totalprice", Ast.Asc) ];
  }

let join_query () =
  {
    Ast.query_id = 2;
    tables = [ "orders"; "lineitem" ];
    select =
      [ Ast.Col (col "orders" "o_orderdate");
        Ast.Agg (Ast.Sum, col "lineitem" "l_extendedprice") ];
    predicates =
      [ Ast.predicate ~selectivity:0.01 (col "orders" "o_orderdate") Ast.Eq ];
    joins =
      [ { Ast.left = col "orders" "o_orderkey";
          right = col "lineitem" "l_orderkey" } ];
    group_by = [ col "orders" "o_orderdate" ];
    order_by = [];
  }

(* --- Template construction --- *)

let test_templates_exist () =
  let e = env () in
  let c = Inum.build e (simple_query ()) in
  Alcotest.(check bool) "at least one template" true (Inum.template_count c >= 1);
  Alcotest.(check bool) "few init calls" true (Inum.init_calls c < 50)

let test_join_query_has_order_templates () =
  let e = env () in
  let c = Inum.build e (join_query ()) in
  (* some template should require an order or NLJ on the join columns *)
  let has_constrained =
    List.exists
      (fun (t : Inum.template) ->
        Array.exists
          (function
            | Optimizer.Plan.Ordered _ | Optimizer.Plan.Nlj_inner _ -> true
            | Optimizer.Plan.Any_order -> false)
          t.Inum.slot_reqs)
      (Inum.templates c)
  in
  Alcotest.(check bool) "constrained template exists" true has_constrained

let test_template_betas_positive () =
  let e = env () in
  let c = Inum.build e (join_query ()) in
  List.iter
    (fun (t : Inum.template) ->
      Alcotest.(check bool) "beta >= 0" true (t.Inum.beta >= 0.0))
    (Inum.templates c)

(* --- Gamma --- *)

let test_gamma_infinite_on_wrong_order () =
  let e = env () in
  let q = simple_query () in
  let c = Inum.build e q in
  (* find a template requiring order on o_totalprice *)
  let templates = Array.of_list (Inum.templates c) in
  let ordered_k = ref (-1) in
  Array.iteri
    (fun k (t : Inum.template) ->
      if
        Array.exists
          (function Optimizer.Plan.Ordered _ -> true | _ -> false)
          t.Inum.slot_reqs
      then ordered_k := k)
    templates;
  if !ordered_k >= 0 then begin
    (* an index that cannot deliver the o_totalprice order *)
    let bad = ix "orders" [ "o_orderpriority" ] in
    match Inum.gamma c !ordered_k ~table:"orders" (Some bad) with
    | None -> ()
    | Some g ->
        (* only acceptable if the order was satisfied via eq-bound skip *)
        Alcotest.(check bool) "gamma finite only if order held" true (g >= 0.0)
  end

let test_gamma_none_index_finite () =
  let e = env () in
  let c = Inum.build e (simple_query ()) in
  (* the no-index gamma is always finite: scan (+ sort) *)
  List.iteri
    (fun k _ ->
      match Inum.gamma c k ~table:"orders" None with
      | Some g -> Alcotest.(check bool) "finite" true (g > 0.0)
      | None -> Alcotest.fail "no-index gamma must be finite")
    (Inum.templates c)

(* --- Lemma 1 / cost agreement --- *)

let test_inum_upper_bounds_direct () =
  let e = env () in
  let q = join_query () in
  let c = Inum.build e q in
  let configs =
    [ Storage.Config.empty;
      Storage.Config.of_list [ ix "orders" [ "o_orderdate" ] ];
      Storage.Config.of_list
        [ ix ~includes:[ "o_orderdate" ] "orders" [ "o_orderdate" ];
          ix ~includes:[ "l_extendedprice" ] "lineitem" [ "l_orderkey" ] ] ]
  in
  List.iter
    (fun cfg ->
      let direct = Optimizer.Whatif.cost e q cfg in
      let approx = Inum.cost c cfg in
      Alcotest.(check bool) "inum >= direct (plans are a subset)" true
        (approx >= direct -. 1e-6);
      Alcotest.(check bool) "inum within 2x here" true (approx <= 2.0 *. direct))
    configs

(* The big property: on generated workloads and random candidate subsets,
   INUM equals the direct optimizer exactly (our templates cover the whole
   plan space the direct DP searches). *)
let prop_inum_matches_direct =
  QCheck.Test.make ~name:"INUM cost = direct what-if on hom workloads"
    ~count:20
    QCheck.(pair (int_range 0 10_000) (int_range 0 3))
    (fun (seed, subset) ->
      let e = env () in
      let w = Workload.Gen.hom schema ~n:8 ~seed in
      let cands = Cophy.Cgen.generate w in
      let cfg =
        Storage.Config.of_list
          (List.filteri (fun i _ -> i mod (subset + 1) = 0) cands)
      in
      List.for_all
        (fun (q, _) ->
          let c = Inum.build e q in
          let direct = Optimizer.Whatif.cost e q cfg in
          let approx = Inum.cost c cfg in
          approx >= direct -. 1e-6 && approx <= direct *. 1.0001)
        (Ast.selects w))

let test_best_instantiation_consistent () =
  let e = env () in
  let q = join_query () in
  let c = Inum.build e q in
  let cfg =
    Storage.Config.of_list
      [ ix ~includes:[ "o_orderdate" ] "orders" [ "o_orderdate" ];
        ix ~includes:[ "l_extendedprice" ] "lineitem" [ "l_orderkey" ] ]
  in
  let cost, k, picks = Inum.best_instantiation c cfg in
  Alcotest.(check (float 1e-6)) "instantiation matches cost" (Inum.cost c cfg) cost;
  Alcotest.(check bool) "template index valid" true
    (k >= 0 && k < Inum.template_count c);
  Alcotest.(check int) "one pick per table" 2 (Array.length picks)

(* --- Workload cache --- *)

let test_workload_cache () =
  let e = env () in
  let w =
    Workload.Gen.hom schema ~n:6 ~seed:3
    |> Workload.Gen.with_updates schema ~fraction:0.5 ~seed:3
  in
  let cache = Inum.build_workload e w in
  Alcotest.(check int) "all statements cached" 6
    (List.length cache.Inum.selects);
  Alcotest.(check bool) "some updates" true (List.length cache.Inum.updates > 0);
  Alcotest.(check bool) "init calls counted" true
    ((Inum.total_init_calls cache) > 0);
  (* workload cost decreases (or stays) when indexes are added; update
     maintenance can offset gains, so test with a covering useful index *)
  let c0 = Inum.workload_cost e cache Storage.Config.empty in
  Alcotest.(check bool) "positive cost" true (c0 > 0.0)

let test_update_maintenance_in_workload_cost () =
  let e = env () in
  let u =
    { Ast.update_id = 1; target = "lineitem"; set_columns = [ "l_quantity" ];
      where =
        [ Ast.predicate ~selectivity:1e-5 (col "lineitem" "l_orderkey") Ast.Eq ] }
  in
  let w = [ { Ast.stmt = Ast.Update u; weight = 1.0 } ] in
  let cache = Inum.build_workload e w in
  let idle = ix "lineitem" [ "l_quantity" ] in
  let c_with = Inum.workload_cost e cache (Storage.Config.of_list [ idle ]) in
  let c_without = Inum.workload_cost e cache Storage.Config.empty in
  Alcotest.(check bool) "maintenance charged" true (c_with > c_without)

(* --- Lazy probing vs. the eager reference --- *)

(* Bit-identical template sets: betas via Fx.exactly, slot requirements
   via Inum.req_equal (never polymorphic [=] — the reqs embed floats),
   plans by their printed form. *)
let same_templates c1 c2 =
  List.length (Inum.templates c1) = List.length (Inum.templates c2)
  && List.for_all2
       (fun (a : Inum.template) (b : Inum.template) ->
         Runtime.Fx.exactly a.Inum.beta b.Inum.beta
         && Array.length a.Inum.slot_reqs = Array.length b.Inum.slot_reqs
         && Array.for_all2 Inum.req_equal a.Inum.slot_reqs b.Inum.slot_reqs
         && String.equal
              (Fmt.str "%a" Optimizer.Plan.pp a.Inum.plan)
              (Fmt.str "%a" Optimizer.Plan.pp b.Inum.plan))
       (Inum.templates c1) (Inum.templates c2)

let some_configs () =
  [ Storage.Config.empty;
    Storage.Config.of_list [ ix "orders" [ "o_orderdate" ] ];
    Storage.Config.of_list
      [ ix ~includes:[ "o_orderdate" ] "orders" [ "o_orderdate" ];
        ix ~includes:[ "l_extendedprice" ] "lineitem" [ "l_orderkey" ] ] ]

let test_lazy_unlimited_matches_eager () =
  let e = env () in
  let w = Workload.Gen.hom schema ~n:12 ~seed:5 in
  List.iter
    (fun (q, _) ->
      let lazy_build = Inum.build e q in
      let eager = Inum.build_eager e q in
      Alcotest.(check bool) "kept templates bit-identical" true
        (same_templates lazy_build eager);
      Alcotest.(check int) "nothing deferred at unlimited budget" 0
        (Inum.pending_probes lazy_build);
      Alcotest.(check (float 0.0)) "zero regret" 0.0
        (Inum.probe_regret lazy_build);
      Alcotest.(check bool) "lazy never probes more than eager" true
        (Inum.init_calls lazy_build <= Inum.init_calls eager);
      List.iter
        (fun cfg ->
          Alcotest.(check (float 0.0)) "identical cost surface"
            (Inum.cost eager cfg) (Inum.cost lazy_build cfg))
        (some_configs ()))
    (Ast.selects w)

let test_budgeted_build_jobs_invariant () =
  let w = Workload.Gen.hom schema ~n:10 ~seed:7 in
  let c1 = Inum.build_workload ~jobs:1 ~probe_budget:8 (env ()) w in
  let c4 = Inum.build_workload ~jobs:4 ~probe_budget:8 (env ()) w in
  Alcotest.(check int) "same probe count at jobs 1 and 4"
    (Inum.total_init_calls c1) (Inum.total_init_calls c4);
  Alcotest.(check (float 0.0)) "same certified regret"
    (Inum.cache_regret c1) (Inum.cache_regret c4);
  List.iter2
    (fun (_, _, a) (_, _, b) ->
      (* compare the surrogate surface without forcing deferred probes *)
      let ca, _ = Inum.cost_bound a Storage.Config.empty in
      let cb, _ = Inum.cost_bound b Storage.Config.empty in
      Alcotest.(check (float 0.0)) "same surrogate cost" ca cb)
    c1.Inum.selects c4.Inum.selects

(* The certification property: at any budget and any configuration the
   budgeted surrogate over-estimates the exhaustive INUM cost by at most
   the certified regret. *)
let prop_budgeted_regret_sound =
  QCheck.Test.make
    ~name:"budgeted surrogate >= exhaustive >= surrogate - regret" ~count:15
    QCheck.(triple (int_range 0 10_000) (int_range 1 6) (int_range 0 3))
    (fun (seed, budget, subset) ->
      let e = env () in
      let w = Workload.Gen.hom schema ~n:4 ~seed in
      let cands = Cophy.Cgen.generate w in
      let cfg =
        Storage.Config.of_list
          (List.filteri (fun i _ -> i mod (subset + 1) = 0) cands)
      in
      List.for_all
        (fun (q, _) ->
          let budgeted = Inum.build ~probe_budget:budget e q in
          let exact = Inum.cost (Inum.build_eager e q) cfg in
          let surrogate, regret = Inum.cost_bound budgeted cfg in
          regret >= 0.0
          && surrogate >= exact -. 1e-6
          && exact >= surrogate -. regret -. 1e-6)
        (Ast.selects w))

let test_gamma_unknown_table_raises () =
  let e = env () in
  let c = Inum.build e (simple_query ()) in
  Alcotest.check_raises "names the table and the query"
    (Invalid_argument
       "Inum.gamma: table \"nation\" is not referenced by query 1")
    (fun () -> ignore (Inum.gamma c 0 ~table:"nation" None))

(* --- Keyed store --- *)

(* A cache hit must return exactly what a fresh build of the normalized
   query would: same templates (betas, slot requirements, plans) and the
   same cost surface, bit for bit. *)
let same_cache c1 c2 =
  List.equal String.equal (Inum.tables c1) (Inum.tables c2)
  && same_templates c1 c2

let test_keyed_hit_bit_identical () =
  let e = env () in
  let store = Inum.Keyed.create e in
  let q = join_query () in
  let c1 = Inum.Keyed.find_or_build store q in
  Alcotest.(check int) "first lookup misses" 1 (Inum.Keyed.misses store);
  (* a differently spelled repeat: reversed tables, flipped join, new id *)
  let q' =
    {
      q with
      Ast.query_id = 99;
      tables = List.rev q.Ast.tables;
      joins =
        List.map
          (fun { Ast.left; right } -> { Ast.left = right; right = left })
          q.Ast.joins;
    }
  in
  let c2 = Inum.Keyed.find_or_build store q' in
  Alcotest.(check int) "repeat hits" 1 (Inum.Keyed.hits store);
  Alcotest.(check int) "no second build" 1 (Inum.Keyed.misses store);
  Alcotest.(check bool) "hit is the stored cache" true (c1 == c2);
  let fresh = Inum.build e (Canon.normalize q) in
  Alcotest.(check bool) "hit bit-identical to fresh build" true
    (same_cache c2 fresh);
  let cfg =
    Storage.Config.of_list
      [ ix "orders" [ "o_orderdate" ]; ix "lineitem" [ "l_orderkey" ] ]
  in
  Alcotest.(check (float 0.0)) "identical cost surface"
    (Inum.cost fresh cfg) (Inum.cost c2 cfg)

let test_keyed_capacity_lru () =
  let e = env () in
  let store = Inum.Keyed.create ~capacity:1 e in
  let q1 = simple_query () in
  let q2 = join_query () in
  ignore (Inum.Keyed.find_or_build store q1);
  ignore (Inum.Keyed.find_or_build store q2);
  Alcotest.(check int) "capacity enforced" 1 (Inum.Keyed.length store);
  Alcotest.(check int) "eviction counted" 1 (Inum.Keyed.evictions store);
  Alcotest.(check bool) "old key evicted" false (Inum.Keyed.mem store q1);
  Alcotest.(check bool) "new key kept" true (Inum.Keyed.mem store q2);
  (* the evicted key rebuilds on return *)
  ignore (Inum.Keyed.find_or_build store q1);
  Alcotest.(check int) "rebuild is a miss" 3 (Inum.Keyed.misses store)

let test_add_statements_dedupe () =
  let e = env () in
  let store = Inum.Keyed.create e in
  let w = Workload.Gen.hom schema ~n:5 ~seed:11 in
  let cache = Inum.add_statements store Inum.empty_cache w in
  let first_probes = (Inum.total_init_calls cache) in
  Alcotest.(check bool) "probes spent on first add" true (first_probes > 0);
  (* re-adding the same statements must cost zero probes *)
  let cache2 = Inum.add_statements store cache w in
  Alcotest.(check int) "repeat add costs zero probes" first_probes
    (Inum.total_init_calls cache2);
  Alcotest.(check int) "both copies referenced" (2 * List.length w)
    (List.length cache2.Inum.selects);
  Alcotest.(check bool) "repeats are hits" true (Inum.Keyed.hits store > 0);
  Alcotest.(check (float 1e-9)) "hit rate reflects reuse"
    0.5 (Inum.Keyed.hit_rate store)

(* A hit on a partially-built (budgeted) entry must return the same live
   value — never a copy with stale bounds — and refinement through one
   handle must be visible through every other. *)
let test_keyed_partial_build_coherent () =
  let e = env () in
  let store = Inum.Keyed.create ~probe_budget:2 e in
  let q = join_query () in
  let c1 = Inum.Keyed.find_or_build store q in
  Alcotest.(check bool) "budget 2 leaves probes deferred" true
    (Inum.pending_probes c1 > 0);
  let surrogate, regret = Inum.cost_bound c1 Storage.Config.empty in
  let c2 = Inum.Keyed.find_or_build store q in
  Alcotest.(check bool) "hit is the same live entry" true (c1 == c2);
  (* consulting the cost through the hit forces the deferred probes … *)
  let exact = Inum.cost c2 Storage.Config.empty in
  Alcotest.(check bool) "the pre-refinement bound was sound" true
    (surrogate >= exact -. 1e-6 && exact >= surrogate -. regret -. 1e-6);
  (* … and the first handle sees the refinement, not its stale bounds *)
  let surrogate', regret' = Inum.cost_bound c1 Storage.Config.empty in
  Alcotest.(check (float 0.0)) "no stale bounds on the first handle" exact
    surrogate';
  Alcotest.(check bool) "regret never grows" true (regret' <= regret);
  Alcotest.(check (float 0.0)) "refined cost matches an eager build"
    (Inum.cost (Inum.build_eager e (Canon.normalize q)) Storage.Config.empty)
    exact

(* Resolution through the store is invariant in jobs and identical to a
   fresh direct build of the canonical form. *)
let prop_keyed_matches_fresh =
  QCheck.Test.make ~name:"keyed store resolves to fresh builds" ~count:5
    QCheck.(int_range 0 1_000)
    (fun seed ->
      let e = env () in
      let w = Workload.Gen.hom schema ~n:4 ~seed in
      let store = Inum.Keyed.create e in
      let cache = Inum.add_statements ~jobs:4 store Inum.empty_cache w in
      List.for_all
        (fun (q, _, c) -> same_cache c (Inum.build e (Canon.normalize q)))
        cache.Inum.selects)

let () =
  Alcotest.run "inum"
    [
      ( "templates",
        [
          Alcotest.test_case "exist" `Quick test_templates_exist;
          Alcotest.test_case "order/nlj templates" `Quick test_join_query_has_order_templates;
          Alcotest.test_case "betas positive" `Quick test_template_betas_positive;
        ] );
      ( "gamma",
        [
          Alcotest.test_case "incompatible order" `Quick test_gamma_infinite_on_wrong_order;
          Alcotest.test_case "no-index finite" `Quick test_gamma_none_index_finite;
          Alcotest.test_case "unknown table raises" `Quick
            test_gamma_unknown_table_raises;
        ] );
      ( "lazy",
        [
          Alcotest.test_case "unlimited budget = eager" `Quick
            test_lazy_unlimited_matches_eager;
          Alcotest.test_case "budgeted build jobs-invariant" `Quick
            test_budgeted_build_jobs_invariant;
          QCheck_alcotest.to_alcotest prop_budgeted_regret_sound;
        ] );
      ( "lemma1",
        [
          Alcotest.test_case "upper bounds direct" `Quick test_inum_upper_bounds_direct;
          QCheck_alcotest.to_alcotest prop_inum_matches_direct;
          Alcotest.test_case "best instantiation" `Quick test_best_instantiation_consistent;
        ] );
      ( "workload",
        [
          Alcotest.test_case "cache" `Quick test_workload_cache;
          Alcotest.test_case "update maintenance" `Quick test_update_maintenance_in_workload_cost;
        ] );
      ( "keyed",
        [
          Alcotest.test_case "hit bit-identical" `Quick
            test_keyed_hit_bit_identical;
          Alcotest.test_case "capacity lru" `Quick test_keyed_capacity_lru;
          Alcotest.test_case "add_statements dedupe" `Quick
            test_add_statements_dedupe;
          Alcotest.test_case "partial build coherent" `Quick
            test_keyed_partial_build_coherent;
          QCheck_alcotest.to_alcotest prop_keyed_matches_fresh;
        ] );
    ]
