(* Benchmark entry point.

   Default mode runs the paper-reproduction experiment harness: one
   section per table/figure of the evaluation (Table 1, Figures 4-10),
   printing the same series the paper reports.

     dune exec bench/main.exe                    # every experiment
     dune exec bench/main.exe -- table1 fig5     # a subset
     dune exec bench/main.exe -- --micro         # micro + macro benchmarks
     dune exec bench/main.exe -- --micro --jobs 4
     dune exec bench/main.exe -- --json out.json # machine-readable baseline

   The micro suite measures the primitives with Bechamel (what-if
   optimization, INUM cache construction and cost evaluation, simplex
   solves, decomposition iterations) and then times the macro INUM
   workload-cache build on a 100-statement workload at the requested
   --jobs, printing the total what-if call count and the final
   recommendation so job counts can be checked for identical results.

   --json <file> runs the full pipeline once and writes stage wall-times
   and Runtime.Stats counters in a stable schema (schema_version 6) as a
   machine-readable perf baseline for future PRs.  The pipeline runs at
   the --probe-budget (default 16 per query; 0 = unlimited) and the
   "inum" section records the lazy-probing stats of that run next to an
   unlimited-budget leg whose certified objective is bit-identical to
   eager probing (regret 0).  It also times the LP
   relaxation of a materialized Theorem-1 BIP under the selected
   --backend (sparse revised simplex + presolve, or the dense reference
   kernel) so backend solve-phase speedups are recorded alongside the
   pipeline numbers, replays a drifting workload through the serve
   engine (the "serve" section: events/sec, latency quantiles, cache hit
   rate, warm-vs-scratch retune latency at equal certified objective),
   and solves the n=1000 homogeneous BIP with the scratch baseline and
   the core-guided MIP engine at jobs 1/4 (the "bip" section: solve
   walls, node / cut / warm-resolve counters, determinism and cut
   certification invariants).

   --trace <file> turns on Runtime.Trace for the run and writes the
   Chrome trace_event export to <file>; under --json the flat trace
   metrics (per-phase span totals and counters) are additionally
   embedded in the bench JSON under the "trace" key (null when tracing
   is off). *)

let bench_n = 100
let bench_seed = 7
let bench_budget_fraction = 0.5

(* Default per-query INUM probe budget (--probe-budget; 0 = unlimited).
   16 keeps the hom n=100 pipeline >= 3x under BENCH_4's 3145 probes
   (build + completion-loop forcing included) while the advisor's refine
   loop still certifies the recommendation's cost exactly. *)
let default_probe_budget = 16

(* Workload size for the materialized-BIP LP timing: large enough that
   the kernels separate, small enough that the dense reference finishes
   in CI (its per-pivot cost is O(rows^2); at n = 40 it needs upwards of
   ten CPU-minutes where the sparse kernel takes seconds). *)
let lp_bench_n = 20

(* Sorted index list of a configuration — a stable identity for
   cross-job-count comparisons. *)
let config_indexes config =
  let acc = ref [] in
  Storage.Config.iter (fun ix -> acc := Storage.Index.to_string ix :: !acc) config;
  List.sort compare !acc

(* Macro benchmark backing the acceptance criterion: INUM workload-cache
   construction on a 100-statement workload, then a full advise, with
   everything needed to compare job counts printed. *)
let macro_suite ~jobs ~probe_budget =
  let schema = Catalog.Tpch.schema () in
  let w = Workload.Gen.hom schema ~n:bench_n ~seed:bench_seed in
  let env = Optimizer.Whatif.make_env schema in
  let t0 = Runtime.Clock.now () in
  let cache = Inum.build_workload ~jobs ?probe_budget env w in
  let dt = Runtime.Clock.now () -. t0 in
  Fmt.pr
    "inum_build n=%d jobs=%d: %.3fs (total_init_calls=%d pending=%d \
     regret=%.3f truncated=%d)@."
    bench_n jobs dt
    (Inum.total_init_calls cache)
    (Inum.cache_pending cache) (Inum.cache_regret cache)
    (Inum.cache_truncated cache);
  let r =
    Cophy.Advisor.advise ~jobs ?probe_budget schema w
      ~budget_fraction:bench_budget_fraction
  in
  Fmt.pr "recommendation jobs=%d: objective=%.6f indexes=[%s]@." jobs
    r.Cophy.Advisor.report.Cophy.Solver.objective
    (String.concat "; " (config_indexes r.Cophy.Advisor.config));
  Fmt.pr "%a@." Runtime.Stats.pp r.Cophy.Advisor.timings.Cophy.Advisor.stats

let backend_of_kind = function
  | `Sparse -> Lp.Backend.default
  | `Dense -> Lp.Backend.dense_reference

let backend_name = function `Sparse -> "sparse" | `Dense -> "dense"

(* LP solve-phase timing on a materialized Theorem-1 BIP — the instance
   class where the kernel dominates the solve.  Returns the JSON
   fragment.  With [check] set, the model is analyzed with
   [Lp.Analyze.check] before the solve (static errors abort) and the
   relaxation optimum is certified afterwards; the certificate summary
   lands in the JSON. *)
let lp_phase ?(check = false) ~backend_kind () =
  let schema = Catalog.Tpch.schema () in
  let w = Workload.Gen.hom schema ~n:lp_bench_n ~seed:bench_seed in
  let env = Optimizer.Whatif.make_env schema in
  let cache = Inum.build_workload env w in
  let cands = Array.of_list (Cophy.Cgen.generate w) in
  let sp = Cophy.Sproblem.build env cache cands in
  let budget = bench_budget_fraction *. Catalog.Tpch.database_size schema in
  let p, _vars = Cophy.Sproblem.to_lp ~budget sp in
  if check then begin
    let issues = Lp.Analyze.check p in
    List.iter (fun i -> Fmt.epr "check: %a@." Lp.Analyze.pp_issue i) issues;
    if Lp.Analyze.has_errors issues then begin
      Fmt.epr "check: BIP scenario model has errors@.";
      exit 1
    end
  end;
  let stats = Lp.Backend.create_stats () in
  let backend =
    { (backend_of_kind backend_kind) with Lp.Backend.stats = Some stats }
  in
  let t0 = Runtime.Clock.now () in
  let r = Lp.Backend.solve backend p in
  let dt = Runtime.Clock.now () -. t0 in
  let cert_json =
    if not check then ""
    else
      match r.Lp.Simplex.status with
      | Lp.Simplex.Optimal ->
          (* Certify against rows and bounds; duals come along for the
             dual-residual check — hard when the backend ran without
             presolve (no removed-row slack to excuse), report-only
             otherwise.  [int_vars:[]]: this is the LP relaxation, so
             the binary marks are intentionally not enforced on the
             optimum. *)
          let cert =
            Lp.Analyze.certify ~presolve:backend.Lp.Backend.presolve
              ~duals:r.Lp.Simplex.duals
              ~obj:(r.Lp.Simplex.obj +. Lp.Problem.obj_offset p)
              ~int_vars:[] p r.Lp.Simplex.x
          in
          if not cert.Lp.Analyze.cert_ok then begin
            List.iter (Fmt.epr "certify: %s@.") cert.Lp.Analyze.cert_issues;
            Fmt.epr "certify: BIP scenario relaxation failed certification@.";
            exit 1
          end;
          Printf.sprintf {|,"certificate":%S|}
            (Lp.Analyze.certificate_summary cert)
      | _ ->
          Fmt.epr "certify: BIP scenario relaxation did not solve to optimal@.";
          exit 1
  in
  Printf.sprintf
    {|{"n":%d,"rows":%d,"vars":%d,"status":"%s","objective":%.6f,"solve_seconds":%.6f,"pivots":%d,"refactorizations":%d,"presolve":{"rows_removed":%d,"vars_removed":%d,"bounds_tightened":%d}%s}|}
    lp_bench_n (Lp.Problem.nrows p) (Lp.Problem.nvars p)
    (match r.Lp.Simplex.status with
    | Lp.Simplex.Optimal -> "optimal"
    | Lp.Simplex.Infeasible -> "infeasible"
    | Lp.Simplex.Unbounded -> "unbounded"
    | Lp.Simplex.Iter_limit -> "iter_limit")
    r.Lp.Simplex.obj dt stats.Lp.Backend.kernel.Lp.Simplex.pivots
    stats.Lp.Backend.kernel.Lp.Simplex.refactorizations
    stats.Lp.Backend.presolve.Lp.Presolve.rows_removed
    stats.Lp.Backend.presolve.Lp.Presolve.vars_removed
    stats.Lp.Backend.presolve.Lp.Presolve.bounds_tightened
    cert_json

(* Serving benchmark backing the daemon's acceptance criteria: replay a
   drifting workload (bench_n templates) through the serve engine, then
   compare warm retunes against cold from-scratch solves.

   Reported invariants:
   - [repeat_probes] must be 0: a repeat query (same canonical key) never
     costs an optimizer probe, so keyed-store misses = distinct keys.
   - [objectives_equal]: every warm retune lands on the same certified
     objective as a from-scratch solve of the identical instance, up to
     the solver's termination gap (both paths stop at [gap_tolerance],
     so their incumbents can differ within it; the observed worst case
     is recorded as [max_objective_rel_diff], typically ~1e-4).
     Certification itself runs inside the solver ([certify:true]), so a
     bad solution on either path aborts the bench.
   - [speedup]: median warm retune latency vs. median cold solve (fresh
     optimizer env, fresh store: the batch path the daemon replaces). *)
let serve_events = 300
let serve_drift_steps = 3

let serve_phase ~jobs () =
  let schema = Catalog.Tpch.schema () in
  let events =
    Workload.Replay.drift ~recommend_every:50 schema ~n:bench_n
      ~events:serve_events ~seed:bench_seed
  in
  let engine = Serve.Engine.create ~window:256 ~jobs schema in
  let distinct = Hashtbl.create 64 in
  let n_statements = ref 0 in
  let n_recommends = ref 0 in
  let t0 = Runtime.Clock.now () in
  List.iter
    (fun ev ->
      match ev with
      | Workload.Replay.Statement (s, d) ->
          incr n_statements;
          Hashtbl.replace distinct (Sqlast.Canon.statement_key s) ();
          Serve.Engine.observe engine s d
      | Workload.Replay.Recommend ->
          incr n_recommends;
          ignore (Serve.Engine.recommend engine))
    events;
  let replay_seconds = Runtime.Clock.now () -. t0 in
  let st = Serve.Engine.stats_response engine in
  let fget k =
    match Option.bind (Serve.Json.member k st) Serve.Json.to_float with
    | Some f -> f
    | None ->
        Fmt.epr "serve stats missing %S@." k;
        exit 1
  in
  let session = Serve.Engine.session engine in
  let store = Cophy.Interactive.store session in
  let repeat_probes = Inum.Keyed.misses store - Hashtbl.length distinct in
  (* warm retunes after small frequency deltas vs. cold solves of the
     identical workload (fresh env + store + candidates = batch path) *)
  let options =
    {
      Cophy.Solver.default_options with
      Cophy.Solver.method_ = Cophy.Solver.Decomposed;
      certify = true;
    }
  in
  let budget = 0.25 *. Catalog.Tpch.database_size schema in
  let warm_ms = ref [] in
  let scratch_ms = ref [] in
  let max_rel_diff = ref 0.0 in
  for step = 1 to serve_drift_steps do
    let w = Cophy.Interactive.workload session in
    (* bump one statement's frequency per step, round-robin *)
    let victim = List.nth w (step mod List.length w) in
    Cophy.Interactive.set_weight session
      (Sqlast.Ast.statement_id victim.Sqlast.Ast.stmt)
      (victim.Sqlast.Ast.weight *. 1.5);
    let t0 = Runtime.Clock.now () in
    let warm = Cophy.Interactive.retune ~options session in
    warm_ms := ((Runtime.Clock.now () -. t0) *. 1000.0) :: !warm_ms;
    let t0 = Runtime.Clock.now () in
    (* same instance (workload, weights, candidate pool), but cold: fresh
       optimizer env and keyed store, so every INUM template rebuilds and
       the decomposition starts without multipliers or an incumbent *)
    let cold_session =
      Cophy.Interactive.create ~jobs
        ~candidates:(Cophy.Interactive.candidates session)
        schema
        (Cophy.Interactive.workload session)
        ~budget
    in
    let cold = Cophy.Interactive.retune ~options cold_session in
    scratch_ms := ((Runtime.Clock.now () -. t0) *. 1000.0) :: !scratch_ms;
    let rel =
      Float.abs (warm.Cophy.Solver.objective -. cold.Cophy.Solver.objective)
      /. Float.max 1.0 cold.Cophy.Solver.objective
    in
    max_rel_diff := Float.max !max_rel_diff rel
  done;
  let objectives_equal = !max_rel_diff <= options.Cophy.Solver.gap_tolerance in
  let median xs =
    let arr = Array.of_list xs in
    Array.sort Float.compare arr;
    arr.(Array.length arr / 2)
  in
  let warm_median = median !warm_ms in
  let scratch_median = median !scratch_ms in
  Fmt.pr
    "serve jobs=%d: %d events (%d recommends) in %.3fs, hit_rate=%.3f, \
     repeat_probes=%d, warm=%.1fms scratch=%.1fms (x%.1f), \
     objectives_equal=%b (max rel diff %.2e)@."
    jobs !n_statements !n_recommends replay_seconds (fget "cache_hit_rate")
    repeat_probes warm_median scratch_median
    (scratch_median /. Float.max 1e-9 warm_median)
    objectives_equal !max_rel_diff;
  Printf.sprintf
    {|{"events":%d,"recommends":%d,"events_per_sec":%.1f,"p50_ms":%.3f,"p99_ms":%.3f,"cache_hit_rate":%.6f,"distinct_keys":%d,"repeat_probes":%d,"warm_median_ms":%.3f,"scratch_median_ms":%.3f,"speedup":%.2f,"objectives_equal":%b,"max_objective_rel_diff":%.6e}|}
    !n_statements !n_recommends
    (float_of_int !n_statements /. Float.max 1e-9 replay_seconds)
    (fget "p50_ms") (fget "p99_ms") (fget "cache_hit_rate")
    (Hashtbl.length distinct) repeat_probes warm_median scratch_median
    (scratch_median /. Float.max 1e-9 warm_median)
    objectives_equal !max_rel_diff

(* MIP-engine benchmark backing the PR-7 acceptance criteria: build the
   large homogeneous instance once, then solve it three ways — the PR-6
   scratch baseline (core-guided off, jobs 1) and the core-guided engine
   at jobs 1 and 4 — and report solve walls, the branch-and-bound / cut /
   warm-start counters, and the determinism invariant (jobs-1 and jobs-4
   certified objectives bit-identical).  Counter deltas come from
   Runtime.Trace, which is enabled for the duration of this phase if it
   was not already.

   Reported invariants:
   - [jobs_objectives_identical]: the parallel driver is deterministic —
     the certified objective at jobs 4 is bit-identical to jobs 1.
   - [objectives_gap_equal]: baseline and core-guided solves agree up to
     the solver's termination gap (both stop at [gap_tolerance]).
   - [cuts_uncertified] must be 0: every cut the engine added was
     satisfied by the final incumbent.
   - [speedup]: baseline solve wall over core-guided jobs-1 solve wall
     (the acceptance target is >= 10x). *)
let bip_bench_n = 1000

let bip_counter_keys =
  [
    "bb.nodes"; "bb.cuts_added"; "bb.warm_resolves"; "bb.cuts_uncertified";
    "cuts.separated"; "cuts.added"; "cuts.evicted"; "cg.hardened";
  ]

let bip_phase ?(check = false) () =
  let schema = Catalog.Tpch.schema () in
  let w = Workload.Gen.hom schema ~n:bip_bench_n ~seed:bench_seed in
  let env = Optimizer.Whatif.make_env schema in
  let cache = Inum.build_workload ~jobs:4 env w in
  let cands = Array.of_list (Cophy.Cgen.generate w) in
  let sp = Cophy.Sproblem.build env cache cands in
  let budget = bench_budget_fraction *. Catalog.Tpch.database_size schema in
  let was_enabled = Runtime.Trace.enabled () in
  if not was_enabled then Runtime.Trace.enable ();
  let counter name =
    Option.value ~default:0 (List.assoc_opt name (Runtime.Trace.counters ()))
  in
  let solve ~core ~jobs =
    let options =
      {
        Cophy.Solver.default_options with
        Cophy.Solver.method_ = Cophy.Solver.Decomposed;
        jobs;
        core_guided = core;
        certify = check;
      }
    in
    let before = List.map (fun k -> (k, counter k)) bip_counter_keys in
    let r = Cophy.Solver.solve ~options sp ~budget ~z_rows:[] in
    let deltas =
      List.map
        (fun k -> (k, counter k - List.assoc k before))
        bip_counter_keys
    in
    (r, deltas)
  in
  let scratch, _ = solve ~core:false ~jobs:1 in
  let core1, d1 = solve ~core:true ~jobs:1 in
  let core4, _ = solve ~core:true ~jobs:4 in
  if not was_enabled then Runtime.Trace.disable ();
  let d k = List.assoc k d1 in
  let nodes = d "bb.nodes" in
  let warm = d "bb.warm_resolves" in
  let cuts_uncertified = d "bb.cuts_uncertified" in
  let cuts_active = d "cuts.added" - d "cuts.evicted" in
  let warm_rate = float_of_int warm /. float_of_int (max 1 nodes) in
  let speedup =
    scratch.Cophy.Solver.solve_seconds
    /. Float.max 1e-9 core1.Cophy.Solver.solve_seconds
  in
  (* bit-exact on purpose: jobs=1 and jobs=4 must agree to the last ulp
     (the determinism contract), so no tolerance is wanted here *)
  let[@lint.allow float_eq] jobs_identical =
    core1.Cophy.Solver.objective = core4.Cophy.Solver.objective
  in
  let gap_equal =
    Float.abs (scratch.Cophy.Solver.objective -. core1.Cophy.Solver.objective)
    <= Cophy.Solver.default_options.Cophy.Solver.gap_tolerance
       *. Float.min scratch.Cophy.Solver.objective
            core1.Cophy.Solver.objective
  in
  Fmt.pr
    "bip n=%d: scratch=%.3fs core_j1=%.3fs core_j4=%.3fs (x%.1f), nodes=%d \
     cuts=%d/%d (uncertified=%d) warm=%d (rate %.2f) hardened=%d, \
     jobs_identical=%b gap_equal=%b@."
    bip_bench_n scratch.Cophy.Solver.solve_seconds
    core1.Cophy.Solver.solve_seconds core4.Cophy.Solver.solve_seconds speedup
    nodes
    (d "cuts.separated")
    cuts_active cuts_uncertified warm warm_rate (d "cg.hardened")
    jobs_identical gap_equal;
  if check && not jobs_identical then begin
    Fmt.epr "bip: certified objectives differ across jobs 1/4@.";
    exit 1
  end;
  if check && cuts_uncertified > 0 then begin
    Fmt.epr "bip: %d cuts violated by the final incumbent@." cuts_uncertified;
    exit 1
  end;
  Printf.sprintf
    {|{"n":%d,"vars":%d,"blocks":%d,"scratch":{"solve_seconds":%.6f,"objective":%.6f,"bound":%.6f,"gap":%.6f},"core":{"jobs1_solve_seconds":%.6f,"jobs4_solve_seconds":%.6f,"objective":%.6f,"bound":%.6f,"gap":%.6f},"speedup":%.2f,"nodes":%d,"cuts_separated":%d,"cuts_active":%d,"cuts_uncertified":%d,"warm_resolves":%d,"warm_resolve_rate":%.4f,"cg_hardened":%d,"jobs_objectives_identical":%b,"objectives_gap_equal":%b}|}
    bip_bench_n
    (Cophy.Sproblem.variable_count sp)
    (Cophy.Sproblem.num_blocks sp)
    scratch.Cophy.Solver.solve_seconds scratch.Cophy.Solver.objective
    scratch.Cophy.Solver.bound scratch.Cophy.Solver.gap
    core1.Cophy.Solver.solve_seconds core4.Cophy.Solver.solve_seconds
    core1.Cophy.Solver.objective core1.Cophy.Solver.bound
    core1.Cophy.Solver.gap speedup nodes
    (d "cuts.separated")
    cuts_active cuts_uncertified warm warm_rate (d "cg.hardened")
    jobs_identical gap_equal

(* --json: one pipeline run, stable machine-readable schema.  [check]
   turns on Solver certification for the pipeline solve and the
   analyzer + certifier on the materialized BIP scenario. *)
let json_mode ?(check = false) ~jobs ~backend_kind ~probe_budget file =
  (* Fail on an unwritable path before the (expensive) pipeline run. *)
  let oc =
    try open_out file
    with Sys_error msg ->
      Fmt.epr "cannot write %s: %s@." file msg;
      exit 1
  in
  let schema = Catalog.Tpch.schema () in
  let w = Workload.Gen.hom schema ~n:bench_n ~seed:bench_seed in
  let stats = Runtime.Stats.create () in
  let r =
    Cophy.Advisor.advise ~jobs ~stats
      ~backend:(backend_of_kind backend_kind) ~certify:check ?probe_budget
      schema w ~budget_fraction:bench_budget_fraction
  in
  let t = r.Cophy.Advisor.timings in
  (* Second leg: the same pipeline with an unlimited budget.  The lazy
     probe loop then certifies every skip, so its kept template sets —
     and the certified objective — are bit-identical to eager probing
     with zero residual regret; the leg anchors the budgeted headline
     numbers. *)
  let r_unl =
    Cophy.Advisor.advise ~jobs
      ~backend:(backend_of_kind backend_kind) ~certify:check schema w
      ~budget_fraction:bench_budget_fraction
  in
  let inum_json =
    Printf.sprintf
      {|{"probe_budget":%d,"total_init_calls":%d,"pending_probes":%d,"probe_regret":%.6f,"combos_truncated":%d,"unlimited":{"total_init_calls":%d,"objective":%.6f,"probe_regret":%.6f,"combos_truncated":%d}}|}
      (Option.value ~default:0 probe_budget)
      (Inum.total_init_calls r.Cophy.Advisor.cache)
      (Inum.cache_pending r.Cophy.Advisor.cache)
      r.Cophy.Advisor.report.Cophy.Solver.probe_regret
      (Inum.cache_truncated r.Cophy.Advisor.cache)
      (Inum.total_init_calls r_unl.Cophy.Advisor.cache)
      r_unl.Cophy.Advisor.report.Cophy.Solver.objective
      r_unl.Cophy.Advisor.report.Cophy.Solver.probe_regret
      (Inum.cache_truncated r_unl.Cophy.Advisor.cache)
  in
  let lp_json = lp_phase ~check ~backend_kind () in
  let serve_json = serve_phase ~jobs () in
  let bip_json = bip_phase ~check () in
  let trace_json =
    if Runtime.Trace.enabled () then Runtime.Trace.to_metrics_json ()
    else "null"
  in
  let json =
    Printf.sprintf
      {|{"schema_version":6,"workload":{"shape":"hom","n":%d,"seed":%d},"jobs":%d,"backend":"%s","budget_fraction":%g,"timings":{"inum_seconds":%.6f,"build_seconds":%.6f,"solve_seconds":%.6f},"stats":%s,"result":{"objective":%.6f,"bound":%.6f,"gap":%.6f,"probe_regret":%.6f,"total_init_calls":%d,"indexes":[%s]},"inum":%s,"lp":%s,"serve":%s,"bip":%s,"trace":%s}|}
      bench_n bench_seed jobs
      (backend_name backend_kind)
      bench_budget_fraction t.Cophy.Advisor.inum_seconds
      t.Cophy.Advisor.build_seconds t.Cophy.Advisor.solve_seconds
      (Runtime.Stats.to_json stats)
      r.Cophy.Advisor.report.Cophy.Solver.objective
      r.Cophy.Advisor.report.Cophy.Solver.bound
      r.Cophy.Advisor.report.Cophy.Solver.gap
      r.Cophy.Advisor.report.Cophy.Solver.probe_regret
      (Inum.total_init_calls r.Cophy.Advisor.cache)
      (String.concat ","
         (List.map
            (fun s -> Printf.sprintf "%S" s)
            (config_indexes r.Cophy.Advisor.config)))
      inum_json lp_json serve_json bip_json trace_json
  in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Fmt.pr "wrote %s@." file

let micro_suite () =
  let open Bechamel in
  let schema = Catalog.Tpch.schema () in
  let w = Workload.Gen.hom schema ~n:15 ~seed:7 in
  let env = Optimizer.Whatif.make_env schema in
  let q =
    match (List.hd w).Sqlast.Ast.stmt with
    | Sqlast.Ast.Select q -> q
    | Sqlast.Ast.Update u -> Sqlast.Ast.query_shell u
  in
  let cands = Cophy.Cgen.generate w in
  let config = Storage.Config.of_list cands in
  let inum_cache = Inum.build env q in
  let wl_cache = Inum.build_workload env w in
  let sp = Cophy.Sproblem.build env wl_cache (Array.of_list cands) in
  let budget = Catalog.Tpch.database_size schema in
  let lp =
    (* a small dense LP representative of the z subproblem *)
    let p = Lp.Problem.create () in
    let vars =
      List.map
        (fun ix ->
          Lp.Problem.add_var ~ub:1.0
            ~obj:(-.(Storage.Index.size_bytes schema ix) /. 1e9)
            p)
        cands
    in
    ignore
      (Lp.Problem.add_row p
         (List.map (fun v -> (v, 1.0)) vars)
         Lp.Problem.Le 10.0);
    p
  in
  let tests =
    [
      Test.make ~name:"whatif_optimize"
        (Staged.stage (fun () -> ignore (Optimizer.Whatif.cost env q config)));
      Test.make ~name:"inum_build"
        (Staged.stage (fun () -> ignore (Inum.build env q)));
      Test.make ~name:"inum_cost_eval"
        (Staged.stage (fun () -> ignore (Inum.cost inum_cache config)));
      Test.make ~name:"sproblem_eval"
        (Staged.stage
           (fun () ->
             ignore
               (Cophy.Sproblem.eval sp
                  (Array.make (Cophy.Sproblem.num_candidates sp) true))));
      Test.make ~name:"simplex_small"
        (Staged.stage (fun () -> ignore (Lp.Simplex.solve lp)));
      Test.make ~name:"decomposition_5iters"
        (Staged.stage
           (fun () ->
             let options =
               { Cophy.Decomposition.default_options with
                 Cophy.Decomposition.max_iters = 5 }
             in
             ignore (Cophy.Decomposition.solve ~options sp ~budget ~z_rows:[])));
    ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let stats = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      List.iter
        (fun (name, result) ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] -> Fmt.pr "%-28s %14.1f ns/run@." name est
          | _ -> Fmt.pr "%-28s (no estimate)@." name)
        (Runtime.Tbl.sorted_bindings stats))
    tests

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (* --jobs N and --json FILE take a value; strip them before the
     experiment-name filter. *)
  let jobs = ref 1 in
  let json = ref None in
  let check = ref false in
  let backend_kind = ref `Sparse in
  let trace = ref None in
  let probe_budget = ref default_probe_budget in
  let rest = ref [] in
  let rec parse = function
    | [] -> ()
    | "--trace" :: f :: tl ->
        trace := Some f;
        parse tl
    | [ "--trace" ] ->
        Fmt.epr "--trace expects a file path@.";
        exit 2
    | "--jobs" :: v :: tl -> (
        match int_of_string_opt v with
        | Some n ->
            jobs := n;
            parse tl
        | None ->
            Fmt.epr "--jobs expects an integer, got %S@." v;
            exit 2)
    | [ "--jobs" ] ->
        Fmt.epr "--jobs expects a value@.";
        exit 2
    | "--probe-budget" :: v :: tl -> (
        match int_of_string_opt v with
        | Some n when n >= 0 ->
            probe_budget := n;
            parse tl
        | _ ->
            Fmt.epr "--probe-budget expects a non-negative integer, got %S@." v;
            exit 2)
    | [ "--probe-budget" ] ->
        Fmt.epr "--probe-budget expects a value@.";
        exit 2
    | "--json" :: f :: tl ->
        json := Some f;
        parse tl
    | [ "--json" ] ->
        Fmt.epr "--json expects a file path@.";
        exit 2
    | "--check" :: tl ->
        check := true;
        parse tl
    | "--backend" :: v :: tl -> (
        match v with
        | "sparse" ->
            backend_kind := `Sparse;
            parse tl
        | "dense" ->
            backend_kind := `Dense;
            parse tl
        | _ ->
            Fmt.epr "--backend expects sparse or dense, got %S@." v;
            exit 2)
    | [ "--backend" ] ->
        Fmt.epr "--backend expects a value@.";
        exit 2
    | a :: tl ->
        rest := a :: !rest;
        parse tl
  in
  parse args;
  let args = List.rev !rest in
  let jobs = if !jobs <= 0 then Runtime.recommended_jobs () else !jobs in
  (* 0 = unlimited: probe everything not certified away. *)
  let probe_budget = if !probe_budget = 0 then None else Some !probe_budget in
  (match !trace with
  | None -> ()
  | Some tf ->
      Runtime.Trace.enable ();
      (* at_exit keeps the (partial) trace on early-exit paths too. *)
      at_exit (fun () ->
          let oc = open_out tf in
          output_string oc (Runtime.Trace.to_chrome_json ());
          output_char oc '\n';
          close_out oc;
          Fmt.pr "wrote trace %s@." tf));
  match !json with
  | Some file ->
      json_mode ~check:!check ~jobs ~backend_kind:!backend_kind ~probe_budget
        file
  | None ->
  if !check then begin
    (* Standalone --check: analyze + certify the committed BIP scenario
       and stop (combine with --json to also record the certificate). *)
    ignore (lp_phase ~check:true ~backend_kind:!backend_kind ());
    Fmt.pr "check: BIP scenario certified ok@."
  end
  else
  if List.mem "--micro" args then begin
    micro_suite ();
    macro_suite ~jobs ~probe_budget
  end
  else begin
    let selected =
      List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args
    in
    let to_run =
      if selected = [] then Experiments.all
      else
        List.filter (fun (name, _) -> List.mem name selected) Experiments.all
    in
    if to_run = [] then begin
      Fmt.epr "unknown experiment; available: %a@."
        (Fmt.list ~sep:Fmt.sp Fmt.string)
        (List.map fst Experiments.all);
      exit 1
    end;
    let t0 = Runtime.Clock.now () in
    List.iter (fun (_, f) -> f ()) to_run;
    Fmt.pr "@.Total experiment time: %.1fs@." (Runtime.Clock.now () -. t0)
  end
