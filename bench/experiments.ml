(* The experiment harness: one function per table/figure of the paper's
   evaluation (§5 and appendix C).  Each experiment prints the series the
   paper reports; EXPERIMENTS.md records paper-vs-measured.

   Scale note: the paper runs 250-1000-statement workloads against CPLEX
   and commercial advisors on a 2.4 GHz machine.  Our substrate is a
   self-built optimizer and solver, so absolute numbers differ; the
   workload/candidate scales below are chosen so the full suite finishes
   in minutes while preserving the relative shapes.  The scale map is
   {250 -> 50, 500 -> 100, 1000 -> 200} statements, and ILP runs on a
   further-reduced grid because its atomic-configuration BIP (the very
   bottleneck the paper demonstrates) explodes. *)

let scaled = [ (250, 50); (500, 100); (1000, 200) ]

type scenario = {
  label : string;
  z : float;
  shape : [ `Hom | `Het ];
  n : int;
}

(* memoizes TPC-H schema construction across figures; the bench driver
   runs experiments sequentially, so the table is never shared between
   domains *)
let[@lint.allow global_state] schema_cache :
    (float, Catalog.Schema.t) Hashtbl.t =
  Hashtbl.create 4

let schema_for z =
  match Hashtbl.find_opt schema_cache z with
  | Some s -> s
  | None ->
      let s = Catalog.Tpch.schema ~sf:1.0 ~z () in
      Hashtbl.add schema_cache z s;
      s

let workload_for schema shape n ~seed =
  match shape with
  | `Hom -> Workload.Gen.hom schema ~n ~seed
  | `Het -> Workload.Gen.het schema ~n ~seed

let baseline = Advisors.Eval.baseline_config ()

let fresh_env schema = Optimizer.Whatif.make_env schema

(* Ground-truth perf via direct what-if (§5.1). *)
let perf_of schema w config =
  Advisors.Eval.perf (fresh_env schema) w config ~baseline

(* --- Advisor runners (uniform interface) --- *)

type run = {
  config : Storage.Config.t;
  seconds : float;
  inum_s : float;     (* INUM cache time, when the technique uses INUM *)
  build_s : float;    (* BIP/enumeration building time *)
  solve_s : float;
  note : string;
}

let run_cophy ?candidates ?(gap = 0.05) schema w ~m =
  let solver_options =
    { Cophy.Solver.default_options with Cophy.Solver.gap_tolerance = gap }
  in
  let r =
    Cophy.Advisor.advise ?candidates ~baseline ~solver_options schema w
      ~budget_fraction:m
  in
  {
    config = r.Cophy.Advisor.config;
    seconds = Cophy.Advisor.total_seconds r;
    inum_s = r.Cophy.Advisor.timings.Cophy.Advisor.inum_seconds;
    build_s = r.Cophy.Advisor.timings.Cophy.Advisor.build_seconds;
    solve_s = r.Cophy.Advisor.timings.Cophy.Advisor.solve_seconds;
    note = "";
  }

let run_tool_a ?(time_limit = 120.0) schema w ~m =
  let env = fresh_env schema in
  let options = { Advisors.Tool_a.default_options with Advisors.Tool_a.time_limit } in
  let budget = m *. Catalog.Tpch.database_size schema in
  let r = Advisors.Tool_a.solve ~options env w ~budget in
  {
    config = r.Advisors.Eval.config;
    seconds = r.Advisors.Eval.seconds;
    inum_s = 0.0;
    build_s = 0.0;
    solve_s = r.Advisors.Eval.seconds;
    note = (if r.Advisors.Eval.timed_out then "timed out" else "");
  }

let run_tool_b ?(time_limit = 300.0) schema w ~m =
  let env = fresh_env schema in
  let options =
    { Advisors.Tool_b.default_options with Advisors.Tool_b.time_limit }
  in
  let budget = m *. Catalog.Tpch.database_size schema in
  let r = Advisors.Tool_b.solve ~options env w ~budget in
  {
    config = r.Advisors.Eval.config;
    seconds = r.Advisors.Eval.seconds;
    inum_s = 0.0;
    build_s = 0.0;
    solve_s = r.Advisors.Eval.seconds;
    note = "";
  }

let run_ilp ?(options = Advisors.Ilp.default_options) schema w ~m ~candidates =
  let env = fresh_env schema in
  let budget = m *. Catalog.Tpch.database_size schema in
  let r = Advisors.Ilp.solve ~options env w candidates ~budget in
  {
    config = r.Advisors.Ilp.config;
    seconds =
      r.Advisors.Ilp.timings.Advisors.Ilp.inum_seconds
      +. r.Advisors.Ilp.timings.Advisors.Ilp.build_seconds
      +. r.Advisors.Ilp.timings.Advisors.Ilp.solve_seconds;
    inum_s = r.Advisors.Ilp.timings.Advisors.Ilp.inum_seconds;
    build_s = r.Advisors.Ilp.timings.Advisors.Ilp.build_seconds;
    solve_s = r.Advisors.Ilp.timings.Advisors.Ilp.solve_seconds;
    note = Printf.sprintf "%d atomic configs" r.Advisors.Ilp.configurations;
  }

let section title =
  Fmt.pr "@.==========================================================@.";
  Fmt.pr "%s@." title;
  Fmt.pr "==========================================================@."

(* --- Table 1 (+ appendix z=1): quality ratio vs commercial tools --- *)

let table1 () =
  section
    "Table 1: perf(CoPhy)/perf(tool) for data skew x workload shape\n\
     (paper: ratios 1.02-2.29, Tool-A times out on z=2 het)";
  Fmt.pr "%-6s %-10s %-12s %-12s %-10s@." "z" "workload" "vs Tool-A"
    "vs Tool-B" "notes";
  let scenarios =
    [ (0.0, `Hom); (0.0, `Het); (1.0, `Hom); (2.0, `Hom); (2.0, `Het) ]
  in
  List.iter
    (fun (z, shape) ->
      let schema = schema_for z in
      let n = 200 in
      let w = workload_for schema shape n ~seed:7 in
      let cophy = run_cophy schema w ~m:1.0 in
      let ta = run_tool_a ~time_limit:240.0 schema w ~m:1.0 in
      let tb = run_tool_b ~time_limit:120.0 schema w ~m:1.0 in
      let p_cophy = perf_of schema w cophy.config in
      let p_a = perf_of schema w ta.config in
      let p_b = perf_of schema w tb.config in
      let ratio p = if p <= 0.0 then infinity else p_cophy /. p in
      Fmt.pr "%-6.1f %-10s %-12.2f %-12.2f %s@." z
        (match shape with `Hom -> "hom" | `Het -> "het")
        (ratio p_a) (ratio p_b)
        (if ta.note <> "" then "Tool-A " ^ ta.note else ""))
    scenarios

(* --- Figure 4: execution time vs workload size (hom, z=0) --- *)

let fig4 () =
  section
    "Figure 4: advisor execution time vs workload size (hom, z=0)\n\
     (paper: CoPhy fastest at 500/1000; >=10x faster than Tool-A)";
  Fmt.pr "%-8s %-10s %-10s %-10s@." "|W|" "CoPhy(s)" "Tool-A(s)" "Tool-B(s)";
  let schema = schema_for 0.0 in
  List.iter
    (fun (paper_n, n) ->
      let w = workload_for schema `Hom n ~seed:7 in
      let c = run_cophy schema w ~m:1.0 in
      let a = run_tool_a ~time_limit:600.0 schema w ~m:1.0 in
      let b = run_tool_b schema w ~m:1.0 in
      Fmt.pr "%-8s %-10.2f %-10.2f %-10.2f@."
        (Printf.sprintf "%d(%d)" paper_n n)
        c.seconds a.seconds b.seconds)
    scaled

(* --- Figure 5: CoPhy vs ILP, time vs candidate-set size --- *)

let fig5 () =
  section
    "Figure 5: CoPhy vs ILP execution time vs |S| (with breakdown)\n\
     (paper: CoPhy an order of magnitude faster; ILP dominated by build)";
  let schema = schema_for 0.0 in
  let n = 30 in
  let w = workload_for schema `Hom n ~seed:7 in
  let all = Cophy.Cgen.generate w in
  let s_all = Array.of_list all in
  let sized name cands =
    (name, cands)
  in
  let sets =
    [ sized "S_50" (Array.sub s_all 0 (min 50 (Array.length s_all)));
      sized "S_100" (Array.sub s_all 0 (min 100 (Array.length s_all)));
      sized "S_ALL" s_all;
      sized "S_L"
        (Array.of_list
           (all @ Cophy.Cgen.random_candidates schema ~n:1000 ~seed:5)) ]
  in
  Fmt.pr "%-8s %-6s | %-28s | %-28s@." "S" "|S|" "CoPhy inum/build/solve (s)"
    "ILP inum/build/solve (s)";
  List.iter
    (fun (name, cands) ->
      let c = run_cophy ~candidates:(Array.to_list cands) schema w ~m:1.0 in
      let ilp_opts =
        { Advisors.Ilp.default_options with
          Advisors.Ilp.per_table_cap = 3; per_query_cap = 12;
          time_limit = 180.0 }
      in
      let i = run_ilp ~options:ilp_opts schema w ~m:1.0 ~candidates:cands in
      Fmt.pr "%-8s %-6d | %6.2f %6.2f %6.2f (%6.2f) | %6.2f %6.2f %6.2f (%6.2f) %s@."
        name (Array.length cands) c.inum_s c.build_s c.solve_s c.seconds
        i.inum_s i.build_s i.solve_s i.seconds i.note)
    sets

(* --- Figure 6a: solution-quality feedback over time --- *)

let fig6a () =
  section
    "Figure 6a: optimality-gap feedback over time, three workloads\n\
     (paper: bound drops fast early, then a long tail to optimal)";
  let schema = schema_for 0.0 in
  List.iter
    (fun (paper_n, n) ->
      let w = workload_for schema `Hom n ~seed:7 in
      let env = fresh_env schema in
      let cache = Inum.build_workload env w in
      let cands = Array.of_list (Cophy.Cgen.generate w) in
      let sp = Cophy.Sproblem.build env cache cands in
      let budget = Catalog.Tpch.database_size schema in
      let events = ref [] in
      let options =
        { Cophy.Decomposition.default_options with
          Cophy.Decomposition.gap_tolerance = 0.005;
          max_iters = 150;
          log_events = true }
      in
      let r = Cophy.Decomposition.solve ~options sp ~budget ~z_rows:[] in
      events := List.rev r.Cophy.Decomposition.events;
      Fmt.pr "@.W_%d (%d stmts): %d feedback events@." paper_n n
        (List.length !events);
      Fmt.pr "  %-10s %-14s %-14s %-8s@." "t(s)" "incumbent" "bound" "gap%";
      let total = List.length !events in
      List.iteri
        (fun i (e : Cophy.Decomposition.event) ->
          if i < 3 || i mod (max 1 (total / 8)) = 0 || i = total - 1 then
            Fmt.pr "  %-10.3f %-14.0f %-14.0f %-8.2f@."
              e.Cophy.Decomposition.elapsed e.Cophy.Decomposition.incumbent
              e.Cophy.Decomposition.bound
              (100.0
              *. (e.Cophy.Decomposition.incumbent -. e.Cophy.Decomposition.bound)
              /. (abs_float e.Cophy.Decomposition.incumbent +. 1e-9)))
        !events)
    scaled

(* --- Figure 6b: interactive re-tuning time vs added candidates --- *)

let fig6b () =
  section
    "Figure 6b: re-tune time after adding candidates (warm vs initial)\n\
     (paper: retuning ~an order of magnitude faster than solving fresh)";
  let schema = schema_for 0.0 in
  let w = workload_for schema `Hom 100 ~seed:7 in
  let budget = Catalog.Tpch.database_size schema in
  let session = Cophy.Interactive.create schema w ~budget in
  let t0 = Runtime.Clock.now () in
  ignore (Cophy.Interactive.retune session);
  let initial = Runtime.Clock.now () -. t0 in
  Fmt.pr "initial solve: %.2fs@." initial;
  Fmt.pr "%-12s %-12s %-10s@." "+candidates" "retune(s)" "speedup";
  List.iter
    (fun k ->
      let extra = Cophy.Cgen.random_candidates schema ~n:k ~seed:(1000 + k) in
      Cophy.Interactive.add_candidates session extra;
      let t1 = Runtime.Clock.now () in
      ignore (Cophy.Interactive.retune session);
      let dt = Runtime.Clock.now () -. t1 in
      Fmt.pr "%-12d %-12.2f %-10.1fx@." k dt (initial /. dt))
    [ 10; 25; 50; 100 ]

(* --- Figure 6c: Pareto curve generation time --- *)

let fig6c () =
  section
    "Figure 6c: time per Pareto point, warm-start reuse vs naive\n\
     (paper: ~4x speedup from reusing computation across points)";
  let schema = schema_for 0.0 in
  let w = workload_for schema `Hom 60 ~seed:7 in
  let env = fresh_env schema in
  let cache = Inum.build_workload env w in
  let cands = Array.of_list (Cophy.Cgen.generate w) in
  let sp = Cophy.Sproblem.build env cache cands in
  let metric = Cophy.Pareto.storage_metric sp in
  let t0 = Runtime.Clock.now () in
  let warm_points, warm_solves =
    Cophy.Pareto.sweep ~epsilon:0.02 ~max_points:5 sp ~metric_coeff:metric
  in
  let warm = Runtime.Clock.now () -. t0 in
  let t1 = Runtime.Clock.now () in
  let _, naive_solves =
    Cophy.Pareto.sweep ~epsilon:0.02 ~max_points:5 ~reuse:false sp
      ~metric_coeff:metric
  in
  let naive = Runtime.Clock.now () -. t1 in
  Fmt.pr "points=%d  warm: %.2fs (%d solves)  naive: %.2fs (%d solves)  speedup %.1fx@."
    (List.length warm_points) warm warm_solves naive naive_solves
    (naive /. warm);
  Fmt.pr "%-10s %-14s %-14s@." "lambda" "storage(MB)" "cost";
  List.iter
    (fun (p : Cophy.Pareto.point) ->
      Fmt.pr "%-10.3f %-14.1f %-14.0f@." p.Cophy.Pareto.lambda
        (p.Cophy.Pareto.metric /. 1e6) p.Cophy.Pareto.cost)
    warm_points

(* --- Figure 7: quality vs workload size (hom) --- *)

let fig7 () =
  section
    "Figure 7: solution quality vs workload size (hom, z=0)\n\
     (paper: CoPhy highest and flat; Tool-A degrades with size)";
  Fmt.pr "%-8s %-10s %-10s %-10s@." "|W|" "CoPhy" "Tool-A" "Tool-B";
  let schema = schema_for 0.0 in
  List.iter
    (fun (paper_n, n) ->
      let w = workload_for schema `Hom n ~seed:7 in
      let c = run_cophy schema w ~m:1.0 in
      let a = run_tool_a ~time_limit:(10.0 +. (float_of_int n *. 0.6)) schema w ~m:1.0 in
      let b = run_tool_b schema w ~m:1.0 in
      Fmt.pr "%-8s %-10.3f %-10.3f %-10.3f@."
        (Printf.sprintf "%d(%d)" paper_n n)
        (perf_of schema w c.config) (perf_of schema w a.config)
        (perf_of schema w b.config))
    scaled

(* --- Figure 8: quality vs space budget --- *)

let fig8 () =
  section
    "Figure 8: perf ratio vs space budget M in {0.5, 1, 2} (hom, z=0)\n\
     (paper: CoPhy better at every budget)";
  Fmt.pr "%-8s %-12s %-12s@." "M" "vs Tool-A" "vs Tool-B";
  let schema = schema_for 0.0 in
  let w = workload_for schema `Hom 100 ~seed:7 in
  List.iter
    (fun m ->
      let c = run_cophy schema w ~m in
      let a = run_tool_a ~time_limit:90.0 schema w ~m in
      let b = run_tool_b schema w ~m in
      let pc = perf_of schema w c.config in
      let pa = perf_of schema w a.config in
      let pb = perf_of schema w b.config in
      Fmt.pr "%-8.1f %-12.2f %-12.2f@." m
        (if pa <= 0.0 then infinity else pc /. pa)
        (if pb <= 0.0 then infinity else pc /. pb))
    [ 0.5; 1.0; 2.0 ]

(* --- Figure 9: quality vs workload size (het), CoPhy vs Tool-B --- *)

let fig9 () =
  section
    "Figure 9: quality on heterogeneous workloads, CoPhy vs Tool-B\n\
     (paper: compression hurts Tool-B on het; CoPhy stays high)";
  Fmt.pr "%-8s %-10s %-10s@." "|W|" "CoPhy" "Tool-B";
  let schema = schema_for 0.0 in
  List.iter
    (fun (paper_n, n) ->
      let w = workload_for schema `Het n ~seed:7 in
      let c = run_cophy schema w ~m:1.0 in
      let b = run_tool_b ~time_limit:120.0 schema w ~m:1.0 in
      Fmt.pr "%-8s %-10.3f %-10.3f@."
        (Printf.sprintf "%d(%d)" paper_n n)
        (perf_of schema w c.config) (perf_of schema w b.config))
    scaled

(* --- Figure 10: CoPhy vs ILP, time vs workload size --- *)

let fig10 () =
  section
    "Figure 10: CoPhy vs ILP execution time vs |W| (with breakdown)\n\
     (paper: >=5x gap at every size; ILP dominated by pruning/building)";
  let schema = schema_for 0.0 in
  Fmt.pr "%-8s | %-30s | %-30s@." "|W|" "CoPhy inum/build/solve (s)"
    "ILP inum/build/solve (s)";
  List.iter
    (fun n ->
      let w = workload_for schema `Hom n ~seed:7 in
      let cands = Array.of_list (Cophy.Cgen.generate w) in
      let c = run_cophy ~candidates:(Array.to_list cands) schema w ~m:1.0 in
      let ilp_opts =
        { Advisors.Ilp.default_options with
          Advisors.Ilp.per_table_cap = 3; per_query_cap = 12;
          time_limit = 180.0 }
      in
      let i = run_ilp ~options:ilp_opts schema w ~m:1.0 ~candidates:cands in
      Fmt.pr "%-8d | %6.2f %6.2f %6.2f (%6.2f) | %6.2f %6.2f %6.2f (%6.2f)@."
        n c.inum_s c.build_s c.solve_s c.seconds i.inum_s i.build_s i.solve_s
        i.seconds)
    [ 15; 30; 60 ]

(* --- Ablations: the design choices DESIGN.md calls out --- *)

let ablations () =
  section
    "Ablations: linking-row aggregation, slot dominance pruning,\n\
     local search in the decomposition, warm-started Pareto sweeps";
  let schema = schema_for 0.0 in
  let w = workload_for schema `Hom 30 ~seed:7 in
  let env = fresh_env schema in
  let cache = Inum.build_workload env w in
  let cands = Array.of_list (Cophy.Cgen.generate w) in
  let budget = Catalog.Tpch.database_size schema in

  (* 1. aggregated vs per-variable linking rows in the exact BIP.
     A 15-statement instance keeps the naive-link LP (the deliberately
     slow configuration) to tens of seconds. *)
  let w15 = workload_for schema `Hom 15 ~seed:7 in
  let cache15 = Inum.build_workload env w15 in
  let sp15 =
    Cophy.Sproblem.build env cache15 (Array.of_list (Cophy.Cgen.generate w15))
  in
  let sp = Cophy.Sproblem.build env cache cands in
  let time_lp naive =
    let p, _ = Cophy.Sproblem.to_lp ~budget ~naive_links:naive sp15 in
    let t0 = Runtime.Clock.now () in
    let r = Lp.Simplex.solve p in
    ( Lp.Problem.nrows p,
      Runtime.Clock.now () -. t0,
      r.Lp.Simplex.obj,
      r.Lp.Simplex.iterations )
  in
  let rows_a, t_a, obj_a, it_a = time_lp false in
  let rows_n, t_n, obj_n, it_n = time_lp true in
  Fmt.pr "@.[linking rows] aggregated: %d rows, LP %.2fs (%d iters, bound %.0f)@."
    rows_a t_a it_a obj_a;
  Fmt.pr "[linking rows] per-var:    %d rows, LP %.2fs (%d iters, bound %.0f)@."
    rows_n t_n it_n obj_n;
  Fmt.pr "  -> aggregation gives %.1fx fewer rows, %.1fx faster, bound +%.1f%%@."
    (float_of_int rows_n /. float_of_int rows_a)
    (t_n /. max 1e-9 t_a)
    (100.0 *. (obj_a -. obj_n) /. abs_float obj_n);

  (* 2. slot dominance pruning on/off *)
  let sp_nopruning = Cophy.Sproblem.build ~prune:false env cache cands in
  Fmt.pr "@.[slot pruning] BIP variables with pruning: %d, without: %d (%.1fx)@."
    (Cophy.Sproblem.variable_count sp)
    (Cophy.Sproblem.variable_count sp_nopruning)
    (float_of_int (Cophy.Sproblem.variable_count sp_nopruning)
    /. float_of_int (Cophy.Sproblem.variable_count sp));

  (* 3. decomposition local search on/off *)
  let run_decomp ls_period =
    let options =
      { Cophy.Decomposition.default_options with
        Cophy.Decomposition.local_search_period = ls_period;
        max_iters = 120 }
    in
    let t0 = Runtime.Clock.now () in
    let r = Cophy.Decomposition.solve ~options sp ~budget ~z_rows:[] in
    (r.Cophy.Decomposition.obj, Runtime.Clock.now () -. t0)
  in
  let obj_ls, t_ls = run_decomp 10 in
  let obj_nols, t_nols = run_decomp max_int in
  Fmt.pr "@.[local search] with: obj %.0f in %.2fs; without: obj %.0f in %.2fs@."
    obj_ls t_ls obj_nols t_nols;

  (* 4. warm vs cold Pareto sweep (also in fig6c, repeated here compactly) *)
  let metric = Cophy.Pareto.storage_metric sp in
  let t0 = Runtime.Clock.now () in
  let _, s_warm = Cophy.Pareto.sweep ~epsilon:0.02 ~max_points:5 sp ~metric_coeff:metric in
  let warm = Runtime.Clock.now () -. t0 in
  let t1 = Runtime.Clock.now () in
  let _, s_cold =
    Cophy.Pareto.sweep ~epsilon:0.02 ~max_points:5 ~reuse:false sp
      ~metric_coeff:metric
  in
  let cold = Runtime.Clock.now () -. t1 in
  Fmt.pr "@.[pareto reuse] warm %.2fs (%d solves) vs cold %.2fs (%d solves)@."
    warm s_warm cold s_cold

let all =
  [ ("table1", table1); ("fig4", fig4); ("fig5", fig5); ("fig6a", fig6a);
    ("fig6b", fig6b); ("fig6c", fig6c); ("fig7", fig7); ("fig8", fig8);
    ("fig9", fig9); ("fig10", fig10); ("ablations", ablations) ]
