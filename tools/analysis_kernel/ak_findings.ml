(* The machine-readable finding representation shared by cophy-lint,
   cophy-dsa and cophy-race, and its SARIF-ish JSON serialization.

   Every analyzer reduces its diagnostics to this flat record: a rule
   id, a "file:line[:col]" location, a human message, and (for the
   interprocedural analyzers) the call path from the spawn site or
   entry point to the flagged program point.  [sarif_log] renders a
   list of findings as a single-run SARIF 2.1.0-shaped log; the
   [sarif_merge] executable in this directory splices several such
   logs into one multi-run report, which CI uploads as an artifact. *)

type finding = {
  rule : string;  (* rule id, e.g. "domain_safety", "shared_mutable" *)
  where : string;  (* "file:line[:col]", or a bare label *)
  message : string;
  path : string list;  (* spawn-site -> ... -> write chain; may be [] *)
}

let make ?(path = []) rule where message = { rule; where; message; path }

let pp oc f = Printf.fprintf oc "%s: [%s] %s\n" f.where f.rule f.message

(* "file.ml:12:3" -> ("file.ml", Some 12, Some 3); bare labels parse as
   (label, None, None).  Windows-style drive letters never appear in
   dune locations, so splitting on ':' is safe. *)
let split_where where =
  match String.split_on_char ':' where with
  | [ file; line ] -> (file, int_of_string_opt line, None)
  | [ file; line; col ] -> (file, int_of_string_opt line, int_of_string_opt col)
  | _ -> (where, None, None)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let result_json f =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf {|{"ruleId":"%s","level":"error","message":{"text":"%s"}|}
       (json_escape f.rule) (json_escape f.message));
  let file, line, col = split_where f.where in
  Buffer.add_string b
    (Printf.sprintf
       {|,"locations":[{"physicalLocation":{"artifactLocation":{"uri":"%s"},"region":{"startLine":%d%s}}}]|}
       (json_escape file)
       (match line with Some l -> l | None -> 1)
       (match col with
       | Some c -> Printf.sprintf {|,"startColumn":%d|} (c + 1)
       | None -> ""));
  if f.path <> [] then begin
    Buffer.add_string b {|,"properties":{"path":[|};
    List.iteri
      (fun i step ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf {|"%s"|} (json_escape step)))
      f.path;
    Buffer.add_string b "]}"
  end;
  Buffer.add_char b '}';
  Buffer.contents b

(* One SARIF run for [tool]: rule metadata is the set of rule ids the
   tool can emit (pass the full catalog so a clean run still documents
   its rules) unioned with whatever appears in the findings. *)
let sarif_run ~tool ?(rules = []) findings =
  let rule_ids =
    List.sort_uniq compare (rules @ List.map (fun f -> f.rule) findings)
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf {|{"tool":{"driver":{"name":"%s","rules":[|}
       (json_escape tool));
  List.iteri
    (fun i id ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf {|{"id":"%s"}|} (json_escape id)))
    rule_ids;
  Buffer.add_string b {|]}},"results":[|};
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (result_json f))
    findings;
  Buffer.add_string b "]}";
  Buffer.contents b

let sarif_log ~tool ?rules findings =
  Printf.sprintf {|{"version":"2.1.0","runs":[%s]}|}
    (sarif_run ~tool ?rules findings)

let write_sarif path ~tool ?rules findings =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (sarif_log ~tool ?rules findings);
      output_char oc '\n')
