(* Typed-tree name resolution shared by the .cmt analyzers: a
   per-compilation-unit context mapping local [Ident.t]s to canonical
   global names ("Lp.Simplex.solve"), plus the pass-1 structure walk
   that registers every module-level value and submodule alias so
   forward references resolve during the analysis walk proper. *)

open Typedtree

type ctx = {
  (* Ident.unique_name -> node name, for module-level values (and any
     named local functions the analyzer promotes to nodes) *)
  values : (string, string) Hashtbl.t;
  (* Ident.unique_name -> full module prefix, for local module aliases *)
  modules : (string, string) Hashtbl.t;
  unit_prefix : string;  (* display name of the current unit *)
}

let create ~unit_prefix =
  { values = Hashtbl.create 64; modules = Hashtbl.create 16; unit_prefix }

let loc_string (loc : Location.t) =
  Printf.sprintf "%s:%d" loc.Location.loc_start.Lexing.pos_fname
    loc.Location.loc_start.Lexing.pos_lnum

let rec is_arrow (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Types.Tarrow _ -> true
  | Types.Tpoly (ty', _) -> is_arrow ty'
  | _ -> false

let rec module_prefix ctx (p : Path.t) =
  match p with
  | Path.Pident id -> (
      match Hashtbl.find_opt ctx.modules (Ident.unique_name id) with
      | Some pfx -> pfx
      | None -> Ak_names.normalize (Ident.name id))
  | Path.Pdot (p', s) -> module_prefix ctx p' ^ "." ^ s
  | _ -> Ak_names.normalize (Path.name p)

(* Resolve a value path to a canonical global name, or None when the
   identifier is local (function parameter, let-bound variable) and was
   not registered as a node. *)
let resolve_value ctx (p : Path.t) =
  match p with
  | Path.Pident id ->
      if Ident.is_predef id then Some (Ident.name id)
      else Hashtbl.find_opt ctx.values (Ident.unique_name id)
  | Path.Pdot (p', s) ->
      Some (Ak_names.normalize (module_prefix ctx p' ^ "." ^ s))
  | _ -> Some (Ak_names.normalize (Path.name p))

(* Exception-constructor path -> canonical name.  Local declarations
   (Pident) are qualified with the enclosing unit so "Singular" raised
   inside Lp__Lu and "Lp.Lu.Singular" raised elsewhere coincide. *)
let resolve_exn ctx (p : Path.t) =
  match p with
  | Path.Pident id ->
      if Ident.is_predef id then Ident.name id
      else Ak_names.normalize (ctx.unit_prefix ^ "." ^ Ident.name id)
  | _ -> Ak_names.normalize (Path.name p)

let rec pattern_idents (p : pattern) =
  match p.pat_desc with
  | Tpat_var (id, name) -> [ (id, name.Location.txt) ]
  | Tpat_alias (p', id, name) -> (id, name.Location.txt) :: pattern_idents p'
  | Tpat_tuple ps -> List.concat_map pattern_idents ps
  | Tpat_record (fields, _) ->
      List.concat_map (fun (_, _, p') -> pattern_idents p') fields
  | Tpat_construct (_, _, ps, _) -> List.concat_map pattern_idents ps
  | Tpat_array ps -> List.concat_map pattern_idents ps
  | Tpat_or (a, _, _) -> pattern_idents a
  | _ -> []

let register_module ctx prefix (mb : module_binding) =
  match (mb.mb_id, mb.mb_name.Location.txt) with
  | Some id, Some name ->
      let full = prefix ^ "." ^ name in
      let target =
        match mb.mb_expr.mod_desc with
        | Tmod_ident (p, _) -> module_prefix ctx p
        | Tmod_constraint ({ mod_desc = Tmod_ident (p, _); _ }, _, _, _) ->
            module_prefix ctx p
        | _ -> full
      in
      Hashtbl.replace ctx.modules (Ident.unique_name id) target
  | _ -> ()

(* Pass 1 over one structure: register every module-level value and
   submodule name of its items, so forward references (let rec across
   items, submodule mentions) resolve in the analyzer's pass 2.  The
   caller recurses into submodule structures itself (calling this again
   with the extended prefix). *)
let register_items ctx prefix (str : structure) =
  List.iter
    (fun (item : structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter
            (fun (vb : value_binding) ->
              List.iter
                (fun (id, name) ->
                  Hashtbl.replace ctx.values (Ident.unique_name id)
                    (prefix ^ "." ^ name))
                (pattern_idents vb.vb_pat))
            vbs
      | Tstr_module mb -> register_module ctx prefix mb
      | Tstr_recmodule mbs -> List.iter (register_module ctx prefix) mbs
      | _ -> ())
    str.str_items

(* Strip module-type constraints off a module expression. *)
let rec strip_module_constraints (me : module_expr) =
  match me.mod_desc with
  | Tmod_constraint (me', _, _, _) -> strip_module_constraints me'
  | _ -> me
