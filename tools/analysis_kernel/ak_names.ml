(* Name normalization shared by every analyzer in tools/ (cophy-lint,
   cophy-dsa, cophy-race).

   "Lp__Simplex" (the mangled unit name of module Simplex in wrapped
   library lp) and "Lp.Simplex" (the alias path other libraries use)
   must denote the same node everywhere: rewrite "__" to ".", and strip
   the "Stdlib." prefix so "Stdlib.List.hd" and "List.hd" coincide. *)

module SSet = Set.Make (String)
module SMap = Map.Make (String)

(* split on literal "__" *)
let split_mangled s =
  let out = ref [] and buf = Buffer.create (String.length s) in
  let i = ref 0 in
  let len = String.length s in
  while !i < len do
    if !i + 1 < len && s.[!i] = '_' && s.[!i + 1] = '_' then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf;
      i := !i + 2
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  out := Buffer.contents buf :: !out;
  List.rev !out

let normalize name =
  let name = String.concat "." (split_mangled name) in
  if String.length name > 7 && String.sub name 0 7 = "Stdlib." then
    String.sub name 7 (String.length name - 7)
  else name

(* Display name of a compilation unit: "Lp__Simplex" -> "Lp.Simplex". *)
let display_of_unit modname = String.concat "." (split_mangled modname)

let has_suffix ~suffix name =
  let l = String.length name and sl = String.length suffix in
  l >= sl && String.sub name (l - sl) sl = suffix

let has_prefix ~prefix name =
  let l = String.length name and pl = String.length prefix in
  l >= pl && String.sub name 0 pl = prefix

(* Last dot-separated component: "Runtime.Trace.rings" -> "rings". *)
let last_component name =
  match String.rindex_opt name '.' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> name
