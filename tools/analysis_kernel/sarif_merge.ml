(* Merge single-run SARIF logs (as emitted by Ak_findings.sarif_log via
   the --json flag of cophy-lint / cophy-dsa / cophy-race) into one
   multi-run report:

     sarif_merge OUT IN1 [IN2 ...]

   Each input is a JSON object with a "runs" array; the output is a
   SARIF log whose runs array is the concatenation, in argument order.
   The extraction is a real bracket scanner (string- and escape-aware),
   not a regex, so any well-formed SARIF log merges — but no JSON
   library is needed. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Contents of the top-level "runs" array (without its brackets). *)
let runs_of content =
  let n = String.length content in
  let needle = {|"runs"|} in
  let rec find_key i =
    if i + String.length needle > n then None
    else if String.sub content i (String.length needle) = needle then Some i
    else find_key (i + 1)
  in
  match find_key 0 with
  | None -> None
  | Some k ->
      (* skip to the '[' after the colon *)
      let rec skip i =
        if i >= n then None
        else
          match content.[i] with
          | '[' -> Some i
          | ' ' | '\t' | '\n' | '\r' | ':' -> skip (i + 1)
          | _ -> None
      in
      (match skip (k + String.length needle) with
      | None -> None
      | Some open_ ->
          (* balanced scan to the matching ']' *)
          let depth = ref 0 and i = ref open_ and close_ = ref (-1) in
          let in_str = ref false and escaped = ref false in
          while !close_ < 0 && !i < n do
            let c = content.[!i] in
            if !in_str then begin
              if !escaped then escaped := false
              else if c = '\\' then escaped := true
              else if c = '"' then in_str := false
            end
            else begin
              match c with
              | '"' -> in_str := true
              | '[' | '{' -> incr depth
              | ']' | '}' ->
                  decr depth;
                  if !depth = 0 then close_ := !i
              | _ -> ()
            end;
            incr i
          done;
          if !close_ < 0 then None
          else Some (String.sub content (open_ + 1) (!close_ - open_ - 1)))

let () =
  match Array.to_list Sys.argv with
  | _ :: out :: (_ :: _ as inputs) ->
      let runs =
        List.filter_map
          (fun path ->
            match runs_of (read_file path) with
            | Some "" -> None
            | Some runs -> Some runs
            | None ->
                Printf.eprintf "sarif_merge: %s: no \"runs\" array\n" path;
                exit 2)
          inputs
      in
      let oc = open_out_bin out in
      output_string oc
        (Printf.sprintf {|{"version":"2.1.0","runs":[%s]}|}
           (String.concat "," runs));
      output_char oc '\n';
      close_out oc
  | _ ->
      prerr_endline "usage: sarif_merge OUT IN1 [IN2 ...]";
      exit 2
