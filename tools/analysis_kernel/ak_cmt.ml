(* Loading .cmt / .cmti artifacts for the typed-tree analyzers. *)

type contents =
  | Impl of string * Typedtree.structure  (* display prefix, typed tree *)
  | Intf of string * Typedtree.signature
  | Other

let load path =
  let info = Cmt_format.read_cmt path in
  let prefix = Ak_names.display_of_unit info.Cmt_format.cmt_modname in
  match info.Cmt_format.cmt_annots with
  | Cmt_format.Implementation str -> Impl (prefix, str)
  | Cmt_format.Interface sg -> Intf (prefix, sg)
  | _ -> Other
