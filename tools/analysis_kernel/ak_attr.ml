(* Shared parsing for the justification attributes of the typed-tree
   analyzers: [@dsa.allow <kind> "<why>"] and [@race.allow <target>
   "<why>"] have the same payload shape — one lowercase identifier plus
   a mandatory justification string.  An unexplained suppression is a
   malformed attribute, reported by every analyzer under its [bad_attr]
   rule rather than silently honored. *)

type parsed = {
  allows : (string * string) list;  (* (ident, justification) *)
  malformed : string list;  (* descriptions of bad payloads *)
}

(* Parse every [@name ...] attribute in [attrs].  [valid] vets the
   identifier (e.g. effect names for dsa, any target for race); an
   invalid identifier is malformed, as is a missing justification. *)
let parse ~name ~valid (attrs : Parsetree.attributes) =
  let allows = ref [] and malformed = ref [] in
  List.iter
    (fun (a : Parsetree.attribute) ->
      if a.attr_name.txt = name then
        let bad why =
          malformed :=
            Printf.sprintf
              "malformed [@%s] payload (%s); expected [@%s <ident> \
               \"justification\"]"
              name why name
            :: !malformed
        in
        match a.attr_payload with
        | Parsetree.PStr [ { pstr_desc = Parsetree.Pstr_eval (e, _); _ } ] -> (
            match e.Parsetree.pexp_desc with
            | Parsetree.Pexp_apply
                ( { pexp_desc = Parsetree.Pexp_ident { txt = Lident id; _ }; _ },
                  [ ( _,
                      {
                        pexp_desc =
                          Parsetree.Pexp_constant
                            (Parsetree.Pconst_string (why, _, _));
                        _;
                      } ) ] ) ->
                if valid id then allows := (id, why) :: !allows
                else bad (Printf.sprintf "unknown identifier %S" id)
            | Parsetree.Pexp_ident { txt = Lident id; _ } ->
                if valid id then bad "missing justification string"
                else bad (Printf.sprintf "unknown identifier %S" id)
            | _ -> bad "unrecognized payload shape")
        | _ -> bad "empty payload")
    attrs;
  { allows = List.rev !allows; malformed = List.rev !malformed }
