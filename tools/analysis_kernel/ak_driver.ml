(* Shared CLI driver for the analyzer executables (cophy-lint,
   cophy-dsa, cophy-race, cophy-bound).

   Every driver has the same skeleton: parse `[options] FILES...` where
   some options take a file argument and some are bare flags, reject an
   empty file list with a usage line (exit 2), run the analysis with
   load failures reported uniformly (exit 2), then print findings to
   stderr / write the single-run SARIF log when [--json FILE] was given
   and exit 1 iff any finding remains.  Before this module each main
   carried its own copy of that skeleton; now the per-tool code is only
   the analysis calls and the summary lines. *)

type t = {
  tool : string;  (* short name: "lint", "dsa", "race", "bound" *)
  files : string list;  (* positional arguments, in command-line order *)
  json : string option;  (* --json FILE *)
  debug : bool;  (* --debug *)
  opts : (string * string) list;  (* other file-argument options seen *)
  set_flags : string list;  (* other bare flags seen *)
}

(* Parse Sys.argv.  [file_opts] are additional options that take a file
   argument (e.g. "--exceptions"); [flags] are additional bare flags
   (e.g. "--emit-signatures").  [--json FILE] and [--debug] are
   understood by every driver.  An option missing its argument or an
   empty file list is a usage error: exit 2. *)
let parse ~tool ~usage ?(file_opts = []) ?(flags = []) () =
  let json = ref None in
  let debug = ref false in
  let files = ref [] in
  let opts = ref [] in
  let set_flags = ref [] in
  let takes_file o = o = "--json" || List.mem o file_opts in
  let rec go = function
    | [] -> ()
    | "--json" :: f :: tl ->
        json := Some f;
        go tl
    | "--debug" :: tl ->
        debug := true;
        go tl
    | o :: f :: tl when List.mem o file_opts ->
        opts := (o, f) :: !opts;
        go tl
    | o :: tl when List.mem o flags ->
        set_flags := o :: !set_flags;
        go tl
    | [ o ] when takes_file o ->
        Printf.eprintf "%s: %s expects a file argument\n" tool o;
        exit 2
    | f :: tl ->
        files := f :: !files;
        go tl
  in
  go (List.tl (Array.to_list Sys.argv));
  let files = List.rev !files in
  if files = [] then begin
    prerr_endline usage;
    exit 2
  end;
  {
    tool;
    files;
    json = !json;
    debug = !debug;
    opts = List.rev !opts;
    set_flags = !set_flags;
  }

let opt t name = List.assoc_opt name t.opts
let flag t name = List.mem name t.set_flags

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Run [analyze] over the driver's files; a load failure (missing .cmt,
   version skew) is an environment error, not a finding: exit 2. *)
let load t analyze =
  try analyze t.files
  with e ->
    Printf.eprintf "%s: failed to load typed trees: %s\n" t.tool
      (Printexc.to_string e);
    exit 2

(* Shared epilogue: write the SARIF log when [--json] was given, print
   every finding to stderr, then exit 1 with [fail] on stderr when any
   remain, else print [ok] on stdout.  [fail]/[ok] are the per-tool
   summary lines, already formatted. *)
let finish t ~rules ~fail ~ok findings =
  Option.iter
    (fun path ->
      Ak_findings.write_sarif path ~tool:("cophy-" ^ t.tool) ~rules findings)
    t.json;
  List.iter (Ak_findings.pp stderr) findings;
  if findings <> [] then begin
    Printf.eprintf "%s: %s\n" t.tool fail;
    exit 1
  end
  else Printf.printf "%s: %s\n" t.tool ok
