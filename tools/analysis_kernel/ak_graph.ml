(* Generic call-graph machinery for the interprocedural analyzers:
   worklist fixpoints over string-named nodes and BFS reachability with
   discovery paths (so diagnostics can name the chain from a root to
   the flagged node).  Successor order is caller-controlled; pass
   sorted roots/successors for deterministic parent chains. *)

module SSet = Ak_names.SSet
module SMap = Ak_names.SMap

(* Run [step ~mark] until a whole pass completes without [mark] being
   called.  The effect/exception propagation loops of cophy-dsa and the
   taint loop of cophy-race are both instances. *)
let fixpoint step =
  let changed = ref true in
  while !changed do
    changed := false;
    step ~mark:(fun () -> changed := true)
  done

(* Set of nodes reachable from [roots] over [succs] edges. *)
let reach ~roots ~succs =
  let visited = ref roots in
  let queue = Queue.create () in
  SSet.iter (fun r -> Queue.add r queue) roots;
  while not (Queue.is_empty queue) do
    let name = Queue.pop queue in
    List.iter
      (fun s ->
        if not (SSet.mem s !visited) then begin
          visited := SSet.add s !visited;
          Queue.add s queue
        end)
      (succs name)
  done;
  !visited

type paths = { visited : SSet.t; parent : string SMap.t }

(* BFS keeping the discovery parent of every visited node.  Roots are
   taken in list order, successors in [succs] order, so with sorted
   inputs the parent map — and with it every diagnostic chain — is
   deterministic. *)
let reach_paths ~roots ~succs =
  let visited = ref SSet.empty in
  let parent = ref SMap.empty in
  let queue = Queue.create () in
  List.iter
    (fun r ->
      if not (SSet.mem r !visited) then begin
        visited := SSet.add r !visited;
        Queue.add r queue
      end)
    roots;
  while not (Queue.is_empty queue) do
    let name = Queue.pop queue in
    List.iter
      (fun s ->
        if not (SSet.mem s !visited) then begin
          visited := SSet.add s !visited;
          parent := SMap.add s name !parent;
          Queue.add s queue
        end)
      (succs name)
  done;
  { visited = !visited; parent = !parent }

(* Root-to-node discovery chain, inclusive: ["root"; ...; "name"]. *)
let chain p name =
  let rec go name acc =
    match SMap.find_opt name p.parent with
    | Some up -> go up (up :: acc)
    | None -> acc
  in
  go name [ name ]

let chain_string p name = String.concat " -> " (chain p name)
