(* cophy-bound: interprocedural bound-provenance analysis over the .cmt
   typed trees dune produces for lib/.

   CoPhy's headline guarantee is a *certified* optimality gap, and the
   repo's worst recurring bug class is its violation: Iter_limit
   simplex objectives trusted as B&B bounds, fabricated x = 0 solutions
   lifted out of the backend, uncertified cut activities (all caught by
   hand in PR 2's review).  cophy-bound makes the boundary a
   machine-checked invariant: every float-producing function gets a
   provenance in the lattice

     exact ⊑ certified ⊑ heuristic ⊑ fabricated

   Sources are declared in-tree with [@bound.source heuristic "why"] on
   the producing binding (the simplex entry points whose results may
   carry Iter_limit objectives, greedy/local-search objectives,
   Lagrangian bounds).  Provenance propagates through the call graph by
   abstract interpretation: function return values and parameters carry
   summaries joined to a fixpoint (Ak_graph.fixpoint), locals and refs
   carry levels in a monotone environment, and everything else joins
   its operands.  A value is *laundered* (capped back to certified)
   only by passing through a recognized certifier (Analyze.certify,
   Cuts.certify, the Problem.feasible re-check, or a function marked
   [@bound.certifier <tag> "why"]), or by flowing under a guard that
   syntactically establishes optimality — an if/&&/match arm whose
   condition or pattern mentions the [Optimal] constructor (and, for
   patterns, not [Iter_limit]) or calls a certifier.  [let solved =
   ... = Optimal] registers [solved] as a laundering guard ident.

   Sinks are declared with [@bound.sink <label> "what it guards"] on
   the expression or binding whose value must never be heuristic: the
   B&B pruning comparison, incumbent acceptance, bound stores, the
   certified fields of bench/serve output.  A heuristic-or-worse value
   reaching a sink is a finding ([tainted_sink]) carrying the
   producer -> sink chain, unless a lexically scoped
   [@bound.trust <producer> "why"] names a producer on the chain; a
   trust that suppresses nothing is itself a finding ([stale_trust]),
   exactly like [@race.allow]'s unused_allow.

   Soundness caveats (deliberate, shared with cophy-dsa/race — see
   DESIGN.md §15): values escaping through data structures are tracked
   only as whole-value joins (no per-field or per-element precision, so
   a tainted record field taints the record); labeled/optional argument
   summaries are keyed by label and positionals by index, so taint
   through partial application or |> is visible in the result value but
   not attributed to the callee's parameter; guard laundering is
   syntactic (a guard computed in another function launders only if
   bound to a local guard ident in this one).  The analysis errs toward
   reporting on those; [@bound.trust] is the documented escape.

   Shared machinery (name normalization, resolution contexts, the
   justification-attribute grammar, graph reachability, findings /
   SARIF) lives in tools/analysis_kernel. *)

module SSet = Ak_names.SSet

(* ------------------------------------------------------------------ *)
(* Rules and findings                                                  *)
(* ------------------------------------------------------------------ *)

type rule = Tainted_sink | Stale_trust | Bad_attr

let rule_name = function
  | Tainted_sink -> "tainted_sink"
  | Stale_trust -> "stale_trust"
  | Bad_attr -> "bad_attr"

let all_rule_names = List.map rule_name [ Tainted_sink; Stale_trust; Bad_attr ]

type violation = Ak_findings.finding = {
  rule : string;
  where : string;
  message : string;
  path : string list;
}

let pp_violation = Ak_findings.pp

(* ------------------------------------------------------------------ *)
(* The provenance lattice                                              *)
(* ------------------------------------------------------------------ *)

type level = Exact | Certified | Heuristic | Fabricated

let rank = function Exact -> 0 | Certified -> 1 | Heuristic -> 2 | Fabricated -> 3

let level_name = function
  | Exact -> "exact"
  | Certified -> "certified"
  | Heuristic -> "heuristic"
  | Fabricated -> "fabricated"

let level_of_string = function
  | "exact" -> Some Exact
  | "certified" -> Some Certified
  | "heuristic" -> Some Heuristic
  | "fabricated" -> Some Fabricated
  | _ -> None

let ljoin a b = if rank a >= rank b then a else b

(* Abstract value, two tracks so function summaries stay per-callsite:

   - the [i] track is taint the value acquired *internally* — from a
     declared source or another function's summary — with the producer
     nodes responsible (for the finding path);
   - the [p] track is taint attributable to the enclosing function's
     *parameters*, with the functions whose parameters contributed.

   A function's return summary stores only the i track plus a
   "parameters flow to the result" bit; at a callsite the p track is
   substituted by the actual arguments, so a helper called once with a
   tainted argument does not become tainted for every other caller.
   The p level is floored at [Certified] when a parameter is read, so
   the data dependence is visible even before any callsite passes
   taint (certified < heuristic: the floor can never trip a sink). *)
type aval = { ilvl : level; iorig : SSet.t; plvl : level; porig : SSet.t }

let exact =
  { ilvl = Exact; iorig = SSet.empty; plvl = Exact; porig = SSet.empty }

let certified = { exact with ilvl = Certified }
let level v = ljoin v.ilvl v.plvl
let tainted v = rank (level v) >= rank Heuristic

(* Producer set of a tainted value: internal producers when the i
   track is tainted, else the functions whose parameters carried it. *)
let origins v = if rank v.ilvl >= rank Heuristic then v.iorig else v.porig

let vjoin a b =
  if a == exact then b
  else if b == exact then a
  else
    {
      ilvl = ljoin a.ilvl b.ilvl;
      iorig = SSet.union a.iorig b.iorig;
      plvl = ljoin a.plvl b.plvl;
      porig = SSet.union a.porig b.porig;
    }

(* Collapse the tracks into one (i) — for storing into a location that
   outlives the enclosing call (a global, a callee's param summary). *)
let collapse v =
  if rank v.plvl = 0 then v
  else
    {
      ilvl = level v;
      iorig = SSet.union v.iorig v.porig;
      plvl = Exact;
      porig = SSet.empty;
    }

(* Laundering: a certifier (or an Optimal-guarded branch) re-derives
   the value from first principles, so provenance is capped back to
   certified and both tracks are cleared — including the parameter
   dependence, so [if Problem.feasible p x then Some x else None]
   really is certified independently of what the caller passes. *)
let cap v = if rank (level v) = 0 then exact else certified

(* ------------------------------------------------------------------ *)
(* Analysis state                                                      *)
(* ------------------------------------------------------------------ *)

type trust = {
  tr_target : string;  (* last component of the trusted producer *)
  tr_why : string;
  tr_where : string;
  mutable tr_used : bool;
}

type t = {
  (* node name -> definition location, for every analyzed binding *)
  defined : (string, string) Hashtbl.t;
  (* return-value (or module-level value) summary per node; i track
     only — parameter dependence is the separate [pdep] bit *)
  ret : (string, aval) Hashtbl.t;
  (* nodes whose parameters flow into their result: callsites join the
     actual arguments into the call's value *)
  pdep : (string, unit) Hashtbl.t;
  (* parameter summary, keyed "node/#i" (positional) or "node/~lbl" *)
  params : (string, aval) Hashtbl.t;
  (* declared [@bound.source]: name -> (level, why, where) *)
  sources : (string, level * string * string) Hashtbl.t;
  (* recognized certifiers: builtins + [@bound.certifier] bindings *)
  mutable certifiers : SSet.t;
  (* taint-flow edges producer -> consumer, for the finding chains *)
  edges : (string, SSet.t) Hashtbl.t;
  (* monotone env: "unit/Ident.unique_name" -> value, for locals/refs *)
  env : (string, aval) Hashtbl.t;
  (* idents bound to laundering guard expressions, same keying *)
  guards : (string, unit) Hashtbl.t;
  (* loaded units, re-walked each fixpoint pass *)
  mutable units : (string * Typedtree.structure) list;
  (* reporting pass only: *)
  mutable reporting : bool;
  mutable paths : Ak_graph.paths option;
  mutable trust_scope : trust list;
  mutable trusts : trust list;
  mutable violations : violation list;
}

let create () =
  {
    defined = Hashtbl.create 512;
    ret = Hashtbl.create 512;
    pdep = Hashtbl.create 256;
    params = Hashtbl.create 512;
    sources = Hashtbl.create 16;
    certifiers =
      SSet.of_list
        [ "Lp.Analyze.certify"; "Lp.Cuts.certify"; "Lp.Problem.feasible" ];
    edges = Hashtbl.create 128;
    env = Hashtbl.create 512;
    guards = Hashtbl.create 64;
    units = [];
    reporting = false;
    paths = None;
    trust_scope = [];
    trusts = [];
    violations = [];
  }

let report ?path t rule where fmt =
  Printf.ksprintf
    (fun msg ->
      t.violations <-
        Ak_findings.make ?path (rule_name rule) where msg :: t.violations)
    fmt

let add_edge t ~mark src dst =
  if src <> dst then begin
    let cur =
      Option.value (Hashtbl.find_opt t.edges src) ~default:SSet.empty
    in
    if not (SSet.mem dst cur) then begin
      Hashtbl.replace t.edges src (SSet.add dst cur);
      mark ()
    end
  end

let grew old nv =
  rank nv.ilvl > rank old.ilvl
  || rank nv.plvl > rank old.plvl
  || SSet.cardinal nv.iorig > SSet.cardinal old.iorig
  || SSet.cardinal nv.porig > SSet.cardinal old.porig

(* Join [v] (collapsed: summary tables are i-track only) into the
   keyed table, recording taint edges from each contributing producer
   to [name] so chains pass through it. *)
let join_tbl tbl t ~mark ~name key v =
  let v = collapse v in
  SSet.iter (fun o -> add_edge t ~mark o name) v.iorig;
  let old = Option.value (Hashtbl.find_opt tbl key) ~default:exact in
  let nv = vjoin old v in
  if grew old nv then begin
    Hashtbl.replace tbl key nv;
    mark ()
  end

let join_ret t ~mark name v = join_tbl t.ret t ~mark ~name name v
let join_param t ~mark name key v = join_tbl t.params t ~mark ~name key v

(* Store a function body's value as [name]'s return summary: the
   p track attributable to [name]'s own parameters becomes the [pdep]
   bit (substituted per-callsite); p taint captured from an *enclosing*
   function's parameters cannot be substituted, so it collapses into
   the i track (conservative). *)
let store_ret t ~mark name v =
  if rank v.plvl > 0 && SSet.mem name v.porig && not (Hashtbl.mem t.pdep name)
  then begin
    Hashtbl.replace t.pdep name ();
    mark ()
  end;
  let stored =
    if SSet.exists (fun o -> o <> name) v.porig then collapse v
    else { v with plvl = Exact; porig = SSet.empty }
  in
  join_ret t ~mark name stored

let env_join t ~mark key v =
  if v != exact then begin
    let old = Option.value (Hashtbl.find_opt t.env key) ~default:exact in
    let nv = vjoin old v in
    if grew old nv then begin
      Hashtbl.replace t.env key nv;
      mark ()
    end
  end

(* Reading a node's summary from a reference site: the producer the
   reader sees is the node itself (its own contributors are linked to
   it by taint edges, so the chain stays complete). *)
let read_summary tbl key name =
  match Hashtbl.find_opt tbl key with
  | Some v when tainted v ->
      { exact with ilvl = level v; iorig = SSet.singleton name }
  | Some v -> { exact with ilvl = level v }
  | None -> exact

(* ------------------------------------------------------------------ *)
(* Builtin tables                                                      *)
(* ------------------------------------------------------------------ *)

(* In-place stores: (head, target position, stored-value position).
   The store is modeled as an env/summary join on the target. *)
let store_heads =
  [
    (":=", 0, 1);
    ("Atomic.set", 0, 1);
    ("Atomic.exchange", 0, 1);
    ("Array.set", 0, 2);
    ("Array.unsafe_set", 0, 2);
    ("Hashtbl.replace", 0, 2);
    ("Hashtbl.add", 0, 2);
  ]

(* ------------------------------------------------------------------ *)
(* Typedtree helpers                                                   *)
(* ------------------------------------------------------------------ *)

open Typedtree

let loc_string = Ak_resolve.loc_string
let is_arrow = Ak_resolve.is_arrow

(* Walker state: the analysis, the unit's resolution context, the
   enclosing node's name (for messages and local-function naming),
   whether the current expression sits under a laundering guard, and
   the fixpoint's change marker. *)
type st = {
  an : t;
  rctx : Ak_resolve.ctx;
  node : string;
  laundered : bool;
  mark : unit -> unit;
}

let resolve st p = Ak_resolve.resolve_value st.rctx p
let ident_key st id = st.rctx.Ak_resolve.unit_prefix ^ "/" ^ Ident.unique_name id

(* Idents bound by a pattern of any kind (value or computation). *)
let rec gpat_idents : type k. k general_pattern -> Ident.t list =
 fun p ->
  match p.pat_desc with
  | Tpat_var (id, _) -> [ id ]
  | Tpat_alias (p', id, _) -> id :: gpat_idents p'
  | Tpat_tuple ps -> List.concat_map gpat_idents ps
  | Tpat_construct (_, _, ps, _) -> List.concat_map gpat_idents ps
  | Tpat_record (fs, _) -> List.concat_map (fun (_, _, p') -> gpat_idents p') fs
  | Tpat_array ps -> List.concat_map gpat_idents ps
  | Tpat_lazy p' -> gpat_idents p'
  | Tpat_or (a, b, _) -> gpat_idents a @ gpat_idents b
  | Tpat_value vp -> gpat_idents (vp :> pattern)
  | Tpat_exception p' -> gpat_idents p'
  | _ -> []

(* Does the pattern mention constructor [name] anywhere? *)
let rec gpat_mentions : type k. string -> k general_pattern -> bool =
 fun name p ->
  match p.pat_desc with
  | Tpat_construct (_, cd, ps, _) ->
      cd.Types.cstr_name = name || List.exists (gpat_mentions name) ps
  | Tpat_alias (p', _, _) -> gpat_mentions name p'
  | Tpat_tuple ps -> List.exists (gpat_mentions name) ps
  | Tpat_record (fs, _) -> List.exists (fun (_, _, p') -> gpat_mentions name p') fs
  | Tpat_array ps -> List.exists (gpat_mentions name) ps
  | Tpat_lazy p' -> gpat_mentions name p'
  | Tpat_or (a, b, _) -> gpat_mentions name a || gpat_mentions name b
  | Tpat_value vp -> gpat_mentions name (vp :> pattern)
  | Tpat_exception p' -> gpat_mentions name p'
  | _ -> false

(* A match arm whose pattern requires Optimal (and cannot also admit
   Iter_limit) has re-established the certificate. *)
let pattern_launders : type k. k general_pattern -> bool =
 fun p -> gpat_mentions "Optimal" p && not (gpat_mentions "Iter_limit" p)

(* Syntactic laundering test for a guard expression: does it anywhere
   construct/compare against [Optimal], call a recognized certifier, or
   mention an ident previously bound to such a guard? *)
let guard_launders st e0 =
  let found = ref false in
  let super = Tast_iterator.default_iterator in
  let expr self (e : expression) =
    (match e.exp_desc with
    | Texp_construct (_, cd, _) when cd.Types.cstr_name = "Optimal" ->
        found := true
    | Texp_ident (Path.Pident id, _, _)
      when Hashtbl.mem st.an.guards (ident_key st id) ->
        found := true
    | Texp_ident (p, _, _) -> (
        match resolve st p with
        | Some n when SSet.mem n st.an.certifiers -> found := true
        | _ -> ())
    | _ -> ());
    if not !found then super.expr self e
  in
  let it = { super with expr } in
  it.expr it e0;
  !found

(* [if not g then a else b]: the *else* branch is the laundered one. *)
let negated_guard st c =
  match c.exp_desc with
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, [ (_, Some g) ])
    when resolve st p = Some "not" ->
      if guard_launders st g then Some g else None
  | _ -> None

(* Immediate child expressions, for the generic join fallback. *)
let child_exprs e =
  let acc = ref [] in
  let super = Tast_iterator.default_iterator in
  let it =
    { super with expr = (fun _ ce -> acc := ce :: !acc) }
  in
  super.expr it e;
  List.rev !acc

let nth_positional k args =
  let rec go k = function
    | (Asttypes.Nolabel, (Some _ as a)) :: tl -> if k = 0 then a else go (k - 1) tl
    | _ :: tl -> go k tl
    | [] -> None
  in
  go k args

(* ------------------------------------------------------------------ *)
(* Attribute parsing                                                   *)
(* ------------------------------------------------------------------ *)

let parse_bad st msgs ~where =
  if st.an.reporting then
    List.iter (fun msg -> report st.an Bad_attr where "%s" msg) msgs

(* [@bound.source <level> "why"] *)
let parse_sources st attrs ~where =
  let p =
    Ak_attr.parse ~name:"bound.source"
      ~valid:(fun id -> level_of_string id <> None)
      attrs
  in
  parse_bad st p.Ak_attr.malformed ~where;
  List.filter_map
    (fun (id, why) ->
      Option.map (fun lvl -> (lvl, why)) (level_of_string id))
    p.Ak_attr.allows

(* [@bound.sink <label> "what it guards"] *)
let parse_sinks st attrs ~where =
  let p = Ak_attr.parse ~name:"bound.sink" ~valid:(fun _ -> true) attrs in
  parse_bad st p.Ak_attr.malformed ~where;
  p.Ak_attr.allows

(* [@bound.certifier <tag> "why"] *)
let parse_certifier st attrs ~where =
  let p = Ak_attr.parse ~name:"bound.certifier" ~valid:(fun _ -> true) attrs in
  parse_bad st p.Ak_attr.malformed ~where;
  p.Ak_attr.allows <> []

(* [@bound.trust <producer> "why"]; records for staleness in the
   reporting pass. *)
let parse_trusts st attrs ~where =
  if not st.an.reporting then []
  else begin
    let p = Ak_attr.parse ~name:"bound.trust" ~valid:(fun _ -> true) attrs in
    parse_bad st p.Ak_attr.malformed ~where;
    List.map
      (fun (target, why) ->
        let tr =
          { tr_target = target; tr_why = why; tr_where = where; tr_used = false }
        in
        st.an.trusts <- tr :: st.an.trusts;
        tr)
      p.Ak_attr.allows
  end

(* ------------------------------------------------------------------ *)
(* Sink reporting                                                      *)
(* ------------------------------------------------------------------ *)

(* Producer chain for the finding: the lexically smallest origin, its
   BFS discovery chain from a declared source (deterministic: sorted
   roots, sorted successors). *)
let origin_chain t v =
  match SSet.min_elt_opt (origins v) with
  | None -> []
  | Some o -> (
      match t.paths with
      | Some p when SSet.mem o p.Ak_graph.visited -> Ak_graph.chain p o
      | _ -> [ o ])

let check_sink st v ~label ~why ~where =
  if st.an.reporting && tainted v then begin
    let chain = origin_chain st.an v in
    let matches tr =
      List.exists
        (fun n -> Ak_names.last_component n = tr.tr_target)
        (chain @ SSet.elements (origins v))
    in
    match List.find_opt matches st.an.trust_scope with
    | Some tr -> tr.tr_used <- true
    | None ->
        let producer =
          match chain with p :: _ -> p | [] -> "<unknown producer>"
        in
        report st.an Tainted_sink where
          ~path:(chain @ [ Printf.sprintf "sink:%s at %s" label where ])
          "%s value reaches the %s sink (%s) in %s, produced by %s via %s; \
           re-derive it through a certifier (Analyze.certify / Cuts.certify \
           / a feasibility re-check), gate the flow on Optimal, or justify \
           with [@bound.trust %s \"...\"]"
          (level_name (level v))
          label why st.node producer
          (String.concat " -> " chain)
          (Ak_names.last_component
             (match SSet.min_elt_opt (origins v) with
             | Some o -> o
             | None -> producer))
  end

(* ------------------------------------------------------------------ *)
(* Abstract evaluation                                                 *)
(* ------------------------------------------------------------------ *)

let param_key name (lbl : Asttypes.arg_label) pos =
  match lbl with
  | Asttypes.Nolabel -> Printf.sprintf "%s/#%d" name pos
  | Asttypes.Labelled l | Asttypes.Optional l -> Printf.sprintf "%s/~%s" name l

let rec eval st (e : expression) : aval =
  let where = loc_string e.exp_loc in
  let trusts = parse_trusts st e.exp_attributes ~where in
  let go () =
    let v = eval_desc st e in
    let v = if st.laundered then cap v else v in
    List.iter
      (fun (label, why) -> check_sink st v ~label ~why ~where)
      (parse_sinks st e.exp_attributes ~where);
    v
  in
  if trusts = [] then go ()
  else begin
    let saved = st.an.trust_scope in
    st.an.trust_scope <- trusts @ saved;
    Fun.protect ~finally:(fun () -> st.an.trust_scope <- saved) go
  end

and eval_desc st (e : expression) : aval =
  let an = st.an in
  match e.exp_desc with
  | Texp_constant _ -> exact
  | Texp_ident (p, _, _) -> (
      match p with
      | Path.Pident id
        when not (Hashtbl.mem st.rctx.Ak_resolve.values (Ident.unique_name id))
        ->
          Option.value (Hashtbl.find_opt an.env (ident_key st id)) ~default:exact
      | _ -> (
          match resolve st p with
          | Some n -> read_summary an.ret n n
          | None -> exact))
  | Texp_apply (hd, args) -> eval_apply st hd args
  | Texp_let (_, vbs, body) ->
      eval_let st vbs;
      eval st body
  | Texp_sequence (e1, e2) ->
      ignore (eval st e1);
      eval st e2
  | Texp_ifthenelse (c, th, el) -> (
      ignore (eval st c);
      match negated_guard st c with
      | Some _ ->
          let vt = eval st th in
          let ve =
            match el with
            | Some el -> eval { st with laundered = true } el
            | None -> exact
          in
          vjoin vt ve
      | None ->
          let launder = guard_launders st c in
          let vt = eval { st with laundered = st.laundered || launder } th in
          let ve = match el with Some el -> eval st el | None -> exact in
          vjoin vt ve)
  | Texp_match (scrut, cases, _) ->
      let sv = eval st scrut in
      List.fold_left
        (fun acc (c : computation case) ->
          let launder = pattern_launders c.c_lhs in
          let stc = { st with laundered = st.laundered || launder } in
          let bound = if launder then cap sv else sv in
          List.iter
            (fun id -> env_join an ~mark:st.mark (ident_key st id) bound)
            (gpat_idents c.c_lhs);
          let guard_ld =
            match c.c_guard with
            | Some g ->
                ignore (eval stc g);
                guard_launders st g
            | None -> false
          in
          let stc =
            { stc with laundered = stc.laundered || guard_ld }
          in
          vjoin acc (eval stc c.c_rhs))
        exact cases
  | Texp_function { cases; _ } ->
      (* anonymous closure used as a value: its result contributes to
         whatever consumes it (Array.init, parallel_map, ...), so the
         closure's value is the join of its bodies; parameters are
         unknown here and default to exact *)
      List.fold_left
        (fun acc (c : value case) ->
          Option.iter (fun g -> ignore (eval st g)) c.c_guard;
          vjoin acc (eval st c.c_rhs))
        exact cases
  | _ ->
      (* generic fallback: join the immediate children (tuples,
         records, constructors, arrays, field projections, try, loops,
         setfield, ...) — whole-value precision, per the caveats *)
      List.fold_left (fun acc ce -> vjoin acc (eval st ce)) exact
        (child_exprs e)

and eval_apply st hd args =
  let an = st.an in
  let head_name =
    match hd.exp_desc with Texp_ident (p, _, _) -> resolve st p | _ -> None
  in
  let eval_args () =
    List.map
      (fun (lbl, a) -> (lbl, Option.map (eval st) a))
      args
  in
  match head_name with
  | Some n when SSet.mem n an.certifiers ->
      (* recognized certifier: consumes tainted input legitimately and
         returns a re-derived, certified value *)
      ignore (eval_args ());
      certified
  | Some "&&" -> (
      match args with
      | [ (_, Some a); (_, Some b) ] ->
          let va = eval st a in
          let vb =
            if guard_launders st a then eval { st with laundered = true } b
            else eval st b
          in
          vjoin va vb
      | _ ->
          List.fold_left
            (fun acc (_, v) -> match v with Some v -> vjoin acc v | None -> acc)
            exact (eval_args ()))
  | Some n when List.exists (fun (h, _, _) -> h = n) store_heads -> (
      let _, tpos, vpos = List.find (fun (h, _, _) -> h = n) store_heads in
      let vals = eval_args () in
      let nth k =
        let rec go k = function
          | (Asttypes.Nolabel, Some v) :: tl -> if k = 0 then Some v else go (k - 1) tl
          | _ :: tl -> go k tl
          | [] -> None
        in
        go k vals
      in
      match (nth_positional tpos args, nth vpos) with
      | Some { exp_desc = Texp_ident (p, _, _); _ }, Some v -> (
          (match p with
          | Path.Pident id
            when not
                   (Hashtbl.mem st.rctx.Ak_resolve.values (Ident.unique_name id))
            ->
              env_join an ~mark:st.mark (ident_key st id) v
          | _ -> (
              (* store into a module-level ref/atomic: fold the stored
                 value into that global's summary *)
              match resolve st p with
              | Some g -> join_ret an ~mark:st.mark g v
              | None -> ()));
          exact)
      | _ -> exact)
  | Some n ->
      let vals = eval_args () in
      let known = Hashtbl.mem an.defined n in
      (* record parameter summaries + taint edges into analyzed callees *)
      if known then begin
        let pos = ref 0 in
        List.iter
          (fun ((lbl : Asttypes.arg_label), v) ->
            let key = param_key n lbl !pos in
            (match lbl with Asttypes.Nolabel -> incr pos | _ -> ());
            match v with
            | Some v when v != exact -> join_param an ~mark:st.mark n key v
            | _ -> ())
          vals
      end;
      (* the callee's internal taint arrives with the callee as its
         producer (read_summary); the arguments join in only when the
         callee's result actually depends on its parameters — for an
         unanalyzed callee we can't know, so they always join *)
      let base = read_summary an.ret n n in
      if known && not (Hashtbl.mem an.pdep n) then base
      else
        List.fold_left
          (fun acc (_, v) -> match v with Some v -> vjoin acc v | None -> acc)
          base vals
  | None ->
      let hv = eval st hd in
      List.fold_left
        (fun acc (_, v) -> match v with Some v -> vjoin acc v | None -> acc)
        hv (eval_args ())

(* Local bindings: function bindings are promoted to their own nodes
   (so their parameters and returns carry summaries and sinks inside
   them are attributed correctly); other bindings join into the env.
   A binding whose right-hand side is a laundering guard expression
   registers its idents as guard idents. *)
and eval_let st vbs =
  let an = st.an in
  (* register local function names first so recursive references and
     forward uses resolve to the node *)
  let promoted =
    List.filter_map
      (fun (vb : value_binding) ->
        match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
        | Tpat_var (id, _), Texp_function _ ->
            let cname = st.node ^ "." ^ Ident.name id in
            Hashtbl.replace st.rctx.Ak_resolve.values (Ident.unique_name id)
              cname;
            Hashtbl.replace an.defined cname (loc_string vb.vb_loc);
            Some (vb, cname)
        | _ -> None)
      vbs
  in
  List.iter
    (fun ((vb : value_binding), cname) -> walk_binding st cname vb)
    promoted;
  List.iter
    (fun (vb : value_binding) ->
      match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
      | Tpat_var _, Texp_function _ -> ()
      | _ ->
          let where = loc_string vb.vb_loc in
          let trusts = parse_trusts st vb.vb_attributes ~where in
          let saved = an.trust_scope in
          an.trust_scope <- trusts @ saved;
          Fun.protect
            ~finally:(fun () -> an.trust_scope <- saved)
            (fun () ->
              let v = eval st vb.vb_expr in
              List.iter
                (fun (label, why) -> check_sink st v ~label ~why ~where)
                (parse_sinks st vb.vb_attributes ~where);
              if guard_launders st vb.vb_expr then
                List.iter
                  (fun id -> Hashtbl.replace an.guards (ident_key st id) ())
                  (gpat_idents vb.vb_pat);
              List.iter
                (fun id -> env_join an ~mark:st.mark (ident_key st id) v)
                (gpat_idents vb.vb_pat)))
    vbs

(* Walk a function node: bind each parameter to its summary, evaluate
   the body, and join the result into the node's return summary.
   Handles the binding-level attributes ([@bound.source],
   [@bound.certifier], [@bound.trust], [@bound.sink]). *)
and walk_binding st cname (vb : value_binding) =
  let an = st.an in
  let where = loc_string vb.vb_loc in
  Hashtbl.replace an.defined cname where;
  List.iter
    (fun (lvl, why) ->
      Hashtbl.replace an.sources cname (lvl, why, where);
      join_ret an ~mark:st.mark cname
        { exact with ilvl = lvl; iorig = SSet.singleton cname })
    (parse_sources st vb.vb_attributes ~where);
  if parse_certifier st vb.vb_attributes ~where then
    if not (SSet.mem cname an.certifiers) then begin
      an.certifiers <- SSet.add cname an.certifiers;
      st.mark ()
    end;
  let trusts = parse_trusts st vb.vb_attributes ~where in
  let saved = an.trust_scope in
  an.trust_scope <- trusts @ saved;
  Fun.protect
    ~finally:(fun () -> an.trust_scope <- saved)
    (fun () ->
      let stn = { st with node = cname; laundered = false } in
      let v = walk_fn stn cname 0 vb.vb_expr in
      store_ret an ~mark:st.mark cname v;
      List.iter
        (fun (label, why) -> check_sink stn v ~label ~why ~where)
        (parse_sinks st vb.vb_attributes ~where))

and walk_fn st name pos (e : expression) : aval =
  match e.exp_desc with
  | Texp_function { arg_label; cases; _ } -> (
      let key = param_key name arg_label pos in
      (* parameter read: callsite-joined taint rides the p track (so a
         sink inside the body still fires), floored at Certified so the
         data dependence registers [pdep] even before any callsite
         passes taint *)
      let slvl =
        match Hashtbl.find_opt st.an.params key with
        | Some v -> level v
        | None -> Exact
      in
      let pv =
        {
          exact with
          plvl = ljoin slvl Certified;
          porig = SSet.singleton name;
        }
      in
      List.iter
        (fun (c : value case) ->
          List.iter
            (fun id -> env_join st.an ~mark:st.mark (ident_key st id) pv)
            (gpat_idents c.c_lhs))
        cases;
      let pos' =
        match arg_label with Asttypes.Nolabel -> pos + 1 | _ -> pos
      in
      match cases with
      | [ c ]
        when c.c_guard = None
             && (match c.c_rhs.exp_desc with
                | Texp_function _ -> true
                | _ -> false) ->
          walk_fn st name pos' c.c_rhs
      | _ ->
          List.fold_left
            (fun acc (c : value case) ->
              Option.iter (fun g -> ignore (eval st g)) c.c_guard;
              vjoin acc (eval st c.c_rhs))
            exact cases)
  | _ -> eval st e

(* ------------------------------------------------------------------ *)
(* Structure walk                                                      *)
(* ------------------------------------------------------------------ *)

let rec walk_structure t ~mark rctx prefix (str : structure) =
  Ak_resolve.register_items rctx prefix str;
  let st = { an = t; rctx; node = prefix; laundered = false; mark } in
  List.iter
    (fun (item : structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter
            (fun (vb : value_binding) ->
              match Ak_resolve.pattern_idents vb.vb_pat with
              | [] ->
                  let nd = prefix ^ ".(init)" in
                  Hashtbl.replace t.defined nd (loc_string vb.vb_loc);
                  walk_binding { st with node = nd } nd vb
              | (_, name0) :: _ ->
                  let nd = prefix ^ "." ^ name0 in
                  walk_binding { st with node = nd } nd vb)
            vbs
      | Tstr_module mb -> walk_module t ~mark rctx prefix mb
      | Tstr_recmodule mbs ->
          List.iter (walk_module t ~mark rctx prefix) mbs
      | Tstr_eval (e, _) ->
          let nd = prefix ^ ".(init)" in
          Hashtbl.replace t.defined nd (loc_string item.str_loc);
          ignore (eval { st with node = nd } e)
      | _ -> ())
    str.str_items

and walk_module t ~mark rctx prefix (mb : module_binding) =
  match mb.mb_name.Location.txt with
  | Some name -> (
      match (Ak_resolve.strip_module_constraints mb.mb_expr).mod_desc with
      | Tmod_structure str ->
          walk_structure t ~mark rctx (prefix ^ "." ^ name) str
      | _ -> ())
  | None -> ()

let pass t ~mark =
  List.iter
    (fun (prefix, str) ->
      let rctx = Ak_resolve.create ~unit_prefix:prefix in
      walk_structure t ~mark rctx prefix str)
    t.units

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let analyze files =
  let t = create () in
  t.units <-
    List.filter_map
      (fun path ->
        match Ak_cmt.load path with
        | Ak_cmt.Impl (prefix, str) -> Some (prefix, str)
        | Ak_cmt.Intf _ | Ak_cmt.Other -> None)
      files;
  t

let source_names t =
  Hashtbl.fold (fun n _ acc -> n :: acc) t.sources [] |> List.sort compare

let succs t name =
  match Hashtbl.find_opt t.edges name with
  | Some s -> SSet.elements s
  | None -> []

(* Sorted (node, level) pairs at heuristic or above — the taint map,
   for --debug and the tests. *)
let summaries t =
  Hashtbl.fold
    (fun n v acc -> if tainted v then (n, level v) :: acc else acc)
    t.ret []
  |> List.sort compare

let check_stale_trusts t =
  List.iter
    (fun tr ->
      if not tr.tr_used then
        report t Stale_trust tr.tr_where
          "[@bound.trust %s \"%s\"] never matched a producer on a tainted \
           flow into a sink; delete it or move it to the flow it is meant \
           to justify"
          tr.tr_target tr.tr_why)
    (List.sort compare (List.rev t.trusts))

let run_checks t =
  (* propagate summaries to a fixpoint, silently *)
  Ak_graph.fixpoint (fun ~mark -> pass t ~mark);
  (* one reporting pass over the stable summaries *)
  t.reporting <- true;
  t.paths <-
    Some (Ak_graph.reach_paths ~roots:(source_names t) ~succs:(succs t));
  pass t ~mark:(fun () -> ());
  check_stale_trusts t;
  List.rev t.violations
