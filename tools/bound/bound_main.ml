(* cophy-bound driver.

     bound_main [--json FILE] [--debug] CMT_FILES...

   Runs the bound-provenance analysis (see bound_core.ml / DESIGN.md
   §15) over the given typed trees and exits 1 when any finding
   remains: heuristic values reaching a pruning/certification sink
   without a certifier or a [@bound.trust], trusts that suppress
   nothing, malformed attributes.  [--json FILE] additionally writes
   the findings as a single-run SARIF log for the merged CI artifact.
   The CLI skeleton is Ak_driver, shared with the other analyzers.

   Run through dune:

     dune build @bound         # analyze lib/lp + lib/cophy + lib/serve *)

let () =
  let d =
    Ak_driver.parse ~tool:"bound"
      ~usage:"usage: bound_main [--json FILE] [--debug] FILES.cmt..." ()
  in
  let t = Ak_driver.load d Bound_core.analyze in
  let viols = Bound_core.run_checks t in
  if d.Ak_driver.debug then begin
    List.iter
      (fun (lvl, why, name) ->
        Printf.printf "source %-10s %s (%s)\n" lvl name why)
      (List.map
         (fun n ->
           let lvl, why, _ = Hashtbl.find t.Bound_core.sources n in
           (Bound_core.level_name lvl, why, n))
         (Bound_core.source_names t));
    List.iter
      (fun (n, lvl) ->
        Printf.printf "taint %-10s %s\n" (Bound_core.level_name lvl) n)
      (Bound_core.summaries t)
  end;
  Ak_driver.finish d ~rules:Bound_core.all_rule_names
    ~fail:(Printf.sprintf "%d finding(s)" (List.length viols))
    ~ok:
      (Printf.sprintf "OK (%d files, %d sources, %d tainted nodes)"
         (List.length d.Ak_driver.files)
         (List.length (Bound_core.source_names t))
         (List.length (Bound_core.summaries t)))
    viols
