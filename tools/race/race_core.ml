(* cophy-race: static interference analysis for the multicore runtime,
   over the .cmt typed trees dune produces for lib/.

   cophy-dsa (tools/dsa) proves that code reachable from a parallel
   section carries no unjustified [mutates_global]/[io]/[nondet]
   effects.  That is a *whitelist* of effect kinds; it says nothing
   about which shared memory a parallel closure touches or why the
   touching is safe.  cophy-race closes that gap: for every closure
   reachable from a spawn seam it classifies each write to a mutable
   location the closure did not itself create as

     slot-disjoint   an array/ring write whose index derives from a
                     per-task slot (the closure's own parameters, a
                     unique [Atomic.fetch_and_add] claim, [Domain.self],
                     [Domain.DLS.get]) — distinct tasks write distinct
                     slots, so the writes never collide;
     atomic          performed through [Atomic.*] (or [Domain.DLS.set],
                     which is per-domain by construction);
     shared-mutable  everything else: [:=]/[incr]/[decr] on a captured
                     or module-level ref, record-field assignment,
                     array writes with a data-dependent index,
                     [Hashtbl.*]/[Buffer.*]/[Queue.*]/[Stack.*]
                     mutation.

   Shared-mutable writes are findings (rule [shared_mutable]) reported
   as spawn-site -> write path, unless justified in-tree with
   [@race.allow <target> "<why>"] — the justification names the written
   location and must explain the synchronization that makes the write
   safe (a latch lock, a single-writer protocol, ...).  A justification
   that suppresses nothing is itself a finding ([unused_allow]): stale
   safety arguments rot into lies, so they fail the build exactly like
   an unjustified write.

   Spawn seams — the points where a function value crosses onto another
   domain:

     Runtime.parallel_map f arr        f            (positional 0)
     Domain.spawn f                    f            (positional 0)
     Runtime.submit w job              job          (positional 1)
     Runtime.Batch.add b thunk         thunk        (positional 1; runs
                                                    later under [flush])
     Runtime.Search.run ~eval ...      ~eval        (labeled)

   Soundness caveats (deliberate, shared with cophy-dsa — see
   DESIGN.md §14): writes whose target is a function *parameter* are
   charged to no one (the aliasing is unknown at the definition);
   calls through unannotated function parameters are invisible edges;
   a mutable value that escapes through a data structure and is written
   under a different name is not tracked.  The slot-taint is liberal —
   any expression mentioning a slot source is slot-derived — so a
   colliding index computed *from* a slot value (e.g. [slot / 2]) is
   missed.  The analysis errs toward silence on those; the runtime's
   seams are narrow enough that the reachable closure set is audited
   exhaustively modulo these documented holes.

   Shared machinery (name normalization, resolution contexts, the
   justification-attribute grammar, graph reachability, findings /
   SARIF) lives in tools/analysis_kernel. *)

module SSet = Ak_names.SSet

(* ------------------------------------------------------------------ *)
(* Rules and findings                                                  *)
(* ------------------------------------------------------------------ *)

type rule = Shared_mutable | Unused_allow | Bad_attr

let rule_name = function
  | Shared_mutable -> "shared_mutable"
  | Unused_allow -> "unused_allow"
  | Bad_attr -> "bad_attr"

let all_rule_names =
  List.map rule_name [ Shared_mutable; Unused_allow; Bad_attr ]

type violation = Ak_findings.finding = {
  rule : string;
  where : string;
  message : string;
  path : string list;
}

let pp_violation = Ak_findings.pp

(* ------------------------------------------------------------------ *)
(* Analysis state                                                      *)
(* ------------------------------------------------------------------ *)

type cls = Slot_disjoint | Atomic | Shared

let cls_name = function
  | Slot_disjoint -> "slot-disjoint"
  | Atomic -> "atomic"
  | Shared -> "shared-mutable"

type allow = {
  a_target : string;  (* last component of the written location *)
  a_why : string;
  a_where : string;
  mutable a_used : bool;
}

type write = {
  w_target : string;  (* "Runtime.Trace.rings" or captured "remaining" *)
  w_captured : bool;  (* captured from an enclosing function scope *)
  w_ident : string option;  (* Ident.unique_name of a captured target *)
  w_kind : string;  (* human description of the write form *)
  w_cls : cls;
  w_loc : string;
  w_allow : allow option;  (* lexically scoped justification, if any *)
}

type node = {
  r_name : string;
  r_loc : string;
  mutable r_function : bool;
  mutable r_spawn_root : bool;
  mutable r_spawn_site : string option;  (* "<seam> at file:line" *)
  mutable r_parent : node option;  (* lexically enclosing node *)
  mutable r_locals : (string, unit) Hashtbl.t;  (* idents bound in body *)
  mutable r_calls : string list;  (* reference-closure edges *)
  mutable r_writes : write list;
}

type t = {
  nodes : (string, node) Hashtbl.t;
  mutable allows : allow list;  (* every parsed justification *)
  mutable violations : violation list;
}

let create () = { nodes = Hashtbl.create 512; allows = []; violations = [] }

let report ?path t rule where fmt =
  Printf.ksprintf
    (fun msg ->
      t.violations <-
        Ak_findings.make ?path (rule_name rule) where msg :: t.violations)
    fmt

let node t name loc =
  match Hashtbl.find_opt t.nodes name with
  | Some n -> n
  | None ->
      let n =
        {
          r_name = name;
          r_loc = loc;
          r_function = false;
          r_spawn_root = false;
          r_spawn_site = None;
          r_parent = None;
          r_locals = Hashtbl.create 1;
          r_calls = [];
          r_writes = [];
        }
      in
      Hashtbl.add t.nodes name n;
      n

(* ------------------------------------------------------------------ *)
(* Builtin tables                                                      *)
(* ------------------------------------------------------------------ *)

(* Spawn seams: which argument of which callee crosses onto another
   domain.  Names are matched after normalization; the [.parallel_map]
   suffix covers aliased module paths, as in cophy-dsa. *)
type argspec = Pos of int | Labeled of string

let seams =
  [
    ("Runtime.parallel_map", Pos 0);
    ("Domain.spawn", Pos 0);
    ("Runtime.submit", Pos 1);
    ("Runtime.Batch.add", Pos 1);
    ("Runtime.Search.run", Labeled "eval");
  ]

let seam_of name =
  match List.assoc_opt name seams with
  | Some s -> Some s
  | None ->
      if Ak_names.has_suffix ~suffix:".parallel_map" name then Some (Pos 0)
      else None

(* Writes through Atomic are the sanctioned cross-domain mutation. *)
let atomic_heads =
  SSet.of_list
    [
      "Atomic.set"; "Atomic.exchange"; "Atomic.compare_and_set";
      "Atomic.fetch_and_add"; "Atomic.incr"; "Atomic.decr";
    ]

(* Per-domain storage: disjoint between domains by construction. *)
let dls_heads = SSet.of_list [ "Domain.DLS.set" ]

(* Results of these are per-task slot claims / domain identities. *)
let taint_source =
  SSet.of_list [ "Atomic.fetch_and_add"; "Domain.self"; "Domain.DLS.get" ]

let ref_heads = SSet.of_list [ ":="; "incr"; "decr" ]

(* a.(i) <- v desugars to these; the index argument decides the class *)
let array_set_heads =
  SSet.of_list [ "Array.set"; "Array.unsafe_set"; "Bytes.set"; "Bytes.unsafe_set" ]

(* In-place mutators with no index to reason about: a call on a captured
   or module-level value is a shared-mutable write.  Mutex/Condition/
   Semaphore are synchronization primitives, not tracked state. *)
let mutator_heads =
  SSet.of_list
    [
      "Hashtbl.add"; "Hashtbl.replace"; "Hashtbl.remove"; "Hashtbl.reset";
      "Hashtbl.clear"; "Hashtbl.add_seq"; "Hashtbl.replace_seq";
      "Hashtbl.filter_map_inplace"; "Queue.push"; "Queue.add"; "Queue.pop";
      "Queue.take"; "Queue.clear"; "Queue.transfer"; "Stack.push";
      "Stack.pop"; "Stack.clear"; "Buffer.add_string"; "Buffer.add_char";
      "Buffer.add_bytes"; "Buffer.add_substring"; "Buffer.add_subbytes";
      "Buffer.add_buffer"; "Buffer.add_channel"; "Buffer.clear";
      "Buffer.reset"; "Buffer.truncate"; "Array.fill"; "Array.blit";
      "Array.sort"; "Array.fast_sort"; "Array.stable_sort"; "Bytes.fill";
      "Bytes.blit";
    ]

(* ------------------------------------------------------------------ *)
(* Typedtree helpers                                                   *)
(* ------------------------------------------------------------------ *)

open Typedtree

let loc_string = Ak_resolve.loc_string
let is_arrow = Ak_resolve.is_arrow

type unit_ctx = { an : t; rctx : Ak_resolve.ctx }

let resolve_value ctx p = Ak_resolve.resolve_value ctx.rctx p

(* [@race.allow <target> "<why>"] — any identifier is a legal target
   (it names a written location, not a fixed vocabulary); the mandatory
   justification string is enforced by the shared parser. *)
let parse_allow t (attrs : Parsetree.attributes) ~where =
  let parsed = Ak_attr.parse ~name:"race.allow" ~valid:(fun _ -> true) attrs in
  List.iter (fun msg -> report t Bad_attr where "%s" msg) parsed.Ak_attr.malformed;
  List.map
    (fun (target, why) ->
      let a = { a_target = target; a_why = why; a_where = where; a_used = false } in
      t.allows <- a :: t.allows;
      a)
    parsed.Ak_attr.allows

(* Every identifier bound anywhere inside [expr] — parameters of the
   node and of its inner lambdas, let/match/for bindings.  A write whose
   target is in this set is node-local (or a parameter: the documented
   aliasing caveat) and is skipped; a target bound in an *enclosing*
   function's scope is a capture. *)
let bound_idents expr =
  let tbl = Hashtbl.create 64 in
  let add id = Hashtbl.replace tbl (Ident.unique_name id) () in
  let super = Tast_iterator.default_iterator in
  let pat : type k. Tast_iterator.iterator -> k general_pattern -> unit =
   fun self p ->
    (match p.pat_desc with
    | Tpat_var (id, _) -> add id
    | Tpat_alias (_, id, _) -> add id
    | _ -> ());
    super.pat self p
  in
  let expr_it self (e : expression) =
    (match e.exp_desc with
    | Texp_for (id, _, _, _, _, _) -> add id
    | Texp_function { param; _ } -> add param
    | _ -> ());
    super.expr self e
  in
  let it = { super with pat; expr = expr_it } in
  it.expr it expr;
  tbl

(* Liberal slot-taint test: does [e] mention a tainted identifier or a
   slot source ([Atomic.fetch_and_add] / [Domain.self] /
   [Domain.DLS.get]) anywhere in its subtree? *)
let expr_tainted ctx tainted e0 =
  let found = ref false in
  let super = Tast_iterator.default_iterator in
  let expr self (e : expression) =
    (match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _)
      when Hashtbl.mem tainted (Ident.unique_name id) ->
        found := true
    | Texp_ident (p, _, _) -> (
        match resolve_value ctx p with
        | Some name when SSet.mem name taint_source -> found := true
        | _ -> ())
    | _ -> ());
    if not !found then super.expr self e
  in
  let it = { super with expr } in
  it.expr it e0;
  !found

(* ------------------------------------------------------------------ *)
(* Per-node collection                                                 *)
(* ------------------------------------------------------------------ *)

let rec collect_body ctx ~(nd : node) expr0 =
  let an = ctx.an in
  let locals = bound_idents expr0 in
  nd.r_locals <- locals;
  let tainted = Hashtbl.create 16 in
  let taint id = Hashtbl.replace tainted (Ident.unique_name id) () in
  (* slot sources: the node's own outermost parameter chain — for a
     closure at a [parallel_map]/[Search.run] seam these carry the
     per-task element / slot index *)
  let rec seed_params (e : expression) =
    match e.exp_desc with
    | Texp_function { cases = [ c ]; _ } ->
        List.iter (fun (id, _) -> taint id) (Ak_resolve.pattern_idents c.c_lhs);
        seed_params c.c_rhs
    | Texp_function { cases; _ } ->
        List.iter
          (fun (c : value case) ->
            List.iter (fun (id, _) -> taint id)
              (Ak_resolve.pattern_idents c.c_lhs))
          cases
    | _ -> ()
  in
  seed_params expr0;
  (* lexically scoped [@race.allow]s active at the current point *)
  let scope : allow list ref = ref [] in
  let find_allow target =
    let last = Ak_names.last_component target in
    List.find_opt (fun a -> a.a_target = last) !scope
  in
  let add_call name =
    if not (List.mem name nd.r_calls) then nd.r_calls <- name :: nd.r_calls
  in
  (* Classify the written location.  None = node-local or parameter
     (skipped; see the caveats above). *)
  let target_info (e : expression) =
    match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> (
        match Hashtbl.find_opt ctx.rctx.Ak_resolve.values (Ident.unique_name id) with
        | Some global -> Some (global, false, None)
        | None ->
            if Hashtbl.mem locals (Ident.unique_name id) then None
            else Some (Ident.name id, true, Some (Ident.unique_name id)))
    | Texp_ident (p, _, _) ->
        Option.map (fun n -> (n, false, None)) (resolve_value ctx p)
    | _ -> None
  in
  let record_write ?(cls = Shared) target_expr ~kind loc =
    match target_info target_expr with
    | None -> ()
    | Some (target, captured, uid) ->
        nd.r_writes <-
          {
            w_target = target;
            w_captured = captured;
            w_ident = uid;
            w_kind = kind;
            w_cls = cls;
            w_loc = loc;
            w_allow = (if cls = Shared then find_allow target else None);
          }
          :: nd.r_writes
  in
  let reference name (vd : Types.value_description) =
    if is_arrow vd.Types.val_type then add_call name
  in
  let super = Tast_iterator.default_iterator in
  let rec expr self (e : expression) =
    let e_allows =
      parse_allow an e.exp_attributes ~where:(loc_string e.exp_loc)
    in
    if e_allows = [] then expr_inner self e
    else begin
      let saved = !scope in
      scope := e_allows @ saved;
      Fun.protect
        ~finally:(fun () -> scope := saved)
        (fun () -> expr_inner self e)
    end
  and expr_inner self (e : expression) =
    match e.exp_desc with
    | Texp_ident (p, _, vd) -> (
        match resolve_value ctx p with
        | Some name -> reference name vd
        | None -> ())
    | Texp_apply ({ exp_desc = Texp_ident (fp, _, fvd); _ }, args) -> (
        let fname = resolve_value ctx fp in
        let loc = loc_string e.exp_loc in
        let walk_args () =
          List.iter (fun (_, a) -> Option.iter (expr self) a) args
        in
        match fname with
        | Some name when seam_of name <> None ->
            Option.iter (fun n -> reference n fvd) fname;
            spawn_site self name (Option.get (seam_of name)) e.exp_loc args
        | Some name when SSet.mem name atomic_heads -> (
            (* sanctioned; recorded for --debug completeness *)
            match args with
            | (_, Some target) :: rest ->
                record_write ~cls:Atomic target ~kind:name loc;
                List.iter (fun (_, a) -> Option.iter (expr self) a) rest
            | _ -> walk_args ())
        | Some name when SSet.mem name dls_heads -> walk_args ()
        | Some name when SSet.mem name ref_heads -> (
            match args with
            | (_, Some target) :: rest ->
                record_write target
                  ~kind:
                    (if name = ":=" then "ref assignment"
                     else name ^ " on a ref")
                  loc;
                expr self target;
                List.iter (fun (_, a) -> Option.iter (expr self) a) rest
            | _ -> walk_args ())
        | Some name when SSet.mem name array_set_heads -> (
            match args with
            | (_, Some target) :: (_, Some index) :: rest ->
                let cls =
                  if expr_tainted ctx tainted index then Slot_disjoint
                  else Shared
                in
                record_write ~cls target
                  ~kind:
                    (if cls = Slot_disjoint then
                       "array write (slot-derived index)"
                     else "array write with a data-dependent index")
                  loc;
                expr self target;
                expr self index;
                List.iter (fun (_, a) -> Option.iter (expr self) a) rest
            | _ -> walk_args ())
        | Some name when SSet.mem name mutator_heads ->
            let target =
              match name with
              | "Array.sort" | "Array.fast_sort" | "Array.stable_sort" ->
                  nth_positional 1 args
              | _ -> nth_positional 0 args
            in
            Option.iter (fun tgt -> record_write tgt ~kind:name loc) target;
            walk_args ()
        | Some name ->
            reference name fvd;
            walk_args ()
        | None -> walk_args ())
    | Texp_setfield (target, _, label, value) ->
        record_write target
          ~kind:
            (Printf.sprintf "assignment to field %s" label.Types.lbl_name)
          (loc_string e.exp_loc);
        expr self target;
        expr self value
    | Texp_let (_, vbs, body) ->
        (* named local functions become their own nodes, exactly as in
           cophy-dsa: their writes are charged where they happen, and
           reachability decides whether they are audited *)
        let is_local_fn (vb : value_binding) =
          match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
          | Tpat_var _, Texp_function _ -> true
          | _ -> false
        in
        let fn_vbs, other_vbs = List.partition is_local_fn vbs in
        let subs =
          List.map
            (fun (vb : value_binding) ->
              let id =
                match vb.vb_pat.pat_desc with
                | Tpat_var (id, _) -> id
                | _ -> assert false
              in
              let base = nd.r_name ^ "." ^ Ident.name id in
              let cname =
                if Hashtbl.mem an.nodes base then
                  nd.r_name ^ "." ^ Ident.unique_name id
                else base
              in
              Hashtbl.replace ctx.rctx.Ak_resolve.values
                (Ident.unique_name id) cname;
              let sub = node an cname (loc_string vb.vb_loc) in
              sub.r_function <- true;
              sub.r_parent <- Some nd;
              (vb, sub))
            fn_vbs
        in
        List.iter
          (fun ((vb : value_binding), sub) ->
            let allows =
              parse_allow an vb.vb_attributes ~where:(loc_string vb.vb_loc)
            in
            collect_with_scope ctx ~nd:sub ~allows vb.vb_expr)
          subs;
        List.iter
          (fun (vb : value_binding) ->
            expr self vb.vb_expr;
            if expr_tainted ctx tainted vb.vb_expr then
              List.iter (fun (id, _) -> taint id)
                (Ak_resolve.pattern_idents vb.vb_pat))
          other_vbs;
        expr self body
    | Texp_for (id, _, lo, hi, _, fbody) ->
        expr self lo;
        expr self hi;
        if expr_tainted ctx tainted lo || expr_tainted ctx tainted hi then
          taint id;
        expr self fbody
    | _ -> super.expr self e
  and spawn_site self seam spec loc args =
    let arg =
      match spec with
      | Pos k ->
          let rec go k = function
            | (Asttypes.Nolabel, (Some _ as a)) :: tl ->
                if k = 0 then a else go (k - 1) tl
            | _ :: tl -> go k tl
            | [] -> None
          in
          go k args
      | Labeled l ->
          List.find_map
            (fun ((lbl : Asttypes.arg_label), a) ->
              match lbl with Asttypes.Labelled s when s = l -> a | _ -> None)
            args
    in
    let site = Printf.sprintf "%s at %s" seam (loc_string loc) in
    let mark_root n =
      n.r_spawn_root <- true;
      if n.r_spawn_site = None then n.r_spawn_site <- Some site
    in
    List.iter
      (fun (_, a) ->
        match (a, arg) with
        | Some ae, Some fa when ae == fa -> (
            match ae.exp_desc with
            | Texp_ident (p, _, _) -> (
                match resolve_value ctx p with
                | Some name ->
                    add_call name;
                    mark_root (node an name (loc_string loc))
                | None ->
                    (* a function parameter handed to the seam: its body
                       is unknown here; the concrete closure was charged
                       to whichever node created it *)
                    ())
            | _ ->
                let root_name =
                  Printf.sprintf "%s{closure@%s}" nd.r_name (loc_string loc)
                in
                let root = node an root_name (loc_string loc) in
                root.r_function <- true;
                root.r_parent <- Some nd;
                mark_root root;
                collect_with_scope ctx ~nd:root ~allows:[] ae;
                add_call root_name)
        | Some ae, _ -> expr self ae
        | None, _ -> ())
      args
  and nth_positional k args =
    let rec go k = function
      | (Asttypes.Nolabel, (Some _ as a)) :: tl ->
          if k = 0 then a else go (k - 1) tl
      | _ :: tl -> go k tl
      | [] -> None
    in
    go k args
  in
  let it = { super with expr } in
  (* binding-level allows arrive via [collect_with_scope] *)
  it.expr it expr0

(* Collect [expr] into [nd] with [allows] in scope for its whole body. *)
and collect_with_scope ctx ~nd ~allows expr =
  if allows = [] then collect_body ctx ~nd expr
  else begin
    (* binding-level allows cover the entire body: splice them in by
       collecting normally, then rebinding unmatched shared writes *)
    collect_body ctx ~nd expr;
    nd.r_writes <-
      List.map
        (fun w ->
          if w.w_cls = Shared && w.w_allow = None then
            let last = Ak_names.last_component w.w_target in
            match List.find_opt (fun a -> a.a_target = last) allows with
            | Some a -> { w with w_allow = Some a }
            | None -> w
          else w)
        nd.r_writes
  end

(* ------------------------------------------------------------------ *)
(* Structure walk                                                      *)
(* ------------------------------------------------------------------ *)

let rec walk_structure ctx prefix (str : structure) =
  Ak_resolve.register_items ctx.rctx prefix str;
  List.iter
    (fun (item : structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter
            (fun (vb : value_binding) ->
              let allows =
                parse_allow ctx.an vb.vb_attributes
                  ~where:(loc_string vb.vb_loc)
              in
              match Ak_resolve.pattern_idents vb.vb_pat with
              | [] ->
                  let nd =
                    node ctx.an (prefix ^ ".(init)") (loc_string vb.vb_loc)
                  in
                  collect_with_scope ctx ~nd ~allows vb.vb_expr
              | (_, name0) :: _ ->
                  let nd =
                    node ctx.an (prefix ^ "." ^ name0) (loc_string vb.vb_loc)
                  in
                  nd.r_function <- is_arrow vb.vb_expr.exp_type;
                  collect_with_scope ctx ~nd ~allows vb.vb_expr)
            vbs
      | Tstr_module mb -> walk_module ctx prefix mb
      | Tstr_recmodule mbs -> List.iter (walk_module ctx prefix) mbs
      | Tstr_eval (e, attrs) ->
          let allows =
            parse_allow ctx.an attrs ~where:(loc_string item.str_loc)
          in
          let nd = node ctx.an (prefix ^ ".(init)") (loc_string item.str_loc) in
          collect_with_scope ctx ~nd ~allows e
      | _ -> ())
    str.str_items

and walk_module ctx prefix (mb : module_binding) =
  match mb.mb_name.Location.txt with
  | Some name -> (
      match (Ak_resolve.strip_module_constraints mb.mb_expr).mod_desc with
      | Tmod_structure str -> walk_structure ctx (prefix ^ "." ^ name) str
      | _ -> ())
  | None -> ()

let load_file t path =
  match Ak_cmt.load path with
  | Ak_cmt.Impl (prefix, str) ->
      let ctx = { an = t; rctx = Ak_resolve.create ~unit_prefix:prefix } in
      walk_structure ctx prefix str
  | Ak_cmt.Intf _ | Ak_cmt.Other -> ()

(* ------------------------------------------------------------------ *)
(* Checks                                                              *)
(* ------------------------------------------------------------------ *)

let succs t name =
  match Hashtbl.find_opt t.nodes name with
  | None -> []
  | Some nd ->
      List.filter (fun c -> Hashtbl.mem t.nodes c) nd.r_calls
      |> List.sort compare

let spawn_roots t =
  Hashtbl.fold
    (fun _ nd acc -> if nd.r_spawn_root then nd.r_name :: acc else acc)
    t.nodes []
  |> List.sort compare

let spawn_reachable t =
  Ak_graph.reach ~roots:(SSet.of_list (spawn_roots t)) ~succs:(succs t)

(* The root whose BFS tree discovered [name], for naming the spawn site. *)
let root_of paths name =
  let rec go n =
    match Ak_names.SMap.find_opt n paths.Ak_graph.parent with
    | Some up -> go up
    | None -> n
  in
  go name

(* A captured write is only *shared* when the capture crosses a spawn
   boundary.  [helper_job] capturing [parallel_map]'s [remaining] is
   shared: helper_job runs once per worker while the single
   parallel_map frame that bound [remaining] encloses all of them.
   [Simplex.run_phase.loop] capturing run_phase's [stall] is confined:
   loop is reached by an ordinary call, so each task entering run_phase
   gets a fresh frame — the refs never alias across domains.  The test:
   walk up the lexical parent chain from the writing node to the binder
   of [uid]; the write is confined iff no node strictly below the
   binder is a spawn root (i.e. no seam sits between the binding frame
   and the code doing the write). *)
let capture_is_confined (nd : node) uid =
  let rec go (n : node) crossed =
    match n.r_parent with
    | None -> false (* binder not found: stay conservative *)
    | Some p ->
        let crossed = crossed || n.r_spawn_root in
        if Hashtbl.mem p.r_locals uid then not crossed else go p crossed
  in
  go nd false

let check_shared_writes t =
  let paths = Ak_graph.reach_paths ~roots:(spawn_roots t) ~succs:(succs t) in
  let flagged = ref [] in
  SSet.iter
    (fun name ->
      match Hashtbl.find_opt t.nodes name with
      | None -> ()
      | Some nd ->
          List.iter
            (fun w ->
              let confined =
                match w.w_ident with
                | Some uid -> capture_is_confined nd uid
                | None -> false
              in
              if w.w_cls = Shared && not confined then
                match w.w_allow with
                | Some a -> a.a_used <- true
                | None -> flagged := (nd, w) :: !flagged)
            nd.r_writes)
    paths.Ak_graph.visited;
  List.iter
    (fun ((nd : node), w) ->
      let root = root_of paths nd.r_name in
      let site =
        match (Hashtbl.find_opt t.nodes root : node option) with
        | Some r -> Option.value r.r_spawn_site ~default:(r.r_name ^ " (spawn root)")
        | None -> root
      in
      report t Shared_mutable w.w_loc
        ~path:(("spawned: " ^ site) :: Ak_graph.chain paths nd.r_name)
        "shared-mutable write to %s %s (%s) in %s, reachable from spawn \
         site [%s] via %s; make the write slot-disjoint, route it through \
         Atomic, or justify with [@race.allow %s \"...\"]"
        (if w.w_captured then "captured" else "module-level")
        w.w_target w.w_kind nd.r_name site
        (Ak_graph.chain_string paths nd.r_name)
        (Ak_names.last_component w.w_target))
    (List.sort compare !flagged)

let check_unused_allows t =
  List.iter
    (fun a ->
      if not a.a_used then
        report t Unused_allow a.a_where
          "[@race.allow %s \"%s\"] never matched a spawn-reachable \
           shared-mutable write; delete it or move it to the write it is \
           meant to justify"
          a.a_target a.a_why)
    (List.sort compare (List.rev t.allows))

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let analyze files =
  let t = create () in
  List.iter (load_file t) files;
  t

let run_checks t =
  check_shared_writes t;
  check_unused_allows t;
  List.rev t.violations
