(* cophy-race driver.

     race_main [--json FILE] [--debug] CMT_FILES...

   Runs the interference analysis (see race_core.ml / DESIGN.md §14)
   over the given typed trees and exits 1 when any finding remains:
   shared-mutable writes reachable from a spawn seam without a
   [@race.allow], justifications that suppress nothing, malformed
   attributes.  [--json FILE] additionally writes the findings as a
   single-run SARIF log for the merged CI artifact.

   Run through dune:

     dune build @race          # analyze every module in lib/ *)

let () =
  let json = ref None in
  let debug = ref false in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: f :: tl ->
        json := Some f;
        parse tl
    | "--debug" :: tl ->
        debug := true;
        parse tl
    | [ "--json" ] ->
        prerr_endline "race: --json expects a file argument";
        exit 2
    | f :: tl ->
        files := f :: !files;
        parse tl
  in
  parse (List.tl (Array.to_list Sys.argv));
  let files = List.rev !files in
  if files = [] then begin
    prerr_endline "usage: race_main [--json FILE] [--debug] FILES.cmt...";
    exit 2
  end;
  let t =
    try Race_core.analyze files
    with e ->
      Printf.eprintf "race: failed to load typed trees: %s\n"
        (Printexc.to_string e);
      exit 2
  in
  if !debug then begin
    let nodes =
      Hashtbl.fold (fun _ nd acc -> nd :: acc) t.Race_core.nodes []
      |> List.sort (fun a b -> compare a.Race_core.r_name b.Race_core.r_name)
    in
    List.iter
      (fun nd ->
        if nd.Race_core.r_spawn_root then
          Printf.printf "root %s [%s]\n" nd.Race_core.r_name
            (Option.value nd.Race_core.r_spawn_site ~default:"?");
        List.iter
          (fun w ->
            Printf.printf "write %-13s %s: %s %s (%s) at %s\n"
              (Race_core.cls_name w.Race_core.w_cls)
              nd.Race_core.r_name
              (if w.Race_core.w_captured then "captured" else "global")
              w.Race_core.w_target w.Race_core.w_kind w.Race_core.w_loc)
          nd.Race_core.r_writes)
      nodes;
    let reach = Race_core.spawn_reachable t in
    Printf.printf "spawn-reachable: %d nodes\n" (Race_core.SSet.cardinal reach);
    Race_core.SSet.iter (fun n -> Printf.printf "reach %s\n" n) reach
  end;
  let viols = Race_core.run_checks t in
  Option.iter
    (fun path ->
      Ak_findings.write_sarif path ~tool:"cophy-race"
        ~rules:Race_core.all_rule_names viols)
    !json;
  List.iter (Race_core.pp_violation stderr) viols;
  if viols <> [] then begin
    Printf.eprintf "race: %d finding(s)\n" (List.length viols);
    exit 1
  end
  else begin
    let reach = Race_core.spawn_reachable t in
    Printf.printf "race: OK (%d files, %d spawn roots, %d reachable nodes)\n"
      (List.length files)
      (List.length (Race_core.spawn_roots t))
      (Race_core.SSet.cardinal reach)
  end
