(* cophy-race driver.

     race_main [--json FILE] [--debug] CMT_FILES...

   Runs the interference analysis (see race_core.ml / DESIGN.md §14)
   over the given typed trees and exits 1 when any finding remains:
   shared-mutable writes reachable from a spawn seam without a
   [@race.allow], justifications that suppress nothing, malformed
   attributes.  [--json FILE] additionally writes the findings as a
   single-run SARIF log for the merged CI artifact.  The CLI skeleton
   (argument parsing, load-failure handling, findings printing, exit
   codes) is Ak_driver, shared with the other analyzers.

   Run through dune:

     dune build @race          # analyze every module in lib/ *)

let () =
  let d =
    Ak_driver.parse ~tool:"race"
      ~usage:"usage: race_main [--json FILE] [--debug] FILES.cmt..." ()
  in
  let t = Ak_driver.load d Race_core.analyze in
  if d.Ak_driver.debug then begin
    let nodes =
      Hashtbl.fold (fun _ nd acc -> nd :: acc) t.Race_core.nodes []
      |> List.sort (fun a b -> compare a.Race_core.r_name b.Race_core.r_name)
    in
    List.iter
      (fun nd ->
        if nd.Race_core.r_spawn_root then
          Printf.printf "root %s [%s]\n" nd.Race_core.r_name
            (Option.value nd.Race_core.r_spawn_site ~default:"?");
        List.iter
          (fun w ->
            Printf.printf "write %-13s %s: %s %s (%s) at %s\n"
              (Race_core.cls_name w.Race_core.w_cls)
              nd.Race_core.r_name
              (if w.Race_core.w_captured then "captured" else "global")
              w.Race_core.w_target w.Race_core.w_kind w.Race_core.w_loc)
          nd.Race_core.r_writes)
      nodes;
    let reach = Race_core.spawn_reachable t in
    Printf.printf "spawn-reachable: %d nodes\n" (Race_core.SSet.cardinal reach);
    Race_core.SSet.iter (fun n -> Printf.printf "reach %s\n" n) reach
  end;
  let viols = Race_core.run_checks t in
  Ak_driver.finish d ~rules:Race_core.all_rule_names
    ~fail:(Printf.sprintf "%d finding(s)" (List.length viols))
    ~ok:
      (let reach = Race_core.spawn_reachable t in
       Printf.sprintf "OK (%d files, %d spawn roots, %d reachable nodes)"
         (List.length d.Ak_driver.files)
         (List.length (Race_core.spawn_roots t))
         (Race_core.SSet.cardinal reach))
    viols
