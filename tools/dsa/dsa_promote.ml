(* Promotion helper for `dune build @dsa-promote` / `@dsa-prune` /
   `@race-promote`: copy freshly generated snapshot files over their
   committed counterparts in the *source* tree.

     dsa_promote [--prune] SRC DEST_RELATIVE_TO_ROOT [SRC DEST ...]

   Dune actions run inside _build/<context>/tools/<tool>, so the source
   file lives at <workspace>/<dest> where <workspace> is the prefix of
   the cwd up to "_build".  (The canonical dune-native alternative —
   `dune build @dsa` followed by `dune promote` — also works; these
   aliases exist so acceptance is one command, mirroring @lint/@dsa.)

   [--prune] only changes the report label: the pruned payloads are
   computed upstream (dsa_main --emit-pruned-exceptions), this helper
   just lands them in the source tree. *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let prune, args =
    match args with
    | "--prune" :: tl -> (true, tl)
    | _ -> (false, args)
  in
  let rec pairs = function
    | [] -> []
    | src :: dest :: tl -> (src, dest) :: pairs tl
    | [ _ ] ->
        prerr_endline
          "usage: dsa_promote [--prune] SRC DEST_RELATIVE_TO_ROOT [SRC DEST \
           ...]";
        exit 2
  in
  let jobs = pairs args in
  if jobs = [] then begin
    prerr_endline
      "usage: dsa_promote [--prune] SRC DEST_RELATIVE_TO_ROOT [SRC DEST ...]";
    exit 2
  end;
  let cwd = Sys.getcwd () in
  let marker = Filename.dir_sep ^ "_build" ^ Filename.dir_sep in
  let root =
    (* longest prefix of cwd before the _build segment *)
    let rec find i =
      if i < 0 then None
      else if
        i + String.length marker <= String.length cwd
        && String.sub cwd i (String.length marker) = marker
      then Some (String.sub cwd 0 i)
      else find (i - 1)
    in
    find (String.length cwd - 1)
  in
  let root =
    match root with
    | Some r -> r
    | None ->
        Printf.eprintf "dsa-promote: cannot locate workspace root from %s\n"
          cwd;
        exit 2
  in
  List.iter
    (fun (src, rel_dest) ->
      let dest = Filename.concat root rel_dest in
      let content =
        let ic = open_in_bin src in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let oc = open_out_bin dest in
      output_string oc content;
      close_out oc;
      Printf.printf "dsa-promote: %s %s\n"
        (if prune then "pruned" else "wrote")
        dest)
    jobs
