(* Promotion helper for `dune build @dsa-promote`: copy the freshly
   generated signatures snapshot over the committed
   tools/dsa/signatures.expected in the *source* tree.

   Dune actions run inside _build/<context>/tools/dsa, so the source
   file lives at <workspace>/tools/dsa/signatures.expected where
   <workspace> is the prefix of the cwd up to "_build".  (The canonical
   dune-native alternative — `dune build @dsa` followed by
   `dune promote` — also works; this alias exists so signature
   acceptance is one command, mirroring @lint/@dsa.) *)

let () =
  match Sys.argv with
  | [| _; src; rel_dest |] ->
      let cwd = Sys.getcwd () in
      let marker = Filename.dir_sep ^ "_build" ^ Filename.dir_sep in
      let root =
        (* longest prefix of cwd before the _build segment *)
        let rec find i =
          if i < 0 then None
          else if
            i + String.length marker <= String.length cwd
            && String.sub cwd i (String.length marker) = marker
          then Some (String.sub cwd 0 i)
          else find (i - 1)
        in
        find (String.length cwd - 1)
      in
      let dest =
        match root with
        | Some r -> Filename.concat r rel_dest
        | None ->
            Printf.eprintf
              "dsa-promote: cannot locate workspace root from %s\n" cwd;
            exit 2
      in
      let content =
        let ic = open_in_bin src in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let oc = open_out_bin dest in
      output_string oc content;
      close_out oc;
      Printf.printf "dsa-promote: wrote %s\n" dest
  | _ ->
      prerr_endline "usage: dsa_promote GENERATED DEST_RELATIVE_TO_ROOT";
      exit 2
