(* cophy-dsa driver.

     dsa_main [--exceptions FILE] [--signatures-expected FILE]
              [--emit-signatures] [--emit-pruned-exceptions]
              [--json FILE] CMT_OR_CMTI_FILES...

   - default mode runs the whole-program checks (domain_safety over
     parallel_map / Domain.spawn closures, exception_escape against the
     @raises allowlist, allowlist staleness, signature_drift against the
     committed snapshot) and exits 1 when any violation remains;
   - [--json FILE] additionally writes the findings as a single-run
     SARIF log (merged across analyzers by sarif_merge, uploaded by CI);
   - [--emit-signatures] prints the inferred public effect signatures to
     stdout (the payload of tools/dsa/signatures.expected) and exits 0;
   - [--emit-pruned-exceptions] prints the --exceptions file minus the
     entries that no longer name a live public function (the payload of
     `dune build @dsa-prune`) and exits 0.

   Run through dune:

     dune build @dsa           # analyze every module in lib/
     dune build @dsa-promote   # accept signature drift into the snapshot
     dune build @dsa-prune     # drop stale exceptions.toml entries

   See dsa_core.ml for the analysis and DESIGN.md §10 for the model. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  let exceptions = ref None in
  let signatures_expected = ref None in
  let emit = ref false in
  let emit_pruned = ref false in
  let json = ref None in
  let debug = ref false in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--exceptions" :: f :: tl ->
        exceptions := Some f;
        parse tl
    | "--signatures-expected" :: f :: tl ->
        signatures_expected := Some f;
        parse tl
    | "--json" :: f :: tl ->
        json := Some f;
        parse tl
    | "--emit-signatures" :: tl ->
        emit := true;
        parse tl
    | "--emit-pruned-exceptions" :: tl ->
        emit_pruned := true;
        parse tl
    | "--debug" :: tl ->
        debug := true;
        parse tl
    | ("--exceptions" | "--signatures-expected" | "--json") :: [] ->
        prerr_endline "dsa: option expects a file argument";
        exit 2
    | f :: tl ->
        files := f :: !files;
        parse tl
  in
  parse (List.tl (Array.to_list Sys.argv));
  let files = List.rev !files in
  if files = [] then begin
    prerr_endline
      "usage: dsa_main [--exceptions FILE] [--signatures-expected FILE] \
       [--emit-signatures] [--emit-pruned-exceptions] [--json FILE] \
       FILES.cmt[i]...";
    exit 2
  end;
  let t =
    try Dsa_core.analyze files
    with e ->
      Printf.eprintf "dsa: failed to load typed trees: %s\n"
        (Printexc.to_string e);
      exit 2
  in
  if !debug then begin
    (* dump spawn roots and nodes carrying direct effects — the raw
       inputs of the domain-safety check, for triaging its output *)
    let nodes =
      Hashtbl.fold (fun _ nd acc -> nd :: acc) t.Dsa_core.nodes []
      |> List.sort (fun a b ->
             compare a.Dsa_core.n_name b.Dsa_core.n_name)
    in
    List.iter
      (fun nd ->
        if nd.Dsa_core.n_spawn_root then
          Printf.printf "root %s (%s)\n" nd.Dsa_core.n_name
            nd.Dsa_core.n_loc;
        List.iter
          (fun (k, loc, what) ->
            Printf.printf "direct %s %s: %s (%s)\n"
              (Dsa_core.effect_name k) nd.Dsa_core.n_name what loc)
          nd.Dsa_core.n_direct)
      nodes;
    let reach = Dsa_core.spawn_reachable t in
    Printf.printf "spawn-reachable: %d nodes\n"
      (Dsa_core.SSet.cardinal reach);
    Dsa_core.SSet.iter (fun n -> Printf.printf "reach %s\n" n) reach
  end;
  if !emit then begin
    print_string
      "# cophy-dsa inferred effect signatures of public (.mli-exported)\n\
       # functions in lib/.  Regenerate + accept with `dune build \
       @dsa-promote`.\n";
    List.iter print_endline (Dsa_core.signatures t)
  end
  else if !emit_pruned then begin
    match !exceptions with
    | None ->
        prerr_endline "dsa: --emit-pruned-exceptions requires --exceptions";
        exit 2
    | Some f -> (
        try print_string (Dsa_core.prune_exceptions_toml t (read_file f))
        with Failure msg ->
          prerr_endline ("dsa: " ^ msg);
          exit 2)
  end
  else begin
    let exceptions_toml = Option.map read_file !exceptions in
    let signatures_expected =
      Option.map
        (fun f -> String.split_on_char '\n' (read_file f))
        !signatures_expected
    in
    let viols =
      try Dsa_core.run_checks ?exceptions_toml ?signatures_expected t
      with Failure msg ->
        prerr_endline ("dsa: " ^ msg);
        exit 2
    in
    Option.iter
      (fun path ->
        Ak_findings.write_sarif path ~tool:"cophy-dsa"
          ~rules:Dsa_core.all_rule_names viols)
      !json;
    List.iter (Dsa_core.pp_violation stderr) viols;
    if viols <> [] then begin
      Printf.eprintf "dsa: %d violation(s)\n" (List.length viols);
      exit 1
    end
    else
      Printf.printf "dsa: OK (%d files, %d public signatures)\n"
        (List.length files)
        (List.length (Dsa_core.signatures t))
  end
