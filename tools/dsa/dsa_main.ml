(* cophy-dsa driver.

     dsa_main [--exceptions FILE] [--signatures-expected FILE]
              [--emit-signatures] [--emit-pruned-exceptions]
              [--json FILE] CMT_OR_CMTI_FILES...

   - default mode runs the whole-program checks (domain_safety over
     parallel_map / Domain.spawn closures, exception_escape against the
     @raises allowlist, allowlist staleness, signature_drift against the
     committed snapshot) and exits 1 when any violation remains;
   - [--json FILE] additionally writes the findings as a single-run
     SARIF log (merged across analyzers by sarif_merge, uploaded by CI);
   - [--emit-signatures] prints the inferred public effect signatures to
     stdout (the payload of tools/dsa/signatures.expected) and exits 0;
   - [--emit-pruned-exceptions] prints the --exceptions file minus the
     entries that no longer name a live public function (the payload of
     `dune build @dsa-prune`) and exits 0.

   The CLI skeleton is Ak_driver, shared with the other analyzers.
   Run through dune:

     dune build @dsa           # analyze every module in lib/
     dune build @dsa-promote   # accept signature drift into the snapshot
     dune build @dsa-prune     # drop stale exceptions.toml entries

   See dsa_core.ml for the analysis and DESIGN.md §10 for the model. *)

let () =
  let d =
    Ak_driver.parse ~tool:"dsa"
      ~usage:
        "usage: dsa_main [--exceptions FILE] [--signatures-expected FILE] \
         [--emit-signatures] [--emit-pruned-exceptions] [--json FILE] \
         FILES.cmt[i]..."
      ~file_opts:[ "--exceptions"; "--signatures-expected" ]
      ~flags:[ "--emit-signatures"; "--emit-pruned-exceptions" ]
      ()
  in
  let t = Ak_driver.load d Dsa_core.analyze in
  if d.Ak_driver.debug then begin
    (* dump spawn roots and nodes carrying direct effects — the raw
       inputs of the domain-safety check, for triaging its output *)
    let nodes =
      Hashtbl.fold (fun _ nd acc -> nd :: acc) t.Dsa_core.nodes []
      |> List.sort (fun a b -> compare a.Dsa_core.n_name b.Dsa_core.n_name)
    in
    List.iter
      (fun nd ->
        if nd.Dsa_core.n_spawn_root then
          Printf.printf "root %s (%s)\n" nd.Dsa_core.n_name nd.Dsa_core.n_loc;
        List.iter
          (fun (k, loc, what) ->
            Printf.printf "direct %s %s: %s (%s)\n"
              (Dsa_core.effect_name k) nd.Dsa_core.n_name what loc)
          nd.Dsa_core.n_direct)
      nodes;
    let reach = Dsa_core.spawn_reachable t in
    Printf.printf "spawn-reachable: %d nodes\n" (Dsa_core.SSet.cardinal reach);
    Dsa_core.SSet.iter (fun n -> Printf.printf "reach %s\n" n) reach
  end;
  let exceptions = Ak_driver.opt d "--exceptions" in
  if Ak_driver.flag d "--emit-signatures" then begin
    print_string
      "# cophy-dsa inferred effect signatures of public (.mli-exported)\n\
       # functions in lib/.  Regenerate + accept with `dune build \
       @dsa-promote`.\n";
    List.iter print_endline (Dsa_core.signatures t)
  end
  else if Ak_driver.flag d "--emit-pruned-exceptions" then begin
    match exceptions with
    | None ->
        prerr_endline "dsa: --emit-pruned-exceptions requires --exceptions";
        exit 2
    | Some f -> (
        try print_string (Dsa_core.prune_exceptions_toml t (Ak_driver.read_file f))
        with Failure msg ->
          prerr_endline ("dsa: " ^ msg);
          exit 2)
  end
  else begin
    let exceptions_toml = Option.map Ak_driver.read_file exceptions in
    let signatures_expected =
      Option.map
        (fun f -> String.split_on_char '\n' (Ak_driver.read_file f))
        (Ak_driver.opt d "--signatures-expected")
    in
    let viols =
      try Dsa_core.run_checks ?exceptions_toml ?signatures_expected t
      with Failure msg ->
        prerr_endline ("dsa: " ^ msg);
        exit 2
    in
    Ak_driver.finish d ~rules:Dsa_core.all_rule_names
      ~fail:(Printf.sprintf "%d violation(s)" (List.length viols))
      ~ok:
        (Printf.sprintf "OK (%d files, %d public signatures)"
           (List.length d.Ak_driver.files)
           (List.length (Dsa_core.signatures t)))
      viols
  end
