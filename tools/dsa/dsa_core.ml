(* cophy-dsa: interprocedural domain-safety and exception-escape analysis
   over the typed ASTs (.cmt / .cmti) that dune already produces.

   Where cophy-lint (tools/lint) enforces *syntactic*, per-expression
   rules, this layer proves *whole-program* properties of lib/:

     1. domain_safety     every function transitively reachable from a
                          closure passed to [Runtime.parallel_map] or
                          [Domain.spawn] is free of [mutates_global],
                          [io] and [nondet] effects (unless justified
                          with [@dsa.allow <effect> "<why>"]).
     2. exception_escape  the inferred escaping-exception set of every
                          public (.mli-exported) function stays within
                          the checked-in allowlist
                          (tools/dsa/exceptions.toml).
     3. signature_drift   the inferred per-function effect signatures
                          match the committed snapshot
                          (tools/dsa/signatures.expected); effect
                          changes are reviewed like test output and
                          accepted with [dune build @dsa-promote].
     4. stale_allowlist   every exceptions.toml entry still names a live
                          public function; `dune build @dsa-prune` drops
                          the stale ones so the allowlists can't rot.

   Pipeline: load every .cmt (implementations) and .cmti (interfaces),
   walk the typed trees collecting per-function *direct* effects and
   call atoms, then run a fixpoint that propagates effects over the
   cross-module call graph.  Name normalization, resolution contexts,
   the justification-attribute grammar, the graph fixpoint/reachability
   machinery and the findings representation live in
   tools/analysis_kernel, shared with cophy-race (tools/race).

   Call-graph construction.  A node is a module-level value binding
   (including bindings in nested structures: [Runtime.Fx.approx]).  An
   edge g -> f is recorded whenever g's body *references* f through a
   function-typed identifier — not only direct applications.  This
   "reference closure" is what makes first-class-function flow through
   [List.map] / [parallel_map]-style higher-order arguments sound for
   reachability: the concrete closure passed into a higher-order
   combinator is referenced (and inline closures are traversed) at the
   point where it is created, so its effects are charged to the function
   that put it in flight.  The cost is attribution precision: effects of
   a closure are charged to its creator even when the closure is only
   run elsewhere.  See DESIGN.md §10 for the soundness caveats
   (escape through data structures, effects of unannotated function
   parameters).

   Exception inference tracks the set of extension constructors that can
   escape each function: direct [raise]/[failwith]/known raising stdlib
   primitives, plus callee sets filtered through the [try]/[match
   ... with exception] handlers enclosing each call site.  A catch-all
   handler swallows everything unless its body re-raises the caught
   variable (then it is transparent); [raise] of an arbitrary expression
   infers the unknown exception ["*"]. *)

module SSet = Ak_names.SSet
module SMap = Ak_names.SMap

(* ------------------------------------------------------------------ *)
(* Effects and rules                                                   *)
(* ------------------------------------------------------------------ *)

type effect_kind = Mutates_global | Io | Nondet

let effect_name = function
  | Mutates_global -> "mutates_global"
  | Io -> "io"
  | Nondet -> "nondet"

let effect_of_string = function
  | "mutates_global" -> Some Mutates_global
  | "io" -> Some Io
  | "nondet" -> Some Nondet
  | _ -> None

type rule =
  | Domain_safety
  | Exception_escape
  | Signature_drift
  | Stale_allowlist
  | Bad_attr

let rule_name = function
  | Domain_safety -> "domain_safety"
  | Exception_escape -> "exception_escape"
  | Signature_drift -> "signature_drift"
  | Stale_allowlist -> "stale_allowlist"
  | Bad_attr -> "bad_attr"

let all_rule_names =
  List.map rule_name
    [ Domain_safety; Exception_escape; Signature_drift; Stale_allowlist;
      Bad_attr ]

(* Violations are the kernel's machine-readable findings; the [--json]
   driver flag serializes them as a SARIF run. *)
type violation = Ak_findings.finding = {
  rule : string;
  where : string;
  message : string;
  path : string list;
}

let pp_violation = Ak_findings.pp

(* ------------------------------------------------------------------ *)
(* Analysis state                                                      *)
(* ------------------------------------------------------------------ *)

(* Handler context recorded at a call/raise site, innermost first. *)
type mask = { caught : SSet.t; catch_all : bool; reraises : bool }

type atom =
  | Call of string * mask list  (* reference to a function-typed node *)
  | Raise of string * mask list  (* "*" = statically unknown exception *)

type node = {
  n_name : string;
  n_loc : string;  (* "file:line" of the defining binding *)
  mutable n_function : bool;  (* the bound value has arrow type *)
  mutable n_spawn_root : bool;  (* passed to parallel_map / Domain.spawn *)
  (* direct effects: (effect, loc, what) *)
  mutable n_direct : (effect_kind * string * string) list;
  mutable n_atoms : atom list;
  (* [@dsa.allow <effect> "<why>"] justifications in scope at the binding *)
  mutable n_allows : (effect_kind * string) list;
  (* fixpoint results *)
  mutable n_effects : (effect_kind * string) list;  (* effect, origin node *)
  mutable n_raises : SSet.t;
}

type t = {
  nodes : (string, node) Hashtbl.t;
  (* public (.mli-exported) value names, from .cmti interfaces *)
  mutable exported : SSet.t;
  mutable violations : violation list;
}

let create () =
  { nodes = Hashtbl.create 512; exported = SSet.empty; violations = [] }

let report ?path t rule where fmt =
  Printf.ksprintf
    (fun msg ->
      t.violations <-
        Ak_findings.make ?path (rule_name rule) where msg :: t.violations)
    fmt

let node t name loc =
  match Hashtbl.find_opt t.nodes name with
  | Some n -> n
  | None ->
      let n =
        {
          n_name = name;
          n_loc = loc;
          n_function = false;
          n_spawn_root = false;
          n_direct = [];
          n_atoms = [];
          n_allows = [];
          n_effects = [];
          n_raises = SSet.empty;
        }
      in
      Hashtbl.add t.nodes name n;
      n

(* ------------------------------------------------------------------ *)
(* Builtin effect / exception tables                                   *)
(* ------------------------------------------------------------------ *)

(* Names are matched after [Ak_names.normalize] (so without a "Stdlib."
   prefix). *)

let io_exact =
  SSet.of_list
    [
      "open_in"; "open_in_bin"; "open_in_gen"; "open_out"; "open_out_bin";
      "open_out_gen"; "close_in"; "close_in_noerr"; "close_out";
      "close_out_noerr"; "input_line"; "input_char"; "input_byte";
      "input_value"; "really_input"; "really_input_string"; "input";
      "output"; "output_string"; "output_char"; "output_byte"; "output_bytes";
      "output_substring"; "output_value"; "flush"; "flush_all";
      "print_string"; "print_char"; "print_int"; "print_float";
      "print_endline"; "print_newline"; "print_bytes"; "prerr_string";
      "prerr_char"; "prerr_int"; "prerr_float"; "prerr_endline";
      "prerr_newline"; "prerr_bytes"; "read_line"; "read_int";
      "read_int_opt"; "read_float"; "read_float_opt"; "stdin"; "stdout";
      "stderr"; "exit"; "at_exit"; "Printf.printf"; "Printf.eprintf";
      "Format.printf"; "Format.eprintf"; "Format.print_string";
      "Format.std_formatter"; "Format.err_formatter"; "Fmt.pr"; "Fmt.epr";
      "Fmt.stdout"; "Fmt.stderr"; "Sys.command"; "Sys.remove"; "Sys.rename";
      "Sys.getenv"; "Sys.getenv_opt"; "Sys.file_exists"; "Sys.is_directory";
      "Sys.readdir"; "Sys.chdir"; "Sys.getcwd"; "Sys.mkdir"; "Sys.rmdir";
      "Filename.temp_file"; "Filename.open_temp_file";
    ]

let io_prefixes =
  [ "Unix."; "In_channel."; "Out_channel."; "Logs." ]

let nondet_exact =
  SSet.of_list
    [
      "Unix.gettimeofday"; "Unix.time"; "Sys.time"; "Domain.self";
      (* order-sensitive hash-table enumeration: results depend on
         Hashtbl.hash bucket layout *)
      "Hashtbl.iter"; "Hashtbl.fold";
    ]

(* Random.* uses the implicit global PRNG state; Random.State.* with a
   caller-threaded seeded state is deterministic and sanctioned. *)
let is_nondet name =
  SSet.mem name nondet_exact
  || (Ak_names.has_prefix ~prefix:"Random." name
     && not (Ak_names.has_prefix ~prefix:"Random.State." name))

let is_io name =
  SSet.mem name io_exact
  || List.exists
       (fun p ->
         String.length name > String.length p
         && Ak_names.has_prefix ~prefix:p name
         && not (SSet.mem name nondet_exact))
       io_prefixes

(* Stdlib functions with a documented raising behaviour.  Array /
   string / Bytes indexing (Invalid_argument on out-of-bounds) is
   deliberately not modelled: every index expression would infer it and
   the allowlists would drown in noise — a soundness caveat documented
   in DESIGN.md §10. *)
let raising_builtins =
  [
    ("failwith", "Failure");
    ("invalid_arg", "Invalid_argument");
    ("int_of_string", "Failure");
    ("float_of_string", "Failure");
    ("bool_of_string", "Invalid_argument");
    ("List.hd", "Failure");
    ("List.tl", "Failure");
    ("List.nth", "Failure");
    ("List.find", "Not_found");
    ("List.assoc", "Not_found");
    ("List.combine", "Invalid_argument");
    ("List.map2", "Invalid_argument");
    ("List.iter2", "Invalid_argument");
    ("List.fold_left2", "Invalid_argument");
    ("Option.get", "Invalid_argument");
    ("Hashtbl.find", "Not_found");
    ("Sys.getenv", "Not_found");
    ("Queue.pop", "Queue.Empty");
    ("Queue.take", "Queue.Empty");
    ("Queue.peek", "Queue.Empty");
    ("Stack.pop", "Stack.Empty");
    ("Stack.top", "Stack.Empty");
  ]

(* In-place mutators: flagged as [mutates_global] when their first
   positional argument resolves to a module-level binding (mutating
   local state is invisible from outside and stays pure). *)
let mutator_heads =
  SSet.of_list
    [
      ":="; "incr"; "decr"; "Hashtbl.add"; "Hashtbl.replace";
      "Hashtbl.remove"; "Hashtbl.reset"; "Hashtbl.clear"; "Hashtbl.add_seq";
      "Hashtbl.replace_seq"; "Hashtbl.filter_map_inplace"; "Queue.push";
      "Queue.add"; "Queue.pop"; "Queue.take"; "Queue.clear"; "Queue.transfer";
      "Stack.push"; "Stack.pop"; "Stack.clear"; "Buffer.add_string";
      "Buffer.add_char"; "Buffer.add_bytes"; "Buffer.add_substring";
      "Buffer.add_subbytes"; "Buffer.add_buffer"; "Buffer.add_channel";
      "Buffer.clear"; "Buffer.reset"; "Buffer.truncate"; "Array.set";
      "Array.fill"; "Array.blit"; "Array.sort"; "Array.fast_sort";
      "Array.stable_sort"; "Array.unsafe_set"; "Bytes.set"; "Bytes.fill";
      "Bytes.blit"; "Bytes.unsafe_set";
    ]

(* Spawn points: a function-valued argument handed to one of these runs
   on another domain. *)
let spawn_points = SSet.of_list [ "Runtime.parallel_map"; "Domain.spawn" ]

let is_spawn_point name =
  SSet.mem name spawn_points
  || (* intra-library reference to the runtime's own entry point *)
  Ak_names.has_suffix ~suffix:".parallel_map" name

(* ------------------------------------------------------------------ *)
(* Typedtree helpers                                                   *)
(* ------------------------------------------------------------------ *)

open Typedtree

let loc_string = Ak_resolve.loc_string
let is_arrow = Ak_resolve.is_arrow

(* [@dsa.allow <effect> "<justification>"] payloads.  The justification
   string is mandatory: an unexplained suppression is a bad_attr. *)
let parse_allow t (attrs : Parsetree.attributes) ~where =
  let parsed =
    Ak_attr.parse ~name:"dsa.allow"
      ~valid:(fun id -> effect_of_string id <> None)
      attrs
  in
  List.iter (fun msg -> report t Bad_attr where "%s" msg) parsed.Ak_attr.malformed;
  List.filter_map
    (fun (id, why) ->
      Option.map (fun k -> (k, why)) (effect_of_string id))
    parsed.Ak_attr.allows

(* ------------------------------------------------------------------ *)
(* Per-compilation-unit collection                                     *)
(* ------------------------------------------------------------------ *)

type unit_ctx = { an : t; rctx : Ak_resolve.ctx }

let resolve_value ctx p = Ak_resolve.resolve_value ctx.rctx p
let resolve_exn ctx p = Ak_resolve.resolve_exn ctx.rctx p

(* Pre-scan of try/match handler cases: which constructors are caught,
   is there a catch-all, and does any catch-all body re-raise the caught
   variable (then the handler is transparent for escape analysis). *)
let scan_handlers ctx (cases : value case list) =
  let caught = ref SSet.empty in
  let catch_all = ref false in
  let reraises = ref false in
  let rec pat_info (p : pattern) =
    match p.pat_desc with
    | Tpat_construct (_, cd, _, _) -> (
        match cd.Types.cstr_tag with
        | Types.Cstr_extension (path, _) ->
            caught := SSet.add (resolve_exn ctx path) !caught
        | _ -> ())
    | Tpat_or (a, b, _) ->
        pat_info a;
        pat_info b
    | Tpat_alias (p', _, _) -> pat_info p'
    | Tpat_any | Tpat_var _ -> catch_all := true
    | _ -> ()
  in
  let bound_var (p : pattern) =
    let rec go (p : pattern) =
      match p.pat_desc with
      | Tpat_var (id, _) -> Some id
      | Tpat_alias (_, id, _) -> Some id
      | Tpat_or (a, _, _) -> go a
      | _ -> None
    in
    go p
  in
  List.iter
    (fun (c : value case) ->
      pat_info c.c_lhs;
      match bound_var c.c_lhs with
      | None -> ()
      | Some id ->
          (* does the handler body re-raise [id]? *)
          let found = ref false in
          let super = Tast_iterator.default_iterator in
          let expr self (e : expression) =
            (match e.exp_desc with
            | Texp_apply
                ( { exp_desc = Texp_ident (fp, _, _); _ },
                  (_, Some { exp_desc = Texp_ident (Path.Pident aid, _, _); _ })
                  :: _ )
              when Ident.same aid id ->
                let fname =
                  match resolve_value ctx fp with Some n -> n | None -> ""
                in
                if
                  fname = "raise" || fname = "raise_notrace"
                  || fname = "Printexc.raise_with_backtrace"
                then found := true
            | Texp_apply
                ( { exp_desc = Texp_ident (fp, _, _); _ },
                  [ _; (_, Some { exp_desc = Texp_ident (Path.Pident aid, _, _); _ }) ] )
              when Ident.same aid id && Path.name fp = "Printexc.raise_with_backtrace"
              ->
                found := true
            | _ -> ());
            super.expr self e
          in
          let it = { super with expr } in
          it.expr it c.c_rhs;
          if !found then reraises := true)
    cases;
  { caught = !caught; catch_all = !catch_all; reraises = !reraises }

(* Handler info for [match ... with exception E -> ...] cases. *)
let scan_exception_handlers ctx (cases : computation case list) =
  let exc_cases = ref [] in
  let has_exc = ref false in
  List.iter
    (fun (c : computation case) ->
      let rec split (p : computation general_pattern) =
        match p.pat_desc with
        | Tpat_exception vp ->
            has_exc := true;
            exc_cases :=
              { c_lhs = vp; c_guard = c.c_guard; c_rhs = c.c_rhs }
              :: !exc_cases
        | Tpat_or (a, b, _) ->
            split a;
            split b
        | _ -> ()
      in
      split c.c_lhs)
    cases;
  if !has_exc then Some (scan_handlers ctx (List.rev !exc_cases)) else None

(* Collect the atoms and direct effects of one node body. *)
let rec collect_body ctx ~(nd : node) ~allows expr0 =
  let masks : mask list ref = ref [] in
  (* identifiers bound to a caught exception by an enclosing handler:
     re-raising one is modeled by that handler's [reraises] mask, not as
     a fresh statically-unknown raise *)
  let handler_ids : Ident.t list ref = ref [] in
  let rec exn_bound_ids (p : pattern) acc =
    match p.pat_desc with
    | Tpat_var (id, _) -> id :: acc
    | Tpat_alias (p', id, _) -> exn_bound_ids p' (id :: acc)
    | Tpat_or (a, b, _) -> exn_bound_ids a (exn_bound_ids b acc)
    | _ -> acc
  in
  let an = ctx.an in
  let allowed k = List.mem_assoc k allows || List.mem_assoc k nd.n_allows in
  let direct k loc what =
    if not (allowed k) then nd.n_direct <- (k, loc, what) :: nd.n_direct
  in
  let add_call name = nd.n_atoms <- Call (name, !masks) :: nd.n_atoms in
  let add_raise exn = nd.n_atoms <- Raise (exn, !masks) :: nd.n_atoms in
  (* effects of referencing a global identifier *)
  let reference name loc (vd : Types.value_description) =
    if is_io name then direct Io loc name
    else if is_nondet name then direct Nondet loc name
    else begin
      (match List.assoc_opt name raising_builtins with
      | Some exn -> add_raise exn
      | None -> ());
      if is_arrow vd.Types.val_type then add_call name
    end
  in
  let super = Tast_iterator.default_iterator in
  let rec expr self (e : expression) =
    let e_allows = parse_allow an e.exp_attributes ~where:(loc_string e.exp_loc) in
    if e_allows = [] then expr_inner self e
    else begin
      (* expression-scoped allow: push onto the node's allow list for the
         duration of this subtree only *)
      let saved = nd.n_allows in
      nd.n_allows <- e_allows @ saved;
      Fun.protect
        ~finally:(fun () -> nd.n_allows <- saved)
        (fun () -> expr_inner self e)
    end
  and expr_inner self (e : expression) =
    match e.exp_desc with
    | Texp_ident (p, _, vd) -> (
        match resolve_value ctx p with
        | Some name -> reference name (loc_string e.exp_loc) vd
        | None -> ())
    | Texp_apply ({ exp_desc = Texp_ident (fp, _, fvd); _ }, args) -> (
        let fname = resolve_value ctx fp in
        match fname with
        | Some ("raise" | "raise_notrace") -> (
            match args with
            | [ (_, Some arg) ] -> raise_arg self arg
            | _ ->
                add_raise "*";
                List.iter (fun (_, a) -> Option.iter (expr self) a) args)
        | Some "Printexc.raise_with_backtrace" -> (
            match args with
            | (_, Some arg) :: rest ->
                raise_arg self arg;
                List.iter (fun (_, a) -> Option.iter (expr self) a) rest
            | _ -> add_raise "*")
        | Some name when is_spawn_point name ->
            reference name (loc_string e.exp_loc) fvd;
            spawn_site self e.exp_loc args
        | Some name when SSet.mem name mutator_heads ->
            (* the mutated value is the first positional argument —
               except for the sort family, whose first argument is the
               comparator and whose second is the array *)
            let mutated =
              match name with
              | "Array.sort" | "Array.fast_sort" | "Array.stable_sort" ->
                  nth_positional 1 args
              | _ -> first_positional args
            in
            (match mutated with
            | Some { exp_desc = Texp_ident (tp, _, _); exp_loc; _ } -> (
                match resolve_value ctx tp with
                | Some target
                  when Hashtbl.mem an.nodes target
                       || (match tp with Path.Pdot _ -> true | _ -> false) ->
                    direct Mutates_global (loc_string exp_loc)
                      (Printf.sprintf "%s on module-level %s" name target)
                | _ -> ())
            | _ -> ());
            reference name (loc_string e.exp_loc) fvd;
            List.iter (fun (_, a) -> Option.iter (expr self) a) args
        | _ ->
            reference
              (Option.value fname ~default:"")
              (loc_string e.exp_loc) fvd;
            List.iter (fun (_, a) -> Option.iter (expr self) a) args)
    | Texp_try (body, handlers) ->
        let m = scan_handlers ctx handlers in
        masks := m :: !masks;
        expr self body;
        masks := List.tl !masks;
        List.iter (fun (c : value case) ->
            Option.iter (expr self) c.c_guard;
            let saved = !handler_ids in
            handler_ids := exn_bound_ids c.c_lhs saved;
            expr self c.c_rhs;
            handler_ids := saved)
          handlers
    | Texp_match (scrut, cases, _) ->
        (match scan_exception_handlers ctx cases with
        | Some m ->
            masks := m :: !masks;
            expr self scrut;
            masks := List.tl !masks
        | None -> expr self scrut);
        let rec comp_exn_ids (p : computation general_pattern) acc =
          match p.pat_desc with
          | Tpat_exception vp -> exn_bound_ids vp acc
          | Tpat_or (a, b, _) -> comp_exn_ids a (comp_exn_ids b acc)
          | _ -> acc
        in
        List.iter
          (fun (c : computation case) ->
            Option.iter (expr self) c.c_guard;
            let saved = !handler_ids in
            handler_ids := comp_exn_ids c.c_lhs saved;
            expr self c.c_rhs;
            handler_ids := saved)
          cases
    | Texp_assert
        ({ exp_desc = Texp_construct (_, { cstr_name = "false"; _ }, _); _ }, _)
      ->
        (* [assert false] marks unreachable branches; inferring
           Assert_failure for them would poison every allowlist. *)
        ()
    | Texp_assert _ ->
        add_raise "Assert_failure";
        super.expr self e
    | Texp_let (_, vbs, body) ->
        (* Named local functions become their own call-graph nodes.
           Raises inside a function body escape at *call* sites, not at
           the definition, so (a) masks enclosing the definition must
           not filter them and (b) masks enclosing a call like
           [try loop () with E -> ...] must — exactly what per-node
           collection plus inter-node mask propagation gives.  Inlining
           them (the previous behaviour) got both wrong ways. *)
        let is_local_fn (vb : value_binding) =
          match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
          | Tpat_var _, Texp_function _ -> true
          | _ -> false
        in
        let fn_vbs, other_vbs = List.partition is_local_fn vbs in
        (* register the whole group first: let rec bindings are mutually
           referencing *)
        let subs =
          List.map
            (fun (vb : value_binding) ->
              let id =
                match vb.vb_pat.pat_desc with
                | Tpat_var (id, _) -> id
                | _ -> assert false
              in
              let base = nd.n_name ^ "." ^ Ident.name id in
              let cname =
                if Hashtbl.mem an.nodes base then
                  nd.n_name ^ "." ^ Ident.unique_name id
                else base
              in
              Hashtbl.replace ctx.rctx.Ak_resolve.values
                (Ident.unique_name id) cname;
              let sub = node an cname (loc_string vb.vb_loc) in
              sub.n_function <- true;
              sub.n_allows <-
                parse_allow an vb.vb_attributes
                  ~where:(loc_string vb.vb_loc)
                @ sub.n_allows;
              (vb, sub))
            fn_vbs
        in
        List.iter
          (fun ((vb : value_binding), sub) ->
            collect_body ctx ~nd:sub ~allows:sub.n_allows vb.vb_expr)
          subs;
        List.iter (fun (vb : value_binding) -> expr self vb.vb_expr)
          other_vbs;
        expr self body
    | Texp_setfield (target, _, _, _) ->
        (match target.exp_desc with
        | Texp_ident (tp, _, _) -> (
            match resolve_value ctx tp with
            | Some tname
              when Hashtbl.mem an.nodes tname
                   || (match tp with Path.Pdot _ -> true | _ -> false) ->
                direct Mutates_global
                  (loc_string e.exp_loc)
                  (Printf.sprintf "field assignment on module-level %s" tname)
            | _ -> ())
        | _ -> ());
        super.expr self e
    | _ -> super.expr self e
  and raise_arg self (arg : expression) =
    match arg.exp_desc with
    | Texp_construct (_, cd, cargs) ->
        (match cd.Types.cstr_tag with
        | Types.Cstr_extension (path, _) -> add_raise (resolve_exn ctx path)
        | _ -> add_raise "*");
        List.iter (expr self) cargs
    | Texp_ident (Path.Pident id, _, _)
      when List.exists (Ident.same id) !handler_ids ->
        (* re-raise of the caught variable: the enclosing handler's
           [reraises] mask already lets the body's exceptions through *)
        ()
    | _ ->
        (* raising a computed exception value; unknown statically *)
        add_raise "*";
        expr self arg
  and spawn_site self loc args =
    (* the first positional argument of a spawn point runs on another
       domain: analyze it under its own (root) node *)
    let f_arg = first_positional args in
    List.iter
      (fun (_, a) ->
        match (a, f_arg) with
        | Some arg, Some fa when arg == fa -> (
            match arg.exp_desc with
            | Texp_ident (p, _, _) -> (
                match resolve_value ctx p with
                | Some name -> (
                    add_call name;
                    match Hashtbl.find_opt an.nodes name with
                    | Some n -> n.n_spawn_root <- true
                    | None ->
                        (* cross-unit reference: mark via a stub node
                           that the defining unit will fill in *)
                        let n = node an name (loc_string loc) in
                        n.n_spawn_root <- true)
                | None ->
                    (* a local function value: effects were attributed to
                       the node that created it; treat the enclosing
                       function as the root conservatively *)
                    nd.n_spawn_root <- true)
            | _ ->
                let root_name =
                  Printf.sprintf "%s{closure@%s}" nd.n_name (loc_string loc)
                in
                let root = node an root_name (loc_string loc) in
                root.n_function <- true;
                root.n_spawn_root <- true;
                collect_into ctx root arg;
                (* the enclosing function still builds + runs the spawn:
                   keep an edge so reachability from outer roots passes
                   through *)
                add_call root_name)
        | Some arg, _ -> expr self arg
        | None, _ -> ())
      args
  and first_positional args = nth_positional 0 args
  and nth_positional n args =
    let rec go n = function
      | (Asttypes.Nolabel, (Some _ as a)) :: tl ->
          if n = 0 then a else go (n - 1) tl
      | _ :: tl -> go n tl
      | [] -> None
    in
    go n args
  in
  let it = { super with expr } in
  it.expr it expr0

(* Collect [arg] (typically an inline closure at a spawn site) into its
   own node. *)
and collect_into ctx root (arg : expression) =
  collect_body ctx ~nd:root ~allows:[] arg

(* ------------------------------------------------------------------ *)
(* Structure walk: define nodes for module-level bindings              *)
(* ------------------------------------------------------------------ *)

let pattern_idents = Ak_resolve.pattern_idents

let rec walk_structure ctx prefix (str : structure) =
  (* pass 1 (kernel): register every module-level value and submodule
     name so forward references resolve *)
  Ak_resolve.register_items ctx.rctx prefix str;
  (* pass 2: analyze bodies *)
  List.iter
    (fun (item : structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter
            (fun (vb : value_binding) ->
              let allows =
                parse_allow ctx.an vb.vb_attributes
                  ~where:(loc_string vb.vb_loc)
              in
              match pattern_idents vb.vb_pat with
              | [] ->
                  (* pattern binds no name (e.g. [let () = ...]): module
                     initialization effects *)
                  let nd =
                    node ctx.an (prefix ^ ".(init)") (loc_string vb.vb_loc)
                  in
                  nd.n_allows <- allows @ nd.n_allows;
                  collect_body ctx ~nd ~allows vb.vb_expr
              | idents ->
                  let _, name0 = List.hd idents in
                  let nd =
                    node ctx.an (prefix ^ "." ^ name0) (loc_string vb.vb_loc)
                  in
                  nd.n_allows <- allows @ nd.n_allows;
                  nd.n_function <- is_arrow vb.vb_expr.exp_type;
                  collect_body ctx ~nd ~allows vb.vb_expr;
                  (* the other idents of a destructuring binding alias the
                     first one's node (one Call edge each), so effects of
                     the shared right-hand side flow whichever name a
                     caller references *)
                  List.iter
                    (fun (_, n) ->
                      if n <> name0 then begin
                        let alias =
                          node ctx.an (prefix ^ "." ^ n) (loc_string vb.vb_loc)
                        in
                        alias.n_atoms <-
                          Call (nd.n_name, []) :: alias.n_atoms
                      end)
                    (List.tl idents))
            vbs
      | Tstr_module mb -> walk_module ctx prefix mb
      | Tstr_recmodule mbs -> List.iter (walk_module ctx prefix) mbs
      | Tstr_eval (e, attrs) ->
          let allows =
            parse_allow ctx.an attrs ~where:(loc_string item.str_loc)
          in
          let nd = node ctx.an (prefix ^ ".(init)") (loc_string item.str_loc) in
          nd.n_allows <- allows @ nd.n_allows;
          collect_body ctx ~nd ~allows e
      | _ -> ())
    str.str_items

and walk_module ctx prefix (mb : module_binding) =
  match mb.mb_name.Location.txt with
  | Some name -> (
      match (Ak_resolve.strip_module_constraints mb.mb_expr).mod_desc with
      | Tmod_structure str -> walk_structure ctx (prefix ^ "." ^ name) str
      | _ -> ())
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Interface walk: exported value names                                *)
(* ------------------------------------------------------------------ *)

let rec walk_signature t prefix (sg : signature) =
  List.iter
    (fun (item : signature_item) ->
      match item.sig_desc with
      | Tsig_value vd ->
          t.exported <-
            SSet.add (prefix ^ "." ^ vd.val_name.Location.txt) t.exported
      | Tsig_module md -> (
          match (md.md_name.Location.txt, md.md_type.mty_desc) with
          | Some name, Tmty_signature sub ->
              walk_signature t (prefix ^ "." ^ name) sub
          | _ -> ())
      | _ -> ())
    sg.sig_items

(* ------------------------------------------------------------------ *)
(* Loading                                                             *)
(* ------------------------------------------------------------------ *)

let load_file t path =
  match Ak_cmt.load path with
  | Ak_cmt.Impl (prefix, str) ->
      let ctx = { an = t; rctx = Ak_resolve.create ~unit_prefix:prefix } in
      walk_structure ctx prefix str
  | Ak_cmt.Intf (prefix, sg) -> walk_signature t prefix sg
  | Ak_cmt.Other -> ()

(* ------------------------------------------------------------------ *)
(* Fixpoint                                                            *)
(* ------------------------------------------------------------------ *)

let apply_mask raises m =
  if m.reraises then raises
  else if m.catch_all then SSet.empty
  else SSet.diff raises m.caught

let apply_masks raises masks = List.fold_left apply_mask raises masks

let solve t =
  (* seed *)
  Hashtbl.iter
    (fun _ nd ->
      nd.n_effects <-
        List.map (fun (k, _, _) -> (k, nd.n_name)) nd.n_direct
        |> List.sort_uniq compare;
      nd.n_raises <-
        List.fold_left
          (fun acc -> function
            | Raise (e, masks) -> SSet.union acc (apply_masks (SSet.singleton e) masks)
            | Call _ -> acc)
          SSet.empty nd.n_atoms)
    t.nodes;
  (* iterate: effects propagate unmasked, raises through handler masks;
     a node's own [@dsa.allow] clears the allowed effect at that node
     (the justification stops propagation at its source). *)
  Ak_graph.fixpoint (fun ~mark ->
      Hashtbl.iter
        (fun _ nd ->
          List.iter
            (function
              | Call (callee, masks) -> (
                  match Hashtbl.find_opt t.nodes callee with
                  | None -> ()
                  | Some c ->
                      List.iter
                        (fun (k, origin) ->
                          if
                            (not (List.mem_assoc k nd.n_allows))
                            && not
                                 (List.exists (fun (k', _) -> k' = k)
                                    nd.n_effects)
                          then begin
                            nd.n_effects <- (k, origin) :: nd.n_effects;
                            mark ()
                          end)
                        c.n_effects;
                      let masked = apply_masks c.n_raises masks in
                      if not (SSet.subset masked nd.n_raises) then begin
                        nd.n_raises <- SSet.union nd.n_raises masked;
                        mark ()
                      end)
              | Raise _ -> ())
            nd.n_atoms)
        t.nodes)

(* ------------------------------------------------------------------ *)
(* Check 1: domain safety                                              *)
(* ------------------------------------------------------------------ *)

(* Call-edge successors of a node, restricted to known nodes. *)
let succs t name =
  match Hashtbl.find_opt t.nodes name with
  | None -> []
  | Some nd ->
      List.filter_map
        (function
          | Call (callee, _) when Hashtbl.mem t.nodes callee -> Some callee
          | _ -> None)
        nd.n_atoms

let spawn_roots t =
  Hashtbl.fold (fun _ nd acc -> if nd.n_spawn_root then nd.n_name :: acc else acc)
    t.nodes []
  |> List.sort compare

(* Everything reachable over call edges from the spawn roots — the
   closure set whose effects the domain-safety check audits.  Exposed
   for [dsa_main --debug] and the test suite. *)
let spawn_reachable t =
  Ak_graph.reach ~roots:(SSet.of_list (spawn_roots t)) ~succs:(succs t)

let check_domain_safety t =
  (* BFS from spawn roots over call edges, keeping the discovery path so
     violations name the chain from the spawn site. *)
  let paths = Ak_graph.reach_paths ~roots:(spawn_roots t) ~succs:(succs t) in
  let flagged = ref [] in
  SSet.iter
    (fun name ->
      match Hashtbl.find_opt t.nodes name with
      | None -> ()
      | Some nd ->
          List.iter
            (fun (k, loc, what) -> flagged := (nd, k, loc, what) :: !flagged)
            nd.n_direct)
    paths.Ak_graph.visited;
  List.iter
    (fun (nd, k, loc, what) ->
      report t Domain_safety loc
        ~path:(Ak_graph.chain paths nd.n_name)
        "%s effect (%s) in %s, reachable from a parallel_map/Domain.spawn \
         closure via %s; make it effect-free or justify with [@dsa.allow %s \
         \"...\"]"
        (effect_name k) what nd.n_name
        (Ak_graph.chain_string paths nd.n_name)
        (effect_name k))
    (List.sort compare !flagged)

(* ------------------------------------------------------------------ *)
(* Check 2: exception escape                                           *)
(* ------------------------------------------------------------------ *)

(* exceptions.toml: a TOML subset —

     # comment
     ["Lp.Simplex"]
     solve = ["Lp.Lu.Singular", "Failure"]

   Table headers (quoted or bare) set the module prefix; each key line
   declares the @raises allowlist of one exported function.  "*" allows
   any exception (use sparingly). *)

let strip_ws s =
  let n = String.length s in
  let b = ref 0 and e = ref n in
  while !b < n && (s.[!b] = ' ' || s.[!b] = '\t') do incr b done;
  while !e > !b && (s.[!e - 1] = ' ' || s.[!e - 1] = '\t' || s.[!e - 1] = '\r')
  do decr e done;
  String.sub s !b (!e - !b)

let unquote s =
  let n = String.length s in
  if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then String.sub s 1 (n - 2)
  else s

let strip_comment line =
  (* a # outside double quotes starts a comment *)
  let buf = Buffer.create (String.length line) in
  let in_str = ref false in
  (try
     String.iter
       (fun c ->
         if c = '"' then in_str := not !in_str
         else if c = '#' && not !in_str then raise Exit;
         Buffer.add_char buf c)
       line
   with Exit -> ());
  Buffer.contents buf

(* Structure of one toml line, shared by the parser and the pruner. *)
type toml_line =
  | Blank
  | Header of string  (* table prefix *)
  | Entry of string * string list  (* key, exceptions *)

let classify_toml_line ~lineno line =
  let stripped = strip_ws (strip_comment line) in
  if stripped = "" then Blank
  else if stripped.[0] = '[' then begin
    let n = String.length stripped in
    if n < 2 || stripped.[n - 1] <> ']' then
      failwith
        (Printf.sprintf "exceptions.toml:%d: malformed table header" lineno);
    Header (unquote (strip_ws (String.sub stripped 1 (n - 2))))
  end
  else
    match String.index_opt stripped '=' with
    | None ->
        failwith
          (Printf.sprintf "exceptions.toml:%d: expected key = [..]" lineno)
    | Some eq ->
        let key = unquote (strip_ws (String.sub stripped 0 eq)) in
        let value =
          strip_ws (String.sub stripped (eq + 1) (String.length stripped - eq - 1))
        in
        let n = String.length value in
        if n < 2 || value.[0] <> '[' || value.[n - 1] <> ']' then
          failwith
            (Printf.sprintf "exceptions.toml:%d: value must be [\"Exn\", ...]"
               lineno);
        let inner = String.sub value 1 (n - 2) in
        let exns =
          String.split_on_char ',' inner
          |> List.map (fun s -> unquote (strip_ws s))
          |> List.filter (fun s -> s <> "")
        in
        Entry (key, exns)

let parse_exceptions_toml content =
  let table = Hashtbl.create 64 in
  let prefix = ref "" in
  String.split_on_char '\n' content
  |> List.iteri (fun lineno line ->
         match classify_toml_line ~lineno:(lineno + 1) line with
         | Blank -> ()
         | Header p -> prefix := p
         | Entry (key, exns) ->
             let full = if !prefix = "" then key else !prefix ^ "." ^ key in
             Hashtbl.replace table full (SSet.of_list exns));
  table

let check_exception_escape t allowlist =
  let entries =
    Hashtbl.fold (fun _ nd acc -> nd :: acc) t.nodes []
    |> List.filter (fun nd -> SSet.mem nd.n_name t.exported)
    |> List.sort (fun a b -> compare a.n_name b.n_name)
  in
  List.iter
    (fun nd ->
      let allowed =
        match Hashtbl.find_opt allowlist nd.n_name with
        | Some s -> s
        | None -> SSet.empty
      in
      if not (SSet.mem "*" allowed) then
        SSet.iter
          (fun exn ->
            if not (SSet.mem exn allowed) then
              report t Exception_escape nd.n_loc
                "%s can escape public %s but is not in its @raises allowlist \
                 (tools/dsa/exceptions.toml)%s"
                (if exn = "*" then "a statically-unknown exception" else exn)
                nd.n_name
                (if SSet.is_empty allowed then " (no entry declared)" else ""))
          nd.n_raises)
    entries

(* ------------------------------------------------------------------ *)
(* Check 4: allowlist staleness                                        *)
(* ------------------------------------------------------------------ *)

(* An exceptions.toml entry is stale when it no longer names a live
   public (.mli-exported) function: the covered function was renamed,
   moved, or deleted.  Stale entries are dead weight that misleads a
   reviewer into believing an escape path still exists, so — like a
   promoted-but-drifted signature snapshot — they fail the build.
   `dune build @dsa-prune` rewrites the file without them. *)
let stale_allowlist_keys t allowlist =
  Hashtbl.fold (fun key _ acc -> key :: acc) allowlist []
  |> List.filter (fun key -> not (SSet.mem key t.exported))
  |> List.sort compare

let check_allowlist_staleness t allowlist =
  List.iter
    (fun key ->
      report t Stale_allowlist "exceptions.toml"
        "allowlist entry %s names no live public function; drop it (or run \
         `dune build @dsa-prune` to prune every stale entry)"
        key)
    (stale_allowlist_keys t allowlist)

(* The pruned exceptions.toml payload: the committed file minus entries
   for dead functions (tables whose entries all die lose their header
   too).  Comments and blank lines survive; the rewrite is line-based so
   a hand-formatted file stays recognizable. *)
let prune_exceptions_toml t content =
  let out = Buffer.create (String.length content) in
  let prefix = ref "" in
  (* lines held back since the last table header (header itself,
     comments, blanks), in reverse; flushed on the first live entry so a
     table whose keys are all stale vanishes wholesale — comments and
     trailing blank line included *)
  let pending : string list option ref = ref None in
  let emit line = Buffer.add_string out (line ^ "\n") in
  String.split_on_char '\n' content
  |> List.iteri (fun lineno line ->
         match classify_toml_line ~lineno:(lineno + 1) line with
         | Blank -> (
             match !pending with
             | None -> emit line
             | Some ls -> pending := Some (line :: ls))
         | Header p ->
             prefix := p;
             pending := Some [ line ]
         | Entry (key, _) ->
             let full = if !prefix = "" then key else !prefix ^ "." ^ key in
             if SSet.mem full t.exported then begin
               (match !pending with
               | Some ls ->
                   List.iter emit (List.rev ls);
                   pending := None
               | None -> ());
               emit line
             end);
  (* normalize: the committed file ends with exactly one newline *)
  let s = Buffer.contents out in
  let n = ref (String.length s) in
  while !n > 0 && s.[!n - 1] = '\n' do decr n done;
  String.sub s 0 !n ^ "\n"

(* ------------------------------------------------------------------ *)
(* Check 3: signature drift                                            *)
(* ------------------------------------------------------------------ *)

let effect_cell nd k =
  if List.exists (fun (k', _) -> k' = k) nd.n_effects then "yes"
  else if List.mem_assoc k nd.n_allows then "allowed"
  else "-"

let signature_line nd =
  Printf.sprintf "%s : mutates_global=%s io=%s nondet=%s raises={%s}"
    nd.n_name
    (effect_cell nd Mutates_global)
    (effect_cell nd Io) (effect_cell nd Nondet)
    (String.concat "," (SSet.elements nd.n_raises))

(* Emitted snapshot: every public function, sorted, one line each. *)
let signatures t =
  Hashtbl.fold (fun _ nd acc -> nd :: acc) t.nodes []
  |> List.filter (fun nd -> SSet.mem nd.n_name t.exported && nd.n_function)
  |> List.sort (fun a b -> compare a.n_name b.n_name)
  |> List.map signature_line

let check_signature_drift t ~expected =
  let actual = signatures t in
  let key line =
    match String.index_opt line ':' with
    | Some i -> String.trim (String.sub line 0 i)
    | None -> line
  in
  let to_map lines =
    List.fold_left
      (fun m line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then m else SMap.add (key line) line m)
      SMap.empty lines
  in
  let em = to_map expected and am = to_map actual in
  SMap.iter
    (fun k line ->
      match SMap.find_opt k am with
      | None ->
          report t Signature_drift "signatures.expected"
            "%s disappeared from the inferred signatures (stale snapshot \
             line %S); run `dune build @dsa-promote` to accept"
            k line
      | Some line' when line <> line' ->
          report t Signature_drift "signatures.expected"
            "effect signature of %s drifted:\n  expected: %s\n  inferred: %s\n\
             review, then `dune build @dsa-promote` to accept"
            k line line'
      | Some _ -> ())
    em;
  SMap.iter
    (fun k line ->
      if not (SMap.mem k em) then
        report t Signature_drift "signatures.expected"
          "new public function %s has no snapshot entry (inferred: %s); run \
           `dune build @dsa-promote` to accept"
          k line)
    am

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let analyze files =
  let t = create () in
  List.iter (load_file t) files;
  solve t;
  t

let run_checks ?exceptions_toml ?signatures_expected t =
  check_domain_safety t;
  (match exceptions_toml with
  | Some content ->
      let allowlist = parse_exceptions_toml content in
      check_exception_escape t allowlist;
      check_allowlist_staleness t allowlist
  | None -> ());
  (match signatures_expected with
  | Some expected -> check_signature_drift t ~expected
  | None -> ());
  List.rev t.violations
