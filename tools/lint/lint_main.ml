(* cophy-lint driver: lint every .ml file given on the command line and
   exit nonzero when any unsuppressed violation remains.

     dune build @lint        # runs this over every module in lib/

   See lint_core.ml for the rule catalog and DESIGN.md §9 for the
   [@lint.allow] escape-hatch policy. *)

let () =
  let files =
    match Array.to_list Sys.argv with
    | _ :: files -> files
    | [] -> []
  in
  if files = [] then begin
    prerr_endline "usage: lint_main FILE.ml ...";
    exit 2
  end;
  let total = ref 0 in
  List.iter
    (fun file ->
      match Lint_core.lint_file file with
      | viols ->
          List.iter
            (fun v ->
              incr total;
              Lint_core.pp_violation stderr v)
            viols
      | exception Syntaxerr.Error _ ->
          incr total;
          Printf.eprintf "%s: [parse] syntax error (lint could not parse)\n"
            file
      | exception Sys_error msg ->
          incr total;
          Printf.eprintf "%s: [io] %s\n" file msg)
    files;
  if !total > 0 then begin
    Printf.eprintf "lint: %d violation(s) in %d file(s) scanned\n" !total
      (List.length files);
    exit 1
  end
  else Printf.printf "lint: OK (%d files)\n" (List.length files)
