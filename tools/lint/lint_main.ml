(* cophy-lint driver: lint every .ml file given on the command line and
   exit nonzero when any unsuppressed violation remains.

     lint_main [--json FILE] FILE.ml ...
     dune build @lint        # runs this over every module in lib/

   Two passes: first parse every file and fold its type declarations
   into a shared float-type environment (so [type span = float] in one
   module classifies [x.elapsed = y.elapsed] comparisons in another),
   then lint each parsed tree against that environment.  [--json FILE]
   additionally writes the violations as a single-run SARIF log (via
   the shared analysis kernel) for the merged CI artifact.  The CLI
   skeleton is Ak_driver, shared with the other analyzers.  See
   lint_core.ml for the rule catalog and DESIGN.md §9 for the
   [@lint.allow] escape-hatch policy. *)

let finding_of_violation v =
  Ak_findings.make
    (Lint_core.rule_name v.Lint_core.v_rule)
    (Printf.sprintf "%s:%d:%d" v.Lint_core.v_file v.Lint_core.v_line
       v.Lint_core.v_col)
    v.Lint_core.v_message

let sarif_rule_catalog =
  List.map Lint_core.rule_name Lint_core.all_rules @ [ "bad_attr" ]

let () =
  let d =
    Ak_driver.parse ~tool:"lint"
      ~usage:"usage: lint_main [--json FILE] FILE.ml ..." ()
  in
  let files = d.Ak_driver.files in
  let findings = ref [] in
  let record f = findings := f :: !findings in
  (* pass 1: parse + collect type declarations *)
  let parsed =
    List.filter_map
      (fun file ->
        match Lint_core.parse_file file with
        | str -> Some (file, str)
        | exception Syntaxerr.Error _ ->
            record
              (Ak_findings.make "parse" file
                 "syntax error (lint could not parse)");
            None
        | exception Sys_error msg ->
            record (Ak_findings.make "io" file msg);
            None)
      files
  in
  let tyenv = Lint_core.empty_tyenv () in
  let progress = ref true in
  while !progress do
    progress :=
      List.fold_left
        (fun acc (_, str) -> Lint_core.scan_type_decls tyenv str || acc)
        false parsed
  done;
  (* pass 2: lint *)
  List.iter
    (fun (file, str) ->
      List.iter
        (fun v -> record (finding_of_violation v))
        (Lint_core.lint_structure ~tyenv ~file str))
    parsed;
  let findings = List.rev !findings in
  Ak_driver.finish d ~rules:sarif_rule_catalog
    ~fail:
      (Printf.sprintf "%d violation(s) in %d file(s) scanned"
         (List.length findings) (List.length files))
    ~ok:(Printf.sprintf "OK (%d files)" (List.length files))
    findings
