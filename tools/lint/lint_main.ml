(* cophy-lint driver: lint every .ml file given on the command line and
   exit nonzero when any unsuppressed violation remains.

     dune build @lint        # runs this over every module in lib/

   Two passes: first parse every file and fold its type declarations
   into a shared float-type environment (so [type span = float] in one
   module classifies [x.elapsed = y.elapsed] comparisons in another),
   then lint each parsed tree against that environment.  See
   lint_core.ml for the rule catalog and DESIGN.md §9 for the
   [@lint.allow] escape-hatch policy. *)

let () =
  let files =
    match Array.to_list Sys.argv with
    | _ :: files -> files
    | [] -> []
  in
  if files = [] then begin
    prerr_endline "usage: lint_main FILE.ml ...";
    exit 2
  end;
  let total = ref 0 in
  (* pass 1: parse + collect type declarations *)
  let parsed =
    List.filter_map
      (fun file ->
        match Lint_core.parse_file file with
        | str -> Some (file, str)
        | exception Syntaxerr.Error _ ->
            incr total;
            Printf.eprintf "%s: [parse] syntax error (lint could not parse)\n"
              file;
            None
        | exception Sys_error msg ->
            incr total;
            Printf.eprintf "%s: [io] %s\n" file msg;
            None)
      files
  in
  let tyenv = Lint_core.empty_tyenv () in
  let progress = ref true in
  while !progress do
    progress :=
      List.fold_left
        (fun acc (_, str) -> Lint_core.scan_type_decls tyenv str || acc)
        false parsed
  done;
  (* pass 2: lint *)
  List.iter
    (fun (file, str) ->
      List.iter
        (fun v ->
          incr total;
          Lint_core.pp_violation stderr v)
        (Lint_core.lint_structure ~tyenv ~file str))
    parsed;
  if !total > 0 then begin
    Printf.eprintf "lint: %d violation(s) in %d file(s) scanned\n" !total
      (List.length files);
    exit 1
  end
  else Printf.printf "lint: OK (%d files)\n" (List.length files)
