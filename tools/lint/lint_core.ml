(* cophy-lint, layer 1: source-level determinism / domain-safety lints.

   A compiler-libs AST traversal over every module in lib/ enforcing the
   five repo invariants (see DESIGN.md §9):

     L1 float_eq       no polymorphic =, <>, ==, != or [compare] applied
                       to float-typed expressions — use [Runtime.Fx]
                       (exact, NaN-honest) or a tolerance helper instead.
     L2 hashtbl_order  no order-sensitive [Hashtbl.iter]/[Hashtbl.fold]
                       accumulation — extract with [Runtime.Tbl.sorted_*]
                       so results never depend on hash order.
     L3 global_state   no non-[Atomic] toplevel mutable state (refs,
                       hashtables, arrays, buffers, queues) in library
                       modules — everything in lib/ is reachable from
                       [Runtime.parallel_map] workers.
     L4 catch_all      no [with _ ->] / [with e ->] handler that can
                       swallow [Lu.Singular] or drop a backtrace: a
                       catch-all must capture/re-raise with
                       [Printexc.get_raw_backtrace] /
                       [Printexc.raise_with_backtrace].
     L5 nondet_source  no [Random.self_init] or wall-clock reads
                       ([Unix.gettimeofday], [Unix.time], [Sys.time]) in
                       library code — use [Runtime.Clock] / seeded
                       [Random.State].

   Violations are suppressible only with an explicit attribute,

     let[@lint.allow hashtbl_order] f tbl = Hashtbl.fold ... (* why *)

   so every exception to a rule is auditable in-tree.  The attribute
   accepts one or more rule names (idents or string literals) and scopes
   over the annotated binding / expression / module.

   The float-typedness test is syntactic (no typing pass): an operand
   counts as float-typed when it is a float literal, a float special
   constant ([infinity], [nan], ...), or an application of a known
   float-returning primitive.  That catches the dangerous comparisons in
   practice ([x <> 0.0], [lb = neg_infinity], ...) without false
   positives on polymorphic containers. *)

type rule =
  | Float_eq
  | Hashtbl_order
  | Global_state
  | Catch_all
  | Nondet_source
  | Bad_attr  (* malformed [@lint.allow] payloads; never suppressible *)

let rule_name = function
  | Float_eq -> "float_eq"
  | Hashtbl_order -> "hashtbl_order"
  | Global_state -> "global_state"
  | Catch_all -> "catch_all"
  | Nondet_source -> "nondet_source"
  | Bad_attr -> "bad_attr"

let rule_of_string = function
  | "float_eq" -> Some Float_eq
  | "hashtbl_order" -> Some Hashtbl_order
  | "global_state" -> Some Global_state
  | "catch_all" -> Some Catch_all
  | "nondet_source" -> Some Nondet_source
  | _ -> None

let all_rules =
  [ Float_eq; Hashtbl_order; Global_state; Catch_all; Nondet_source ]

type violation = {
  v_rule : rule;
  v_file : string;
  v_line : int;
  v_col : int;
  v_message : string;
}

let pp_violation oc v =
  Printf.fprintf oc "%s:%d:%d: [%s] %s\n" v.v_file v.v_line v.v_col
    (rule_name v.v_rule) v.v_message

open Parsetree

(* ------------------------------------------------------------------ *)
(* [@lint.allow ...] payloads                                          *)
(* ------------------------------------------------------------------ *)

(* Rule names in an allow payload: bare idents ([@lint.allow float_eq]),
   strings, or several separated by application / tuple syntax. *)
let rec idents_of_expr (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident s; _ } -> [ s ]
  | Pexp_constant (Pconst_string (s, _, _)) -> [ s ]
  | Pexp_apply (f, args) ->
      idents_of_expr f @ List.concat_map (fun (_, a) -> idents_of_expr a) args
  | Pexp_tuple es -> List.concat_map idents_of_expr es
  | _ -> []

(* Returns the allowed rules plus the names that match no rule. *)
let allows_of_attributes (attrs : attributes) =
  List.fold_left
    (fun (rules, bad) (a : attribute) ->
      if a.attr_name.txt <> "lint.allow" then (rules, bad)
      else
        let names =
          match a.attr_payload with
          | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> idents_of_expr e
          | _ -> []
        in
        let names = if names = [] then [ "<empty>" ] else names in
        List.fold_left
          (fun (rules, bad) name ->
            match rule_of_string name with
            | Some r -> (r :: rules, bad)
            | None -> (rules, (name, a.attr_loc) :: bad))
          (rules, bad) names)
    ([], []) attrs

(* ------------------------------------------------------------------ *)
(* Syntactic classifiers                                               *)
(* ------------------------------------------------------------------ *)

module SSet = Set.Make (String)

(* --- cross-file float-type environment ---------------------------------

   The purely expression-syntactic classifier misses comparisons whose
   float type hides behind a type alias ([type span = float]) or a
   record field access ([s.elapsed = t.elapsed]).  A pre-pass over the
   type declarations of *all* files in the lint run records which type
   names expand to [float] (transitively through aliases) and which
   record fields carry such a type; [is_floatish] then classifies
   [e.field] and [(e : alias)] operands too.

   Structural comparison walks *into* values, so the pre-pass also
   tracks which types merely *contain* a float somewhere inside —
   through record fields, variant constructor arguments, tuples, and
   type arguments of containers ([array], [list], [option], ...) — to a
   fixpoint.  [x.slots = y.slots] with [slots : req array] and [Nlj of
   float] inside [req] is every bit as bit-blind as [a.elapsed =
   b.elapsed], and historically harder to spot.  Names are matched on
   the last path component — a deliberate over-approximation (any field
   named like a float-carrying field counts) in keeping with the
   linter's flag-first posture. *)

type tyenv = {
  mutable float_aliases : SSet.t;  (* type names whose manifest is float *)
  mutable float_carrying : SSet.t;
      (* type names whose values structurally contain a float *)
  mutable float_fields : SSet.t;
      (* record fields of a float(-alias) or float-carrying type *)
}

let empty_tyenv () =
  {
    float_aliases = SSet.empty;
    float_carrying = SSet.empty;
    float_fields = SSet.empty;
  }

let rec core_type_is_float env (t : core_type) =
  match t.ptyp_desc with
  | Ptyp_constr ({ txt = lid; _ }, []) ->
      let last = Longident.last lid in
      last = "float"
      || SSet.mem last env.float_aliases
      || SSet.mem (String.concat "." (Longident.flatten lid)) env.float_aliases
  | Ptyp_alias (t', _) -> core_type_is_float env t'
  | _ -> false

(* Does a value of this type structurally contain a float anywhere a
   polymorphic comparison would walk?  Floats and float aliases count;
   so do named types already known to carry one, tuples with a carrying
   component, and any type constructor applied to a carrying argument
   ([req array], [float list], [span option], ...). *)
let rec core_type_carries_float env (t : core_type) =
  core_type_is_float env t
  ||
  match t.ptyp_desc with
  | Ptyp_constr ({ txt = lid; _ }, args) ->
      let last = Longident.last lid in
      SSet.mem last env.float_carrying
      || SSet.mem
           (String.concat "." (Longident.flatten lid))
           env.float_carrying
      || List.exists (core_type_carries_float env) args
  | Ptyp_tuple ts -> List.exists (core_type_carries_float env) ts
  | Ptyp_alias (t', _) -> core_type_carries_float env t'
  | _ -> false

(* One scan of [str]'s type declarations into [env]; returns true when a
   new alias, carrier or field was learned.  Callers iterate to a
   fixpoint so alias-of-alias and record-in-variant-in-array chains
   resolve regardless of file and declaration order. *)
let scan_type_decls env (str : structure) =
  let changed = ref false in
  let learn_alias name =
    if not (SSet.mem name env.float_aliases) then begin
      env.float_aliases <- SSet.add name env.float_aliases;
      changed := true
    end
  in
  let learn_carrying name =
    if not (SSet.mem name env.float_carrying) then begin
      env.float_carrying <- SSet.add name env.float_carrying;
      changed := true
    end
  in
  let learn_field name =
    if not (SSet.mem name env.float_fields) then begin
      env.float_fields <- SSet.add name env.float_fields;
      changed := true
    end
  in
  let super = Ast_iterator.default_iterator in
  let type_declaration self (d : type_declaration) =
    let name = d.ptype_name.txt in
    (match d.ptype_manifest with
    | Some t ->
        if core_type_is_float env t then learn_alias name;
        if core_type_carries_float env t then learn_carrying name
    | None -> ());
    (match d.ptype_kind with
    | Ptype_record labels ->
        List.iter
          (fun (l : label_declaration) ->
            if core_type_carries_float env l.pld_type then begin
              learn_field l.pld_name.txt;
              learn_carrying name
            end)
          labels
    | Ptype_variant constrs ->
        List.iter
          (fun (c : constructor_declaration) ->
            let carries =
              match c.pcd_args with
              | Pcstr_tuple ts -> List.exists (core_type_carries_float env) ts
              | Pcstr_record labels ->
                  List.exists
                    (fun (l : label_declaration) ->
                      core_type_carries_float env l.pld_type)
                    labels
            in
            if carries then learn_carrying name)
          constrs
    | _ -> ());
    super.type_declaration self d
  in
  let it = { super with type_declaration } in
  it.structure it str;
  !changed

let float_prims =
  [ "+."; "-."; "*."; "/."; "~-."; "~+."; "**"; "abs_float"; "sqrt"; "exp";
    "log"; "log10"; "ceil"; "floor"; "float_of_int"; "float_of_string";
    "mod_float"; "min_float"; "max_float" ]

let float_consts =
  [ "infinity"; "neg_infinity"; "nan"; "epsilon_float"; "max_float";
    "min_float" ]

(* Syntactically-evident float expressions (see header comment), plus
   alias/field classification through [tyenv]. *)
let rec is_floatish env (e : expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident { txt = Longident.Lident s; _ } -> List.mem s float_consts
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = lid; _ }; _ }, args) -> (
      (match lid with
      | Longident.Lident s -> List.mem s float_prims
      | Longident.Ldot (Longident.Lident "Float", fn) ->
          (* Float.* returns float except predicates/conversions-out. *)
          not
            (List.mem fn
               [ "equal"; "compare"; "is_nan"; "is_finite"; "is_integer";
                 "to_int"; "to_string" ])
      | Longident.Ldot (Longident.Lident "Stdlib", s) -> List.mem s float_prims
      | _ -> false)
      ||
      (* unary minus over a float operand: [-. x], [- 1.0] *)
      match (lid, args) with
      | Longident.Lident ("~-" | "~+"), [ (_, a) ] -> is_floatish env a
      | _ -> false)
  | Pexp_field (_, { txt = lid; _ }) ->
      SSet.mem (Longident.last lid) env.float_fields
  | Pexp_constraint (e', t) ->
      core_type_carries_float env t || is_floatish env e'
  | Pexp_open (_, e') -> is_floatish env e'
  (* Tuple immediates: [compare (a.x, a.y) (b.x, b.y)] is still a
     polymorphic structural walk over the float components, so a tuple
     with any floatish component is floatish (closes the gap the
     [Pareto.sweep] comparator slipped through). *)
  | Pexp_tuple es -> List.exists (is_floatish env) es
  | _ -> false

let poly_cmp_ops = [ "="; "<>"; "=="; "!="; "compare" ]

(* Does [e] syntactically mention one of the backtrace-preserving
   primitives?  Used to accept catch-all handlers that capture or
   re-raise with the original backtrace. *)
let mentions_backtrace_preservation (e : expression) =
  let found = ref false in
  let super = Ast_iterator.default_iterator in
  let expr self (e : expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt = Longident.Ldot (Longident.Lident "Printexc", f); _ }
      when f = "raise_with_backtrace" || f = "get_raw_backtrace" ->
        found := true
    | _ -> ());
    super.expr self e
  in
  let it = { super with expr } in
  it.expr it e;
  !found

let is_catch_all_pattern (p : pattern) =
  let rec base (p : pattern) =
    match p.ppat_desc with
    | Ppat_any -> true
    | Ppat_var _ -> true
    | Ppat_alias (p', _) | Ppat_constraint (p', _) -> base p'
    | Ppat_or (a, b) -> base a || base b
    | _ -> false
  in
  match p.ppat_desc with
  | Ppat_exception p' -> base p'  (* match ... with exception e -> *)
  | _ -> base p

(* Constructors of toplevel mutable state.  [Atomic.make], [Mutex.create],
   [Condition.create], [Semaphore.*] and [Domain.DLS.new_key] are
   deliberately not listed: they are the sanctioned concurrent kinds. *)
let rec creates_mutable_state (e : expression) =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = lid; _ }; _ }, _) -> (
      match lid with
      | Longident.Lident "ref" | Longident.Ldot (Longident.Lident "Stdlib", "ref")
        ->
          true
      | Longident.Ldot (Longident.Lident ("Hashtbl" | "Buffer" | "Queue" | "Stack"), "create")
        ->
          true
      | Longident.Ldot (Longident.Lident "Array", ("make" | "create_float" | "init" | "make_matrix"))
        ->
          true
      | Longident.Ldot (Longident.Lident "Bytes", ("create" | "make"))
        ->
          true
      | _ -> false)
  | Pexp_array (_ :: _) -> true
  | Pexp_constraint (e', _) | Pexp_coerce (e', _, _) | Pexp_open (_, e') ->
      creates_mutable_state e'
  | Pexp_let (_, _, body) | Pexp_sequence (_, body) -> creates_mutable_state body
  | Pexp_tuple es -> List.exists creates_mutable_state es
  | Pexp_record (fields, _) ->
      List.exists (fun (_, e') -> creates_mutable_state e') fields
  | _ -> false

(* ------------------------------------------------------------------ *)
(* The traversal                                                       *)
(* ------------------------------------------------------------------ *)

let lint_structure ?tyenv ~file (str : structure) =
  let tyenv =
    match tyenv with
    | Some env -> env
    | None ->
        (* single-file mode: the file's own type declarations still feed
           alias/field classification *)
        let env = empty_tyenv () in
        while scan_type_decls env str do () done;
        env
  in
  let viols = ref [] in
  let allowed : rule list ref = ref [] in
  let report rule (loc : Location.t) message =
    if rule = Bad_attr || not (List.mem rule !allowed) then
      let pos = loc.Location.loc_start in
      viols :=
        {
          v_rule = rule;
          v_file = file;
          v_line = pos.Lexing.pos_lnum;
          v_col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
          v_message = message;
        }
        :: !viols
  in
  let push_allows attrs =
    let rules, bad = allows_of_attributes attrs in
    List.iter
      (fun (name, loc) ->
        report Bad_attr loc
          (Printf.sprintf
             "unknown rule %S in [@lint.allow] (known: %s)" name
             (String.concat ", " (List.map rule_name all_rules))))
      bad;
    let saved = !allowed in
    allowed := rules @ saved;
    fun () -> allowed := saved
  in
  let with_allows attrs f =
    let pop = push_allows attrs in
    Fun.protect ~finally:pop f
  in
  let check_expr (e : expression) =
    match e.pexp_desc with
    (* L1: polymorphic comparison over float operands *)
    | Pexp_apply
        ({ pexp_desc = Pexp_ident { txt = Longident.Lident op; _ }; _ }, args)
      when List.mem op poly_cmp_ops
           && List.exists (fun (_, a) -> is_floatish tyenv a) args ->
        report Float_eq e.pexp_loc
          (Printf.sprintf
             "polymorphic (%s) on a float-typed expression; use Runtime.Fx \
              (exact) or a tolerance helper"
             op)
    (* L2: order-sensitive hash-table iteration *)
    | Pexp_ident
        { txt = Longident.Ldot (Longident.Lident "Hashtbl", fn); _ }
      when fn = "iter" || fn = "fold" ->
        report Hashtbl_order e.pexp_loc
          (Printf.sprintf
             "Hashtbl.%s visits bindings in hash order; extract with \
              Runtime.Tbl.sorted_keys/sorted_bindings (or justify with \
              [@lint.allow hashtbl_order])"
             fn)
    (* L4: catch-alls that can swallow Lu.Singular / drop backtraces *)
    | Pexp_try (_, cases) ->
        List.iter
          (fun (c : case) ->
            if
              is_catch_all_pattern c.pc_lhs
              && not (mentions_backtrace_preservation c.pc_rhs)
            then
              report Catch_all c.pc_lhs.ppat_loc
                "catch-all exception handler without \
                 Printexc.raise_with_backtrace / get_raw_backtrace: it can \
                 swallow Lu.Singular and drops the backtrace")
          cases
    | Pexp_match (_, cases) ->
        List.iter
          (fun (c : case) ->
            match c.pc_lhs.ppat_desc with
            | Ppat_exception _
              when is_catch_all_pattern c.pc_lhs
                   && not (mentions_backtrace_preservation c.pc_rhs) ->
                report Catch_all c.pc_lhs.ppat_loc
                  "catch-all [exception] case without backtrace preservation"
            | _ -> ())
          cases
    (* L5: nondeterminism sources in library code *)
    | Pexp_ident { txt = Longident.Ldot (Longident.Lident "Random", "self_init"); _ }
      ->
        report Nondet_source e.pexp_loc
          "Random.self_init in library code; thread a seeded Random.State"
    | Pexp_ident
        { txt = Longident.Ldot (Longident.Lident "Unix", ("gettimeofday" | "time")); _ }
      ->
        report Nondet_source e.pexp_loc
          "wall-clock read in library code; use Runtime.Clock.now"
    | Pexp_ident { txt = Longident.Ldot (Longident.Lident "Sys", "time"); _ }
      ->
        report Nondet_source e.pexp_loc
          "Sys.time in library code; use Runtime.Clock.now"
    | _ -> ()
  in
  let super = Ast_iterator.default_iterator in
  let expr self (e : expression) =
    with_allows e.pexp_attributes (fun () ->
        check_expr e;
        super.expr self e)
  in
  let value_binding self (vb : value_binding) =
    with_allows vb.pvb_attributes (fun () -> super.value_binding self vb)
  in
  let module_binding self (mb : module_binding) =
    with_allows mb.pmb_attributes (fun () -> super.module_binding self mb)
  in
  let it = { super with expr; value_binding; module_binding } in
  (* L3 is a shape check on the structure spine rather than an expression
     check: only toplevel (module-level) bindings are shared across
     domains. *)
  let rec check_toplevel (items : structure) =
    List.iter
      (fun (item : structure_item) ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun (vb : value_binding) ->
                let pop = push_allows vb.pvb_attributes in
                if creates_mutable_state vb.pvb_expr then
                  report Global_state vb.pvb_loc
                    "toplevel mutable state in a library module (reachable \
                     from Runtime.parallel_map workers); use Atomic, or \
                     justify with [@lint.allow global_state]";
                pop ())
              vbs
        | Pstr_module
            {
              pmb_expr = { pmod_desc = Pmod_structure sub; _ };
              pmb_attributes;
              _;
            } ->
            let pop = push_allows pmb_attributes in
            check_toplevel sub;
            pop ()
        | _ -> ())
      items
  in
  check_toplevel str;
  it.structure it str;
  List.rev !viols

let parse_string ~file src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf file;
  Parse.implementation lexbuf

let lint_string ?tyenv ~file src =
  lint_structure ?tyenv ~file (parse_string ~file src)

let parse_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Lexing.set_filename lexbuf file;
      Parse.implementation lexbuf)

let lint_file ?tyenv file = lint_structure ?tyenv ~file (parse_file file)
