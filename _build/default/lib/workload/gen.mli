(** Workload generators mirroring the paper's evaluation inputs, all
    deterministic in the seed.  Predicate selectivities are drawn from the
    catalog's per-column Zipf distributions, so data skew shapes the
    workloads the way tpcdskew shaped the paper's. *)

(** W^hom: random instantiations of 15 fixed TPC-H-like templates. *)
val hom : Catalog.Schema.t -> n:int -> seed:int -> Sqlast.Ast.workload

(** W^het: randomly structured SPJ queries with group-by/aggregation in
    the style of the online index-selection benchmark (C2 suite). *)
val het : Catalog.Schema.t -> n:int -> seed:int -> Sqlast.Ast.workload

(** A random single-table UPDATE statement. *)
val update : Catalog.Schema.t -> Random.State.t -> int -> Sqlast.Ast.update

(** Replace a [fraction] of the statements with UPDATEs (ids and weights
    preserved).  @raise Invalid_argument when fraction is out of [0, 1]. *)
val with_updates :
  Catalog.Schema.t ->
  fraction:float ->
  seed:int ->
  Sqlast.Ast.workload ->
  Sqlast.Ast.workload

(** Selectivity samplers, exposed for tests and custom generators. *)

val eq_sel : Catalog.Schema.t -> Random.State.t -> string -> string -> float

val range_sel :
  Catalog.Schema.t -> Random.State.t -> string -> string -> frac:float -> float

(** The TPC-H foreign-key join graph as
    (left table, left column, right table, right column). *)
val fk_edges : (string * string * string * string) list

(** Non-comment attributes eligible for predicates and grouping.
    @raise Invalid_argument for unknown tables. *)
val predicate_columns : string -> string list
