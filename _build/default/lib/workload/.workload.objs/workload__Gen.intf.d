lib/workload/gen.mli: Catalog Random Sqlast
