lib/workload/gen.ml: Array Ast Catalog List Random Sqlast
