(* CGen — candidate-index generation (paper §4).  Examines each query and
   generates a large number of candidates from the referenced columns with
   standard heuristics, without any complex pruning; the DBA may add an
   interesting set of her own.  The union over the workload forms S. *)

open Sqlast

(* Deterministic column orderings make candidate sets reproducible. *)
let sorted_uniq = List.sort_uniq String.compare

(* Per-query, per-table candidates. *)
let table_candidates (q : Ast.query) table =
  let preds = Ast.table_predicates q table in
  let eq_cols =
    List.filter_map
      (fun p -> if p.Ast.is_equality then Some p.Ast.pred_col.Ast.column else None)
      preds
    |> sorted_uniq
  in
  let range_cols =
    List.filter_map
      (fun p ->
        if p.Ast.is_equality then None else Some p.Ast.pred_col.Ast.column)
      preds
    |> sorted_uniq
  in
  let join_cols =
    List.map (fun (c : Ast.col_ref) -> c.Ast.column) (Ast.join_columns q table)
    |> sorted_uniq
  in
  let group_cols =
    List.filter_map
      (fun (c : Ast.col_ref) ->
        if c.Ast.table = table then Some c.Ast.column else None)
      q.Ast.group_by
  in
  let order_cols =
    List.filter_map
      (fun ((c : Ast.col_ref), _) ->
        if c.Ast.table = table then Some c.Ast.column else None)
      q.Ast.order_by
  in
  let referenced = Ast.referenced_columns q table in
  let mk ?(includes = []) keys =
    if keys = [] then [] else [ Storage.Index.create ~table ~includes keys ]
  in
  let distinct_prefix cols =
    (* drop duplicates keeping first occurrence *)
    List.fold_left
      (fun acc c -> if List.mem c acc then acc else acc @ [ c ])
      [] cols
  in
  let shapes =
    (* single-column indexes on every interesting column *)
    List.concat_map (fun c -> mk [ c ]) (sorted_uniq (eq_cols @ range_cols @ join_cols))
    (* multi-column: all equality columns, then one range column *)
    @ mk eq_cols
    @ List.concat_map (fun r -> mk (distinct_prefix (eq_cols @ [ r ]))) range_cols
    (* join column leading, then the equality columns *)
    @ List.concat_map (fun j -> mk (distinct_prefix (j :: eq_cols))) join_cols
    (* group-by and order-by orders *)
    @ mk (distinct_prefix group_cols)
    @ mk (distinct_prefix order_cols)
    @ mk (distinct_prefix (eq_cols @ group_cols))
  in
  (* covering variants: add the query's referenced columns as INCLUDEs *)
  let covering =
    List.map
      (fun ix ->
        Storage.Index.create ~table
          ~includes:referenced
          (Storage.Index.key_columns ix))
      shapes
  in
  shapes @ covering

let query_candidates (q : Ast.query) =
  List.concat_map (fun t -> table_candidates q t) q.Ast.tables

(* Candidate set of a whole workload (update shells included), optionally
   extended with a DBA-provided set. *)
let generate ?(dba = []) (w : Ast.workload) =
  let per_query =
    List.concat_map (fun (q, _) -> query_candidates q) (Ast.selects w)
  in
  Storage.Config.of_list (per_query @ dba) |> Storage.Config.to_list

(* Random valid indexes, used to inflate S for the scalability experiments
   (the paper's S_L of 10K indexes). *)
let random_candidates schema ~n ~seed =
  let rng = Random.State.make [| seed; 0xcafe |] in
  let tables = Array.of_list (Catalog.Schema.tables schema) in
  List.init n (fun _ ->
      let tbl = tables.(Random.State.int rng (Array.length tables)) in
      let cols = tbl.Catalog.Schema.columns in
      let k = 1 + Random.State.int rng (min 3 (Array.length cols)) in
      let picked = ref [] in
      while List.length !picked < k do
        let c = cols.(Random.State.int rng (Array.length cols)).Catalog.Schema.col_name in
        if not (List.mem c !picked) then picked := c :: !picked
      done;
      Storage.Index.create ~table:tbl.Catalog.Schema.tbl_name !picked)
  |> Storage.Config.of_list |> Storage.Config.to_list
