(** Soft constraints via Pareto-optimal curves (paper §4.1, App. D).

    A soft constraint contributes a linear metric over the z variables
    (e.g. total index storage).  The Chord algorithm picks scalarization
    weights lambda and solves [min lambda*cost + (1-lambda)*metric],
    reusing the decomposition solver's multipliers between points. *)

type point = {
  lambda : float;
  z : bool array;
  cost : float;    (** workload cost of this solution *)
  metric : float;  (** soft-constraint metric of this solution *)
}

(** One scalarized solve; returns the point and the multipliers for warm
    starting the next one. *)
val scalarized_solve :
  ?options:Decomposition.options ->
  Sproblem.t ->
  metric_coeff:float array ->
  lambda:float ->
  warm:Decomposition.multipliers option ->
  point * Decomposition.multipliers

(** Chord sweep: Pareto points sorted by metric, plus the number of solver
    invocations.  [epsilon] is the relative chord-distance tolerance;
    [reuse = false] disables multiplier warm starts (for the Fig. 6c
    comparison). *)
val sweep :
  ?epsilon:float ->
  ?max_points:int ->
  ?reuse:bool ->
  ?options:Decomposition.options ->
  Sproblem.t ->
  metric_coeff:float array ->
  point list * int

(** Per-candidate index sizes: the metric of a soft storage budget. *)
val storage_metric : Sproblem.t -> float array
