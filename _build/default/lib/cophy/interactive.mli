(** Interactive tuning sessions (paper §4.2): the INUM cache, candidate
    set, structured BIP and solver multipliers persist across the DBA's
    tweaks, so only the delta is recomputed on each re-tune. *)

type session

(** Start a session: INUM preprocesses the workload once, CGen builds the
    initial candidate set.  [jobs] (default [1]) sets the domain fan-out
    for the session's INUM builds and re-tunes. *)
val create :
  ?params:Optimizer.Cost_params.t ->
  ?constraints:Constr.t list ->
  ?baseline:Storage.Config.t ->
  ?jobs:int ->
  Catalog.Schema.t ->
  Sqlast.Ast.workload ->
  budget:float ->
  session

val candidates : session -> Storage.Index.t list
val last_report : session -> Solver.report option

(** Extend the candidate set (duplicates ignored).  Existing multipliers
    are keyed by index identity, so the next re-tune warm-starts. *)
val add_candidates : session -> Storage.Index.t list -> unit

(** Remove candidates; survivors keep their multipliers. *)
val remove_candidates : session -> Storage.Index.t list -> unit

val set_budget : session -> float -> unit
val set_constraints : session -> Constr.t list -> unit

(** Append statements: INUM preprocessing runs only for the new ones. *)
val add_statements : session -> Sqlast.Ast.workload -> unit

(** Re-solve, warm-starting from the previous multipliers. *)
val retune : ?options:Solver.options -> session -> Solver.report
