(* Interactive tuning (paper §4.2).

   A session keeps everything the advisor computed — the INUM cache, the
   candidate set, the structured BIP and the solver's multipliers — so
   that when the DBA tweaks the problem (adds candidate indexes, changes
   the budget or the constraints, appends statements) only the delta is
   recomputed: INUM runs only for new statements, the BIP is rebuilt from
   cached coefficients, and the solver warm-starts from the previous
   multipliers.  This is what makes re-tuning an order of magnitude
   faster than solving from scratch (Fig. 6b). *)

type session = {
  env : Optimizer.Whatif.env;
  jobs : int;  (* domains for INUM builds and solver fan-outs *)
  mutable workload : Sqlast.Ast.workload;
  mutable cache : Inum.workload_cache;
  mutable candidates : Storage.Index.t array;
  mutable budget : float;
  mutable constraints : Constr.t list;
  mutable baseline : Storage.Config.t;
  mutable problem : Sproblem.t option;          (* invalidated by deltas *)
  mutable multipliers : Decomposition.multipliers option;
  mutable last : Solver.report option;
}

let create ?(params = Optimizer.Cost_params.default)
    ?(constraints = [ Constr.At_most_one_clustered ])
    ?(baseline = Storage.Config.empty) ?(jobs = 1) schema workload ~budget =
  let env = Optimizer.Whatif.make_env ~params schema in
  let cache = Inum.build_workload ~jobs env workload in
  {
    env;
    jobs;
    workload;
    cache;
    candidates = Array.of_list (Cgen.generate workload);
    budget;
    constraints;
    baseline;
    problem = None;
    multipliers = None;
    last = None;
  }

let candidates s = Array.to_list s.candidates
let last_report s = s.last

(* --- Deltas --- *)

let add_candidates s ixs =
  let existing = Storage.Config.of_list (Array.to_list s.candidates) in
  let fresh =
    List.filter (fun ix -> not (Storage.Config.mem ix existing)) ixs
  in
  s.candidates <- Array.append s.candidates (Array.of_list fresh);
  s.problem <- None

let remove_candidates s ixs =
  s.candidates <-
    Array.of_list
      (List.filter
         (fun c -> not (List.exists (Storage.Index.equal c) ixs))
         (Array.to_list s.candidates));
  (* Multipliers are keyed by index identity, so survivors keep theirs. *)
  s.problem <- None

let set_budget s budget = s.budget <- budget

let set_constraints s cs =
  s.constraints <- cs;
  s.problem <- None

(* Append statements: INUM preprocessing runs only for the new ones. *)
let add_statements s stmts =
  let delta = Inum.build_workload ~jobs:s.jobs s.env stmts in
  s.workload <- s.workload @ stmts;
  s.cache <-
    {
      Inum.selects = s.cache.Inum.selects @ delta.Inum.selects;
      updates = s.cache.Inum.updates @ delta.Inum.updates;
      total_init_calls =
        s.cache.Inum.total_init_calls + delta.Inum.total_init_calls;
    };
  s.problem <- None

(* --- Re-tuning --- *)

let problem s =
  match s.problem with
  | Some sp -> sp
  | None ->
      let sp = Sproblem.build s.env s.cache s.candidates in
      s.problem <- Some sp;
      sp

let retune ?(options = Solver.default_options) s =
  let sp = problem s in
  let z_rows =
    Constr.linearize_all s.env.Optimizer.Whatif.schema s.candidates
      (List.filter Constr.z_only s.constraints)
  in
  let accept =
    if List.exists Constr.is_udf s.constraints then
      Some (Constr.udf_acceptance s.candidates s.constraints)
    else None
  in
  let options =
    {
      options with
      Solver.warm = s.multipliers;
      method_ = Solver.Decomposed;
      jobs = s.jobs;
    }
  in
  let report = Solver.solve ~options ?accept sp ~budget:s.budget ~z_rows in
  s.multipliers <- report.Solver.multipliers;
  s.last <- Some report;
  report
