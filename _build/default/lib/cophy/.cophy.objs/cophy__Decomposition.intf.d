lib/cophy/decomposition.mli: Constr Hashtbl Runtime Sproblem Storage
