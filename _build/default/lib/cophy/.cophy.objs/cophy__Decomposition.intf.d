lib/cophy/decomposition.mli: Constr Hashtbl Sproblem Storage
