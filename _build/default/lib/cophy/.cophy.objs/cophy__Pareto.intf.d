lib/cophy/pareto.mli: Decomposition Sproblem
