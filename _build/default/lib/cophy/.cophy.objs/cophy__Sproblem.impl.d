lib/cophy/sproblem.ml: Array Catalog Constr Hashtbl Inum List Lp Optimizer Option Printf Runtime Sqlast Storage
