lib/cophy/interactive.mli: Catalog Constr Optimizer Solver Sqlast Storage
