lib/cophy/advisor.ml: Array Catalog Cgen Constr Inum List Optimizer Runtime Solver Sproblem Sqlast Storage
