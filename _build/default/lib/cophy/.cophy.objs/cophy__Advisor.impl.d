lib/cophy/advisor.ml: Array Catalog Cgen Constr Inum List Optimizer Solver Sproblem Sqlast Storage Unix
