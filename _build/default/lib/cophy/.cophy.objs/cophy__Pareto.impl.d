lib/cophy/pareto.ml: Array Decomposition List Sproblem
