lib/cophy/sproblem.mli: Catalog Constr Hashtbl Inum Lp Optimizer Storage
