lib/cophy/solver.mli: Constr Decomposition Sproblem Storage
