lib/cophy/solver.mli: Constr Decomposition Runtime Sproblem Storage
