lib/cophy/advisor.mli: Catalog Constr Inum Optimizer Runtime Solver Sproblem Sqlast Storage
