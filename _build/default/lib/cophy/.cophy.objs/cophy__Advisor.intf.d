lib/cophy/advisor.mli: Catalog Constr Inum Optimizer Solver Sproblem Sqlast Storage
