lib/cophy/interactive.ml: Array Cgen Constr Decomposition Inum List Optimizer Solver Sproblem Sqlast Storage
