lib/cophy/decomposition.ml: Array Constr Fun Hashtbl List Lp Option Runtime Sproblem Storage
