lib/cophy/cgen.ml: Array Ast Catalog List Random Sqlast Storage String
