lib/cophy/cgen.mli: Catalog Sqlast Storage
