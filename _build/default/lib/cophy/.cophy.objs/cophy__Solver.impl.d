lib/cophy/solver.ml: Array Constr Decomposition List Lp Runtime Sproblem Storage
