lib/cophy/solver.ml: Array Constr Decomposition List Lp Sproblem Storage Unix
